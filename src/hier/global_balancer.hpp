// Global balancer: the upper level of the two-level scheduler.
//
// Holds one LocalMaster per node and selects victims from their compact
// NodeSummaries. A decision touches O(nodes-adjacent-to-the-apprank)
// summaries — each an O(1) read — instead of the O(cores) global state a
// flat policy walks; the per-worker refresh walk happens at most once per
// HierConfig::summary_period per node, amortized across all decisions in
// that window. Summaries are kept honest between refreshes by optimistic
// slack decrements for the balancer's own placements; liveness
// (crash/quarantine/retirement) is always checked against the runtime
// (RuntimeView::usable is O(1)), so a stale summary can delay a placement
// but never target an unusable worker.
#pragma once

#include <cstdint>
#include <vector>

#include "hier/config.hpp"
#include "hier/local_master.hpp"
#include "sched/config.hpp"
#include "sched/scheduler.hpp"

namespace tlb::hier {

class GlobalBalancer {
 public:
  GlobalBalancer(const HierConfig& hconf, const sched::SchedConfig& sconf,
                 const sched::RuntimeView& view)
      : hconf_(hconf), sconf_(sconf), view_(view) {}

  /// One victim selection over summaries. Charges every summary read and
  /// refresh walk to `stats.state_touched` and keeps the offload
  /// considered/steered/suppressed accounting:
  ///   - Baseline  — placed at home (it had slack), or held centrally
  ///                 with every candidate saturated;
  ///   - Steered   — placed on the least-loaded remote candidate with
  ///                 slack; near-ties in load (HierConfig::residency_band)
  ///                 go to the node with the warmest decayed residency for
  ///                 the task's apprank, recovering the flat locality
  ///                 rule's transfer avoidance at summary cost;
  ///   - Suppressed — remote slack existed but congestion / helper-wait
  ///                 vetoes rejected every candidate.
  [[nodiscard]] sched::Decision pick(const nanos::Task& task,
                                     sched::SchedStats& stats);

  /// Queue-wait feedback, folded into the decayed estimate of the node
  /// the task started on.
  void on_task_started(core::WorkerId w, sim::SimTime wait);

  /// The node's master (lazily created: elastic scale-out grows the
  /// topology mid-run).
  [[nodiscard]] LocalMaster& master(int node);
  [[nodiscard]] std::size_t master_count() const { return masters_.size(); }
  /// Total summary rebuilds across all masters (obs: hier.summary_refreshes).
  [[nodiscard]] std::uint64_t summary_refreshes() const;

 private:
  /// Refreshes the node's summary when older than the summary period
  /// (charging the walk), then charges one probe for reading it.
  const LocalMaster& consult(int node, sched::SchedStats& stats);
  [[nodiscard]] static int slack_of(const NodeSummary& s, core::WorkerId w);

  HierConfig hconf_;
  sched::SchedConfig sconf_;
  const sched::RuntimeView& view_;
  std::vector<LocalMaster> masters_;  ///< indexed by node id
};

}  // namespace tlb::hier
