#include "hier/hier_scheduler.hpp"

#include <memory>

#include "sched/registry.hpp"

namespace tlb::hier {

void register_policies() {
  if (sched::policy_registered("hier")) return;  // idempotent
  sched::register_policy(
      "hier",
      [](const sched::SchedConfig& sconf, const sched::RuntimeView& view)
          -> std::unique_ptr<sched::Scheduler> {
        return std::make_unique<HierScheduler>(HierConfig{}, sconf, view);
      });
}

}  // namespace tlb::hier
