#include "hier/local_master.hpp"

#include <algorithm>

namespace tlb::hier {

std::uint64_t LocalMaster::refresh(const sched::RuntimeView& view,
                                   sim::SimTime now) {
  const core::Topology& topo = view.topology();
  const int per_core = view.inflight_per_core();
  std::uint64_t touched = 0;

  summary_.workers.clear();
  summary_.total_slack = 0;
  int owned_sum = 0;
  int inflight_sum = 0;
  for (const core::WorkerId w : topo.workers_on_node(summary_.node)) {
    WorkerSlack ws;
    ws.worker = w;
    ws.owned = view.owned_cores(w);
    ws.inflight = view.inflight(w);
    ws.slack = per_core * ws.owned - ws.inflight;
    // The owned-core read walks the node's core registry (O(cores/node));
    // the in-flight read is one probe. This is the cost the summary
    // amortizes: flat policies pay it per decision, we pay it per refresh.
    touched += 1 + static_cast<std::uint64_t>(ws.owned > 0 ? ws.owned : 1);
    if (view.usable(w)) {
      summary_.total_slack += std::max(0, ws.slack);
    }
    owned_sum += ws.owned;
    inflight_sum += ws.inflight;
    summary_.workers.push_back(ws);
  }
  summary_.load_ratio =
      static_cast<double>(inflight_sum) / std::max(1, owned_sum);
  summary_.refreshed_at = now;
  ++refreshes_;
  return touched;
}

void LocalMaster::note_placed(core::WorkerId w) {
  for (WorkerSlack& ws : summary_.workers) {
    if (ws.worker != w) continue;
    ws.inflight += 1;
    ws.slack -= 1;
    if (ws.slack >= 0) {
      summary_.total_slack = std::max(0, summary_.total_slack - 1);
    }
    return;
  }
}

}  // namespace tlb::hier
