// Per-node local master: the lower level of the two-level scheduler.
//
// One LocalMaster per node owns that node's NodeSummary. It rebuilds the
// summary from live runtime state on demand (the expensive per-worker /
// per-core walk, paid once per summary period instead of once per
// decision) and keeps a decayed EWMA of the queue waits tasks observed on
// its node — the per-helper wait signal the global balancer vetoes
// pointless offloads with.
#pragma once

#include <cstdint>
#include <vector>

#include "hier/summary.hpp"
#include "sched/ewma.hpp"
#include "sched/scheduler.hpp"

namespace tlb::hier {

class LocalMaster {
 public:
  explicit LocalMaster(int node) { summary_.node = node; }

  [[nodiscard]] const NodeSummary& summary() const { return summary_; }
  [[nodiscard]] int node() const { return summary_.node; }
  [[nodiscard]] std::uint64_t refreshes() const { return refreshes_; }

  /// True while the summary is younger than `period` (a never-refreshed
  /// summary is always stale).
  [[nodiscard]] bool fresh(sim::SimTime now, sim::SimTime period) const {
    return summary_.refreshed_at >= 0.0 &&
           now - summary_.refreshed_at < period;
  }

  /// Rebuilds the summary from the live runtime state. Returns the number
  /// of state probes the walk performed (per worker: in-flight read plus
  /// the owned-core registry scan), charged to SchedStats::state_touched
  /// by the caller — this is the amortized cost flat policies pay on
  /// every decision.
  std::uint64_t refresh(const sched::RuntimeView& view, sim::SimTime now);

  /// Optimistic accounting of a placement the balancer just made on `w`:
  /// the worker's slack and the node aggregate drop by one so the summary
  /// never over-promises capacity between refreshes.
  void note_placed(core::WorkerId w);

  /// Folds one observed queue wait of a task that started on this node
  /// into the decayed per-node estimate.
  void observe_wait(double wait, sim::SimTime now, double smoothing,
                    double half_life) {
    wait_ewma_.observe(wait, now, smoothing, half_life);
  }
  /// Smoothed queue wait on this node (seconds), decayed to `now`.
  [[nodiscard]] double wait_estimate(sim::SimTime now,
                                     double half_life) const {
    return wait_ewma_.read(now, half_life);
  }

  /// Folds a placement of `bytes` input bytes for `apprank` into the
  /// node's decayed residency signal (HierConfig residency_*).
  void observe_residency(int apprank, double bytes, sim::SimTime now,
                         double smoothing, double half_life) {
    if (residency_.size() <= static_cast<std::size_t>(apprank)) {
      residency_.resize(static_cast<std::size_t>(apprank) + 1);
    }
    residency_[static_cast<std::size_t>(apprank)].observe(bytes, now,
                                                          smoothing,
                                                          half_life);
  }
  /// Decayed input-byte residency of `apprank` on this node; 0 when the
  /// apprank never placed here.
  [[nodiscard]] double residency(int apprank, sim::SimTime now,
                                 double half_life) const {
    if (residency_.size() <= static_cast<std::size_t>(apprank)) return 0.0;
    return residency_[static_cast<std::size_t>(apprank)].read(now, half_life);
  }

 private:
  NodeSummary summary_;
  sched::DecayEwma wait_ewma_;
  std::vector<sched::DecayEwma> residency_;  ///< indexed by apprank
  std::uint64_t refreshes_ = 0;
};

}  // namespace tlb::hier
