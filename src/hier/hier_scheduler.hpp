// "hier" — hierarchical two-level victim selection (tlb::hier).
//
// The flat policies in tlb::sched probe global state on every decision:
// the in-flight throttle alone walks the node's core registry per
// candidate, so one decision costs O(cores) and scheduling cost grows
// linearly with the cluster. This subsystem splits the decision across
// two levels (Eleliemy & Ciorba, two-level MPI+MPI self-scheduling):
// per-node LocalMasters condense their workers into compact NodeSummaries
// (slack, load ratio, decayed queue-wait estimate), and a GlobalBalancer
// decides from summaries only — O(adjacent nodes) summary reads per
// decision, with the per-worker refresh walk amortized over
// HierConfig::summary_period.
//
// Divergence from the flat baseline, by design: placement is balance- and
// headroom-driven (no per-decision resident-bytes scan of the dependency
// graph — near-ties in load are broken by a decayed per-apprank
// residency EWMA, HierConfig::residency_*), so Steered counts every
// remote placement and schedules are NOT
// comparable fingerprint-wise to "locality". The disabled path
// (HierConfig::enabled = false, policy != "hier") constructs nothing from
// this library and stays bit-identical.
//
// Layering: tlb_hier links tlb_sched (Scheduler base, registry), never
// the other way. The "hier" registry name is an *extension*, added by
// register_policies() — call it before sched::make_scheduler can resolve
// the name (ClusterRuntime does this in its constructor).
#pragma once

#include <cstdint>

#include "hier/config.hpp"
#include "hier/global_balancer.hpp"
#include "prof/prof.hpp"
#include "sched/scheduler.hpp"

namespace tlb::hier {

class HierScheduler final : public sched::Scheduler {
 public:
  HierScheduler(const HierConfig& hconf, const sched::SchedConfig& sconf,
                const sched::RuntimeView& view)
      : Scheduler(view), balancer_(hconf, sconf, view) {}

  [[nodiscard]] const char* name() const override { return "hier"; }
  [[nodiscard]] sched::Decision pick(const nanos::Task& task) override {
    // Nests under the runtime's "sched.pick": the summary-driven
    // placement is the part whose cost must stay O(adjacent nodes).
    PROF_SCOPE("hier.balance");
    return balancer_.pick(task, stats_);
  }
  void on_task_started(const nanos::Task& task, core::WorkerId w,
                       sim::SimTime wait) override {
    (void)task;
    balancer_.on_task_started(w, wait);
  }

  [[nodiscard]] const GlobalBalancer& balancer() const { return balancer_; }
  [[nodiscard]] std::uint64_t summary_refreshes() const {
    return balancer_.summary_refreshes();
  }

 private:
  GlobalBalancer balancer_;
};

/// Adds "hier" to the sched policy registry (with a default HierConfig —
/// the runtime builds HierScheduler directly when RuntimeConfig::hier
/// carries tuning). Idempotent: safe to call from every ClusterRuntime /
/// JobManager construction.
void register_policies();

}  // namespace tlb::hier
