// Configuration of the hierarchical two-level scheduler (tlb::hier).
#pragma once

#include "sim/time.hpp"

namespace tlb::hier {

struct HierConfig {
  /// Master switch. Off by default: the runtime builds the flat policy
  /// named by RuntimeConfig::sched.policy and no hier code runs — plain
  /// runs stay bit-identical to a build without the subsystem. When set,
  /// victim selection goes through the two-level scheduler (equivalent to
  /// sched.policy = "hier", which this flag overrides).
  bool enabled = false;

  /// Maximum age (seconds) of a node's load summary before the global
  /// balancer asks its local master for a refresh. Between refreshes
  /// decisions read the compact summary only — O(1) per node consulted —
  /// and the balancer keeps slack consistent by decrementing it for its
  /// own placements. Larger periods amortize the per-worker walk further
  /// at the price of staler load signals; 0 refreshes on every decision
  /// (degenerates to flat-scheduler costs, useful for A/B measurement).
  sim::SimTime summary_period = 0.05;

  // --- data-residency tie-break ----------------------------------------------
  // The flat locality rule places tasks where their input bytes already
  // live; summary-driven balancing is blind to that, which is why hier
  // trailed locality's makespan at 32-64 nodes: equally-loaded helpers
  // are interchangeable by load but not by transfer cost. Each local
  // master therefore keeps a decayed per-apprank EWMA of input bytes
  // recently placed on its node, and the balancer breaks near-ties in
  // load_ratio (within residency_band) towards the node with the
  // warmest residency for the task's apprank. With no history (or
  /// residency_band = 0) the selection reduces exactly to the previous
  /// lowest-load_ratio rule.

  /// Half-life (seconds) of the residency signal; old placements stop
  /// counting after a few task generations.
  sim::SimTime residency_halflife = 0.2;
  /// Candidates whose load_ratio is within this absolute band of the
  /// minimum compete on residency instead of load. 0 disables the
  /// tie-break entirely.
  double residency_band = 0.25;
  /// EWMA blend factor for new placements (1 = history only).
  double residency_smoothing = 0.5;
};

}  // namespace tlb::hier
