// Configuration of the hierarchical two-level scheduler (tlb::hier).
#pragma once

#include "sim/time.hpp"

namespace tlb::hier {

struct HierConfig {
  /// Master switch. Off by default: the runtime builds the flat policy
  /// named by RuntimeConfig::sched.policy and no hier code runs — plain
  /// runs stay bit-identical to a build without the subsystem. When set,
  /// victim selection goes through the two-level scheduler (equivalent to
  /// sched.policy = "hier", which this flag overrides).
  bool enabled = false;

  /// Maximum age (seconds) of a node's load summary before the global
  /// balancer asks its local master for a refresh. Between refreshes
  /// decisions read the compact summary only — O(1) per node consulted —
  /// and the balancer keeps slack consistent by decrementing it for its
  /// own placements. Larger periods amortize the per-worker walk further
  /// at the price of staler load signals; 0 refreshes on every decision
  /// (degenerates to flat-scheduler costs, useful for A/B measurement).
  sim::SimTime summary_period = 0.05;
};

}  // namespace tlb::hier
