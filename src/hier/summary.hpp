// Compact per-node load summaries exchanged between the two scheduling
// levels (tlb::hier).
//
// A flat policy probes global state on every victim selection: the
// in-flight throttle alone walks the node's core registry per candidate
// (dlb::NodeCores::owned_count is O(cores/node)), so one decision touches
// O(cores) state and the cost grows with the cluster. The hierarchical
// scheduler caps that: each node's local master condenses its workers
// into the fixed-size summary below, and the global balancer decides from
// summaries — O(1) per node consulted, refresh cost amortized over the
// summary period (Eleliemy & Ciorba's two-level MPI+MPI self-scheduling
// applied to victim selection).
#pragma once

#include <vector>

#include "core/topology.hpp"
#include "sim/time.hpp"

namespace tlb::hier {

/// One worker's scheduling headroom as of the last refresh.
struct WorkerSlack {
  core::WorkerId worker = -1;
  int owned = 0;     ///< DROM-owned cores at refresh
  int inflight = 0;  ///< assigned + running tasks at refresh
  /// Remaining in-flight headroom: inflight_per_core * owned - inflight,
  /// decremented optimistically for every placement the balancer makes
  /// between refreshes (so the summary never over-promises its own
  /// placements; it can still go stale against central-queue steals —
  /// those only make it conservative late, never unsafe).
  int slack = 0;
};

/// A node condensed for the global balancer.
struct NodeSummary {
  int node = -1;
  sim::SimTime refreshed_at = -1.0;  ///< -1: never refreshed
  int total_slack = 0;               ///< sum of positive worker slack
  double load_ratio = 0.0;           ///< sum inflight / max(1, sum owned)
  std::vector<WorkerSlack> workers;  ///< workers resident on the node
};

}  // namespace tlb::hier
