#include "hier/global_balancer.hpp"

#include <algorithm>
#include <limits>

namespace tlb::hier {

LocalMaster& GlobalBalancer::master(int node) {
  while (masters_.size() <= static_cast<std::size_t>(node)) {
    masters_.emplace_back(static_cast<int>(masters_.size()));
  }
  return masters_[static_cast<std::size_t>(node)];
}

std::uint64_t GlobalBalancer::summary_refreshes() const {
  std::uint64_t total = 0;
  for (const LocalMaster& m : masters_) total += m.refreshes();
  return total;
}

const LocalMaster& GlobalBalancer::consult(int node,
                                           sched::SchedStats& stats) {
  LocalMaster& m = master(node);
  if (!m.fresh(view_.now(), hconf_.summary_period)) {
    stats.state_touched += m.refresh(view_, view_.now());
  }
  stats.state_touched += 1;  // the summary read itself
  return m;
}

int GlobalBalancer::slack_of(const NodeSummary& s, core::WorkerId w) {
  for (const WorkerSlack& ws : s.workers) {
    if (ws.worker == w) return ws.slack;
  }
  return 0;  // worker joined after the last refresh: no promised headroom
}

sched::Decision GlobalBalancer::pick(const nanos::Task& task,
                                     sched::SchedStats& stats) {
  ++stats.decisions;
  const core::Topology& topo = view_.topology();
  const core::WorkerId home = topo.home_worker(task.apprank);
  const int home_node = topo.home_node(task.apprank);
  double input_bytes = 0.0;
  for (const nanos::AccessRegion& a : task.accesses) {
    if (a.reads()) input_bytes += static_cast<double>(a.size);
  }

  // Level 1: the home node's master. Home placement needs no balancing —
  // any slack there wins (the flat locality rule agrees: resident bytes
  // are at home until tasks get offloaded).
  const LocalMaster& hm = consult(home_node, stats);
  if (view_.usable(home) && slack_of(hm.summary(), home) > 0) {
    LocalMaster& m = master(home_node);
    m.note_placed(home);
    m.observe_residency(task.apprank, input_bytes, view_.now(),
                        hconf_.residency_smoothing,
                        hconf_.residency_halflife);
    return {home, sched::DecisionKind::Baseline};
  }
  const double home_wait =
      hm.wait_estimate(view_.now(), sconf_.wait_halflife);

  // Level 2: balance across the apprank's helper nodes by summary. The
  // candidate set is the expander adjacency (O(degree) nodes), each
  // consulted through its compact summary.
  const net::LinkLoadView* net = view_.link_load();
  struct Candidate {
    core::WorkerId worker = -1;
    int node = -1;
    double ratio = 0.0;
    double residency = 0.0;
  };
  std::vector<Candidate> candidates;
  double best_ratio = std::numeric_limits<double>::infinity();
  bool considered = false;
  bool vetoed = false;
  for (const core::WorkerId w : topo.workers_of_apprank(task.apprank)) {
    if (w == home) continue;
    const int node = topo.worker(w).node;
    const LocalMaster& m = consult(node, stats);
    if (!view_.usable(w)) continue;  // live O(1) check beats any summary
    if (slack_of(m.summary(), w) <= 0) continue;
    considered = true;
    // Veto 1: the path from home is saturated — streaming input bytes
    // into it deepens the queue (same rule as the congestion policy).
    if (net != nullptr && sconf_.congestion_avoid > 0.0 &&
        net->path_load(home_node, node) >= sconf_.congestion_avoid) {
      vetoed = true;
      continue;
    }
    // Veto 2: tasks queue on that node far longer than at home — the
    // offload moves the wait instead of removing it (per-helper wait
    // estimate, decayed so a drained node becomes a candidate again).
    if (sconf_.wait_helper_factor > 0.0 &&
        m.wait_estimate(view_.now(), sconf_.wait_halflife) >
            sconf_.wait_helper_factor *
                std::max(home_wait, sconf_.wait_offload_min)) {
      vetoed = true;
      continue;
    }
    Candidate c;
    c.worker = w;
    c.node = node;
    c.ratio = m.summary().load_ratio;
    c.residency =
        m.residency(task.apprank, view_.now(), hconf_.residency_halflife);
    best_ratio = std::min(best_ratio, c.ratio);
    candidates.push_back(c);
  }
  if (considered) ++stats.offloads_considered;
  // Near-ties in load compete on residency: among candidates within
  // residency_band of the lowest load_ratio, take the warmest node for
  // this apprank (fewer input bytes to move). Ties — including the
  // no-history case where every residency is 0 — fall back to the lowest
  // ratio, first encountered, which is exactly the pre-residency rule.
  const Candidate* best = nullptr;
  for (const Candidate& c : candidates) {
    if (c.ratio > best_ratio + hconf_.residency_band) continue;
    if (best == nullptr || c.residency > best->residency ||
        (c.residency == best->residency && c.ratio < best->ratio)) {
      best = &c;
    }
  }
  if (best != nullptr) {
    LocalMaster& m = master(best->node);
    m.note_placed(best->worker);
    m.observe_residency(task.apprank, input_bytes, view_.now(),
                        hconf_.residency_smoothing,
                        hconf_.residency_halflife);
    ++stats.offloads_steered;
    return {best->worker, sched::DecisionKind::Steered};
  }
  if (vetoed) {
    // Capacity existed but every candidate was vetoed by feedback: hold
    // the task centrally, an idle worker will steal it.
    ++stats.offloads_suppressed;
    return {-1, sched::DecisionKind::Suppressed};
  }
  return {-1, sched::DecisionKind::Baseline};  // cluster-wide saturation
}

void GlobalBalancer::on_task_started(core::WorkerId w, sim::SimTime wait) {
  const int node = view_.topology().worker(w).node;
  master(node).observe_wait(wait, view_.now(), sconf_.wait_smoothing,
                            sconf_.wait_halflife);
}

}  // namespace tlb::hier
