#include "sched/registry.hpp"

#include <stdexcept>
#include <utility>

#include "sched/policies.hpp"

namespace tlb::sched {

namespace {

struct Entry {
  const char* name;
  PolicyFactory make;
};

constexpr Entry kBuiltins[] = {
    {"locality",
     [](const SchedConfig&, const RuntimeView& view)
         -> std::unique_ptr<Scheduler> {
       return std::make_unique<LocalityScheduler>(view);
     }},
    {"congestion",
     [](const SchedConfig& config, const RuntimeView& view)
         -> std::unique_ptr<Scheduler> {
       return std::make_unique<CongestionScheduler>(config, view);
     }},
    {"waittime",
     [](const SchedConfig& config, const RuntimeView& view)
         -> std::unique_ptr<Scheduler> {
       return std::make_unique<WaittimeScheduler>(config, view);
     }},
    {"adaptive",
     [](const SchedConfig& config, const RuntimeView& view)
         -> std::unique_ptr<Scheduler> {
       return std::make_unique<AdaptiveScheduler>(config, view);
     }},
};

/// Extension entries added through register_policy (tlb::hier's "hier").
/// Function-local static so registration from any static-initialization
/// context is safe; insertion order is preserved for known_policies().
std::vector<std::pair<std::string, PolicyFactory>>& extensions() {
  static std::vector<std::pair<std::string, PolicyFactory>> ext;
  return ext;
}

}  // namespace

std::vector<std::string> known_policies() {
  std::vector<std::string> names;
  for (const Entry& e : kBuiltins) names.emplace_back(e.name);
  for (const auto& [name, make] : extensions()) names.push_back(name);
  return names;
}

bool policy_registered(const std::string& name) {
  for (const Entry& e : kBuiltins) {
    if (name == e.name) return true;
  }
  for (const auto& [ext, make] : extensions()) {
    if (name == ext) return true;
  }
  return false;
}

void register_policy(const std::string& name, PolicyFactory make) {
  if (make == nullptr) {
    throw std::invalid_argument("sched::register_policy: null factory for '" +
                                name + "'");
  }
  if (policy_registered(name)) {
    throw std::invalid_argument("sched::register_policy: policy '" + name +
                                "' is already registered");
  }
  extensions().emplace_back(name, make);
}

std::unique_ptr<Scheduler> make_scheduler(const SchedConfig& config,
                                          const RuntimeView& view) {
  for (const Entry& e : kBuiltins) {
    if (config.policy == e.name) return e.make(config, view);
  }
  for (const auto& [name, make] : extensions()) {
    if (config.policy == name) return make(config, view);
  }
  std::string valid;
  for (const std::string& name : known_policies()) {
    if (!valid.empty()) valid += ", ";
    valid += name;
  }
  throw std::invalid_argument("RuntimeConfig::sched: unknown scheduling "
                              "policy '" +
                              config.policy + "'; valid values: " + valid);
}

}  // namespace tlb::sched
