#include "sched/registry.hpp"

#include <stdexcept>
#include <utility>

#include "sched/policies.hpp"

namespace tlb::sched {

namespace {

using Factory = std::unique_ptr<Scheduler> (*)(const SchedConfig&,
                                               const RuntimeView&);

struct Entry {
  const char* name;
  Factory make;
};

constexpr Entry kRegistry[] = {
    {"locality",
     [](const SchedConfig&, const RuntimeView& view)
         -> std::unique_ptr<Scheduler> {
       return std::make_unique<LocalityScheduler>(view);
     }},
    {"congestion",
     [](const SchedConfig& config, const RuntimeView& view)
         -> std::unique_ptr<Scheduler> {
       return std::make_unique<CongestionScheduler>(config, view);
     }},
    {"waittime",
     [](const SchedConfig& config, const RuntimeView& view)
         -> std::unique_ptr<Scheduler> {
       return std::make_unique<WaittimeScheduler>(config, view);
     }},
};

}  // namespace

std::vector<std::string> known_policies() {
  std::vector<std::string> names;
  for (const Entry& e : kRegistry) names.emplace_back(e.name);
  return names;
}

std::unique_ptr<Scheduler> make_scheduler(const SchedConfig& config,
                                          const RuntimeView& view) {
  for (const Entry& e : kRegistry) {
    if (config.policy == e.name) return e.make(config, view);
  }
  std::string valid;
  for (const Entry& e : kRegistry) {
    if (!valid.empty()) valid += ", ";
    valid += e.name;
  }
  throw std::invalid_argument("RuntimeConfig::sched: unknown scheduling "
                              "policy '" +
                              config.policy + "'; valid values: " + valid);
}

}  // namespace tlb::sched
