// Time-decayed exponential averages for scheduling signals (tlb::sched).
//
// The feedback policies smooth observed waits / flow completion times with
// an EWMA, but a plain sample-driven EWMA has a staleness bug: a helper
// that stops producing samples (idle, drained, or simply not chosen)
// keeps its last estimate forever, and a burst that ended seconds ago
// still reads as "busy". DecayEwma fixes that by decaying the estimate
// towards zero with a configurable half-life between observations, so a
// read at time t sees value * 2^-((t - last_observation) / half_life).
// half_life <= 0 disables the decay (legacy last-seen behaviour).
#pragma once

#include <cmath>

#include "sim/time.hpp"

namespace tlb::sched {

class DecayEwma {
 public:
  /// Estimate as of `now`: the stored value decayed by the elapsed time
  /// since the last observation. Pure — repeated reads at the same time
  /// return the same value.
  [[nodiscard]] double read(sim::SimTime now, double half_life) const {
    if (half_life <= 0.0 || value_ == 0.0 || now <= updated_) return value_;
    return value_ * std::exp2(-(now - updated_) / half_life);
  }

  /// Folds one sample in at time `now`: the current (decayed) estimate is
  /// blended as estimate = smoothing * decayed + (1 - smoothing) * sample.
  void observe(double sample, sim::SimTime now, double smoothing,
               double half_life) {
    value_ = smoothing * read(now, half_life) + (1.0 - smoothing) * sample;
    updated_ = now;
  }

  [[nodiscard]] sim::SimTime last_updated() const { return updated_; }

 private:
  double value_ = 0.0;
  sim::SimTime updated_ = 0.0;
};

}  // namespace tlb::sched
