// "adaptive" — online selection over the fixed policy portfolio.
//
// LB4OMP (Korndörfer et al.) showed that for OpenMP loop scheduling no
// single DLS technique wins across applications and system states, and
// that a runtime selecting among techniques from *observed performance*
// beats any fixed choice. The same holds for victim selection here
// (fig14: congestion steering wins when it keeps the fabric healthy,
// waittime suppression wins when offloads are speculative, locality when
// neither), and crucially the winning regime cannot be recovered from
// instantaneous signals alone — a congested fabric can mean "steer
// around it" or "stop offloading" depending on whether the alternative
// paths have headroom. So the portfolio measures instead of guessing:
// each mode is probed for a window of simulated time while its
// task-start rate is recorded, the highest-throughput mode is elected
// and exploited, and re-exploration happens only when the observed
// queue waits drift or the fabric-pressure regime crosses the
// configured dead band. Throughput is the reward because it tracks the
// makespan objective for every mode, where waits cannot: suppression
// (waittime) deliberately trades longer individual waits for fewer
// pointless transfers, so judging it by waits would never elect it.
// Switches are damped three ways (election margin, minimum exploit
// dwell, pressure dead band), so a signal oscillating inside the band
// never flaps the mode.
#include "sched/policies.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace tlb::sched {

Decision AdaptiveScheduler::pick(const nanos::Task& task) {
  step(task);
  ++mode_decisions_[static_cast<std::size_t>(mode_)];
  return active().pick(task);
}

void AdaptiveScheduler::on_task_started(const nanos::Task& task,
                                        core::WorkerId w, sim::SimTime wait) {
  // Keep every estimator warm so a mode entered later starts from current
  // signals, not from whatever was observed before the last switch.
  locality_.on_task_started(task, w, wait);
  congestion_.on_task_started(task, w, wait);
  waittime_.on_task_started(task, w, wait);
  // Attribute the wait to the currently active mode's open window. Waits
  // observed early in a window were partly caused by the previous mode's
  // placements; the windows are long enough that the tail dominates.
  window_wait_sum_ += wait;
  ++window_waits_;
}

void AdaptiveScheduler::on_inputs_landed(core::WorkerId w, sim::SimTime fct) {
  locality_.on_inputs_landed(w, fct);
  congestion_.on_inputs_landed(w, fct);
  waittime_.on_inputs_landed(w, fct);
}

double AdaptiveScheduler::sampled_pressure(const nanos::Task& task) {
  const net::LinkLoadView* net = view_.link_load();
  if (net == nullptr) return 0.0;
  const core::Topology& topo = view_.topology();
  const int home_node = topo.home_node(task.apprank);
  double pressure = 0.0;
  for (const core::WorkerId w : topo.workers_of_apprank(task.apprank)) {
    const int node = topo.worker(w).node;
    if (node == home_node) continue;
    ++probe_touched_;
    pressure = std::max(pressure, net->path_load(home_node, node));
  }
  return pressure;
}

void AdaptiveScheduler::set_mode(Mode m) {
  if (m == mode_) return;
  mode_ = m;
  ++switches_;
}

void AdaptiveScheduler::elect() {
  exploring_ = false;
  Mode best = Mode::Locality;
  double best_rate = probe_rate_[0];
  for (int i = 1; i < 3; ++i) {
    if (probe_rate_[i] > best_rate) {
      best = static_cast<Mode>(i);
      best_rate = probe_rate_[i];
    }
  }
  // Hysteresis #1: the incumbent is displaced only if the challenger
  // beats its measured throughput by the relative margin — equivalent
  // measurements keep the incumbent, so modes that tie never flap.
  const double incumbent_rate =
      probe_rate_[static_cast<std::size_t>(incumbent_)];
  if (best != incumbent_ &&
      best_rate <= (1.0 + config_.adaptive_margin) * incumbent_rate) {
    best = incumbent_;
  }
  incumbent_ = best;
  elected_wait_ = probe_wait_[static_cast<std::size_t>(best)];
  elected_regime_ = regime_;
  exploit_windows_ = 0;
  set_mode(best);
  // Diagnostic trace of each election (off unless explicitly requested).
  if (std::getenv("TLB_ADAPTIVE_DEBUG") != nullptr) {
    std::fprintf(stderr,
                 "[adaptive] t=%.3f elect=%s rates={loc %.1f cong %.1f "
                 "wait %.1f}/s waits={%.4f %.4f %.4f}s regime=%d\n",
                 view_.now(), to_string(best), probe_rate_[0],
                 probe_rate_[1], probe_rate_[2], probe_wait_[0],
                 probe_wait_[1], probe_wait_[2], regime_);
  }
}

void AdaptiveScheduler::step(const nanos::Task& task) {
  // Pressure regime with a dead band: only a crossing of the high or low
  // threshold moves it; values inside [low, high) leave it latched.
  const double pressure = sampled_pressure(task);
  if (pressure >= config_.adaptive_pressure_high) {
    regime_ = 1;
  } else if (pressure <= config_.adaptive_pressure_low) {
    regime_ = -1;
  }

  const sim::SimTime elapsed = view_.now() - window_start_;
  if (elapsed < config_.adaptive_window) return;

  // Window boundary: fold the window's measurements into the active
  // mode's scores. A window with no observed starts measured nothing —
  // the mode keeps its previous scores rather than reading as
  // infinitely good or bad.
  const std::size_t mi = static_cast<std::size_t>(mode_);
  if (window_waits_ > 0) {
    probe_rate_[mi] = static_cast<double>(window_waits_) / elapsed;
    probe_wait_[mi] = window_wait_sum_ / static_cast<double>(window_waits_);
  }
  const double mean_wait = probe_wait_[mi];
  window_start_ = view_.now();
  window_wait_sum_ = 0.0;
  window_waits_ = 0;

  if (exploring_) {
    // One scored window per mode. In barrier-paced programs the window
    // stretches to a full iteration (decisions arrive in same-instant
    // bursts and the barrier drains everything in between), so the score
    // captures the mode's end-to-end effect on the iteration with no
    // carryover from the previous mode.
    if (probe_index_ < 2) {
      ++probe_index_;
      const Mode next = static_cast<Mode>(probe_index_);
      if (next == Mode::Waittime && config_.adaptive_cold_probe) {
        // Cold probe: the always-warm estimators (on_task_started above)
        // hand the waittime probe the *previous* mode's high waits, so
        // suppression never engages and the window measures
        // locality-with-extra-steps. Clearing the estimates lets the
        // probe reach the mode's own suppress -> low-waits equilibrium;
        // they re-warm from this window's observations immediately.
        waittime_.reset_estimates();
      }
      set_mode(next);
      return;
    }
    elect();
    return;
  }

  // Exploit: keep scoring the incumbent, re-explore only after the
  // minimum dwell (hysteresis #2) and only on a real trigger.
  ++exploit_windows_;
  if (exploit_windows_ < config_.adaptive_dwell) return;
  const double drift_floor =
      std::max(elected_wait_, config_.wait_offload_min);
  const bool wait_drift =
      mean_wait > config_.adaptive_wait_exit * drift_floor;
  const bool regime_shift = regime_ != elected_regime_;
  if (wait_drift || regime_shift) {
    exploring_ = true;
    probe_index_ = 0;
    set_mode(Mode::Locality);
  }
}

const SchedStats& AdaptiveScheduler::stats() const {
  merged_ = SchedStats{};
  merged_.merge(locality_.stats());
  merged_.merge(congestion_.stats());
  merged_.merge(waittime_.stats());
  merged_.merge(stats_);  // locality_pick probes made through *this*, if any
  merged_.switches = switches_;
  merged_.state_touched += probe_touched_;
  return merged_;
}

}  // namespace tlb::sched
