// Name -> policy registry for the scheduler subsystem.
//
// RuntimeConfig::sched.policy selects the scheduling policy by name at
// ClusterRuntime construction. Unknown names throw std::invalid_argument
// with the list of valid values — never a silent fallback to the default.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/config.hpp"
#include "sched/scheduler.hpp"

namespace tlb::sched {

/// Registered policy names, in registration order ("locality" first; it
/// is the default).
[[nodiscard]] std::vector<std::string> known_policies();

/// Constructs the policy named by `config.policy` over `view` (which must
/// outlive the scheduler). Throws std::invalid_argument naming the bad
/// value and listing every registered policy when the name is unknown.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const SchedConfig& config, const RuntimeView& view);

}  // namespace tlb::sched
