// Name -> policy registry for the scheduler subsystem.
//
// RuntimeConfig::sched.policy selects the scheduling policy by name at
// ClusterRuntime construction. Unknown names throw std::invalid_argument
// with the list of valid values — never a silent fallback to the default.
//
// Two kinds of entries coexist:
//   - built-ins ("locality", "congestion", "waittime", "adaptive") are
//     compiled into this library and always present;
//   - extensions are added at runtime through register_policy() by
//     higher layers that cannot be linked from here (tlb::hier registers
//     "hier" — tlb_hier links tlb_sched, so the dependency must point
//     upward). Registering a name twice — including shadowing a built-in —
//     throws std::invalid_argument: a silent override would make the
//     selected policy depend on link/registration order.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/config.hpp"
#include "sched/scheduler.hpp"

namespace tlb::sched {

/// Factory signature shared by built-ins and extensions. The returned
/// scheduler reads `view` for its whole lifetime.
using PolicyFactory = std::unique_ptr<Scheduler> (*)(const SchedConfig&,
                                                     const RuntimeView&);

/// Registered policy names, in registration order ("locality" first; it
/// is the default; extensions follow the built-ins).
[[nodiscard]] std::vector<std::string> known_policies();

/// True when `name` resolves to a built-in or registered extension.
[[nodiscard]] bool policy_registered(const std::string& name);

/// Adds an extension policy. Throws std::invalid_argument when `name` is
/// already taken (built-in or extension) or `make` is null.
void register_policy(const std::string& name, PolicyFactory make);

/// Constructs the policy named by `config.policy` over `view` (which must
/// outlive the scheduler). Throws std::invalid_argument naming the bad
/// value and listing every registered policy when the name is unknown.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const SchedConfig& config, const RuntimeView& view);

}  // namespace tlb::sched
