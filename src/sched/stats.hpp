// Per-policy scheduling counters, surfaced through RunResult and
// dlb::sched_report. Header-only so reporting code can consume the struct
// without linking tlb_sched.
#pragma once

#include <cstdint>

namespace tlb::sched {

struct SchedStats {
  /// pick() calls for offloadable ready tasks (victim selections).
  std::uint64_t decisions = 0;
  /// Decisions where at least one usable remote helper was a candidate —
  /// the opportunities to offload.
  std::uint64_t offloads_considered = 0;
  /// Decisions where the policy chose a different worker than the
  /// locality baseline would have (feedback signals redirected the task).
  std::uint64_t offloads_steered = 0;
  /// Decisions where the policy withheld a remote offload the locality
  /// baseline would have made (task held at home / in the central queue).
  std::uint64_t offloads_suppressed = 0;
};

}  // namespace tlb::sched
