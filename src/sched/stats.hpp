// Per-policy scheduling counters, surfaced through RunResult and
// dlb::sched_report. Header-only so reporting code can consume the struct
// without linking tlb_sched.
#pragma once

#include <cstdint>

namespace tlb::sched {

struct SchedStats {
  /// pick() calls for offloadable ready tasks (victim selections).
  std::uint64_t decisions = 0;
  /// Decisions where at least one usable remote helper was a candidate —
  /// the opportunities to offload.
  std::uint64_t offloads_considered = 0;
  /// Decisions where the policy chose a different worker than the
  /// locality baseline would have (feedback signals redirected the task).
  std::uint64_t offloads_steered = 0;
  /// Decisions where the policy withheld a remote offload the locality
  /// baseline would have made (task held at home / in the central queue).
  std::uint64_t offloads_suppressed = 0;
  /// Mode changes of an online-adaptive portfolio policy ("adaptive":
  /// locality <-> congestion <-> waittime). 0 for fixed policies.
  std::uint64_t switches = 0;
  /// Per-worker / per-summary state probes performed while deciding: one
  /// per inflight/usable/residency read, one per owned-core scanned by the
  /// in-flight threshold, one per cached node summary consulted. The
  /// scheduling-cost metric the fig14 scaling arm tracks —
  /// state_touched / decisions is the per-decision victim-selection cost.
  std::uint64_t state_touched = 0;

  /// Accumulates `other` into this (mid-run policy hot-swap: the retired
  /// scheduler's counters fold into the run total).
  void merge(const SchedStats& other) {
    decisions += other.decisions;
    offloads_considered += other.offloads_considered;
    offloads_steered += other.offloads_steered;
    offloads_suppressed += other.offloads_suppressed;
    switches += other.switches;
    state_touched += other.state_touched;
  }
};

}  // namespace tlb::sched
