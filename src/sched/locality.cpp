#include "sched/policies.hpp"

namespace tlb::sched {

Decision LocalityScheduler::pick(const nanos::Task& task) {
  ++stats_.decisions;
  if (has_remote_candidate(task)) ++stats_.offloads_considered;
  // The baseline *is* the decision: never steered, never suppressed.
  return {locality_pick(task), DecisionKind::Baseline};
}

}  // namespace tlb::sched
