// Configuration of the pluggable scheduler subsystem (tlb::sched).
//
// RuntimeConfig::sched selects the victim-selection policy by *name*
// (registry lookup, see sched/registry.hpp). Unknown names are rejected
// at ClusterRuntime construction with an error listing the valid values —
// a typo never silently falls back to the default.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace tlb::sched {

struct SchedConfig {
  /// Policy name: "locality" (paper §5.5, the default), "congestion"
  /// (locality + fabric link-load + per-helper FCT feedback), "waittime"
  /// (Samfass-style offload throttling on observed waits), "adaptive"
  /// (online portfolio selection among the three with hysteresis), or
  /// "hier" (two-level scheduling over per-node summaries, tlb::hier —
  /// equivalent to setting RuntimeConfig::hier.enabled).
  std::string policy = "locality";

  // --- congestion policy tuning ----------------------------------------------

  /// Path utilization at/above which a remote candidate with data still
  /// to move is steered away from (its uplink is saturated; streaming
  /// more input bytes over it would only deepen the queue).
  double congestion_avoid = 0.85;
  /// EWMA factor for the per-helper flow-completion-time estimate:
  /// ewma = smoothing * ewma + (1 - smoothing) * observed.
  double fct_smoothing = 0.7;
  /// Weight of the per-helper FCT estimate in the candidate cost
  /// (seconds of penalty per second of smoothed FCT). Deliberately small:
  /// observed FCTs include whole-transfer queueing and run ~100x the
  /// instantaneous per-task transfer estimates, and the EWMA lags the
  /// fabric state — as a primary signal it causes anti-locality
  /// ping-ponging (steering to whichever helper was not used recently).
  /// At this scale it breaks ties between similarly-loaded paths while
  /// the live link utilization leads the decision.
  double fct_penalty = 0.02;

  // --- waittime policy tuning -------------------------------------------------

  /// EWMA factor for the per-apprank task queue-wait estimate.
  double wait_smoothing = 0.7;
  /// Mean queue wait (seconds) below which remote offloading is
  /// suppressed: tasks that barely wait at home gain nothing from paying
  /// an offload transfer (Samfass et al.: offload on observed wait times,
  /// not static scores).
  sim::SimTime wait_offload_min = 0.005;
  /// Half-life (seconds) of the wait estimates between observations: an
  /// estimate read t seconds after its last sample is scaled by
  /// 2^-(t / half_life), so a helper that went idle decays back towards
  /// "no observed waiting" instead of keeping its last-seen value forever.
  /// <= 0 disables the decay (legacy behaviour).
  double wait_halflife = 0.5;
  /// Per-helper throttle: a remote offload whose target helper's own
  /// smoothed queue wait exceeds wait_helper_factor x the apprank's home
  /// wait is suppressed — tasks queue there longer than at home, so the
  /// transfer buys nothing. Helper waits are observed end-to-end (they
  /// include the offload input transfer), so the factor leaves headroom:
  /// only a helper whose waits dwarf the home wait is vetoed.
  /// 0 disables the per-helper veto.
  double wait_helper_factor = 4.0;

  // --- adaptive portfolio tuning ----------------------------------------------
  // The portfolio is explore/exploit on *measured* waits: probe each mode
  // for a window of decisions, elect the best-measured one, exploit it
  // until the signals say the regime changed (see sched/policies.hpp).

  /// Probe window length in simulated seconds: each mode is measured
  /// over windows of this length during an explore cycle, and the same
  /// window paces the rolling drift check during exploit. Time-based on
  /// purpose — decisions arrive in same-instant bursts (a scheduler
  /// sweep places a whole iteration's ready tasks at one sim time), so a
  /// decision-counted window can close with zero elapsed time and
  /// measure nothing.
  sim::SimTime adaptive_window = 0.1;
  /// Election margin (relative dead band): a challenger displaces the
  /// incumbent mode only if its measured task-start rate exceeds
  /// (1 + adaptive_margin) x the incumbent's. Equivalent measurements
  /// keep the incumbent — no flapping between modes that tie.
  double adaptive_margin = 0.05;
  /// Fabric-pressure dead band (hottest candidate-path utilization): the
  /// latched pressure regime moves only when a sample crosses
  /// >= adaptive_pressure_high or <= adaptive_pressure_low. A regime
  /// crossing to the opposite side of the band from where the incumbent
  /// was elected triggers re-exploration; oscillation inside the band
  /// never does.
  double adaptive_pressure_high = 0.50;
  double adaptive_pressure_low = 0.25;
  /// Wait-drift trigger: during exploit, a rolling window whose mean
  /// observed wait exceeds adaptive_wait_exit x the elected mode's
  /// measured wait (floored at wait_offload_min) triggers re-exploration.
  double adaptive_wait_exit = 2.0;
  /// Minimum exploit length in probe windows before any re-explore
  /// trigger is honoured (dwell): even a genuine regime change cannot
  /// flip the portfolio back immediately.
  std::uint64_t adaptive_dwell = 16;
  /// Probe the waittime mode from *cold* estimator state: entering the
  /// waittime probe window clears the portfolio's waittime wait/helper
  /// EWMAs first. The estimators are kept warm across switches on
  /// purpose (a mode entered later starts from current signals), but for
  /// waittime specifically the warm start hides the mode's fixed point:
  /// its suppress -> low-waits -> keep-suppressing equilibrium is only
  /// reachable from low estimates, while the probe inherits the
  /// *previous* mode's high waits and measures locality-with-extra-steps
  /// instead. Cold-starting just the probe lets the election see the
  /// mode's own equilibrium. false restores the always-warm behaviour.
  bool adaptive_cold_probe = true;
};

}  // namespace tlb::sched
