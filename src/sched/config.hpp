// Configuration of the pluggable scheduler subsystem (tlb::sched).
//
// RuntimeConfig::sched selects the victim-selection policy by *name*
// (registry lookup, see sched/registry.hpp). Unknown names are rejected
// at ClusterRuntime construction with an error listing the valid values —
// a typo never silently falls back to the default.
#pragma once

#include <string>

#include "sim/time.hpp"

namespace tlb::sched {

struct SchedConfig {
  /// Policy name: "locality" (paper §5.5, the default), "congestion"
  /// (locality + fabric link-load + per-helper FCT feedback), or
  /// "waittime" (Samfass-style offload throttling on observed waits).
  std::string policy = "locality";

  // --- congestion policy tuning ----------------------------------------------

  /// Path utilization at/above which a remote candidate with data still
  /// to move is steered away from (its uplink is saturated; streaming
  /// more input bytes over it would only deepen the queue).
  double congestion_avoid = 0.85;
  /// EWMA factor for the per-helper flow-completion-time estimate:
  /// ewma = smoothing * ewma + (1 - smoothing) * observed.
  double fct_smoothing = 0.7;
  /// Weight of the per-helper FCT estimate in the candidate cost
  /// (seconds of penalty per second of smoothed FCT). Deliberately small:
  /// observed FCTs include whole-transfer queueing and run ~100x the
  /// instantaneous per-task transfer estimates, and the EWMA lags the
  /// fabric state — as a primary signal it causes anti-locality
  /// ping-ponging (steering to whichever helper was not used recently).
  /// At this scale it breaks ties between similarly-loaded paths while
  /// the live link utilization leads the decision.
  double fct_penalty = 0.02;

  // --- waittime policy tuning -------------------------------------------------

  /// EWMA factor for the per-apprank task queue-wait estimate.
  double wait_smoothing = 0.7;
  /// Mean queue wait (seconds) below which remote offloading is
  /// suppressed: tasks that barely wait at home gain nothing from paying
  /// an offload transfer (Samfass et al.: offload on observed wait times,
  /// not static scores).
  sim::SimTime wait_offload_min = 0.005;
};

}  // namespace tlb::sched
