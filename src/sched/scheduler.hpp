// Pluggable task scheduler (victim selection) for the ClusterRuntime.
//
// The paper's §5.5 scheduling rule — locality-first placement with a
// two-tasks-per-owned-core in-flight throttle and a central overflow
// queue — used to be hard-coded in core/runtime.cpp. This subsystem
// extracts the *decision* (which worker runs a ready offloadable task)
// behind a Scheduler interface so alternative policies can feed runtime
// signals back into the choice:
//   - "locality"   — bit-identical re-implementation of the legacy rule
//                    (default; golden-schedule tests pin it);
//   - "congestion" — locality cost extended with net::LinkLoadView path
//                    utilization and a per-helper EWMA of observed flow
//                    completion times (steers offloads away from
//                    saturated uplinks and slow/quarantine-prone helpers);
//   - "waittime"   — suppresses offloads while observed task queue waits
//                    are short (Samfass-style: offload on evidence of
//                    waiting, not on static scores).
//
// The mechanics of an offload (control messages, leases, transfers,
// dispatch) stay in the runtime; policies only choose the victim. Every
// policy is deterministic: decisions are pure functions of the runtime
// state exposed through RuntimeView and of signals delivered through the
// on_*() hooks, in simulation order.
#pragma once

#include <memory>

#include "core/topology.hpp"
#include "nanos/data_location.hpp"
#include "nanos/task.hpp"
#include "net/link_load.hpp"
#include "sched/config.hpp"
#include "sched/stats.hpp"
#include "sim/time.hpp"

namespace tlb::sched {

/// Read-only window into the runtime state a scheduling policy may
/// consult. Implemented by core::ClusterRuntime; kept abstract so
/// policies are unit-testable against a fake and tlb_sched never links
/// against tlb_core.
class RuntimeView {
 public:
  virtual ~RuntimeView() = default;
  [[nodiscard]] virtual const core::Topology& topology() const = 0;
  /// Alive and not quarantined: eligible for victim selection.
  [[nodiscard]] virtual bool usable(core::WorkerId w) const = 0;
  /// Assigned + running tasks of the worker.
  [[nodiscard]] virtual int inflight(core::WorkerId w) const = 0;
  /// Cores the worker currently owns (DROM ownership).
  [[nodiscard]] virtual int owned_cores(core::WorkerId w) const = 0;
  /// RuntimeConfig::inflight_per_core (paper §5.5: two per owned core).
  [[nodiscard]] virtual int inflight_per_core() const = 0;
  /// Data residency of the apprank (locality scores, transfer volumes).
  [[nodiscard]] virtual const nanos::DataLocations& locations(
      int apprank) const = 0;
  [[nodiscard]] virtual sim::SimTime now() const = 0;
  /// Live link-utilization view of the fabric (tlb::net), or nullptr
  /// when the analytic cost model is active (no congestion signal).
  [[nodiscard]] virtual const net::LinkLoadView* link_load() const = 0;
};

enum class DecisionKind {
  Baseline,    ///< same choice the locality rule would have made
  Steered,     ///< feedback signals redirected the task to another worker
  Suppressed,  ///< a remote offload was withheld (task held home/centrally)
};

/// Outcome of one victim selection. worker == -1 holds the task in the
/// apprank's central queue (every candidate saturated or vetoed); idle
/// workers steal from that queue as tasks complete (§5.5).
struct Decision {
  core::WorkerId worker = -1;
  DecisionKind kind = DecisionKind::Baseline;
};

class Scheduler {
 public:
  explicit Scheduler(const RuntimeView& view) : view_(view) {}
  virtual ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Chooses the worker to run a ready offloadable task, or -1 to hold it
  /// centrally. Must only return usable workers under their in-flight
  /// threshold.
  [[nodiscard]] virtual Decision pick(const nanos::Task& task) = 0;

  // --- feedback signals (no-ops unless a policy overrides them) --------------

  /// A task entered execution on `w` after `wait` seconds between
  /// readiness and its core claim (queue + transfer wait).
  virtual void on_task_started(const nanos::Task& task, core::WorkerId w,
                               sim::SimTime wait) {
    (void)task;
    (void)w;
    (void)wait;
  }
  /// The last input flow of an offloaded task landed at worker `w`,
  /// `fct` seconds after the transfers started (net mode only).
  virtual void on_inputs_landed(core::WorkerId w, sim::SimTime fct) {
    (void)w;
    (void)fct;
  }

  /// Per-policy counters. Virtual so composite policies (the "adaptive"
  /// portfolio) can present a merged view over their sub-policies.
  [[nodiscard]] virtual const SchedStats& stats() const { return stats_; }

 protected:
  /// The legacy §5.5 rule, verbatim: locality-best node (most resident
  /// input bytes, home wins ties) if under its threshold, else the least
  /// loaded usable alternative under the threshold, else -1. Policies use
  /// it both as the baseline for steered/suppressed accounting and as the
  /// fallback when their feedback signal is absent.
  [[nodiscard]] core::WorkerId locality_pick(const nanos::Task& task) const;

  /// The two-tasks-per-owned-core throttle (§5.5). Charges the probe to
  /// SchedStats::state_touched: one for the in-flight read plus one per
  /// owned core the underlying registry scan walks (the O(cores) global
  /// state the hierarchical scheduler's summaries amortize away).
  [[nodiscard]] bool under_threshold(core::WorkerId w) const {
    const int owned = view_.owned_cores(w);
    stats_.state_touched += 1 + static_cast<std::uint64_t>(owned > 0 ? owned : 1);
    return view_.inflight(w) < view_.inflight_per_core() * owned;
  }

  /// True when the apprank has at least one usable remote candidate under
  /// its threshold (an offload opportunity, for considered accounting).
  [[nodiscard]] bool has_remote_candidate(const nanos::Task& task) const;

  const RuntimeView& view_;
  /// Mutable: the §5.5 helpers above are const (decisions are pure reads
  /// of the runtime state) but still charge their probe costs.
  mutable SchedStats stats_;
};

}  // namespace tlb::sched
