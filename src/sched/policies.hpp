// The shipped scheduling policies (see sched/scheduler.hpp for the
// interface and sched/registry.hpp for name-based construction).
#pragma once

#include <vector>

#include "sched/scheduler.hpp"

namespace tlb::sched {

/// "locality" — the paper's §5.5 rule, extracted verbatim from the
/// pre-subsystem runtime. The default; golden-schedule regression tests
/// pin its placements bit-identically to the legacy implementation.
class LocalityScheduler final : public Scheduler {
 public:
  explicit LocalityScheduler(const RuntimeView& view) : Scheduler(view) {}
  [[nodiscard]] const char* name() const override { return "locality"; }
  [[nodiscard]] Decision pick(const nanos::Task& task) override;
};

/// "congestion" — locality extended with interconnect feedback: each
/// candidate is costed by its estimated input-transfer time over the
/// *currently loaded* path (net::LinkLoadView) plus an EWMA of the flow
/// completion times this helper's past offloads observed. Candidates
/// whose path is saturated (>= SchedConfig::congestion_avoid) with input
/// bytes still to move are vetoed, steering offloads away from hot
/// uplinks; when every remote option is vetoed the task is held centrally
/// (idle workers pull it later — deferring beats streaming into a full
/// queue). Without a fabric (analytic model) there is no signal and the
/// policy decays to the locality rule exactly.
class CongestionScheduler final : public Scheduler {
 public:
  CongestionScheduler(const SchedConfig& config, const RuntimeView& view)
      : Scheduler(view), config_(config) {}
  [[nodiscard]] const char* name() const override { return "congestion"; }
  [[nodiscard]] Decision pick(const nanos::Task& task) override;
  void on_inputs_landed(core::WorkerId w, sim::SimTime fct) override;

  /// Smoothed flow-completion time of offload inputs towards `w`
  /// (seconds; 0 until the first observation).
  [[nodiscard]] double fct_estimate(core::WorkerId w) const {
    return static_cast<std::size_t>(w) < fct_ewma_.size()
               ? fct_ewma_[static_cast<std::size_t>(w)]
               : 0.0;
  }

 private:
  SchedConfig config_;
  std::vector<double> fct_ewma_;  ///< per worker (lazily grown on rewires)
};

/// "waittime" — offload aggressiveness throttled per apprank by observed
/// task waits (Samfass et al., "Lightweight Task Offloading Exploiting
/// MPI Wait Times"): while the apprank's smoothed ready-to-start wait is
/// below SchedConfig::wait_offload_min its tasks barely queue at home, so
/// a remote placement would pay transfer cost for nothing and the offload
/// is suppressed. Once waits build up the locality rule resumes.
class WaittimeScheduler final : public Scheduler {
 public:
  WaittimeScheduler(const SchedConfig& config, const RuntimeView& view)
      : Scheduler(view), config_(config) {}
  [[nodiscard]] const char* name() const override { return "waittime"; }
  [[nodiscard]] Decision pick(const nanos::Task& task) override;
  void on_task_started(const nanos::Task& task, core::WorkerId w,
                       sim::SimTime wait) override;

  /// Smoothed ready-to-start wait of the apprank's tasks (seconds).
  [[nodiscard]] double wait_estimate(int apprank) const {
    return static_cast<std::size_t>(apprank) < wait_ewma_.size()
               ? wait_ewma_[static_cast<std::size_t>(apprank)]
               : 0.0;
  }

 private:
  SchedConfig config_;
  std::vector<double> wait_ewma_;  ///< per apprank
};

}  // namespace tlb::sched
