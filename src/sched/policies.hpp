// The shipped scheduling policies (see sched/scheduler.hpp for the
// interface and sched/registry.hpp for name-based construction).
#pragma once

#include <vector>

#include "sched/ewma.hpp"
#include "sched/scheduler.hpp"

namespace tlb::sched {

/// "locality" — the paper's §5.5 rule, extracted verbatim from the
/// pre-subsystem runtime. The default; golden-schedule regression tests
/// pin its placements bit-identically to the legacy implementation.
class LocalityScheduler final : public Scheduler {
 public:
  explicit LocalityScheduler(const RuntimeView& view) : Scheduler(view) {}
  [[nodiscard]] const char* name() const override { return "locality"; }
  [[nodiscard]] Decision pick(const nanos::Task& task) override;
};

/// "congestion" — locality extended with interconnect feedback: each
/// candidate is costed by its estimated input-transfer time over the
/// *currently loaded* path (net::LinkLoadView) plus an EWMA of the flow
/// completion times this helper's past offloads observed. Candidates
/// whose path is saturated (>= SchedConfig::congestion_avoid) with input
/// bytes still to move are vetoed, steering offloads away from hot
/// uplinks; when every remote option is vetoed the task is held centrally
/// (idle workers pull it later — deferring beats streaming into a full
/// queue). Without a fabric (analytic model) there is no signal and the
/// policy decays to the locality rule exactly.
class CongestionScheduler final : public Scheduler {
 public:
  CongestionScheduler(const SchedConfig& config, const RuntimeView& view)
      : Scheduler(view), config_(config) {}
  [[nodiscard]] const char* name() const override { return "congestion"; }
  [[nodiscard]] Decision pick(const nanos::Task& task) override;
  void on_inputs_landed(core::WorkerId w, sim::SimTime fct) override;

  /// Smoothed flow-completion time of offload inputs towards `w`
  /// (seconds; 0 until the first observation).
  [[nodiscard]] double fct_estimate(core::WorkerId w) const {
    return static_cast<std::size_t>(w) < fct_ewma_.size()
               ? fct_ewma_[static_cast<std::size_t>(w)]
               : 0.0;
  }

 private:
  SchedConfig config_;
  std::vector<double> fct_ewma_;  ///< per worker (lazily grown on rewires)
};

/// "waittime" — offload aggressiveness throttled by observed task waits
/// (Samfass et al., "Lightweight Task Offloading Exploiting MPI Wait
/// Times"): while the apprank's smoothed ready-to-start wait is below
/// SchedConfig::wait_offload_min its tasks barely queue at home, so a
/// remote placement would pay transfer cost for nothing and the offload
/// is suppressed. Once waits build up the locality rule resumes — unless
/// the chosen helper's *own* smoothed queue wait exceeds the home wait
/// (wait_helper_factor), in which case the offload is equally pointless
/// and is suppressed too. All estimates decay with wait_halflife between
/// observations so an idle-then-bursty worker is never judged by stale
/// samples.
class WaittimeScheduler final : public Scheduler {
 public:
  WaittimeScheduler(const SchedConfig& config, const RuntimeView& view)
      : Scheduler(view), config_(config) {}
  [[nodiscard]] const char* name() const override { return "waittime"; }
  [[nodiscard]] Decision pick(const nanos::Task& task) override;
  void on_task_started(const nanos::Task& task, core::WorkerId w,
                       sim::SimTime wait) override;

  /// Smoothed ready-to-start wait of the apprank's tasks (seconds),
  /// decayed to the runtime's current clock.
  [[nodiscard]] double wait_estimate(int apprank) const {
    return static_cast<std::size_t>(apprank) < wait_ewma_.size()
               ? wait_ewma_[static_cast<std::size_t>(apprank)].read(
                     view_.now(), config_.wait_halflife)
               : 0.0;
  }
  /// Smoothed queue wait of tasks that started on worker `w` (seconds),
  /// decayed to the runtime's current clock.
  [[nodiscard]] double helper_wait_estimate(core::WorkerId w) const {
    return static_cast<std::size_t>(w) < helper_ewma_.size()
               ? helper_ewma_[static_cast<std::size_t>(w)].read(
                     view_.now(), config_.wait_halflife)
               : 0.0;
  }

  /// Drops every wait/helper estimate back to the never-observed state.
  /// Used by the adaptive portfolio's cold probe
  /// (SchedConfig::adaptive_cold_probe): waittime's suppression fixed
  /// point is only reachable from low estimates, so the probe window
  /// starts from cold instead of inheriting the previous mode's waits.
  void reset_estimates() {
    wait_ewma_.clear();
    helper_ewma_.clear();
  }

 private:
  SchedConfig config_;
  std::vector<DecayEwma> wait_ewma_;    ///< per apprank
  std::vector<DecayEwma> helper_ewma_;  ///< per worker (grown on rewires)
};

/// "adaptive" — online portfolio selection over the fixed policies
/// (LB4OMP-style: no single technique wins every regime, so measure the
/// run and commit to what works). The portfolio holds one instance of
/// each fixed policy and delegates every victim selection to the active
/// *mode*. Selection is explore/exploit on measured throughput:
///   - explore: each mode is probed over one window of at least
///     SchedConfig::adaptive_window simulated seconds while its
///     task-start rate (starts per simulated second) and mean observed
///     ready-to-start wait are recorded. In barrier-paced programs
///     decisions arrive in same-instant bursts, so a window stretches to
///     the burst-to-burst interval: each mode places one whole iteration
///     and is scored on the drained result. Throughput is
///     the election reward because it tracks the makespan objective for
///     *every* mode — waits cannot: suppression (waittime) deliberately
///     trades longer individual waits for fewer pointless transfers;
///   - elect: the highest-throughput mode wins, but the incumbent is
///     displaced only if the challenger beats it by adaptive_margin
///     (a relative dead band — hysteresis #1);
///   - exploit: the elected mode runs for at least adaptive_dwell probe
///     windows (hysteresis #2) and then indefinitely, until a re-explore
///     trigger fires: the rolling observed wait drifts past
///     adaptive_wait_exit x the wait measured at election, or the
///     fabric-pressure regime crosses to the opposite side of the
///     [adaptive_pressure_low, adaptive_pressure_high] dead band
///     (hysteresis #3 — oscillation inside the band never re-triggers).
/// All feedback hooks are forwarded to every sub-policy so their
/// estimators stay warm across switches.
class AdaptiveScheduler : public Scheduler {
 public:
  enum class Mode { Locality = 0, Congestion = 1, Waittime = 2 };

  AdaptiveScheduler(const SchedConfig& config, const RuntimeView& view)
      : Scheduler(view),
        config_(config),
        locality_(view),
        congestion_(config, view),
        waittime_(config, view) {}

  [[nodiscard]] const char* name() const override { return "adaptive"; }
  [[nodiscard]] Decision pick(const nanos::Task& task) override;
  void on_task_started(const nanos::Task& task, core::WorkerId w,
                       sim::SimTime wait) override;
  void on_inputs_landed(core::WorkerId w, sim::SimTime fct) override;

  /// Merged view: the sub-policies' counters (each decision was delegated
  /// to exactly one of them) plus this portfolio's switch count and
  /// signal-probe costs.
  [[nodiscard]] const SchedStats& stats() const override;

  [[nodiscard]] Mode mode() const { return mode_; }
  /// True while a probe cycle is measuring the modes (explore phase).
  [[nodiscard]] bool exploring() const { return exploring_; }
  /// The last elected (exploited) mode.
  [[nodiscard]] Mode incumbent() const { return incumbent_; }
  [[nodiscard]] std::uint64_t switches() const { return switches_; }
  /// Task-start rate measured during `m`'s last probe window
  /// (starts per simulated second; 0 until measured).
  [[nodiscard]] double probe_rate(Mode m) const {
    return probe_rate_[static_cast<std::size_t>(m)];
  }
  /// Mean observed wait measured during `m`'s last probe window (seconds).
  [[nodiscard]] double probe_wait(Mode m) const {
    return probe_wait_[static_cast<std::size_t>(m)];
  }
  /// Victim selections delegated while in `m` (portfolio mix).
  [[nodiscard]] std::uint64_t decisions_in(Mode m) const {
    return mode_decisions_[static_cast<std::size_t>(m)];
  }
  /// The portfolio's waittime sub-policy (estimate inspection — the cold
  /// probe's reset is observable through wait_estimate()).
  [[nodiscard]] const WaittimeScheduler& waittime() const {
    return waittime_;
  }
  [[nodiscard]] static const char* to_string(Mode m) {
    switch (m) {
      case Mode::Locality: return "locality";
      case Mode::Congestion: return "congestion";
      case Mode::Waittime: return "waittime";
    }
    return "?";
  }

 protected:
  /// Hottest current path utilization from the apprank's home node to any
  /// of its usable remote candidates (0 without a fabric). Virtual so the
  /// explore/exploit logic is unit-testable with an injected signal.
  [[nodiscard]] virtual double sampled_pressure(const nanos::Task& task);

 private:
  void step(const nanos::Task& task);
  void elect();
  void set_mode(Mode m);
  [[nodiscard]] Scheduler& active() {
    switch (mode_) {
      case Mode::Congestion: return congestion_;
      case Mode::Waittime: return waittime_;
      case Mode::Locality: break;
    }
    return locality_;
  }

  SchedConfig config_;
  LocalityScheduler locality_;
  CongestionScheduler congestion_;
  WaittimeScheduler waittime_;
  Mode mode_ = Mode::Locality;       ///< currently delegated-to mode
  Mode incumbent_ = Mode::Locality;  ///< last elected mode
  bool exploring_ = true;            ///< probe cycle in progress
  int probe_index_ = 0;              ///< position in the probe cycle (0..2)
  sim::SimTime window_start_ = 0.0;     ///< clock when the window opened
  double window_wait_sum_ = 0.0;        ///< waits observed in the window
  std::uint64_t window_waits_ = 0;      ///< = task starts in the window
  double probe_rate_[3] = {0.0, 0.0, 0.0};  ///< starts/sim-second per mode
  double probe_wait_[3] = {0.0, 0.0, 0.0};  ///< measured mean wait per mode
  double elected_wait_ = 0.0;       ///< incumbent's wait at election time
  std::uint64_t exploit_windows_ = 0;  ///< windows since the election
  int regime_ = 0;          ///< -1 below low, +1 above high (latched)
  int elected_regime_ = 0;  ///< pressure regime at election time
  std::uint64_t switches_ = 0;
  std::uint64_t probe_touched_ = 0;  ///< signal probes (cost accounting)
  std::uint64_t mode_decisions_[3] = {0, 0, 0};
  mutable SchedStats merged_;
};

}  // namespace tlb::sched
