#include "sched/policies.hpp"

#include <limits>

namespace tlb::sched {

Decision CongestionScheduler::pick(const nanos::Task& task) {
  ++stats_.decisions;
  if (has_remote_candidate(task)) ++stats_.offloads_considered;
  const core::WorkerId base = locality_pick(task);

  const net::LinkLoadView* net = view_.link_load();
  if (net == nullptr) {
    // Analytic cost model: no congestion signal exists, so the policy
    // decays to the locality rule exactly (bit-identical placements).
    return {base, DecisionKind::Baseline};
  }

  const core::Topology& topo = view_.topology();
  const nanos::DataLocations& loc = view_.locations(task.apprank);
  const int home_node = topo.home_node(task.apprank);

  // Cost of a candidate = estimated input-transfer time over the path as
  // it is loaded *right now* (missing bytes over the narrowest link's
  // residual capacity) plus the smoothed FCT this helper's past offload
  // inputs observed. Slot order + strict < keeps the choice deterministic
  // and lets the home worker (slot 0, transfer-free) win exact ties.
  core::WorkerId chosen = -1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const core::WorkerId w : topo.workers_of_apprank(task.apprank)) {
    if (!view_.usable(w) || !under_threshold(w)) continue;
    const int node = topo.worker(w).node;
    const std::uint64_t missing =
        loc.missing_input_bytes(task.accesses, node);
    double cost = config_.fct_penalty * fct_estimate(w);
    if (missing > 0 && node != home_node) {
      // Input bytes overwhelmingly stream from the home node (the apprank
      // allocated its regions there), so the home -> candidate path is
      // the first-order transfer estimate.
      const double load = net->path_load(home_node, node);
      if (load >= config_.congestion_avoid) continue;  // saturated: veto
      const double residual =
          net->path_capacity(home_node, node) * (1.0 - load);
      cost += static_cast<double>(missing) / residual;
    }
    if (cost < best_cost) {
      best_cost = cost;
      chosen = w;
    }
  }

  if (chosen == base) return {chosen, DecisionKind::Baseline};
  if (chosen == -1) {
    // Every surviving candidate was vetoed although the locality rule
    // would have assigned: hold the task centrally — an idle worker
    // pulling it later beats streaming into a saturated uplink now.
    ++stats_.offloads_suppressed;
    return {-1, DecisionKind::Suppressed};
  }
  ++stats_.offloads_steered;
  return {chosen, DecisionKind::Steered};
}

void CongestionScheduler::on_inputs_landed(core::WorkerId w,
                                           sim::SimTime fct) {
  if (static_cast<std::size_t>(w) >= fct_ewma_.size()) {
    fct_ewma_.resize(static_cast<std::size_t>(w) + 1, 0.0);  // rewires grow
  }
  double& ewma = fct_ewma_[static_cast<std::size_t>(w)];
  ewma = ewma == 0.0 ? fct
                     : config_.fct_smoothing * ewma +
                           (1.0 - config_.fct_smoothing) * fct;
}

}  // namespace tlb::sched
