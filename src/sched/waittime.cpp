#include "sched/policies.hpp"

namespace tlb::sched {

Decision WaittimeScheduler::pick(const nanos::Task& task) {
  ++stats_.decisions;
  if (has_remote_candidate(task)) ++stats_.offloads_considered;
  const core::WorkerId base = locality_pick(task);
  const core::WorkerId home = view_.topology().home_worker(task.apprank);

  if (base >= 0 && base != home) {
    const double home_wait = wait_estimate(task.apprank);
    if (home_wait < config_.wait_offload_min) {
      // The apprank's tasks barely wait at home: a remote placement would
      // pay the input transfer for no queueing relief. Keep the task local
      // (or central, where an idle worker can still steal it once real
      // backlog shows up as waiting time).
      ++stats_.offloads_suppressed;
      return {under_threshold(home) ? home : -1, DecisionKind::Suppressed};
    }
    // Per-helper throttle: tasks queue at the chosen helper far longer
    // than at home (its observed end-to-end waits exceed the home
    // estimate by wait_helper_factor), so the offload moves the wait
    // instead of removing it — and pays the transfer on top. Hold the
    // task instead. The estimate decays with wait_halflife, so a helper
    // that has drained its backlog becomes a candidate again without
    // needing a fresh sample.
    if (config_.wait_helper_factor > 0.0 &&
        helper_wait_estimate(base) >
            config_.wait_helper_factor * home_wait) {
      ++stats_.offloads_suppressed;
      return {under_threshold(home) ? home : -1, DecisionKind::Suppressed};
    }
  }
  return {base, DecisionKind::Baseline};
}

void WaittimeScheduler::on_task_started(const nanos::Task& task,
                                        core::WorkerId w, sim::SimTime wait) {
  if (static_cast<std::size_t>(task.apprank) >= wait_ewma_.size()) {
    wait_ewma_.resize(static_cast<std::size_t>(task.apprank) + 1);
  }
  wait_ewma_[static_cast<std::size_t>(task.apprank)].observe(
      wait, view_.now(), config_.wait_smoothing, config_.wait_halflife);
  if (static_cast<std::size_t>(w) >= helper_ewma_.size()) {
    helper_ewma_.resize(static_cast<std::size_t>(w) + 1);  // rewires grow
  }
  helper_ewma_[static_cast<std::size_t>(w)].observe(
      wait, view_.now(), config_.wait_smoothing, config_.wait_halflife);
}

}  // namespace tlb::sched
