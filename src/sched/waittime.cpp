#include "sched/policies.hpp"

namespace tlb::sched {

Decision WaittimeScheduler::pick(const nanos::Task& task) {
  ++stats_.decisions;
  if (has_remote_candidate(task)) ++stats_.offloads_considered;
  const core::WorkerId base = locality_pick(task);
  const core::WorkerId home = view_.topology().home_worker(task.apprank);

  if (base >= 0 && base != home &&
      wait_estimate(task.apprank) < config_.wait_offload_min) {
    // The apprank's tasks barely wait at home: a remote placement would
    // pay the input transfer for no queueing relief. Keep the task local
    // (or central, where an idle worker can still steal it once real
    // backlog shows up as waiting time).
    ++stats_.offloads_suppressed;
    return {under_threshold(home) ? home : -1, DecisionKind::Suppressed};
  }
  return {base, DecisionKind::Baseline};
}

void WaittimeScheduler::on_task_started(const nanos::Task& task,
                                        core::WorkerId /*w*/,
                                        sim::SimTime wait) {
  if (static_cast<std::size_t>(task.apprank) >= wait_ewma_.size()) {
    wait_ewma_.resize(static_cast<std::size_t>(task.apprank) + 1, 0.0);
  }
  double& ewma = wait_ewma_[static_cast<std::size_t>(task.apprank)];
  ewma = config_.wait_smoothing * ewma +
         (1.0 - config_.wait_smoothing) * wait;
}

}  // namespace tlb::sched
