#include "sched/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "prof/prof.hpp"

namespace tlb::sched {

core::WorkerId Scheduler::locality_pick(const nanos::Task& task) const {
  // The flat §5.5 walk every policy builds on; its share of "sched.pick"
  // is what the hier summaries are meant to shrink.
  PROF_SCOPE("sched.locality_walk");
  const core::Topology& topo = view_.topology();
  const auto& ws = topo.workers_of_apprank(task.apprank);
  const nanos::DataLocations& loc = view_.locations(task.apprank);

  // Locality-best node: most input bytes already resident; home wins ties.
  // Crashed and quarantined workers are never candidates (home workers
  // cannot crash and are never quarantined).
  core::WorkerId best = ws.front();
  if (ws.size() > 1 && !task.accesses.empty()) {
    std::uint64_t best_bytes =
        loc.resident_input_bytes(task.accesses, topo.worker(best).node);
    stats_.state_touched += 1;
    for (std::size_t j = 1; j < ws.size(); ++j) {
      stats_.state_touched += 1;
      if (!view_.usable(ws[j])) continue;
      const std::uint64_t b =
          loc.resident_input_bytes(task.accesses, topo.worker(ws[j]).node);
      stats_.state_touched += 1;
      if (b > best_bytes) {
        best = ws[j];
        best_bytes = b;
      }
    }
  }
  if (under_threshold(best)) return best;

  // Alternative node under the threshold, least loaded first.
  core::WorkerId alt = -1;
  double best_ratio = std::numeric_limits<double>::infinity();
  for (core::WorkerId w : ws) {
    stats_.state_touched += 1;
    if (w == best || !view_.usable(w) || !under_threshold(w)) {
      continue;
    }
    stats_.state_touched += 2;
    const double ratio = static_cast<double>(view_.inflight(w)) /
                         std::max(1, view_.owned_cores(w));
    if (ratio < best_ratio) {
      best_ratio = ratio;
      alt = w;
    }
  }
  return alt;  // -1: every node saturated, hold centrally
}

bool Scheduler::has_remote_candidate(const nanos::Task& task) const {
  const core::Topology& topo = view_.topology();
  const core::WorkerId home = topo.home_worker(task.apprank);
  for (core::WorkerId w : topo.workers_of_apprank(task.apprank)) {
    stats_.state_touched += 1;
    if (w != home && view_.usable(w) && under_threshold(w)) return true;
  }
  return false;
}

}  // namespace tlb::sched
