// Live link-load view of a Fabric, exported for congestion-aware
// scheduling (tlb::sched).
//
// The scheduler must not reach into the fabric's flow table; it only
// needs "how loaded is the path from A to B right now". This thin view
// answers that from the per-link utilization the fabric already records
// at every rate recomputation, plus the route table of the topology.
// All answers are deterministic snapshots of the simulation state.
#pragma once

#include "net/fabric.hpp"
#include "net/topology.hpp"

namespace tlb::net {

class LinkLoadView {
 public:
  explicit LinkLoadView(const Fabric& fabric) : fabric_(&fabric) {}

  /// Current utilization (load / effective capacity, in [0, 1]) of one
  /// physical link, as of the fabric's last rate recomputation.
  [[nodiscard]] double link_load(LinkId link) const {
    return fabric_->current_utilization(link);
  }

  /// Utilization of the hottest link on the src -> dst route; 0 when
  /// src == dst (intra-node traffic never enters the fabric).
  [[nodiscard]] double path_load(NodeId src, NodeId dst) const;

  /// Effective capacity (bytes/s, after faults) of the narrowest link on
  /// the src -> dst route; +inf when src == dst.
  [[nodiscard]] double path_capacity(NodeId src, NodeId dst) const;

  [[nodiscard]] const NetTopology& topology() const {
    return fabric_->topology();
  }

 private:
  const Fabric* fabric_;
};

}  // namespace tlb::net
