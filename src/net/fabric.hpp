// Flow-level interconnect fabric with max-min fair bandwidth sharing.
//
// A Fabric simulates payload transfers as *flows* over the shared links of
// a NetTopology. Active flows crossing a link divide its capacity max-min
// fairly (progressive filling): rates are recomputed on every flow start,
// finish, cancellation, and fault change, and each flow's completion event
// is rescheduled from its remaining bytes and new rate. A flow first pays
// the route's wire latency, then streams its bytes at the fair rate.
//
// Two solver modes (set_incremental / NetConfig::incremental):
//  - full (default): every change settles and re-solves all flows —
//    the legacy behavior, bit-identical to the pre-solver engine.
//  - incremental: a change re-solves only the connected component of
//    flows and links reachable from the changed flow's route (flows
//    sharing a link, transitively, via the link_flows_ index). Max-min
//    fairness decomposes over components and the per-link arithmetic is
//    preserved, so the *rates* are bitwise identical to the full solve
//    (debug builds assert this after every incremental solve); only
//    completion-event ids/ulps may differ because untouched flows keep
//    their previously scheduled events.
//
// Determinism: flows are stored and iterated in flow-id order, routing is
// a pure function of the topology, and the fair-share computation is
// plain floating-point arithmetic — no RNG, no address-dependent
// iteration. Two runs that start the same flows at the same times observe
// identical rates and completion times.
//
// Fault composition (tlb::fault): a global LinkFault maps onto the fabric
// as set_global_fault() — latency_mult scales the wire latency of flows
// started while active, bandwidth_mult scales every link's capacity (all
// in-flight flows immediately re-share the reduced fabric). Individual
// physical links can additionally be degraded with degrade_link(), which
// slows exactly the flows whose routes cross them.
//
// Observability: per-link utilization StepSeries, flow-completion-time
// samples with quantiles (p50/p99), and — when a trace::Recorder is
// attached — timeline marks at the instants a link becomes congested
// (utilization >= threshold with >= 2 competing flows) and clears.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/topology.hpp"
#include "obs/span.hpp"
#include "sim/engine.hpp"
#include "trace/recorder.hpp"
#include "trace/step_series.hpp"

namespace tlb::net {

using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

class Fabric {
 public:
  Fabric(sim::Engine& engine, NetTopology topology);
  ~Fabric();

  [[nodiscard]] const NetTopology& topology() const { return topo_; }

  /// Starts a transfer of `bytes` from `src` to `dst`: after the route's
  /// wire latency (times the global latency multiplier, plus
  /// `extra_latency` — per-message jitter) the payload enters the fabric
  /// and streams at the max-min fair rate; `on_complete` fires when the
  /// last byte arrives. Zero-byte transfers complete at latency cost
  /// alone. `src == dst` is not a fabric transfer (asserts).
  FlowId start_flow(NodeId src, NodeId dst, std::uint64_t bytes,
                    std::function<void()> on_complete,
                    sim::SimTime extra_latency = 0.0);

  /// Tears down an in-flight flow: its bandwidth is released to the
  /// remaining flows and its completion callback never fires. No-op for
  /// completed/unknown ids (idempotent).
  void cancel(FlowId id);

  /// True while the flow is in latency or streaming its bytes.
  [[nodiscard]] bool active(FlowId id) const { return flows_.count(id) != 0; }
  [[nodiscard]] int active_flows() const {
    return static_cast<int>(flows_.size());
  }

  // --- fault composition (tlb::fault) ----------------------------------------

  /// Applies a cluster-wide LinkFault to the fabric. Multipliers of 1.0
  /// restore the nominal fabric.
  void set_global_fault(double latency_mult, double bandwidth_mult);

  /// Degrades one physical link's capacity (0 < mult; 1.0 restores).
  /// Every flow whose route crosses the link immediately slows down.
  void degrade_link(LinkId link, double capacity_mult);

  // --- solver selection --------------------------------------------------------

  /// Switches flow arrivals/departures to the incremental component
  /// re-solver (see header comment). Fault changes always run the full
  /// solve. Toggling mid-run is safe: the per-link flow index is
  /// maintained in both modes.
  void set_incremental(bool on) { incremental_ = on; }
  [[nodiscard]] bool is_incremental() const { return incremental_; }

  /// Current max-min fair rate of a flow in bytes/s; 0 for unknown,
  /// completed, or latency-phase flows. fig17's solver arm compares these
  /// across an incremental and a full fabric driven identically — they
  /// must match exactly.
  [[nodiscard]] double flow_rate(FlowId id) const;

  /// Current effective capacity of a link (nominal x global x per-link).
  [[nodiscard]] double effective_capacity(LinkId link) const;

  // --- observability -----------------------------------------------------------

  /// Utilization (load / effective capacity, in [0, 1]) of a link over
  /// time, recorded at every rate recomputation.
  [[nodiscard]] const trace::StepSeries& link_utilization(LinkId link) const {
    return util_series_.at(static_cast<std::size_t>(link));
  }
  [[nodiscard]] double peak_utilization(LinkId link) const {
    return util_series_.at(static_cast<std::size_t>(link)).max_value();
  }
  /// Utilization of a link as of the last rate recomputation (the live
  /// congestion signal consumed by net::LinkLoadView / tlb::sched).
  [[nodiscard]] double current_utilization(LinkId link) const {
    return last_util_.at(static_cast<std::size_t>(link));
  }

  /// Completion times (latency + streaming, seconds) of finished *payload*
  /// flows (bytes > 0), in completion order. Zero-byte control messages
  /// complete at pure latency and are excluded so the distribution
  /// describes data-transfer performance.
  [[nodiscard]] const std::vector<double>& completion_times() const {
    return fcts_;
  }
  /// Quantile of the flow-completion-time distribution (q in [0, 1]);
  /// 0 when no payload flow has completed. fct_quantile(0.5) is the
  /// median, fct_quantile(0.99) the congestion tail.
  [[nodiscard]] double fct_quantile(double q) const;

  [[nodiscard]] std::uint64_t flows_started() const { return started_; }
  [[nodiscard]] std::uint64_t flows_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t flows_cancelled() const { return cancelled_; }
  [[nodiscard]] std::uint64_t bytes_delivered() const { return delivered_; }

  /// Solver work counters: number of solves run and the flows/links each
  /// visited, summed. The incremental win is visible as
  /// solver_flows_touched() << solver_runs() * active flows.
  [[nodiscard]] std::uint64_t solver_runs() const { return solver_runs_; }
  [[nodiscard]] std::uint64_t solver_flows_touched() const {
    return solver_flows_touched_;
  }
  [[nodiscard]] std::uint64_t solver_links_touched() const {
    return solver_links_touched_;
  }

  /// Attaches a recorder that receives "net congestion"/"net cleared"
  /// timeline marks for links crossing `congestion_threshold`.
  void set_recorder(trace::Recorder* recorder) { recorder_ = recorder; }
  void set_congestion_threshold(double threshold) {
    congestion_threshold_ = threshold;
  }
  /// Attaches a span sink that receives link_congestion() transitions
  /// (pure recording; never feeds back into flow rates).
  void set_span_sink(obs::SpanSink* sink) { span_sink_ = sink; }

 private:
  struct Flow {
    NodeId src = -1;
    NodeId dst = -1;
    double remaining = 0.0;       ///< bytes left to stream
    std::uint64_t bytes = 0;      ///< original payload
    double rate = 0.0;            ///< current fair share, bytes/s
    sim::SimTime started_at = 0.0;  ///< start_flow() time (FCT epoch)
    sim::SimTime settled_at = 0.0;  ///< remaining is exact at this time
    bool injected = false;          ///< past the latency phase
    std::function<void()> on_complete;
    sim::EventId pending_event = sim::kInvalidEvent;  ///< injection or done
  };

  void inject(FlowId id);
  void complete(FlowId id);
  /// Settles every active flow's remaining bytes to now, recomputes
  /// max-min fair rates, reschedules completions, records utilization.
  void recompute();
  /// Settles, progressively fills, reschedules, and records utilization
  /// for exactly the given flows and links (sorted by id). recompute()
  /// calls this with everything; the incremental path with one component.
  void solve(std::vector<std::pair<FlowId, Flow*>>& active,
             const std::vector<LinkId>& links);
  /// Re-solves after a flow joined/left the links in `seed`: the flow's
  /// connected component in incremental mode, everything otherwise.
  void resolve_after_change(const std::vector<LinkId>& seed);
  void link_flow(FlowId id, const Flow& flow);
  void unlink_flow(FlowId id, const Flow& flow);
#ifndef NDEBUG
  /// Recomputes every injected flow's rate with a pure full progressive
  /// filling and asserts the stored rates match bitwise.
  void assert_rates_match_full_solve();
#endif

  sim::Engine& engine_;
  NetTopology topo_;
  std::map<FlowId, Flow> flows_;  ///< id order => deterministic iteration
  FlowId next_id_ = 1;
  bool incremental_ = false;
  /// Injected flows crossing each link — the incidence index the
  /// incremental solver walks to collect a component. Maintained in both
  /// modes (the full path ignores it).
  std::vector<std::vector<FlowId>> link_flows_;
  std::uint64_t solver_runs_ = 0;
  std::uint64_t solver_flows_touched_ = 0;
  std::uint64_t solver_links_touched_ = 0;
  double latency_mult_ = 1.0;
  double bandwidth_mult_ = 1.0;
  std::vector<double> link_mult_;      ///< per-link degradation
  std::vector<trace::StepSeries> util_series_;
  std::vector<double> last_util_;
  std::vector<char> congested_;
  double congestion_threshold_ = 0.95;
  trace::Recorder* recorder_ = nullptr;
  obs::SpanSink* span_sink_ = nullptr;
  std::vector<double> fcts_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace tlb::net
