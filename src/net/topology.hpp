// Physical interconnect topology: links, switches, deterministic routes.
//
// A NetTopology is a static description of the fabric between compute
// nodes: a set of directed links (NIC injection/ejection plus, for the
// fat-tree, leaf<->spine links) and a precomputed route — an ordered list
// of link ids — for every (src, dst) node pair. Routing is deterministic:
// the route of a pair is a pure function of the topology parameters, so
// two Fabric instances built from the same NetConfig route identically
// and simulations are reproducible.
//
// Builders mirror NetConfig::TopologyKind:
//  - crossbar(): one non-blocking switch; routes are {inject, eject} and
//    the only contention points are the per-node NICs.
//  - fat_tree(): nodes -> leaf switches -> spines. Same-leaf routes stay
//    under the leaf ({inject, eject}); cross-leaf routes add an uplink
//    and a downlink through a spine chosen by a fixed per-pair hash
//    (static ECMP — real fabrics hash flows, we hash the pair so the
//    choice is reproducible).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tlb::net {

using LinkId = int;
using NodeId = int;

enum class LinkKind {
  NicInject,  ///< node -> its switch (injection cap)
  NicEject,   ///< switch -> node (ejection cap)
  LeafUp,     ///< leaf switch -> spine
  LeafDown,   ///< spine -> leaf switch
};

[[nodiscard]] const char* to_string(LinkKind kind);

struct Link {
  LinkKind kind = LinkKind::NicInject;
  double capacity = 0.0;        ///< bytes/s, nominal (before faults)
  std::string name;             ///< e.g. "nic3.in", "leaf0->spine1"
};

class NetTopology {
 public:
  /// Flat crossbar over `nodes` nodes. Every node gets an injection and
  /// an ejection link of `nic_bandwidth`; a path costs `latency`.
  static NetTopology crossbar(int nodes, double nic_bandwidth,
                              sim::SimTime latency);

  /// Two-level fat-tree: ceil(nodes / leaf_radix) leaf switches, `spines`
  /// spine switches, a leaf<->spine link pair per (leaf, spine). Same-leaf
  /// paths cost `latency`; cross-leaf paths cost latency + 2 * per_hop.
  static NetTopology fat_tree(int nodes, int leaf_radix, int spines,
                              double nic_bandwidth, double uplink_bandwidth,
                              sim::SimTime latency, sim::SimTime per_hop);

  [[nodiscard]] int node_count() const { return nodes_; }
  [[nodiscard]] int link_count() const {
    return static_cast<int>(links_.size());
  }
  [[nodiscard]] const Link& link(LinkId l) const {
    return links_.at(static_cast<std::size_t>(l));
  }

  /// Ordered link ids a payload from `src` to `dst` crosses. Empty iff
  /// src == dst (intra-node traffic never enters the fabric).
  [[nodiscard]] const std::vector<LinkId>& route(NodeId src,
                                                 NodeId dst) const {
    return routes_[index(src, dst)];
  }

  /// Wire latency of the path (independent of load).
  [[nodiscard]] sim::SimTime path_latency(NodeId src, NodeId dst) const {
    return latencies_[index(src, dst)];
  }

  /// Leaf switch of a node (0 for the crossbar).
  [[nodiscard]] int leaf_of(NodeId n) const {
    return leaf_radix_ > 0 ? n / leaf_radix_ : 0;
  }
  [[nodiscard]] int leaf_count() const { return leaves_; }
  [[nodiscard]] int spine_count() const { return spines_; }

  /// All LeafUp link ids (the classic congestion points; empty for the
  /// crossbar).
  [[nodiscard]] std::vector<LinkId> leaf_uplinks() const;

 private:
  [[nodiscard]] std::size_t index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(nodes_) +
           static_cast<std::size_t>(dst);
  }

  int nodes_ = 0;
  int leaves_ = 0;
  int spines_ = 0;
  int leaf_radix_ = 0;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> routes_;  ///< nodes x nodes
  std::vector<sim::SimTime> latencies_;      ///< nodes x nodes
};

}  // namespace tlb::net
