#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace tlb::net {

namespace {
/// Residual bytes below this are complete (guards float drift when a
/// flow's remaining time is recomputed many times).
constexpr double kByteEpsilon = 1e-6;
}  // namespace

Fabric::Fabric(sim::Engine& engine, NetTopology topology)
    : engine_(engine), topo_(std::move(topology)) {
  const std::size_t links = static_cast<std::size_t>(topo_.link_count());
  link_mult_.assign(links, 1.0);
  util_series_.resize(links);
  last_util_.assign(links, 0.0);
  congested_.assign(links, 0);
}

double Fabric::effective_capacity(LinkId link) const {
  return topo_.link(link).capacity * bandwidth_mult_ *
         link_mult_[static_cast<std::size_t>(link)];
}

FlowId Fabric::start_flow(NodeId src, NodeId dst, std::uint64_t bytes,
                          std::function<void()> on_complete,
                          sim::SimTime extra_latency) {
  assert(src != dst && "intra-node traffic never enters the fabric");
  assert(src >= 0 && src < topo_.node_count());
  assert(dst >= 0 && dst < topo_.node_count());
  const FlowId id = next_id_++;
  ++started_;

  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.bytes = bytes;
  flow.remaining = static_cast<double>(bytes);
  flow.started_at = engine_.now();
  flow.on_complete = std::move(on_complete);

  const sim::SimTime latency =
      topo_.path_latency(src, dst) * latency_mult_ + extra_latency;
  auto [it, inserted] = flows_.emplace(id, std::move(flow));
  assert(inserted);
  (void)inserted;
  it->second.pending_event =
      engine_.after(latency, [this, id] { inject(id); });
  return id;
}

void Fabric::inject(FlowId id) {
  auto it = flows_.find(id);
  assert(it != flows_.end());
  Flow& flow = it->second;
  flow.pending_event = sim::kInvalidEvent;
  if (flow.remaining <= kByteEpsilon) {
    // Zero-byte payload (control message): latency was the whole cost.
    complete(id);
    return;
  }
  flow.injected = true;
  flow.settled_at = engine_.now();
  recompute();
}

void Fabric::complete(FlowId id) {
  auto it = flows_.find(id);
  assert(it != flows_.end());
  Flow flow = std::move(it->second);
  flows_.erase(it);
  ++completed_;
  if (flow.bytes > 0) fcts_.push_back(engine_.now() - flow.started_at);
  delivered_ += flow.bytes;
  if (flow.injected) recompute();
  if (flow.on_complete) flow.on_complete();
}

void Fabric::cancel(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;  // completed or never existed
  const bool injected = it->second.injected;
  engine_.cancel(it->second.pending_event);
  flows_.erase(it);
  ++cancelled_;
  if (injected) recompute();  // released bandwidth re-shared immediately
}

void Fabric::set_global_fault(double latency_mult, double bandwidth_mult) {
  assert(latency_mult > 0.0 && bandwidth_mult > 0.0);
  latency_mult_ = latency_mult;
  bandwidth_mult_ = bandwidth_mult;
  recompute();
}

void Fabric::degrade_link(LinkId link, double capacity_mult) {
  assert(link >= 0 && link < topo_.link_count());
  assert(capacity_mult > 0.0);
  link_mult_[static_cast<std::size_t>(link)] = capacity_mult;
  recompute();
}

void Fabric::recompute() {
  const sim::SimTime now = engine_.now();

  // 1. Settle: bank the bytes each flow streamed since its last update and
  // cancel the stale completion events.
  for (auto& [id, flow] : flows_) {
    (void)id;
    if (!flow.injected) continue;
    flow.remaining -= flow.rate * (now - flow.settled_at);
    if (flow.remaining < 0.0) flow.remaining = 0.0;
    flow.settled_at = now;
    engine_.cancel(flow.pending_event);
    flow.pending_event = sim::kInvalidEvent;
  }

  // 2. Progressive filling: repeatedly find the bottleneck link (smallest
  // fair share = residual capacity / unfrozen flows) and freeze its flows
  // at that share. Iterating flows in id order keeps ties deterministic.
  std::vector<double> residual(static_cast<std::size_t>(topo_.link_count()));
  std::vector<int> unfrozen(static_cast<std::size_t>(topo_.link_count()), 0);
  for (int l = 0; l < topo_.link_count(); ++l) {
    residual[static_cast<std::size_t>(l)] = effective_capacity(l);
  }
  int remaining_flows = 0;
  for (auto& [id, flow] : flows_) {
    (void)id;
    if (!flow.injected) continue;
    flow.rate = 0.0;
    ++remaining_flows;
    for (LinkId l : topo_.route(flow.src, flow.dst)) {
      ++unfrozen[static_cast<std::size_t>(l)];
    }
  }
  std::vector<char> frozen_flow;  // parallel to iteration below
  while (remaining_flows > 0) {
    double share = std::numeric_limits<double>::infinity();
    for (int l = 0; l < topo_.link_count(); ++l) {
      const std::size_t sl = static_cast<std::size_t>(l);
      if (unfrozen[sl] > 0) {
        share = std::min(share, residual[sl] / unfrozen[sl]);
      }
    }
    assert(std::isfinite(share));
    // Freeze every unfrozen flow crossing a link at the bottleneck share.
    bool froze_any = false;
    for (auto& [id, flow] : flows_) {
      (void)id;
      if (!flow.injected || flow.rate > 0.0) continue;
      bool at_bottleneck = false;
      for (LinkId l : topo_.route(flow.src, flow.dst)) {
        const std::size_t sl = static_cast<std::size_t>(l);
        if (residual[sl] / unfrozen[sl] <= share) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) continue;
      flow.rate = share;
      froze_any = true;
      --remaining_flows;
      for (LinkId l : topo_.route(flow.src, flow.dst)) {
        const std::size_t sl = static_cast<std::size_t>(l);
        residual[sl] = std::max(0.0, residual[sl] - share);
        --unfrozen[sl];
      }
    }
    assert(froze_any && "progressive filling must freeze a flow per round");
    (void)froze_any;
  }

  // 3. Reschedule completions from the new rates.
  for (auto& [id, flow] : flows_) {
    if (!flow.injected) continue;
    assert(flow.rate > 0.0);
    const sim::SimTime left =
        flow.remaining <= kByteEpsilon ? 0.0 : flow.remaining / flow.rate;
    flow.pending_event =
        engine_.after(left, [this, id = id] { complete(id); });
  }

  // 4. Record utilization and congestion transitions.
  std::vector<double> load(static_cast<std::size_t>(topo_.link_count()), 0.0);
  std::vector<int> crossing(static_cast<std::size_t>(topo_.link_count()), 0);
  for (const auto& [id, flow] : flows_) {
    (void)id;
    if (!flow.injected) continue;
    for (LinkId l : topo_.route(flow.src, flow.dst)) {
      load[static_cast<std::size_t>(l)] += flow.rate;
      ++crossing[static_cast<std::size_t>(l)];
    }
  }
  for (int l = 0; l < topo_.link_count(); ++l) {
    const std::size_t sl = static_cast<std::size_t>(l);
    const double util = std::min(1.0, load[sl] / effective_capacity(l));
    if (util != last_util_[sl]) {
      util_series_[sl].set(now, util);
      last_util_[sl] = util;
    }
    const bool congested =
        util >= congestion_threshold_ && crossing[sl] >= 2;
    if (congested != (congested_[sl] != 0)) {
      congested_[sl] = congested ? 1 : 0;
      if (recorder_ != nullptr) {
        recorder_->mark(now,
                        (congested ? "net congestion: " : "net cleared: ") +
                            topo_.link(l).name,
                        congested ? trace::MarkKind::NetCongestion
                                  : trace::MarkKind::NetCleared,
                        l);
      }
      if (span_sink_ != nullptr) {
        span_sink_->link_congestion(l, topo_.link(l).name, congested, now);
      }
    }
  }
}

double Fabric::fct_quantile(double q) const {
  if (fcts_.empty()) return 0.0;
  std::vector<double> sorted = fcts_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace tlb::net
