#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "prof/prof.hpp"

namespace tlb::net {

namespace {
/// Residual bytes below this are complete (guards float drift when a
/// flow's remaining time is recomputed many times).
constexpr double kByteEpsilon = 1e-6;
}  // namespace

Fabric::Fabric(sim::Engine& engine, NetTopology topology)
    : engine_(engine), topo_(std::move(topology)) {
  const std::size_t links = static_cast<std::size_t>(topo_.link_count());
  link_mult_.assign(links, 1.0);
  util_series_.resize(links);
  last_util_.assign(links, 0.0);
  congested_.assign(links, 0);
  link_flows_.resize(links);
}

Fabric::~Fabric() {
  // Flows still in flight at teardown: release their net.flow charge so
  // the allocation accounting balances to zero (charged in start_flow,
  // normally released in complete()/cancel()).
  if (prof::enabled() && !flows_.empty()) {
    prof::free_note(prof::AllocTag::NetFlow, flows_.size() * sizeof(Flow));
  }
}

double Fabric::effective_capacity(LinkId link) const {
  return topo_.link(link).capacity * bandwidth_mult_ *
         link_mult_[static_cast<std::size_t>(link)];
}

double Fabric::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end() || !it->second.injected) return 0.0;
  return it->second.rate;
}

FlowId Fabric::start_flow(NodeId src, NodeId dst, std::uint64_t bytes,
                          std::function<void()> on_complete,
                          sim::SimTime extra_latency) {
  assert(src != dst && "intra-node traffic never enters the fabric");
  assert(src >= 0 && src < topo_.node_count());
  assert(dst >= 0 && dst < topo_.node_count());
  const FlowId id = next_id_++;
  ++started_;

  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.bytes = bytes;
  flow.remaining = static_cast<double>(bytes);
  flow.started_at = engine_.now();
  flow.on_complete = std::move(on_complete);

  const sim::SimTime latency =
      topo_.path_latency(src, dst) * latency_mult_ + extra_latency;
  auto [it, inserted] = flows_.emplace(id, std::move(flow));
  assert(inserted);
  (void)inserted;
  prof::alloc_note(prof::AllocTag::NetFlow, sizeof(Flow));
  it->second.pending_event =
      engine_.after(latency, [this, id] { inject(id); });
  return id;
}

void Fabric::inject(FlowId id) {
  auto it = flows_.find(id);
  assert(it != flows_.end());
  Flow& flow = it->second;
  flow.pending_event = sim::kInvalidEvent;
  if (flow.remaining <= kByteEpsilon) {
    // Zero-byte payload (control message): latency was the whole cost.
    complete(id);
    return;
  }
  flow.injected = true;
  flow.settled_at = engine_.now();
  link_flow(id, flow);
  resolve_after_change(topo_.route(flow.src, flow.dst));
}

void Fabric::complete(FlowId id) {
  auto it = flows_.find(id);
  assert(it != flows_.end());
  Flow flow = std::move(it->second);
  if (flow.injected) unlink_flow(id, flow);
  flows_.erase(it);
  prof::free_note(prof::AllocTag::NetFlow, sizeof(Flow));
  ++completed_;
  if (flow.bytes > 0) fcts_.push_back(engine_.now() - flow.started_at);
  delivered_ += flow.bytes;
  if (flow.injected) resolve_after_change(topo_.route(flow.src, flow.dst));
  if (flow.on_complete) flow.on_complete();
}

void Fabric::cancel(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;  // completed or never existed
  const bool injected = it->second.injected;
  if (injected) unlink_flow(id, it->second);
  const NodeId src = it->second.src;
  const NodeId dst = it->second.dst;
  engine_.cancel(it->second.pending_event);
  flows_.erase(it);
  prof::free_note(prof::AllocTag::NetFlow, sizeof(Flow));
  ++cancelled_;
  // Released bandwidth is re-shared immediately.
  if (injected) resolve_after_change(topo_.route(src, dst));
}

void Fabric::set_global_fault(double latency_mult, double bandwidth_mult) {
  assert(latency_mult > 0.0 && bandwidth_mult > 0.0);
  latency_mult_ = latency_mult;
  bandwidth_mult_ = bandwidth_mult;
  recompute();  // capacity change touches every component: full solve
}

void Fabric::degrade_link(LinkId link, double capacity_mult) {
  assert(link >= 0 && link < topo_.link_count());
  assert(capacity_mult > 0.0);
  link_mult_[static_cast<std::size_t>(link)] = capacity_mult;
  recompute();
}

void Fabric::link_flow(FlowId id, const Flow& flow) {
  for (LinkId l : topo_.route(flow.src, flow.dst)) {
    link_flows_[static_cast<std::size_t>(l)].push_back(id);
  }
}

void Fabric::unlink_flow(FlowId id, const Flow& flow) {
  for (LinkId l : topo_.route(flow.src, flow.dst)) {
    auto& v = link_flows_[static_cast<std::size_t>(l)];
    v.erase(std::remove(v.begin(), v.end(), id), v.end());
  }
}

void Fabric::recompute() {
  PROF_SCOPE("net.solve.full");
  std::vector<std::pair<FlowId, Flow*>> active;
  active.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    if (flow.injected) active.emplace_back(id, &flow);
  }
  std::vector<LinkId> links(static_cast<std::size_t>(topo_.link_count()));
  std::iota(links.begin(), links.end(), 0);
  solve(active, links);
}

void Fabric::resolve_after_change(const std::vector<LinkId>& seed) {
  if (!incremental_) {
    recompute();
    return;
  }
  // Exclusive time under this scope is the component walk; the nested
  // "net.solve" node is the progressive filling itself.
  PROF_SCOPE("net.solve.incremental");
  // Walk the flow<->link incidence graph from the seed links to collect
  // the connected component the change can affect. Every injected flow
  // crossing a component link is itself in the component (BFS closure),
  // so the per-link load computed from component flows alone is total.
  std::vector<char> link_seen(static_cast<std::size_t>(topo_.link_count()), 0);
  std::unordered_set<FlowId> flow_seen;
  std::vector<LinkId> stack;
  std::vector<LinkId> comp_links;
  std::vector<FlowId> comp_flows;
  for (LinkId l : seed) {
    if (link_seen[static_cast<std::size_t>(l)] == 0) {
      link_seen[static_cast<std::size_t>(l)] = 1;
      stack.push_back(l);
    }
  }
  while (!stack.empty()) {
    const LinkId l = stack.back();
    stack.pop_back();
    comp_links.push_back(l);
    for (FlowId f : link_flows_[static_cast<std::size_t>(l)]) {
      if (!flow_seen.insert(f).second) continue;
      comp_flows.push_back(f);
      const Flow& flow = flows_.at(f);
      for (LinkId rl : topo_.route(flow.src, flow.dst)) {
        if (link_seen[static_cast<std::size_t>(rl)] == 0) {
          link_seen[static_cast<std::size_t>(rl)] = 1;
          stack.push_back(rl);
        }
      }
    }
  }
  // Sorted ids reproduce the full solve's deterministic iteration order
  // (flows freeze and accumulate load in id order, links record in
  // ascending order).
  std::sort(comp_links.begin(), comp_links.end());
  std::sort(comp_flows.begin(), comp_flows.end());
  std::vector<std::pair<FlowId, Flow*>> active;
  active.reserve(comp_flows.size());
  for (FlowId f : comp_flows) active.emplace_back(f, &flows_.at(f));
  solve(active, comp_links);
#ifndef NDEBUG
  assert_rates_match_full_solve();
#endif
}

void Fabric::solve(std::vector<std::pair<FlowId, Flow*>>& active,
                   const std::vector<LinkId>& links) {
  PROF_SCOPE("net.solve");
  const sim::SimTime now = engine_.now();
  ++solver_runs_;
  solver_flows_touched_ += active.size();
  solver_links_touched_ += links.size();

  // 1. Settle: bank the bytes each flow streamed since its last update and
  // cancel the stale completion events.
  for (auto& [id, flow] : active) {
    (void)id;
    flow->remaining -= flow->rate * (now - flow->settled_at);
    if (flow->remaining < 0.0) flow->remaining = 0.0;
    flow->settled_at = now;
    engine_.cancel(flow->pending_event);
    flow->pending_event = sim::kInvalidEvent;
  }

  // 2. Progressive filling: repeatedly find the bottleneck link (smallest
  // fair share = residual capacity / unfrozen flows) and freeze its flows
  // at that share. Iterating flows in id order keeps ties deterministic.
  std::vector<double> residual(static_cast<std::size_t>(topo_.link_count()),
                               0.0);
  std::vector<int> unfrozen(static_cast<std::size_t>(topo_.link_count()), 0);
  for (LinkId l : links) {
    residual[static_cast<std::size_t>(l)] = effective_capacity(l);
  }
  int remaining_flows = 0;
  for (auto& [id, flow] : active) {
    (void)id;
    flow->rate = 0.0;
    ++remaining_flows;
    for (LinkId l : topo_.route(flow->src, flow->dst)) {
      ++unfrozen[static_cast<std::size_t>(l)];
    }
  }
  while (remaining_flows > 0) {
    double share = std::numeric_limits<double>::infinity();
    for (LinkId l : links) {
      const std::size_t sl = static_cast<std::size_t>(l);
      if (unfrozen[sl] > 0) {
        share = std::min(share, residual[sl] / unfrozen[sl]);
      }
    }
    assert(std::isfinite(share));
    // Freeze every unfrozen flow crossing a link at the bottleneck share.
    bool froze_any = false;
    for (auto& [id, flow] : active) {
      (void)id;
      if (flow->rate > 0.0) continue;
      bool at_bottleneck = false;
      for (LinkId l : topo_.route(flow->src, flow->dst)) {
        const std::size_t sl = static_cast<std::size_t>(l);
        if (residual[sl] / unfrozen[sl] <= share) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) continue;
      flow->rate = share;
      froze_any = true;
      --remaining_flows;
      for (LinkId l : topo_.route(flow->src, flow->dst)) {
        const std::size_t sl = static_cast<std::size_t>(l);
        residual[sl] = std::max(0.0, residual[sl] - share);
        --unfrozen[sl];
      }
    }
    assert(froze_any && "progressive filling must freeze a flow per round");
    (void)froze_any;
  }

  // 3. Reschedule completions from the new rates.
  for (auto& [id, flow] : active) {
    assert(flow->rate > 0.0);
    const sim::SimTime left =
        flow->remaining <= kByteEpsilon ? 0.0 : flow->remaining / flow->rate;
    flow->pending_event =
        engine_.after(left, [this, id = id] { complete(id); });
  }

  // 4. Record utilization and congestion transitions.
  std::vector<double> load(static_cast<std::size_t>(topo_.link_count()), 0.0);
  std::vector<int> crossing(static_cast<std::size_t>(topo_.link_count()), 0);
  for (const auto& [id, flow] : active) {
    (void)id;
    for (LinkId l : topo_.route(flow->src, flow->dst)) {
      load[static_cast<std::size_t>(l)] += flow->rate;
      ++crossing[static_cast<std::size_t>(l)];
    }
  }
  for (LinkId l : links) {
    const std::size_t sl = static_cast<std::size_t>(l);
    const double util = std::min(1.0, load[sl] / effective_capacity(l));
    if (util != last_util_[sl]) {
      util_series_[sl].set(now, util);
      last_util_[sl] = util;
    }
    const bool congested =
        util >= congestion_threshold_ && crossing[sl] >= 2;
    if (congested != (congested_[sl] != 0)) {
      congested_[sl] = congested ? 1 : 0;
      if (recorder_ != nullptr) {
        recorder_->mark(now,
                        (congested ? "net congestion: " : "net cleared: ") +
                            topo_.link(l).name,
                        congested ? trace::MarkKind::NetCongestion
                                  : trace::MarkKind::NetCleared,
                        l);
      }
      if (span_sink_ != nullptr) {
        span_sink_->link_congestion(l, topo_.link(l).name, congested, now);
      }
    }
  }
}

#ifndef NDEBUG
void Fabric::assert_rates_match_full_solve() {
  // Pure replay of progressive filling over *all* injected flows, using
  // the exact arithmetic of solve() but without touching any state. The
  // component solve must have left every flow at precisely this rate —
  // max-min decomposes over connected components and the incremental
  // path preserves the per-link operation order, so == (not near) holds.
  std::vector<double> residual(static_cast<std::size_t>(topo_.link_count()),
                               0.0);
  std::vector<int> unfrozen(static_cast<std::size_t>(topo_.link_count()), 0);
  for (int l = 0; l < topo_.link_count(); ++l) {
    residual[static_cast<std::size_t>(l)] = effective_capacity(l);
  }
  std::map<FlowId, double> expected;
  int remaining_flows = 0;
  for (const auto& [id, flow] : flows_) {
    if (!flow.injected) continue;
    expected[id] = 0.0;
    ++remaining_flows;
    for (LinkId l : topo_.route(flow.src, flow.dst)) {
      ++unfrozen[static_cast<std::size_t>(l)];
    }
  }
  while (remaining_flows > 0) {
    double share = std::numeric_limits<double>::infinity();
    for (int l = 0; l < topo_.link_count(); ++l) {
      const std::size_t sl = static_cast<std::size_t>(l);
      if (unfrozen[sl] > 0) {
        share = std::min(share, residual[sl] / unfrozen[sl]);
      }
    }
    bool froze_any = false;
    for (const auto& [id, flow] : flows_) {
      if (!flow.injected || expected[id] > 0.0) continue;
      bool at_bottleneck = false;
      for (LinkId l : topo_.route(flow.src, flow.dst)) {
        const std::size_t sl = static_cast<std::size_t>(l);
        if (residual[sl] / unfrozen[sl] <= share) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) continue;
      expected[id] = share;
      froze_any = true;
      --remaining_flows;
      for (LinkId l : topo_.route(flow.src, flow.dst)) {
        const std::size_t sl = static_cast<std::size_t>(l);
        residual[sl] = std::max(0.0, residual[sl] - share);
        --unfrozen[sl];
      }
    }
    assert(froze_any);
    (void)froze_any;
  }
  for (const auto& [id, flow] : flows_) {
    if (!flow.injected) continue;
    assert(flow.rate == expected.at(id) &&
           "incremental component solve diverged from full max-min rates");
  }
}
#endif

double Fabric::fct_quantile(double q) const {
  if (fcts_.empty()) return 0.0;
  std::vector<double> sorted = fcts_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace tlb::net
