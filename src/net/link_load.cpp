#include "net/link_load.hpp"

#include <algorithm>
#include <limits>

namespace tlb::net {

double LinkLoadView::path_load(NodeId src, NodeId dst) const {
  if (src == dst) return 0.0;
  double load = 0.0;
  for (const LinkId l : fabric_->topology().route(src, dst)) {
    load = std::max(load, link_load(l));
  }
  return load;
}

double LinkLoadView::path_capacity(NodeId src, NodeId dst) const {
  if (src == dst) return std::numeric_limits<double>::infinity();
  double cap = std::numeric_limits<double>::infinity();
  for (const LinkId l : fabric_->topology().route(src, dst)) {
    cap = std::min(cap, fabric_->effective_capacity(l));
  }
  return cap;
}

}  // namespace tlb::net
