#include "net/topology.hpp"

#include <cassert>
#include <stdexcept>

#include "net/config.hpp"

namespace tlb::net {

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::Crossbar:
      return "crossbar";
    case TopologyKind::FatTree:
      return "fat-tree";
  }
  return "?";
}

TopologyKind parse_topology_kind(const std::string& name) {
  for (const TopologyKind k : {TopologyKind::Crossbar, TopologyKind::FatTree}) {
    if (name == to_string(k)) return k;
  }
  throw std::invalid_argument("unknown net topology '" + name +
                              "'; valid values: crossbar, fat-tree");
}

const char* to_string(LinkKind kind) {
  switch (kind) {
    case LinkKind::NicInject:
      return "nic-inject";
    case LinkKind::NicEject:
      return "nic-eject";
    case LinkKind::LeafUp:
      return "leaf-up";
    case LinkKind::LeafDown:
      return "leaf-down";
  }
  return "?";
}

namespace {

void check_common(int nodes, double nic_bandwidth, sim::SimTime latency) {
  if (nodes <= 0) throw std::invalid_argument("NetTopology: nodes must be > 0");
  if (nic_bandwidth <= 0.0) {
    throw std::invalid_argument("NetTopology: nic_bandwidth must be > 0");
  }
  if (latency < 0.0) {
    throw std::invalid_argument("NetTopology: negative latency");
  }
}

}  // namespace

NetTopology NetTopology::crossbar(int nodes, double nic_bandwidth,
                                  sim::SimTime latency) {
  check_common(nodes, nic_bandwidth, latency);
  NetTopology t;
  t.nodes_ = nodes;
  t.leaves_ = 1;
  t.spines_ = 0;
  t.leaf_radix_ = nodes;
  // Link layout: inject[n] = 2n, eject[n] = 2n + 1.
  t.links_.reserve(static_cast<std::size_t>(nodes) * 2);
  for (int n = 0; n < nodes; ++n) {
    t.links_.push_back({LinkKind::NicInject, nic_bandwidth,
                        "nic" + std::to_string(n) + ".in"});
    t.links_.push_back({LinkKind::NicEject, nic_bandwidth,
                        "nic" + std::to_string(n) + ".out"});
  }
  t.routes_.resize(static_cast<std::size_t>(nodes) * nodes);
  t.latencies_.assign(static_cast<std::size_t>(nodes) * nodes, 0.0);
  for (int s = 0; s < nodes; ++s) {
    for (int d = 0; d < nodes; ++d) {
      if (s == d) continue;
      t.routes_[t.index(s, d)] = {2 * s, 2 * d + 1};
      t.latencies_[t.index(s, d)] = latency;
    }
  }
  return t;
}

NetTopology NetTopology::fat_tree(int nodes, int leaf_radix, int spines,
                                  double nic_bandwidth,
                                  double uplink_bandwidth, sim::SimTime latency,
                                  sim::SimTime per_hop) {
  check_common(nodes, nic_bandwidth, latency);
  if (leaf_radix <= 0 || spines <= 0) {
    throw std::invalid_argument("NetTopology: leaf_radix and spines must be > 0");
  }
  if (uplink_bandwidth <= 0.0) {
    throw std::invalid_argument("NetTopology: uplink_bandwidth must be > 0");
  }
  if (per_hop < 0.0) throw std::invalid_argument("NetTopology: negative per_hop");

  NetTopology t;
  t.nodes_ = nodes;
  t.leaf_radix_ = leaf_radix;
  t.leaves_ = (nodes + leaf_radix - 1) / leaf_radix;
  t.spines_ = spines;
  // Link layout: inject[n] = 2n, eject[n] = 2n + 1, then for each
  // (leaf l, spine s): up = base + 2 * (l * spines + s), down = up + 1.
  for (int n = 0; n < nodes; ++n) {
    t.links_.push_back({LinkKind::NicInject, nic_bandwidth,
                        "nic" + std::to_string(n) + ".in"});
    t.links_.push_back({LinkKind::NicEject, nic_bandwidth,
                        "nic" + std::to_string(n) + ".out"});
  }
  const int base = 2 * nodes;
  for (int l = 0; l < t.leaves_; ++l) {
    for (int s = 0; s < spines; ++s) {
      t.links_.push_back({LinkKind::LeafUp, uplink_bandwidth,
                          "leaf" + std::to_string(l) + "->spine" +
                              std::to_string(s)});
      t.links_.push_back({LinkKind::LeafDown, uplink_bandwidth,
                          "spine" + std::to_string(s) + "->leaf" +
                              std::to_string(l)});
    }
  }
  t.routes_.resize(static_cast<std::size_t>(nodes) * nodes);
  t.latencies_.assign(static_cast<std::size_t>(nodes) * nodes, 0.0);
  for (int s = 0; s < nodes; ++s) {
    for (int d = 0; d < nodes; ++d) {
      if (s == d) continue;
      const int ls = s / leaf_radix;
      const int ld = d / leaf_radix;
      auto& route = t.routes_[t.index(s, d)];
      route.push_back(2 * s);
      if (ls != ld) {
        // Static per-pair spine hash: deterministic, spreads pairs.
        const int spine =
            static_cast<int>((static_cast<std::uint64_t>(s) * 7919u + d) %
                             static_cast<std::uint64_t>(spines));
        route.push_back(base + 2 * (ls * spines + spine));
        route.push_back(base + 2 * (ld * spines + spine) + 1);
        t.latencies_[t.index(s, d)] = latency + 2.0 * per_hop;
      } else {
        t.latencies_[t.index(s, d)] = latency;
      }
      route.push_back(2 * d + 1);
    }
  }
  return t;
}

std::vector<LinkId> NetTopology::leaf_uplinks() const {
  std::vector<LinkId> out;
  for (int l = 0; l < link_count(); ++l) {
    if (links_[static_cast<std::size_t>(l)].kind == LinkKind::LeafUp) {
      out.push_back(l);
    }
  }
  return out;
}

}  // namespace tlb::net
