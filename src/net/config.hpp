// Configuration of the explicit interconnect model (tlb::net).
//
// The default cost model prices every inter-node transfer with an
// uncontended latency + bytes/bandwidth formula (sim::LinkSpec), which
// makes offloading free of congestion. With NetConfig::enabled the
// runtime instead routes payloads as flows over a shared-link fabric
// (net::Fabric) where bandwidth is divided max-min fairly, so the
// degree-vs-congestion trade-off of paper §5 becomes observable.
//
// Fields left at 0 inherit their value from the cluster's LinkSpec, so a
// bare `net.enabled = true` models the same hardware as the analytic
// formula — just with contention.
#pragma once

#include <string>

#include "sim/cluster_spec.hpp"
#include "sim/time.hpp"

namespace tlb::net {

enum class TopologyKind {
  /// Every node connects through one non-blocking crossbar switch: the
  /// only shared resources are the per-node NIC injection/ejection links.
  /// With a single flow in flight this reproduces the analytic
  /// latency + bytes/bandwidth cost exactly.
  Crossbar,
  /// Two-level fat-tree: node -> leaf switch -> spine. Leaf uplinks are
  /// shared by every cross-leaf flow, which is where offloading-degree
  /// pressure shows up (MareNostrum 4's Omni-Path is a fat-tree).
  FatTree,
};

/// Canonical name of a topology ("crossbar", "fat-tree") — the inverse of
/// parse_topology_kind.
[[nodiscard]] const char* to_string(TopologyKind kind);

/// Parses a topology name. Unknown names throw std::invalid_argument
/// listing the valid values — never a silent fallback to a default.
[[nodiscard]] TopologyKind parse_topology_kind(const std::string& name);

struct NetConfig {
  /// Master switch. When false the runtime keeps the analytic LinkSpec
  /// cost model and is bit-identical to a build without tlb::net.
  bool enabled = false;

  TopologyKind topology = TopologyKind::FatTree;

  /// Nodes attached to each leaf switch (FatTree only).
  int leaf_radix = 4;
  /// Spine switches; cross-leaf routes are spread over them by a fixed
  /// per-(src,dst) hash (FatTree only).
  int spines = 2;

  /// Per-NIC injection/ejection cap, bytes/s. 0 = LinkSpec::bandwidth.
  double nic_bandwidth = 0.0;
  /// Per leaf<->spine link bandwidth, bytes/s. 0 = LinkSpec::bandwidth.
  /// Setting this below leaf_radix * nic_bandwidth / spines models an
  /// oversubscribed tree.
  double uplink_bandwidth = 0.0;

  /// Base first-hop latency (NIC + first switch). 0 = LinkSpec::latency.
  sim::SimTime latency = 0.0;
  /// Extra latency per switch-to-switch hop (cross-leaf routes pay two).
  sim::SimTime per_hop_latency = 5e-7;

  /// A link whose utilization reaches this fraction of capacity while
  /// carrying at least two flows is marked congested in the trace.
  double congestion_threshold = 0.95;

  /// Incremental max-min re-solve: a flow arrival/departure settles and
  /// re-solves only the connected component of flows/links it touches
  /// (flows sharing a link, transitively) instead of every flow in the
  /// fabric. Rates are *bitwise identical* to the full progressive
  /// filling — max-min decomposes over components and the per-link
  /// arithmetic order is preserved — and debug builds assert that after
  /// every incremental solve. Completion *event* times and ids can still
  /// differ in the last ulp / tie order because untouched flows keep
  /// their previously scheduled events instead of being cancelled and
  /// re-posted, so the default stays off: disabled runs are bit-identical
  /// to the legacy full solve (golden fingerprints pin this). Enable for
  /// scale runs (bench/fig17): the re-solve cost drops from
  /// O(flows x links) to O(component).
  bool incremental = false;

  [[nodiscard]] double nic_bw(const sim::LinkSpec& link) const {
    return nic_bandwidth > 0.0 ? nic_bandwidth : link.bandwidth;
  }
  [[nodiscard]] double uplink_bw(const sim::LinkSpec& link) const {
    return uplink_bandwidth > 0.0 ? uplink_bandwidth : link.bandwidth;
  }
  [[nodiscard]] sim::SimTime base_latency(const sim::LinkSpec& link) const {
    return latency > 0.0 ? latency : link.latency;
  }
};

}  // namespace tlb::net
