// Tracks where the current version of each data region lives.
//
// OmpSs-2@Cluster copies data eagerly where required and performs no
// automatic write-back (paper §3.2): after an offloaded task runs on node
// n, its outputs live on n until some task (or the apprank itself, at a
// taskwait / MPI boundary) needs them elsewhere. This map supports the
// scheduler's locality scoring and prices the resulting transfers.
// One instance per apprank (address spaces are isolated, §4).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "nanos/task.hpp"

namespace tlb::nanos {

class DataLocations {
 public:
  /// Regions not explicitly placed are assumed resident on `home_node`
  /// (the apprank allocated them there).
  explicit DataLocations(int home_node) : home_(home_node) {}

  [[nodiscard]] int home_node() const { return home_; }

  /// Bytes of the task's *input* data (In/InOut) not currently resident on
  /// `node` — the transfer volume needed to run the task there.
  [[nodiscard]] std::uint64_t missing_input_bytes(
      const std::vector<AccessRegion>& accesses, int node) const;

  /// Bytes of input data already resident on `node` (locality score).
  [[nodiscard]] std::uint64_t resident_input_bytes(
      const std::vector<AccessRegion>& accesses, int node) const;

  /// Records that the task executed on `node`: inputs were copied there
  /// and outputs (Out/InOut) now live there.
  void task_executed(const std::vector<AccessRegion>& accesses, int node);

  /// Forces the given ranges to `node` (e.g. the apprank touches results
  /// at an MPI boundary). Returns the bytes that had to move.
  std::uint64_t pull(const std::vector<AccessRegion>& accesses, int node);

  /// Per-source breakdown of missing_input_bytes(): the input bytes that
  /// would have to move to `node`, grouped by the node currently holding
  /// them, in ascending source-node order (deterministic). The totals sum
  /// to missing_input_bytes(). Used by the contention-aware interconnect
  /// (tlb::net) to route one flow per source.
  [[nodiscard]] std::vector<std::pair<int, std::uint64_t>> missing_by_source(
      const std::vector<AccessRegion>& accesses, int node) const;

  /// Per-source breakdown of pull(): relocates the ranges to `node` and
  /// reports where the moved bytes came from, ascending source-node order.
  std::vector<std::pair<int, std::uint64_t>> pull_by_source(
      const std::vector<AccessRegion>& accesses, int node);

  /// Location of a single byte (for tests).
  [[nodiscard]] int location_of(std::uint64_t addr) const;

 private:
  struct Segment {
    std::uint64_t end = 0;
    int node = -1;
  };
  /// Sums bytes in [start, end) whose location != node; when `relocate` is
  /// true also rewrites those ranges to `node`.
  std::uint64_t scan(std::uint64_t start, std::uint64_t end, int node,
                     bool count_not_on, bool relocate);
  [[nodiscard]] std::uint64_t scan_const(std::uint64_t start,
                                         std::uint64_t end, int node,
                                         bool count_not_on) const;
  /// Adds the bytes in [start, end) not resident on `node` to
  /// `by_source[holder]`.
  void scan_sources(std::uint64_t start, std::uint64_t end, int node,
                    std::map<int, std::uint64_t>& by_source) const;
  void set_range(std::uint64_t start, std::uint64_t end, int node);

  int home_;
  std::map<std::uint64_t, Segment> segments_;  ///< start -> segment
};

}  // namespace tlb::nanos
