// Task model of the OmpSs-2-like runtime.
//
// A task carries its data accesses (the single mechanism OmpSs-2 uses for
// dependencies, locality and transfers, paper §3.1), a nominal amount of
// work in core-seconds, and an offloadable flag (paper §3.2: tasks may be
// marked non-offloadable, e.g. those performing MPI calls).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "prof/prof.hpp"
#include "sim/time.hpp"

namespace tlb::nanos {

using TaskId = std::uint64_t;
inline constexpr TaskId kNoTask = static_cast<TaskId>(-1);

enum class AccessMode { In, Out, InOut };

/// A byte range of the apprank's (isolated) virtual address space accessed
/// by a task. Appranks have isolated address spaces (paper §4), so regions
/// never alias across appranks.
struct AccessRegion {
  std::uint64_t start = 0;
  std::uint64_t size = 0;
  AccessMode mode = AccessMode::In;

  [[nodiscard]] std::uint64_t end() const { return start + size; }
  [[nodiscard]] bool reads() const { return mode != AccessMode::Out; }
  [[nodiscard]] bool writes() const { return mode != AccessMode::In; }
};

enum class TaskState {
  Created,    ///< registered, waiting on dependencies
  Ready,      ///< dependencies satisfied, waiting for a scheduling slot
  Scheduled,  ///< assigned to a worker (offloading is final from here on)
  Running,    ///< executing on a core
  Finished,
};

struct Task {
  TaskId id = kNoTask;
  int apprank = -1;
  double work = 0.0;  ///< core-seconds at nominal (speed 1.0) rate
  std::vector<AccessRegion> accesses;
  bool offloadable = true;

  // Dependency bookkeeping (managed by DependencyGraph).
  int deps_remaining = 0;
  std::vector<TaskId> successors;

  // Execution record.
  TaskState state = TaskState::Created;
  int scheduled_node = -1;   ///< node chosen by the scheduler
  int executed_worker = -1;  ///< worker that (last) ran the task
  int executed_core = -1;
  /// Times the task entered execution; > 1 only after a worker crash
  /// abandoned an earlier attempt (tlb::fault crash recovery).
  int executions = 0;
  /// Times the task was detected lost on a crashed worker and re-queued.
  int reexecutions = 0;
  sim::SimTime created_at = 0.0;
  sim::SimTime ready_at = 0.0;
  sim::SimTime start_at = 0.0;
  sim::SimTime finish_at = 0.0;
  /// Earliest time the task's input data is resident on scheduled_node
  /// (transfers are initiated at assignment, §5.5's prefetch rationale).
  sim::SimTime data_ready_at = 0.0;
  std::uint64_t transfer_bytes = 0;  ///< input bytes moved to run it
};

/// Owns tasks; ids are dense indices. A deque keeps references stable as
/// tasks are appended.
class TaskPool {
 public:
  ~TaskPool() {
    if (!prof::enabled()) return;
    for (const auto& t : tasks_) {
      prof::free_note(prof::AllocTag::NanosTask, charged_bytes(t));
    }
  }

  TaskId create(int apprank, double work, std::vector<AccessRegion> accesses,
                bool offloadable = true) {
    Task t;
    t.id = static_cast<TaskId>(tasks_.size());
    t.apprank = apprank;
    t.work = work;
    t.accesses = std::move(accesses);
    t.offloadable = offloadable;
    prof::alloc_note(prof::AllocTag::NanosTask, charged_bytes(t));
    tasks_.push_back(std::move(t));
    return tasks_.back().id;
  }

  [[nodiscard]] Task& get(TaskId id) { return tasks_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] const Task& get(TaskId id) const {
    return tasks_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }

 private:
  // Attribution estimate for tlb::prof: the task record plus its access
  // vector. The accesses capacity is fixed at create() (moved in, never
  // appended), so the same formula at destruction balances to zero.
  // Successor edges grow later and are deliberately not charged here.
  [[nodiscard]] static std::size_t charged_bytes(const Task& t) {
    return sizeof(Task) + t.accesses.capacity() * sizeof(AccessRegion);
  }

  std::deque<Task> tasks_;
};

}  // namespace tlb::nanos
