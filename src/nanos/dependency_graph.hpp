// Region-based task dependency graph (one instance per apprank).
//
// Tasks are registered in program order (OmpSs-2@Cluster inherits task
// ordering from the sequential code, paper §3.2). For every byte range a
// task accesses, the graph derives:
//   RAW: readers depend on the last writer of the range;
//   WAW: writers depend on the last writer;
//   WAR: writers depend on every reader since that writer.
// The implementation keeps an interval map over the apprank's address
// space, splitting segments at access boundaries.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "nanos/task.hpp"

namespace tlb::nanos {

class DependencyGraph {
 public:
  explicit DependencyGraph(TaskPool& pool) : pool_(pool) {}

  /// Registers the next task in program order; wires predecessor /
  /// successor edges and sets task.deps_remaining. Returns true when the
  /// task is immediately ready (no unfinished predecessors).
  bool register_task(TaskId id);

  /// Marks a task finished and returns the tasks that became ready.
  std::vector<TaskId> on_task_finished(TaskId id);

  /// Number of registered-but-unfinished tasks (taskwait support).
  [[nodiscard]] std::size_t live_tasks() const { return live_; }

  /// Total dependency edges created (diagnostic).
  [[nodiscard]] std::uint64_t edge_count() const { return edges_; }

 private:
  struct Segment {
    std::uint64_t end = 0;        ///< segment spans [map key, end)
    TaskId last_writer = kNoTask;
    std::vector<TaskId> readers;  ///< readers since last_writer
  };

  TaskPool& pool_;
  std::map<std::uint64_t, Segment> segments_;  ///< start -> segment
  std::size_t live_ = 0;
  std::uint64_t edges_ = 0;
};

}  // namespace tlb::nanos
