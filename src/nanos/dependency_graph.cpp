#include "nanos/dependency_graph.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace tlb::nanos {

bool DependencyGraph::register_task(TaskId id) {
  Task& task = pool_.get(id);
  assert(task.state == TaskState::Created);
  ++live_;

  std::unordered_set<TaskId> preds;
  for (const AccessRegion& acc : task.accesses) {
    if (acc.size == 0) continue;
    const std::uint64_t lo = acc.start;
    const std::uint64_t hi = acc.end();

    // Find the first segment that could overlap [lo, hi): the last segment
    // starting at or before lo, else the first after.
    auto it = segments_.upper_bound(lo);
    if (it != segments_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > lo) it = prev;
    }

    std::uint64_t cursor = lo;
    while (cursor < hi) {
      if (it == segments_.end() || it->first >= hi) {
        // Gap [cursor, hi): untouched memory, no dependencies.
        Segment fresh;
        fresh.end = hi;
        if (acc.writes()) {
          fresh.last_writer = id;
        } else {
          fresh.readers.push_back(id);
        }
        it = segments_.emplace(cursor, std::move(fresh)).first;
        ++it;
        cursor = hi;
        break;
      }
      if (it->first > cursor) {
        // Gap [cursor, it->first): fresh segment, no deps.
        Segment fresh;
        fresh.end = std::min(it->first, hi);
        if (acc.writes()) {
          fresh.last_writer = id;
        } else {
          fresh.readers.push_back(id);
        }
        const std::uint64_t gap_start = cursor;
        cursor = fresh.end;
        segments_.emplace(gap_start, std::move(fresh));
        continue;
      }
      // it->first <= cursor < it->second.end (overlap).
      assert(it->first <= cursor && it->second.end > cursor);
      if (it->first < cursor) {
        // Split head: [it->first, cursor) keeps old info.
        Segment tail = it->second;  // copy deps
        const std::uint64_t tail_start = cursor;
        it->second.end = cursor;
        it = segments_.emplace(tail_start, std::move(tail)).first;
      }
      if (it->second.end > hi) {
        // Split tail: [hi, old_end) keeps old info.
        Segment tail = it->second;
        it->second.end = hi;
        segments_.emplace(hi, std::move(tail));
      }
      // Now `it` spans exactly [cursor, min(old_end, hi)) — collect deps.
      Segment& seg = it->second;
      if (acc.reads()) {
        if (seg.last_writer != kNoTask) preds.insert(seg.last_writer);
      }
      if (acc.writes()) {
        if (seg.last_writer != kNoTask) preds.insert(seg.last_writer);
        for (TaskId r : seg.readers) preds.insert(r);
      }
      // Update segment state.
      if (acc.writes()) {
        seg.last_writer = id;
        seg.readers.clear();
      } else {
        seg.readers.push_back(id);
      }
      cursor = seg.end;
      ++it;
    }
  }

  preds.erase(id);  // self-deps from multiple regions of one task
  int remaining = 0;
  for (TaskId p : preds) {
    Task& pred = pool_.get(p);
    if (pred.state != TaskState::Finished) {
      pred.successors.push_back(id);
      ++remaining;
      ++edges_;
    }
  }
  task.deps_remaining = remaining;
  if (remaining == 0) {
    task.state = TaskState::Ready;
    return true;
  }
  return false;
}

std::vector<TaskId> DependencyGraph::on_task_finished(TaskId id) {
  Task& task = pool_.get(id);
  assert(task.state != TaskState::Finished && "double finish");
  task.state = TaskState::Finished;
  assert(live_ > 0);
  --live_;

  std::vector<TaskId> now_ready;
  for (TaskId s : task.successors) {
    Task& succ = pool_.get(s);
    assert(succ.deps_remaining > 0);
    if (--succ.deps_remaining == 0) {
      assert(succ.state == TaskState::Created);
      succ.state = TaskState::Ready;
      now_ready.push_back(s);
    }
  }
  return now_ready;
}

}  // namespace tlb::nanos
