#include "nanos/data_location.hpp"

#include <algorithm>
#include <cassert>

namespace tlb::nanos {

std::uint64_t DataLocations::scan_const(std::uint64_t start, std::uint64_t end,
                                        int node, bool count_not_on) const {
  std::uint64_t counted = 0;
  std::uint64_t cursor = start;
  auto it = segments_.upper_bound(start);
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > start) it = prev;
  }
  while (cursor < end) {
    std::uint64_t span_end = end;
    int loc = home_;
    if (it != segments_.end() && it->first <= cursor) {
      span_end = std::min(it->second.end, end);
      loc = it->second.node;
      ++it;
    } else if (it != segments_.end() && it->first < end) {
      span_end = it->first;  // gap before next segment: home-resident
    }
    const bool mismatch = (loc != node);
    if (mismatch == count_not_on) counted += span_end - cursor;
    cursor = span_end;
  }
  return counted;
}

void DataLocations::set_range(std::uint64_t start, std::uint64_t end,
                              int node) {
  if (start >= end) return;
  // Trim or split any overlapping segments.
  auto it = segments_.upper_bound(start);
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > start) {
      // prev overlaps start; split it.
      if (prev->second.end > end) {
        // prev fully covers [start,end): create the tail piece.
        segments_.emplace(end, Segment{prev->second.end, prev->second.node});
      }
      prev->second.end = start;
      if (prev->second.end == prev->first) {
        // became empty (start == prev->first): erase
        it = segments_.erase(prev);
      }
    }
  }
  // Remove/trim segments fully or partially inside [start, end).
  it = segments_.lower_bound(start);
  while (it != segments_.end() && it->first < end) {
    if (it->second.end <= end) {
      it = segments_.erase(it);
    } else {
      // Partially sticks out: move its start to `end`.
      Segment tail = it->second;
      segments_.erase(it);
      segments_.emplace(end, tail);
      break;
    }
  }
  segments_.emplace(start, Segment{end, node});
}

std::uint64_t DataLocations::scan(std::uint64_t start, std::uint64_t end,
                                  int node, bool count_not_on,
                                  bool relocate) {
  const std::uint64_t counted = scan_const(start, end, node, count_not_on);
  if (relocate) set_range(start, end, node);
  return counted;
}

void DataLocations::scan_sources(
    std::uint64_t start, std::uint64_t end, int node,
    std::map<int, std::uint64_t>& by_source) const {
  std::uint64_t cursor = start;
  auto it = segments_.upper_bound(start);
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > start) it = prev;
  }
  while (cursor < end) {
    std::uint64_t span_end = end;
    int loc = home_;
    if (it != segments_.end() && it->first <= cursor) {
      span_end = std::min(it->second.end, end);
      loc = it->second.node;
      ++it;
    } else if (it != segments_.end() && it->first < end) {
      span_end = it->first;  // gap before next segment: home-resident
    }
    if (loc != node) by_source[loc] += span_end - cursor;
    cursor = span_end;
  }
}

std::uint64_t DataLocations::missing_input_bytes(
    const std::vector<AccessRegion>& accesses, int node) const {
  std::uint64_t bytes = 0;
  for (const AccessRegion& a : accesses) {
    if (!a.reads() || a.size == 0) continue;
    bytes += scan_const(a.start, a.end(), node, /*count_not_on=*/true);
  }
  return bytes;
}

std::uint64_t DataLocations::resident_input_bytes(
    const std::vector<AccessRegion>& accesses, int node) const {
  std::uint64_t bytes = 0;
  for (const AccessRegion& a : accesses) {
    if (!a.reads() || a.size == 0) continue;
    bytes += scan_const(a.start, a.end(), node, /*count_not_on=*/false);
  }
  return bytes;
}

void DataLocations::task_executed(const std::vector<AccessRegion>& accesses,
                                  int node) {
  for (const AccessRegion& a : accesses) {
    if (a.size == 0) continue;
    // Inputs were copied to `node` to run the task; outputs are produced
    // there. Either way the freshest copy of every accessed byte is now on
    // `node`. (For pure inputs the home copy also remains valid, but
    // tracking a single location is the conservative simplification: it
    // never under-prices a transfer for written data, and input re-reads
    // from the executing node are the common case the scheduler optimises.)
    if (a.writes()) set_range(a.start, a.end(), node);
  }
}

std::uint64_t DataLocations::pull(const std::vector<AccessRegion>& accesses,
                                  int node) {
  std::uint64_t bytes = 0;
  for (const AccessRegion& a : accesses) {
    if (a.size == 0) continue;
    bytes += scan(a.start, a.end(), node, /*count_not_on=*/true,
                  /*relocate=*/true);
  }
  return bytes;
}

std::vector<std::pair<int, std::uint64_t>> DataLocations::missing_by_source(
    const std::vector<AccessRegion>& accesses, int node) const {
  std::map<int, std::uint64_t> by_source;
  for (const AccessRegion& a : accesses) {
    if (!a.reads() || a.size == 0) continue;
    scan_sources(a.start, a.end(), node, by_source);
  }
  return {by_source.begin(), by_source.end()};
}

std::vector<std::pair<int, std::uint64_t>> DataLocations::pull_by_source(
    const std::vector<AccessRegion>& accesses, int node) {
  std::map<int, std::uint64_t> by_source;
  for (const AccessRegion& a : accesses) {
    if (a.size == 0) continue;
    scan_sources(a.start, a.end(), node, by_source);
    set_range(a.start, a.end(), node);
  }
  return {by_source.begin(), by_source.end()};
}

int DataLocations::location_of(std::uint64_t addr) const {
  auto it = segments_.upper_bound(addr);
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > addr) return prev->second.node;
  }
  return home_;
}

}  // namespace tlb::nanos
