// Discrete-event simulation engine.
//
// The engine owns the simulated clock and the event queue. Client code
// schedules callbacks at absolute or relative simulated times; run() fires
// them in timestamp order (FIFO for ties) until the queue drains, a stop is
// requested, or a time horizon is reached.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace tlb::sim {

class Engine {
 public:
  using Callback = EventQueue::Callback;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute simulated time `t` (must be >= now()).
  EventId at(SimTime t, Callback cb) {
    assert(t >= now_ && "cannot schedule in the past");
    return queue_.push(t, std::move(cb));
  }

  /// Schedules `cb` after a relative delay `dt` (must be >= 0).
  EventId after(SimTime dt, Callback cb) {
    assert(dt >= 0.0 && "negative delay");
    return queue_.push(now_ + dt, std::move(cb));
  }

  /// Cancels a scheduled event (no-op if it already fired).
  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the event queue drains or stop() is called.
  /// Returns the final simulated time.
  SimTime run();

  /// Runs until simulated time reaches `horizon` (events at exactly
  /// `horizon` still fire), the queue drains, or stop() is called.
  SimTime run_until(SimTime horizon);

  /// Requests that the current run() loop exits after the in-flight
  /// callback returns.
  void stop() noexcept { stopped_ = true; }

  /// Number of events fired since construction (diagnostic).
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }

  /// Number of pending events (diagnostic).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  /// Instrumented twin of the run loops, entered when tlb::prof is on.
  SimTime run_profiled(SimTime horizon, bool bounded);

  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t fired_ = 0;
  bool stopped_ = false;
};

}  // namespace tlb::sim
