// Deterministic random number generation for simulations.
//
// Every stochastic component draws from an Rng that is seeded explicitly,
// so a whole cluster simulation is reproducible from a single seed. The
// helpers below wrap <random> distributions with value semantics.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace tlb::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Derives an independent child stream; children with distinct tags are
  /// statistically independent of each other and of the parent.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    // SplitMix64-style mixing of (seed, tag) into a child seed.
    std::uint64_t z = seed_mix_ + 0x9E3779B97F4A7C15ULL * (tag + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return Rng(z ^ (z >> 31));
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    assert(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    assert(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), gen_);
  }

  /// Raw 64-bit draw.
  std::uint64_t next_u64() { return gen_(); }

  /// Underlying engine access (for std:: algorithms needing a URBG).
  std::mt19937_64& engine() noexcept { return gen_; }

 private:
  explicit Rng(std::uint64_t seed, int)  // disambiguator unused
      : gen_(seed) {}

  std::mt19937_64 gen_;
  std::uint64_t seed_mix_ = gen_();  // captures the seed's influence for fork()
};

}  // namespace tlb::sim
