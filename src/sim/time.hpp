// Simulated-time definitions for the tlb discrete-event engine.
//
// Simulated time is a double counting seconds since the start of the
// simulation. A double gives us ~microsecond resolution over multi-hour
// simulated runs, which is far finer than any modelled latency.
#pragma once

#include <limits>

namespace tlb::sim {

/// Simulated time in seconds since simulation start.
using SimTime = double;

/// Sentinel for "never" / "not yet scheduled".
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::infinity();

/// Convenience literals-ish helpers (explicit functions, no UDLs, so call
/// sites stay grep-able).
constexpr SimTime seconds(double s) noexcept { return s; }
constexpr SimTime milliseconds(double ms) noexcept { return ms * 1e-3; }
constexpr SimTime microseconds(double us) noexcept { return us * 1e-6; }

}  // namespace tlb::sim
