#include "sim/engine.hpp"

namespace tlb::sim {

SimTime Engine::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    auto [t, cb] = queue_.pop();
    assert(t >= now_ && "event queue time went backwards");
    now_ = t;
    ++fired_;
    cb();
  }
  return now_;
}

SimTime Engine::run_until(SimTime horizon) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const SimTime t = queue_.next_time();
    if (t > horizon) break;
    auto [pt, cb] = queue_.pop();
    now_ = pt;
    ++fired_;
    cb();
  }
  if (now_ < horizon) now_ = horizon;
  return now_;
}

}  // namespace tlb::sim
