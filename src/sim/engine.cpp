#include "sim/engine.hpp"

#include "prof/prof.hpp"

namespace tlb::sim {

SimTime Engine::run() {
  stopped_ = false;
  if (prof::enabled()) return run_profiled(/*horizon=*/0.0, /*bounded=*/false);
  while (!queue_.empty() && !stopped_) {
    auto [t, cb] = queue_.pop();
    assert(t >= now_ && "event queue time went backwards");
    now_ = t;
    ++fired_;
    cb();
  }
  return now_;
}

SimTime Engine::run_until(SimTime horizon) {
  stopped_ = false;
  if (prof::enabled()) return run_profiled(horizon, /*bounded=*/true);
  while (!queue_.empty() && !stopped_) {
    const SimTime t = queue_.next_time();
    if (t > horizon) break;
    auto [pt, cb] = queue_.pop();
    now_ = pt;
    ++fired_;
    cb();
  }
  if (now_ < horizon) now_ = horizon;
  return now_;
}

// The instrumented twin of the run loops above: identical pop/dispatch
// semantics (same pop order, same clock updates, same fired_ counting —
// goldens are bit-identical either way), plus host-time attribution and a
// health snapshot every `stride` fired events. Kept out of the default
// loop so the profiler-off path pays nothing, not even dead branches in
// the hot loop body.
SimTime Engine::run_profiled(SimTime horizon, bool bounded) {
  auto& profiler = prof::Profiler::instance();
  std::uint64_t stride = profiler.snapshot_stride();
  std::uint64_t until_sample = stride;
  while (!queue_.empty() && !stopped_) {
    if (bounded && queue_.next_time() > horizon) break;
    SimTime t;
    Callback cb;
    {
      PROF_SCOPE("engine.pop");
      auto popped = queue_.pop();
      t = popped.first;
      cb = std::move(popped.second);
    }
    assert((bounded || t >= now_) && "event queue time went backwards");
    now_ = t;
    ++fired_;
    {
      PROF_SCOPE("engine.dispatch");
      cb();
    }
    if (--until_sample == 0) {
      stride = profiler.sample(fired_, queue_.size());
      until_sample = stride;
    }
  }
  if (bounded && now_ < horizon) now_ = horizon;
  return now_;
}

}  // namespace tlb::sim
