#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tlb::sim {

EventId EventQueue::push(SimTime t, Callback cb) {
  const EventId id = next_id_++;
  ++live_;
  // Charged per physical entry; released in pop()/skip_cancelled()/dtor.
  prof::alloc_note(prof::AllocTag::SimEvent, sizeof(Entry));
  if (bucket_has_entry() && t == bucket_time_) {
    // Extend the in-flight same-time batch; ids stay increasing, so
    // front-to-back consumption is FIFO.
    bucket_.push_back(Entry{t, id, std::move(cb)});
  } else if (!bucket_has_entry() && t == last_popped_) {
    // after(0)-style push at the current instant: open a fresh batch
    // instead of paying a heap sift. Any same-time entries already in the
    // heap were pushed earlier (smaller id) and win the merge in pop().
    bucket_.clear();
    bucket_head_ = 0;
    bucket_time_ = t;
    bucket_.push_back(Entry{t, id, std::move(cb)});
  } else {
    heap_push(Entry{t, id, std::move(cb)});
  }
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  // Only mark as cancelled if the id plausibly refers to a queued event.
  // Firing removes ids lazily, so a stale cancel of a fired event would leak
  // an entry in cancelled_; bounded by checking against issued range.
  if (id >= next_id_) return;
  if (cancelled_.insert(id).second && live_ > 0) {
    --live_;
  }
}

void EventQueue::heap_push(Entry e) {
  std::size_t i = heap_.size();
  heap_.emplace_back();  // hole; filled below
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(e);
}

void EventQueue::heap_pop_root() {
  assert(!heap_.empty());
  Entry last = std::move(heap_.back());
  heap_.pop_back();
  if (heap_.empty()) return;
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = i * 4 + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t end = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], last)) break;
    heap_[i] = std::move(heap_[best]);
    i = best;
  }
  heap_[i] = std::move(last);
}

void EventQueue::skip_cancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    prof::free_note(prof::AllocTag::SimEvent, sizeof(Entry));
    heap_pop_root();
  }
  while (bucket_has_entry()) {
    auto it = cancelled_.find(bucket_[bucket_head_].id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    prof::free_note(prof::AllocTag::SimEvent, sizeof(Entry));
    bucket_[bucket_head_].cb = nullptr;  // release captures eagerly
    ++bucket_head_;
  }
  if (!bucket_has_entry() && !bucket_.empty()) {
    bucket_.clear();
    bucket_head_ = 0;
  }
}

SimTime EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->skip_cancelled();
  const bool heap_ok = !heap_.empty();
  const bool bucket_ok = bucket_has_entry();
  assert((heap_ok || bucket_ok) && "next_time() on empty queue");
  if (!bucket_ok) return heap_.front().time;
  if (!heap_ok) return bucket_time_;
  return earlier(bucket_[bucket_head_], heap_.front()) ? bucket_time_
                                                       : heap_.front().time;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  skip_cancelled();
  const bool heap_ok = !heap_.empty();
  const bool bucket_ok = bucket_has_entry();
  assert((heap_ok || bucket_ok) && "pop() on empty queue");
  --live_;
  prof::free_note(prof::AllocTag::SimEvent, sizeof(Entry));
  if (bucket_ok &&
      (!heap_ok || earlier(bucket_[bucket_head_], heap_.front()))) {
    Entry& e = bucket_[bucket_head_];
    ++bucket_head_;
    last_popped_ = e.time;
    Callback cb = std::move(e.cb);
    if (!bucket_has_entry()) {
      bucket_.clear();
      bucket_head_ = 0;
    }
    return {last_popped_, std::move(cb)};
  }
  last_popped_ = heap_.front().time;
  Callback cb = std::move(heap_.front().cb);
  heap_pop_root();
  return {last_popped_, std::move(cb)};
}

}  // namespace tlb::sim
