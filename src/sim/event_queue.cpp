#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace tlb::sim {

EventId EventQueue::push(SimTime t, Callback cb) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, id, std::move(cb)});
  ++live_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  // Only mark as cancelled if the id plausibly refers to a queued event.
  // Firing removes ids lazily, so a stale cancel of a fired event would leak
  // an entry in cancelled_; bounded by checking against issued range.
  if (id >= next_id_) return;
  if (cancelled_.insert(id).second && live_ > 0) {
    --live_;
  }
}

void EventQueue::skip_cancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->skip_cancelled();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_.top().time;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty() && "pop() on empty queue");
  Entry e = heap_.top();
  heap_.pop();
  --live_;
  return {e.time, std::move(e.cb)};
}

}  // namespace tlb::sim
