// A cancellable priority queue of timestamped events.
//
// Events with equal timestamps fire in insertion (FIFO) order, which makes
// simulations deterministic: the tie-break is a monotonically increasing
// sequence number, never an address or hash.
//
// Engineered for the hot loop of large runs (bench/fig17 drives ~1M tasks
// through it):
//  - a hand-rolled 4-ary implicit heap in one contiguous vector (arena)
//    whose sift operations *move* entries, so popping never copies a
//    std::function (std::priority_queue::top() forces a copy);
//  - a same-timestamp FIFO bucket: events pushed at exactly the current
//    time (after(0) cascades, e.g. fabric re-solves and ready-task
//    wakeups) append to a flat batch consumed front-to-back in O(1)
//    instead of churning the heap. Bucket entries always carry larger ids
//    than same-time heap entries (they were pushed later), so the
//    (time, id) merge in pop() preserves exact FIFO order.
//
// The observable pop order is bit-identical to the legacy
// std::priority_queue implementation; golden-fingerprint tests pin this.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "prof/prof.hpp"
#include "sim/time.hpp"

namespace tlb::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
using EventId = std::uint64_t;

/// Invalid/empty event handle.
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue() {
    // Release the alloc-accounting charge of entries still queued at
    // teardown (sim.event must balance to zero; entries are charged in
    // push() and released when physically removed).
    const std::size_t remaining =
        heap_.size() + (bucket_.size() - bucket_head_);
    if (remaining > 0) {
      prof::free_note(prof::AllocTag::SimEvent, remaining * sizeof(Entry));
    }
  }

  /// Schedules `cb` to fire at absolute time `t`. Returns a handle that can
  /// be passed to cancel().
  EventId push(SimTime t, Callback cb);

  /// Cancels a previously scheduled event. Cancelling an event that already
  /// fired (or was already cancelled) is a harmless no-op.
  void cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Pops the earliest live event and returns its (time, callback).
  /// Requires !empty().
  std::pair<SimTime, Callback> pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    Callback cb;
  };
  static bool earlier(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.id < b.id;  // FIFO for equal timestamps
  }

  void heap_push(Entry e);
  /// Removes the heap root (heap_[0]); the caller has already moved its
  /// callback out if it needs it.
  void heap_pop_root();
  /// Drops cancelled entries from the heap root and the bucket front.
  void skip_cancelled();
  [[nodiscard]] bool bucket_has_entry() const {
    return bucket_head_ < bucket_.size();
  }

  std::vector<Entry> heap_;  ///< 4-ary implicit min-heap by (time, id)
  /// Same-timestamp batch: entries at bucket_time_ == the time of the last
  /// pop, consumed front-to-back. Reset (and storage reused) once drained.
  std::vector<Entry> bucket_;
  std::size_t bucket_head_ = 0;
  SimTime bucket_time_ = 0.0;
  SimTime last_popped_ = 0.0;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace tlb::sim
