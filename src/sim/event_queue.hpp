// A cancellable priority queue of timestamped events.
//
// Events with equal timestamps fire in insertion (FIFO) order, which makes
// simulations deterministic: the tie-break is a monotonically increasing
// sequence number, never an address or hash.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace tlb::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
using EventId = std::uint64_t;

/// Invalid/empty event handle.
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `cb` to fire at absolute time `t`. Returns a handle that can
  /// be passed to cancel().
  EventId push(SimTime t, Callback cb);

  /// Cancels a previously scheduled event. Cancelling an event that already
  /// fired (or was already cancelled) is a harmless no-op.
  void cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Pops the earliest live event and returns its (time, callback).
  /// Requires !empty().
  std::pair<SimTime, Callback> pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO for equal timestamps
    }
  };

  /// Drops cancelled entries from the head of the heap.
  void skip_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace tlb::sim
