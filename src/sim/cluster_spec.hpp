// Static description of the simulated cluster hardware.
//
// Mirrors the two machines used in the paper:
//  - MareNostrum 4: 48 cores/node, homogeneous 1.0 speed, 100 Gb/s
//    Omni-Path (~12.5 GB/s, ~2 us latency).
//  - Nord3: 16 cores/node, "slow node" runs at 1.8 GHz vs 3.0 GHz,
//    i.e. a 0.6 speed factor.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace tlb::sim {

/// One compute node: a number of identical cores and a speed factor.
/// A task with `work` core-seconds of nominal work takes work / speed
/// wall-clock seconds on one core of this node.
struct NodeSpec {
  int cores = 48;
  double speed = 1.0;
};

/// Interconnect cost model: a point-to-point transfer of `bytes` costs
/// latency + bytes / bandwidth seconds. Links are not serialised (full
/// fat-tree assumption, as on MareNostrum 4). For a contention-aware
/// model of the same hardware, see tlb::net (RuntimeConfig::net).
///
/// The intra-node (shared-memory) copy path is part of the spec too, so
/// heterogeneous-node experiments can vary it: transfers between ranks on
/// the same node cost shm_latency + bytes / shm_bandwidth and are never
/// perturbed by link faults.
struct LinkSpec {
  SimTime latency = 2e-6;          // 2 us
  double bandwidth = 12.5e9;       // bytes/s (100 Gb/s)
  SimTime shm_latency = 2e-7;      // 200 ns
  double shm_bandwidth = 80e9;     // bytes/s

  [[nodiscard]] SimTime transfer_time(std::uint64_t bytes) const {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
  [[nodiscard]] SimTime shm_transfer_time(std::uint64_t bytes) const {
    return shm_latency + static_cast<double>(bytes) / shm_bandwidth;
  }
};

struct ClusterSpec {
  std::vector<NodeSpec> nodes;
  LinkSpec link;

  [[nodiscard]] int node_count() const { return static_cast<int>(nodes.size()); }

  [[nodiscard]] int total_cores() const {
    int c = 0;
    for (const auto& n : nodes) c += n.cores;
    return c;
  }

  /// Aggregate compute capacity in nominal core-units (sum of cores*speed);
  /// the denominator of the perfect-balance execution-time bound.
  [[nodiscard]] double total_capacity() const {
    double cap = 0.0;
    for (const auto& n : nodes) cap += n.cores * n.speed;
    return cap;
  }

  /// Homogeneous cluster of `n` nodes with `cores` cores each.
  static ClusterSpec homogeneous(int n, int cores, double speed = 1.0) {
    assert(n > 0 && cores > 0 && speed > 0.0);
    ClusterSpec spec;
    spec.nodes.assign(static_cast<std::size_t>(n), NodeSpec{cores, speed});
    return spec;
  }

  /// Homogeneous cluster with per-node speed overrides: each (index, speed)
  /// pair pins one node's speed factor. Indices must be in range, distinct,
  /// and speeds positive.
  static ClusterSpec with_speeds(
      int n, int cores, const std::vector<std::pair<int, double>>& overrides) {
    ClusterSpec spec = homogeneous(n, cores);
    for (std::size_t i = 0; i < overrides.size(); ++i) {
      const auto& [index, speed] = overrides[i];
      assert(index >= 0 && index < n && "speed override index out of range");
      assert(speed > 0.0 && "speed override must be positive");
      for (std::size_t j = 0; j < i; ++j) {
        assert(overrides[j].first != index &&
               "duplicate node index in speed overrides");
        (void)j;
      }
      spec.nodes[static_cast<std::size_t>(index)].speed = speed;
    }
    return spec;
  }

  /// Homogeneous cluster with one slow node (paper §7.5: Nord3 with one
  /// node at 1.8 GHz instead of 3.0 GHz => factor 0.6).
  static ClusterSpec with_slow_node(int n, int cores, int slow_index,
                                    double slow_speed) {
    return with_speeds(n, cores, {{slow_index, slow_speed}});
  }
};

}  // namespace tlb::sim
