#include "resil/lease.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tlb::resil {

LeaseRecord& LeaseTable::grant(std::uint64_t task, int worker,
                               sim::SimTime now) {
  assert(leases_.find(task) == leases_.end() &&
         "a task holds at most one live lease");
  LeaseRecord rec;
  rec.worker = worker;
  rec.epoch = next_epoch_++;
  rec.granted_at = now;
  auto [it, inserted] = leases_.emplace(task, rec);
  (void)inserted;
  return it->second;
}

LeaseRecord* LeaseTable::find(std::uint64_t task) {
  auto it = leases_.find(task);
  return it == leases_.end() ? nullptr : &it->second;
}

const LeaseRecord* LeaseTable::find(std::uint64_t task) const {
  auto it = leases_.find(task);
  return it == leases_.end() ? nullptr : &it->second;
}

void LeaseTable::revoke(std::uint64_t task) { leases_.erase(task); }

std::vector<std::uint64_t> LeaseTable::tasks_on(int worker) const {
  std::vector<std::uint64_t> out;
  for (const auto& [task, rec] : leases_) {
    if (rec.worker == worker) out.push_back(task);
  }
  return out;  // std::map iteration: ascending task id
}

sim::SimTime LeaseTable::backoff_delay(const ResilConfig& cfg, int attempt) {
  assert(attempt >= 1);
  sim::SimTime wait =
      cfg.lease_timeout * std::pow(cfg.lease_backoff, attempt - 1);
  if (cfg.lease_timeout_cap > 0.0) {
    wait = std::min(wait, cfg.lease_timeout_cap);
  }
  return wait;
}

}  // namespace tlb::resil
