// Configuration of the failure-detection / graceful-degradation layer.
//
// All parameters are plain data consumed by ClusterRuntime; together with
// RuntimeConfig::seed they make detection fully deterministic. The default
// DetectionMode::Oracle preserves the PR-1 behaviour bit-for-bit: crashes
// are announced to the runtime directly and none of the machinery below
// (heartbeats, leases, quarantine) is instantiated.
#pragma once

#include "sim/time.hpp"

namespace tlb::resil {

enum class DetectionMode {
  /// Failures are announced to the runtime by fiat (crash_worker performs
  /// the full oracle recovery immediately). Legacy / baseline behaviour.
  Oracle,
  /// Failures are *observed*: phi-accrual heartbeat detection, task
  /// leases with acknowledgment and retransmit, outlier quarantine.
  Heartbeat,
};

struct ResilConfig {
  DetectionMode detection = DetectionMode::Oracle;

  // --- phi-accrual heartbeat detector (per helper rank) ---------------------
  /// Interval between heartbeats a helper sends to its apprank's home
  /// runtime over the control plane (so heartbeats see link faults).
  sim::SimTime heartbeat_period = 0.05;
  /// Suspicion threshold: a worker is suspected when
  /// phi = -log10 P(silence this long | past arrivals) exceeds this.
  double phi_threshold = 8.0;
  /// Sliding window of inter-arrival samples kept per detector.
  int phi_window = 32;
  /// Lower bound on the inter-arrival standard deviation. The simulator is
  /// deterministic, so observed variance can collapse to zero; the floor
  /// keeps the normal tail well-defined (and models clock/scheduling skew
  /// a real deployment always has).
  sim::SimTime phi_min_std = 0.01;

  // --- task lease / acknowledgment protocol ---------------------------------
  /// A remote assignment must be acknowledged by the helper within this
  /// time, or the offload message is retransmitted.
  sim::SimTime lease_timeout = 0.05;
  /// Exponential backoff factor between lease retransmits (>= 1).
  double lease_backoff = 2.0;
  /// Upper bound on the backoff delay (the "capped" in capped exponential
  /// backoff). 0 disables the cap.
  sim::SimTime lease_timeout_cap = 0.4;
  /// Offload transmissions before the lease is declared expired and the
  /// task is re-queued elsewhere (>= 1).
  int lease_max_attempts = 5;

  // --- outlier quarantine (Envoy-style ejection) ----------------------------
  /// Consecutive lease expiries that eject a worker from pick_worker
  /// candidacy (phi crossings eject immediately).
  int quarantine_threshold = 3;
  /// Initial cooling period before an ejected worker is probed back in.
  sim::SimTime quarantine_cooling = 1.0;
  /// Cooling grows by this factor on every consecutive re-ejection.
  double quarantine_backoff = 2.0;
  /// Upper bound on the cooling period.
  sim::SimTime quarantine_cooling_cap = 8.0;

  // --- solver fallback chain ------------------------------------------------
  /// Wall-clock budget for one global solve; when the modelled
  /// solver_latency exceeds it the policy downshifts to local convergence
  /// for that tick. 0 disables the budget.
  sim::SimTime solver_time_budget = 0.0;
  /// Bisection-iteration budget handed to solver::solve_allocation; if the
  /// solve does not converge within it, the policy downshifts. 0 keeps the
  /// solver default.
  int solver_iteration_budget = 0;

  /// Re-wire the expander with a fresh helper edge when a crash leaves an
  /// apprank with no usable helper (offloading degree collapses to 1).
  bool rewire_on_disconnect = true;

  [[nodiscard]] bool heartbeat_active() const {
    return detection == DetectionMode::Heartbeat;
  }
};

}  // namespace tlb::resil
