// Task leases: the home runtime's bookkeeping of its outstanding remote
// assignments (paper §5.5 "offloading is final" made failure-aware).
//
// Every remote assignment is covered by a lease carrying a monotonically
// increasing epoch. The offload message must be acknowledged by the helper
// within a timeout or it is retransmitted with capped exponential backoff;
// when attempts exhaust, the lease expires and the task is re-queued
// elsewhere under a fresh epoch. A completion (or late ACK, or zombie
// execution under temporary link degradation) that names a stale epoch is
// suppressed — this is what makes re-execution exactly-once at the home
// runtime even when a falsely-suspected worker comes back.
//
// The table is keyed by task id in a std::map so iteration order (and thus
// re-queue order on suspicion) is deterministic across standard-library
// implementations.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "resil/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace tlb::resil {

struct LeaseRecord {
  int worker = -1;            ///< helper holding the lease
  std::uint64_t epoch = 0;    ///< grant generation; stale copies are ignored
  int attempts = 1;           ///< offload transmissions so far
  bool acked = false;         ///< helper acknowledged the assignment
  bool helper_received = false;  ///< at least one offload copy arrived
  /// The helper finished executing and its completion message is in
  /// flight; the worker's in-flight accounting is already settled, so a
  /// re-queue on suspicion must not charge it again.
  bool completion_in_flight = false;
  sim::SimTime granted_at = 0.0;
  sim::EventId timer = sim::kInvalidEvent;  ///< pending expiry event
};

class LeaseTable {
 public:
  /// Grants a fresh lease for `task` on `worker`; epochs are drawn from an
  /// internal monotone counter so no two grants ever share one.
  LeaseRecord& grant(std::uint64_t task, int worker, sim::SimTime now);

  [[nodiscard]] LeaseRecord* find(std::uint64_t task);
  [[nodiscard]] const LeaseRecord* find(std::uint64_t task) const;

  /// Drops the lease (completion accepted, or task re-queued elsewhere).
  void revoke(std::uint64_t task);

  /// Tasks currently leased to `worker`, in ascending task-id order
  /// (deterministic re-queue order).
  [[nodiscard]] std::vector<std::uint64_t> tasks_on(int worker) const;

  [[nodiscard]] std::size_t size() const { return leases_.size(); }
  [[nodiscard]] bool empty() const { return leases_.empty(); }

  /// Retransmit delay before attempt `attempt` (1-based count of
  /// transmissions already made): timeout * backoff^(attempt-1), capped.
  [[nodiscard]] static sim::SimTime backoff_delay(const ResilConfig& cfg,
                                                  int attempt);

 private:
  std::map<std::uint64_t, LeaseRecord> leases_;
  std::uint64_t next_epoch_ = 1;
};

}  // namespace tlb::resil
