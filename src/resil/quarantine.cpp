#include "resil/quarantine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tlb::resil {

Quarantine::Quarantine(int worker_count, const ResilConfig& cfg)
    : state_(static_cast<std::size_t>(worker_count)), cfg_(cfg) {}

void Quarantine::add_worker() { state_.emplace_back(); }

bool Quarantine::record_expiry(int w) {
  State& s = state_.at(static_cast<std::size_t>(w));
  s.streak += 1;
  return s.streak >= cfg_.quarantine_threshold;
}

void Quarantine::record_success(int w) {
  state_.at(static_cast<std::size_t>(w)).streak = 0;
}

sim::SimTime Quarantine::eject(int w, sim::SimTime now) {
  State& s = state_.at(static_cast<std::size_t>(w));
  assert(!s.ejected && "worker is already quarantined");
  sim::SimTime cooling =
      cfg_.quarantine_cooling * std::pow(cfg_.quarantine_backoff, s.ejections);
  if (cfg_.quarantine_cooling_cap > 0.0) {
    cooling = std::min(cooling, cfg_.quarantine_cooling_cap);
  }
  s.ejected = true;
  s.ejections += 1;
  s.ejected_at = now;
  s.cooled_until = now + cooling;
  return s.cooled_until;
}

sim::SimTime Quarantine::extend(int w, sim::SimTime now) {
  State& s = state_.at(static_cast<std::size_t>(w));
  assert(s.ejected && "extending a worker that is not quarantined");
  sim::SimTime cooling =
      cfg_.quarantine_cooling * std::pow(cfg_.quarantine_backoff, s.ejections);
  if (cfg_.quarantine_cooling_cap > 0.0) {
    cooling = std::min(cooling, cfg_.quarantine_cooling_cap);
  }
  s.ejections += 1;
  s.cooled_until = now + cooling;
  return s.cooled_until;
}

void Quarantine::readmit(int w) {
  State& s = state_.at(static_cast<std::size_t>(w));
  assert(s.ejected && "readmitting a worker that is not quarantined");
  s.ejected = false;
  s.streak = 0;
}

}  // namespace tlb::resil
