#include "resil/phi_detector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tlb::resil {

PhiAccrualDetector::PhiAccrualDetector(int window, double min_std)
    : window_(static_cast<std::size_t>(std::max(1, window))),
      min_std_(min_std) {
  assert(min_std > 0.0 && "phi needs a positive std floor");
}

void PhiAccrualDetector::heartbeat(sim::SimTime now) {
  if (last_ >= 0.0) {
    assert(now >= last_ && "heartbeats must arrive in time order");
    intervals_.push_back(now - last_);
    if (intervals_.size() > window_) intervals_.pop_front();
  }
  last_ = now;
}

double PhiAccrualDetector::mean() const {
  if (intervals_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : intervals_) sum += v;
  return sum / static_cast<double>(intervals_.size());
}

double PhiAccrualDetector::stddev() const {
  if (intervals_.empty()) return min_std_;
  const double m = mean();
  double acc = 0.0;
  for (double v : intervals_) acc += (v - m) * (v - m);
  const double var = acc / static_cast<double>(intervals_.size());
  return std::max(min_std_, std::sqrt(var));
}

double PhiAccrualDetector::phi(sim::SimTime now) const {
  if (!started()) return 0.0;
  const double elapsed = now - last_;
  if (elapsed <= 0.0) return 0.0;
  // P(interval > elapsed) under N(mean, std): the complementary CDF.
  const double z = (elapsed - mean()) / (stddev() * std::sqrt(2.0));
  const double p = 0.5 * std::erfc(z);
  // erfc underflows to 0 for z >~ 27; cap phi there (it is far beyond any
  // sensible threshold anyway).
  constexpr double kPhiMax = 350.0;
  if (p <= 0.0) return kPhiMax;
  return std::min(kPhiMax, -std::log10(p));
}

void PhiAccrualDetector::reset() {
  intervals_.clear();
  last_ = -1.0;
}

}  // namespace tlb::resil
