// Phi-accrual failure detector (Hayashibara et al., SRDS'04).
//
// Instead of a binary alive/dead verdict from a fixed timeout, the detector
// outputs a continuous suspicion level
//
//   phi(t) = -log10 P(no heartbeat for (t - last_arrival) | history)
//
// where the inter-arrival distribution is estimated from a sliding window
// of observed heartbeat gaps, modelled as a normal tail. The consumer
// compares phi against a threshold: higher thresholds tolerate longer
// silences (fewer false positives, slower detection). Because the
// simulator is deterministic the sample variance can collapse to zero, so
// the standard deviation is floored by `min_std`.
#pragma once

#include <cstddef>
#include <deque>

#include "sim/time.hpp"

namespace tlb::resil {

class PhiAccrualDetector {
 public:
  PhiAccrualDetector(int window, double min_std);

  /// Records a heartbeat arrival at simulated time `now` (must be
  /// non-decreasing across calls).
  void heartbeat(sim::SimTime now);

  /// Suspicion level at time `now`; 0 while fewer than two arrivals have
  /// been observed (no distribution to judge silence against).
  [[nodiscard]] double phi(sim::SimTime now) const;

  /// True once at least two heartbeats have arrived.
  [[nodiscard]] bool started() const { return !intervals_.empty(); }

  [[nodiscard]] sim::SimTime last_arrival() const { return last_; }

  /// Forgets all history (used when a quarantined worker is readmitted, so
  /// stale pre-ejection gaps do not poison the fresh estimate).
  void reset();

  /// Window mean / floored standard deviation (diagnostic; 0 before start).
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;

 private:
  std::deque<double> intervals_;
  std::size_t window_;
  double min_std_;
  sim::SimTime last_ = -1.0;  ///< last arrival; < 0 = none yet
};

}  // namespace tlb::resil
