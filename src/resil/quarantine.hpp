// Outlier quarantine, in the style of Envoy's outlier ejection.
//
// Workers accumulating consecutive lease expiries — or whose heartbeat phi
// crosses the detection threshold — are ejected from scheduler candidacy
// for a cooling period. After cooling, the runtime probes: if the worker
// has produced a heartbeat since ejection it is readmitted (false
// suspicion, e.g. a temporary link blackout); otherwise it is re-ejected
// with an exponentially growing, capped cooling period. A fail-stopped
// worker therefore converges to the longest cooling and never returns.
#pragma once

#include <cstdint>
#include <vector>

#include "resil/config.hpp"
#include "sim/time.hpp"

namespace tlb::resil {

class Quarantine {
 public:
  Quarantine(int worker_count, const ResilConfig& cfg);

  /// Grows the tables when the topology gains a worker (expander rewire).
  void add_worker();

  /// A lease on `w` expired; returns true when the consecutive-expiry
  /// count has reached the ejection threshold.
  bool record_expiry(int w);

  /// A lease on `w` was served successfully: reset the expiry streak.
  void record_success(int w);

  /// Ejects `w` at `now`; cooling doubles (capped) on each consecutive
  /// ejection. Returns the time at which the worker may be probed back.
  sim::SimTime eject(int w, sim::SimTime now);

  /// Readmits `w` and clears its expiry streak (the ejection count is
  /// kept, so a flapping worker pays growing cooldowns).
  void readmit(int w);

  /// The end-of-cooling probe found `w` still silent: keep it ejected and
  /// grow the cooling period one more step. Returns the new probe time.
  sim::SimTime extend(int w, sim::SimTime now);

  [[nodiscard]] bool ejected(int w) const {
    return state_.at(static_cast<std::size_t>(w)).ejected;
  }
  [[nodiscard]] sim::SimTime ejected_at(int w) const {
    return state_.at(static_cast<std::size_t>(w)).ejected_at;
  }
  [[nodiscard]] sim::SimTime cooled_until(int w) const {
    return state_.at(static_cast<std::size_t>(w)).cooled_until;
  }
  [[nodiscard]] int ejection_count(int w) const {
    return state_.at(static_cast<std::size_t>(w)).ejections;
  }
  [[nodiscard]] int expiry_streak(int w) const {
    return state_.at(static_cast<std::size_t>(w)).streak;
  }

 private:
  struct State {
    int streak = 0;      ///< consecutive lease expiries
    int ejections = 0;   ///< lifetime ejection count (drives backoff)
    bool ejected = false;
    sim::SimTime ejected_at = 0.0;
    sim::SimTime cooled_until = 0.0;
  };
  std::vector<State> state_;
  ResilConfig cfg_;
};

}  // namespace tlb::resil
