// DROM — Dynamic Resource Ownership Management (paper §3.3, §5.4).
//
// Coarse-grained load balancing: changes the semi-permanent *ownership* of
// a node's cores among its resident workers. A balance policy (local
// convergence or global solver, src/core/) computes target ownership
// counts; DROM picks concrete cores to move, preferring idle ones so the
// transfer completes immediately.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "dlb/core_registry.hpp"

namespace tlb::dlb {

class DromModule {
 public:
  /// When `enabled` is false apply() is a no-op (the paper's "without
  /// DROM" configurations).
  DromModule(NodeCores& cores, bool enabled)
      : cores_(cores), enabled_(enabled) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Target ownership for the node: (worker, core_count) pairs covering
  /// every resident worker. Counts must sum to the node's core count and
  /// each must be >= 1. Moves the minimum number of cores, preferring
  /// idle donors. Returns the number of cores whose owner changed.
  int apply(const std::vector<std::pair<WorkerId, int>>& target);

  [[nodiscard]] std::uint64_t ownership_changes() const { return changes_; }

 private:
  NodeCores& cores_;
  bool enabled_;
  std::uint64_t changes_ = 0;
};

}  // namespace tlb::dlb
