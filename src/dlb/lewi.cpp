#include "dlb/lewi.hpp"

namespace tlb::dlb {

int LewiModule::lend_idle(WorkerId w) {
  if (!enabled_) return 0;
  int moved = 0;
  for (int core : cores_.idle_leased_cores(w)) {
    if (cores_.owner(core) == w) {
      // Do not lend a core that someone is already waiting to take over
      // (a pending DROM transfer): let the transfer complete instead.
      if (cores_.reclaim_pending(core)) continue;
      cores_.lend(core);
      ++lends_;
      ++moved;
    } else {
      cores_.release_borrowed(core);
      ++moved;
    }
  }
  return moved;
}

std::vector<int> LewiModule::borrow(WorkerId w, int max_cores) {
  std::vector<int> got;
  if (!enabled_ || max_cores <= 0) return got;
  for (int core : cores_.pooled_cores()) {
    if (static_cast<int>(got.size()) >= max_cores) break;
    if (cores_.owner(core) == w) continue;  // take own cores via reclaim
    if (cores_.try_borrow(core, w)) {
      got.push_back(core);
      ++borrows_;
    }
  }
  return got;
}

int LewiModule::reclaim_for(WorkerId w, int needed) {
  if (!enabled_ || needed <= 0) return 0;
  int issued = 0;
  for (int core = 0; core < cores_.core_count() && issued < needed; ++core) {
    if (cores_.owner(core) != w) continue;
    if (cores_.lease(core) == w) continue;
    if (cores_.pending_lease(core) == w) continue;  // already on its way
    cores_.reclaim(core);
    ++reclaims_;
    ++issued;
  }
  return issued;
}

}  // namespace tlb::dlb
