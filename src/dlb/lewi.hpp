// LeWI — Lend When Idle (paper §3.3, §5.3).
//
// Fine-grained load balancing within one node: a worker lends cores it
// cannot use right now into a pool; co-located workers with backlog borrow
// them; the owner reclaims as soon as it has work again. Reclaims of
// running cores resolve at the task boundary (NodeCores handles that).
#pragma once

#include <cstdint>
#include <vector>

#include "dlb/core_registry.hpp"

namespace tlb::dlb {

class LewiModule {
 public:
  /// When `enabled` is false every operation is a no-op (the paper's
  /// "without LeWI" configurations).
  LewiModule(NodeCores& cores, bool enabled)
      : cores_(cores), enabled_(enabled) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Lends all of `w`'s idle *owned* cores into the pool. Idle *borrowed*
  /// cores are released instead. Returns the number of cores lent+released.
  int lend_idle(WorkerId w);

  /// Borrows up to `max_cores` pooled cores for `w`.
  /// Returns the core indices borrowed.
  std::vector<int> borrow(WorkerId w, int max_cores);

  /// Owner `w` needs cores again: reclaims up to `needed` of its lent-out
  /// cores (idle ones return immediately; running ones at task end).
  /// Returns how many reclaims were issued.
  int reclaim_for(WorkerId w, int needed);

  // Lifetime statistics (diagnostics / tests).
  [[nodiscard]] std::uint64_t lends() const { return lends_; }
  [[nodiscard]] std::uint64_t borrows() const { return borrows_; }
  [[nodiscard]] std::uint64_t reclaims() const { return reclaims_; }

 private:
  NodeCores& cores_;
  bool enabled_;
  std::uint64_t lends_ = 0;
  std::uint64_t borrows_ = 0;
  std::uint64_t reclaims_ = 0;
};

}  // namespace tlb::dlb
