// TALP — Tracking Application Live Performance (paper §3.3).
//
// Measures how busy each worker is: the time-integral of the number of
// cores executing its tasks. The balance policies use the windowed average
// ("average number of busy cores", §5.4) as their work estimate; the total
// supports end-of-run parallel-efficiency reports.
#pragma once

#include <cassert>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace tlb::dlb {

class TalpModule {
 public:
  /// `now` supplies the current (simulated) time; `worker_count` sizes the
  /// accounting tables.
  TalpModule(std::function<sim::SimTime()> now, int worker_count);

  /// Grows the accounting tables for a worker added mid-run (expander
  /// rewire, tlb::resil); the newcomer starts idle with no history.
  void add_worker();

  /// A task started (+1) or finished (-1) on a core leased to `w`.
  void on_busy_delta(int worker, int delta);

  /// Total busy core-seconds accumulated by `worker` since construction.
  [[nodiscard]] double busy_core_seconds(int worker) const;

  /// Average number of busy cores over the current window.
  [[nodiscard]] double window_average(int worker) const;

  /// Instantaneous number of busy cores.
  [[nodiscard]] int current_busy(int worker) const {
    return state_.at(static_cast<std::size_t>(worker)).busy;
  }

  /// Starts a new measurement window (policies call this after reading).
  void reset_window();

  /// Parallel efficiency over the whole run for `worker`, given the number
  /// of cores nominally assigned to it: busy_time / (cores * elapsed).
  [[nodiscard]] double efficiency(int worker, double cores) const;

  [[nodiscard]] int worker_count() const {
    return static_cast<int>(state_.size());
  }

 private:
  struct State {
    int busy = 0;
    double total = 0.0;        // busy core-seconds since start
    double window = 0.0;       // busy core-seconds since window start
    sim::SimTime last = 0.0;   // last accumulation timestamp
  };
  void accumulate(State& s) const;

  std::function<sim::SimTime()> now_;
  std::vector<State> state_;
  sim::SimTime window_start_ = 0.0;
  sim::SimTime start_ = 0.0;
};

}  // namespace tlb::dlb
