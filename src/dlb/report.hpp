// TALP end-of-run report (paper §3.3: "the data obtained by TALP ... can
// be output as a report at the end").
//
// Formats per-worker busy time and parallel efficiency the way DLB's TALP
// module prints its summary, given a label and nominal core count per
// worker.
#pragma once

#include <string>
#include <vector>

#include "dlb/talp.hpp"

namespace tlb::dlb {

struct TalpReportRow {
  std::string label;      ///< e.g. "apprank 0 @ node 2 (helper)"
  int worker = 0;         ///< TalpModule worker index
  double nominal_cores = 0.0;  ///< cores to measure efficiency against
};

/// Renders a fixed-width text report: busy core-seconds, average busy
/// cores, and parallel efficiency per row, plus an aggregate line.
std::string talp_report(const TalpModule& talp,
                        const std::vector<TalpReportRow>& rows,
                        double elapsed_seconds);

}  // namespace tlb::dlb
