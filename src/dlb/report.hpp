// TALP end-of-run report (paper §3.3: "the data obtained by TALP ... can
// be output as a report at the end").
//
// Formats per-worker busy time and parallel efficiency the way DLB's TALP
// module prints its summary, given a label and nominal core count per
// worker.
#pragma once

#include <string>
#include <vector>

#include "dlb/talp.hpp"
#include "sched/stats.hpp"

namespace tlb::dlb {

struct TalpReportRow {
  std::string label;      ///< e.g. "apprank 0 @ node 2 (helper)"
  int worker = 0;         ///< TalpModule worker index
  double nominal_cores = 0.0;  ///< cores to measure efficiency against
};

/// Renders a fixed-width text report: busy core-seconds, average busy
/// cores, and parallel efficiency per row, plus an aggregate line.
std::string talp_report(const TalpModule& talp,
                        const std::vector<TalpReportRow>& rows,
                        double elapsed_seconds);

/// Renders the scheduling-policy counters (tlb::sched, RunResult::sched)
/// in the same end-of-run report style: victim selections, offload
/// opportunities, and how many the policy steered or suppressed relative
/// to the locality baseline. (SchedStats is header-only, so this adds no
/// tlb_sched link dependency.)
std::string sched_report(const std::string& policy,
                         const sched::SchedStats& stats);

}  // namespace tlb::dlb
