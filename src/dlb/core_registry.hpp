// Core ownership and leasing state for one node (DLB's shared-memory view).
//
// Every physical core of a node is *owned* by exactly one worker process
// (an apprank or a helper rank) at all times — the DROM invariant. The
// *lease* tracks who may currently run tasks on the core:
//   - normally the owner;
//   - kNoWorker while the core sits in the LeWI lending pool;
//   - a borrower after LeWI borrowing.
// Reclaims (by the owner) and ownership changes (by DROM) that hit a core
// in the middle of a task take effect at the task boundary — a task is
// never preempted, matching OmpSs-2 malleability semantics.
#pragma once

#include <cstdint>
#include <vector>

namespace tlb::dlb {

/// Globally unique worker-process id (apprank main process or helper rank).
using WorkerId = int;
inline constexpr WorkerId kNoWorker = -1;

class NodeCores {
 public:
  /// All cores initially owned (and leased) by `initial_owner`.
  NodeCores(int core_count, WorkerId initial_owner);

  [[nodiscard]] int core_count() const { return static_cast<int>(cores_.size()); }

  [[nodiscard]] WorkerId owner(int core) const { return at(core).owner; }
  [[nodiscard]] WorkerId lease(int core) const { return at(core).lease; }
  [[nodiscard]] bool is_running(int core) const { return at(core).running; }
  [[nodiscard]] bool is_in_pool(int core) const {
    return at(core).lease == kNoWorker;
  }
  [[nodiscard]] bool reclaim_pending(int core) const {
    return at(core).pending != kNoWorker;
  }
  /// Who the core will be leased to at the next task boundary (kNoWorker if
  /// no transfer is pending).
  [[nodiscard]] WorkerId pending_lease(int core) const { return at(core).pending; }

  // --- DROM: ownership -----------------------------------------------------

  /// Transfers ownership. If the core is idle and was leased to the old
  /// owner (or pooled), the lease moves immediately; if it is running a
  /// task, the transfer completes at the next task_finished().
  void set_owner(int core, WorkerId new_owner);

  // --- LeWI: lend / borrow / reclaim ----------------------------------------

  /// Owner stops using an idle core: it enters the lending pool.
  /// Requires: lease == owner, not running.
  void lend(int core);

  /// A worker takes an idle pooled core. Returns false if unavailable.
  bool try_borrow(int core, WorkerId borrower);

  /// Borrower voluntarily returns an idle core to the pool.
  /// Requires: leased to a non-owner, not running.
  void release_borrowed(int core);

  /// Owner wants its core back. Immediate when the core is idle; otherwise
  /// marked pending and applied at task_finished(). No-op when the owner
  /// already holds the lease.
  void reclaim(int core);

  // --- execution notifications ----------------------------------------------

  /// Runtime marks a task starting on the core (requires leased, idle).
  void task_started(int core);

  /// Runtime marks the task done. Applies any pending lease transfer and
  /// returns the worker now holding the lease.
  WorkerId task_finished(int core);

  // --- queries ----------------------------------------------------------------

  [[nodiscard]] int owned_count(WorkerId w) const;
  [[nodiscard]] int leased_count(WorkerId w) const;
  /// Cores currently in the lending pool.
  [[nodiscard]] std::vector<int> pooled_cores() const;
  /// Cores leased to `w` and idle.
  [[nodiscard]] std::vector<int> idle_leased_cores(WorkerId w) const;

  /// Debug invariant check: every core has an owner; lease/pending states
  /// are mutually consistent. Aborts (assert) on violation.
  void check_invariants() const;

 private:
  struct Core {
    WorkerId owner = kNoWorker;
    WorkerId lease = kNoWorker;
    WorkerId pending = kNoWorker;  // lease transfer applied at task end
    bool running = false;
  };
  [[nodiscard]] const Core& at(int core) const {
    return cores_.at(static_cast<std::size_t>(core));
  }
  [[nodiscard]] Core& at(int core) {
    return cores_.at(static_cast<std::size_t>(core));
  }

  std::vector<Core> cores_;
};

}  // namespace tlb::dlb
