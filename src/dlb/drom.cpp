#include "dlb/drom.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace tlb::dlb {

int DromModule::apply(const std::vector<std::pair<WorkerId, int>>& target) {
  if (!enabled_) return 0;
  // An empty target means the balance policy excluded this node entirely
  // (retired by elastic scale-in, or every resident unusable): ownership
  // stays as-is rather than asserting full coverage.
  if (target.empty()) return 0;
#ifndef NDEBUG
  int sum = 0;
  for (const auto& [w, count] : target) {
    assert(count >= 1 && "every worker must own at least one core");
    sum += count;
  }
  assert(sum == cores_.core_count() && "target must cover every core");
#endif

  // Deficit per worker = target - currently owned.
  std::vector<std::pair<WorkerId, int>> deficit;
  for (const auto& [w, count] : target) {
    deficit.emplace_back(w, count - cores_.owned_count(w));
  }

  // Donor cores: owned by an over-provisioned worker. Prefer idle cores so
  // the new owner can use them right away.
  auto surplus_of = [&](WorkerId w) -> int* {
    for (auto& [dw, d] : deficit) {
      if (dw == w) return &d;
    }
    return nullptr;
  };

  std::vector<int> donors;
  for (int pass = 0; pass < 2; ++pass) {
    const bool want_idle = (pass == 0);
    for (int core = 0; core < cores_.core_count(); ++core) {
      if (cores_.is_running(core) == want_idle) continue;
      int* d = surplus_of(cores_.owner(core));
      if (d != nullptr && *d < 0) {
        donors.push_back(core);
        ++*d;  // provisionally released
      }
    }
  }

  // Hand donor cores to under-provisioned workers.
  int moved = 0;
  std::size_t di = 0;
  for (auto& [w, d] : deficit) {
    while (d > 0 && di < donors.size()) {
      cores_.set_owner(donors[di++], w);
      --d;
      ++moved;
      ++changes_;
    }
  }
  assert(di == donors.size() && "donor/recipient mismatch");
  return moved;
}

}  // namespace tlb::dlb
