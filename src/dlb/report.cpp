#include "dlb/report.hpp"

#include <cstdio>
#include <sstream>

namespace tlb::dlb {

std::string talp_report(const TalpModule& talp,
                        const std::vector<TalpReportRow>& rows,
                        double elapsed_seconds) {
  std::ostringstream out;
  out << "TALP report (" << elapsed_seconds << " s elapsed)\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-32s %14s %12s %12s\n", "worker",
                "busy [core-s]", "avg busy", "efficiency");
  out << buf;

  double total_busy = 0.0;
  double total_cores = 0.0;
  for (const TalpReportRow& row : rows) {
    const double busy = talp.busy_core_seconds(row.worker);
    const double avg = elapsed_seconds > 0.0 ? busy / elapsed_seconds : 0.0;
    const double eff = talp.efficiency(row.worker, row.nominal_cores);
    total_busy += busy;
    total_cores += row.nominal_cores;
    std::snprintf(buf, sizeof(buf), "%-32s %14.3f %12.3f %11.1f%%\n",
                  row.label.c_str(), busy, avg, 100.0 * eff);
    out << buf;
  }
  const double agg_eff =
      (elapsed_seconds > 0.0 && total_cores > 0.0)
          ? total_busy / (total_cores * elapsed_seconds)
          : 0.0;
  std::snprintf(buf, sizeof(buf), "%-32s %14.3f %12s %11.1f%%\n", "TOTAL",
                total_busy, "-", 100.0 * agg_eff);
  out << buf;
  return out.str();
}

std::string sched_report(const std::string& policy,
                         const sched::SchedStats& stats) {
  std::ostringstream out;
  out << "Scheduler report (policy: " << policy << ")\n";
  char buf[160];
  const auto pct = [&](std::uint64_t n) {
    return stats.offloads_considered > 0
               ? 100.0 * static_cast<double>(n) /
                     static_cast<double>(stats.offloads_considered)
               : 0.0;
  };
  std::snprintf(buf, sizeof(buf), "%-32s %14llu\n", "victim selections",
                static_cast<unsigned long long>(stats.decisions));
  out << buf;
  std::snprintf(buf, sizeof(buf), "%-32s %14llu\n", "offloads considered",
                static_cast<unsigned long long>(stats.offloads_considered));
  out << buf;
  std::snprintf(buf, sizeof(buf), "%-32s %14llu %11.1f%%\n",
                "offloads steered",
                static_cast<unsigned long long>(stats.offloads_steered),
                pct(stats.offloads_steered));
  out << buf;
  std::snprintf(buf, sizeof(buf), "%-32s %14llu %11.1f%%\n",
                "offloads suppressed",
                static_cast<unsigned long long>(stats.offloads_suppressed),
                pct(stats.offloads_suppressed));
  out << buf;
  if (stats.switches > 0) {
    std::snprintf(buf, sizeof(buf), "%-32s %14llu\n", "policy mode switches",
                  static_cast<unsigned long long>(stats.switches));
    out << buf;
  }
  std::snprintf(buf, sizeof(buf), "%-32s %14llu\n", "state probes",
                static_cast<unsigned long long>(stats.state_touched));
  out << buf;
  if (stats.decisions > 0) {
    std::snprintf(buf, sizeof(buf), "%-32s %14.1f\n", "state probes / decision",
                  static_cast<double>(stats.state_touched) /
                      static_cast<double>(stats.decisions));
    out << buf;
  }
  return out.str();
}

}  // namespace tlb::dlb
