#include "dlb/core_registry.hpp"

#include <cassert>

namespace tlb::dlb {

NodeCores::NodeCores(int core_count, WorkerId initial_owner)
    : cores_(static_cast<std::size_t>(core_count)) {
  assert(core_count > 0);
  assert(initial_owner != kNoWorker);
  for (Core& c : cores_) {
    c.owner = initial_owner;
    c.lease = initial_owner;
  }
}

void NodeCores::set_owner(int core, WorkerId new_owner) {
  assert(new_owner != kNoWorker);
  Core& c = at(core);
  const WorkerId old_owner = c.owner;
  c.owner = new_owner;
  if (old_owner == new_owner) return;
  if (!c.running) {
    // Idle: the new owner takes the lease unless a borrower holds it.
    if (c.lease == old_owner || c.lease == kNoWorker) {
      c.lease = new_owner;
      c.pending = kNoWorker;
    } else {
      // Borrowed by a third party: schedule the handover.
      c.pending = new_owner;
    }
  } else {
    // Mid-task (whoever is running): hand over at the boundary.
    if (c.lease == new_owner) {
      c.pending = kNoWorker;
    } else {
      c.pending = new_owner;
    }
  }
}

void NodeCores::lend(int core) {
  Core& c = at(core);
  assert(c.lease == c.owner && "only the owner's lease can be lent");
  assert(!c.running && "cannot lend a running core");
  c.lease = kNoWorker;
}

bool NodeCores::try_borrow(int core, WorkerId borrower) {
  assert(borrower != kNoWorker);
  Core& c = at(core);
  if (c.lease != kNoWorker || c.running) return false;
  c.lease = borrower;
  return true;
}

void NodeCores::release_borrowed(int core) {
  Core& c = at(core);
  assert(c.lease != kNoWorker && c.lease != c.owner &&
         "release_borrowed requires a borrower lease");
  assert(!c.running);
  if (c.pending != kNoWorker) {
    c.lease = c.pending;
    c.pending = kNoWorker;
  } else {
    c.lease = kNoWorker;  // back to the pool
  }
}

void NodeCores::reclaim(int core) {
  Core& c = at(core);
  if (c.lease == c.owner) return;  // already ours
  if (!c.running) {
    c.lease = c.owner;
    c.pending = kNoWorker;
  } else {
    c.pending = c.owner;
  }
}

void NodeCores::task_started(int core) {
  Core& c = at(core);
  assert(c.lease != kNoWorker && "task on an unleased core");
  assert(!c.running && "core already running a task");
  c.running = true;
}

WorkerId NodeCores::task_finished(int core) {
  Core& c = at(core);
  assert(c.running);
  c.running = false;
  if (c.pending != kNoWorker) {
    c.lease = c.pending;
    c.pending = kNoWorker;
  }
  return c.lease;
}

int NodeCores::owned_count(WorkerId w) const {
  int n = 0;
  for (const Core& c : cores_) n += (c.owner == w);
  return n;
}

int NodeCores::leased_count(WorkerId w) const {
  int n = 0;
  for (const Core& c : cores_) n += (c.lease == w);
  return n;
}

std::vector<int> NodeCores::pooled_cores() const {
  std::vector<int> out;
  for (int i = 0; i < core_count(); ++i) {
    if (cores_[static_cast<std::size_t>(i)].lease == kNoWorker) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<int> NodeCores::idle_leased_cores(WorkerId w) const {
  std::vector<int> out;
  for (int i = 0; i < core_count(); ++i) {
    const Core& c = cores_[static_cast<std::size_t>(i)];
    if (c.lease == w && !c.running) out.push_back(i);
  }
  return out;
}

void NodeCores::check_invariants() const {
  for (const Core& c : cores_) {
    assert(c.owner != kNoWorker && "ownerless core");
    if (c.running) {
      assert(c.lease != kNoWorker && "running core must be leased");
    }
    if (c.pending != kNoWorker) {
      assert(c.pending != c.lease && "pending transfer to current lessee");
    }
    (void)c;
  }
}

}  // namespace tlb::dlb
