#include "dlb/talp.hpp"

namespace tlb::dlb {

TalpModule::TalpModule(std::function<sim::SimTime()> now, int worker_count)
    : now_(std::move(now)),
      state_(static_cast<std::size_t>(worker_count)) {
  assert(worker_count > 0);
  const sim::SimTime t = now_();
  window_start_ = t;
  start_ = t;
  for (State& s : state_) s.last = t;
}

void TalpModule::add_worker() {
  State s;
  s.last = now_();
  state_.push_back(s);
}

void TalpModule::accumulate(State& s) const {
  const sim::SimTime t = now_();
  const double dt = t - s.last;
  if (dt > 0.0) {
    s.total += s.busy * dt;
    s.window += s.busy * dt;
    s.last = t;
  }
}

void TalpModule::on_busy_delta(int worker, int delta) {
  State& s = state_.at(static_cast<std::size_t>(worker));
  accumulate(s);
  s.busy += delta;
  assert(s.busy >= 0 && "negative busy-core count");
}

double TalpModule::busy_core_seconds(int worker) const {
  State s = state_.at(static_cast<std::size_t>(worker));
  accumulate(s);
  return s.total;
}

double TalpModule::window_average(int worker) const {
  State s = state_.at(static_cast<std::size_t>(worker));
  accumulate(s);
  const double span = now_() - window_start_;
  if (span <= 0.0) return static_cast<double>(s.busy);
  return s.window / span;
}

void TalpModule::reset_window() {
  const sim::SimTime t = now_();
  for (State& s : state_) {
    accumulate(s);
    s.window = 0.0;
  }
  window_start_ = t;
}

double TalpModule::efficiency(int worker, double cores) const {
  const double elapsed = now_() - start_;
  if (elapsed <= 0.0 || cores <= 0.0) return 0.0;
  return busy_core_seconds(worker) / (cores * elapsed);
}

}  // namespace tlb::dlb
