// Configuration of the service-style traffic subsystem (tlb::svc).
//
// Every other workload in this repo is a single-app batch run measured by
// makespan. tlb::svc instead models the cluster as a *service*: app
// instances (jobs) arrive continuously from an open-loop, seeded arrival
// process, contend for nodes, and are measured by p50/p99 job latency and
// goodput (jobs completing within their deadline class's SLO). An
// admission/overload-control layer in the style of Envoy's traffic
// management — token-bucket rate limiting, a gradient-based adaptive
// concurrency limit, retry budgets, and load shedding by deadline class —
// keeps the service degrading gracefully instead of collapsing when the
// offered load exceeds capacity.
//
// RuntimeConfig::svc carries this struct. The default (enabled = false)
// is inert: nothing in core::ClusterRuntime reads it, so plain runs stay
// bit-identical to a build without the subsystem. The svc::JobManager is
// the separate entry point that consumes an enabled config.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace tlb::svc {

/// Shape of the open-loop arrival process.
enum class ArrivalShape {
  /// Homogeneous Poisson process at ArrivalConfig::rate.
  Poisson,
  /// Two-state Markov-modulated Poisson process: a burst state at
  /// rate * burst_factor entered for an exponentially-distributed dwell,
  /// tuned so the long-run mean rate stays ArrivalConfig::rate.
  Bursty,
  /// Non-homogeneous Poisson (thinning) with a sinusoidal rate
  /// rate * (1 + amplitude * sin(2*pi*t / period)) — the compressed
  /// day/night cycle of the "millions of users" framing.
  Diurnal,
  /// Replay of a recorded arrival log (ArrivalConfig::trace): no RNG
  /// draws at all, so generate → dump → replay is bit-identical.
  Trace,
};

/// Canonical name ("poisson", "bursty", "diurnal", "trace") — inverse of
/// parse_arrival_shape.
[[nodiscard]] inline const char* to_string(ArrivalShape shape) {
  switch (shape) {
    case ArrivalShape::Poisson: return "poisson";
    case ArrivalShape::Bursty: return "bursty";
    case ArrivalShape::Diurnal: return "diurnal";
    case ArrivalShape::Trace: return "trace";
  }
  return "?";
}

/// Parses an arrival-shape name. Unknown names throw std::invalid_argument
/// listing the valid values — never a silent fallback.
[[nodiscard]] inline ArrivalShape parse_arrival_shape(
    const std::string& name) {
  if (name == "poisson") return ArrivalShape::Poisson;
  if (name == "bursty") return ArrivalShape::Bursty;
  if (name == "diurnal") return ArrivalShape::Diurnal;
  if (name == "trace") return ArrivalShape::Trace;
  throw std::invalid_argument("unknown arrival shape \"" + name +
                              "\" (valid: poisson, bursty, diurnal, trace)");
}

/// One job arrival. `job_seed` drives the instance's workload draws
/// (task durations) — derived from a dedicated RNG stream so two shapes
/// with the same seed build comparable jobs. Lives here (not arrivals.hpp)
/// so ArrivalConfig can carry a recorded trace of them.
struct Arrival {
  double time = 0.0;
  int template_index = 0;
  std::uint64_t job_seed = 0;
};

/// Template an arriving job instance is drawn from: the shape of the app
/// (size, imbalance, data volume) plus its service class. Each admitted
/// job becomes one ClusterRuntime execution of a SyntheticWorkload with
/// these parameters on a `nodes`-node partition of the shared cluster.
struct JobTemplate {
  std::string name = "job";
  int nodes = 2;                  ///< partition size (allocated exclusively)
  int appranks_per_node = 1;
  int degree = 2;                 ///< offloading degree inside the partition
  int iterations = 2;
  int tasks_per_rank = 24;
  double base_duration = 0.020;   ///< mean task duration, seconds
  double imbalance = 1.5;         ///< Equation-2 imbalance of the instance
  std::uint64_t bytes_per_task = 64 * 1024;
  /// Deadline class: 0 is the most latency-sensitive and shed last;
  /// higher classes are shed earlier under overload (see
  /// AdmissionConfig::class_fractions).
  int deadline_class = 1;
  /// SLO: a job meets its deadline when arrival-to-completion latency
  /// (queueing included) stays within this many seconds.
  double deadline = 2.0;
  /// Relative arrival frequency among the configured templates.
  double weight = 1.0;
};

struct ArrivalConfig {
  ArrivalShape shape = ArrivalShape::Poisson;
  double rate = 4.0;      ///< mean arrivals per second
  double horizon = 30.0;  ///< arrivals stop at this simulated time
  /// Hard cap on emitted arrivals (safety net for misconfigured rates);
  /// 0 = unlimited.
  int max_arrivals = 0;

  // Bursty (MMPP-2) shape.
  double burst_factor = 4.0;    ///< burst-state rate multiplier
  double burst_fraction = 0.2;  ///< long-run fraction of time in burst
  double burst_dwell = 2.0;     ///< mean burst-state dwell, seconds

  // Diurnal shape.
  double diurnal_period = 30.0;
  double diurnal_amplitude = 0.8;  ///< in [0, 1)

  /// Trace shape: the recorded log to replay, monotone non-decreasing in
  /// time. Ignored by the synthetic shapes; see dump_arrivals_jsonl /
  /// parse_arrivals_jsonl (arrivals.hpp) for the on-disk format.
  std::vector<Arrival> trace;
};

/// Envoy-style admission / overload control. Disabled, every arrival is
/// queued unboundedly (the congestion-collapse baseline of fig15).
struct AdmissionConfig {
  bool enabled = false;

  /// Token bucket at the front door: `bucket_rate` tokens/s refill up to
  /// `bucket_burst`; an arrival finding the bucket empty is shed (or
  /// retried, see the retry budget). 0 disables the bucket, leaving the
  /// concurrency limit as the only gate.
  double bucket_rate = 0.0;
  double bucket_burst = 16.0;

  /// Gradient-based adaptive concurrency limit (Envoy adaptive-concurrency
  /// / Netflix concurrency-limits): every `update_window` completed jobs,
  ///   gradient  = clamp(tolerance * min_latency / sample_p50, 0.5, 2.0)
  ///   new_limit = clamp(limit * gradient [+ sqrt(limit) headroom when
  ///               gradient >= 1], min_limit, max_limit)
  /// so sustained latency inflation beyond `tolerance` times the observed
  /// floor shrinks the number of jobs admitted concurrently.
  int initial_limit = 4;
  int min_limit = 1;
  int max_limit = 64;
  double tolerance = 2.0;
  int update_window = 8;

  /// Per-deadline-class load shedding: class c is admitted only while
  /// running + queued jobs < limit * class_fractions[c] (missing entries
  /// inherit the last one). Lower classes keep headroom longer, so under
  /// overload the batch tier sheds first — priority load shedding.
  std::vector<double> class_fractions = {1.0, 0.9, 0.7};

  /// Retry budget (Envoy: retries may be at most `retry_ratio` of the
  /// in-flight jobs plus `retry_base`): a shed arrival whose budget allows
  /// it re-arrives after `retry_backoff * 2^attempt` seconds, at most
  /// `retry_max` times. Bounds retry amplification during overload.
  double retry_ratio = 0.2;
  int retry_base = 3;
  double retry_backoff = 0.5;
  int retry_max = 2;
};

/// Per-tenant (per-template) circuit breaker: K consecutive SLO misses
/// trip the tenant open; while open its arrivals are shed at the door
/// (ShedBreaker) so one misbehaving tenant cannot wedge the shared FCFS
/// queue for everyone else. After `open_duration` (scaled by
/// `backoff_factor` per consecutive trip, capped at `max_open_duration`)
/// a single half-open probe job is let through; `half_open_successes`
/// SLO-met completions close the breaker, one more miss re-trips it.
struct BreakerConfig {
  bool enabled = false;
  int failure_threshold = 3;      ///< consecutive SLO misses to trip
  double open_duration = 2.0;     ///< base open interval, seconds
  double backoff_factor = 2.0;    ///< per-consecutive-trip multiplier
  double max_open_duration = 30.0;
  int half_open_successes = 1;    ///< probe successes needed to close
};

struct SvcConfig {
  /// Master switch. False (the default) is inert: the core runtime never
  /// reads this struct, and svc::JobManager refuses a disabled config.
  bool enabled = false;

  ArrivalConfig arrivals;
  AdmissionConfig admission;
  BreakerConfig breaker;  ///< per-tenant circuit breakers

  /// Job templates arrivals are drawn from (weighted). Empty is rejected
  /// by the JobManager — there is no implicit default job.
  std::vector<JobTemplate> templates;

  /// Cross-tenant interconnect coupling: each launched job's link
  /// bandwidth is derated to bw / (1 + fabric_pressure * co_running)
  /// where co_running counts the other jobs in flight at launch — a
  /// static approximation of sharing the backbone with its neighbours
  /// (partitions are node-disjoint, so NIC/leaf contention is already
  /// modelled inside each job by RuntimeConfig::net). 0 disables.
  double fabric_pressure = 0.0;
};

}  // namespace tlb::svc
