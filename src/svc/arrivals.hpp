// Seeded open-loop arrival generator (tlb::svc).
//
// Emits the arrival sequence of the service scenario: (time, template,
// per-job seed) triples drawn from a Poisson, bursty (MMPP-2), or diurnal
// (thinned non-homogeneous Poisson) process, or replayed verbatim from a
// recorded trace. Deterministic: the sequence is a pure function of
// (ArrivalConfig, template weights, seed) — independent of admission
// decisions or execution, so the same seed offers the identical traffic
// to every configuration under test.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "svc/config.hpp"

namespace tlb::svc {

/// Serializes arrivals as JSON lines, one object per arrival:
///   {"time":<%.17g>,"template":<int>,"seed":<uint64>}
/// %.17g round-trips every finite double exactly through strtod, so
/// generate → dump → parse → replay is bit-identical.
[[nodiscard]] std::string dump_arrivals_jsonl(
    const std::vector<Arrival>& arrivals);

/// Inverse of dump_arrivals_jsonl. Blank lines are skipped; any other
/// deviation from the dumped format throws std::invalid_argument naming
/// the offending line.
[[nodiscard]] std::vector<Arrival> parse_arrivals_jsonl(
    const std::string& text);

class ArrivalGenerator {
 public:
  /// `template_weights` must be non-empty with non-negative entries and a
  /// positive sum; `seed` is typically RuntimeConfig::seed.
  ArrivalGenerator(ArrivalConfig config, std::vector<double> template_weights,
                   std::uint64_t seed);

  /// Next arrival, or nullopt once the horizon (or max_arrivals) is
  /// reached. Monotone non-decreasing times.
  std::optional<Arrival> next();

  /// Drains the generator into a vector (convenience for schedulers and
  /// determinism tests).
  [[nodiscard]] std::vector<Arrival> all();

  [[nodiscard]] int emitted() const { return emitted_; }

 private:
  [[nodiscard]] double burst_rate_high() const;
  [[nodiscard]] double burst_rate_low() const;
  /// Advances now_ to the next arrival instant of the configured shape.
  void advance();

  ArrivalConfig config_;
  std::vector<double> cumulative_weight_;
  sim::Rng rng_;       ///< inter-arrival and template draws
  sim::Rng seed_rng_;  ///< independent per-job seed stream
  double now_ = 0.0;
  bool in_burst_ = false;
  double switch_at_ = 0.0;  ///< next MMPP state toggle
  int emitted_ = 0;
  std::size_t trace_pos_ = 0;  ///< Trace shape: next replay index
};

}  // namespace tlb::svc
