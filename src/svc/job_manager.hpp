// Multi-tenant job manager (tlb::svc).
//
// Runs the service scenario: jobs arrive from an ArrivalGenerator, pass
// the per-tenant circuit breaker and the admission controller, queue for
// a free node partition, and execute as full-fidelity ClusterRuntime
// instances (one per job) multiplexed on one shared sim::Engine — job
// events interleave in simulated time, so a long-running batch instance
// and a burst of interactive ones genuinely contend for the cluster.
// Partitions are node-exclusive (FCFS over a free-node list);
// cross-tenant pressure shows up as queueing delay and, optionally, as
// the fabric_pressure bandwidth derating.
//
// With RuntimeConfig::elastic enabled the manager also decides how many
// cluster nodes are *powered*: an ElasticController watches queue
// pressure and powers slots up (after a provision delay) or down (idle
// free nodes only — a running job's partition is never reclaimed), and
// every powered second is billed as node-seconds cost. An xDS-style
// control plane (elastic::ControlPlane) accepts mid-run config pushes
// for the scheduler policy, the admission settings, and the elastic
// bounds — invalid resources NACK and roll back.
//
// Measured per job: queue wait, service time, arrival-to-completion
// latency, SLO verdict (latency <= the template's deadline). Aggregated:
// p50/p99 latency, goodput (SLO-met jobs per second of horizon), shed
// rate, node-seconds — all mirrored into an obs::Registry.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "elastic/controller.hpp"
#include "elastic/xds.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "svc/admission.hpp"
#include "svc/arrivals.hpp"
#include "svc/breaker.hpp"

namespace tlb::svc {

/// Terminal state of one arrival.
enum class JobOutcome {
  Pending,      ///< not yet decided (only before run() completes)
  Completed,    ///< ran to completion
  ShedBucket,   ///< rejected: token bucket empty, retries exhausted
  ShedLimit,    ///< rejected: concurrency limit, retries exhausted
  ShedBreaker,  ///< rejected: tenant's circuit breaker open
};

struct JobRecord {
  int id = -1;
  int template_index = 0;
  int deadline_class = 0;
  double deadline = 0.0;
  std::uint64_t job_seed = 0;  ///< drives the instance's workload draws
  double arrival = 0.0;   ///< first arrival (retries do not reset it)
  double started = -1.0;  ///< partition allocated, runtime launched
  double finished = -1.0;
  int retries = 0;
  JobOutcome outcome = JobOutcome::Pending;
  bool slo_met = false;

  [[nodiscard]] double queue_wait() const {
    return started >= 0.0 ? started - arrival : -1.0;
  }
  [[nodiscard]] double service() const {
    return finished >= 0.0 ? finished - started : -1.0;
  }
  [[nodiscard]] double latency() const {
    return finished >= 0.0 ? finished - arrival : -1.0;
  }
};

/// Per-deadline-class aggregate.
struct SvcClassRow {
  int deadline_class = 0;
  std::uint64_t arrived = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t slo_met = 0;
};

/// Per-tenant (per-template) aggregate — the unit the circuit breakers
/// protect, so tenant-isolation claims are checked on these rows.
struct SvcTenantRow {
  int template_index = 0;
  std::string name;
  std::uint64_t arrived = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;          ///< all shed outcomes, breaker included
  std::uint64_t shed_breaker = 0;
  std::uint64_t slo_met = 0;
  double latency_p99 = 0.0;        ///< completed jobs only
  std::uint64_t breaker_trips = 0;
  double breaker_open_time_s = 0.0;
};

struct SvcResult {
  std::uint64_t arrived = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t retries = 0;
  std::uint64_t slo_met = 0;

  double elapsed = 0.0;        ///< simulated end time (queue fully drained)
  double horizon = 0.0;        ///< arrival horizon (goodput denominator)
  double goodput = 0.0;        ///< SLO-met jobs per second of horizon
  double shed_rate = 0.0;      ///< shed / arrived
  double latency_p50 = 0.0;    ///< completed jobs, exact order statistics
  double latency_p99 = 0.0;
  double latency_mean = 0.0;
  double queue_wait_p50 = 0.0;
  double queue_wait_p99 = 0.0;
  double service_mean = 0.0;
  int final_limit = 0;         ///< gradient limiter's limit at the end

  // Elastic pool: powered-node-seconds billed over the run (static runs
  // bill node_count * elapsed), the powered high-water mark, and applied
  // scaling decisions.
  double cost_node_seconds = 0.0;
  int peak_nodes = 0;
  std::uint64_t scale_out_events = 0;
  std::uint64_t scale_in_events = 0;

  // Circuit breakers, summed over tenants.
  std::uint64_t shed_breaker = 0;
  std::uint64_t breaker_trips = 0;
  double breaker_open_time_s = 0.0;

  std::uint64_t engine_events = 0;
  std::vector<SvcClassRow> classes;
  std::vector<SvcTenantRow> tenants;
};

class JobManager {
 public:
  /// `base` supplies the shared cluster (base.cluster), the root seed, and
  /// base.svc (which must be enabled with at least one template). Per-job
  /// runtime configs inherit the remaining knobs (policy, lewi/drom,
  /// sched, net, periods) with the partition's nodes substituted.
  /// base.elastic (optional) turns on the powered-node pool.
  explicit JobManager(core::RuntimeConfig base);

  /// Runs the scenario to completion: all arrivals decided, every admitted
  /// job finished, the queue drained. One-shot, like ClusterRuntime::run.
  SvcResult run();

  // Post-run inspection.
  [[nodiscard]] const std::vector<JobRecord>& jobs() const { return records_; }
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }
  [[nodiscard]] const AdmissionController& admission() const {
    return admission_;
  }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const obs::EventLog& events() const { return events_; }
  /// Currently powered node slots (== cluster size when elastic is off).
  [[nodiscard]] int powered_count() const;
  [[nodiscard]] const std::vector<CircuitBreaker>& breakers() const {
    return breakers_;
  }

  /// xDS-style config endpoint. Subscribed types:
  ///   "tlb.sched.policy"   payload "policy=<name>"   (new launches only)
  ///   "tlb.svc.admission"  payload "key=value ..."   (controller rebuilt)
  ///   "tlb.elastic.nodes"  payload "min=<n> max=<n>" (controller bounds)
  /// Invalid payloads NACK with a reason and the previously acked resource
  /// stays in force; stale versions are rejected without side effects.
  [[nodiscard]] elastic::ControlPlane& control() { return control_; }

 private:
  /// One launched job: the runtime (and its workload) stay alive until the
  /// manager is destroyed — deferred events on the shared engine may still
  /// reference a completed runtime (see ClusterRuntime shared-mode docs).
  struct LaunchedJob {
    int record = -1;
    std::vector<int> nodes;  ///< partition (indices into base cluster)
    std::unique_ptr<core::Workload> workload;
    std::unique_ptr<core::ClusterRuntime> runtime;
    bool done = false;
  };

  void subscribe_control_types();
  void on_arrival(const Arrival& arrival, int record_id, bool is_retry);
  /// Shed-or-retry on a non-admit verdict; updates the record's outcome.
  void reject(const Arrival& arrival, int record_id, AdmitVerdict verdict,
              bool is_probe);
  /// Marks a record's terminal outcome (each record decided exactly once).
  void decide(int record_id, JobOutcome outcome);
  void try_dispatch();
  void launch(int record_id);
  void on_job_done(std::size_t launched_index);
  [[nodiscard]] int in_flight() const {
    return running_ + static_cast<int>(pending_.size());
  }
  [[nodiscard]] core::RuntimeConfig job_config(const JobTemplate& tpl,
                                               const std::vector<int>& nodes,
                                               std::uint64_t job_seed) const;

  // Elastic pool.
  void schedule_elastic_tick();
  void elastic_tick();
  void begin_power_up(int node);  ///< starts billing + provision timer
  void power_up(int node);        ///< provision-complete: slot usable
  void power_down(int node);      ///< bills the interval; node must be free
  [[nodiscard]] bool work_remaining() const {
    return decided_ < records_.size();
  }

  core::RuntimeConfig base_;
  SvcConfig svc_;
  sim::Engine engine_;
  AdmissionController admission_;
  obs::Registry metrics_;
  obs::EventLog events_;
  elastic::ControlPlane control_;

  bool ran_ = false;             ///< run() is one-shot
  std::vector<int> free_nodes_;  ///< powered and idle; ascending
  /// Admitted, waiting for a partition (record ids, FCFS).
  std::deque<int> pending_;
  int running_ = 0;
  std::size_t decided_ = 0;  ///< records with a terminal outcome
  std::vector<JobRecord> records_;
  std::vector<std::unique_ptr<LaunchedJob>> launched_;

  /// Per-template circuit breakers (empty when svc.breaker is disabled).
  std::vector<CircuitBreaker> breakers_;

  // Powered-node pool state (elastic only; static runs keep every slot
  // powered for the whole run).
  std::unique_ptr<elastic::ElasticController> elastic_ctrl_;
  std::vector<char> powered_;
  std::vector<char> provisioning_slot_;
  std::vector<double> power_on_at_;  ///< billing start of current interval
  int provisioning_ = 0;
  double node_seconds_ = 0.0;        ///< closed-out billing intervals
  int peak_powered_ = 0;
  std::uint64_t scale_outs_ = 0;
  std::uint64_t scale_ins_ = 0;

  struct MetricRefs {
    obs::Counter* arrived = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* shed_bucket = nullptr;
    obs::Counter* shed_limit = nullptr;
    obs::Counter* shed_breaker = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* slo_met = nullptr;
    obs::Counter* scale_out = nullptr;
    obs::Counter* scale_in = nullptr;
    obs::Histogram* latency = nullptr;
    obs::Histogram* queue_wait = nullptr;
    obs::Histogram* service = nullptr;
  } m_;
};

}  // namespace tlb::svc
