// Admission / overload control primitives (tlb::svc).
//
// Envoy-style traffic management, adapted from its upstream admission
// machinery (the same family as the outlier quarantine already borrowed
// in tlb::resil):
//   - TokenBucket:     front-door rate limiting with a burst allowance;
//   - GradientLimiter: adaptive concurrency limit driven by the gradient
//                      between the observed latency floor and the current
//                      sample latency (Envoy adaptive-concurrency filter /
//                      Netflix concurrency-limits);
//   - RetryBudget:     retries capped at a ratio of in-flight work plus a
//                      constant floor, preventing retry storms;
//   - AdmissionController: composes the three plus per-deadline-class
//                      shed fractions into a single admit/shed verdict.
//
// Everything is deterministic and clockless: callers pass the current
// simulated time; nothing here draws randomness or schedules events.
#pragma once

#include <cstdint>
#include <vector>

#include "svc/config.hpp"

namespace tlb::svc {

/// Classic token bucket with lazy refill. `rate <= 0` means unlimited
/// (try_take always succeeds).
class TokenBucket {
 public:
  TokenBucket(double rate, double burst);

  /// Takes one token at simulated time `now` (monotone across calls);
  /// false when the bucket is empty.
  bool try_take(double now);

  /// Tokens available at `now` (diagnostic).
  [[nodiscard]] double available(double now) const;

 private:
  void refill(double now);

  double rate_;
  double burst_;
  double tokens_;
  double last_ = 0.0;
};

/// Gradient-based adaptive concurrency limit. Collects one latency sample
/// per completed job; every `update_window` samples the limit is rescaled
/// by clamp(tolerance * min_latency / window_p50, 0.5, 2.0), with a
/// sqrt(limit) headroom term when growing so the limiter keeps probing
/// for capacity. The latency floor is a running minimum inflated by 5%
/// per update so it can track a genuinely slower regime instead of
/// pinning to a stale best case.
class GradientLimiter {
 public:
  explicit GradientLimiter(const AdmissionConfig& config);

  [[nodiscard]] int limit() const { return limit_; }
  [[nodiscard]] double min_latency() const { return min_latency_; }
  [[nodiscard]] int updates() const { return updates_; }

  /// Records one completed-job latency; may trigger a limit update.
  void record(double latency);

 private:
  AdmissionConfig config_;
  int limit_;
  double min_latency_ = -1.0;  ///< -1 until the first sample
  std::vector<double> window_;
  int updates_ = 0;
};

/// Envoy-style retry budget: a retry may start only while
/// active_retries < ratio * in_flight + base.
class RetryBudget {
 public:
  RetryBudget(double ratio, int base);

  /// Reserves a retry slot against `in_flight` jobs; false = over budget.
  bool try_start(int in_flight);
  /// Releases a slot once the retried arrival was re-decided.
  void settle();

  [[nodiscard]] int active() const { return active_; }
  [[nodiscard]] std::uint64_t exhausted() const { return exhausted_; }

 private:
  double ratio_;
  int base_;
  int active_ = 0;
  std::uint64_t exhausted_ = 0;
};

/// Composite admission verdict.
enum class AdmitVerdict {
  Admit,
  ShedBucket,  ///< token bucket empty
  ShedLimit,   ///< class's share of the concurrency limit exhausted
};

[[nodiscard]] const char* to_string(AdmitVerdict v);

/// Composes bucket + limiter + class fractions. The caller supplies the
/// current in-flight count (running + queued jobs) and the deadline class.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  /// Decision for one arrival. Consumes a token only when the other gates
  /// pass would not matter — bucket first, mirroring an edge rate limiter
  /// in front of the concurrency gate.
  AdmitVerdict decide(int deadline_class, int in_flight, double now);

  /// Completed-job latency feedback to the gradient limiter.
  void on_job_latency(double latency) { limiter_.record(latency); }

  /// Effective concurrency cap for a deadline class (limit * fraction,
  /// never below 1 for class 0).
  [[nodiscard]] int class_cap(int deadline_class) const;

  [[nodiscard]] const GradientLimiter& limiter() const { return limiter_; }
  [[nodiscard]] RetryBudget& retry_budget() { return retry_budget_; }
  [[nodiscard]] const TokenBucket& bucket() const { return bucket_; }

 private:
  AdmissionConfig config_;
  TokenBucket bucket_;
  GradientLimiter limiter_;
  RetryBudget retry_budget_;
};

}  // namespace tlb::svc
