#include "svc/job_manager.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "apps/synthetic.hpp"
#include "sched/registry.hpp"

namespace tlb::svc {

namespace {

// Shared latency-style bucket edges (seconds) for the SLO histograms.
std::vector<double> latency_bounds() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0};
}

/// Exact order-statistics quantile over a sorted sample (linear
/// interpolation between adjacent ranks, the common "type 7" definition).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace

JobManager::JobManager(core::RuntimeConfig base)
    : base_(std::move(base)), svc_(base_.svc), admission_(svc_.admission) {
  if (!svc_.enabled) {
    throw std::invalid_argument("JobManager: RuntimeConfig::svc is disabled");
  }
  if (svc_.templates.empty()) {
    throw std::invalid_argument("JobManager: no job templates configured");
  }
  const int cluster_nodes = base_.cluster.node_count();
  if (cluster_nodes < 1) {
    throw std::invalid_argument("JobManager: empty cluster");
  }
  for (const JobTemplate& tpl : svc_.templates) {
    if (tpl.nodes < 1 || tpl.nodes > cluster_nodes) {
      throw std::invalid_argument(
          "JobManager: template \"" + tpl.name + "\" wants " +
          std::to_string(tpl.nodes) + " nodes on a " +
          std::to_string(cluster_nodes) + "-node cluster");
    }
    if (tpl.appranks_per_node < 1 || tpl.degree < 1 || tpl.iterations < 1 ||
        tpl.tasks_per_rank < 1 || tpl.base_duration <= 0.0 ||
        tpl.imbalance < 1.0 || tpl.deadline <= 0.0 || tpl.deadline_class < 0) {
      throw std::invalid_argument("JobManager: template \"" + tpl.name +
                                  "\" has out-of-range parameters");
    }
  }
  if (svc_.fabric_pressure < 0.0) {
    throw std::invalid_argument("JobManager: negative fabric_pressure");
  }

  if (svc_.breaker.enabled) {
    breakers_.reserve(svc_.templates.size());
    for (std::size_t t = 0; t < svc_.templates.size(); ++t) {
      breakers_.emplace_back(svc_.breaker);  // ctor validates the config
    }
  }

  powered_.assign(static_cast<std::size_t>(cluster_nodes), 1);
  provisioning_slot_.assign(static_cast<std::size_t>(cluster_nodes), 0);
  power_on_at_.assign(static_cast<std::size_t>(cluster_nodes), 0.0);

  if (base_.elastic.enabled) {
    elastic_ctrl_ =
        std::make_unique<elastic::ElasticController>(base_.elastic);
    if (base_.elastic.min_nodes > cluster_nodes) {
      throw std::invalid_argument(
          "JobManager: elastic.min_nodes exceeds the cluster size");
    }
    // The pool can never grow past the declared cluster, whatever the
    // configured ceiling says.
    elastic_ctrl_->set_bounds(base_.elastic.min_nodes,
                              std::min(base_.elastic.max_nodes,
                                       cluster_nodes));
    for (const JobTemplate& tpl : svc_.templates) {
      if (tpl.nodes > elastic_ctrl_->max_nodes()) {
        throw std::invalid_argument(
            "JobManager: template \"" + tpl.name +
            "\" can never fit within elastic.max_nodes");
      }
    }
    // Slots above min_nodes start dark and are billed only once powered.
    for (int n = elastic_ctrl_->min_nodes(); n < cluster_nodes; ++n) {
      powered_[static_cast<std::size_t>(n)] = 0;
    }
  }
  for (int n = 0; n < cluster_nodes; ++n) {
    if (powered_[static_cast<std::size_t>(n)] != 0) free_nodes_.push_back(n);
  }
  peak_powered_ = powered_count();

  subscribe_control_types();

  m_.arrived = &metrics_.counter("svc.jobs_arrived");
  m_.admitted = &metrics_.counter("svc.jobs_admitted");
  m_.completed = &metrics_.counter("svc.jobs_completed");
  m_.shed = &metrics_.counter("svc.jobs_shed");
  m_.shed_bucket = &metrics_.counter("svc.shed_bucket");
  m_.shed_limit = &metrics_.counter("svc.shed_limit");
  m_.shed_breaker = &metrics_.counter("svc.shed_breaker");
  m_.retries = &metrics_.counter("svc.retries");
  m_.slo_met = &metrics_.counter("svc.slo_met");
  m_.scale_out = &metrics_.counter("svc.scale_out");
  m_.scale_in = &metrics_.counter("svc.scale_in");
  m_.latency = &metrics_.histogram("svc.latency", latency_bounds());
  m_.queue_wait = &metrics_.histogram("svc.queue_wait", latency_bounds());
  m_.service = &metrics_.histogram("svc.service", latency_bounds());
}

int JobManager::powered_count() const {
  int n = 0;
  for (char p : powered_) n += p != 0 ? 1 : 0;
  return n;
}

void JobManager::subscribe_control_types() {
  // Every applier validates the full payload before mutating any state, so
  // a NACK leaves the previously acked config in force (the ControlPlane
  // re-applies the last acked resource, which then must succeed).
  control_.subscribe(
      "tlb.sched.policy", [this](const elastic::Resource& res) -> std::string {
        try {
          const auto kv = elastic::parse_kv(res.payload);
          const auto it = kv.find("policy");
          if (it == kv.end()) return "missing key 'policy'";
          const auto known = sched::known_policies();
          if (std::find(known.begin(), known.end(), it->second) ==
              known.end()) {
            return "unknown scheduler policy '" + it->second + "'";
          }
          base_.sched.policy = it->second;  // affects subsequent launches
          events_.record(engine_.now(), "xds_ack",
                         "sched.policy=" + it->second);
          return "";
        } catch (const std::exception& e) {
          return e.what();
        }
      });

  control_.subscribe(
      "tlb.svc.admission", [this](const elastic::Resource& res) -> std::string {
        try {
          const auto kv = elastic::parse_kv(res.payload);
          AdmissionConfig next = svc_.admission;
          next.bucket_rate =
              elastic::kv_double(kv, "bucket_rate", next.bucket_rate);
          next.bucket_burst =
              elastic::kv_double(kv, "bucket_burst", next.bucket_burst);
          next.initial_limit =
              elastic::kv_int(kv, "initial_limit", next.initial_limit);
          next.min_limit = elastic::kv_int(kv, "min_limit", next.min_limit);
          next.max_limit = elastic::kv_int(kv, "max_limit", next.max_limit);
          next.tolerance =
              elastic::kv_double(kv, "tolerance", next.tolerance);
          next.update_window =
              elastic::kv_int(kv, "update_window", next.update_window);
          if (next.bucket_rate < 0.0 || next.bucket_burst < 1.0) {
            return "bucket_rate must be >= 0 and bucket_burst >= 1";
          }
          if (next.min_limit < 1 || next.max_limit < next.min_limit ||
              next.initial_limit < next.min_limit ||
              next.initial_limit > next.max_limit) {
            return "limits must satisfy 1 <= min <= initial <= max";
          }
          if (next.tolerance <= 0.0 || next.update_window < 1) {
            return "tolerance must be > 0 and update_window >= 1";
          }
          // Hot-swap: the controller restarts from the pushed config (the
          // gradient limiter relearns its latency floor, deliberately).
          svc_.admission = next;
          admission_ = AdmissionController(next);
          events_.record(engine_.now(), "xds_ack", "svc.admission updated");
          return "";
        } catch (const std::exception& e) {
          return e.what();
        }
      });

  control_.subscribe(
      "tlb.elastic.nodes", [this](const elastic::Resource& res) -> std::string {
        try {
          if (elastic_ctrl_ == nullptr) {
            return "elastic pool is disabled in this run";
          }
          const auto kv = elastic::parse_kv(res.payload);
          const int min_n =
              elastic::kv_int(kv, "min", elastic_ctrl_->min_nodes());
          const int max_n =
              elastic::kv_int(kv, "max", elastic_ctrl_->max_nodes());
          const int cluster_nodes = base_.cluster.node_count();
          if (min_n < 1 || max_n < min_n || max_n > cluster_nodes) {
            return "bounds must satisfy 1 <= min <= max <= " +
                   std::to_string(cluster_nodes);
          }
          elastic_ctrl_->set_bounds(min_n, max_n);
          // A raised floor takes effect immediately instead of waiting for
          // queue pressure that idle capacity would never generate.
          for (int n = 0; n < cluster_nodes &&
                          powered_count() + provisioning_ < min_n;
               ++n) {
            if (powered_[static_cast<std::size_t>(n)] == 0 &&
                provisioning_slot_[static_cast<std::size_t>(n)] == 0) {
              begin_power_up(n);
            }
          }
          events_.record(engine_.now(), "xds_ack",
                         "elastic.nodes min=" + std::to_string(min_n) +
                             " max=" + std::to_string(max_n));
          return "";
        } catch (const std::exception& e) {
          return e.what();
        }
      });
}

SvcResult JobManager::run() {
  if (ran_) {
    throw std::logic_error("JobManager::run is one-shot");
  }
  ran_ = true;

  std::vector<double> weights;
  weights.reserve(svc_.templates.size());
  for (const JobTemplate& tpl : svc_.templates) weights.push_back(tpl.weight);
  ArrivalGenerator gen(svc_.arrivals, weights, base_.seed);

  // The whole arrival sequence is fixed up front (it is independent of
  // execution by construction), so the offered traffic is identical across
  // admission settings under one seed.
  const std::vector<Arrival> arrivals = gen.all();
  records_.reserve(arrivals.size());
  for (const Arrival& a : arrivals) {
    JobRecord rec;
    rec.id = static_cast<int>(records_.size());
    rec.template_index = a.template_index;
    const JobTemplate& tpl =
        svc_.templates[static_cast<std::size_t>(a.template_index)];
    rec.deadline_class = tpl.deadline_class;
    rec.deadline = tpl.deadline;
    rec.arrival = a.time;
    rec.job_seed = a.job_seed;
    records_.push_back(rec);
    engine_.at(a.time, [this, a, id = rec.id] { on_arrival(a, id, false); });
  }
  if (elastic_ctrl_ != nullptr) schedule_elastic_tick();
  engine_.run();

  SvcResult res;
  res.arrived = m_.arrived->value();
  res.admitted = m_.admitted->value();
  res.completed = m_.completed->value();
  res.shed = m_.shed->value();
  res.retries = m_.retries->value();
  res.slo_met = m_.slo_met->value();
  res.elapsed = engine_.now();
  res.horizon = svc_.arrivals.horizon;
  res.goodput = res.horizon > 0.0
                    ? static_cast<double>(res.slo_met) / res.horizon
                    : 0.0;
  res.shed_rate = res.arrived > 0
                      ? static_cast<double>(res.shed) /
                            static_cast<double>(res.arrived)
                      : 0.0;
  res.final_limit = admission_.limiter().limit();
  res.engine_events = engine_.events_fired();

  // Close out the billing interval of every still-powered slot. Static
  // runs bill the whole cluster for the whole run by construction.
  res.cost_node_seconds = node_seconds_;
  for (int n = 0; n < base_.cluster.node_count(); ++n) {
    if (powered_[static_cast<std::size_t>(n)] != 0 ||
        provisioning_slot_[static_cast<std::size_t>(n)] != 0) {
      res.cost_node_seconds +=
          res.elapsed - power_on_at_[static_cast<std::size_t>(n)];
    }
  }
  res.peak_nodes = peak_powered_;
  res.scale_out_events = scale_outs_;
  res.scale_in_events = scale_ins_;
  res.shed_breaker = m_.shed_breaker->value();
  for (const CircuitBreaker& br : breakers_) {
    res.breaker_trips += br.trips();
    res.breaker_open_time_s += br.open_time(res.elapsed);
  }

  std::vector<double> latencies;
  std::vector<double> waits;
  std::vector<double> services;
  int max_class = 0;
  for (const JobRecord& rec : records_) {
    max_class = std::max(max_class, rec.deadline_class);
  }
  res.classes.resize(static_cast<std::size_t>(max_class) + 1);
  for (std::size_t c = 0; c < res.classes.size(); ++c) {
    res.classes[c].deadline_class = static_cast<int>(c);
  }
  res.tenants.resize(svc_.templates.size());
  std::vector<std::vector<double>> tenant_latencies(svc_.templates.size());
  for (std::size_t t = 0; t < svc_.templates.size(); ++t) {
    res.tenants[t].template_index = static_cast<int>(t);
    res.tenants[t].name = svc_.templates[t].name;
    if (t < breakers_.size()) {
      res.tenants[t].breaker_trips = breakers_[t].trips();
      res.tenants[t].breaker_open_time_s =
          breakers_[t].open_time(res.elapsed);
    }
  }
  for (const JobRecord& rec : records_) {
    SvcClassRow& row =
        res.classes[static_cast<std::size_t>(rec.deadline_class)];
    SvcTenantRow& tenant =
        res.tenants[static_cast<std::size_t>(rec.template_index)];
    ++row.arrived;
    ++tenant.arrived;
    if (rec.outcome == JobOutcome::Completed) {
      ++row.completed;
      ++tenant.completed;
      if (rec.slo_met) {
        ++row.slo_met;
        ++tenant.slo_met;
      }
      latencies.push_back(rec.latency());
      waits.push_back(rec.queue_wait());
      services.push_back(rec.service());
      tenant_latencies[static_cast<std::size_t>(rec.template_index)]
          .push_back(rec.latency());
    } else if (rec.outcome != JobOutcome::Pending) {
      ++row.shed;
      ++tenant.shed;
      if (rec.outcome == JobOutcome::ShedBreaker) ++tenant.shed_breaker;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(waits.begin(), waits.end());
  res.latency_p50 = percentile(latencies, 0.50);
  res.latency_p99 = percentile(latencies, 0.99);
  res.latency_mean = mean_of(latencies);
  res.queue_wait_p50 = percentile(waits, 0.50);
  res.queue_wait_p99 = percentile(waits, 0.99);
  res.service_mean = mean_of(services);
  for (std::size_t t = 0; t < res.tenants.size(); ++t) {
    std::sort(tenant_latencies[t].begin(), tenant_latencies[t].end());
    res.tenants[t].latency_p99 = percentile(tenant_latencies[t], 0.99);
  }

  metrics_.gauge("svc.goodput").set(res.goodput);
  metrics_.gauge("svc.shed_rate").set(res.shed_rate);
  metrics_.gauge("svc.latency_p50").set(res.latency_p50);
  metrics_.gauge("svc.latency_p99").set(res.latency_p99);
  metrics_.gauge("svc.queue_wait_p99").set(res.queue_wait_p99);
  metrics_.gauge("svc.final_limit").set(res.final_limit);
  metrics_.gauge("svc.elapsed").set(res.elapsed);
  metrics_.gauge("svc.node_seconds").set(res.cost_node_seconds);
  metrics_.gauge("svc.peak_nodes").set(res.peak_nodes);
  metrics_.gauge("svc.breaker_open_time_s").set(res.breaker_open_time_s);
  return res;
}

void JobManager::decide(int record_id, JobOutcome outcome) {
  JobRecord& rec = records_[static_cast<std::size_t>(record_id)];
  if (rec.outcome != JobOutcome::Pending) {
    throw std::logic_error("JobManager: record decided twice");
  }
  rec.outcome = outcome;
  ++decided_;
}

void JobManager::on_arrival(const Arrival& arrival, int record_id,
                            bool is_retry) {
  if (is_retry) {
    admission_.retry_budget().settle();
  } else {
    m_.arrived->inc();
  }
  const JobRecord& rec = records_[static_cast<std::size_t>(record_id)];

  bool is_probe = false;
  if (!breakers_.empty()) {
    CircuitBreaker& br =
        breakers_[static_cast<std::size_t>(rec.template_index)];
    const std::uint64_t trips_before = br.trips();
    if (!br.allow(engine_.now())) {
      // Tenant-level door: no retry — the breaker *is* the backoff.
      decide(record_id, JobOutcome::ShedBreaker);
      m_.shed->inc();
      m_.shed_breaker->inc();
      (void)trips_before;
      return;
    }
    is_probe = br.state() == BreakerState::HalfOpen;
    if (is_probe) {
      events_.record(engine_.now(), "breaker_probe",
                     svc_.templates[static_cast<std::size_t>(
                                        rec.template_index)].name);
    }
  }

  const AdmitVerdict verdict =
      svc_.admission.enabled
          ? admission_.decide(rec.deadline_class, in_flight(), engine_.now())
          : AdmitVerdict::Admit;
  if (verdict == AdmitVerdict::Admit) {
    m_.admitted->inc();
    pending_.push_back(record_id);
    try_dispatch();
    return;
  }
  reject(arrival, record_id, verdict, is_probe);
}

void JobManager::reject(const Arrival& arrival, int record_id,
                        AdmitVerdict verdict, bool is_probe) {
  JobRecord& rec = records_[static_cast<std::size_t>(record_id)];
  if (is_probe) {
    // Admission shed the half-open probe before it could run: re-arm the
    // breaker's open timer (no backoff escalation) instead of wedging in
    // HalfOpen waiting for feedback that will never arrive. Probes do not
    // retry — the re-armed breaker is the backoff.
    breakers_[static_cast<std::size_t>(rec.template_index)].on_probe_shed(
        engine_.now());
  } else if (rec.retries < svc_.admission.retry_max &&
             admission_.retry_budget().try_start(in_flight())) {
    ++rec.retries;
    m_.retries->inc();
    const double delay = svc_.admission.retry_backoff *
                         std::pow(2.0, static_cast<double>(rec.retries - 1));
    engine_.after(delay,
                  [this, arrival, record_id] {
                    on_arrival(arrival, record_id, /*is_retry=*/true);
                  });
    return;
  }
  decide(record_id, verdict == AdmitVerdict::ShedBucket
                        ? JobOutcome::ShedBucket
                        : JobOutcome::ShedLimit);
  m_.shed->inc();
  (verdict == AdmitVerdict::ShedBucket ? m_.shed_bucket : m_.shed_limit)
      ->inc();
}

void JobManager::try_dispatch() {
  // Strict FCFS: the queue head blocks until its partition fits. Simple,
  // deterministic, and starvation-free (no backfilling that could let
  // small jobs overtake a large one forever).
  while (!pending_.empty()) {
    const int id = pending_.front();
    const JobRecord& rec = records_[static_cast<std::size_t>(id)];
    const JobTemplate& tpl =
        svc_.templates[static_cast<std::size_t>(rec.template_index)];
    if (static_cast<std::size_t>(tpl.nodes) > free_nodes_.size()) return;
    pending_.pop_front();
    launch(id);
  }
}

void JobManager::launch(int record_id) {
  JobRecord& rec = records_[static_cast<std::size_t>(record_id)];
  const JobTemplate& tpl =
      svc_.templates[static_cast<std::size_t>(rec.template_index)];

  // Lowest free indices first — keeps allocation order deterministic.
  std::vector<int> nodes(free_nodes_.begin(),
                         free_nodes_.begin() + tpl.nodes);
  free_nodes_.erase(free_nodes_.begin(), free_nodes_.begin() + tpl.nodes);

  rec.started = engine_.now();
  ++running_;

  auto job = std::make_unique<LaunchedJob>();
  job->record = record_id;
  job->nodes = nodes;

  apps::SyntheticConfig scfg;
  scfg.appranks = tpl.nodes * tpl.appranks_per_node;
  scfg.iterations = tpl.iterations;
  scfg.tasks_per_rank = tpl.tasks_per_rank;
  scfg.base_duration = tpl.base_duration;
  scfg.imbalance = tpl.imbalance;
  scfg.bytes_per_task = tpl.bytes_per_task;
  job->workload = std::make_unique<apps::SyntheticWorkload>(scfg);

  job->runtime = std::make_unique<core::ClusterRuntime>(
      job_config(tpl, nodes, rec.job_seed), &engine_);
  // Register the job before start(): the completion callback indexes
  // launched_, and start() must never observe an unregistered job even if
  // a degenerate workload were to complete without deferring.
  const std::size_t index = launched_.size();
  launched_.push_back(std::move(job));
  launched_[index]->runtime->start(*launched_[index]->workload,
                                   [this, index] { on_job_done(index); });
}

void JobManager::on_job_done(std::size_t launched_index) {
  // Reference the pointee, not the vector slot: try_dispatch() below may
  // launch and push_back, reallocating launched_.
  LaunchedJob& job = *launched_[launched_index];
  job.done = true;
  job.runtime->finalize();

  JobRecord& rec = records_[static_cast<std::size_t>(job.record)];
  rec.finished = engine_.now();
  decide(job.record, JobOutcome::Completed);
  rec.slo_met = rec.latency() <= rec.deadline;

  m_.completed->inc();
  if (rec.slo_met) m_.slo_met->inc();
  m_.latency->add(rec.latency());
  m_.queue_wait->add(rec.queue_wait());
  m_.service->add(rec.service());
  if (svc_.admission.enabled) {
    admission_.on_job_latency(rec.latency());
  }
  if (!breakers_.empty()) {
    CircuitBreaker& br =
        breakers_[static_cast<std::size_t>(rec.template_index)];
    const std::uint64_t trips_before = br.trips();
    if (rec.slo_met) {
      br.on_success(engine_.now());
    } else {
      br.on_failure(engine_.now());
    }
    if (br.trips() != trips_before) {
      events_.record(engine_.now(), "breaker_trip",
                     svc_.templates[static_cast<std::size_t>(
                                        rec.template_index)].name);
    }
  }

  free_nodes_.insert(free_nodes_.end(), job.nodes.begin(), job.nodes.end());
  std::sort(free_nodes_.begin(), free_nodes_.end());
  --running_;
  try_dispatch();
}

void JobManager::schedule_elastic_tick() {
  engine_.after(base_.elastic.eval_period, [this] { elastic_tick(); });
}

void JobManager::elastic_tick() {
  // Terminate once every record is decided: nothing can create demand any
  // more, and an immortal tick would keep the engine alive forever.
  if (!work_remaining()) return;

  const double now = engine_.now();
  const int powered = powered_count();
  const int active = powered + provisioning_;
  int queued_nodes = 0;
  for (int id : pending_) {
    queued_nodes +=
        svc_.templates[static_cast<std::size_t>(
                           records_[static_cast<std::size_t>(id)]
                               .template_index)].nodes;
  }
  const int busy_nodes = powered - static_cast<int>(free_nodes_.size());
  const double pressure =
      active > 0 ? static_cast<double>(queued_nodes + busy_nodes) /
                       static_cast<double>(active)
                 : 1.0e9;

  const elastic::ScaleDecision decision =
      elastic_ctrl_->observe(now, pressure, active);
  if (decision == elastic::ScaleDecision::Out) {
    int budget = base_.elastic.step;
    for (int n = 0; n < base_.cluster.node_count() && budget > 0 &&
                    powered_count() + provisioning_ <
                        elastic_ctrl_->max_nodes();
         ++n) {
      if (powered_[static_cast<std::size_t>(n)] == 0 &&
          provisioning_slot_[static_cast<std::size_t>(n)] == 0) {
        begin_power_up(n);
        --budget;
      }
    }
  } else if (decision == elastic::ScaleDecision::In && pending_.empty()) {
    // Only idle *free* nodes are reclaimable — a running job's partition
    // is never powered off under it, and a non-empty queue means the head
    // does not fit yet, which more capacity (not less) resolves.
    int budget = base_.elastic.step;
    while (budget > 0 && !free_nodes_.empty() &&
           powered_count() + provisioning_ > elastic_ctrl_->min_nodes()) {
      // Highest-indexed free slot: launches prefer low indices, so high
      // slots are the coldest and repowering cost stays on the fringe.
      power_down(free_nodes_.back());
      --budget;
    }
  }
  schedule_elastic_tick();
}

void JobManager::begin_power_up(int node) {
  provisioning_slot_[static_cast<std::size_t>(node)] = 1;
  ++provisioning_;
  ++scale_outs_;
  m_.scale_out->inc();
  // Billing starts at the provisioning decision — a booting node costs
  // money before it serves jobs, which is exactly the elasticity tax the
  // node-seconds metric should expose.
  power_on_at_[static_cast<std::size_t>(node)] = engine_.now();
  events_.record(engine_.now(), "scale_out",
                 "node " + std::to_string(node) + " provisioning");
  engine_.after(base_.elastic.provision_delay,
                [this, node] { power_up(node); });
}

void JobManager::power_up(int node) {
  provisioning_slot_[static_cast<std::size_t>(node)] = 0;
  --provisioning_;
  powered_[static_cast<std::size_t>(node)] = 1;
  free_nodes_.insert(
      std::upper_bound(free_nodes_.begin(), free_nodes_.end(), node), node);
  peak_powered_ = std::max(peak_powered_, powered_count());
  events_.record(engine_.now(), "node_up", "node " + std::to_string(node));
  try_dispatch();
}

void JobManager::power_down(int node) {
  const auto it =
      std::find(free_nodes_.begin(), free_nodes_.end(), node);
  if (it == free_nodes_.end()) {
    throw std::logic_error("JobManager: powering down a non-free node");
  }
  free_nodes_.erase(it);
  powered_[static_cast<std::size_t>(node)] = 0;
  node_seconds_ +=
      engine_.now() - power_on_at_[static_cast<std::size_t>(node)];
  ++scale_ins_;
  m_.scale_in->inc();
  events_.record(engine_.now(), "scale_in",
                 "node " + std::to_string(node) + " powered off");
}

core::RuntimeConfig JobManager::job_config(const JobTemplate& tpl,
                                           const std::vector<int>& nodes,
                                           std::uint64_t job_seed) const {
  core::RuntimeConfig cfg = base_;
  cfg.cluster.nodes.clear();
  for (int n : nodes) {
    cfg.cluster.nodes.push_back(
        base_.cluster.nodes[static_cast<std::size_t>(n)]);
  }
  if (svc_.fabric_pressure > 0.0 && running_ > 1) {
    // Static cross-tenant derating: the partition's share of the backbone
    // shrinks with the number of co-running neighbours at launch.
    cfg.cluster.link.bandwidth /=
        1.0 + svc_.fabric_pressure * static_cast<double>(running_ - 1);
  }
  cfg.appranks_per_node = tpl.appranks_per_node;
  cfg.degree = std::min(tpl.degree, tpl.nodes);
  cfg.seed = job_seed;
  cfg.record_traces = false;
  cfg.svc = SvcConfig{};  // jobs are batch instances, never nested services
  cfg.elastic = elastic::ElasticConfig{};  // pool elasticity is ours alone
  return cfg;
}

}  // namespace tlb::svc
