#include "svc/job_manager.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "apps/synthetic.hpp"

namespace tlb::svc {

namespace {

// Shared latency-style bucket edges (seconds) for the SLO histograms.
std::vector<double> latency_bounds() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0};
}

/// Exact order-statistics quantile over a sorted sample (linear
/// interpolation between adjacent ranks, the common "type 7" definition).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace

JobManager::JobManager(core::RuntimeConfig base)
    : base_(std::move(base)), svc_(base_.svc), admission_(svc_.admission) {
  if (!svc_.enabled) {
    throw std::invalid_argument("JobManager: RuntimeConfig::svc is disabled");
  }
  if (svc_.templates.empty()) {
    throw std::invalid_argument("JobManager: no job templates configured");
  }
  const int cluster_nodes = base_.cluster.node_count();
  if (cluster_nodes < 1) {
    throw std::invalid_argument("JobManager: empty cluster");
  }
  for (const JobTemplate& tpl : svc_.templates) {
    if (tpl.nodes < 1 || tpl.nodes > cluster_nodes) {
      throw std::invalid_argument(
          "JobManager: template \"" + tpl.name + "\" wants " +
          std::to_string(tpl.nodes) + " nodes on a " +
          std::to_string(cluster_nodes) + "-node cluster");
    }
    if (tpl.appranks_per_node < 1 || tpl.degree < 1 || tpl.iterations < 1 ||
        tpl.tasks_per_rank < 1 || tpl.base_duration <= 0.0 ||
        tpl.imbalance < 1.0 || tpl.deadline <= 0.0 || tpl.deadline_class < 0) {
      throw std::invalid_argument("JobManager: template \"" + tpl.name +
                                  "\" has out-of-range parameters");
    }
  }
  if (svc_.fabric_pressure < 0.0) {
    throw std::invalid_argument("JobManager: negative fabric_pressure");
  }

  free_nodes_.resize(static_cast<std::size_t>(cluster_nodes));
  for (int n = 0; n < cluster_nodes; ++n) {
    free_nodes_[static_cast<std::size_t>(n)] = n;
  }

  m_.arrived = &metrics_.counter("svc.jobs_arrived");
  m_.admitted = &metrics_.counter("svc.jobs_admitted");
  m_.completed = &metrics_.counter("svc.jobs_completed");
  m_.shed = &metrics_.counter("svc.jobs_shed");
  m_.shed_bucket = &metrics_.counter("svc.shed_bucket");
  m_.shed_limit = &metrics_.counter("svc.shed_limit");
  m_.retries = &metrics_.counter("svc.retries");
  m_.slo_met = &metrics_.counter("svc.slo_met");
  m_.latency = &metrics_.histogram("svc.latency", latency_bounds());
  m_.queue_wait = &metrics_.histogram("svc.queue_wait", latency_bounds());
  m_.service = &metrics_.histogram("svc.service", latency_bounds());
}

SvcResult JobManager::run() {
  if (ran_) {
    throw std::logic_error("JobManager::run is one-shot");
  }
  ran_ = true;

  std::vector<double> weights;
  weights.reserve(svc_.templates.size());
  for (const JobTemplate& tpl : svc_.templates) weights.push_back(tpl.weight);
  ArrivalGenerator gen(svc_.arrivals, weights, base_.seed);

  // The whole arrival sequence is fixed up front (it is independent of
  // execution by construction), so the offered traffic is identical across
  // admission settings under one seed.
  const std::vector<Arrival> arrivals = gen.all();
  records_.reserve(arrivals.size());
  for (const Arrival& a : arrivals) {
    JobRecord rec;
    rec.id = static_cast<int>(records_.size());
    rec.template_index = a.template_index;
    const JobTemplate& tpl =
        svc_.templates[static_cast<std::size_t>(a.template_index)];
    rec.deadline_class = tpl.deadline_class;
    rec.deadline = tpl.deadline;
    rec.arrival = a.time;
    rec.job_seed = a.job_seed;
    records_.push_back(rec);
    engine_.at(a.time, [this, a, id = rec.id] { on_arrival(a, id, false); });
  }
  engine_.run();

  SvcResult res;
  res.arrived = m_.arrived->value();
  res.admitted = m_.admitted->value();
  res.completed = m_.completed->value();
  res.shed = m_.shed->value();
  res.retries = m_.retries->value();
  res.slo_met = m_.slo_met->value();
  res.elapsed = engine_.now();
  res.horizon = svc_.arrivals.horizon;
  res.goodput = res.horizon > 0.0
                    ? static_cast<double>(res.slo_met) / res.horizon
                    : 0.0;
  res.shed_rate = res.arrived > 0
                      ? static_cast<double>(res.shed) /
                            static_cast<double>(res.arrived)
                      : 0.0;
  res.final_limit = admission_.limiter().limit();
  res.engine_events = engine_.events_fired();

  std::vector<double> latencies;
  std::vector<double> waits;
  std::vector<double> services;
  int max_class = 0;
  for (const JobRecord& rec : records_) {
    max_class = std::max(max_class, rec.deadline_class);
  }
  res.classes.resize(static_cast<std::size_t>(max_class) + 1);
  for (std::size_t c = 0; c < res.classes.size(); ++c) {
    res.classes[c].deadline_class = static_cast<int>(c);
  }
  for (const JobRecord& rec : records_) {
    SvcClassRow& row =
        res.classes[static_cast<std::size_t>(rec.deadline_class)];
    ++row.arrived;
    if (rec.outcome == JobOutcome::Completed) {
      ++row.completed;
      if (rec.slo_met) ++row.slo_met;
      latencies.push_back(rec.latency());
      waits.push_back(rec.queue_wait());
      services.push_back(rec.service());
    } else if (rec.outcome != JobOutcome::Pending) {
      ++row.shed;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(waits.begin(), waits.end());
  res.latency_p50 = percentile(latencies, 0.50);
  res.latency_p99 = percentile(latencies, 0.99);
  res.latency_mean = mean_of(latencies);
  res.queue_wait_p50 = percentile(waits, 0.50);
  res.queue_wait_p99 = percentile(waits, 0.99);
  res.service_mean = mean_of(services);

  metrics_.gauge("svc.goodput").set(res.goodput);
  metrics_.gauge("svc.shed_rate").set(res.shed_rate);
  metrics_.gauge("svc.latency_p50").set(res.latency_p50);
  metrics_.gauge("svc.latency_p99").set(res.latency_p99);
  metrics_.gauge("svc.queue_wait_p99").set(res.queue_wait_p99);
  metrics_.gauge("svc.final_limit").set(res.final_limit);
  metrics_.gauge("svc.elapsed").set(res.elapsed);
  return res;
}

void JobManager::on_arrival(const Arrival& arrival, int record_id,
                            bool is_retry) {
  if (is_retry) {
    admission_.retry_budget().settle();
  } else {
    m_.arrived->inc();
  }
  const JobRecord& rec = records_[static_cast<std::size_t>(record_id)];
  const AdmitVerdict verdict =
      svc_.admission.enabled
          ? admission_.decide(rec.deadline_class, in_flight(), engine_.now())
          : AdmitVerdict::Admit;
  if (verdict == AdmitVerdict::Admit) {
    m_.admitted->inc();
    pending_.push_back(record_id);
    try_dispatch();
    return;
  }
  reject(arrival, record_id, verdict);
}

void JobManager::reject(const Arrival& arrival, int record_id,
                        AdmitVerdict verdict) {
  JobRecord& rec = records_[static_cast<std::size_t>(record_id)];
  const AdmissionConfig& adm = svc_.admission;
  if (rec.retries < adm.retry_max &&
      admission_.retry_budget().try_start(in_flight())) {
    ++rec.retries;
    m_.retries->inc();
    const double delay =
        adm.retry_backoff * std::pow(2.0, static_cast<double>(rec.retries - 1));
    engine_.after(delay,
                  [this, arrival, record_id] {
                    on_arrival(arrival, record_id, /*is_retry=*/true);
                  });
    return;
  }
  rec.outcome = verdict == AdmitVerdict::ShedBucket ? JobOutcome::ShedBucket
                                                    : JobOutcome::ShedLimit;
  m_.shed->inc();
  (verdict == AdmitVerdict::ShedBucket ? m_.shed_bucket : m_.shed_limit)
      ->inc();
}

void JobManager::try_dispatch() {
  // Strict FCFS: the queue head blocks until its partition fits. Simple,
  // deterministic, and starvation-free (no backfilling that could let
  // small jobs overtake a large one forever).
  while (!pending_.empty()) {
    const int id = pending_.front();
    const JobRecord& rec = records_[static_cast<std::size_t>(id)];
    const JobTemplate& tpl =
        svc_.templates[static_cast<std::size_t>(rec.template_index)];
    if (static_cast<std::size_t>(tpl.nodes) > free_nodes_.size()) return;
    pending_.pop_front();
    launch(id);
  }
}

void JobManager::launch(int record_id) {
  JobRecord& rec = records_[static_cast<std::size_t>(record_id)];
  const JobTemplate& tpl =
      svc_.templates[static_cast<std::size_t>(rec.template_index)];

  // Lowest free indices first — keeps allocation order deterministic.
  std::vector<int> nodes(free_nodes_.begin(),
                         free_nodes_.begin() + tpl.nodes);
  free_nodes_.erase(free_nodes_.begin(), free_nodes_.begin() + tpl.nodes);

  rec.started = engine_.now();
  ++running_;

  auto job = std::make_unique<LaunchedJob>();
  job->record = record_id;
  job->nodes = nodes;

  apps::SyntheticConfig scfg;
  scfg.appranks = tpl.nodes * tpl.appranks_per_node;
  scfg.iterations = tpl.iterations;
  scfg.tasks_per_rank = tpl.tasks_per_rank;
  scfg.base_duration = tpl.base_duration;
  scfg.imbalance = tpl.imbalance;
  scfg.bytes_per_task = tpl.bytes_per_task;
  job->workload = std::make_unique<apps::SyntheticWorkload>(scfg);

  job->runtime = std::make_unique<core::ClusterRuntime>(
      job_config(tpl, nodes, rec.job_seed), &engine_);
  const std::size_t index = launched_.size();
  job->runtime->start(*job->workload, [this, index] { on_job_done(index); });
  launched_.push_back(std::move(job));
}

void JobManager::on_job_done(std::size_t launched_index) {
  LaunchedJob& job = *launched_[launched_index];
  job.done = true;
  job.runtime->finalize();

  JobRecord& rec = records_[static_cast<std::size_t>(job.record)];
  rec.finished = engine_.now();
  rec.outcome = JobOutcome::Completed;
  rec.slo_met = rec.latency() <= rec.deadline;

  m_.completed->inc();
  if (rec.slo_met) m_.slo_met->inc();
  m_.latency->add(rec.latency());
  m_.queue_wait->add(rec.queue_wait());
  m_.service->add(rec.service());
  if (svc_.admission.enabled) {
    admission_.on_job_latency(rec.latency());
  }

  free_nodes_.insert(free_nodes_.end(), job.nodes.begin(), job.nodes.end());
  std::sort(free_nodes_.begin(), free_nodes_.end());
  --running_;
  try_dispatch();
}

core::RuntimeConfig JobManager::job_config(const JobTemplate& tpl,
                                           const std::vector<int>& nodes,
                                           std::uint64_t job_seed) const {
  core::RuntimeConfig cfg = base_;
  cfg.cluster.nodes.clear();
  for (int n : nodes) {
    cfg.cluster.nodes.push_back(
        base_.cluster.nodes[static_cast<std::size_t>(n)]);
  }
  if (svc_.fabric_pressure > 0.0 && running_ > 1) {
    // Static cross-tenant derating: the partition's share of the backbone
    // shrinks with the number of co-running neighbours at launch.
    cfg.cluster.link.bandwidth /=
        1.0 + svc_.fabric_pressure * static_cast<double>(running_ - 1);
  }
  cfg.appranks_per_node = tpl.appranks_per_node;
  cfg.degree = std::min(tpl.degree, tpl.nodes);
  cfg.seed = job_seed;
  cfg.record_traces = false;
  cfg.svc = SvcConfig{};  // jobs are batch instances, never nested services
  return cfg;
}

}  // namespace tlb::svc
