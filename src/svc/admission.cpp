#include "svc/admission.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tlb::svc {

// --- TokenBucket -------------------------------------------------------------

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate), burst_(burst), tokens_(burst) {
  assert(burst >= 1.0 || rate <= 0.0);
}

void TokenBucket::refill(double now) {
  if (now > last_) {
    tokens_ = std::min(burst_, tokens_ + rate_ * (now - last_));
    last_ = now;
  }
}

bool TokenBucket::try_take(double now) {
  if (rate_ <= 0.0) return true;
  refill(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::available(double now) const {
  if (rate_ <= 0.0) return burst_;
  TokenBucket copy = *this;
  copy.refill(now);
  return copy.tokens_;
}

// --- GradientLimiter ---------------------------------------------------------

GradientLimiter::GradientLimiter(const AdmissionConfig& config)
    : config_(config), limit_(config.initial_limit) {
  assert(config.min_limit >= 1);
  assert(config.max_limit >= config.min_limit);
  assert(config.update_window >= 1);
  limit_ = std::clamp(limit_, config_.min_limit, config_.max_limit);
}

void GradientLimiter::record(double latency) {
  if (latency < 0.0) return;
  min_latency_ =
      min_latency_ < 0.0 ? latency : std::min(min_latency_, latency);
  window_.push_back(latency);
  if (static_cast<int>(window_.size()) < config_.update_window) return;

  // Window median as the sample latency (deterministic: nth_element on a
  // copy, ties resolved by value).
  std::vector<double> sorted = window_;
  const std::size_t mid = sorted.size() / 2;
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(mid),
                   sorted.end());
  const double sample = sorted[mid];
  window_.clear();
  ++updates_;

  if (sample <= 0.0 || min_latency_ <= 0.0) return;
  const double gradient = std::clamp(
      config_.tolerance * min_latency_ / sample, 0.5, 2.0);
  double next = static_cast<double>(limit_) * gradient;
  if (gradient >= 1.0) next += std::sqrt(static_cast<double>(limit_));
  limit_ = std::clamp(static_cast<int>(std::lround(next)),
                      config_.min_limit, config_.max_limit);
  // Slow upward drift of the floor so a durably slower service re-anchors
  // instead of shrinking forever against an unreachable best case.
  min_latency_ *= 1.05;
}

// --- RetryBudget -------------------------------------------------------------

RetryBudget::RetryBudget(double ratio, int base)
    : ratio_(ratio), base_(base) {}

bool RetryBudget::try_start(int in_flight) {
  const double budget = ratio_ * static_cast<double>(in_flight) +
                        static_cast<double>(base_);
  if (static_cast<double>(active_) >= budget) {
    ++exhausted_;
    return false;
  }
  ++active_;
  return true;
}

void RetryBudget::settle() {
  assert(active_ > 0);
  --active_;
}

// --- AdmissionController -----------------------------------------------------

const char* to_string(AdmitVerdict v) {
  switch (v) {
    case AdmitVerdict::Admit: return "admit";
    case AdmitVerdict::ShedBucket: return "shed-bucket";
    case AdmitVerdict::ShedLimit: return "shed-limit";
  }
  return "?";
}

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config),
      bucket_(config.bucket_rate, config.bucket_burst),
      limiter_(config),
      retry_budget_(config.retry_ratio, config.retry_base) {}

int AdmissionController::class_cap(int deadline_class) const {
  double fraction = 1.0;
  if (!config_.class_fractions.empty()) {
    const std::size_t i = std::min(
        static_cast<std::size_t>(std::max(deadline_class, 0)),
        config_.class_fractions.size() - 1);
    fraction = config_.class_fractions[i];
  }
  const int cap =
      static_cast<int>(std::floor(fraction * limiter_.limit()));
  // Class 0 (most latency-sensitive) always keeps at least one slot.
  return deadline_class <= 0 ? std::max(cap, 1) : std::max(cap, 0);
}

AdmitVerdict AdmissionController::decide(int deadline_class, int in_flight,
                                         double now) {
  if (!bucket_.try_take(now)) return AdmitVerdict::ShedBucket;
  if (in_flight >= class_cap(deadline_class)) return AdmitVerdict::ShedLimit;
  return AdmitVerdict::Admit;
}

}  // namespace tlb::svc
