#include "svc/breaker.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tlb::svc {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(const BreakerConfig& config)
    : config_(config) {
  if (config_.failure_threshold < 1) {
    throw std::invalid_argument(
        "CircuitBreaker: failure_threshold must be >= 1");
  }
  if (config_.open_duration <= 0.0) {
    throw std::invalid_argument("CircuitBreaker: open_duration must be > 0");
  }
  if (config_.backoff_factor < 1.0) {
    throw std::invalid_argument(
        "CircuitBreaker: backoff_factor must be >= 1");
  }
  if (config_.max_open_duration < config_.open_duration) {
    throw std::invalid_argument(
        "CircuitBreaker: max_open_duration must be >= open_duration");
  }
  if (config_.half_open_successes < 1) {
    throw std::invalid_argument(
        "CircuitBreaker: half_open_successes must be >= 1");
  }
}

double CircuitBreaker::current_open_duration() const {
  const double scaled =
      config_.open_duration *
      std::pow(config_.backoff_factor,
               static_cast<double>(std::max(0, consecutive_trips_ - 1)));
  return std::min(scaled, config_.max_open_duration);
}

void CircuitBreaker::trip(double now) {
  if (state_ == BreakerState::Closed) open_since_ = now;
  ++consecutive_trips_;
  ++trips_;
  state_ = BreakerState::Open;
  open_until_ = now + current_open_duration();
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::close(double now) {
  open_accum_ += now - open_since_;
  state_ = BreakerState::Closed;
  consecutive_failures_ = 0;
  consecutive_trips_ = 0;
  probe_successes_ = 0;
  probe_in_flight_ = false;
}

bool CircuitBreaker::allow(double now) {
  switch (state_) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open:
      if (now < open_until_) {
        ++shed_;
        return false;
      }
      state_ = BreakerState::HalfOpen;
      probe_in_flight_ = true;
      return true;
    case BreakerState::HalfOpen:
      if (probe_in_flight_) {
        ++shed_;
        return false;
      }
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::on_success(double now) {
  switch (state_) {
    case BreakerState::Closed:
      consecutive_failures_ = 0;
      return;
    case BreakerState::Open:
      // A job admitted before the trip finished fine while we are open —
      // the probe cycle decides reopening, so this is ignored.
      return;
    case BreakerState::HalfOpen:
      probe_in_flight_ = false;
      if (++probe_successes_ >= config_.half_open_successes) close(now);
      return;
  }
}

void CircuitBreaker::on_failure(double now) {
  switch (state_) {
    case BreakerState::Closed:
      if (++consecutive_failures_ >= config_.failure_threshold) trip(now);
      return;
    case BreakerState::Open:
      // Straggler from before the trip; the open timer already runs.
      return;
    case BreakerState::HalfOpen:
      // The probe missed its SLO: re-trip with escalated backoff.
      trip(now);
      return;
  }
}

void CircuitBreaker::on_probe_shed(double now) {
  if (state_ != BreakerState::HalfOpen) return;
  // Re-arm the open timer without escalating: admission shedding the probe
  // is backpressure, not evidence about this tenant's jobs.
  state_ = BreakerState::Open;
  probe_in_flight_ = false;
  probe_successes_ = 0;
  open_until_ = now + current_open_duration();
}

double CircuitBreaker::open_time(double now) const {
  return open_accum_ +
         (state_ != BreakerState::Closed ? now - open_since_ : 0.0);
}

}  // namespace tlb::svc
