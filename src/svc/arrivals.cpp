#include "svc/arrivals.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tlb::svc {

namespace {
// Child-stream tags under the subsystem seed (see core/runtime.cpp for
// the core tags; these only need to be distinct from each other).
constexpr std::uint64_t kSeedArrivals = 0x5E21;
constexpr std::uint64_t kSeedJobs = 0x5E22;
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

ArrivalGenerator::ArrivalGenerator(ArrivalConfig config,
                                   std::vector<double> template_weights,
                                   std::uint64_t seed)
    : config_(config),
      rng_(sim::Rng(seed).fork(kSeedArrivals)),
      seed_rng_(sim::Rng(seed).fork(kSeedJobs)) {
  if (template_weights.empty()) {
    throw std::invalid_argument("ArrivalGenerator: no job templates");
  }
  if (config_.rate <= 0.0) {
    throw std::invalid_argument("ArrivalGenerator: rate must be positive");
  }
  if (config_.diurnal_amplitude < 0.0 || config_.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument(
        "ArrivalGenerator: diurnal_amplitude must be in [0, 1)");
  }
  double total = 0.0;
  for (double w : template_weights) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "ArrivalGenerator: negative template weight");
    }
    total += w;
    cumulative_weight_.push_back(total);
  }
  if (total <= 0.0) {
    throw std::invalid_argument(
        "ArrivalGenerator: template weights sum to zero");
  }
  if (config_.shape == ArrivalShape::Bursty) {
    if (config_.burst_fraction <= 0.0 || config_.burst_fraction >= 1.0) {
      throw std::invalid_argument(
          "ArrivalGenerator: burst_fraction must be in (0, 1)");
    }
    // Start in the normal state; first toggle after one normal dwell.
    switch_at_ = rng_.exponential(
        config_.burst_dwell * (1.0 - config_.burst_fraction) /
        config_.burst_fraction);
  }
}

double ArrivalGenerator::burst_rate_high() const {
  return config_.rate * config_.burst_factor;
}

double ArrivalGenerator::burst_rate_low() const {
  // Chosen so fraction * high + (1 - fraction) * low == rate; clamped when
  // burst_factor * burst_fraction >= 1 would push it negative (the mean
  // then exceeds the nominal rate — the knobs over-ask, not a crash).
  const double f = config_.burst_fraction;
  const double low =
      config_.rate * (1.0 - f * config_.burst_factor) / (1.0 - f);
  return low > 1e-3 * config_.rate ? low : 1e-3 * config_.rate;
}

void ArrivalGenerator::advance() {
  switch (config_.shape) {
    case ArrivalShape::Poisson:
      now_ += rng_.exponential(1.0 / config_.rate);
      return;
    case ArrivalShape::Bursty: {
      // Step the two-state MMPP: draw a gap at the current state's rate;
      // a gap crossing the next toggle instead moves time to the toggle,
      // flips the state, and redraws (memorylessness makes this exact).
      for (;;) {
        const double rate = in_burst_ ? burst_rate_high() : burst_rate_low();
        const double gap = rng_.exponential(1.0 / rate);
        if (now_ + gap <= switch_at_) {
          now_ += gap;
          return;
        }
        now_ = switch_at_;
        in_burst_ = !in_burst_;
        const double dwell =
            in_burst_ ? config_.burst_dwell
                      : config_.burst_dwell * (1.0 - config_.burst_fraction) /
                            config_.burst_fraction;
        switch_at_ = now_ + rng_.exponential(dwell);
      }
    }
    case ArrivalShape::Diurnal: {
      // Thinning: candidates at the peak rate, accepted with probability
      // lambda(t) / lambda_max.
      const double lambda_max =
          config_.rate * (1.0 + config_.diurnal_amplitude);
      for (;;) {
        now_ += rng_.exponential(1.0 / lambda_max);
        const double lambda =
            config_.rate *
            (1.0 + config_.diurnal_amplitude *
                       std::sin(kTwoPi * now_ / config_.diurnal_period));
        if (rng_.uniform(0.0, 1.0) * lambda_max <= lambda) return;
      }
    }
  }
}

std::optional<Arrival> ArrivalGenerator::next() {
  if (config_.max_arrivals > 0 && emitted_ >= config_.max_arrivals) {
    return std::nullopt;
  }
  advance();
  if (now_ > config_.horizon) return std::nullopt;

  Arrival a;
  a.time = now_;
  const double pick = rng_.uniform(0.0, cumulative_weight_.back());
  a.template_index = 0;
  while (a.template_index + 1 < static_cast<int>(cumulative_weight_.size()) &&
         pick >= cumulative_weight_[static_cast<std::size_t>(
                     a.template_index)]) {
    ++a.template_index;
  }
  a.job_seed = seed_rng_.next_u64();
  ++emitted_;
  return a;
}

std::vector<Arrival> ArrivalGenerator::all() {
  std::vector<Arrival> out;
  while (auto a = next()) out.push_back(*a);
  return out;
}

}  // namespace tlb::svc
