#include "svc/arrivals.hpp"

#include <cassert>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace tlb::svc {

namespace {
// Child-stream tags under the subsystem seed (see core/runtime.cpp for
// the core tags; these only need to be distinct from each other).
constexpr std::uint64_t kSeedArrivals = 0x5E21;
constexpr std::uint64_t kSeedJobs = 0x5E22;
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

ArrivalGenerator::ArrivalGenerator(ArrivalConfig config,
                                   std::vector<double> template_weights,
                                   std::uint64_t seed)
    : config_(config),
      rng_(sim::Rng(seed).fork(kSeedArrivals)),
      seed_rng_(sim::Rng(seed).fork(kSeedJobs)) {
  if (template_weights.empty()) {
    throw std::invalid_argument("ArrivalGenerator: no job templates");
  }
  if (config_.shape != ArrivalShape::Trace && config_.rate <= 0.0) {
    throw std::invalid_argument("ArrivalGenerator: rate must be positive");
  }
  if (config_.shape == ArrivalShape::Trace) {
    double prev = 0.0;
    for (std::size_t i = 0; i < config_.trace.size(); ++i) {
      const Arrival& a = config_.trace[i];
      if (a.time < prev || !std::isfinite(a.time)) {
        throw std::invalid_argument(
            "ArrivalGenerator: trace times must be finite and monotone "
            "non-decreasing (entry " + std::to_string(i) + ")");
      }
      if (a.template_index < 0 ||
          a.template_index >= static_cast<int>(template_weights.size())) {
        throw std::invalid_argument(
            "ArrivalGenerator: trace entry " + std::to_string(i) +
            " references template " + std::to_string(a.template_index) +
            " of " + std::to_string(template_weights.size()));
      }
      prev = a.time;
    }
  }
  if (config_.diurnal_amplitude < 0.0 || config_.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument(
        "ArrivalGenerator: diurnal_amplitude must be in [0, 1)");
  }
  double total = 0.0;
  for (double w : template_weights) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "ArrivalGenerator: negative template weight");
    }
    total += w;
    cumulative_weight_.push_back(total);
  }
  if (total <= 0.0) {
    throw std::invalid_argument(
        "ArrivalGenerator: template weights sum to zero");
  }
  if (config_.shape == ArrivalShape::Bursty) {
    if (config_.burst_fraction <= 0.0 || config_.burst_fraction >= 1.0) {
      throw std::invalid_argument(
          "ArrivalGenerator: burst_fraction must be in (0, 1)");
    }
    // Start in the normal state; first toggle after one normal dwell.
    switch_at_ = rng_.exponential(
        config_.burst_dwell * (1.0 - config_.burst_fraction) /
        config_.burst_fraction);
  }
}

double ArrivalGenerator::burst_rate_high() const {
  return config_.rate * config_.burst_factor;
}

double ArrivalGenerator::burst_rate_low() const {
  // Chosen so fraction * high + (1 - fraction) * low == rate; clamped when
  // burst_factor * burst_fraction >= 1 would push it negative (the mean
  // then exceeds the nominal rate — the knobs over-ask, not a crash).
  const double f = config_.burst_fraction;
  const double low =
      config_.rate * (1.0 - f * config_.burst_factor) / (1.0 - f);
  return low > 1e-3 * config_.rate ? low : 1e-3 * config_.rate;
}

void ArrivalGenerator::advance() {
  switch (config_.shape) {
    case ArrivalShape::Trace:
      assert(false && "Trace replay bypasses advance()");
      return;
    case ArrivalShape::Poisson:
      now_ += rng_.exponential(1.0 / config_.rate);
      return;
    case ArrivalShape::Bursty: {
      // Step the two-state MMPP: draw a gap at the current state's rate;
      // a gap crossing the next toggle instead moves time to the toggle,
      // flips the state, and redraws (memorylessness makes this exact).
      for (;;) {
        const double rate = in_burst_ ? burst_rate_high() : burst_rate_low();
        const double gap = rng_.exponential(1.0 / rate);
        if (now_ + gap <= switch_at_) {
          now_ += gap;
          return;
        }
        now_ = switch_at_;
        in_burst_ = !in_burst_;
        const double dwell =
            in_burst_ ? config_.burst_dwell
                      : config_.burst_dwell * (1.0 - config_.burst_fraction) /
                            config_.burst_fraction;
        switch_at_ = now_ + rng_.exponential(dwell);
      }
    }
    case ArrivalShape::Diurnal: {
      // Thinning: candidates at the peak rate, accepted with probability
      // lambda(t) / lambda_max.
      const double lambda_max =
          config_.rate * (1.0 + config_.diurnal_amplitude);
      for (;;) {
        now_ += rng_.exponential(1.0 / lambda_max);
        const double lambda =
            config_.rate *
            (1.0 + config_.diurnal_amplitude *
                       std::sin(kTwoPi * now_ / config_.diurnal_period));
        if (rng_.uniform(0.0, 1.0) * lambda_max <= lambda) return;
      }
    }
  }
}

std::optional<Arrival> ArrivalGenerator::next() {
  if (config_.max_arrivals > 0 && emitted_ >= config_.max_arrivals) {
    return std::nullopt;
  }
  if (config_.shape == ArrivalShape::Trace) {
    // Verbatim replay: no RNG draws, so the emitted sequence is the trace
    // itself (subject to the same horizon / max_arrivals caps).
    if (trace_pos_ >= config_.trace.size()) return std::nullopt;
    const Arrival a = config_.trace[trace_pos_];
    if (a.time > config_.horizon) return std::nullopt;
    ++trace_pos_;
    now_ = a.time;
    ++emitted_;
    return a;
  }
  advance();
  if (now_ > config_.horizon) return std::nullopt;

  Arrival a;
  a.time = now_;
  const double pick = rng_.uniform(0.0, cumulative_weight_.back());
  a.template_index = 0;
  while (a.template_index + 1 < static_cast<int>(cumulative_weight_.size()) &&
         pick >= cumulative_weight_[static_cast<std::size_t>(
                     a.template_index)]) {
    ++a.template_index;
  }
  a.job_seed = seed_rng_.next_u64();
  ++emitted_;
  return a;
}

std::vector<Arrival> ArrivalGenerator::all() {
  std::vector<Arrival> out;
  while (auto a = next()) out.push_back(*a);
  return out;
}

std::string dump_arrivals_jsonl(const std::vector<Arrival>& arrivals) {
  std::string out;
  char line[128];
  for (const Arrival& a : arrivals) {
    // %.17g prints the shortest-or-exact 17-significant-digit form, which
    // strtod maps back to the identical bit pattern (round-trip guarantee
    // for IEEE-754 binary64).
    std::snprintf(line, sizeof(line),
                  "{\"time\":%.17g,\"template\":%d,\"seed\":%" PRIu64 "}\n",
                  a.time, a.template_index,
                  static_cast<std::uint64_t>(a.job_seed));
    out += line;
  }
  return out;
}

namespace {

/// Consumes the literal `expect` at `p`, throwing with the line number
/// otherwise. Returns the advanced pointer.
const char* expect_literal(const char* p, const char* expect,
                           std::size_t line_no) {
  for (const char* e = expect; *e != '\0'; ++e, ++p) {
    if (*p != *e) {
      throw std::invalid_argument(
          "parse_arrivals_jsonl: malformed line " + std::to_string(line_no) +
          " (expected \"" + expect + "\")");
    }
  }
  return p;
}

}  // namespace

std::vector<Arrival> parse_arrivals_jsonl(const std::string& text) {
  std::vector<Arrival> out;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    const char* p = expect_literal(line.c_str(), "{\"time\":", line_no);
    char* end = nullptr;
    errno = 0;
    Arrival a;
    a.time = std::strtod(p, &end);
    if (end == p || errno == ERANGE) {
      throw std::invalid_argument(
          "parse_arrivals_jsonl: bad time on line " + std::to_string(line_no));
    }
    p = expect_literal(end, ",\"template\":", line_no);
    const long tpl = std::strtol(p, &end, 10);
    if (end == p || tpl < 0 || tpl > 1'000'000) {
      throw std::invalid_argument(
          "parse_arrivals_jsonl: bad template on line " +
          std::to_string(line_no));
    }
    a.template_index = static_cast<int>(tpl);
    p = expect_literal(end, ",\"seed\":", line_no);
    errno = 0;
    a.job_seed = std::strtoull(p, &end, 10);
    if (end == p || errno == ERANGE) {
      throw std::invalid_argument(
          "parse_arrivals_jsonl: bad seed on line " + std::to_string(line_no));
    }
    p = expect_literal(end, "}", line_no);
    if (*p != '\0') {
      throw std::invalid_argument(
          "parse_arrivals_jsonl: trailing characters on line " +
          std::to_string(line_no));
    }
    out.push_back(a);
  }
  return out;
}

}  // namespace tlb::svc
