// Per-tenant circuit breaker (tlb::svc).
//
// The classic three-state breaker (Closed / Open / HalfOpen) applied to
// tenant SLO outcomes instead of RPC errors: `failure_threshold`
// consecutive SLO misses trip the tenant open, its arrivals are then shed
// at the door, and after an exponentially-backed-off open interval a
// single probe job is admitted. SLO-met probes close the breaker; a
// missed probe re-trips it with a longer interval. This bounds the damage
// a misbehaving tenant (oversized jobs, impossible deadlines) can do to
// the shared FCFS queue — its work stops occupying nodes other tenants
// need, so their p99 stays bounded.
//
// Deterministic and clockless like the admission primitives: callers pass
// the current simulated time, nothing here draws randomness or schedules
// events.
#pragma once

#include <cstdint>

#include "svc/config.hpp"

namespace tlb::svc {

enum class BreakerState { Closed, Open, HalfOpen };

[[nodiscard]] const char* to_string(BreakerState state);

class CircuitBreaker {
 public:
  /// Validates the config (threshold/successes >= 1, positive durations,
  /// backoff_factor >= 1) — throws std::invalid_argument otherwise.
  explicit CircuitBreaker(const BreakerConfig& config);

  /// Gate for one arrival at `now`. Closed: always true. Open: false
  /// until the open interval elapses, at which point the breaker moves to
  /// HalfOpen and admits this arrival as the probe. HalfOpen: false while
  /// the probe is outstanding (exactly one probe in flight).
  [[nodiscard]] bool allow(double now);

  /// SLO-met completion of one of this tenant's jobs.
  void on_success(double now);
  /// SLO miss (or a job shed after admission, which also signals the
  /// tenant is not getting useful work through).
  void on_failure(double now);
  /// The half-open probe was shed downstream (admission) before it could
  /// run: return to Open for one more interval at the *current* backoff —
  /// being rejected by overload control is not the tenant's failure, so
  /// the backoff does not escalate, but the breaker must not stay wedged
  /// in HalfOpen waiting for feedback that will never come.
  void on_probe_shed(double now);

  [[nodiscard]] BreakerState state() const { return state_; }
  /// Times the breaker transitioned Closed/HalfOpen -> Open.
  [[nodiscard]] std::uint64_t trips() const { return trips_; }
  /// Arrivals rejected by allow().
  [[nodiscard]] std::uint64_t shed() const { return shed_; }
  /// Cumulative seconds spent not Closed (Open + HalfOpen) up to `now`.
  [[nodiscard]] double open_time(double now) const;

 private:
  [[nodiscard]] double current_open_duration() const;
  void trip(double now);
  void close(double now);

  BreakerConfig config_;
  BreakerState state_ = BreakerState::Closed;
  int consecutive_failures_ = 0;
  int consecutive_trips_ = 0;  ///< backoff exponent; resets on close
  int probe_successes_ = 0;
  bool probe_in_flight_ = false;
  double open_until_ = 0.0;
  double open_since_ = 0.0;   ///< start of the current non-Closed stretch
  double open_accum_ = 0.0;   ///< closed-out non-Closed seconds
  std::uint64_t trips_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace tlb::svc
