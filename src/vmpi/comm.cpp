#include "vmpi/comm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "net/fabric.hpp"

namespace tlb::vmpi {

namespace {
int ceil_log2(int p) {
  int r = 0;
  int v = 1;
  while (v < p) {
    v <<= 1;
    ++r;
  }
  return r;
}
}  // namespace

Communicator::Communicator(sim::Engine& engine, sim::LinkSpec link,
                           std::vector<int> rank_to_node)
    : engine_(engine), link_(link), rank_to_node_(std::move(rank_to_node)) {
  assert(!rank_to_node_.empty());
  mailboxes_.resize(rank_to_node_.size());
  channels_.resize(rank_to_node_.size() * rank_to_node_.size());
}

void Communicator::set_retry_policy(const RetryPolicy& policy) {
  assert(policy.timeout > 0.0 && policy.backoff >= 1.0 &&
         policy.max_attempts >= 1 && policy.timeout_cap >= 0.0);
  retry_ = policy;
}

RankId Communicator::add_rank(int node) {
  const int old_size = size();
  rank_to_node_.push_back(node);
  mailboxes_.emplace_back();
  // channels_ is indexed src * size + dst; re-pack the old N x N table into
  // the new (N+1) x (N+1) layout so in-flight sequence state survives.
  const std::size_t n = static_cast<std::size_t>(old_size);
  std::vector<Channel> grown((n + 1) * (n + 1));
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      grown[src * (n + 1) + dst] = std::move(channels_[src * n + dst]);
    }
  }
  channels_ = std::move(grown);
  return old_size;
}

sim::Rng& Communicator::rng() {
  if (!rng_) rng_.emplace(sim::Rng(0x5EEDu));
  return *rng_;
}

sim::SimTime Communicator::transfer_cost(RankId src, RankId dst,
                                         std::uint64_t bytes) const {
  if (node_of(src) == node_of(dst)) {
    return link_.shm_transfer_time(bytes);
  }
  return link_.transfer_time(bytes);
}

sim::SimTime Communicator::faulted_cost(RankId src, RankId dst,
                                        std::uint64_t bytes) {
  if (node_of(src) == node_of(dst)) {
    // Shared memory: unaffected by interconnect faults.
    return link_.shm_transfer_time(bytes);
  }
  sim::SimTime cost =
      link_.latency * fault_.latency_mult +
      static_cast<double>(bytes) / (link_.bandwidth * fault_.bandwidth_mult);
  if (fault_.jitter_max > 0.0) cost += rng().uniform(0.0, fault_.jitter_max);
  return cost;
}

void Communicator::send(RankId src, RankId dst, int tag, std::uint64_t bytes,
                        std::function<void(const Message&)> on_delivered) {
  assert(src >= 0 && src < size() && dst >= 0 && dst < size());
  ++sent_count_;
  bytes_count_ += bytes;

  Message msg;
  msg.source = src;
  msg.tag = tag;
  msg.bytes = bytes;
  msg.sent_at = engine_.now();
  msg.seq = channel(src, dst).next_send_seq++;
  msg.attempts = 1;
  transmit(dst, std::move(msg), std::move(on_delivered));
}

void Communicator::transmit(RankId dst, Message msg,
                            std::function<void(const Message&)> on_delivered) {
  const bool inter_node = node_of(msg.source) != node_of(dst);
  const bool may_lose = inter_node && fault_.loss_rate > 0.0 &&
                        msg.attempts < retry_.max_attempts;
  if (may_lose && rng().uniform(0.0, 1.0) < fault_.loss_rate) {
    // Lost on the wire: the sender times out and retransmits with
    // exponential backoff (attempt k is retried after timeout*backoff^k).
    ++lost_count_;
    sim::SimTime wait =
        retry_.timeout * std::pow(retry_.backoff, msg.attempts - 1);
    if (retry_.timeout_cap > 0.0) wait = std::min(wait, retry_.timeout_cap);
    msg.attempts += 1;
    engine_.after(wait, [this, dst, msg = std::move(msg),
                         cb = std::move(on_delivered)]() mutable {
      transmit(dst, std::move(msg), std::move(cb));
    });
    return;
  }

  if (fabric_ != nullptr && inter_node) {
    // Flow mode (tlb::net): wire latency plus per-message jitter up front,
    // then the payload streams over shared links at the max-min fair rate.
    // The arrival instant is load-dependent and unknowable here, so FIFO
    // is enforced purely by sequence-ordered delivery in arrive().
    sim::SimTime jitter = 0.0;
    if (fault_.jitter_max > 0.0) jitter = rng().uniform(0.0, fault_.jitter_max);
    const int src_node = node_of(msg.source);
    const int dst_node = node_of(dst);
    const std::uint64_t bytes = msg.bytes;
    fabric_->start_flow(
        src_node, dst_node, bytes,
        [this, dst, msg = std::move(msg),
         cb = std::move(on_delivered)]() mutable {
          arrive(dst, std::move(msg), std::move(cb));
        },
        jitter);
    return;
  }

  sim::SimTime arrival =
      engine_.now() + faulted_cost(msg.source, dst, msg.bytes);
  // Per-channel FIFO on the wire: a later (smaller) message may not overtake
  // an earlier (larger) one on the same channel. Out-of-order arrivals that
  // loss still produces are re-ordered at the receiver (arrive()).
  auto& ch = channel(msg.source, dst);
  arrival = std::max(arrival, ch.last_arrival);
  ch.last_arrival = arrival;

  engine_.at(arrival, [this, dst, msg = std::move(msg),
                       cb = std::move(on_delivered)]() mutable {
    arrive(dst, std::move(msg), std::move(cb));
  });
}

void Communicator::arrive(RankId dst, Message msg,
                          std::function<void(const Message&)> on_delivered) {
  Channel& ch = channel(msg.source, dst);
  if (msg.seq != ch.next_deliver_seq) {
    // A predecessor on this channel is still in flight (being
    // retransmitted): hold this message to preserve FIFO.
    assert(msg.seq > ch.next_deliver_seq && "duplicate delivery");
    ch.held.emplace(msg.seq, Held{std::move(msg), std::move(on_delivered)});
    return;
  }
  msg.delivered_at = engine_.now();
  ++ch.next_deliver_seq;
  match(dst, msg);
  if (on_delivered) on_delivered(msg);
  // Release any held successors that are now in order.
  while (true) {
    auto it = ch.held.find(ch.next_deliver_seq);
    if (it == ch.held.end()) break;
    Held h = std::move(it->second);
    ch.held.erase(it);
    h.msg.delivered_at = engine_.now();
    ++ch.next_deliver_seq;
    match(dst, h.msg);
    if (h.on_delivered) h.on_delivered(h.msg);
  }
}

void Communicator::match(RankId dst, const Message& msg) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
    if (matches(*it, msg)) {
      auto cb = std::move(it->cb);
      box.posted.erase(it);
      cb(msg);
      return;
    }
  }
  box.unexpected.push_back(msg);
}

void Communicator::recv(RankId dst, RankId src, int tag,
                        std::function<void(const Message&)> cb) {
  assert(dst >= 0 && dst < size());
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  PostedRecv pr{src, tag, std::move(cb)};
  for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
    if (matches(pr, *it)) {
      Message msg = *it;
      box.unexpected.erase(it);
      pr.cb(msg);
      return;
    }
  }
  box.posted.push_back(std::move(pr));
}

sim::SimTime Communicator::collective_cost(int rounds) const {
  return static_cast<double>(rounds) * link_.latency * fault_.latency_mult *
         static_cast<double>(ceil_log2(size()));
}

void Communicator::barrier(RankId rank, std::function<void()> cb) {
  assert(rank >= 0 && rank < size());
  (void)rank;
  barrier_state_.barrier_cbs.push_back(std::move(cb));
  if (++barrier_state_.arrived == size()) {
    auto cbs = std::move(barrier_state_.barrier_cbs);
    barrier_state_ = Collective{};
    engine_.after(collective_cost(1), [cbs = std::move(cbs)]() {
      for (const auto& f : cbs) f();
    });
  }
}

void Communicator::allreduce_sum(RankId rank, double value,
                                 std::function<void(double)> cb) {
  assert(rank >= 0 && rank < size());
  (void)rank;
  reduce_state_.accum += value;
  reduce_state_.reduce_cbs.push_back(std::move(cb));
  if (++reduce_state_.arrived == size()) {
    const double total = reduce_state_.accum;
    auto cbs = std::move(reduce_state_.reduce_cbs);
    reduce_state_ = Collective{};
    engine_.after(collective_cost(2), [cbs = std::move(cbs), total]() {
      for (const auto& f : cbs) f(total);
    });
  }
}

void Communicator::bcast(RankId rank, RankId root, std::uint64_t bytes,
                         std::function<void()> cb) {
  assert(rank >= 0 && rank < size());
  assert(root >= 0 && root < size());
  (void)rank;
  bcast_state_.root = root;
  bcast_state_.payload = bytes;
  bcast_state_.barrier_cbs.push_back(std::move(cb));
  if (++bcast_state_.arrived == size()) {
    const std::uint64_t payload = bcast_state_.payload;
    auto cbs = std::move(bcast_state_.barrier_cbs);
    bcast_state_ = Collective{};
    // Per-link-traversal accounting (see bytes_sent()): the payload
    // crosses one link per non-root rank in the binomial tree.
    bytes_count_ += payload * static_cast<std::uint64_t>(size() - 1);
    const sim::SimTime cost =
        collective_cost(1) +
        static_cast<double>(payload) /
            (link_.bandwidth * fault_.bandwidth_mult);
    engine_.after(cost, [cbs = std::move(cbs)]() {
      for (const auto& f : cbs) f();
    });
  }
}

void Communicator::gather(RankId rank, RankId root, double value,
                          std::function<void(const std::vector<double>&)> cb) {
  assert(rank >= 0 && rank < size());
  assert(root >= 0 && root < size());
  if (gather_state_.values.empty()) {
    gather_state_.values.assign(static_cast<std::size_t>(size()), 0.0);
  }
  gather_state_.root = root;
  gather_state_.values[static_cast<std::size_t>(rank)] = value;
  gather_state_.gather_cbs.push_back(std::move(cb));
  gather_state_.gather_ranks.push_back(rank);
  if (++gather_state_.arrived == size()) {
    auto values = std::move(gather_state_.values);
    auto cbs = std::move(gather_state_.gather_cbs);
    auto ranks = std::move(gather_state_.gather_ranks);
    const RankId r = gather_state_.root;
    gather_state_ = Collective{};
    engine_.after(collective_cost(1),
                  [values = std::move(values), cbs = std::move(cbs),
                   ranks = std::move(ranks), r]() {
                    static const std::vector<double> kEmpty;
                    for (std::size_t i = 0; i < cbs.size(); ++i) {
                      cbs[i](ranks[i] == r ? values : kEmpty);
                    }
                  });
  }
}

}  // namespace tlb::vmpi
