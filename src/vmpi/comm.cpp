#include "vmpi/comm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tlb::vmpi {

namespace {
/// Intra-node (shared-memory) copy bandwidth; far faster than the network.
constexpr double kShmBandwidth = 80e9;  // bytes/s
constexpr tlb::sim::SimTime kShmLatency = 2e-7;  // 200 ns

int ceil_log2(int p) {
  int r = 0;
  int v = 1;
  while (v < p) {
    v <<= 1;
    ++r;
  }
  return r;
}
}  // namespace

Communicator::Communicator(sim::Engine& engine, sim::LinkSpec link,
                           std::vector<int> rank_to_node)
    : engine_(engine), link_(link), rank_to_node_(std::move(rank_to_node)) {
  assert(!rank_to_node_.empty());
  mailboxes_.resize(rank_to_node_.size());
  last_arrival_.assign(rank_to_node_.size(),
                       std::vector<sim::SimTime>(rank_to_node_.size(), 0.0));
}

sim::SimTime Communicator::transfer_cost(RankId src, RankId dst,
                                         std::uint64_t bytes) const {
  if (node_of(src) == node_of(dst)) {
    return kShmLatency + static_cast<double>(bytes) / kShmBandwidth;
  }
  return link_.transfer_time(bytes);
}

void Communicator::send(RankId src, RankId dst, int tag, std::uint64_t bytes,
                        std::function<void(const Message&)> on_delivered) {
  assert(src >= 0 && src < size() && dst >= 0 && dst < size());
  ++sent_count_;
  bytes_count_ += bytes;

  Message msg;
  msg.source = src;
  msg.tag = tag;
  msg.bytes = bytes;
  msg.sent_at = engine_.now();

  sim::SimTime arrival = engine_.now() + transfer_cost(src, dst, bytes);
  // Per-channel FIFO: a later (smaller) message may not overtake an earlier
  // (larger) one on the same channel.
  auto& last = last_arrival_[static_cast<std::size_t>(src)]
                            [static_cast<std::size_t>(dst)];
  arrival = std::max(arrival, last);
  last = arrival;
  msg.delivered_at = arrival;

  engine_.at(arrival, [this, dst, msg, cb = std::move(on_delivered)]() {
    deliver(dst, msg);
    if (cb) cb(msg);
  });
}

void Communicator::deliver(RankId dst, Message msg) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
    if (matches(*it, msg)) {
      auto cb = std::move(it->cb);
      box.posted.erase(it);
      cb(msg);
      return;
    }
  }
  box.unexpected.push_back(msg);
}

void Communicator::recv(RankId dst, RankId src, int tag,
                        std::function<void(const Message&)> cb) {
  assert(dst >= 0 && dst < size());
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  PostedRecv pr{src, tag, std::move(cb)};
  for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
    if (matches(pr, *it)) {
      Message msg = *it;
      box.unexpected.erase(it);
      pr.cb(msg);
      return;
    }
  }
  box.posted.push_back(std::move(pr));
}

sim::SimTime Communicator::collective_cost(int rounds) const {
  return static_cast<double>(rounds) * link_.latency *
         static_cast<double>(ceil_log2(size()));
}

void Communicator::barrier(RankId rank, std::function<void()> cb) {
  assert(rank >= 0 && rank < size());
  (void)rank;
  barrier_state_.barrier_cbs.push_back(std::move(cb));
  if (++barrier_state_.arrived == size()) {
    auto cbs = std::move(barrier_state_.barrier_cbs);
    barrier_state_ = Collective{};
    engine_.after(collective_cost(1), [cbs = std::move(cbs)]() {
      for (const auto& f : cbs) f();
    });
  }
}

void Communicator::allreduce_sum(RankId rank, double value,
                                 std::function<void(double)> cb) {
  assert(rank >= 0 && rank < size());
  (void)rank;
  reduce_state_.accum += value;
  reduce_state_.reduce_cbs.push_back(std::move(cb));
  if (++reduce_state_.arrived == size()) {
    const double total = reduce_state_.accum;
    auto cbs = std::move(reduce_state_.reduce_cbs);
    reduce_state_ = Collective{};
    engine_.after(collective_cost(2), [cbs = std::move(cbs), total]() {
      for (const auto& f : cbs) f(total);
    });
  }
}

void Communicator::bcast(RankId rank, RankId root, std::uint64_t bytes,
                         std::function<void()> cb) {
  assert(rank >= 0 && rank < size());
  assert(root >= 0 && root < size());
  (void)rank;
  bcast_state_.root = root;
  bcast_state_.payload = bytes;
  bcast_state_.barrier_cbs.push_back(std::move(cb));
  if (++bcast_state_.arrived == size()) {
    const std::uint64_t payload = bcast_state_.payload;
    auto cbs = std::move(bcast_state_.barrier_cbs);
    bcast_state_ = Collective{};
    const sim::SimTime cost =
        collective_cost(1) +
        static_cast<double>(payload) / link_.bandwidth;
    engine_.after(cost, [cbs = std::move(cbs)]() {
      for (const auto& f : cbs) f();
    });
  }
}

void Communicator::gather(RankId rank, RankId root, double value,
                          std::function<void(const std::vector<double>&)> cb) {
  assert(rank >= 0 && rank < size());
  assert(root >= 0 && root < size());
  if (gather_state_.values.empty()) {
    gather_state_.values.assign(static_cast<std::size_t>(size()), 0.0);
  }
  gather_state_.root = root;
  gather_state_.values[static_cast<std::size_t>(rank)] = value;
  gather_state_.gather_cbs.push_back(std::move(cb));
  gather_state_.gather_ranks.push_back(rank);
  if (++gather_state_.arrived == size()) {
    auto values = std::move(gather_state_.values);
    auto cbs = std::move(gather_state_.gather_cbs);
    auto ranks = std::move(gather_state_.gather_ranks);
    const RankId r = gather_state_.root;
    gather_state_ = Collective{};
    engine_.after(collective_cost(1),
                  [values = std::move(values), cbs = std::move(cbs),
                   ranks = std::move(ranks), r]() {
                    static const std::vector<double> kEmpty;
                    for (std::size_t i = 0; i < cbs.size(); ++i) {
                      cbs[i](ranks[i] == r ? values : kEmpty);
                    }
                  });
  }
}

}  // namespace tlb::vmpi
