// Virtual MPI: a message-passing layer over the discrete-event engine.
//
// The real system uses MPI both for the application's own communication and
// for the Nanos6 runtime's control messages / data transfers. This layer
// reproduces the semantics that matter for load-balancing studies:
//   - point-to-point messages with (source, tag) matching, wildcards,
//     and per-channel FIFO ordering;
//   - transfer cost latency + bytes/bandwidth between distinct nodes, and a
//     much cheaper shared-memory cost within a node;
//   - barrier and allreduce with dissemination-style log2(P) cost.
//
// All operations are non-blocking with completion callbacks, which is the
// natural shape inside a discrete-event simulation (there is no thread to
// block).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "sim/cluster_spec.hpp"
#include "sim/engine.hpp"

namespace tlb::vmpi {

using RankId = int;

/// Wildcard for recv(): match any source rank.
inline constexpr RankId kAnySource = -1;
/// Wildcard for recv(): match any tag.
inline constexpr int kAnyTag = -1;

struct Message {
  RankId source = 0;
  int tag = 0;
  std::uint64_t bytes = 0;
  sim::SimTime sent_at = 0.0;
  sim::SimTime delivered_at = 0.0;
};

class Communicator {
 public:
  /// `rank_to_node[r]` is the node hosting rank r; used to price transfers.
  Communicator(sim::Engine& engine, sim::LinkSpec link,
               std::vector<int> rank_to_node);

  [[nodiscard]] int size() const {
    return static_cast<int>(rank_to_node_.size());
  }
  [[nodiscard]] int node_of(RankId r) const {
    return rank_to_node_.at(static_cast<std::size_t>(r));
  }

  /// Cost model for a single transfer between two ranks.
  [[nodiscard]] sim::SimTime transfer_cost(RankId src, RankId dst,
                                           std::uint64_t bytes) const;

  /// Non-blocking send. `on_delivered` (optional) fires at the sender-side
  /// completion time, which equals the arrival time at the receiver (eager
  /// protocol, as Nanos6 uses for control messages).
  void send(RankId src, RankId dst, int tag, std::uint64_t bytes,
            std::function<void(const Message&)> on_delivered = {});

  /// Non-blocking receive; `cb` fires when a matching message is available
  /// (immediately if one already arrived). `src` may be kAnySource and
  /// `tag` may be kAnyTag.
  void recv(RankId dst, RankId src, int tag,
            std::function<void(const Message&)> cb);

  /// Collective barrier: every rank must call once per barrier generation;
  /// all callbacks fire at the same simulated time, arrival-of-last plus a
  /// dissemination cost of ceil(log2 P) network latencies.
  void barrier(RankId rank, std::function<void()> cb);

  /// Collective sum-allreduce of one double per rank; callbacks receive the
  /// global sum. Cost: 2 * ceil(log2 P) latencies (reduce + broadcast).
  void allreduce_sum(RankId rank, double value,
                     std::function<void(double)> cb);

  /// Broadcast of `bytes` from `root`; every rank's callback fires when
  /// the payload has reached it (binomial tree: ceil(log2 P) rounds of
  /// latency plus one payload transfer time).
  void bcast(RankId rank, RankId root, std::uint64_t bytes,
             std::function<void()> cb);

  /// Gather of one double per rank to `root`; the root's callback receives
  /// all values indexed by rank (others get an empty vector). Cost:
  /// ceil(log2 P) latencies.
  void gather(RankId rank, RankId root, double value,
              std::function<void(const std::vector<double>&)> cb);

  /// Number of point-to-point messages sent so far (diagnostic).
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_count_; }
  /// Total point-to-point payload bytes sent so far (diagnostic).
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_count_; }

 private:
  struct PostedRecv {
    RankId src;
    int tag;
    std::function<void(const Message&)> cb;
  };
  struct Mailbox {
    std::deque<Message> unexpected;
    std::deque<PostedRecv> posted;
  };
  struct Collective {
    int arrived = 0;
    double accum = 0.0;
    std::uint64_t payload = 0;
    std::vector<double> values;
    std::vector<std::function<void()>> barrier_cbs;
    std::vector<std::function<void(double)>> reduce_cbs;
    std::vector<std::function<void(const std::vector<double>&)>> gather_cbs;
    std::vector<RankId> gather_ranks;
    RankId root = 0;
  };

  void deliver(RankId dst, Message msg);
  [[nodiscard]] static bool matches(const PostedRecv& r, const Message& m) {
    return (r.src == kAnySource || r.src == m.source) &&
           (r.tag == kAnyTag || r.tag == m.tag);
  }
  [[nodiscard]] sim::SimTime collective_cost(int rounds) const;

  sim::Engine& engine_;
  sim::LinkSpec link_;
  std::vector<int> rank_to_node_;
  std::vector<Mailbox> mailboxes_;
  // FIFO enforcement: last scheduled arrival per (src, dst) channel.
  std::vector<std::vector<sim::SimTime>> last_arrival_;
  Collective barrier_state_;
  Collective reduce_state_;
  Collective bcast_state_;
  Collective gather_state_;
  std::uint64_t sent_count_ = 0;
  std::uint64_t bytes_count_ = 0;
};

}  // namespace tlb::vmpi
