// Virtual MPI: a message-passing layer over the discrete-event engine.
//
// The real system uses MPI both for the application's own communication and
// for the Nanos6 runtime's control messages / data transfers. This layer
// reproduces the semantics that matter for load-balancing studies:
//   - point-to-point messages with (source, tag) matching, wildcards,
//     and per-channel FIFO ordering;
//   - transfer cost latency + bytes/bandwidth between distinct nodes, and a
//     much cheaper shared-memory cost within a node;
//   - barrier and allreduce with dissemination-style log2(P) cost.
//
// Fault model (tlb::fault): the link can be perturbed at runtime with a
// LinkFault — latency/bandwidth multipliers, per-message delay jitter, and
// a transmission loss rate. Lost transmissions are recovered by a timeout +
// exponential-backoff retransmit path; per-channel FIFO is preserved across
// retransmits by sequence-ordered delivery (a message that arrives while an
// earlier one of the same channel is still being retransmitted is held back
// until the earlier one lands). With a default-constructed LinkFault the
// layer is bit-identical to the unfaulted one: no RNG is consulted and the
// cost arithmetic is unchanged.
//
// All operations are non-blocking with completion callbacks, which is the
// natural shape inside a discrete-event simulation (there is no thread to
// block).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "sim/cluster_spec.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace tlb::net {
class Fabric;
}

namespace tlb::vmpi {

using RankId = int;

/// Wildcard for recv(): match any source rank.
inline constexpr RankId kAnySource = -1;
/// Wildcard for recv(): match any tag.
inline constexpr int kAnyTag = -1;

/// Dynamic perturbation of the interconnect (tlb::fault). The default
/// state is exactly the unfaulted link.
struct LinkFault {
  double latency_mult = 1.0;    ///< multiplies the link latency
  double bandwidth_mult = 1.0;  ///< multiplies the link bandwidth (< 1 = slower)
  sim::SimTime jitter_max = 0.0;  ///< extra per-message delay in [0, jitter_max)
  double loss_rate = 0.0;         ///< probability a transmission attempt is lost

  [[nodiscard]] bool degrades_cost() const {
    return latency_mult != 1.0 || bandwidth_mult != 1.0 || jitter_max > 0.0;
  }
  [[nodiscard]] bool any() const { return degrades_cost() || loss_rate > 0.0; }
};

/// Retransmission policy for lost messages: attempt k (0-based) that is
/// lost is retried after timeout * backoff^k. The final attempt always
/// succeeds (the virtual link is fail-slow, not fail-stop), which bounds
/// the delay a message can suffer and keeps the simulation live.
struct RetryPolicy {
  sim::SimTime timeout = 1e-3;  ///< initial retransmit timeout
  double backoff = 2.0;         ///< exponential backoff factor (>= 1)
  int max_attempts = 8;         ///< total transmission attempts (>= 1)
  /// Upper bound on the backoff delay (capped exponential backoff);
  /// 0 disables the cap (legacy unbounded growth).
  sim::SimTime timeout_cap = 0.0;
};

struct Message {
  RankId source = 0;
  int tag = 0;
  std::uint64_t bytes = 0;
  sim::SimTime sent_at = 0.0;
  sim::SimTime delivered_at = 0.0;
  std::uint64_t seq = 0;  ///< per-(src,dst)-channel sequence number
  int attempts = 1;       ///< transmission attempts needed (1 = no loss)
};

class Communicator {
 public:
  /// `rank_to_node[r]` is the node hosting rank r; used to price transfers.
  Communicator(sim::Engine& engine, sim::LinkSpec link,
               std::vector<int> rank_to_node);

  [[nodiscard]] int size() const {
    return static_cast<int>(rank_to_node_.size());
  }

  /// Adds a rank hosted on `node` mid-run (expander rewire after a crash).
  /// Existing channel state — sequence numbers, in-flight FIFO deadlines,
  /// held out-of-order messages — is preserved. Returns the new rank id.
  RankId add_rank(int node);

  [[nodiscard]] int node_of(RankId r) const {
    return rank_to_node_.at(static_cast<std::size_t>(r));
  }

  /// Nominal (unfaulted) cost model for a single transfer between two ranks.
  [[nodiscard]] sim::SimTime transfer_cost(RankId src, RankId dst,
                                           std::uint64_t bytes) const;

  /// Routes inter-node point-to-point payloads over a shared-link fabric
  /// (tlb::net) instead of the analytic latency + bytes/bandwidth formula:
  /// each message becomes a flow whose bandwidth is shared max-min fairly
  /// with every other in-flight flow. Intra-node messages and collectives
  /// keep the analytic model. Per-channel FIFO is preserved by
  /// sequence-ordered delivery. With a fabric attached, the LinkFault
  /// latency/bandwidth multipliers must be installed on the *fabric*
  /// (Fabric::set_global_fault) — this layer still draws loss and jitter.
  /// Pass nullptr to detach (restores the analytic model).
  void attach_fabric(net::Fabric* fabric) { fabric_ = fabric; }
  [[nodiscard]] net::Fabric* fabric() const { return fabric_; }

  // --- fault injection (tlb::fault) ------------------------------------------

  /// Installs the current link perturbation (latency/bandwidth multipliers,
  /// jitter, loss). A default-constructed LinkFault restores the nominal
  /// link. Intra-node (shared-memory) transfers are never perturbed.
  void set_link_fault(const LinkFault& fault) { fault_ = fault; }
  [[nodiscard]] const LinkFault& link_fault() const { return fault_; }

  /// Seeds the RNG used for loss and jitter draws (deterministic runs).
  void set_fault_seed(std::uint64_t seed) { rng_.emplace(seed); }

  void set_retry_policy(const RetryPolicy& policy);
  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_; }

  /// Transmission attempts that were lost (each triggers a retransmit).
  [[nodiscard]] std::uint64_t messages_lost() const { return lost_count_; }
  /// Retransmissions performed (== messages_lost(): every loss is retried).
  [[nodiscard]] std::uint64_t retransmissions() const { return lost_count_; }

  // --- point-to-point ---------------------------------------------------------

  /// Non-blocking send. `on_delivered` (optional) fires at the sender-side
  /// completion time, which equals the arrival time at the receiver (eager
  /// protocol, as Nanos6 uses for control messages).
  void send(RankId src, RankId dst, int tag, std::uint64_t bytes,
            std::function<void(const Message&)> on_delivered = {});

  /// Non-blocking receive; `cb` fires when a matching message is available
  /// (immediately if one already arrived). `src` may be kAnySource and
  /// `tag` may be kAnyTag.
  void recv(RankId dst, RankId src, int tag,
            std::function<void(const Message&)> cb);

  // --- collectives ------------------------------------------------------------

  /// Collective barrier: every rank must call once per barrier generation;
  /// all callbacks fire at the same simulated time, arrival-of-last plus a
  /// dissemination cost of ceil(log2 P) network latencies.
  void barrier(RankId rank, std::function<void()> cb);

  /// Collective sum-allreduce of one double per rank; callbacks receive the
  /// global sum. Cost: 2 * ceil(log2 P) latencies (reduce + broadcast).
  void allreduce_sum(RankId rank, double value,
                     std::function<void(double)> cb);

  /// Broadcast of `bytes` from `root`; every rank's callback fires when
  /// the payload has reached it (binomial tree: ceil(log2 P) rounds of
  /// latency plus one payload transfer time).
  void bcast(RankId rank, RankId root, std::uint64_t bytes,
             std::function<void()> cb);

  /// Gather of one double per rank to `root`; the root's callback receives
  /// all values indexed by rank (others get an empty vector). Cost:
  /// ceil(log2 P) latencies.
  void gather(RankId rank, RankId root, double value,
              std::function<void(const std::vector<double>&)> cb);

  /// Number of point-to-point messages sent so far (diagnostic).
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_count_; }
  /// Total payload bytes injected into the interconnect, counted once per
  /// link traversal: a point-to-point send of B bytes counts B once, and
  /// a broadcast of B bytes over P ranks counts (P - 1) * B — the payload
  /// crosses one link per non-root rank in the binomial tree, regardless
  /// of retransmissions. Barrier/allreduce/gather move O(1)-sized control
  /// payloads and contribute nothing.
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_count_; }

 private:
  struct PostedRecv {
    RankId src;
    int tag;
    std::function<void(const Message&)> cb;
  };
  struct Mailbox {
    std::deque<Message> unexpected;
    std::deque<PostedRecv> posted;
  };
  struct Held {
    Message msg;
    std::function<void(const Message&)> on_delivered;
  };
  /// Per-(src, dst) ordered-delivery state.
  struct Channel {
    std::uint64_t next_send_seq = 0;
    std::uint64_t next_deliver_seq = 0;
    sim::SimTime last_arrival = 0.0;  ///< FIFO: no overtaking on the wire
    std::map<std::uint64_t, Held> held;  ///< arrived out of order
  };
  struct Collective {
    int arrived = 0;
    double accum = 0.0;
    std::uint64_t payload = 0;
    std::vector<double> values;
    std::vector<std::function<void()>> barrier_cbs;
    std::vector<std::function<void(double)>> reduce_cbs;
    std::vector<std::function<void(const std::vector<double>&)>> gather_cbs;
    std::vector<RankId> gather_ranks;
    RankId root = 0;
  };

  /// Schedules transmission attempt `msg.attempts` of `msg`; on loss,
  /// re-schedules itself after the backoff timeout.
  void transmit(RankId dst, Message msg,
                std::function<void(const Message&)> on_delivered);
  /// Arrival at the receiver: enforce sequence order, then hand to match().
  void arrive(RankId dst, Message msg,
              std::function<void(const Message&)> on_delivered);
  void match(RankId dst, const Message& msg);
  [[nodiscard]] Channel& channel(RankId src, RankId dst) {
    return channels_[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(size()) +
                     static_cast<std::size_t>(dst)];
  }
  [[nodiscard]] sim::Rng& rng();
  /// Transfer cost with the active link fault applied (inter-node only).
  [[nodiscard]] sim::SimTime faulted_cost(RankId src, RankId dst,
                                          std::uint64_t bytes);

  [[nodiscard]] static bool matches(const PostedRecv& r, const Message& m) {
    return (r.src == kAnySource || r.src == m.source) &&
           (r.tag == kAnyTag || r.tag == m.tag);
  }
  [[nodiscard]] sim::SimTime collective_cost(int rounds) const;

  sim::Engine& engine_;
  sim::LinkSpec link_;
  net::Fabric* fabric_ = nullptr;  ///< non-null = flow-routed payloads
  std::vector<int> rank_to_node_;
  std::vector<Mailbox> mailboxes_;
  std::vector<Channel> channels_;
  LinkFault fault_;
  RetryPolicy retry_;
  std::optional<sim::Rng> rng_;
  Collective barrier_state_;
  Collective reduce_state_;
  Collective bcast_state_;
  Collective gather_state_;
  std::uint64_t sent_count_ = 0;
  std::uint64_t bytes_count_ = 0;
  std::uint64_t lost_count_ = 0;
};

}  // namespace tlb::vmpi
