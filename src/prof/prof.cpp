#include "prof/prof.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#if defined(__linux__)
#include <sys/resource.h>
#endif

namespace tlb::prof {

namespace detail {
bool g_enabled = false;
TagCounters g_alloc[kAllocTagCount] = {};
}  // namespace detail

const char* alloc_tag_name(AllocTag tag) {
  switch (tag) {
    case AllocTag::SimEvent:
      return "sim.event";
    case AllocTag::NanosTask:
      return "nanos.task";
    case AllocTag::NetFlow:
      return "net.flow";
    case AllocTag::ObsSpan:
      return "obs.span";
    case AllocTag::CoreExec:
      return "core.exec";
    case AllocTag::CorePending:
      return "core.pending";
    case AllocTag::Count:
      break;
  }
  return "?";
}

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

void Profiler::enable(std::uint64_t snapshot_every_events) {
  detail::g_enabled = true;
  stride_ = snapshot_every_events == 0 ? 1 : snapshot_every_events;
  if (epoch_ == std::chrono::steady_clock::time_point{}) {
    epoch_ = std::chrono::steady_clock::now();
  }
}

void Profiler::disable() { detail::g_enabled = false; }

void Profiler::reset() {
  nodes_.clear();
  stack_.clear();
  snapshots_.clear();
  for (auto& c : detail::g_alloc) c = detail::TagCounters{};
  epoch_ = std::chrono::steady_clock::now();
}

int Profiler::child_of(int parent, const char* name) {
  // PROF_SCOPE sites pass string literals, so a pointer compare settles
  // almost every lookup; strcmp covers the same name spelled in two TUs.
  const auto matches = [&](int idx) {
    return nodes_[static_cast<std::size_t>(idx)].name == name ||
           std::strcmp(nodes_[static_cast<std::size_t>(idx)].name, name) == 0;
  };
  if (parent < 0) {
    for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
      if (nodes_[static_cast<std::size_t>(i)].parent < 0 && matches(i)) {
        return i;
      }
    }
  } else {
    for (int c : nodes_[static_cast<std::size_t>(parent)].children) {
      if (matches(c)) return c;
    }
  }
  const int idx = static_cast<int>(nodes_.size());
  PhaseNode node;
  node.name = name;
  node.parent = parent;
  nodes_.push_back(std::move(node));
  if (parent >= 0) {
    nodes_[static_cast<std::size_t>(parent)].children.push_back(idx);
  }
  return idx;
}

int Profiler::enter(const char* name) {
  const int parent = stack_.empty() ? -1 : stack_.back();
  const int node = child_of(parent, name);
  auto& n = nodes_[static_cast<std::size_t>(node)];
  ++n.calls;
  stack_.push_back(node);
  return node;
}

void Profiler::leave(int node, std::uint64_t duration_ns) {
  // RAII nesting guarantees the closing scope is the innermost open one.
  if (!stack_.empty() && stack_.back() == node) stack_.pop_back();
  auto& n = nodes_[static_cast<std::size_t>(node)];
  n.inclusive_ns += duration_ns;
  if (n.parent >= 0) {
    nodes_[static_cast<std::size_t>(n.parent)].child_ns += duration_ns;
  }
}

std::uint64_t Profiler::sample(std::uint64_t events_fired,
                               std::size_t queue_depth) {
  HealthSnapshot s;
  s.wall_s = static_cast<double>(wall_ns()) * 1e-9;
  s.events_fired = events_fired;
  s.queue_depth = queue_depth;
  s.rss_mb = current_rss_mb();
  s.rss_hwm_mb = peak_rss_mb();
  if (open_spans_gauge_) s.open_spans = open_spans_gauge_();
  s.attributed_ns = attributed_ns();
  s.solve_ns = total_ns("net.solve");
  if (!snapshots_.empty()) {
    const HealthSnapshot& prev = snapshots_.back();
    const double dt = s.wall_s - prev.wall_s;
    // events_fired is per-engine; with several engines sharing the
    // profiler the delta can go negative across a switch — clamp to 0.
    if (dt > 0.0 && s.events_fired > prev.events_fired) {
      s.events_per_sec =
          static_cast<double>(s.events_fired - prev.events_fired) / dt;
    }
  }
  snapshots_.push_back(s);

  // Self-thinning: once the buffer fills, keep every other sample and
  // double the stride, so arbitrarily long runs hold <= kMaxSnapshots
  // samples at roughly uniform spacing.
  constexpr std::size_t kMaxSnapshots = 512;
  if (snapshots_.size() >= kMaxSnapshots) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < snapshots_.size(); r += 2) {
      snapshots_[w++] = snapshots_[r];
    }
    snapshots_.resize(w);
    stride_ *= 2;
  }
  return stride_;
}

void Profiler::set_open_spans_gauge(std::function<std::int64_t()> gauge) {
  open_spans_gauge_ = std::move(gauge);
}

void Profiler::clear_open_spans_gauge() { open_spans_gauge_ = nullptr; }

std::vector<TagStats> Profiler::alloc_stats() const {
  std::vector<TagStats> out;
  out.reserve(kAllocTagCount);
  for (int i = 0; i < kAllocTagCount; ++i) {
    const auto& c = detail::g_alloc[i];
    TagStats s;
    s.tag = alloc_tag_name(static_cast<AllocTag>(i));
    s.alive_bytes = c.alive_bytes;
    s.peak_bytes = c.peak_bytes;
    s.allocs = c.allocs;
    s.frees = c.frees;
    out.push_back(s);
  }
  return out;
}

std::uint64_t Profiler::wall_ns() const {
  if (epoch_ == std::chrono::steady_clock::time_point{}) return 0;
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

std::uint64_t Profiler::attributed_ns() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) {
    if (n.parent < 0) total += n.inclusive_ns;
  }
  return total;
}

std::uint64_t Profiler::total_ns(const char* name) const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) {
    if (n.name == name || std::strcmp(n.name, name) == 0) {
      total += n.inclusive_ns;
    }
  }
  return total;
}

namespace {

void collect_stacks(const std::vector<PhaseNode>& nodes, int idx,
                    const std::string& prefix,
                    std::vector<std::string>& lines) {
  const auto& n = nodes[static_cast<std::size_t>(idx)];
  const std::string path = prefix.empty() ? n.name : prefix + ";" + n.name;
  const std::uint64_t self_us = n.exclusive_ns() / 1000;
  if (self_us > 0) {
    lines.push_back(path + " " + std::to_string(self_us));
  }
  for (int c : n.children) collect_stacks(nodes, c, path, lines);
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string Profiler::collapsed_stacks() const {
  std::vector<std::string> lines;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].parent < 0) {
      collect_stacks(nodes_, i, "", lines);
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string Profiler::to_json() const {
  const std::uint64_t wall = wall_ns();
  const std::uint64_t attributed = attributed_ns();
  const double unattributed_share =
      wall > 0 ? 1.0 - std::min(1.0, static_cast<double>(attributed) /
                                         static_cast<double>(wall))
               : 0.0;

  std::ostringstream os;
  os << "{\"wall_s\": " << fmt_double(static_cast<double>(wall) * 1e-9)
     << ", \"attributed_ns\": " << attributed
     << ", \"unattributed_share\": " << fmt_double(unattributed_share)
     << ", \"phases\": [";
  // Emit depth-first so a reader can rebuild the tree from the paths.
  bool first = true;
  std::vector<std::string> paths(nodes_.size());
  std::vector<int> order;
  order.reserve(nodes_.size());
  std::function<void(int, const std::string&)> walk =
      [&](int idx, const std::string& prefix) {
        const auto& n = nodes_[static_cast<std::size_t>(idx)];
        paths[static_cast<std::size_t>(idx)] =
            prefix.empty() ? n.name : prefix + ";" + n.name;
        order.push_back(idx);
        for (int c : n.children) {
          walk(c, paths[static_cast<std::size_t>(idx)]);
        }
      };
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].parent < 0) walk(i, "");
  }
  for (int idx : order) {
    const auto& n = nodes_[static_cast<std::size_t>(idx)];
    if (!first) os << ", ";
    first = false;
    os << "{\"path\": \"" << paths[static_cast<std::size_t>(idx)]
       << "\", \"calls\": " << n.calls
       << ", \"inclusive_ns\": " << n.inclusive_ns
       << ", \"exclusive_ns\": " << n.exclusive_ns() << "}";
  }
  os << "], \"alloc\": [";
  first = true;
  for (const auto& s : alloc_stats()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"tag\": \"" << s.tag << "\", \"alive_bytes\": " << s.alive_bytes
       << ", \"peak_bytes\": " << s.peak_bytes << ", \"allocs\": " << s.allocs
       << ", \"frees\": " << s.frees << "}";
  }
  os << "], \"snapshot_stride\": " << stride_ << ", \"snapshots\": [";
  first = true;
  for (const auto& s : snapshots_) {
    if (!first) os << ", ";
    first = false;
    os << "{\"wall_s\": " << fmt_double(s.wall_s)
       << ", \"events_fired\": " << s.events_fired
       << ", \"events_per_sec\": " << fmt_double(s.events_per_sec)
       << ", \"queue_depth\": " << s.queue_depth
       << ", \"rss_mb\": " << fmt_double(s.rss_mb)
       << ", \"rss_hwm_mb\": " << fmt_double(s.rss_hwm_mb)
       << ", \"open_spans\": " << s.open_spans
       << ", \"attributed_ns\": " << s.attributed_ns
       << ", \"solve_ns\": " << s.solve_ns << "}";
  }
  os << "]}";
  return os.str();
}

double current_rss_mb() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      long kb = 0;
      std::sscanf(line.c_str(), "VmRSS: %ld", &kb);
      return static_cast<double>(kb) / 1024.0;
    }
  }
#endif
  return 0.0;
}

double peak_rss_mb() {
#if defined(__linux__)
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // ru_maxrss is KB
#else
  return 0.0;
#endif
}

}  // namespace tlb::prof
