// Configuration of the host-side engine self-profiler (tlb::prof).
//
// Off by default. When disabled, every PROF_SCOPE / alloc_note hook
// collapses to a single branch on a plain bool — no atomics, no clock
// reads — and the profiler records nothing. Profiling is host-side and
// record-only: it never posts engine events or feeds back into any
// decision, so golden schedules are bit-identical on vs off.
#pragma once

#include <cstdint>

namespace tlb::prof {

struct ProfConfig {
  /// Master switch. Enables phase timers, allocation accounting and
  /// periodic engine health snapshots for this process.
  bool enabled = false;

  /// Engine health snapshot cadence, counted in *fired events* inside the
  /// host event loop (never in simulated time — a sim-time timer would
  /// post engine events and break the record-only contract). The stride
  /// doubles automatically when the snapshot buffer would overflow, so
  /// long runs keep a bounded, roughly log-spaced history.
  std::uint64_t snapshot_every_events = 8192;
};

}  // namespace tlb::prof
