// Host-side engine self-profiler: wall-time attribution, per-subsystem
// allocation accounting, and periodic engine health snapshots.
//
// Everything in src/obs and src/stream measures *simulated* time; this
// library measures the simulator itself — where host wall-clock goes
// (event-queue pop/dispatch, the max-min fair-share re-solve, scheduler
// decisions, telemetry writes) and which subsystem owns the resident-set
// growth per task. It is the instrument behind ROADMAP item 1 ("engine
// scale-out, round 2"): numbers like ">95% of wall time is the re-solve"
// and "~2.5 KB/task RSS" become reproducible report fields instead of
// one-off printfs.
//
// Contract:
//  * Record-only. The profiler never posts engine events, never reads the
//    RNG, and nothing downstream reads its counters to make a decision.
//    Golden schedule fingerprints are bit-identical on vs off.
//  * Zero overhead when off. Every hook — PROF_SCOPE, alloc_note,
//    free_note, the engine's snapshot cadence — first checks one plain
//    (non-atomic) global bool and does nothing else on the disabled path:
//    no clock reads, no atomic RMW, no allocation. The engine is
//    single-threaded, so plain counters are also sufficient when on.
//  * Bounded memory. The phase tree has one node per distinct call path
//    (a handful), allocation accounting is a fixed array, and snapshots
//    self-thin (stride doubles) once the buffer fills.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace tlb::prof {

// ---------------------------------------------------------------------------
// Allocation tags: one per container family that accretes per-task /
// per-flow / per-span state. alloc_note/free_note must be paired so the
// alive count balances to zero after teardown (asserted by prof_test).
// ---------------------------------------------------------------------------

enum class AllocTag : int {
  SimEvent = 0,   ///< sim::EventQueue heap/bucket entries
  NanosTask,      ///< nanos::TaskPool tasks + their access vectors
  NetFlow,        ///< net::Fabric in-flight flow records
  ObsSpan,        ///< obs::SpanCollector / stream::StreamSink span state
  CoreExec,       ///< core runtime per-execution bookkeeping (running_)
  CorePending,    ///< core runtime pending input-transfer records
  Count,
};
inline constexpr int kAllocTagCount = static_cast<int>(AllocTag::Count);

[[nodiscard]] const char* alloc_tag_name(AllocTag tag);

namespace detail {
// Plain globals, deliberately not atomics: the fast path of every hook is
// `if (!g_enabled) return;` and the engine is single-threaded. Kept in a
// detail namespace so the inline hooks below can reach them.
extern bool g_enabled;

struct TagCounters {
  std::int64_t alive_bytes = 0;
  std::int64_t peak_bytes = 0;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
};
extern TagCounters g_alloc[kAllocTagCount];
}  // namespace detail

/// Master switch, read by every hook. Compiles to one load + branch.
[[nodiscard]] inline bool enabled() { return detail::g_enabled; }

/// Charge `bytes` to a subsystem tag. Callers pass an *estimate from
/// sizeof* (container value type + payload vectors), not malloc truth —
/// the point is attribution by owner, and the same formula must be used
/// by the matching free_note so the alive count returns to zero.
inline void alloc_note(AllocTag tag, std::size_t bytes) {
  if (!detail::g_enabled) return;
  auto& c = detail::g_alloc[static_cast<int>(tag)];
  c.alive_bytes += static_cast<std::int64_t>(bytes);
  ++c.allocs;
  if (c.alive_bytes > c.peak_bytes) c.peak_bytes = c.alive_bytes;
}

inline void free_note(AllocTag tag, std::size_t bytes) {
  if (!detail::g_enabled) return;
  auto& c = detail::g_alloc[static_cast<int>(tag)];
  c.alive_bytes -= static_cast<std::int64_t>(bytes);
  ++c.frees;
}

// ---------------------------------------------------------------------------
// Phase tree
// ---------------------------------------------------------------------------

struct PhaseNode {
  const char* name = nullptr;  ///< static string from the PROF_SCOPE site
  int parent = -1;             ///< index into the tree; -1 = root level
  std::vector<int> children;
  std::uint64_t calls = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t child_ns = 0;  ///< total inclusive time of direct children

  /// Self time. Children close before their parent (RAII nesting), so
  /// child_ns <= inclusive_ns always holds once the node is closed.
  [[nodiscard]] std::uint64_t exclusive_ns() const {
    return inclusive_ns >= child_ns ? inclusive_ns - child_ns : 0;
  }
};

struct TagStats {
  const char* tag = nullptr;
  std::int64_t alive_bytes = 0;
  std::int64_t peak_bytes = 0;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
};

/// One periodic engine health sample (host wall-clock domain).
struct HealthSnapshot {
  double wall_s = 0.0;             ///< seconds since enable()/reset()
  std::uint64_t events_fired = 0;  ///< engine cumulative fired counter
  double events_per_sec = 0.0;     ///< windowed rate since prior snapshot
  std::uint64_t queue_depth = 0;   ///< pending events at sample time
  double rss_mb = 0.0;             ///< VmRSS at sample time (0 off-Linux)
  double rss_hwm_mb = 0.0;         ///< VmHWM high-water mark
  std::int64_t open_spans = -1;    ///< telemetry gauge; -1 = no gauge
  std::uint64_t attributed_ns = 0; ///< sum of root-phase inclusive time
  std::uint64_t solve_ns = 0;      ///< total "net.solve" inclusive time
};

class Profiler {
 public:
  static Profiler& instance();

  /// Turn profiling on (idempotent) and set the snapshot cadence. Does
  /// not clear previously recorded data; call reset() to start a fresh
  /// measurement window.
  void enable(std::uint64_t snapshot_every_events = 8192);
  void disable();

  /// Drop all recorded state (phase tree, alloc counters, snapshots,
  /// gauge registrations stay) and restart the wall clock. Call between
  /// measurement windows when no instrumented containers are alive,
  /// otherwise alloc alive counts lose their baseline.
  void reset();

  // -- phase tree (driven by ScopedPhase) ---------------------------------
  int enter(const char* name);
  void leave(int node, std::uint64_t duration_ns);

  // -- engine health snapshots --------------------------------------------
  /// Record one snapshot; called by the engine loop every `stride` fired
  /// events. Returns the (possibly doubled) stride to use next.
  std::uint64_t sample(std::uint64_t events_fired, std::size_t queue_depth);
  [[nodiscard]] std::uint64_t snapshot_stride() const { return stride_; }

  /// Telemetry open-span gauge (registered by the runtime when
  /// RuntimeConfig::prof.enabled; cleared in its destructor so the
  /// callback never dangles).
  void set_open_spans_gauge(std::function<std::int64_t()> gauge);
  void clear_open_spans_gauge();

  // -- inspection / export -------------------------------------------------
  [[nodiscard]] const std::vector<PhaseNode>& phases() const { return nodes_; }
  [[nodiscard]] const std::vector<HealthSnapshot>& snapshots() const {
    return snapshots_;
  }
  [[nodiscard]] std::vector<TagStats> alloc_stats() const;
  [[nodiscard]] std::uint64_t wall_ns() const;
  /// Sum of inclusive time over root-level phases (no double counting:
  /// nested scopes attribute to their root ancestor exactly once).
  [[nodiscard]] std::uint64_t attributed_ns() const;
  /// Total inclusive time over every node with exactly this name,
  /// regardless of call path (e.g. "net.solve" under both the full and
  /// the incremental re-solve).
  [[nodiscard]] std::uint64_t total_ns(const char* name) const;

  /// flamegraph.pl-compatible collapsed stacks over *host* time:
  /// "engine.dispatch;net.solve 1234" (exclusive microseconds), sorted
  /// lexicographically. Counterpart of obs::flame which renders sim time.
  [[nodiscard]] std::string collapsed_stacks() const;

  /// The "prof" JSON block embedded into every BENCH_fig*.json.
  [[nodiscard]] std::string to_json() const;

 private:
  Profiler() = default;
  int child_of(int parent, const char* name);

  std::vector<PhaseNode> nodes_;
  std::vector<int> stack_;  ///< indices of currently open phases
  std::vector<HealthSnapshot> snapshots_;
  std::function<std::int64_t()> open_spans_gauge_;
  std::chrono::steady_clock::time_point epoch_{};
  std::uint64_t stride_ = 8192;
};

// ---------------------------------------------------------------------------
// RAII scope
// ---------------------------------------------------------------------------

class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name) {
    if (!detail::g_enabled) return;
    node_ = Profiler::instance().enter(name);
    start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhase() {
    if (node_ < 0) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    Profiler::instance().leave(
        node_, static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       elapsed)
                       .count()));
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  std::chrono::steady_clock::time_point start_{};
  int node_ = -1;  ///< -1 = profiler was off at construction
};

// Current resident set / peak resident set of this process in MB.
// Linux-only (reads /proc/self/status and getrusage); returns 0 elsewhere.
[[nodiscard]] double current_rss_mb();
[[nodiscard]] double peak_rss_mb();

#define TLB_PROF_CONCAT_INNER(a, b) a##b
#define TLB_PROF_CONCAT(a, b) TLB_PROF_CONCAT_INNER(a, b)
/// Time this lexical scope under `name` in the profiler's phase tree.
/// `name` must be a string literal (the tree stores the pointer).
#define PROF_SCOPE(name) \
  ::tlb::prof::ScopedPhase TLB_PROF_CONCAT(tlb_prof_scope_, __LINE__)(name)

}  // namespace tlb::prof
