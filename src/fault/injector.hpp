// FaultInjector — schedules a FaultPlan onto a ClusterRuntime.
//
// attach() must be called after constructing the runtime and before run();
// the injector plants one simulator event per injection/recovery instant
// (via ClusterRuntime::schedule_external) and must outlive the run. Each
// event annotates the execution trace with a mark and, when a
// metrics::RecoverySeries is supplied, records the instant there for
// post-run recovery analysis.
//
// Concurrent link perturbations compose: latency and bandwidth multipliers
// multiply, jitter bounds take the maximum, and loss rates combine as
// independent Bernoulli losses (1 - prod(1 - p_i)). When no link event is
// active the nominal interconnect is restored exactly (multipliers of 1.0
// are IEEE-exact no-ops, so a plan of zero-magnitude faults leaves the
// simulated execution bit-identical).
#pragma once

#include <cstddef>
#include <vector>

#include "core/runtime.hpp"
#include "fault/plan.hpp"
#include "metrics/recovery.hpp"

namespace tlb::fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Validates the plan and schedules every event onto `rt`. Call before
  /// rt.run(); `rt` (and `recovery`, if given) must outlive the run, and
  /// so must this injector.
  void attach(core::ClusterRuntime& rt,
              metrics::RecoverySeries* recovery = nullptr);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  void activate(core::ClusterRuntime& rt, std::size_t i,
                metrics::RecoverySeries* recovery);
  void recover(core::ClusterRuntime& rt, std::size_t i,
               metrics::RecoverySeries* recovery);
  /// Re-derives the composed LinkFault from all active link events and
  /// installs it on the runtime.
  void apply_link(core::ClusterRuntime& rt) const;

  FaultPlan plan_;
  std::vector<char> active_;        ///< per event: currently in effect
  std::vector<double> saved_speed_; ///< per event: pre-slowdown node speed
};

}  // namespace tlb::fault
