#include "fault/injector.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tlb::fault {

namespace {

bool is_link_kind(FaultKind kind) {
  return kind == FaultKind::LinkDegrade || kind == FaultKind::MessageLoss;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

void FaultInjector::attach(core::ClusterRuntime& rt,
                           metrics::RecoverySeries* recovery) {
  plan_.validate();
  // Let the runtime report detection verdicts (true/false suspicions with
  // latency, tlb::resil) into the same series as the injections.
  rt.set_recovery_series(recovery);
  const auto& events = plan_.events();
  active_.assign(events.size(), 0);
  saved_speed_.assign(events.size(), 1.0);

  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& ev = events[i];
    rt.schedule_external(ev.at,
                         [this, &rt, i, recovery] { activate(rt, i, recovery); });
    if (ev.recovers()) {
      rt.schedule_external(ev.until,
                           [this, &rt, i, recovery] { recover(rt, i, recovery); });
    }
  }
}

void FaultInjector::activate(core::ClusterRuntime& rt, std::size_t i,
                             metrics::RecoverySeries* recovery) {
  const FaultEvent& ev = plan_.events()[i];
  active_[i] = 1;
  switch (ev.kind) {
    case FaultKind::NodeSlowdown:
      saved_speed_[i] = rt.node_speed(ev.target);
      rt.set_node_speed(ev.target, saved_speed_[i] * ev.factor);
      break;
    case FaultKind::LinkDegrade:
    case FaultKind::MessageLoss:
      apply_link(rt);
      break;
    case FaultKind::WorkerCrash:
      rt.crash_worker(ev.target);
      break;
  }
  const std::string label = ev.label();
  rt.mark_trace(label);
  if (recovery != nullptr) recovery->record(rt.now(), label);
}

void FaultInjector::recover(core::ClusterRuntime& rt, std::size_t i,
                            metrics::RecoverySeries* recovery) {
  const FaultEvent& ev = plan_.events()[i];
  assert(active_[i] && "recovery fired before injection");
  active_[i] = 0;
  switch (ev.kind) {
    case FaultKind::NodeSlowdown:
      // Restore the exact pre-injection speed (overlapping slowdowns of
      // the same node resolve to whichever recovery runs last).
      rt.set_node_speed(ev.target, saved_speed_[i]);
      break;
    case FaultKind::LinkDegrade:
    case FaultKind::MessageLoss:
      apply_link(rt);
      break;
    case FaultKind::WorkerCrash:
      assert(false && "crashes do not recover");
      break;
  }
  const std::string label = ev.label() + " recovered";
  rt.mark_trace(label);
  if (recovery != nullptr) recovery->record(rt.now(), label, true);
}

void FaultInjector::apply_link(core::ClusterRuntime& rt) const {
  vmpi::LinkFault composed;
  double pass_through = 1.0;  // probability a message survives every fault
  const auto& events = plan_.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!active_[i] || !is_link_kind(events[i].kind)) continue;
    const vmpi::LinkFault& f = events[i].link;
    composed.latency_mult *= f.latency_mult;
    composed.bandwidth_mult *= f.bandwidth_mult;
    composed.jitter_max = std::max(composed.jitter_max, f.jitter_max);
    pass_through *= 1.0 - f.loss_rate;
  }
  composed.loss_rate = 1.0 - pass_through;
  rt.set_link_fault(composed);
}

}  // namespace tlb::fault
