#include "fault/plan.hpp"

#include <cstdio>
#include <stdexcept>

namespace tlb::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::NodeSlowdown: return "slowdown";
    case FaultKind::LinkDegrade: return "link-degrade";
    case FaultKind::MessageLoss: return "message-loss";
    case FaultKind::WorkerCrash: return "crash";
  }
  return "?";
}

std::string FaultEvent::label() const {
  char buf[96];
  switch (kind) {
    case FaultKind::NodeSlowdown:
      std::snprintf(buf, sizeof buf, "slowdown(node%d,x%.2f)@%.3g", target,
                    factor, at);
      break;
    case FaultKind::LinkDegrade:
      std::snprintf(buf, sizeof buf, "link-degrade(lat x%.2f,bw x%.2f)@%.3g",
                    link.latency_mult, link.bandwidth_mult, at);
      break;
    case FaultKind::MessageLoss:
      std::snprintf(buf, sizeof buf, "message-loss(p=%.2f)@%.3g",
                    link.loss_rate, at);
      break;
    case FaultKind::WorkerCrash:
      std::snprintf(buf, sizeof buf, "crash(worker%d)@%.3g", target, at);
      break;
  }
  return buf;
}

FaultPlan& FaultPlan::slow_node(int node, double factor, sim::SimTime at,
                                sim::SimTime until) {
  FaultEvent ev;
  ev.kind = FaultKind::NodeSlowdown;
  ev.target = node;
  ev.factor = factor;
  ev.at = at;
  ev.until = until;
  events_.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::degrade_link(double latency_mult, double bandwidth_mult,
                                   sim::SimTime jitter_max, sim::SimTime at,
                                   sim::SimTime until) {
  FaultEvent ev;
  ev.kind = FaultKind::LinkDegrade;
  ev.link.latency_mult = latency_mult;
  ev.link.bandwidth_mult = bandwidth_mult;
  ev.link.jitter_max = jitter_max;
  ev.at = at;
  ev.until = until;
  events_.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::lose_messages(double rate, sim::SimTime at,
                                    sim::SimTime until) {
  FaultEvent ev;
  ev.kind = FaultKind::MessageLoss;
  ev.link.loss_rate = rate;
  ev.at = at;
  ev.until = until;
  events_.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::crash_worker(int worker, sim::SimTime at) {
  FaultEvent ev;
  ev.kind = FaultKind::WorkerCrash;
  ev.target = worker;
  ev.at = at;
  events_.push_back(ev);
  return *this;
}

void FaultPlan::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("FaultPlan: " + what);
  };
  for (const FaultEvent& ev : events_) {
    if (ev.at < 0.0) fail("event time is negative");
    if (ev.recovers() && ev.until < ev.at) {
      fail("recovery precedes injection for " + ev.label());
    }
    switch (ev.kind) {
      case FaultKind::NodeSlowdown:
        if (ev.target < 0) fail("slowdown needs a node");
        if (ev.factor <= 0.0) fail("slowdown factor must be positive");
        break;
      case FaultKind::LinkDegrade:
        if (ev.link.latency_mult <= 0.0 || ev.link.bandwidth_mult <= 0.0) {
          fail("link multipliers must be positive");
        }
        if (ev.link.jitter_max < 0.0) fail("jitter must be non-negative");
        break;
      case FaultKind::MessageLoss:
        if (ev.link.loss_rate < 0.0 || ev.link.loss_rate >= 1.0) {
          fail("loss rate must be in [0, 1)");
        }
        break;
      case FaultKind::WorkerCrash:
        if (ev.target < 0) fail("crash needs a worker");
        if (ev.recovers()) fail("crashes are fail-stop (no recovery)");
        break;
    }
  }
}

}  // namespace tlb::fault
