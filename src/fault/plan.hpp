// Scripted perturbation plans (tlb::fault).
//
// A FaultPlan is a declarative timeline of perturbations to inject into a
// ClusterRuntime execution: node slowdowns (with optional recovery), link
// degradation (latency/bandwidth multipliers, jitter), message loss on the
// interconnect, and fail-stop helper-rank crashes. The plan itself is pure
// data — the FaultInjector schedules it onto a runtime. All randomness
// (loss draws, jitter) is consumed downstream from seeded RNG streams, so
// a faulted run is reproducible from RuntimeConfig::seed alone.
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"
#include "vmpi/comm.hpp"

namespace tlb::fault {

enum class FaultKind {
  NodeSlowdown,  ///< node speed multiplied by `factor` (e.g. 1/3 = 3x slower)
  LinkDegrade,   ///< interconnect latency/bandwidth multipliers + jitter
  MessageLoss,   ///< transmissions lost with probability `link.loss_rate`
  WorkerCrash,   ///< fail-stop crash of a helper rank (never recovers)
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::NodeSlowdown;
  sim::SimTime at = 0.0;
  sim::SimTime until = -1.0;  ///< recovery instant; negative = permanent
  int target = -1;            ///< node (NodeSlowdown) or worker (WorkerCrash)
  double factor = 1.0;        ///< speed multiplier (NodeSlowdown)
  vmpi::LinkFault link;       ///< perturbation (LinkDegrade / MessageLoss)

  [[nodiscard]] bool recovers() const { return until >= 0.0; }
  /// Human-readable tag used for trace marks and recovery reports,
  /// e.g. "slowdown(node2,x0.33)@1.5".
  [[nodiscard]] std::string label() const;
};

/// Builder for perturbation timelines. Events may be added in any order;
/// validate() (called by the injector) checks ranges and invariants.
class FaultPlan {
 public:
  /// Multiplies node `node`'s speed by `factor` at time `at`; the original
  /// speed is restored at `until` (negative = permanent).
  FaultPlan& slow_node(int node, double factor, sim::SimTime at,
                       sim::SimTime until = -1.0);

  /// Degrades the interconnect from `at` to `until`: latency multiplied by
  /// `latency_mult`, bandwidth by `bandwidth_mult` (< 1 = slower), plus a
  /// uniform per-message delay in [0, jitter_max).
  FaultPlan& degrade_link(double latency_mult, double bandwidth_mult,
                          sim::SimTime jitter_max, sim::SimTime at,
                          sim::SimTime until = -1.0);

  /// Loses each transmission attempt with probability `rate` from `at` to
  /// `until`; lost messages are recovered by the vmpi retransmit path.
  FaultPlan& lose_messages(double rate, sim::SimTime at,
                           sim::SimTime until = -1.0);

  /// Fail-stop crash of helper worker `worker` at time `at`.
  FaultPlan& crash_worker(int worker, sim::SimTime at);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Throws std::invalid_argument on malformed plans (negative times,
  /// recovery before injection, out-of-range rates or multipliers).
  void validate() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace tlb::fault
