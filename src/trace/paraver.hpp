// Paraver trace export.
//
// BSC's Paraver is the tool the paper's trace figures were produced with.
// This exporter writes the recorder's busy-core and owned-core series as a
// Paraver event trace (.prv) plus the matching row-label file (.row): one
// Paraver "thread" per (node, apprank) pair, with event type 90000001
// carrying the busy-core count and 90000002 the owned-core count. Typed
// timeline marks (scheduler steer/suppress decisions, fabric congestion
// onsets/clearances) export as the 90000003..90000006 punctual event
// types on thread 1; their values carry the worker or link id. The .pcf
// config file names every event type so Paraver's info panels are
// readable. Times are nanoseconds.
#pragma once

#include <string>

#include "trace/recorder.hpp"

namespace tlb::trace {

inline constexpr int kParaverBusyEvent = 90000001;
inline constexpr int kParaverOwnedEvent = 90000002;
inline constexpr int kParaverSchedSteerEvent = 90000003;
inline constexpr int kParaverSchedSuppressEvent = 90000004;
inline constexpr int kParaverNetCongestionEvent = 90000005;
inline constexpr int kParaverNetClearedEvent = 90000006;

/// The .prv trace body for the recorded run ending at `end`.
std::string to_paraver(const Recorder& recorder, sim::SimTime end);

/// The .row file naming each Paraver thread "node N apprank A".
std::string paraver_row_labels(const Recorder& recorder);

/// The .pcf configuration naming every event type emitted by to_paraver.
std::string paraver_pcf();

}  // namespace tlb::trace
