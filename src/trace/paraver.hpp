// Paraver trace export.
//
// BSC's Paraver is the tool the paper's trace figures were produced with.
// This exporter writes the recorder's busy-core and owned-core series as a
// Paraver event trace (.prv) plus the matching row-label file (.row): one
// Paraver "thread" per (node, apprank) pair, with event type 90000001
// carrying the busy-core count and 90000002 the owned-core count. Times
// are nanoseconds.
#pragma once

#include <string>

#include "trace/recorder.hpp"

namespace tlb::trace {

inline constexpr int kParaverBusyEvent = 90000001;
inline constexpr int kParaverOwnedEvent = 90000002;

/// The .prv trace body for the recorded run ending at `end`.
std::string to_paraver(const Recorder& recorder, sim::SimTime end);

/// The .row file naming each Paraver thread "node N apprank A".
std::string paraver_row_labels(const Recorder& recorder);

}  // namespace tlb::trace
