// Execution trace recorder.
//
// Captures, per (node, apprank):
//   - busy cores: number of cores executing that apprank's tasks on that
//     node (the left-hand traces of Fig 9);
//   - owned cores: DROM ownership (the right-hand traces of Fig 9);
// plus per-node totals and offload statistics. Renderers below turn the
// series into ASCII timelines and CSV for the paper's trace figures.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/step_series.hpp"

namespace tlb::trace {

/// Classification of a timeline mark for the Paraver export. Generic marks
/// render only as ASCII/CSV annotations; the typed kinds additionally map
/// to dedicated Paraver event types (see trace/paraver.hpp).
enum class MarkKind : std::uint8_t {
  Generic,
  SchedSteer,     ///< scheduler redirected an offload (value = worker)
  SchedSuppress,  ///< scheduler suppressed an offload (value = worker)
  NetCongestion,  ///< fabric link became congested (value = link id)
  NetCleared,     ///< fabric link congestion cleared (value = link id)
};

struct TypedMark {
  sim::SimTime t = 0.0;
  MarkKind kind = MarkKind::Generic;
  std::int64_t value = 0;
};

class Recorder {
 public:
  Recorder(int nodes, int appranks);

  [[nodiscard]] int nodes() const { return nodes_; }
  [[nodiscard]] int appranks() const { return appranks_; }

  /// Grows the recorder by one node (elastic scale-out). The node-major
  /// series layout makes this append-only: existing (node, apprank)
  /// indices are unchanged.
  void add_node();

  void busy_delta(sim::SimTime t, int node, int apprank, int delta);
  void set_owned(sim::SimTime t, int node, int apprank, int count);
  void task_executed(int apprank, int node, int home_node, double work);

  /// Annotates the timeline with a labelled instant (fault injections,
  /// recoveries, phase changes). Times must be non-decreasing: a violation
  /// asserts in debug builds and is clamped to the previous mark's time in
  /// release builds, so the series stays sorted either way.
  void mark(sim::SimTime t, std::string label);
  /// Typed variant: records the same labelled mark plus a (kind, value)
  /// record that the Paraver exporter turns into a dedicated event type
  /// (value = worker id for scheduler marks, link id for fabric marks).
  void mark(sim::SimTime t, std::string label, MarkKind kind,
            std::int64_t value);
  [[nodiscard]] const std::vector<std::pair<sim::SimTime, std::string>>&
  marks() const {
    return marks_;
  }
  [[nodiscard]] const std::vector<TypedMark>& typed_marks() const {
    return typed_marks_;
  }

  [[nodiscard]] const StepSeries& busy(int node, int apprank) const;
  [[nodiscard]] const StepSeries& owned(int node, int apprank) const;
  /// Total busy cores on a node (all appranks).
  [[nodiscard]] const StepSeries& node_busy(int node) const;

  // Offload statistics (paper Fig 5 discussion: the global policy
  // minimises task offloading).
  [[nodiscard]] std::uint64_t tasks_total() const { return tasks_total_; }
  [[nodiscard]] std::uint64_t tasks_offloaded() const { return tasks_off_; }
  [[nodiscard]] double work_total() const { return work_total_; }
  [[nodiscard]] double work_offloaded() const { return work_off_; }
  [[nodiscard]] double offload_fraction() const {
    return work_total_ > 0.0 ? work_off_ / work_total_ : 0.0;
  }

 private:
  [[nodiscard]] std::size_t idx(int node, int apprank) const {
    return static_cast<std::size_t>(node) * static_cast<std::size_t>(appranks_) +
           static_cast<std::size_t>(apprank);
  }

  int nodes_;
  int appranks_;
  std::vector<StepSeries> busy_;
  std::vector<StepSeries> owned_;
  std::vector<StepSeries> node_busy_;
  std::vector<std::pair<sim::SimTime, std::string>> marks_;
  std::vector<TypedMark> typed_marks_;
  std::uint64_t tasks_total_ = 0;
  std::uint64_t tasks_off_ = 0;
  double work_total_ = 0.0;
  double work_off_ = 0.0;
};

/// One-line sparkline of binned values scaled to [0, peak]; characters
/// " .:-=+*#%@" from empty to full.
std::string ascii_sparkline(const std::vector<double>& values, double peak);

/// Multi-row ASCII timeline of a set of labelled series over [t0, t1).
std::string ascii_timeline(
    const std::vector<std::pair<std::string, const StepSeries*>>& rows,
    sim::SimTime t0, sim::SimTime t1, int bins, double peak);

/// CSV with one column per labelled series, sampled into `bins` bins.
std::string to_csv(
    const std::vector<std::pair<std::string, const StepSeries*>>& rows,
    sim::SimTime t0, sim::SimTime t1, int bins);

/// One-line marker row aligned with an ascii_timeline of the same [t0, t1)
/// window: '^' at each bin containing one mark, the count digit '2'..'9'
/// when a bin holds several, '#' for ten or more, ' ' elsewhere.
std::string ascii_marks(
    const std::vector<std::pair<sim::SimTime, std::string>>& marks,
    sim::SimTime t0, sim::SimTime t1, int bins);

/// "t,label" CSV of timeline marks.
std::string marks_csv(
    const std::vector<std::pair<sim::SimTime, std::string>>& marks);

}  // namespace tlb::trace
