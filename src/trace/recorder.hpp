// Execution trace recorder.
//
// Captures, per (node, apprank):
//   - busy cores: number of cores executing that apprank's tasks on that
//     node (the left-hand traces of Fig 9);
//   - owned cores: DROM ownership (the right-hand traces of Fig 9);
// plus per-node totals and offload statistics. Renderers below turn the
// series into ASCII timelines and CSV for the paper's trace figures.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/step_series.hpp"

namespace tlb::trace {

class Recorder {
 public:
  Recorder(int nodes, int appranks);

  [[nodiscard]] int nodes() const { return nodes_; }
  [[nodiscard]] int appranks() const { return appranks_; }

  void busy_delta(sim::SimTime t, int node, int apprank, int delta);
  void set_owned(sim::SimTime t, int node, int apprank, int count);
  void task_executed(int apprank, int node, int home_node, double work);

  /// Annotates the timeline with a labelled instant (fault injections,
  /// recoveries, phase changes). Times must be non-decreasing.
  void mark(sim::SimTime t, std::string label);
  [[nodiscard]] const std::vector<std::pair<sim::SimTime, std::string>>&
  marks() const {
    return marks_;
  }

  [[nodiscard]] const StepSeries& busy(int node, int apprank) const;
  [[nodiscard]] const StepSeries& owned(int node, int apprank) const;
  /// Total busy cores on a node (all appranks).
  [[nodiscard]] const StepSeries& node_busy(int node) const;

  // Offload statistics (paper Fig 5 discussion: the global policy
  // minimises task offloading).
  [[nodiscard]] std::uint64_t tasks_total() const { return tasks_total_; }
  [[nodiscard]] std::uint64_t tasks_offloaded() const { return tasks_off_; }
  [[nodiscard]] double work_total() const { return work_total_; }
  [[nodiscard]] double work_offloaded() const { return work_off_; }
  [[nodiscard]] double offload_fraction() const {
    return work_total_ > 0.0 ? work_off_ / work_total_ : 0.0;
  }

 private:
  [[nodiscard]] std::size_t idx(int node, int apprank) const {
    return static_cast<std::size_t>(node) * static_cast<std::size_t>(appranks_) +
           static_cast<std::size_t>(apprank);
  }

  int nodes_;
  int appranks_;
  std::vector<StepSeries> busy_;
  std::vector<StepSeries> owned_;
  std::vector<StepSeries> node_busy_;
  std::vector<std::pair<sim::SimTime, std::string>> marks_;
  std::uint64_t tasks_total_ = 0;
  std::uint64_t tasks_off_ = 0;
  double work_total_ = 0.0;
  double work_off_ = 0.0;
};

/// One-line sparkline of binned values scaled to [0, peak]; characters
/// " .:-=+*#%@" from empty to full.
std::string ascii_sparkline(const std::vector<double>& values, double peak);

/// Multi-row ASCII timeline of a set of labelled series over [t0, t1).
std::string ascii_timeline(
    const std::vector<std::pair<std::string, const StepSeries*>>& rows,
    sim::SimTime t0, sim::SimTime t1, int bins, double peak);

/// CSV with one column per labelled series, sampled into `bins` bins.
std::string to_csv(
    const std::vector<std::pair<std::string, const StepSeries*>>& rows,
    sim::SimTime t0, sim::SimTime t1, int bins);

/// One-line marker row aligned with an ascii_timeline of the same [t0, t1)
/// window: '^' at each bin containing a mark, ' ' elsewhere.
std::string ascii_marks(
    const std::vector<std::pair<sim::SimTime, std::string>>& marks,
    sim::SimTime t0, sim::SimTime t1, int bins);

/// "t,label" CSV of timeline marks.
std::string marks_csv(
    const std::vector<std::pair<sim::SimTime, std::string>>& marks);

}  // namespace tlb::trace
