// Piecewise-constant time series (step function) for traces.
//
// Records counter changes at simulated timestamps (busy cores, owned
// cores, ...) and supports exact time-weighted averaging and binned
// sampling for rendering the paper's trace figures (Figs 5, 9, 10, 11).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/time.hpp"

namespace tlb::trace {

class StepSeries {
 public:
  /// Adds `delta` to the value at time `t`. Times must be non-decreasing.
  void add(sim::SimTime t, double delta);

  /// Sets the absolute value at time `t`. Times must be non-decreasing.
  void set(sim::SimTime t, double value);

  /// Value at time `t` (value of the last change at or before `t`;
  /// 0 before the first change).
  [[nodiscard]] double value_at(sim::SimTime t) const;

  /// Exact time-weighted average over [t0, t1).
  [[nodiscard]] double average(sim::SimTime t0, sim::SimTime t1) const;

  /// Time-weighted average per bin over [t0, t1) split into `bins` equal
  /// intervals (for plotting).
  [[nodiscard]] std::vector<double> sample(sim::SimTime t0, sim::SimTime t1,
                                           int bins) const;

  /// Maximum value ever reached.
  [[nodiscard]] double max_value() const;

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t change_count() const { return points_.size(); }

  /// Raw change points (time, new value), for CSV export.
  [[nodiscard]] const std::vector<std::pair<sim::SimTime, double>>& points()
      const {
    return points_;
  }

 private:
  std::vector<std::pair<sim::SimTime, double>> points_;  // (t, value from t)
};

}  // namespace tlb::trace
