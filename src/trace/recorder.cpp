#include "trace/recorder.hpp"

#include <cassert>
#include <sstream>

namespace tlb::trace {

Recorder::Recorder(int nodes, int appranks)
    : nodes_(nodes),
      appranks_(appranks),
      busy_(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(appranks)),
      owned_(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(appranks)),
      node_busy_(static_cast<std::size_t>(nodes)) {
  assert(nodes > 0 && appranks > 0);
}

void Recorder::add_node() {
  for (int a = 0; a < appranks_; ++a) {
    busy_.emplace_back();
    owned_.emplace_back();
  }
  node_busy_.emplace_back();
  ++nodes_;
}

void Recorder::busy_delta(sim::SimTime t, int node, int apprank, int delta) {
  busy_[idx(node, apprank)].add(t, delta);
  node_busy_[static_cast<std::size_t>(node)].add(t, delta);
}

void Recorder::set_owned(sim::SimTime t, int node, int apprank, int count) {
  owned_[idx(node, apprank)].set(t, count);
}

void Recorder::task_executed(int apprank, int node, int home_node,
                             double work) {
  (void)apprank;
  ++tasks_total_;
  work_total_ += work;
  if (node != home_node) {
    ++tasks_off_;
    work_off_ += work;
  }
}

void Recorder::mark(sim::SimTime t, std::string label) {
  assert(marks_.empty() || t >= marks_.back().first);
  if (!marks_.empty() && t < marks_.back().first) t = marks_.back().first;
  marks_.emplace_back(t, std::move(label));
}

void Recorder::mark(sim::SimTime t, std::string label, MarkKind kind,
                    std::int64_t value) {
  mark(t, std::move(label));
  typed_marks_.push_back(TypedMark{marks_.back().first, kind, value});
}

const StepSeries& Recorder::busy(int node, int apprank) const {
  return busy_[idx(node, apprank)];
}

const StepSeries& Recorder::owned(int node, int apprank) const {
  return owned_[idx(node, apprank)];
}

const StepSeries& Recorder::node_busy(int node) const {
  return node_busy_.at(static_cast<std::size_t>(node));
}

std::string ascii_sparkline(const std::vector<double>& values, double peak) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = static_cast<int>(sizeof(kRamp) - 2);
  std::string out;
  out.reserve(values.size());
  for (double v : values) {
    double frac = peak > 0.0 ? v / peak : 0.0;
    if (frac < 0.0) frac = 0.0;
    if (frac > 1.0) frac = 1.0;
    out.push_back(kRamp[static_cast<int>(frac * kLevels + 0.5)]);
  }
  return out;
}

std::string ascii_timeline(
    const std::vector<std::pair<std::string, const StepSeries*>>& rows,
    sim::SimTime t0, sim::SimTime t1, int bins, double peak) {
  std::size_t label_width = 0;
  for (const auto& [label, series] : rows) {
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream out;
  for (const auto& [label, series] : rows) {
    out << label << std::string(label_width - label.size(), ' ') << " |"
        << ascii_sparkline(series->sample(t0, t1, bins), peak) << "|\n";
  }
  return out.str();
}

std::string to_csv(
    const std::vector<std::pair<std::string, const StepSeries*>>& rows,
    sim::SimTime t0, sim::SimTime t1, int bins) {
  std::ostringstream out;
  out << "time";
  std::vector<std::vector<double>> cols;
  cols.reserve(rows.size());
  for (const auto& [label, series] : rows) {
    out << ',' << label;
    cols.push_back(series->sample(t0, t1, bins));
  }
  out << '\n';
  const double width = (t1 - t0) / bins;
  for (int i = 0; i < bins; ++i) {
    out << (t0 + (i + 0.5) * width);
    for (const auto& col : cols) out << ',' << col[static_cast<std::size_t>(i)];
    out << '\n';
  }
  return out.str();
}

std::string ascii_marks(
    const std::vector<std::pair<sim::SimTime, std::string>>& marks,
    sim::SimTime t0, sim::SimTime t1, int bins) {
  std::string row(static_cast<std::size_t>(bins), ' ');
  if (t1 <= t0) return row;
  std::vector<int> counts(static_cast<std::size_t>(bins), 0);
  for (const auto& [t, label] : marks) {
    if (t < t0 || t >= t1) continue;
    auto bin = static_cast<std::size_t>((t - t0) / (t1 - t0) * bins);
    if (bin >= counts.size()) bin = counts.size() - 1;
    ++counts[bin];
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const int c = counts[i];
    if (c == 0) continue;
    if (c == 1) {
      row[i] = '^';
    } else if (c <= 9) {
      row[i] = static_cast<char>('0' + c);
    } else {
      row[i] = '#';
    }
  }
  return row;
}

std::string marks_csv(
    const std::vector<std::pair<sim::SimTime, std::string>>& marks) {
  std::ostringstream out;
  out << "time,mark\n";
  for (const auto& [t, label] : marks) out << t << ',' << label << '\n';
  return out.str();
}

}  // namespace tlb::trace
