#include "trace/paraver.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

namespace tlb::trace {

namespace {

std::int64_t to_ns(sim::SimTime t) {
  return static_cast<std::int64_t>(t * 1e9 + 0.5);
}

struct EventRecord {
  std::int64_t time;
  int thread;  // 1-based Paraver thread id
  int type;
  std::int64_t value;
};

void collect(const StepSeries& series, int thread, int type,
             std::int64_t end_ns, std::vector<EventRecord>& out) {
  for (const auto& [t, v] : series.points()) {
    const std::int64_t ns = to_ns(t);
    if (ns > end_ns) break;
    out.push_back(EventRecord{ns, thread, type,
                              static_cast<std::int64_t>(v + 0.5)});
  }
}

int mark_event_type(MarkKind kind) {
  switch (kind) {
    case MarkKind::SchedSteer:
      return kParaverSchedSteerEvent;
    case MarkKind::SchedSuppress:
      return kParaverSchedSuppressEvent;
    case MarkKind::NetCongestion:
      return kParaverNetCongestionEvent;
    case MarkKind::NetCleared:
      return kParaverNetClearedEvent;
    case MarkKind::Generic:
      break;
  }
  return 0;
}

}  // namespace

std::string to_paraver(const Recorder& recorder, sim::SimTime end) {
  const int threads = recorder.nodes() * recorder.appranks();
  const std::int64_t end_ns = to_ns(end);

  std::vector<EventRecord> events;
  for (int n = 0; n < recorder.nodes(); ++n) {
    for (int a = 0; a < recorder.appranks(); ++a) {
      const int thread = n * recorder.appranks() + a + 1;
      collect(recorder.busy(n, a), thread, kParaverBusyEvent, end_ns, events);
      collect(recorder.owned(n, a), thread, kParaverOwnedEvent, end_ns,
              events);
    }
  }
  // Typed marks are cluster-global instants; Paraver events need a thread,
  // so they ride on thread 1 with the worker/link id as value.
  for (const TypedMark& m : recorder.typed_marks()) {
    const int type = mark_event_type(m.kind);
    if (type == 0) continue;
    const std::int64_t ns = to_ns(m.t);
    if (ns > end_ns) continue;
    events.push_back(EventRecord{ns, 1, type, m.value});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const EventRecord& x, const EventRecord& y) {
                     return x.time < y.time;
                   });

  std::ostringstream out;
  // Header: #Paraver (date):total_time_ns:resource_model:n_appl:appl_list
  // A single application with `threads` threads on one "node".
  out << "#Paraver (01/01/22 at 00:00):" << end_ns << "_ns:0:1:1("
      << threads << ":1)\n";
  for (const EventRecord& e : events) {
    // Record type 2 = event: 2:cpu:appl:task:thread:time:type:value
    out << "2:" << e.thread << ":1:1:" << e.thread << ':' << e.time << ':'
        << e.type << ':' << e.value << '\n';
  }
  return out.str();
}

std::string paraver_pcf() {
  std::ostringstream out;
  out << "DEFAULT_OPTIONS\n\n"
      << "LEVEL               THREAD\n"
      << "UNITS               NANOSEC\n\n"
      << "DEFAULT_SEMANTIC\n\n"
      << "THREAD_FUNC         State As Is\n\n";
  const std::pair<int, const char*> types[] = {
      {kParaverBusyEvent, "Busy cores (apprank on node)"},
      {kParaverOwnedEvent, "Owned cores (DROM allocation)"},
      {kParaverSchedSteerEvent, "Scheduler steered offload (value: worker)"},
      {kParaverSchedSuppressEvent,
       "Scheduler suppressed offload (value: worker)"},
      {kParaverNetCongestionEvent, "Fabric link congested (value: link)"},
      {kParaverNetClearedEvent, "Fabric link cleared (value: link)"},
  };
  for (const auto& [type, label] : types) {
    out << "EVENT_TYPE\n"
        << "0    " << type << "    " << label << "\n\n";
  }
  return out.str();
}

std::string paraver_row_labels(const Recorder& recorder) {
  std::ostringstream out;
  const int threads = recorder.nodes() * recorder.appranks();
  out << "LEVEL THREAD SIZE " << threads << '\n';
  for (int n = 0; n < recorder.nodes(); ++n) {
    for (int a = 0; a < recorder.appranks(); ++a) {
      out << "node " << n << " apprank " << a << '\n';
    }
  }
  return out.str();
}

}  // namespace tlb::trace
