#include "trace/step_series.hpp"

#include <algorithm>
#include <cassert>

namespace tlb::trace {

void StepSeries::add(sim::SimTime t, double delta) {
  const double prev = points_.empty() ? 0.0 : points_.back().second;
  set(t, prev + delta);
}

void StepSeries::set(sim::SimTime t, double value) {
  if (!points_.empty()) {
    assert(t >= points_.back().first && "series times must be non-decreasing");
    if (points_.back().first == t) {
      points_.back().second = value;
      return;
    }
    if (points_.back().second == value) return;  // no change
  }
  points_.emplace_back(t, value);
}

double StepSeries::value_at(sim::SimTime t) const {
  // Last point with time <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](sim::SimTime x, const auto& p) { return x < p.first; });
  if (it == points_.begin()) return 0.0;
  return std::prev(it)->second;
}

double StepSeries::average(sim::SimTime t0, sim::SimTime t1) const {
  assert(t1 >= t0);
  if (t1 <= t0) return value_at(t0);
  double integral = 0.0;
  double current = value_at(t0);
  sim::SimTime cursor = t0;
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t0,
      [](sim::SimTime x, const auto& p) { return x < p.first; });
  for (; it != points_.end() && it->first < t1; ++it) {
    integral += current * (it->first - cursor);
    cursor = it->first;
    current = it->second;
  }
  integral += current * (t1 - cursor);
  return integral / (t1 - t0);
}

std::vector<double> StepSeries::sample(sim::SimTime t0, sim::SimTime t1,
                                       int bins) const {
  assert(bins > 0 && t1 > t0);
  std::vector<double> out(static_cast<std::size_t>(bins));
  const double width = (t1 - t0) / bins;
  for (int i = 0; i < bins; ++i) {
    out[static_cast<std::size_t>(i)] =
        average(t0 + i * width, t0 + (i + 1) * width);
  }
  return out;
}

double StepSeries::max_value() const {
  double m = 0.0;
  for (const auto& [t, v] : points_) m = std::max(m, v);
  return m;
}

}  // namespace tlb::trace
