// Bounded-memory streaming span backend (tlb::stream).
//
// StreamSink implements the obs::SpanSink interface with the exact
// semantics of obs::SpanCollector — first-readiness-only ready edges, the
// transfer-wait integral folded in at exec_begin, rescue instants, sched
// verdict instants for non-baseline decisions — but keeps only *open*
// spans in memory: a span is serialized to the spill file the moment its
// task_done arrives and its record is dropped from the working set, so
// resident span memory is bounded by the in-flight task count (peak
// concurrency), not the total task count. Instant events are spilled
// immediately in emission order. The runtime closes the sink at
// finalize(), which flushes the spans still open (crashed-out or
// never-finished tasks), the footer aggregates, and the seekable trailer.
//
// Determinism contract (same as the collector): the sink only records.
// It never posts engine events, reads RNG streams, or feeds back into
// scheduling — a run with the stream backend enabled is bit-identical
// (same schedule fingerprint, same event count) to one without.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "stream/config.hpp"
#include "stream/record.hpp"

namespace tlb::stream {

class StreamSink final : public obs::SpanSink {
 public:
  /// Opens (truncates) config.path and writes the header. Throws
  /// std::runtime_error when the file cannot be created.
  explicit StreamSink(StreamConfig config);
  ~StreamSink() override;

  StreamSink(const StreamSink&) = delete;
  StreamSink& operator=(const StreamSink&) = delete;

  // --- obs::SpanSink hooks (SpanCollector-equivalent semantics) --------------
  void task_created(nanos::TaskId id, int apprank, sim::SimTime t) override;
  void task_ready(nanos::TaskId id, sim::SimTime t) override;
  void task_scheduled(nanos::TaskId id, int worker, int node, bool offloaded,
                      sim::SimTime t) override;
  void sched_decision(nanos::TaskId id, obs::SchedVerdict verdict, int worker,
                      sim::SimTime t) override;
  void transfer_begin(nanos::TaskId id, std::uint64_t bytes, int node,
                      sim::SimTime t) override;
  void transfer_end(nanos::TaskId id, sim::SimTime t) override;
  void exec_begin(nanos::TaskId id, int worker, int node, int core,
                  sim::SimTime t) override;
  void exec_end(nanos::TaskId id, sim::SimTime t) override;
  void task_done(nanos::TaskId id, sim::SimTime t) override;
  void task_rescued(nanos::TaskId id, int worker, sim::SimTime t) override;
  void link_congestion(int link, const std::string& name, bool congested,
                       sim::SimTime t) override;

  /// Appends one windowed metric snapshot (the runtime calls this at
  /// every global barrier with its cumulative engine counters).
  void metric_window(int epoch, sim::SimTime t_end,
                     std::uint64_t events_fired);

  /// Spills every still-open span (id order), writes the footer and the
  /// trailer, flushes, and closes the file. Idempotent; called by the
  /// destructor if the runtime did not.
  void close();

  // --- live aggregates (mirror SpanCollector's accessors) --------------------
  [[nodiscard]] double transfer_wait_core_seconds() const {
    return transfer_wait_;
  }
  [[nodiscard]] std::uint64_t rescues() const { return rescues_; }
  /// Finished spans written to the spill file so far.
  [[nodiscard]] std::uint64_t spans_spilled() const { return spans_spilled_; }
  /// Spans currently resident (open tasks) — the bounded working set.
  [[nodiscard]] std::size_t open_spans() const { return open_.size(); }
  /// High-water mark of the resident working set.
  [[nodiscard]] std::size_t peak_open_spans() const { return peak_open_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] const std::string& path() const { return config_.path; }

 private:
  using TaskSpan = obs::SpanCollector::TaskSpan;
  using Attempt = obs::SpanCollector::Attempt;

  TaskSpan& at(nanos::TaskId id);
  Attempt* open_attempt(nanos::TaskId id);
  void spill_span(const TaskSpan& span);
  void spill_instant(sim::SimTime t, const std::string& name, int node);
  void begin_record(RecordType type);
  void end_record();
  void flush_if_full();

  // Little scalar appenders into buffer_.
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i32(std::int32_t v);
  void put_f64(double v);
  void put_bytes(const void* data, std::size_t n);

  StreamConfig config_;
  std::FILE* file_ = nullptr;
  std::vector<unsigned char> buffer_;
  std::size_t record_start_ = 0;  ///< buffer offset of the open record

  /// Open spans, keyed by task id. An ordered map so the end-of-run
  /// spill of never-finished tasks walks in id order (deterministic
  /// files for deterministic runs).
  std::map<nanos::TaskId, TaskSpan> open_;
  std::size_t peak_open_ = 0;

  double transfer_wait_ = 0.0;
  std::uint64_t rescues_ = 0;
  std::uint64_t spans_spilled_ = 0;
  std::uint64_t instants_written_ = 0;
  std::uint64_t windows_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  sim::SimTime last_window_end_ = 0.0;
  bool closed_ = false;
};

}  // namespace tlb::stream
