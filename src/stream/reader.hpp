// Spill-file reader: reconstructs a SpanCollector-equivalent view
// (tlb::stream).
//
// StreamReader parses the binary file a StreamSink wrote and rebuilds an
// obs::SpanCollector — spans at their dense task-id slots, instants in
// original emission order, aggregates installed verbatim — so every
// existing exporter (obs::chrome_trace_json, obs::collapsed_stacks,
// obs::critical_path) runs unchanged on streamed runs. Windowed metric
// snapshots are exposed alongside.
//
// Validation: the header magic/version, the trailer (footer offset +
// closing magic), every record prelude/payload bound, and the footer's
// record counts are all checked while scanning. Malformed input throws
// std::runtime_error naming the file and the exact byte offset, so a
// truncated or corrupted spill is a diagnosable error, never garbage
// spans.
#pragma once

#include <string>
#include <vector>

#include "obs/span.hpp"
#include "stream/record.hpp"

namespace tlb::stream {

class StreamReader {
 public:
  /// Reads and parses the whole spill file eagerly. Throws
  /// std::runtime_error (with file name + byte offset) on any
  /// open/format/truncation error.
  explicit StreamReader(std::string path);

  /// The reconstructed collector view (spans dense by task id, instants
  /// in emission order, aggregates restored). Feed to the obs exporters.
  [[nodiscard]] const obs::SpanCollector& spans() const { return spans_; }

  /// Windowed metric snapshots, in capture (barrier-epoch) order.
  [[nodiscard]] const std::vector<MetricWindow>& windows() const {
    return windows_;
  }

  [[nodiscard]] const Footer& footer() const { return footer_; }
  [[nodiscard]] std::uint64_t span_records() const {
    return footer_.span_records;
  }

 private:
  obs::SpanCollector spans_;
  std::vector<MetricWindow> windows_;
  Footer footer_;
};

}  // namespace tlb::stream
