// Configuration of the streaming telemetry backend (tlb::stream).
//
// Dependency-free on purpose: obs/config.hpp embeds this struct so the
// stream backend is selectable as RuntimeConfig::obs.stream, but tlb_obs
// never links tlb_stream (the runtime constructs the sink).
#pragma once

#include <cstddef>
#include <string>

namespace tlb::stream {

struct StreamConfig {
  /// Master switch. When set the runtime records task lifecycle spans
  /// through a stream::StreamSink instead of the in-memory
  /// obs::SpanCollector: finished spans are serialized to `path` as they
  /// complete and only *open* spans stay resident, so span memory is
  /// bounded by the in-flight task count instead of the total task count.
  /// Pure recording like the collector — schedules stay bit-identical
  /// whether the stream backend, the collector, or neither is active.
  bool enabled = false;

  /// Spill file the binary span records are appended to. Created (or
  /// truncated) when the runtime constructs the sink.
  std::string path = "tlb_spans.stream";

  /// Write-buffer size in bytes: records are staged in memory and handed
  /// to the OS in chunks of this size, so the spill path costs one
  /// buffered memcpy per record, not one syscall.
  std::size_t buffer_bytes = 1 << 20;
};

}  // namespace tlb::stream
