#include "stream/sink.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "prof/prof.hpp"

namespace tlb::stream {

StreamSink::StreamSink(StreamConfig config) : config_(std::move(config)) {
  file_ = std::fopen(config_.path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("stream: cannot create spill file " +
                             config_.path);
  }
  buffer_.reserve(std::max<std::size_t>(config_.buffer_bytes, 4096));
  put_bytes(kHeaderMagic, sizeof(kHeaderMagic));
  put_u32(kFormatVersion);
  put_u32(0);  // reserved
}

StreamSink::~StreamSink() { close(); }

// --- buffered little-scalar writers -------------------------------------------

void StreamSink::put_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  buffer_.insert(buffer_.end(), p, p + n);
  bytes_written_ += n;
}

void StreamSink::put_u8(std::uint8_t v) { put_bytes(&v, sizeof(v)); }
void StreamSink::put_u32(std::uint32_t v) { put_bytes(&v, sizeof(v)); }
void StreamSink::put_u64(std::uint64_t v) { put_bytes(&v, sizeof(v)); }
void StreamSink::put_i32(std::int32_t v) { put_bytes(&v, sizeof(v)); }
void StreamSink::put_f64(double v) { put_bytes(&v, sizeof(v)); }

void StreamSink::begin_record(RecordType type) {
  record_start_ = buffer_.size();
  put_u8(static_cast<std::uint8_t>(type));
  put_u32(0);  // payload size, patched by end_record()
}

void StreamSink::end_record() {
  const std::size_t payload =
      buffer_.size() - record_start_ - kRecordPreludeBytes;
  const auto size32 = static_cast<std::uint32_t>(payload);
  std::memcpy(buffer_.data() + record_start_ + 1, &size32, sizeof(size32));
  flush_if_full();
}

void StreamSink::flush_if_full() {
  if (buffer_.size() < config_.buffer_bytes) return;
  PROF_SCOPE("stream.flush");
  if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
      buffer_.size()) {
    throw std::runtime_error("stream: short write to " + config_.path);
  }
  buffer_.clear();
}

// --- span bookkeeping (SpanCollector-equivalent) ------------------------------

auto StreamSink::at(nanos::TaskId id) -> TaskSpan& {
  const std::size_t before = open_.size();
  TaskSpan& s = open_[id];
  if (open_.size() != before) {
    // Charged per open span; released when the span spills (task_done /
    // close). The bounded working set is exactly what this tag tracks.
    prof::alloc_note(prof::AllocTag::ObsSpan, sizeof(TaskSpan));
  }
  peak_open_ = std::max(peak_open_, open_.size());
  return s;
}

auto StreamSink::open_attempt(nanos::TaskId id) -> Attempt* {
  auto it = open_.find(id);
  assert(it != open_.end() && "attempt events on a closed/unknown span");
  assert(!it->second.attempts.empty() &&
         "attempt events before task_scheduled");
  return &it->second.attempts.back();
}

void StreamSink::task_created(nanos::TaskId id, int apprank, sim::SimTime t) {
  TaskSpan& s = at(id);
  s.id = id;
  s.apprank = apprank;
  s.created_at = t;
}

void StreamSink::task_ready(nanos::TaskId id, sim::SimTime t) {
  TaskSpan& s = at(id);
  // First readiness only — a rescue's re-queue keeps the original edge
  // (same rule as SpanCollector::task_ready).
  if (s.ready_at < 0.0) s.ready_at = t;
}

void StreamSink::task_scheduled(nanos::TaskId id, int worker, int node,
                                bool offloaded, sim::SimTime t) {
  Attempt a;
  a.worker = worker;
  a.node = node;
  a.offloaded = offloaded;
  a.scheduled_at = t;
  prof::alloc_note(prof::AllocTag::ObsSpan, sizeof(Attempt));
  at(id).attempts.push_back(a);
}

void StreamSink::sched_decision(nanos::TaskId id, obs::SchedVerdict verdict,
                                int worker, sim::SimTime t) {
  at(id).verdict = verdict;
  if (verdict == obs::SchedVerdict::Baseline) return;
  spill_instant(t,
                (verdict == obs::SchedVerdict::Steered
                     ? "sched steer task "
                     : "sched suppress task ") +
                    std::to_string(id),
                worker);
}

void StreamSink::transfer_begin(nanos::TaskId id, std::uint64_t bytes,
                                int node, sim::SimTime t) {
  Attempt* a = open_attempt(id);
  a->transfer_start = t;
  a->transfer_bytes = bytes;
  (void)node;
}

void StreamSink::transfer_end(nanos::TaskId id, sim::SimTime t) {
  open_attempt(id)->transfer_end = t;
}

void StreamSink::exec_begin(nanos::TaskId id, int worker, int node, int core,
                            sim::SimTime t) {
  Attempt* a = open_attempt(id);
  a->worker = worker;
  a->node = node;
  a->core = core;
  a->exec_start = t;
  // Same accumulation rule as the collector: a transfer with both edges
  // observed stalled the pipeline up to exec_start at most.
  if (a->transfer_start >= 0.0 && a->transfer_end >= 0.0) {
    transfer_wait_ +=
        std::max(0.0, std::min(a->transfer_end, t) - a->transfer_start);
  }
}

void StreamSink::exec_end(nanos::TaskId id, sim::SimTime t) {
  open_attempt(id)->exec_end = t;
}

void StreamSink::task_done(nanos::TaskId id, sim::SimTime t) {
  TaskSpan& s = at(id);
  s.done_at = t;
  spill_span(s);
  prof::free_note(prof::AllocTag::ObsSpan,
                  sizeof(TaskSpan) + s.attempts.size() * sizeof(Attempt));
  open_.erase(id);
  ++spans_spilled_;
}

void StreamSink::task_rescued(nanos::TaskId id, int worker, sim::SimTime t) {
  auto it = open_.find(id);
  if (it != open_.end() && !it->second.attempts.empty()) {
    it->second.attempts.back().rescued = true;
  }
  ++rescues_;
  spill_instant(t, "rescue task " + std::to_string(id), worker);
}

void StreamSink::link_congestion(int link, const std::string& name,
                                 bool congested, sim::SimTime t) {
  (void)link;
  spill_instant(
      t, (congested ? "net congestion: " : "net cleared: ") + name, -1);
}

// --- serialization ------------------------------------------------------------

void StreamSink::spill_span(const TaskSpan& span) {
  PROF_SCOPE("stream.spill");
  begin_record(RecordType::TaskSpan);
  put_u64(static_cast<std::uint64_t>(span.id));
  put_i32(span.apprank);
  put_f64(span.created_at);
  put_f64(span.ready_at);
  put_f64(span.done_at);
  put_u8(static_cast<std::uint8_t>(span.verdict));
  put_u32(static_cast<std::uint32_t>(span.attempts.size()));
  for (const Attempt& a : span.attempts) {
    put_i32(a.worker);
    put_i32(a.node);
    put_i32(a.core);
    put_f64(a.scheduled_at);
    put_f64(a.transfer_start);
    put_f64(a.transfer_end);
    put_f64(a.exec_start);
    put_f64(a.exec_end);
    put_u64(a.transfer_bytes);
    put_u8(a.offloaded ? 1 : 0);
    put_u8(a.rescued ? 1 : 0);
  }
  end_record();
}

void StreamSink::spill_instant(sim::SimTime t, const std::string& name,
                               int node) {
  begin_record(RecordType::Instant);
  put_f64(t);
  put_i32(node);
  put_u32(static_cast<std::uint32_t>(name.size()));
  put_bytes(name.data(), name.size());
  end_record();
  ++instants_written_;
}

void StreamSink::metric_window(int epoch, sim::SimTime t_end,
                               std::uint64_t events_fired) {
  begin_record(RecordType::MetricWindow);
  put_i32(epoch);
  put_f64(last_window_end_);
  put_f64(t_end);
  put_u64(events_fired);
  put_u64(spans_spilled_);
  put_u64(instants_written_);
  put_f64(transfer_wait_);
  put_u64(rescues_);
  end_record();
  last_window_end_ = t_end;
  ++windows_written_;
}

void StreamSink::close() {
  if (closed_) return;
  closed_ = true;

  // Spill whatever never finished (id order: open_ is an ordered map).
  // Their done_at stays -1, same as an unfinished span in the collector.
  std::uint64_t open_count = 0;
  for (const auto& [id, span] : open_) {
    (void)id;
    spill_span(span);
    prof::free_note(
        prof::AllocTag::ObsSpan,
        sizeof(TaskSpan) + span.attempts.size() * sizeof(Attempt));
    ++spans_spilled_;
    ++open_count;
  }
  open_.clear();

  const std::uint64_t footer_offset = bytes_written_;
  begin_record(RecordType::Footer);
  put_f64(transfer_wait_);
  put_u64(rescues_);
  put_u64(spans_spilled_);
  put_u64(instants_written_);
  put_u64(windows_written_);
  put_u64(open_count);
  end_record();

  put_u64(footer_offset);
  put_bytes(kTrailerMagic, sizeof(kTrailerMagic));

  if (file_ != nullptr) {
    if (!buffer_.empty() &&
        std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
            buffer_.size()) {
      std::fclose(file_);
      file_ = nullptr;
      throw std::runtime_error("stream: short write to " + config_.path);
    }
    buffer_.clear();
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace tlb::stream
