// Binary record format of the span spill file (tlb::stream).
//
// Layout (all integers little-endian, doubles IEEE-754 binary64 in their
// native byte order — the file is a same-machine artifact, not a wire
// format):
//
//   [header]   8-byte magic "TLBSTRM1", u32 version, u32 reserved
//   [records]  repeated: u8 type, u32 payload_size, payload
//   [footer]   a Footer record (type 4): run aggregates + record counts
//   [trailer]  u64 footer_offset, 8-byte magic "TLBSTRME"
//
// Record types:
//   1 TaskSpan     — one finished (or end-of-run open) task lifecycle
//   2 Instant      — one instant event (sched verdicts, congestion marks,
//                    rescues), spilled immediately in emission order
//   3 MetricWindow — one windowed snapshot of engine/telemetry counters,
//                    written at each global barrier
//   4 Footer       — aggregates (transfer-wait integral, rescue count)
//                    plus the record counts a reader validates against
//
// The trailer lets a reader seek straight to the footer; a missing or
// damaged trailer (crash mid-run) is detected before any record is
// trusted. Readers report malformed input with the exact byte offset.
#pragma once

#include <cstdint>

namespace tlb::stream {

inline constexpr char kHeaderMagic[8] = {'T', 'L', 'B', 'S',
                                         'T', 'R', 'M', '1'};
inline constexpr char kTrailerMagic[8] = {'T', 'L', 'B', 'S',
                                          'T', 'R', 'M', 'E'};
inline constexpr std::uint32_t kFormatVersion = 1;

enum class RecordType : std::uint8_t {
  TaskSpan = 1,
  Instant = 2,
  MetricWindow = 3,
  Footer = 4,
};

/// Fixed-size prelude of every record: the type tag and the payload size
/// that follows it.
inline constexpr std::size_t kRecordPreludeBytes =
    sizeof(std::uint8_t) + sizeof(std::uint32_t);

/// One windowed snapshot of cumulative telemetry counters, captured at a
/// global barrier. Counters are cumulative-at-capture (not per-window
/// deltas) so a truncated stream still yields correct totals up to the
/// last intact window; readers difference consecutive rows for rates.
struct MetricWindow {
  int epoch = -1;              ///< barrier epoch (iteration index)
  double t_begin = 0.0;        ///< window start (previous capture / run start)
  double t_end = 0.0;          ///< capture time
  std::uint64_t events_fired = 0;   ///< engine events fired so far
  std::uint64_t spans_spilled = 0;  ///< finished spans written so far
  std::uint64_t instants = 0;       ///< instant events written so far
  double transfer_wait_core_s = 0.0;  ///< transfer-wait integral so far
  std::uint64_t rescues = 0;          ///< rescues observed so far
};

/// Footer payload: the run aggregates obs::SpanCollector keeps in memory,
/// plus the record counts the reader cross-checks while scanning.
struct Footer {
  double transfer_wait_core_s = 0.0;
  std::uint64_t rescues = 0;
  std::uint64_t span_records = 0;
  std::uint64_t instant_records = 0;
  std::uint64_t window_records = 0;
  std::uint64_t open_spans = 0;  ///< spans still open at close (no done_at)
};

}  // namespace tlb::stream
