#include "stream/reader.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace tlb::stream {

namespace {

/// Bounds-checked little cursor over the loaded file. Every read failure
/// throws with the file name and the byte offset where parsing stopped.
struct Cursor {
  const std::string& path;
  const std::vector<unsigned char>& data;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error(path + ": offset " + std::to_string(pos) + ": " +
                             message);
  }
  void need(std::size_t n, const char* what) const {
    if (pos + n > data.size()) {
      fail(std::string("truncated ") + what + " (need " + std::to_string(n) +
           " bytes, have " + std::to_string(data.size() - pos) + ")");
    }
  }
  template <typename T>
  T get(const char* what) {
    need(sizeof(T), what);
    T v;
    std::memcpy(&v, data.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }
  std::string get_string(std::size_t n, const char* what) {
    need(n, what);
    std::string s(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return s;
  }
};

std::vector<unsigned char> load_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error(path + ": cannot open spill file");
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<unsigned char> data(size > 0 ? static_cast<std::size_t>(size)
                                           : 0);
  if (!data.empty() &&
      std::fread(data.data(), 1, data.size(), f) != data.size()) {
    std::fclose(f);
    throw std::runtime_error(path + ": short read");
  }
  std::fclose(f);
  return data;
}

}  // namespace

StreamReader::StreamReader(std::string path) {
  const std::vector<unsigned char> data = load_file(path);
  Cursor c{path, data, 0};

  // Header.
  constexpr std::size_t kHeaderBytes =
      sizeof(kHeaderMagic) + 2 * sizeof(std::uint32_t);
  constexpr std::size_t kTrailerBytes =
      sizeof(std::uint64_t) + sizeof(kTrailerMagic);
  c.need(kHeaderBytes, "header");
  if (std::memcmp(data.data(), kHeaderMagic, sizeof(kHeaderMagic)) != 0) {
    c.fail("bad header magic (not a tlb stream spill file)");
  }
  c.pos = sizeof(kHeaderMagic);
  const auto version = c.get<std::uint32_t>("header version");
  if (version != kFormatVersion) {
    c.fail("unsupported format version " + std::to_string(version));
  }
  (void)c.get<std::uint32_t>("header reserved");

  // Trailer: validated before any record is trusted, so a run that died
  // mid-spill (no close()) is reported as truncation, not parsed as far
  // as the corruption happens to allow.
  if (data.size() < kHeaderBytes + kTrailerBytes) {
    c.pos = data.size();
    c.fail("file too small for trailer (stream not closed?)");
  }
  Cursor t{path, data, data.size() - kTrailerBytes};
  const auto footer_offset = t.get<std::uint64_t>("trailer footer offset");
  if (std::memcmp(data.data() + t.pos, kTrailerMagic,
                  sizeof(kTrailerMagic)) != 0) {
    t.fail("bad trailer magic (stream not closed or truncated)");
  }
  if (footer_offset < kHeaderBytes ||
      footer_offset >= data.size() - kTrailerBytes) {
    t.pos = data.size() - kTrailerBytes;
    t.fail("footer offset " + std::to_string(footer_offset) +
           " out of bounds");
  }

  // Records, header to trailer.
  const std::size_t end = data.size() - kTrailerBytes;
  std::uint64_t spans = 0, instants = 0, windows = 0;
  bool saw_footer = false;
  while (c.pos < end) {
    const std::size_t record_at = c.pos;
    const auto type = c.get<std::uint8_t>("record type");
    const auto payload = c.get<std::uint32_t>("record size");
    const std::size_t payload_end = c.pos + payload;
    if (payload_end > end) {
      c.pos = record_at;
      c.fail("record payload of " + std::to_string(payload) +
             " bytes overruns the file");
    }
    switch (static_cast<RecordType>(type)) {
      case RecordType::TaskSpan: {
        obs::SpanCollector::TaskSpan s;
        s.id = static_cast<nanos::TaskId>(c.get<std::uint64_t>("span id"));
        s.apprank = c.get<std::int32_t>("span apprank");
        s.created_at = c.get<double>("span created_at");
        s.ready_at = c.get<double>("span ready_at");
        s.done_at = c.get<double>("span done_at");
        s.verdict =
            static_cast<obs::SchedVerdict>(c.get<std::uint8_t>("verdict"));
        const auto attempts = c.get<std::uint32_t>("attempt count");
        s.attempts.reserve(attempts);
        for (std::uint32_t i = 0; i < attempts; ++i) {
          obs::SpanCollector::Attempt a;
          a.worker = c.get<std::int32_t>("attempt worker");
          a.node = c.get<std::int32_t>("attempt node");
          a.core = c.get<std::int32_t>("attempt core");
          a.scheduled_at = c.get<double>("attempt scheduled_at");
          a.transfer_start = c.get<double>("attempt transfer_start");
          a.transfer_end = c.get<double>("attempt transfer_end");
          a.exec_start = c.get<double>("attempt exec_start");
          a.exec_end = c.get<double>("attempt exec_end");
          a.transfer_bytes = c.get<std::uint64_t>("attempt bytes");
          a.offloaded = c.get<std::uint8_t>("attempt offloaded") != 0;
          a.rescued = c.get<std::uint8_t>("attempt rescued") != 0;
          s.attempts.push_back(a);
        }
        spans_.restore_span(std::move(s));
        ++spans;
        break;
      }
      case RecordType::Instant: {
        obs::SpanCollector::InstantEvent e;
        e.t = c.get<double>("instant time");
        e.node = c.get<std::int32_t>("instant node");
        const auto len = c.get<std::uint32_t>("instant name length");
        e.name = c.get_string(len, "instant name");
        spans_.restore_instant(std::move(e));
        ++instants;
        break;
      }
      case RecordType::MetricWindow: {
        MetricWindow w;
        w.epoch = c.get<std::int32_t>("window epoch");
        w.t_begin = c.get<double>("window t_begin");
        w.t_end = c.get<double>("window t_end");
        w.events_fired = c.get<std::uint64_t>("window events_fired");
        w.spans_spilled = c.get<std::uint64_t>("window spans_spilled");
        w.instants = c.get<std::uint64_t>("window instants");
        w.transfer_wait_core_s = c.get<double>("window transfer_wait");
        w.rescues = c.get<std::uint64_t>("window rescues");
        windows_.push_back(w);
        ++windows;
        break;
      }
      case RecordType::Footer: {
        if (record_at != footer_offset) {
          c.pos = record_at;
          c.fail("footer record at unexpected offset (trailer says " +
                 std::to_string(footer_offset) + ")");
        }
        footer_.transfer_wait_core_s = c.get<double>("footer transfer_wait");
        footer_.rescues = c.get<std::uint64_t>("footer rescues");
        footer_.span_records = c.get<std::uint64_t>("footer span count");
        footer_.instant_records =
            c.get<std::uint64_t>("footer instant count");
        footer_.window_records = c.get<std::uint64_t>("footer window count");
        footer_.open_spans = c.get<std::uint64_t>("footer open spans");
        saw_footer = true;
        break;
      }
      default:
        c.pos = record_at;
        c.fail("unknown record type " + std::to_string(type));
    }
    if (c.pos != payload_end) {
      c.fail("record payload size mismatch (declared " +
             std::to_string(payload) + ", consumed " +
             std::to_string(c.pos - record_at - kRecordPreludeBytes) + ")");
    }
  }
  if (!saw_footer) {
    c.fail("missing footer record");
  }
  if (spans != footer_.span_records || instants != footer_.instant_records ||
      windows != footer_.window_records) {
    c.fail("record counts disagree with footer (spans " +
           std::to_string(spans) + "/" +
           std::to_string(footer_.span_records) + ", instants " +
           std::to_string(instants) + "/" +
           std::to_string(footer_.instant_records) + ", windows " +
           std::to_string(windows) + "/" +
           std::to_string(footer_.window_records) + ")");
  }
  spans_.restore_aggregates(footer_.transfer_wait_core_s, footer_.rescues);
}

}  // namespace tlb::stream
