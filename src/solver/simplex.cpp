#include "solver/simplex.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace tlb::solver {

namespace {
constexpr double kEps = 1e-9;
}

std::optional<SimplexSolution> solve_lp(const LinearProgram& lp) {
  const int m = static_cast<int>(lp.a.size());
  const int n = m > 0 ? static_cast<int>(lp.a[0].size())
                      : static_cast<int>(lp.c.size());
  assert(static_cast<int>(lp.b.size()) == m);
  assert(static_cast<int>(lp.c.size()) == n);
#ifndef NDEBUG
  for (double bi : lp.b) assert(bi >= -kEps && "solve_lp requires b >= 0");
#endif

  // Tableau: m rows of [A | I | b], objective row of [-c | 0 | 0].
  const int cols = n + m + 1;
  std::vector<std::vector<double>> t(
      static_cast<std::size_t>(m + 1),
      std::vector<double>(static_cast<std::size_t>(cols), 0.0));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) t[i][static_cast<std::size_t>(j)] = lp.a[i][static_cast<std::size_t>(j)];
    t[i][static_cast<std::size_t>(n + i)] = 1.0;
    t[i][static_cast<std::size_t>(cols - 1)] = lp.b[static_cast<std::size_t>(i)];
  }
  for (int j = 0; j < n; ++j) t[static_cast<std::size_t>(m)][static_cast<std::size_t>(j)] = -lp.c[static_cast<std::size_t>(j)];

  std::vector<int> basis(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) basis[static_cast<std::size_t>(i)] = n + i;

  while (true) {
    // Bland's rule: entering variable = smallest index with negative
    // reduced cost.
    int pivot_col = -1;
    for (int j = 0; j < n + m; ++j) {
      if (t[static_cast<std::size_t>(m)][static_cast<std::size_t>(j)] < -kEps) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col < 0) break;  // optimal

    // Ratio test; Bland tie-break on smallest basis index.
    int pivot_row = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m; ++i) {
      const double aij = t[static_cast<std::size_t>(i)][static_cast<std::size_t>(pivot_col)];
      if (aij > kEps) {
        const double ratio = t[static_cast<std::size_t>(i)][static_cast<std::size_t>(cols - 1)] / aij;
        if (ratio < best_ratio - kEps ||
            (std::abs(ratio - best_ratio) <= kEps && pivot_row >= 0 &&
             basis[static_cast<std::size_t>(i)] <
                 basis[static_cast<std::size_t>(pivot_row)])) {
          best_ratio = ratio;
          pivot_row = i;
        }
      }
    }
    if (pivot_row < 0) return std::nullopt;  // unbounded

    // Pivot.
    const double pivot = t[static_cast<std::size_t>(pivot_row)][static_cast<std::size_t>(pivot_col)];
    for (double& v : t[static_cast<std::size_t>(pivot_row)]) v /= pivot;
    for (int i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      const double factor = t[static_cast<std::size_t>(i)][static_cast<std::size_t>(pivot_col)];
      if (std::abs(factor) <= kEps) continue;
      for (int j = 0; j < cols; ++j) {
        t[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] -=
            factor * t[static_cast<std::size_t>(pivot_row)][static_cast<std::size_t>(j)];
      }
    }
    basis[static_cast<std::size_t>(pivot_row)] = pivot_col;
  }

  SimplexSolution sol;
  sol.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < m; ++i) {
    if (basis[static_cast<std::size_t>(i)] < n) {
      sol.x[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])] =
          t[static_cast<std::size_t>(i)][static_cast<std::size_t>(cols - 1)];
    }
  }
  sol.objective = t[static_cast<std::size_t>(m)][static_cast<std::size_t>(cols - 1)];
  return sol;
}

}  // namespace tlb::solver
