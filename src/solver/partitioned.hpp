// Partitioned global allocation (paper §5.4.2):
//
//   "Since the time to solve the linear program grows approximately
//    quadratically with the size of the graph, larger graphs than 32
//    nodes should be partitioned and solved in parts on multiple nodes.
//    These 32-node groups are very likely to contain heavily and lightly
//    loaded nodes and allow almost complete load balancing."
//
// The cluster's nodes are split into groups of at most `group_size`; each
// group, together with the appranks homed in it and the induced subgraph
// (helper edges leaving the group are dropped), is solved independently.
// The result is an ownership plan of the same shape as solve_allocation's,
// strictly respecting per-node capacities; quality degrades only by the
// work trapped behind dropped cross-group edges.
#pragma once

#include <vector>

#include "solver/allocation.hpp"

namespace tlb::solver {

struct PartitionedResult {
  /// Same indexing as AllocationResult::cores: per apprank, per adjacency
  /// slot of the ORIGINAL graph. Slots whose edge leaves the apprank's
  /// group hold exactly the 1-core worker floor.
  std::vector<std::vector<int>> cores;
  /// Worst per-group continuous objective (max work/cores within a group).
  double objective = 0.0;
  int groups = 0;
};

/// Solves `problem` in independent node groups of at most `group_size`
/// nodes. `appranks_per_node` identifies each apprank's home group.
PartitionedResult solve_allocation_partitioned(const AllocationProblem& problem,
                                               int appranks_per_node,
                                               int group_size = 32);

}  // namespace tlb::solver
