#include "solver/allocation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "solver/maxflow.hpp"
#include "solver/mincost_flow.hpp"
#include "solver/simplex.hpp"

namespace tlb::solver {

namespace {

struct Shape {
  int appranks = 0;
  int nodes = 0;
  std::vector<int> residual;     // node capacity after 1 core per worker
  std::vector<int> home;         // home node per apprank (first neighbour)
  double total_demand_cap = 0.0;

  // Flow vertex ids.
  [[nodiscard]] int src() const { return 0; }
  [[nodiscard]] int apr(int a) const { return 1 + a; }
  [[nodiscard]] int nod(int n) const { return 1 + appranks + n; }
  [[nodiscard]] int snk() const { return 1 + appranks + nodes; }
  [[nodiscard]] int vertex_count() const { return 2 + appranks + nodes; }
};

Shape make_shape(const AllocationProblem& p) {
  assert(p.graph != nullptr);
  const auto& g = *p.graph;
  Shape s;
  s.appranks = g.left_count();
  s.nodes = g.right_count();
  assert(static_cast<int>(p.work.size()) == s.appranks);
  assert(static_cast<int>(p.node_cores.size()) == s.nodes);

  s.residual.resize(static_cast<std::size_t>(s.nodes));
  for (int n = 0; n < s.nodes; ++n) {
    const int workers = g.right_degree(n);
    const int cores = p.node_cores[static_cast<std::size_t>(n)];
    if (workers > cores) {
      throw InfeasibleAllocation(
          "node hosts more workers than cores; cannot give 1 core each");
    }
    s.residual[static_cast<std::size_t>(n)] = cores - workers;
  }
  s.home.resize(static_cast<std::size_t>(s.appranks));
  for (int a = 0; a < s.appranks; ++a) {
    assert(g.left_degree(a) >= 1 && "apprank with no home node");
    s.home[static_cast<std::size_t>(a)] = g.neighbors_of_left(a).front();
  }
  return s;
}

/// Per-apprank extra-core demand at objective value t (beyond the 1 core
/// per worker it already holds).
std::vector<double> demands_at(const AllocationProblem& p, const Shape& s,
                               double t) {
  std::vector<double> d(static_cast<std::size_t>(s.appranks), 0.0);
  for (int a = 0; a < s.appranks; ++a) {
    const double need = p.work[static_cast<std::size_t>(a)] / t;
    const double have = p.graph->left_degree(a);
    d[static_cast<std::size_t>(a)] = std::max(0.0, need - have);
  }
  return d;
}

bool feasible_at(const AllocationProblem& p, const Shape& s, double t) {
  const auto demand = demands_at(p, s, t);
  const double total =
      std::accumulate(demand.begin(), demand.end(), 0.0);
  if (total <= 0.0) return true;
  MaxFlow mf(s.vertex_count());
  for (int a = 0; a < s.appranks; ++a) {
    if (demand[static_cast<std::size_t>(a)] > 0.0) {
      mf.add_edge(s.src(), s.apr(a), demand[static_cast<std::size_t>(a)]);
    }
    for (int n : p.graph->neighbors_of_left(a)) {
      mf.add_edge(s.apr(a), s.nod(n),
                  s.residual[static_cast<std::size_t>(n)]);
    }
  }
  for (int n = 0; n < s.nodes; ++n) {
    if (s.residual[static_cast<std::size_t>(n)] > 0) {
      mf.add_edge(s.nod(n), s.snk(), s.residual[static_cast<std::size_t>(n)]);
    }
  }
  const double flow = mf.solve(s.src(), s.snk());
  return flow >= total - (1e-9 * total + 1e-9);
}

}  // namespace

AllocationResult solve_allocation(const AllocationProblem& p) {
  const Shape s = make_shape(p);
  const auto& g = *p.graph;

  AllocationResult result;
  result.fractional.resize(static_cast<std::size_t>(s.appranks));
  result.cores.resize(static_cast<std::size_t>(s.appranks));
  for (int a = 0; a < s.appranks; ++a) {
    result.fractional[static_cast<std::size_t>(a)].assign(
        static_cast<std::size_t>(g.left_degree(a)), 1.0);
  }

  const double total_work =
      std::accumulate(p.work.begin(), p.work.end(), 0.0);
  double t_star = 0.0;
  if (total_work > 0.0) {
    // Bisection bounds: t_hi is feasible with zero extra demand; t_lo is a
    // valid lower bound (total work over total cores; and each apprank's
    // work over everything it could ever reach).
    double t_hi = 0.0;
    for (int a = 0; a < s.appranks; ++a) {
      t_hi = std::max(t_hi, p.work[static_cast<std::size_t>(a)] /
                                static_cast<double>(g.left_degree(a)));
    }
    const int total_cores =
        std::accumulate(p.node_cores.begin(), p.node_cores.end(), 0);
    double t_lo = total_work / std::max(1, total_cores);
    for (int a = 0; a < s.appranks; ++a) {
      double reach = g.left_degree(a);
      for (int n : g.neighbors_of_left(a)) {
        reach += s.residual[static_cast<std::size_t>(n)];
      }
      t_lo = std::max(t_lo, p.work[static_cast<std::size_t>(a)] / reach);
    }
    t_lo = std::min(t_lo, t_hi);

    const int iter_limit = p.iteration_limit > 0 ? p.iteration_limit : 100;
    if (!feasible_at(p, s, t_lo)) {
      int iter = 0;
      for (; iter < iter_limit && t_hi - t_lo > 1e-10 * t_hi; ++iter) {
        const double mid = 0.5 * (t_lo + t_hi);
        if (feasible_at(p, s, mid)) {
          t_hi = mid;
        } else {
          t_lo = mid;
        }
      }
      result.iterations = iter;
      result.converged = t_hi - t_lo <= 1e-10 * t_hi;
      t_star = t_hi;
    } else {
      t_star = t_lo;
    }

    // Route the optimum with minimal offloading: home edges cost 0,
    // helper edges cost 1.
    const double t_route = t_star * (1.0 + 1e-9);
    const auto demand = demands_at(p, s, t_route);
    const double total_demand =
        std::accumulate(demand.begin(), demand.end(), 0.0);
    if (total_demand > 0.0) {
      MinCostFlow mcmf(s.vertex_count());
      // edge ids for (a, j) queries
      std::vector<std::vector<int>> eid(static_cast<std::size_t>(s.appranks));
      for (int a = 0; a < s.appranks; ++a) {
        if (demand[static_cast<std::size_t>(a)] > 0.0) {
          mcmf.add_edge(s.src(), s.apr(a), demand[static_cast<std::size_t>(a)],
                        0.0);
        }
        const auto& nb = g.neighbors_of_left(a);
        eid[static_cast<std::size_t>(a)].reserve(nb.size());
        for (int n : nb) {
          const double cost = (n == s.home[static_cast<std::size_t>(a)]) ? 0.0 : 1.0;
          eid[static_cast<std::size_t>(a)].push_back(mcmf.add_edge(
              s.apr(a), s.nod(n), s.residual[static_cast<std::size_t>(n)],
              cost));
        }
      }
      for (int n = 0; n < s.nodes; ++n) {
        if (s.residual[static_cast<std::size_t>(n)] > 0) {
          mcmf.add_edge(s.nod(n), s.snk(),
                        s.residual[static_cast<std::size_t>(n)], 0.0);
        }
      }
      mcmf.solve(s.src(), s.snk(), total_demand);
      for (int a = 0; a < s.appranks; ++a) {
        const auto& nb = g.neighbors_of_left(a);
        for (std::size_t j = 0; j < nb.size(); ++j) {
          const double f =
              mcmf.flow_on(eid[static_cast<std::size_t>(a)][j]);
          result.fractional[static_cast<std::size_t>(a)][j] += f;
          if (nb[j] != s.home[static_cast<std::size_t>(a)]) {
            result.offloaded_cores += f;
          }
        }
      }
    }
  }
  result.objective = t_star;

  // Every core must have an owner: hand each node's unassigned cores to its
  // resident home appranks (or, if none, spread over all its workers).
  std::vector<double> node_assigned(static_cast<std::size_t>(s.nodes), 0.0);
  for (int a = 0; a < s.appranks; ++a) {
    const auto& nb = g.neighbors_of_left(a);
    for (std::size_t j = 0; j < nb.size(); ++j) {
      node_assigned[static_cast<std::size_t>(nb[j])] +=
          result.fractional[static_cast<std::size_t>(a)][j];
    }
  }
  for (int n = 0; n < s.nodes; ++n) {
    const double leftover =
        p.node_cores[static_cast<std::size_t>(n)] -
        node_assigned[static_cast<std::size_t>(n)];
    if (leftover <= 1e-12) continue;
    // Home appranks of node n and their adjacency slot for n.
    std::vector<std::pair<int, std::size_t>> targets;
    for (int a : g.neighbors_of_right(n)) {
      const auto& nb = g.neighbors_of_left(a);
      for (std::size_t j = 0; j < nb.size(); ++j) {
        if (nb[j] == n &&
            (s.home[static_cast<std::size_t>(a)] == n || targets.empty())) {
          if (s.home[static_cast<std::size_t>(a)] == n) {
            targets.emplace_back(a, j);
          }
        }
      }
    }
    if (targets.empty()) {
      // No home apprank on this node: spread over all resident workers.
      for (int a : g.neighbors_of_right(n)) {
        const auto& nb = g.neighbors_of_left(a);
        for (std::size_t j = 0; j < nb.size(); ++j) {
          if (nb[j] == n) targets.emplace_back(a, j);
        }
      }
    }
    const double share = leftover / static_cast<double>(targets.size());
    for (auto [a, j] : targets) {
      result.fractional[static_cast<std::size_t>(a)][j] += share;
    }
  }

  // Largest-remainder rounding per node; preserves >= 1 per worker (every
  // fractional value is >= 1) and makes per-node sums exact.
  struct Slot {
    int apprank;
    std::size_t j;
    double frac_part;
  };
  for (int n = 0; n < s.nodes; ++n) {
    std::vector<Slot> slots;
    int base_sum = 0;
    for (int a : g.neighbors_of_right(n)) {
      const auto& nb = g.neighbors_of_left(a);
      for (std::size_t j = 0; j < nb.size(); ++j) {
        if (nb[j] != n) continue;
        const double f = result.fractional[static_cast<std::size_t>(a)][j];
        const int base = static_cast<int>(std::floor(f + 1e-9));
        base_sum += base;
        slots.push_back(Slot{a, j, f - base});
      }
    }
    int remaining = p.node_cores[static_cast<std::size_t>(n)] - base_sum;
    std::stable_sort(slots.begin(), slots.end(),
                     [](const Slot& x, const Slot& y) {
                       return x.frac_part > y.frac_part;
                     });
    for (const Slot& slot : slots) {
      const double f =
          result.fractional[static_cast<std::size_t>(slot.apprank)][slot.j];
      int c = static_cast<int>(std::floor(f + 1e-9));
      if (remaining > 0) {
        ++c;
        --remaining;
      }
      auto& row = result.cores[static_cast<std::size_t>(slot.apprank)];
      if (row.size() !=
          static_cast<std::size_t>(g.left_degree(slot.apprank))) {
        row.assign(static_cast<std::size_t>(g.left_degree(slot.apprank)), 0);
      }
      row[slot.j] = c;
    }
  }
  return result;
}

double allocation_objective_lp(const AllocationProblem& p) {
  const Shape s = make_shape(p);
  const auto& g = *p.graph;
  const double total_work =
      std::accumulate(p.work.begin(), p.work.end(), 0.0);
  if (total_work <= 0.0) return 0.0;

  // Variables: y'_e (extra cores per edge, e indexed globally) then z.
  std::vector<std::pair<int, int>> edge_list;  // (apprank, node)
  std::vector<std::vector<int>> edge_of(static_cast<std::size_t>(s.appranks));
  for (int a = 0; a < s.appranks; ++a) {
    for (int n : g.neighbors_of_left(a)) {
      edge_of[static_cast<std::size_t>(a)].push_back(
          static_cast<int>(edge_list.size()));
      edge_list.emplace_back(a, n);
    }
  }
  const int ne = static_cast<int>(edge_list.size());
  const int nv = ne + 1;  // + z
  LinearProgram lp;
  lp.c.assign(static_cast<std::size_t>(nv), 0.0);
  lp.c[static_cast<std::size_t>(ne)] = 1.0;  // maximise z

  // work_a * z - sum_{e in a} y'_e <= deg(a)
  for (int a = 0; a < s.appranks; ++a) {
    std::vector<double> row(static_cast<std::size_t>(nv), 0.0);
    row[static_cast<std::size_t>(ne)] = p.work[static_cast<std::size_t>(a)];
    for (int e : edge_of[static_cast<std::size_t>(a)]) {
      row[static_cast<std::size_t>(e)] = -1.0;
    }
    lp.a.push_back(std::move(row));
    lp.b.push_back(static_cast<double>(g.left_degree(a)));
  }
  // sum_{e on n} y'_e <= residual_n
  for (int n = 0; n < s.nodes; ++n) {
    std::vector<double> row(static_cast<std::size_t>(nv), 0.0);
    for (int e = 0; e < ne; ++e) {
      if (edge_list[static_cast<std::size_t>(e)].second == n) {
        row[static_cast<std::size_t>(e)] = 1.0;
      }
    }
    lp.a.push_back(std::move(row));
    lp.b.push_back(static_cast<double>(s.residual[static_cast<std::size_t>(n)]));
  }

  const auto sol = solve_lp(lp);
  if (!sol || sol->objective <= 0.0) {
    throw InfeasibleAllocation("LP formulation failed to produce z > 0");
  }
  return 1.0 / sol->objective;  // z = 1/t
}

}  // namespace tlb::solver
