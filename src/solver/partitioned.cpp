#include "solver/partitioned.hpp"

#include <algorithm>
#include <cassert>

namespace tlb::solver {

PartitionedResult solve_allocation_partitioned(const AllocationProblem& p,
                                               int appranks_per_node,
                                               int group_size) {
  assert(p.graph != nullptr && group_size >= 1 && appranks_per_node >= 1);
  const auto& g = *p.graph;
  const int nodes = g.right_count();
  const int appranks = g.left_count();

  PartitionedResult out;
  out.cores.resize(static_cast<std::size_t>(appranks));
  for (int a = 0; a < appranks; ++a) {
    // Default: every worker keeps its 1-core floor (overwritten for
    // in-group edges below).
    out.cores[static_cast<std::size_t>(a)].assign(
        static_cast<std::size_t>(g.left_degree(a)), 1);
  }

  auto home_of = [&](int a) { return g.neighbors_of_left(a).front(); };

  for (int lo = 0; lo < nodes; lo += group_size) {
    const int hi = std::min(nodes, lo + group_size);
    ++out.groups;

    // Appranks homed in [lo, hi).
    std::vector<int> group_appranks;
    for (int a = 0; a < appranks; ++a) {
      if (home_of(a) >= lo && home_of(a) < hi) group_appranks.push_back(a);
    }
    if (group_appranks.empty()) continue;

    // Induced subgraph: remap nodes to [0, hi-lo) and appranks densely;
    // drop edges leaving the group. Adjacency order is preserved, so the
    // home node stays the first neighbour.
    graph::BipartiteGraph sub(static_cast<int>(group_appranks.size()),
                              hi - lo);
    // Per (sub-apprank, sub-slot) -> original slot, for mapping back.
    std::vector<std::vector<std::size_t>> slot_map(group_appranks.size());
    for (std::size_t sa = 0; sa < group_appranks.size(); ++sa) {
      const int a = group_appranks[sa];
      const auto& nb = g.neighbors_of_left(a);
      for (std::size_t j = 0; j < nb.size(); ++j) {
        if (nb[j] >= lo && nb[j] < hi) {
          sub.add_edge(static_cast<int>(sa), nb[j] - lo);
          slot_map[sa].push_back(j);
        }
      }
    }

    // Capacities: reserve the 1-core floor of every resident worker whose
    // apprank is homed outside this group (its edge was dropped but the
    // worker process still exists on the node).
    AllocationProblem sp;
    sp.graph = &sub;
    sp.node_cores.resize(static_cast<std::size_t>(hi - lo));
    for (int n = lo; n < hi; ++n) {
      int reserved = 0;
      for (int a : g.neighbors_of_right(n)) {
        const int h = home_of(a);
        if (h < lo || h >= hi) ++reserved;
      }
      sp.node_cores[static_cast<std::size_t>(n - lo)] =
          p.node_cores[static_cast<std::size_t>(n)] - reserved;
    }
    sp.work.reserve(group_appranks.size());
    for (int a : group_appranks) {
      sp.work.push_back(p.work[static_cast<std::size_t>(a)]);
    }

    const AllocationResult sr = solve_allocation(sp);
    out.objective = std::max(out.objective, sr.objective);
    for (std::size_t sa = 0; sa < group_appranks.size(); ++sa) {
      const int a = group_appranks[sa];
      for (std::size_t sj = 0; sj < slot_map[sa].size(); ++sj) {
        out.cores[static_cast<std::size_t>(a)][slot_map[sa][sj]] =
            sr.cores[sa][sj];
      }
    }
  }
  (void)appranks_per_node;
  return out;
}

}  // namespace tlb::solver
