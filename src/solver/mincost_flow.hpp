// Min-cost max-flow (successive shortest paths with Dijkstra + Johnson
// potentials) over real-valued capacities and non-negative costs.
//
// Realises the paper's "1e-6 incentive to prefer local cores" exactly: the
// allocation at the optimal objective is routed with cost 0 on each
// apprank's home edge and cost 1 on remote edges, so among all optimal
// allocations the one with minimal offloaded work is chosen (§5.4.2).
#pragma once

#include <cstddef>
#include <vector>

namespace tlb::solver {

class MinCostFlow {
 public:
  explicit MinCostFlow(int vertex_count);

  /// Adds a directed edge; returns an index for flow queries.
  int add_edge(int from, int to, double capacity, double cost);

  /// Sends up to `limit` units from s to t at minimum cost.
  /// Returns {flow, cost}.
  struct Result {
    double flow = 0.0;
    double cost = 0.0;
  };
  Result solve(int s, int t, double limit);

  [[nodiscard]] double flow_on(int index) const;

  static constexpr double kEps = 1e-9;

 private:
  struct Edge {
    int to;
    double cap;
    double original;
    double cost;
    int rev;
  };

  std::vector<std::vector<Edge>> adj_;
  std::vector<std::pair<int, int>> edge_index_;
};

}  // namespace tlb::solver
