#include "solver/maxflow.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace tlb::solver {

MaxFlow::MaxFlow(int vertex_count)
    : adj_(static_cast<std::size_t>(vertex_count)),
      level_(static_cast<std::size_t>(vertex_count)),
      iter_(static_cast<std::size_t>(vertex_count)) {
  assert(vertex_count > 0);
}

int MaxFlow::add_edge(int from, int to, double capacity) {
  assert(from >= 0 && from < vertex_count());
  assert(to >= 0 && to < vertex_count());
  assert(capacity >= 0.0);
  auto& fa = adj_[static_cast<std::size_t>(from)];
  auto& ta = adj_[static_cast<std::size_t>(to)];
  fa.push_back(Edge{to, capacity, capacity, static_cast<int>(ta.size())});
  ta.push_back(Edge{from, 0.0, 0.0, static_cast<int>(fa.size()) - 1});
  edge_index_.emplace_back(from, static_cast<int>(fa.size()) - 1);
  return static_cast<int>(edge_index_.size()) - 1;
}

bool MaxFlow::bfs(int s, int t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<int> q;
  level_[static_cast<std::size_t>(s)] = 0;
  q.push(s);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (const Edge& e : adj_[static_cast<std::size_t>(v)]) {
      if (e.cap > kEps && level_[static_cast<std::size_t>(e.to)] < 0) {
        level_[static_cast<std::size_t>(e.to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] >= 0;
}

double MaxFlow::dfs(int v, int t, double pushed) {
  if (v == t) return pushed;
  auto& it = iter_[static_cast<std::size_t>(v)];
  auto& edges = adj_[static_cast<std::size_t>(v)];
  for (; it < edges.size(); ++it) {
    Edge& e = edges[it];
    if (e.cap <= kEps ||
        level_[static_cast<std::size_t>(e.to)] !=
            level_[static_cast<std::size_t>(v)] + 1) {
      continue;
    }
    const double d = dfs(e.to, t, std::min(pushed, e.cap));
    if (d > kEps) {
      e.cap -= d;
      adj_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)]
          .cap += d;
      return d;
    }
  }
  return 0.0;
}

double MaxFlow::solve(int s, int t) {
  assert(s != t);
  double flow = 0.0;
  while (bfs(s, t)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (true) {
      const double f = dfs(s, t, std::numeric_limits<double>::infinity());
      if (f <= kEps) break;
      flow += f;
    }
  }
  return flow;
}

double MaxFlow::flow_on(int index) const {
  const auto [v, pos] = edge_index_.at(static_cast<std::size_t>(index));
  const Edge& e =
      adj_[static_cast<std::size_t>(v)][static_cast<std::size_t>(pos)];
  return e.original - e.cap;
}

}  // namespace tlb::solver
