// Dinic max-flow with real-valued capacities.
//
// Used as the feasibility oracle inside the global allocation solver: "can
// every apprank obtain work_a / t cores from its adjacent nodes?" is a
// transportation feasibility question (paper §5.4.2's LP, dualised into a
// parametric flow problem).
#pragma once

#include <cstddef>
#include <vector>

namespace tlb::solver {

class MaxFlow {
 public:
  explicit MaxFlow(int vertex_count);

  /// Adds a directed edge with the given capacity; returns its index for
  /// later flow queries.
  int add_edge(int from, int to, double capacity);

  /// Computes the maximum flow from s to t. May be called once per graph.
  double solve(int s, int t);

  /// Flow routed through edge `index` (as returned by add_edge).
  [[nodiscard]] double flow_on(int index) const;

  [[nodiscard]] int vertex_count() const { return static_cast<int>(level_.size()); }

  /// Capacities below this are treated as saturated/zero.
  static constexpr double kEps = 1e-9;

 private:
  struct Edge {
    int to;
    double cap;        // residual capacity
    double original;   // initial capacity
    int rev;           // index of the reverse edge in adj_[to]
  };

  bool bfs(int s, int t);
  double dfs(int v, int t, double pushed);

  std::vector<std::vector<Edge>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::pair<int, int>> edge_index_;  // public idx -> (v, pos)
};

}  // namespace tlb::solver
