// Global core-allocation solver (paper §5.4.2, Equation 1).
//
//   minimise   max_a  work_a / cores_a
//   subject to every worker (apprank x adjacent node) owns >= 1 core,
//              per-node ownership sums to exactly the node's core count,
//              appranks own cores only on nodes adjacent in the expander
//              graph.
//
// Solved exactly (continuous relaxation) by bisection on the objective
// value t: an allocation with objective <= t exists iff each apprank can be
// given work_a / t cores, a transportation feasibility problem answered by
// max-flow. The allocation realised at the optimum is routed by min-cost
// flow with cost 0 on home edges and cost 1 on helper edges, which
// minimises offloaded work among all optimal allocations — the exact
// version of the paper's 1e-6 "prefer local" incentive. Finally the
// fractional ownership is rounded per node by the largest-remainder method
// so each node's ownership sums exactly to its capacity and every worker
// keeps >= 1 core.
#pragma once

#include <stdexcept>
#include <vector>

#include "graph/bipartite_graph.hpp"

namespace tlb::solver {

struct AllocationProblem {
  /// Offloading graph: left = appranks, right = nodes; the first neighbour
  /// of each apprank must be its home node.
  const graph::BipartiteGraph* graph = nullptr;
  /// Estimated work per apprank (paper: average busy cores, summed over
  /// the apprank's workers). Must be >= 0; all-zero is allowed.
  std::vector<double> work;
  /// Physical cores per node.
  std::vector<int> node_cores;
  /// Bisection-iteration budget (tlb::resil solver fallback chain): the
  /// solve stops after this many feasibility probes even if the tolerance
  /// has not been reached, reporting converged = false. <= 0 keeps the
  /// default of 100.
  int iteration_limit = 0;
};

struct AllocationResult {
  /// cores[a][j] = integer cores owned by apprank a's worker on its j-th
  /// adjacent node (same indexing as graph.neighbors_of_left(a)).
  std::vector<std::vector<int>> cores;
  /// Fractional solution before rounding, same indexing.
  std::vector<std::vector<double>> fractional;
  /// Optimal continuous objective value max_a work_a / cores_a
  /// (0 when total work is 0).
  double objective = 0.0;
  /// Total fractional cores placed on non-home workers beyond their
  /// mandatory 1 (diagnostic: the quantity the local policy over-spends).
  double offloaded_cores = 0.0;
  /// Bisection iterations spent.
  int iterations = 0;
  /// False when the iteration budget ran out before the bisection reached
  /// its tolerance; the result is still a valid (feasible) allocation, just
  /// not proven optimal. Consumers under a time budget treat this as a
  /// solver timeout and degrade (tlb::resil fallback chain).
  bool converged = true;
};

/// Thrown when a node cannot give each of its resident workers one core.
class InfeasibleAllocation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Exact continuous solve + min-offload routing + integer rounding.
AllocationResult solve_allocation(const AllocationProblem& problem);

/// Reference implementation via the direct LP formulation (dense simplex):
/// maximise z subject to sum_w(a) y_w >= work_a * z and node capacities.
/// Returns only the optimal objective (max_a work_a/cores_a). Used to
/// cross-check solve_allocation in tests; O(n^3)-ish, small inputs only.
double allocation_objective_lp(const AllocationProblem& problem);

}  // namespace tlb::solver
