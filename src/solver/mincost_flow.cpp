#include "solver/mincost_flow.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace tlb::solver {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

MinCostFlow::MinCostFlow(int vertex_count)
    : adj_(static_cast<std::size_t>(vertex_count)) {
  assert(vertex_count > 0);
}

int MinCostFlow::add_edge(int from, int to, double capacity, double cost) {
  assert(from >= 0 && from < static_cast<int>(adj_.size()));
  assert(to >= 0 && to < static_cast<int>(adj_.size()));
  assert(capacity >= 0.0 && cost >= 0.0);
  auto& fa = adj_[static_cast<std::size_t>(from)];
  auto& ta = adj_[static_cast<std::size_t>(to)];
  fa.push_back(Edge{to, capacity, capacity, cost, static_cast<int>(ta.size())});
  ta.push_back(Edge{from, 0.0, 0.0, -cost, static_cast<int>(fa.size()) - 1});
  edge_index_.emplace_back(from, static_cast<int>(fa.size()) - 1);
  return static_cast<int>(edge_index_.size()) - 1;
}

MinCostFlow::Result MinCostFlow::solve(int s, int t, double limit) {
  const std::size_t n = adj_.size();
  std::vector<double> potential(n, 0.0);  // costs are non-negative initially
  std::vector<double> dist(n);
  std::vector<int> prev_v(n);
  std::vector<int> prev_e(n);
  Result result;

  while (result.flow + kEps < limit) {
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    dist[static_cast<std::size_t>(s)] = 0.0;
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.emplace(0.0, s);
    while (!pq.empty()) {
      auto [d, v] = pq.top();
      pq.pop();
      if (d > dist[static_cast<std::size_t>(v)] + kEps) continue;
      const auto& edges = adj_[static_cast<std::size_t>(v)];
      for (std::size_t i = 0; i < edges.size(); ++i) {
        const Edge& e = edges[i];
        if (e.cap <= kEps) continue;
        const double nd = d + e.cost + potential[static_cast<std::size_t>(v)] -
                          potential[static_cast<std::size_t>(e.to)];
        if (nd + kEps < dist[static_cast<std::size_t>(e.to)]) {
          dist[static_cast<std::size_t>(e.to)] = nd;
          prev_v[static_cast<std::size_t>(e.to)] = v;
          prev_e[static_cast<std::size_t>(e.to)] = static_cast<int>(i);
          pq.emplace(nd, e.to);
        }
      }
    }
    if (dist[static_cast<std::size_t>(t)] == kInf) break;  // no augmenting path
    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] < kInf) potential[v] += dist[v];
    }
    // Find bottleneck along the path.
    double push = limit - result.flow;
    for (int v = t; v != s; v = prev_v[static_cast<std::size_t>(v)]) {
      const Edge& e = adj_[static_cast<std::size_t>(
          prev_v[static_cast<std::size_t>(v)])]
                          [static_cast<std::size_t>(
                              prev_e[static_cast<std::size_t>(v)])];
      push = std::min(push, e.cap);
    }
    if (push <= kEps) break;
    // Apply.
    for (int v = t; v != s; v = prev_v[static_cast<std::size_t>(v)]) {
      Edge& e = adj_[static_cast<std::size_t>(
          prev_v[static_cast<std::size_t>(v)])]
                    [static_cast<std::size_t>(
                        prev_e[static_cast<std::size_t>(v)])];
      e.cap -= push;
      adj_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)]
          .cap += push;
      result.cost += push * e.cost;
    }
    result.flow += push;
  }
  return result;
}

double MinCostFlow::flow_on(int index) const {
  const auto [v, pos] = edge_index_.at(static_cast<std::size_t>(index));
  const Edge& e =
      adj_[static_cast<std::size_t>(v)][static_cast<std::size_t>(pos)];
  return e.original - e.cap;
}

}  // namespace tlb::solver
