// Dense primal simplex for small linear programs.
//
//   maximise  c^T x
//   subject to A x <= b,  x >= 0.
//
// The paper solves its core-allocation LP with CVXOPT (§5.4.2); this repo
// solves it natively via bisection + min-cost flow (solver/allocation.hpp).
// This simplex implementation exists to cross-check that solver in tests
// and to solve the LP formulation directly when callers prefer it.
// Bland's rule guards against cycling; sizes here are tiny (hundreds of
// variables at most), so the dense tableau is the simplest correct choice.
#pragma once

#include <optional>
#include <vector>

namespace tlb::solver {

struct LinearProgram {
  // Row-major m x n constraint matrix.
  std::vector<std::vector<double>> a;
  std::vector<double> b;  // m right-hand sides
  std::vector<double> c;  // n objective coefficients
};

struct SimplexSolution {
  std::vector<double> x;
  double objective = 0.0;
};

/// Solves the LP; returns std::nullopt when unbounded. Infeasibility cannot
/// arise for b >= 0 (the origin is feasible); callers must ensure b >= 0,
/// which every formulation in this repo satisfies by construction.
std::optional<SimplexSolution> solve_lp(const LinearProgram& lp);

}  // namespace tlb::solver
