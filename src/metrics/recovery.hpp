// Recovery analysis of perturbed runs (tlb::fault).
//
// A RecoverySeries collects the timestamps at which perturbations were
// injected (and recovered) during a run; analyse() then measures, for each
// injection, how long the allocation policy needed to re-converge the node
// imbalance and how much goodput the perturbation cost, from the same
// per-node busy traces that drive the Fig 11 convergence analysis.
#pragma once

#include <string>
#include <vector>

#include "trace/step_series.hpp"

namespace tlb::metrics {

/// One timestamped perturbation (or its recovery) during a run.
struct Perturbation {
  double at = 0.0;
  std::string label;
  bool is_recovery = false;  ///< end of a perturbation, not a new one
};

/// Post-run measurement of one injected perturbation.
struct RecoveryReport {
  std::string label;
  double at = 0.0;
  /// Seconds from the injection until the node imbalance stays at or
  /// below the threshold for the requested hold; negative when it never
  /// re-converges inside the analysis window.
  double reconverge_time = -1.0;
  /// Busy core-seconds lost after the injection, relative to the average
  /// busy rate observed before it (clamped at zero).
  double goodput_lost = 0.0;
};

/// One failure-detection verdict issued by the runtime's heartbeat/lease
/// machinery (tlb::resil). True positives carry the latency between the
/// physical crash and its detection; false positives are suspicions of
/// workers that were in fact alive (e.g. behind a link blackout).
struct Detection {
  double at = 0.0;
  int worker = -1;
  bool true_positive = false;
  double latency = 0.0;  ///< detection - crash time (true positives only)
};

class RecoverySeries {
 public:
  /// Records a perturbation (or recovery) instant. Times must be
  /// non-decreasing; the FaultInjector calls this as events fire.
  void record(double t, std::string label, bool is_recovery = false);

  /// Records a detection verdict (the runtime calls this when it suspects
  /// a worker, tlb::resil). Lets fig12 report *detected* recovery time
  /// next to the injected one.
  void record_detection(double t, int worker, bool true_positive,
                        double latency);

  [[nodiscard]] const std::vector<Perturbation>& events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<Detection>& detections() const {
    return detections_;
  }
  /// Mean latency over true positives; negative when there are none.
  [[nodiscard]] double mean_detection_latency() const;
  [[nodiscard]] int false_positive_count() const;
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Measures every recorded injection against the per-node busy traces
  /// over [t0, t1) (typically [0, makespan)). `bins`, `threshold` and
  /// `hold` parameterise the imbalance series and the convergence
  /// criterion exactly as in node_imbalance_series / convergence_time.
  [[nodiscard]] std::vector<RecoveryReport> analyse(
      const std::vector<const trace::StepSeries*>& node_busy, double t0,
      double t1, int bins, double threshold, int hold) const;

 private:
  std::vector<Perturbation> events_;
  std::vector<Detection> detections_;
};

}  // namespace tlb::metrics
