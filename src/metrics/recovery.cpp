#include "metrics/recovery.hpp"

#include <algorithm>
#include <cassert>

#include "metrics/imbalance.hpp"

namespace tlb::metrics {

void RecoverySeries::record(double t, std::string label, bool is_recovery) {
  assert((events_.empty() || t >= events_.back().at) &&
         "perturbations must be recorded in time order");
  events_.push_back(Perturbation{t, std::move(label), is_recovery});
}

void RecoverySeries::record_detection(double t, int worker,
                                      bool true_positive, double latency) {
  detections_.push_back(Detection{t, worker, true_positive, latency});
}

double RecoverySeries::mean_detection_latency() const {
  double sum = 0.0;
  int count = 0;
  for (const Detection& d : detections_) {
    if (d.true_positive) {
      sum += d.latency;
      ++count;
    }
  }
  return count > 0 ? sum / count : -1.0;
}

int RecoverySeries::false_positive_count() const {
  int count = 0;
  for (const Detection& d : detections_) {
    if (!d.true_positive) ++count;
  }
  return count;
}

std::vector<RecoveryReport> RecoverySeries::analyse(
    const std::vector<const trace::StepSeries*>& node_busy, double t0,
    double t1, int bins, double threshold, int hold) const {
  std::vector<RecoveryReport> reports;
  if (t1 <= t0 || bins <= 0) return reports;

  auto total_busy_rate = [&](double a, double b) {
    double rate = 0.0;
    for (const trace::StepSeries* s : node_busy) rate += s->average(a, b);
    return rate;
  };

  for (const Perturbation& p : events_) {
    if (p.is_recovery) continue;
    RecoveryReport report;
    report.label = p.label;
    report.at = p.at;
    const double a = std::clamp(p.at, t0, t1);

    // Re-convergence: the node-imbalance series from the injection to the
    // end of the window, judged by the Fig 11 criterion.
    if (a < t1) {
      const auto series = node_imbalance_series(node_busy, a, t1, bins);
      const double conv = convergence_time(series, a, t1, threshold, hold);
      report.reconverge_time = conv >= 0.0 ? conv - a : -1.0;
    }

    // Goodput lost: how many busy core-seconds the cluster fell short of
    // its pre-injection rate. A perturbation-free run reports ~0.
    if (a > t0 && a < t1) {
      const double before = total_busy_rate(t0, a);
      const double after = total_busy_rate(a, t1);
      report.goodput_lost = std::max(0.0, (before - after) * (t1 - a));
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace tlb::metrics
