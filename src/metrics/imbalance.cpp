#include "metrics/imbalance.hpp"

#include <algorithm>
#include <cassert>

namespace tlb::metrics {

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double max_of(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, x);
  return m;
}

double imbalance(std::span<const double> loads) {
  const double avg = mean(loads);
  if (avg <= 0.0) return 1.0;
  return max_of(loads) / avg;
}

std::vector<double> node_imbalance_series(
    const std::vector<const trace::StepSeries*>& node_busy, double t0,
    double t1, int bins) {
  assert(bins > 0 && t1 > t0);
  std::vector<std::vector<double>> sampled;
  sampled.reserve(node_busy.size());
  for (const trace::StepSeries* s : node_busy) {
    sampled.push_back(s->sample(t0, t1, bins));
  }
  std::vector<double> out(static_cast<std::size_t>(bins), 1.0);
  std::vector<double> loads(node_busy.size());
  for (int b = 0; b < bins; ++b) {
    for (std::size_t n = 0; n < node_busy.size(); ++n) {
      loads[n] = sampled[n][static_cast<std::size_t>(b)];
    }
    out[static_cast<std::size_t>(b)] = imbalance(loads);
  }
  return out;
}

double convergence_time(const std::vector<double>& series, double t0,
                        double t1, double threshold, int hold) {
  const int bins = static_cast<int>(series.size());
  if (bins == 0) return -1.0;
  const double width = (t1 - t0) / bins;
  // Last bin index from which the series stays within threshold.
  int start = bins;
  for (int i = bins - 1; i >= 0; --i) {
    if (series[static_cast<std::size_t>(i)] <= threshold) {
      start = i;
    } else {
      break;
    }
  }
  if (start == bins || bins - start < hold) return -1.0;
  return t0 + start * width;
}

}  // namespace tlb::metrics
