// Load-imbalance metrics (paper §6.1, Equation 2) and convergence analysis
// of node-imbalance time series (Fig 11).
#pragma once

#include <span>
#include <vector>

#include "trace/step_series.hpp"

namespace tlb::metrics {

/// Equation 2: Imbalance = max(load) / mean(load) >= 1. Returns 1.0 for an
/// empty span or when every load is zero (perfectly balanced by vacuity).
double imbalance(std::span<const double> loads);

/// Node-imbalance time series: at each of `bins` intervals over [t0, t1),
/// the imbalance (Eq. 2) of the per-node busy-core averages in that bin.
/// `node_busy[n]` is the node-n busy series from the trace recorder. Bins
/// where every node is idle report 1.0.
std::vector<double> node_imbalance_series(
    const std::vector<const trace::StepSeries*>& node_busy, double t0,
    double t1, int bins);

/// First time (bin start) from which the series stays at or below
/// `threshold` for at least `hold` consecutive bins (and the series never
/// leaves again before its end); returns a negative value when it never
/// converges.
double convergence_time(const std::vector<double>& series, double t0,
                        double t1, double threshold, int hold);

/// Summary statistics helpers.
double mean(std::span<const double> v);
double max_of(std::span<const double> v);

}  // namespace tlb::metrics
