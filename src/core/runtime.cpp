#include "core/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "hier/hier_scheduler.hpp"
#include "metrics/recovery.hpp"
#include "prof/prof.hpp"
#include "sched/registry.hpp"
#include "solver/allocation.hpp"

namespace tlb::core {

namespace {

/// Control-plane message tags (ctrl_comm_).
constexpr int kTagOffload = 1;    ///< home -> helper: task assignment
constexpr int kTagComplete = 2;   ///< helper -> home: task completion
constexpr int kTagHeartbeat = 3;  ///< helper -> home: phi-accrual heartbeat
constexpr int kTagAck = 4;        ///< helper -> home: offload acknowledgment

// Tags for deriving independent child RNG streams from RuntimeConfig::seed
// (the expander consumes the seed directly).
constexpr std::uint64_t kSeedWorkload = 0xA995;
constexpr std::uint64_t kSeedFaultJitter = 0xFA17;
constexpr std::uint64_t kSeedAppComm = 0xC0A1;
constexpr std::uint64_t kSeedCtrlComm = 0xC0A2;

/// Applies an ownership plan directly (initial division, bypassing the
/// DromModule enable flag: the startup split of §5.4 always happens).
void force_plan(dlb::NodeCores& cores,
                const std::vector<std::pair<dlb::WorkerId, int>>& node_plan) {
  int cursor = 0;
  for (const auto& [w, count] : node_plan) {
    for (int k = 0; k < count; ++k) {
      cores.set_owner(cursor++, w);
    }
  }
  assert(cursor == cores.core_count() && "plan must cover every core");
}

}  // namespace

ClusterRuntime::ClusterRuntime(RuntimeConfig config, sim::Engine* shared_engine)
    : config_(std::move(config)),
      owned_engine_(shared_engine == nullptr ? std::make_unique<sim::Engine>()
                                             : nullptr),
      engine_(shared_engine != nullptr ? *shared_engine : *owned_engine_) {
  // Turn the process-global profiler on before the first instrumented
  // scope so construction itself is attributed ("core.construct").
  if (config_.prof.enabled) {
    prof::Profiler::instance().enable(config_.prof.snapshot_every_events);
  }
  PROF_SCOPE("core.construct");
  graph::ExpanderParams params;
  params.nodes = config_.cluster.node_count();
  params.appranks_per_node = config_.appranks_per_node;
  params.degree = config_.degree;
  params.seed = config_.seed;
  expander_ = graph::build_expander(params);
  topology_ = std::make_unique<Topology>(expander_.graph,
                                         config_.appranks_per_node);

  // Appranks communicate over vmpi from their home nodes.
  std::vector<int> rank_to_node(
      static_cast<std::size_t>(topology_->apprank_count()));
  for (int a = 0; a < topology_->apprank_count(); ++a) {
    rank_to_node[static_cast<std::size_t>(a)] = topology_->home_node(a);
  }
  app_comm_ = std::make_unique<vmpi::Communicator>(
      engine_, config_.cluster.link, std::move(rank_to_node));

  // Control plane: one vmpi rank per worker process, so offload/finish
  // notifications are priced by the interconnect and see link faults.
  std::vector<int> worker_to_node(
      static_cast<std::size_t>(topology_->worker_count()));
  for (int w = 0; w < topology_->worker_count(); ++w) {
    worker_to_node[static_cast<std::size_t>(w)] = topology_->worker(w).node;
  }
  ctrl_comm_ = std::make_unique<vmpi::Communicator>(
      engine_, config_.cluster.link, std::move(worker_to_node));

  // Single-seed reproducibility: every stochastic component draws from an
  // independent child stream of config_.seed.
  const sim::Rng root(config_.seed);
  fault_rng_ = root.fork(kSeedFaultJitter);
  app_comm_->set_fault_seed(root.fork(kSeedAppComm).next_u64());
  ctrl_comm_->set_fault_seed(root.fork(kSeedCtrlComm).next_u64());

  node_speed_.reserve(config_.cluster.nodes.size());
  for (const auto& n : config_.cluster.nodes) node_speed_.push_back(n.speed);
  alive_.assign(static_cast<std::size_t>(topology_->worker_count()), 1);
  retired_.assign(static_cast<std::size_t>(topology_->worker_count()), 0);
  node_retired_.assign(static_cast<std::size_t>(topology_->node_count()), 0);
  suspected_.assign(static_cast<std::size_t>(topology_->worker_count()), 0);
  last_heartbeat_.assign(static_cast<std::size_t>(topology_->worker_count()),
                         -1.0);
  crashed_at_.assign(static_cast<std::size_t>(topology_->worker_count()),
                     -1.0);
  if (resil_active()) {
    detectors_.reserve(static_cast<std::size_t>(topology_->worker_count()));
    for (int w = 0; w < topology_->worker_count(); ++w) {
      detectors_.emplace_back(config_.resil.phi_window,
                              config_.resil.phi_min_std);
    }
    quarantine_ = std::make_unique<resil::Quarantine>(
        topology_->worker_count(), config_.resil);
  }
  policy_level_ = config_.policy == PolicyKind::Global ? 0 : 1;
  if (config_.elastic.enabled) {
    elastic_ctrl_ = std::make_unique<elastic::ElasticController>(config_.elastic);
  }

  node_cores_.reserve(static_cast<std::size_t>(topology_->node_count()));
  lewi_.reserve(node_cores_.capacity());
  drom_.reserve(node_cores_.capacity());
  for (int n = 0; n < topology_->node_count(); ++n) {
    const int cores = config_.cluster.nodes[static_cast<std::size_t>(n)].cores;
    const auto& residents = topology_->workers_on_node(n);
    assert(!residents.empty());
    if (static_cast<int>(residents.size()) > cores) {
      throw std::invalid_argument(
          "ClusterRuntime: node " + std::to_string(n) + " hosts " +
          std::to_string(residents.size()) + " workers but has only " +
          std::to_string(cores) +
          " cores; lower the offloading degree or appranks per node");
    }
    node_cores_.push_back(
        std::make_unique<dlb::NodeCores>(cores, residents.front()));
    lewi_.push_back(
        std::make_unique<dlb::LewiModule>(*node_cores_.back(), config_.lewi));
    drom_.push_back(std::make_unique<dlb::DromModule>(*node_cores_.back(),
                                                      config_.drom_active()));
  }

  talp_ = std::make_unique<dlb::TalpModule>(
      [this] { return engine_.now(); }, topology_->worker_count());
  recorder_ = std::make_unique<trace::Recorder>(topology_->node_count(),
                                                topology_->apprank_count());
  register_metrics();
  if (config_.obs.stream.enabled) {
    // Streaming backend: finished spans spill to disk, only open spans
    // stay resident. Supersedes the in-memory collector when both are
    // requested (same events, bounded memory).
    stream_sink_ = std::make_unique<stream::StreamSink>(config_.obs.stream);
    active_sink_ = stream_sink_.get();
  } else if (config_.obs.spans) {
    span_collector_ = std::make_unique<obs::SpanCollector>();
    active_sink_ = span_collector_.get();
  }

  // Contention-aware interconnect (tlb::net): replace the analytic cost
  // model with a shared-link fabric. Both communicators route their
  // inter-node payloads through it; eager input transfers and barrier
  // pulls become per-source flows (finish_assignment / enter_barrier).
  if (config_.net.enabled) {
    const sim::LinkSpec& link = config_.cluster.link;
    const net::NetConfig& nconf = config_.net;
    net::NetTopology topo =
        nconf.topology == net::TopologyKind::Crossbar
            ? net::NetTopology::crossbar(topology_->node_count(),
                                         nconf.nic_bw(link),
                                         nconf.base_latency(link))
            : net::NetTopology::fat_tree(
                  topology_->node_count(), nconf.leaf_radix, nconf.spines,
                  nconf.nic_bw(link), nconf.uplink_bw(link),
                  nconf.base_latency(link), nconf.per_hop_latency);
    fabric_ = std::make_unique<net::Fabric>(engine_, std::move(topo));
    fabric_->set_incremental(nconf.incremental);
    fabric_->set_congestion_threshold(nconf.congestion_threshold);
    fabric_->set_recorder(recorder_.get());
    if (active_sink_ != &null_sink_) {
      fabric_->set_span_sink(active_sink_);
    }
    app_comm_->attach_fabric(fabric_.get());
    ctrl_comm_->attach_fabric(fabric_.get());
    link_load_view_ = std::make_unique<net::LinkLoadView>(*fabric_);
  }

  workers_.resize(static_cast<std::size_t>(topology_->worker_count()));
  appranks_.resize(static_cast<std::size_t>(topology_->apprank_count()));

  // Victim-selection policy (tlb::sched / tlb::hier). Built last so it can
  // observe the fully-constructed runtime through the RuntimeView window;
  // throws on an unknown policy name (listing the valid values).
  // register_policies is idempotent: "hier" enters the registry once per
  // process, whichever runtime constructs first.
  hier::register_policies();
  scheduler_ =
      make_policy(config_.hier.enabled ? "hier" : config_.sched.policy);
  subscribe_control_types();

  if (config_.prof.enabled) {
    // Health snapshots report the telemetry working set through this
    // gauge; cleared in the destructor so the callback never dangles.
    prof::Profiler::instance().set_open_spans_gauge(
        [this]() -> std::int64_t {
          if (stream_sink_ != nullptr) {
            return static_cast<std::int64_t>(stream_sink_->open_spans());
          }
          if (span_collector_ != nullptr) {
            return static_cast<std::int64_t>(span_collector_->spans().size());
          }
          return 0;
        });
    prof_gauge_registered_ = true;
  }
}

ClusterRuntime::~ClusterRuntime() {
  if (prof_gauge_registered_) {
    prof::Profiler::instance().clear_open_spans_gauge();
  }
  if (prof::enabled()) {
    // Balance the core.exec / core.pending charges of records still live
    // at teardown (an aborted run, or executions parked on a crash).
    if (!running_.empty()) {
      prof::free_note(prof::AllocTag::CoreExec,
                      running_.size() * sizeof(RunningExec));
    }
    for (const auto& [id, pd] : pending_data_) {
      (void)id;
      prof::free_note(
          prof::AllocTag::CorePending,
          sizeof(PendingData) + pd.flows.capacity() * sizeof(net::FlowId));
    }
  }
}

std::unique_ptr<sched::Scheduler> ClusterRuntime::make_policy(
    const std::string& name) {
  if (name == "hier") {
    // Built directly (not through the registry factory) so the instance
    // carries RuntimeConfig::hier's tuning, not HierConfig defaults. The
    // base conversion must happen here, in member context, where the
    // private sched::RuntimeView base is accessible.
    const sched::RuntimeView& view = *this;
    return std::make_unique<hier::HierScheduler>(config_.hier, config_.sched,
                                                 view);
  }
  sched::SchedConfig sc = config_.sched;
  sc.policy = name;
  return sched::make_scheduler(sc, *this);
}

void ClusterRuntime::set_sched_policy(const std::string& name) {
  // Construct-then-swap: an unknown name throws here and the running
  // policy is never touched (the control-plane applier relies on this for
  // its NACK-without-side-effects contract).
  std::unique_ptr<sched::Scheduler> next = make_policy(name);
  sched_retired_.merge(scheduler_->stats());
  scheduler_ = std::move(next);
  ++sched_swaps_;
  mark_trace("sched policy -> " + name);
}

void ClusterRuntime::subscribe_control_types() {
  control_.subscribe(
      "tlb.sched.policy", [this](const elastic::Resource& r) -> std::string {
        std::map<std::string, std::string> kv;
        try {
          kv = elastic::parse_kv(r.payload);
        } catch (const std::exception& e) {
          return e.what();
        }
        const auto it = kv.find("policy");
        if (it == kv.end()) {
          return "tlb.sched.policy: missing key 'policy'";
        }
        // Validate before mutate: set_sched_policy would throw on an
        // unknown name anyway (leaving the old policy in place), but a
        // registry check gives the NACK a precise reason.
        if (it->second != "hier" && !sched::policy_registered(it->second)) {
          std::string valid;
          for (const std::string& n : sched::known_policies()) {
            if (!valid.empty()) valid += ", ";
            valid += n;
          }
          return "tlb.sched.policy: unknown policy '" + it->second +
                 "'; valid values: " + valid;
        }
        set_sched_policy(it->second);
        return "";
      });
}

void ClusterRuntime::register_metrics() {
  m_.control_messages = &metrics_.counter("core.control_messages");
  m_.transfer_bytes = &metrics_.counter("core.transfer_bytes");
  m_.tasks_reexecuted = &metrics_.counter("fault.tasks_reexecuted");
  m_.workers_crashed = &metrics_.counter("fault.workers_crashed");
  m_.heartbeat_messages = &metrics_.counter("resil.heartbeat_messages");
  m_.detections = &metrics_.counter("resil.detections");
  m_.false_suspicions = &metrics_.counter("resil.false_suspicions");
  m_.lease_retransmits = &metrics_.counter("resil.lease_retransmits");
  m_.lease_expiries = &metrics_.counter("resil.lease_expiries");
  m_.duplicates_suppressed = &metrics_.counter("resil.duplicates_suppressed");
  m_.quarantine_ejections = &metrics_.counter("resil.quarantine_ejections");
  m_.quarantine_readmissions =
      &metrics_.counter("resil.quarantine_readmissions");
  m_.policy_downshifts = &metrics_.counter("resil.policy_downshifts");
  m_.rewired_edges = &metrics_.counter("resil.rewired_edges");
  m_.nodes_joined = &metrics_.counter("elastic.nodes_joined");
  m_.nodes_retired = &metrics_.counter("elastic.nodes_retired");
  m_.detection_latency_sum = &metrics_.gauge("resil.detection_latency_sum_s");
  m_.perfect_time = &metrics_.gauge("core.perfect_time_s");
  m_.iteration_time = &metrics_.histogram(
      "core.iteration_time_s",
      {0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0});
}

obs::PopReport ClusterRuntime::pop() const {
  std::vector<int> worker_apprank;
  worker_apprank.reserve(static_cast<std::size_t>(topology_->worker_count()));
  for (int w = 0; w < topology_->worker_count(); ++w) {
    worker_apprank.push_back(topology_->worker(w).apprank);
  }
  double total_cores = 0.0;
  for (const auto& n : config_.cluster.nodes) total_cores += n.cores;
  const double elapsed = result_.makespan > 0.0
                             ? result_.makespan
                             : engine_.now() - start_time_;
  const double transfer_wait =
      stream_sink_ != nullptr ? stream_sink_->transfer_wait_core_seconds()
      : span_collector_ != nullptr
          ? span_collector_->transfer_wait_core_seconds()
          : 0.0;
  return obs::pop_report(*talp_, worker_apprank, topology_->apprank_count(),
                         total_cores, elapsed, transfer_wait);
}

RunResult ClusterRuntime::run(Workload& workload) {
  start(workload);
  engine_.run();
  return finalize();
}

void ClusterRuntime::start(Workload& workload,
                           std::function<void()> on_complete) {
  // Pre-loop setup (task graph materialisation, initial ownership plan)
  // runs outside the engine loop, so it needs its own attribution bucket.
  PROF_SCOPE("core.start");
  workload_ = &workload;
  on_complete_ = std::move(on_complete);
  start_time_ = engine_.now();
  last_barrier_time_ = engine_.now();
  window_start_time_ = engine_.now();
  if (config_.obs.pop_windows) {
    window_busy_.assign(static_cast<std::size_t>(topology_->worker_count()),
                        0.0);
  }
  workload.reseed(sim::Rng(config_.seed).fork(kSeedWorkload).next_u64());

  // Initial ownership: one core per helper, the rest split among the
  // node's appranks (§5.4).
  std::vector<int> node_core_counts;
  node_core_counts.reserve(config_.cluster.nodes.size());
  for (const auto& n : config_.cluster.nodes) node_core_counts.push_back(n.cores);
  const OwnershipPlan initial = initial_plan(*topology_, node_core_counts);
  for (int n = 0; n < topology_->node_count(); ++n) {
    force_plan(*node_cores_[static_cast<std::size_t>(n)],
               initial[static_cast<std::size_t>(n)]);
  }
  record_ownership();

  for (int a = 0; a < topology_->apprank_count(); ++a) {
    ApprankState& st = appranks_[static_cast<std::size_t>(a)];
    st.deps = std::make_unique<nanos::DependencyGraph>(pool_);
    st.locations =
        std::make_unique<nanos::DataLocations>(topology_->home_node(a));
  }

  if (config_.drom_active()) schedule_policy_tick();
  if (resil_active()) start_heartbeats();
  if (elastic_ctrl_ != nullptr) schedule_elastic_tick();
  start_iteration_all();
}

RunResult ClusterRuntime::finalize() {
  PROF_SCOPE("core.finalize");
  // Collect statistics. Runtime-event counters were incremented into the
  // registry live; RunResult is the stable compatibility view over it.
  result_.control_messages = m_.control_messages->value();
  result_.transfer_bytes = m_.transfer_bytes->value();
  result_.tasks_reexecuted = m_.tasks_reexecuted->value();
  result_.workers_crashed = m_.workers_crashed->value();
  result_.heartbeat_messages = m_.heartbeat_messages->value();
  result_.detections = m_.detections->value();
  result_.false_suspicions = m_.false_suspicions->value();
  result_.detection_latency_sum = m_.detection_latency_sum->value();
  result_.lease_retransmits = m_.lease_retransmits->value();
  result_.lease_expiries = m_.lease_expiries->value();
  result_.duplicates_suppressed = m_.duplicates_suppressed->value();
  result_.quarantine_ejections = m_.quarantine_ejections->value();
  result_.quarantine_readmissions = m_.quarantine_readmissions->value();
  result_.policy_downshifts = m_.policy_downshifts->value();
  result_.rewired_edges = m_.rewired_edges->value();
  result_.perfect_time = m_.perfect_time->value();
  result_.tasks_total = recorder_->tasks_total();
  result_.tasks_offloaded = recorder_->tasks_offloaded();
  result_.work_total = recorder_->work_total();
  result_.work_offloaded = recorder_->work_offloaded();
  for (const auto& lw : lewi_) {
    result_.lewi_lends += lw->lends();
    result_.lewi_borrows += lw->borrows();
    result_.lewi_reclaims += lw->reclaims();
  }
  for (const auto& dm : drom_) result_.drom_moves += dm->ownership_changes();
  result_.messages_lost =
      app_comm_->messages_lost() + ctrl_comm_->messages_lost();
  result_.retransmissions =
      app_comm_->retransmissions() + ctrl_comm_->retransmissions();
  result_.sched_policy = scheduler_->name();
  result_.sched = sched_retired_;  // policies retired by mid-run hot-swaps
  result_.sched.merge(scheduler_->stats());
  result_.events_fired = engine_.events_fired();

  // Snapshot the remaining subsystem statistics into the registry so one
  // serialization (Registry::to_json) covers the whole run.
  metrics_.counter("core.tasks_total").inc(result_.tasks_total);
  metrics_.counter("core.tasks_offloaded").inc(result_.tasks_offloaded);
  metrics_.gauge("core.work_total").set(result_.work_total);
  metrics_.gauge("core.work_offloaded").set(result_.work_offloaded);
  metrics_.gauge("core.makespan_s").set(result_.makespan);
  metrics_.counter("dlb.lewi_lends").inc(result_.lewi_lends);
  metrics_.counter("dlb.lewi_borrows").inc(result_.lewi_borrows);
  metrics_.counter("dlb.lewi_reclaims").inc(result_.lewi_reclaims);
  metrics_.counter("dlb.drom_moves").inc(result_.drom_moves);
  metrics_.counter("vmpi.messages_lost").inc(result_.messages_lost);
  metrics_.counter("vmpi.retransmissions").inc(result_.retransmissions);
  metrics_.counter("sched.decisions").inc(result_.sched.decisions);
  metrics_.counter("sched.offloads_considered")
      .inc(result_.sched.offloads_considered);
  metrics_.counter("sched.offloads_steered")
      .inc(result_.sched.offloads_steered);
  metrics_.counter("sched.offloads_suppressed")
      .inc(result_.sched.offloads_suppressed);
  metrics_.counter("sched.switches").inc(result_.sched.switches);
  metrics_.counter("sched.state_touched").inc(result_.sched.state_touched);
  metrics_.counter("sched.policy_swaps").inc(sched_swaps_);
  if (const auto* h =
          dynamic_cast<const hier::HierScheduler*>(scheduler_.get())) {
    metrics_.counter("hier.summary_refreshes").inc(h->summary_refreshes());
    metrics_.gauge("hier.masters")
        .set(static_cast<double>(h->balancer().master_count()));
  }
  metrics_.counter("sim.events_fired").inc(result_.events_fired);
  if (fabric_ != nullptr) {
    metrics_.counter("net.flows_started").inc(fabric_->flows_started());
    metrics_.counter("net.flows_completed").inc(fabric_->flows_completed());
    metrics_.counter("net.flows_cancelled").inc(fabric_->flows_cancelled());
    metrics_.counter("net.bytes_delivered").inc(fabric_->bytes_delivered());
    metrics_.counter("net.solver_runs").inc(fabric_->solver_runs());
    metrics_.counter("net.solver_flows_touched")
        .inc(fabric_->solver_flows_touched());
    metrics_.counter("net.solver_links_touched")
        .inc(fabric_->solver_links_touched());
    obs::Histogram& fct = metrics_.histogram(
        "net.fct_s",
        {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0});
    for (const double f : fabric_->completion_times()) fct.add(f);
  }
  const obs::PopReport pr = pop();
  metrics_.gauge("pop.parallel_efficiency").set(pr.parallel_efficiency);
  metrics_.gauge("pop.load_balance").set(pr.load_balance);
  metrics_.gauge("pop.communication_efficiency")
      .set(pr.communication_efficiency);
  metrics_.gauge("pop.transfer_efficiency").set(pr.transfer_efficiency);
  if (span_collector_ != nullptr) {
    metrics_.counter("obs.rescues").inc(span_collector_->rescues());
    metrics_.gauge("obs.transfer_wait_core_s")
        .set(span_collector_->transfer_wait_core_seconds());
  }
  if (stream_sink_ != nullptr) {
    metrics_.counter("obs.rescues").inc(stream_sink_->rescues());
    metrics_.gauge("obs.transfer_wait_core_s")
        .set(stream_sink_->transfer_wait_core_seconds());
    // Close before snapshotting so the spill file (footer + trailer) is
    // complete and the byte count final when the bench reads it.
    stream_sink_->close();
    metrics_.counter("stream.spans_spilled")
        .inc(stream_sink_->spans_spilled());
    metrics_.counter("stream.bytes_written")
        .inc(stream_sink_->bytes_written());
    metrics_.gauge("stream.peak_open_spans")
        .set(static_cast<double>(stream_sink_->peak_open_spans()));
  }
  return result_;
}

// --- SPMD iteration orchestration -------------------------------------------

void ClusterRuntime::start_iteration_all() {
  double iteration_work = 0.0;
  for (int a = 0; a < topology_->apprank_count(); ++a) {
    ApprankState& st = appranks_[static_cast<std::size_t>(a)];
    st.iteration_start = engine_.now();
    const auto specs = workload_->make_tasks(a, st.iteration);
    st.outstanding = specs.size();
    for (const TaskSpec& spec : specs) {
      iteration_work += spec.work;
      const nanos::TaskId id =
          pool_.create(a, spec.work, spec.accesses, spec.offloadable);
      nanos::Task& t = pool_.get(id);
      t.created_at = engine_.now();
      sink().task_created(id, a, engine_.now());
      if (st.deps->register_task(id)) {
        t.ready_at = engine_.now();
        sink().task_ready(id, engine_.now());
        on_task_ready(id);
      }
    }
    if (st.outstanding == 0) enter_barrier(a);
  }
  m_.perfect_time->add(iteration_work / config_.cluster.total_capacity());
  for (int n = 0; n < topology_->node_count(); ++n) kick_node(n);
}

void ClusterRuntime::enter_barrier(int apprank) {
  ApprankState& st = appranks_[static_cast<std::size_t>(apprank)];
  st.taskwait_done = engine_.now();
  // The apprank's MPI exchange runs in non-offloadable context on the home
  // node: pull any remote result data home first (§4, §3.2 no automatic
  // write-back — this is the point where values are actually needed).
  const auto regions = workload_->barrier_regions(apprank, st.iteration);
  const int home = topology_->home_node(apprank);
  auto do_barrier = [this, apprank] {
    app_comm_->barrier(apprank, [this] {
      if (++barrier_arrivals_ == topology_->apprank_count()) {
        barrier_arrivals_ = 0;
        on_barrier_done();
      }
    });
  };
  if (fabric_ != nullptr) {
    // Net mode: each remote piece streams home as its own flow (sharing
    // the fabric with every other transfer); the barrier is entered when
    // the last one lands. Home nodes never crash, so no teardown needed.
    const auto sources = st.locations->pull_by_source(regions, home);
    auto remaining = std::make_shared<int>(0);
    for (const auto& [src, bytes] : sources) {
      m_.transfer_bytes->inc(bytes);
      *remaining += 1;
      fabric_->start_flow(src, home, bytes, [remaining, do_barrier] {
        if (--*remaining == 0) do_barrier();
      });
    }
    if (*remaining == 0) do_barrier();
    return;
  }
  const std::uint64_t bytes = st.locations->pull(regions, home);
  sim::SimTime delay = 0.0;
  if (bytes > 0) {
    delay = faulted_transfer_time(bytes);
    m_.transfer_bytes->inc(bytes);
  }
  engine_.after(delay, do_barrier);
}

void ClusterRuntime::on_barrier_done() {
  const int iteration = appranks_.front().iteration;
  result_.iteration_times.push_back(engine_.now() - last_barrier_time_);
  m_.iteration_time->add(engine_.now() - last_barrier_time_);
  last_barrier_time_ = engine_.now();
  if (config_.obs.pop_windows) capture_pop_window(iteration);
  if (stream_sink_ != nullptr) {
    // Windowed telemetry snapshot at the barrier epoch: cumulative engine
    // and spill counters, differenced by readers for per-window rates.
    stream_sink_->metric_window(iteration, engine_.now(),
                                engine_.events_fired());
  }

  std::vector<double> apprank_times(
      static_cast<std::size_t>(topology_->apprank_count()));
  for (int a = 0; a < topology_->apprank_count(); ++a) {
    ApprankState& st = appranks_[static_cast<std::size_t>(a)];
    apprank_times[static_cast<std::size_t>(a)] =
        st.taskwait_done - st.iteration_start;
    ++st.iteration;
  }
  workload_->on_iteration_done(iteration, apprank_times);

  if (iteration + 1 < workload_->iteration_count()) {
    start_iteration_all();
  } else {
    done_ = true;
    result_.makespan = engine_.now() - start_time_;
    engine_.cancel(policy_event_);
    policy_event_ = sim::kInvalidEvent;
    if (on_complete_) on_complete_();
  }
}

void ClusterRuntime::capture_pop_window(int epoch) {
  const sim::SimTime end = engine_.now();
  const int workers = topology_->worker_count();
  std::vector<obs::PopWorkerInput> inputs;
  inputs.reserve(static_cast<std::size_t>(workers));
  std::vector<double> busy_now(static_cast<std::size_t>(workers), 0.0);
  for (int w = 0; w < workers; ++w) {
    busy_now[static_cast<std::size_t>(w)] = talp_->busy_core_seconds(w);
    // Workers added mid-run (expander rewire) have no snapshot yet: their
    // whole busy total belongs to this window.
    const double prev = static_cast<std::size_t>(w) < window_busy_.size()
                            ? window_busy_[static_cast<std::size_t>(w)]
                            : 0.0;
    obs::PopWorkerInput in;
    in.worker = w;
    in.apprank = topology_->worker(w).apprank;
    in.busy_core_seconds = busy_now[static_cast<std::size_t>(w)] - prev;
    inputs.push_back(in);
  }
  double total_cores = 0.0;
  for (const auto& n : config_.cluster.nodes) total_cores += n.cores;
  const obs::PopReport r =
      obs::pop_report(inputs, topology_->apprank_count(), total_cores,
                      end - window_start_time_, 0.0);
  obs::PopWindowRow row;
  row.epoch = epoch;
  row.t_begin = window_start_time_;
  row.t_end = end;
  row.parallel_efficiency = r.parallel_efficiency;
  row.load_balance = r.load_balance;
  row.communication_efficiency = r.communication_efficiency;
  pop_windows_.push_back(row);
  window_busy_ = std::move(busy_now);
  window_start_time_ = end;
}

// --- Scheduling (§5.5) --------------------------------------------------------

int ClusterRuntime::owned_cores(WorkerId w) const {
  const int node = topology_->worker(w).node;
  return node_cores_[static_cast<std::size_t>(node)]->owned_count(w);
}

int ClusterRuntime::pick_worker(const nanos::Task& task) {
  PROF_SCOPE("sched.pick");
  // The §5.5 rule itself lives in tlb::sched (Scheduler::locality_pick,
  // the "locality" policy); alternative policies steer or suppress
  // offloads based on runtime feedback. Deviations from the baseline are
  // annotated on the trace timeline so figure scripts can correlate them
  // with congestion marks.
  const sched::Decision d = scheduler_->pick(task);
  if (d.kind == sched::DecisionKind::Steered) {
    recorder_->mark(engine_.now(),
                    "sched steer: task " + std::to_string(task.id) +
                        " -> worker " + std::to_string(d.worker),
                    trace::MarkKind::SchedSteer, d.worker);
    sink().sched_decision(task.id, obs::SchedVerdict::Steered, d.worker,
                          engine_.now());
  } else if (d.kind == sched::DecisionKind::Suppressed) {
    recorder_->mark(engine_.now(),
                    "sched suppress: task " + std::to_string(task.id) +
                        (d.worker >= 0 ? " held home" : " held centrally"),
                    trace::MarkKind::SchedSuppress, d.worker);
    sink().sched_decision(task.id, obs::SchedVerdict::Suppressed, d.worker,
                          engine_.now());
  }
  return d.worker;
}

void ClusterRuntime::on_task_ready(nanos::TaskId id) {
  nanos::Task& task = pool_.get(id);
  assert(task.state == nanos::TaskState::Ready);
  if (!task.offloadable) {
    // Must execute in the apprank's own process (it may call MPI, §4).
    assign_to_worker(id, topology_->home_worker(task.apprank));
    return;
  }
  const int w = pick_worker(task);
  if (w >= 0) {
    assign_to_worker(id, w);
  } else {
    appranks_[static_cast<std::size_t>(task.apprank)].central.push_back(id);
  }
}

void ClusterRuntime::assign_to_worker(nanos::TaskId id, WorkerId w) {
  nanos::Task& task = pool_.get(id);
  const WorkerInfo& info = topology_->worker(w);
  assert(usable(w));
  task.state = nanos::TaskState::Scheduled;
  task.scheduled_node = info.node;
  workers_[static_cast<std::size_t>(w)].inflight += 1;
  sink().task_scheduled(id, w, info.node, !info.is_home, engine_.now());

  // Offloading is final from here (§5.5). A home assignment is a local
  // runtime call; a remote one is an offload control message over the
  // control plane (it pays the link latency and can be degraded or lost
  // and retransmitted). The eager input transfer starts once the helper
  // has learned of the task.
  if (info.is_home) {
    finish_assignment(id, w);
    return;
  }
  m_.control_messages->inc();
  workers_[static_cast<std::size_t>(w)].pending += 1;
  if (resil_active()) {
    // Lease/ACK protocol (tlb::resil): the assignment is covered by an
    // epoch-stamped lease; the offload must be acknowledged within the
    // lease timeout or it is retransmitted with capped backoff.
    resil::LeaseRecord& lease = leases_.grant(id, w, engine_.now());
    send_offload(id, w, lease.epoch);
    lease.timer =
        engine_.after(resil::LeaseTable::backoff_delay(config_.resil, 1),
                      [this, id] { on_lease_timeout(id); });
    return;
  }
  const WorkerId home = topology_->home_worker(task.apprank);
  ctrl_comm_->send(home, w, kTagOffload, 0,
                   [this, id, w](const vmpi::Message&) {
                     workers_[static_cast<std::size_t>(w)].pending -= 1;
                     if (!alive_[static_cast<std::size_t>(w)] ||
                         retired_[static_cast<std::size_t>(w)]) {
                       // The helper crashed — or its node was retired by
                       // elastic scale-in — while the offload message was
                       // in flight: the task must not land there.
                       rescue_task(id, w);
                       return;
                     }
                     finish_assignment(id, w);
                     kick_node(topology_->worker(w).node);
                   });
  // Consume the message at the receiver (the logic lives in the delivery
  // callback above; this keeps the helper's mailbox from accumulating).
  ctrl_comm_->recv(w, vmpi::kAnySource, vmpi::kAnyTag,
                   [](const vmpi::Message&) {});
}

void ClusterRuntime::finish_assignment(nanos::TaskId id, WorkerId w) {
  nanos::Task& task = pool_.get(id);
  const WorkerInfo& info = topology_->worker(w);
  nanos::DataLocations& loc =
      *appranks_[static_cast<std::size_t>(task.apprank)].locations;
  if (fabric_ != nullptr) {
    // Net mode: one flow per source node holding a missing piece of the
    // task's input. The task may not compute before the last flow lands
    // (on_input_arrived); data_ready_at is refined there.
    const auto sources = loc.missing_by_source(task.accesses, info.node);
    std::uint64_t bytes = 0;
    PendingData pd;
    for (const auto& [src, b] : sources) {
      bytes += b;
      pd.flows.push_back(fabric_->start_flow(
          src, info.node, b, [this, id] { on_input_arrived(id); }));
    }
    task.transfer_bytes = bytes;
    task.data_ready_at = engine_.now();
    if (bytes > 0) {
      m_.transfer_bytes->inc(bytes);
      sink().transfer_begin(id, bytes, info.node, engine_.now());
      pd.remaining = static_cast<int>(pd.flows.size());
      pd.worker = w;
      pd.started = engine_.now();
      prof::alloc_note(
          prof::AllocTag::CorePending,
          sizeof(PendingData) + pd.flows.capacity() * sizeof(net::FlowId));
      pending_data_[id] = std::move(pd);
    }
    workers_[static_cast<std::size_t>(w)].queue.push_back(id);
    return;
  }
  const std::uint64_t bytes =
      loc.missing_input_bytes(task.accesses, info.node);
  task.transfer_bytes = bytes;
  sim::SimTime cost = 0.0;
  if (bytes > 0) {
    cost = faulted_transfer_time(bytes);
    m_.transfer_bytes->inc(bytes);
    // The analytic model resolves the transfer window up front; record
    // both edges now (the end timestamp lies in the future, which the
    // span record represents exactly).
    sink().transfer_begin(id, bytes, info.node, engine_.now());
    sink().transfer_end(id, engine_.now() + cost);
  }
  task.data_ready_at = engine_.now() + cost;
  workers_[static_cast<std::size_t>(w)].queue.push_back(id);
}

void ClusterRuntime::dispatch(WorkerId w) {
  if (!usable(w)) return;
  const WorkerInfo& info = topology_->worker(w);
  dlb::NodeCores& nc = *node_cores_[static_cast<std::size_t>(info.node)];
  WorkerState& ws = workers_[static_cast<std::size_t>(w)];
  ApprankState& st = appranks_[static_cast<std::size_t>(info.apprank)];

  while (true) {
    const auto idle = nc.idle_leased_cores(w);
    if (idle.empty()) return;
    if (ws.queue.empty()) {
      // Steal from the apprank's central queue: an idle core is capacity
      // by definition ("stolen as tasks complete", §5.5). A remote
      // assignment is asynchronous (offload control message in flight),
      // so pre-claim at most one in-flight task per idle core; each
      // delivery callback kicks this node again.
      if (st.central.empty()) return;
      if (ws.pending >= static_cast<int>(idle.size())) return;
      const nanos::TaskId id = st.central.front();
      st.central.pop_front();
      assign_to_worker(id, w);
      continue;
    }
    const nanos::TaskId id = ws.queue.front();
    ws.queue.pop_front();
    start_task(id, w, idle.front());
  }
}

void ClusterRuntime::start_task(nanos::TaskId id, WorkerId w, int core) {
  nanos::Task& task = pool_.get(id);
  const WorkerInfo& info = topology_->worker(w);
  assert(task.state == nanos::TaskState::Scheduled);
  task.state = nanos::TaskState::Running;
  task.start_at = engine_.now();
  task.executed_worker = w;
  task.executed_core = core;
  task.executions += 1;
  // Feedback to the scheduling policy: how long the task waited between
  // readiness and claiming a core (the "waittime" offload-throttle signal).
  scheduler_->on_task_started(task, w, engine_.now() - task.ready_at);

  dlb::NodeCores& nc = *node_cores_[static_cast<std::size_t>(info.node)];
  nc.task_started(core);

  sim::SimTime transfer_wait =
      std::max(0.0, task.data_ready_at - engine_.now());
  if (nc.owner(core) != w) {
    // Borrowed core: pay the lend/borrow friction (§5.5 — borrowed cores
    // are never as efficient as owned ones).
    transfer_wait += config_.borrowed_core_overhead;
  }

  RunningExec run;
  run.task = id;
  run.worker = w;
  run.node = info.node;
  run.core = core;
  if (resil_active()) {
    if (const resil::LeaseRecord* lease = leases_.find(id)) {
      assert(lease->worker == w);
      run.epoch = lease->epoch;
    }
  }
  const std::uint64_t exec_id = next_exec_++;

  auto pd = pending_data_.find(id);
  if (pd != pending_data_.end() && pd->second.remaining > 0) {
    // Net mode: the inputs are still streaming over the fabric. Park the
    // execution (core occupied, not busy — same semantics as the analytic
    // transfer wait); the last flow's arrival resumes it. The borrowed-
    // core friction is paid after the data lands, mirroring the analytic
    // path where it extends the transfer wait.
    pd->second.exec = exec_id;
    pd->second.exec_waiting = true;
    pd->second.overhead = transfer_wait;
    prof::alloc_note(prof::AllocTag::CoreExec, sizeof(RunningExec));
    running_.emplace(exec_id, run);
    return;
  }

  prof::alloc_note(prof::AllocTag::CoreExec, sizeof(RunningExec));
  running_.emplace(exec_id, run);
  begin_compute(exec_id, transfer_wait);
}

void ClusterRuntime::begin_compute(std::uint64_t exec_id, sim::SimTime wait) {
  auto it = running_.find(exec_id);
  assert(it != running_.end());
  RunningExec& run = it->second;
  const WorkerId w = run.worker;
  const int node = run.node;
  const int apprank = topology_->worker(w).apprank;
  const double speed = node_speed_[static_cast<std::size_t>(node)];
  const sim::SimTime compute = pool_.get(run.task).work / speed;

  // Busy accounting covers the compute phase only: a core waiting for data
  // is occupied but not busy (the paper's borrowed-core under-utilisation).
  if (wait > 0.0) {
    run.busy_event =
        engine_.after(wait, [this, exec_id, w, node, apprank] {
          talp_->on_busy_delta(w, +1);
          recorder_->busy_delta(engine_.now(), node, apprank, +1);
          auto it2 = running_.find(exec_id);
          assert(it2 != running_.end());
          it2->second.busy_applied = true;
          // A ghost's lease moved on and the task already has a newer
          // attempt; recording into it would corrupt that attempt.
          if (!it2->second.ghost) {
            sink().exec_begin(it2->second.task, w, node, it2->second.core,
                              engine_.now());
          }
        });
  } else {
    talp_->on_busy_delta(w, +1);
    recorder_->busy_delta(engine_.now(), node, apprank, +1);
    run.busy_applied = true;
    if (!run.ghost) {
      sink().exec_begin(run.task, w, node, run.core, engine_.now());
    }
  }
  run.finish_event = engine_.after(wait + compute, [this, exec_id] {
    on_task_finished(exec_id);
  });
}

void ClusterRuntime::on_input_arrived(nanos::TaskId id) {
  auto it = pending_data_.find(id);
  if (it == pending_data_.end()) return;  // torn down meanwhile
  PendingData& pd = it->second;
  assert(pd.remaining > 0);
  if (--pd.remaining > 0) return;
  pool_.get(id).data_ready_at = engine_.now();
  sink().transfer_end(id, engine_.now());
  const bool waiting = pd.exec_waiting;
  const std::uint64_t exec = pd.exec;
  const sim::SimTime overhead = pd.overhead;
  // Feedback to the scheduling policy: observed flow-completion time of
  // this task's input transfers (the "congestion" per-helper FCT signal).
  scheduler_->on_inputs_landed(pd.worker, engine_.now() - pd.started);
  prof::free_note(
      prof::AllocTag::CorePending,
      sizeof(PendingData) + pd.flows.capacity() * sizeof(net::FlowId));
  pending_data_.erase(it);
  if (waiting) begin_compute(exec, overhead);
}

void ClusterRuntime::cancel_input_flows(nanos::TaskId id) {
  if (fabric_ == nullptr) return;
  auto it = pending_data_.find(id);
  if (it == pending_data_.end()) return;
  for (const net::FlowId f : it->second.flows) fabric_->cancel(f);
  prof::free_note(prof::AllocTag::CorePending,
                  sizeof(PendingData) +
                      it->second.flows.capacity() * sizeof(net::FlowId));
  pending_data_.erase(it);
}

void ClusterRuntime::on_task_finished(std::uint64_t exec_id) {
  auto itr = running_.find(exec_id);
  assert(itr != running_.end());
  const RunningExec run = itr->second;
  prof::free_note(prof::AllocTag::CoreExec, sizeof(RunningExec));
  running_.erase(itr);
  const WorkerId w = run.worker;
  const int node = run.node;
  const WorkerInfo& info = topology_->worker(w);
  nanos::Task& task = pool_.get(run.task);

  talp_->on_busy_delta(w, -1);
  recorder_->busy_delta(engine_.now(), node, info.apprank, -1);
  node_cores_[static_cast<std::size_t>(node)]->task_finished(run.core);

  if (run.ghost) {
    // Disowned execution (its lease was revoked after a suspicion): it
    // frees its core and reports a completion that names a stale epoch —
    // the home runtime suppresses it. No scheduler state moves here; the
    // task itself was already re-queued elsewhere.
    m_.control_messages->inc();
    const WorkerId home_w = topology_->home_worker(info.apprank);
    ctrl_comm_->send(w, home_w, kTagComplete, 0,
                     [this, id = run.task, w, epoch = run.epoch](
                         const vmpi::Message&) { on_completion(id, w, epoch); });
    ctrl_comm_->recv(home_w, vmpi::kAnySource, vmpi::kAnyTag,
                     [](const vmpi::Message&) {});
    kick_node(node);
    return;
  }

  task.finish_at = engine_.now();
  sink().exec_end(run.task, engine_.now());
  workers_[static_cast<std::size_t>(w)].inflight -= 1;

  const int apprank = task.apprank;
  const int home = topology_->home_node(apprank);
  recorder_->task_executed(apprank, node, home, task.work);
  appranks_[static_cast<std::size_t>(apprank)].locations->task_executed(
      task.accesses, node);

  // Dependency release and taskwait accounting happen on the apprank's
  // home runtime instance; a remote completion needs a control message.
  if (node != home) {
    m_.control_messages->inc();
    const WorkerId home_w = topology_->home_worker(apprank);
    if (resil_active()) {
      // The completion names its lease epoch so the home runtime can tell
      // a current execution from a zombie's (exactly-once accounting).
      resil::LeaseRecord* lease = leases_.find(run.task);
      if (lease != nullptr && lease->worker == w &&
          lease->epoch == run.epoch) {
        lease->completion_in_flight = true;
      }
      ctrl_comm_->send(w, home_w, kTagComplete, 0,
                       [this, id = run.task, w, epoch = run.epoch](
                           const vmpi::Message&) {
                         on_completion(id, w, epoch);
                       });
    } else {
      ctrl_comm_->send(w, home_w, kTagComplete, 0,
                       [this, id = run.task](const vmpi::Message&) {
                         complete_task(id);
                       });
    }
    ctrl_comm_->recv(home_w, vmpi::kAnySource, vmpi::kAnyTag,
                     [](const vmpi::Message&) {});
  } else {
    complete_task(run.task);
  }

  kick_node(node);
}

void ClusterRuntime::complete_task(nanos::TaskId id) {
  const int apprank = pool_.get(id).apprank;
  ApprankState& state = appranks_[static_cast<std::size_t>(apprank)];
  sink().task_done(id, engine_.now());
  const auto ready = state.deps->on_task_finished(id);
  std::vector<int> touched;
  for (nanos::TaskId r : ready) {
    nanos::Task& rt = pool_.get(r);
    rt.ready_at = engine_.now();
    sink().task_ready(r, engine_.now());
    on_task_ready(r);
    if (rt.state == nanos::TaskState::Scheduled) {
      touched.push_back(rt.scheduled_node);
    }
  }
  assert(state.outstanding > 0);
  if (--state.outstanding == 0) {
    enter_barrier(apprank);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (int n : touched) kick_node(n);
}

void ClusterRuntime::kick_node(int node) {
  dlb::NodeCores& nc = *node_cores_[static_cast<std::size_t>(node)];
  dlb::LewiModule& lw = *lewi_[static_cast<std::size_t>(node)];
  const auto& residents = topology_->workers_on_node(node);

  // Crashed and quarantined workers take no new work: their backlog reads
  // as zero, so they reclaim and borrow nothing and lend what they hold.
  auto backlog_of = [this](WorkerId w) -> int {
    if (!usable(w)) return 0;
    const WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    const ApprankState& st =
        appranks_[static_cast<std::size_t>(topology_->worker(w).apprank)];
    return static_cast<int>(ws.queue.size() + st.central.size()) + ws.pending;
  };

  // Only the crash itself removes a worker from DLB's node-local view
  // (shared memory dies with the process); quarantine is a scheduler-side
  // verdict and must not touch a possibly-alive worker's cores directly.
  auto is_alive = [this](WorkerId w) {
    return alive_[static_cast<std::size_t>(w)] != 0;
  };

  // 1. Owners with backlog reclaim their lent-out cores (§5.3).
  if (lw.enabled()) {
    for (WorkerId w : residents) {
      if (!is_alive(w)) continue;
      const int idle = static_cast<int>(nc.idle_leased_cores(w).size());
      const int deficit = backlog_of(w) - idle;
      if (deficit > 0) lw.reclaim_for(w, deficit);
    }
  }
  // 2. Run whatever fits on currently leased idle cores.
  for (WorkerId w : residents) dispatch(w);
  // 3. Idle workers lend their remaining cores into the pool.
  if (lw.enabled()) {
    for (WorkerId w : residents) {
      if (is_alive(w) && backlog_of(w) == 0) lw.lend_idle(w);
    }
    // 4. Backlogged workers borrow from the pool.
    for (WorkerId w : residents) {
      if (!is_alive(w)) continue;
      const int idle = static_cast<int>(nc.idle_leased_cores(w).size());
      const int want = backlog_of(w) - idle;
      if (want > 0) {
        lw.borrow(w, want);
        dispatch(w);
      }
    }
  }
}

// --- DROM policy loop (§5.4) ---------------------------------------------------

void ClusterRuntime::schedule_policy_tick() {
  const sim::SimTime period = config_.policy == PolicyKind::Local
                                  ? config_.local_period
                                  : config_.global_period;
  policy_event_ = engine_.after(period, [this] { policy_tick(); });
}

void ClusterRuntime::policy_tick() {
  if (done_) return;
  PROF_SCOPE("core.policy_tick");
  if (busy_smoothed_.size() <
      static_cast<std::size_t>(topology_->worker_count())) {
    // First tick, or the topology gained a worker through a rewire.
    busy_smoothed_.resize(static_cast<std::size_t>(topology_->worker_count()),
                          0.0);
  }
  const double s = config_.busy_smoothing;
  std::vector<double> busy(static_cast<std::size_t>(topology_->worker_count()));
  for (int w = 0; w < topology_->worker_count(); ++w) {
    auto& ema = busy_smoothed_[static_cast<std::size_t>(w)];
    if (!usable(w)) {
      // Crashed or quarantined worker: no residual demand must leak into
      // the plans.
      ema = 0.0;
    } else {
      ema = s * ema + (1.0 - s) * talp_->window_average(w);
    }
    busy[static_cast<std::size_t>(w)] = ema;
  }
  talp_->reset_window();

  // Retired nodes contribute zero capacity: the solver's reduced graph has
  // no usable edges there, and a zero-core node rounds to an empty plan.
  std::vector<int> node_core_counts;
  node_core_counts.reserve(config_.cluster.nodes.size());
  for (std::size_t n = 0; n < config_.cluster.nodes.size(); ++n) {
    node_core_counts.push_back(node_retired_[n] ? 0
                                                : config_.cluster.nodes[n].cores);
  }

  // The mask is only passed once a worker is dead or quarantined, so a
  // fault-free run takes exactly the pre-fault code path.
  std::vector<char> usable_mask;
  const std::vector<char>* mask = nullptr;
  if (any_worker_unusable()) {
    usable_mask.resize(static_cast<std::size_t>(topology_->worker_count()));
    for (int w = 0; w < topology_->worker_count(); ++w) {
      usable_mask[static_cast<std::size_t>(w)] = usable(w) ? 1 : 0;
    }
    mask = &usable_mask;
  }

  // Solver fallback chain (tlb::resil): global solve -> local convergence
  // -> static proportional split. Each rung is strictly more robust and
  // strictly less informed than the one above it.
  OwnershipPlan plan;
  int level = config_.policy == PolicyKind::Global ? 0 : 1;
  if (level == 0) {
    const resil::ResilConfig& rc = config_.resil;
    if (rc.solver_time_budget > 0.0 &&
        config_.solver_latency > rc.solver_time_budget) {
      level = 1;  // the modelled solve cost exceeds the wall-clock budget
    } else {
      try {
        bool converged = true;
        plan = global_solver_plan(*topology_, node_core_counts, busy, mask,
                                  rc.solver_iteration_budget, &converged);
        if (rc.solver_iteration_budget > 0 && !converged) level = 1;
      } catch (const solver::InfeasibleAllocation&) {
        level = 1;
      }
    }
  }
  if (level == 1) {
    try {
      plan = local_convergence_plan(*topology_, node_core_counts, busy, mask);
    } catch (const std::exception&) {
      level = 2;
    }
  }
  if (level == 2) {
    plan = static_ownership_plan(*topology_, node_core_counts, mask);
  }
  if (level != policy_level_) {
    if (level > policy_level_) {
      m_.policy_downshifts->inc();
      mark_trace(level == 1 ? "policy downshift: global -> local"
                            : "policy downshift: -> static ownership");
    } else {
      mark_trace("policy restored");
    }
    policy_level_ = level;
  }

  if (config_.policy == PolicyKind::Global && config_.solver_latency > 0.0) {
    engine_.after(config_.solver_latency, [this, plan = std::move(plan)] {
      if (!done_) apply_plan(plan);
    });
  } else {
    apply_plan(plan);
  }
  schedule_policy_tick();
}

void ClusterRuntime::apply_plan(const OwnershipPlan& plan) {
  PROF_SCOPE("core.apply_plan");
  // A plan computed before a crash or suspicion (e.g. held back by
  // solver_latency) may still grant cores to an unusable worker; drop it —
  // the crash/suspicion already triggered a fresh solve.
  for (const auto& node_plan : plan) {
    for (const auto& [w, count] : node_plan) {
      (void)count;
      if (!usable(w)) return;
    }
  }
  for (int n = 0; n < topology_->node_count(); ++n) {
    drom_[static_cast<std::size_t>(n)]->apply(plan[static_cast<std::size_t>(n)]);
  }
  record_ownership();
  for (int n = 0; n < topology_->node_count(); ++n) kick_node(n);
}

void ClusterRuntime::record_ownership() {
  for (int n = 0; n < topology_->node_count(); ++n) {
    const dlb::NodeCores& nc = *node_cores_[static_cast<std::size_t>(n)];
    for (WorkerId w : topology_->workers_on_node(n)) {
      recorder_->set_owned(engine_.now(), n, topology_->worker(w).apprank,
                           nc.owned_count(w));
    }
  }
}

// --- perturbation / resilience (tlb::fault) -----------------------------------

bool ClusterRuntime::any_worker_dead() const {
  for (char a : alive_) {
    if (!a) return true;
  }
  return false;
}

bool ClusterRuntime::any_worker_unusable() const {
  for (std::size_t w = 0; w < alive_.size(); ++w) {
    if (!alive_[w] || suspected_[w] || retired_[w]) return true;
  }
  return false;
}

void ClusterRuntime::set_node_speed(int node, double speed) {
  assert(node >= 0 && node < topology_->node_count());
  assert(speed > 0.0);
  node_speed_[static_cast<std::size_t>(node)] = speed;
}

void ClusterRuntime::set_link_fault(const vmpi::LinkFault& fault) {
  link_fault_ = fault;
  app_comm_->set_link_fault(fault);
  ctrl_comm_->set_link_fault(fault);
  // Net mode: the latency/bandwidth multipliers act on the fabric itself
  // (every in-flight flow re-shares the degraded links); loss and jitter
  // stay with the communicators.
  if (fabric_ != nullptr) {
    fabric_->set_global_fault(fault.latency_mult, fault.bandwidth_mult);
  }
}

sim::SimTime ClusterRuntime::faulted_transfer_time(std::uint64_t bytes) {
  // With a default LinkFault this reproduces LinkSpec::transfer_time
  // bit-for-bit (multiplying by 1.0 is exact) and draws no random numbers.
  const sim::LinkSpec& l = config_.cluster.link;
  sim::SimTime t = l.latency * link_fault_.latency_mult +
                   static_cast<double>(bytes) /
                       (l.bandwidth * link_fault_.bandwidth_mult);
  if (link_fault_.jitter_max > 0.0) {
    t += fault_rng_.uniform(0.0, link_fault_.jitter_max);
  }
  return t;
}

void ClusterRuntime::mark_trace(const std::string& label) {
  recorder_->mark(engine_.now(), label);
}

void ClusterRuntime::rescue_task(nanos::TaskId id, WorkerId from,
                                 bool charge_worker) {
  nanos::Task& task = pool_.get(id);
  assert(task.state == nanos::TaskState::Scheduled ||
         task.state == nanos::TaskState::Running);
  // Net mode: input flows streaming towards the voided assignment's node
  // are torn down (their bandwidth returns to the surviving flows); the
  // re-assignment below starts fresh ones.
  cancel_input_flows(id);
  if (charge_worker) workers_[static_cast<std::size_t>(from)].inflight -= 1;
  task.state = nanos::TaskState::Ready;
  task.scheduled_node = -1;
  task.data_ready_at = 0.0;
  task.reexecutions += 1;
  m_.tasks_reexecuted->inc();
  sink().task_rescued(id, from, engine_.now());
  on_task_ready(id);
}

void ClusterRuntime::crash_worker(WorkerId w) {
  assert(w >= 0 && w < topology_->worker_count());
  const WorkerInfo& info = topology_->worker(w);
  assert(!info.is_home &&
         "only helper ranks may crash; the apprank process is the app");
  if (!alive_[static_cast<std::size_t>(w)] || done_) return;
  alive_[static_cast<std::size_t>(w)] = 0;
  crashed_at_[static_cast<std::size_t>(w)] = engine_.now();
  m_.workers_crashed->inc();

  const int node = info.node;
  dlb::NodeCores& nc = *node_cores_[static_cast<std::size_t>(node)];

  // 1. Abort the tasks executing on the crashed worker: cancel their
  // completion events, undo busy accounting, free their cores. The ordered
  // exec-id map walks executions in start order, so the re-queue order is
  // identical on every standard-library implementation.
  std::vector<nanos::TaskId> lost;
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->second.worker != w) {
      ++it;
      continue;
    }
    RunningExec& run = it->second;
    engine_.cancel(run.finish_event);
    if (run.busy_applied) {
      talp_->on_busy_delta(w, -1);
      recorder_->busy_delta(engine_.now(), node, info.apprank, -1);
    } else {
      engine_.cancel(run.busy_event);
    }
    nc.task_finished(run.core);
    // Net mode: unhook a parked execution from its pending-data entry so
    // a late flow completion does not resume a dead exec id. (The flows
    // themselves are cancelled when the task is rescued; under Heartbeat
    // detection that happens at lease expiry.)
    auto pd = pending_data_.find(run.task);
    if (pd != pending_data_.end() && pd->second.exec_waiting &&
        pd->second.exec == it->first) {
      pd->second.exec_waiting = false;
    }
    if (!run.ghost) lost.push_back(run.task);
    prof::free_note(prof::AllocTag::CoreExec, sizeof(RunningExec));
    it = running_.erase(it);
  }

  // 2. Tasks assigned but not yet started die with the worker's queue.
  WorkerState& ws = workers_[static_cast<std::size_t>(w)];
  if (!resil_active()) {
    for (nanos::TaskId id : ws.queue) lost.push_back(id);
  }
  ws.queue.clear();

  // 3. Evict the worker from core ownership: its cores move to the
  // surviving residents (DROM invariant: every core keeps exactly one
  // owner), and cores it had borrowed return to their owners. This is
  // node-local: DLB's shared-memory view sees the process die instantly,
  // independent of any cluster-wide detection.
  std::vector<WorkerId> survivors;
  for (WorkerId r : topology_->workers_on_node(node)) {
    if (alive_[static_cast<std::size_t>(r)]) survivors.push_back(r);
  }
  // Nodes with a home apprank always keep it (homes cannot crash); a
  // helper-only node grown by elastic scale-out can lose its last worker,
  // in which case its cores keep their dead owner until the node retires
  // (no survivor may inherit them, and nothing schedules there).
  std::size_t rr = 0;
  for (int c = 0; c < nc.core_count(); ++c) {
    if (nc.owner(c) == w) {
      if (!survivors.empty()) {
        nc.set_owner(c, survivors[rr++ % survivors.size()]);
      }
    } else if (nc.lease(c) == w && !nc.is_running(c)) {
      nc.reclaim(c);
    }
  }
  record_ownership();

  if (resil_active()) {
    // Heartbeat detection: the crash is *not* announced to the home
    // runtimes. The worker merely falls silent; its leases stay open
    // (in-flight/pending accounting untouched) until heartbeat silence or
    // lease expiry makes suspect_worker observe the failure. Only the
    // node-local capacity freed above is re-usable immediately.
    kick_node(node);
    return;
  }

  // Oracle recovery: the failure is known cluster-wide the instant it
  // happens.
  // 4. If the crash disconnected the apprank from every helper, re-wire
  // the expander with a replacement helper before re-queueing.
  maybe_rewire(info.apprank);

  // 5. Re-queue the lost tasks; each is re-executed exactly once (the
  // scheduler never picks a dead worker again). Rescued tasks can land on
  // any adjacent node, so kick them all.
  for (nanos::TaskId id : lost) rescue_task(id, w);
  for (int n = 0; n < topology_->node_count(); ++n) kick_node(n);

  // 6. Fresh policy solve over the reduced offloading graph, without
  // waiting for the next periodic tick.
  if (config_.drom_active() && !done_) {
    engine_.cancel(policy_event_);
    policy_event_ = sim::kInvalidEvent;
    policy_tick();
  }
}

// --- failure detection / graceful degradation (tlb::resil) --------------------

void ClusterRuntime::start_heartbeats() {
  const sim::SimTime period = config_.resil.heartbeat_period;
  assert(period > 0.0);
  for (int w = 0; w < topology_->worker_count(); ++w) {
    if (topology_->worker(w).is_home) continue;
    // Deterministic stagger: first beats spread over one period so the
    // control plane is not hit by a synchronized burst (no RNG — the
    // phase is a pure function of the worker id).
    const sim::SimTime phase =
        period * (w + 1) / (topology_->worker_count() + 1);
    engine_.after(phase, [this, w] { send_heartbeat(w); });
  }
  engine_.after(period, [this] { detector_sweep(); });
}

void ClusterRuntime::send_heartbeat(WorkerId w) {
  // Crashed workers fell silent; retired workers shut down cleanly (and
  // detector_sweep skips them, so the silence never reads as a failure).
  if (done_ || !alive_[static_cast<std::size_t>(w)] ||
      retired_[static_cast<std::size_t>(w)]) {
    return;
  }
  m_.heartbeat_messages->inc();
  const WorkerId home = topology_->home_worker(topology_->worker(w).apprank);
  ctrl_comm_->send(w, home, kTagHeartbeat, 0,
                   [this, w](const vmpi::Message&) { on_heartbeat(w); });
  ctrl_comm_->recv(home, vmpi::kAnySource, vmpi::kAnyTag,
                   [](const vmpi::Message&) {});
  engine_.after(config_.resil.heartbeat_period,
                [this, w] { send_heartbeat(w); });
}

void ClusterRuntime::on_heartbeat(WorkerId w) {
  if (done_) return;
  last_heartbeat_[static_cast<std::size_t>(w)] = engine_.now();
  detectors_[static_cast<std::size_t>(w)].heartbeat(engine_.now());
}

void ClusterRuntime::detector_sweep() {
  if (done_) return;
  PROF_SCOPE("resil.sweep");
  const sim::SimTime now = engine_.now();
  for (int w = 0; w < topology_->worker_count(); ++w) {
    if (topology_->worker(w).is_home ||
        suspected_[static_cast<std::size_t>(w)] ||
        retired_[static_cast<std::size_t>(w)]) {
      continue;
    }
    const resil::PhiAccrualDetector& det =
        detectors_[static_cast<std::size_t>(w)];
    if (det.started()) {
      if (det.phi(now) > config_.resil.phi_threshold) suspect_worker(w);
    } else {
      // Bootstrap: no inter-arrival distribution yet (the worker died —
      // or its link degraded — before two heartbeats arrived). Judge the
      // silence against the configured period instead.
      const sim::SimTime since =
          now - std::max(0.0, last_heartbeat_[static_cast<std::size_t>(w)]);
      if (since >
          config_.resil.phi_threshold * config_.resil.heartbeat_period) {
        suspect_worker(w);
      }
    }
  }
  engine_.after(config_.resil.heartbeat_period, [this] { detector_sweep(); });
}

void ClusterRuntime::send_offload(nanos::TaskId id, WorkerId w,
                                  std::uint64_t epoch) {
  const WorkerId home = topology_->home_worker(pool_.get(id).apprank);
  ctrl_comm_->send(home, w, kTagOffload, 0,
                   [this, id, w, epoch](const vmpi::Message&) {
                     on_offload_delivered(id, w, epoch);
                   });
  ctrl_comm_->recv(w, vmpi::kAnySource, vmpi::kAnyTag,
                   [](const vmpi::Message&) {});
}

void ClusterRuntime::on_offload_delivered(nanos::TaskId id, WorkerId w,
                                          std::uint64_t epoch) {
  if (done_) return;
  if (!alive_[static_cast<std::size_t>(w)]) return;  // delivered into a corpse
  resil::LeaseRecord* lease = leases_.find(id);
  const bool current =
      lease != nullptr && lease->worker == w && lease->epoch == epoch;
  if (!current) {
    // Stale copy at a live worker: the home runtime has already re-queued
    // the task elsewhere (the lease moved on), but the helper cannot know
    // that. It executes the task as a zombie; the completion it eventually
    // reports names the stale epoch and is suppressed. Modelled off-book —
    // the zombie burns time, not scheduler state.
    const nanos::Task& task = pool_.get(id);
    const double speed =
        node_speed_[static_cast<std::size_t>(topology_->worker(w).node)];
    engine_.after(task.work / speed, [this, id, w, epoch] {
      if (done_ || !alive_[static_cast<std::size_t>(w)]) return;
      m_.control_messages->inc();
      const WorkerId home_w = topology_->home_worker(pool_.get(id).apprank);
      ctrl_comm_->send(w, home_w, kTagComplete, 0,
                       [this, id, w, epoch](const vmpi::Message&) {
                         on_completion(id, w, epoch);
                       });
      ctrl_comm_->recv(home_w, vmpi::kAnySource, vmpi::kAnyTag,
                       [](const vmpi::Message&) {});
    });
    return;
  }
  if (lease->helper_received) {
    // Duplicate copy (a retransmit raced the original): just re-ACK.
    send_ack(id, w, epoch);
    return;
  }
  lease->helper_received = true;
  workers_[static_cast<std::size_t>(w)].pending -= 1;
  send_ack(id, w, epoch);
  finish_assignment(id, w);
  kick_node(topology_->worker(w).node);
}

void ClusterRuntime::send_ack(nanos::TaskId id, WorkerId w,
                              std::uint64_t epoch) {
  m_.control_messages->inc();
  const WorkerId home = topology_->home_worker(pool_.get(id).apprank);
  ctrl_comm_->send(w, home, kTagAck, 0,
                   [this, id, w, epoch](const vmpi::Message&) {
                     on_ack(id, w, epoch);
                   });
  ctrl_comm_->recv(home, vmpi::kAnySource, vmpi::kAnyTag,
                   [](const vmpi::Message&) {});
}

void ClusterRuntime::on_ack(nanos::TaskId id, WorkerId w,
                            std::uint64_t epoch) {
  if (done_) return;
  resil::LeaseRecord* lease = leases_.find(id);
  if (lease == nullptr || lease->worker != w || lease->epoch != epoch) {
    return;  // stale ACK for a lease that has moved on
  }
  if (lease->acked) return;
  lease->acked = true;
  engine_.cancel(lease->timer);
  lease->timer = sim::kInvalidEvent;
  quarantine_->record_success(w);
}

void ClusterRuntime::on_lease_timeout(nanos::TaskId id) {
  if (done_) return;
  resil::LeaseRecord* lease = leases_.find(id);
  if (lease == nullptr || lease->acked) return;  // settled meanwhile
  const WorkerId w = lease->worker;
  if (lease->attempts < config_.resil.lease_max_attempts) {
    lease->attempts += 1;
    m_.lease_retransmits->inc();
    m_.control_messages->inc();
    send_offload(id, w, lease->epoch);
    lease->timer = engine_.after(
        resil::LeaseTable::backoff_delay(config_.resil, lease->attempts),
        [this, id] { on_lease_timeout(id); });
    return;
  }
  // Attempts exhausted: the lease expires. The task moves elsewhere; the
  // worker moves towards quarantine.
  m_.lease_expiries->inc();
  lease->timer = sim::kInvalidEvent;
  if (quarantine_->record_expiry(w) &&
      !suspected_[static_cast<std::size_t>(w)]) {
    suspect_worker(w);  // re-queues every lease on w, including this one
  } else if (!suspected_[static_cast<std::size_t>(w)]) {
    requeue_leased_task(id);
    kick_node(topology_->worker(w).node);
  }
}

void ClusterRuntime::on_completion(nanos::TaskId id, WorkerId w,
                                   std::uint64_t epoch) {
  if (done_) return;
  resil::LeaseRecord* lease = leases_.find(id);
  if (lease == nullptr || lease->worker != w || lease->epoch != epoch) {
    // Zombie or otherwise stale completion: the lease moved on (the task
    // was re-queued, possibly already completed elsewhere). Suppressing it
    // here is what makes completion accounting exactly-once at the home
    // runtime.
    m_.duplicates_suppressed->inc();
    return;
  }
  engine_.cancel(lease->timer);
  leases_.revoke(id);
  quarantine_->record_success(w);
  complete_task(id);
}

void ClusterRuntime::requeue_leased_task(nanos::TaskId id) {
  resil::LeaseRecord* lease = leases_.find(id);
  assert(lease != nullptr);
  const WorkerId w = lease->worker;
  engine_.cancel(lease->timer);
  if (!lease->helper_received) {
    // The offload never arrived; retire the pre-claimed slot.
    workers_[static_cast<std::size_t>(w)].pending -= 1;
  }
  // Drop the task from the helper's queue if it had not started there.
  auto& q = workers_[static_cast<std::size_t>(w)].queue;
  q.erase(std::remove(q.begin(), q.end(), id), q.end());
  // Disown a live execution into a ghost: it keeps burning its core until
  // it finishes, but its completion will name a stale epoch. An execution
  // still parked waiting for its input flows (net mode) is aborted outright
  // instead — rescue_task below cancels those flows, so the ghost could
  // never finish: free its core and erase it.
  for (auto rit = running_.begin(); rit != running_.end();) {
    RunningExec& run = rit->second;
    if (run.task != id || run.worker != w || run.ghost ||
        run.epoch != lease->epoch) {
      ++rit;
      continue;
    }
    auto pd = pending_data_.find(id);
    if (pd != pending_data_.end() && pd->second.exec_waiting &&
        pd->second.exec == rit->first) {
      pd->second.exec_waiting = false;
      node_cores_[static_cast<std::size_t>(run.node)]->task_finished(run.core);
      prof::free_note(prof::AllocTag::CoreExec, sizeof(RunningExec));
      rit = running_.erase(rit);
      continue;
    }
    run.ghost = true;
    ++rit;
  }
  const bool settled = lease->completion_in_flight;
  leases_.revoke(id);
  // When the helper already finished (its completion is in flight and will
  // be suppressed), the worker's in-flight accounting was settled at
  // finish time; charging it again would double-count.
  rescue_task(id, w, /*charge_worker=*/!settled);
}

void ClusterRuntime::suspect_worker(WorkerId w) {
  if (done_ || suspected_[static_cast<std::size_t>(w)]) return;
  const WorkerInfo& info = topology_->worker(w);
  assert(!info.is_home && "home workers are never suspected");
  suspected_[static_cast<std::size_t>(w)] = 1;

  // Detection verdict: real failure or false suspicion?
  if (!alive_[static_cast<std::size_t>(w)]) {
    m_.detections->inc();
    const double latency =
        engine_.now() - crashed_at_[static_cast<std::size_t>(w)];
    m_.detection_latency_sum->add(latency);
    if (recovery_series_ != nullptr) {
      recovery_series_->record_detection(engine_.now(), w, true, latency);
    }
    mark_trace("detected crash of worker " + std::to_string(w));
  } else {
    m_.false_suspicions->inc();
    if (recovery_series_ != nullptr) {
      recovery_series_->record_detection(engine_.now(), w, false, 0.0);
    }
    mark_trace("false suspicion of worker " + std::to_string(w));
  }

  // Outlier ejection (Envoy-style): out of pick_worker candidacy until the
  // cooling period ends, then probed back in.
  m_.quarantine_ejections->inc();
  const sim::SimTime cooled = quarantine_->eject(w, engine_.now());
  engine_.at(cooled, [this, w] { probe_worker(w); });

  // Re-queue everything leased to the suspect, in ascending task-id order.
  for (const std::uint64_t id : leases_.tasks_on(w)) {
    requeue_leased_task(static_cast<nanos::TaskId>(id));
  }

  // If the suspicion disconnected the apprank from every helper, re-wire.
  maybe_rewire(info.apprank);

  // Immediate policy re-solve over the usable workers, then let every node
  // pick up the re-queued work.
  if (config_.drom_active() && !done_) {
    engine_.cancel(policy_event_);
    policy_event_ = sim::kInvalidEvent;
    policy_tick();
  }
  for (int n = 0; n < topology_->node_count(); ++n) kick_node(n);
}

void ClusterRuntime::probe_worker(WorkerId w) {
  if (done_ || !suspected_[static_cast<std::size_t>(w)]) return;
  // The probe is a liveness check: has the worker produced a heartbeat
  // since it was ejected?
  if (alive_[static_cast<std::size_t>(w)] &&
      last_heartbeat_[static_cast<std::size_t>(w)] >
          quarantine_->ejected_at(w)) {
    suspected_[static_cast<std::size_t>(w)] = 0;
    quarantine_->readmit(w);
    // Forget pre-ejection inter-arrival history (it includes the silence
    // that caused the ejection and would poison the fresh estimate).
    detectors_[static_cast<std::size_t>(w)].reset();
    m_.quarantine_readmissions->inc();
    mark_trace("readmitted worker " + std::to_string(w));
    if (config_.drom_active() && !done_) {
      engine_.cancel(policy_event_);
      policy_event_ = sim::kInvalidEvent;
      policy_tick();
    }
    return;
  }
  // Still silent: extend the quarantine with a longer (capped) cooling.
  const sim::SimTime next = quarantine_->extend(w, engine_.now());
  engine_.at(next, [this, w] { probe_worker(w); });
}

void ClusterRuntime::maybe_rewire(int apprank) {
  if (!config_.resil.rewire_on_disconnect || done_) return;
  const auto& ws = topology_->workers_of_apprank(apprank);
  if (ws.size() < 2) return;  // degree-1 appranks never offload
  for (WorkerId w : ws) {
    if (!topology_->worker(w).is_home && usable(w)) return;  // still connected
  }

  // Replacement helper on the node with the most spare worker capacity.
  std::vector<int> spare(static_cast<std::size_t>(topology_->node_count()));
  for (int n = 0; n < topology_->node_count(); ++n) {
    // Retired nodes must not receive replacement helpers.
    spare[static_cast<std::size_t>(n)] =
        node_retired_[static_cast<std::size_t>(n)]
            ? 0
            : config_.cluster.nodes[static_cast<std::size_t>(n)].cores -
                  static_cast<int>(topology_->workers_on_node(n).size());
  }
  const int node = graph::pick_replacement_node(expander_.graph, apprank, spare);
  if (node < 0) {
    mark_trace("rewire failed: no node with spare capacity");
    return;
  }

  // Thread the new helper through every layer: graph edge, topology slot,
  // control-plane rank, TALP/quarantine/detector state, runtime vectors.
  expander_.graph.add_edge(apprank, node);
  const WorkerId w = topology_->add_worker(apprank, node);
  const vmpi::RankId rank = ctrl_comm_->add_rank(node);
  (void)rank;
  assert(rank == w && "control-plane ranks mirror worker ids");
  talp_->add_worker();
  workers_.emplace_back();
  alive_.push_back(1);
  retired_.push_back(0);
  suspected_.push_back(0);
  last_heartbeat_.push_back(-1.0);
  crashed_at_.push_back(-1.0);
  if (!busy_smoothed_.empty()) busy_smoothed_.push_back(0.0);
  if (resil_active()) {
    detectors_.emplace_back(config_.resil.phi_window, config_.resil.phi_min_std);
    quarantine_->add_worker();
    engine_.after(config_.resil.heartbeat_period,
                  [this, w] { send_heartbeat(w); });
  }
  m_.rewired_edges->inc();
  mark_trace("rewired apprank " + std::to_string(apprank) + " -> node " +
             std::to_string(node));
  // The new worker owns no cores yet; the policy re-solve that follows the
  // crash/suspicion grants it at least one (it is unpickable until then).
}

// --- elasticity (tlb::elastic) ------------------------------------------------

int ClusterRuntime::grow_node(const sim::NodeSpec& spec, int helpers) {
  if (done_) throw std::logic_error("grow_node: run already complete");
  if (workload_ == nullptr) {
    throw std::logic_error(
        "grow_node: call start() first (the initial ownership split must "
        "exist before the cluster can grow)");
  }
  if (fabric_ != nullptr) {
    throw std::logic_error(
        "grow_node: the contention-aware fabric has a fixed topology; "
        "elastic growth requires the analytic interconnect model");
  }
  if (spec.cores < 1) {
    throw std::invalid_argument("grow_node: node needs at least one core");
  }

  // The grow sequence is the rewire path run once per helper: graph edge,
  // topology slot, control-plane rank, TALP / detector / quarantine state,
  // per-worker runtime vectors.
  const int node = expander_.graph.add_right_vertex();
  const int tnode = topology_->add_node();
  assert(node == tnode && "graph and topology node ids must stay aligned");
  (void)tnode;
  config_.cluster.nodes.push_back(spec);
  node_speed_.push_back(spec.speed);
  node_retired_.push_back(0);
  recorder_->add_node();

  // Helper placement: appranks with the fewest workers first (they gain
  // the most offload reach), ties by id — deterministic.
  int count = helpers > 0 ? helpers : topology_->apprank_count();
  count = std::min(count, std::min(topology_->apprank_count(), spec.cores));
  std::vector<int> order(static_cast<std::size_t>(topology_->apprank_count()));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [this](int x, int y) {
    return expander_.graph.left_degree(x) < expander_.graph.left_degree(y);
  });

  std::vector<WorkerId> added;
  for (int i = 0; i < count; ++i) {
    const int a = order[static_cast<std::size_t>(i)];
    expander_.graph.add_edge(a, node);
    const WorkerId w = topology_->add_worker(a, node);
    const vmpi::RankId rank = ctrl_comm_->add_rank(node);
    (void)rank;
    assert(rank == w && "control-plane ranks mirror worker ids");
    talp_->add_worker();
    workers_.emplace_back();
    alive_.push_back(1);
    retired_.push_back(0);
    suspected_.push_back(0);
    last_heartbeat_.push_back(-1.0);
    crashed_at_.push_back(-1.0);
    if (!busy_smoothed_.empty()) busy_smoothed_.push_back(0.0);
    if (resil_active()) {
      detectors_.emplace_back(config_.resil.phi_window,
                              config_.resil.phi_min_std);
      quarantine_->add_worker();
      engine_.after(config_.resil.heartbeat_period,
                    [this, w] { send_heartbeat(w); });
    }
    added.push_back(w);
  }
  assert(!added.empty());

  // DLB modules for the node. All cores start owned by the first helper;
  // the immediate policy re-solve below redistributes them (exactly like
  // the initial split would have, had the node existed at start()).
  node_cores_.push_back(
      std::make_unique<dlb::NodeCores>(spec.cores, added.front()));
  lewi_.push_back(
      std::make_unique<dlb::LewiModule>(*node_cores_.back(), config_.lewi));
  drom_.push_back(std::make_unique<dlb::DromModule>(*node_cores_.back(),
                                                    config_.drom_active()));
  record_ownership();
  grown_nodes_.push_back(node);

  m_.nodes_joined->inc();
  mark_trace("elastic: node " + std::to_string(node) + " joined with " +
             std::to_string(added.size()) + " helpers");

  if (config_.drom_active() && !done_) {
    engine_.cancel(policy_event_);
    policy_event_ = sim::kInvalidEvent;
    policy_tick();
  }
  kick_node(node);
  return node;
}

void ClusterRuntime::retire_node(int node) {
  if (node < 0 || node >= topology_->node_count()) {
    throw std::invalid_argument("retire_node: no such node");
  }
  if (node_retired_[static_cast<std::size_t>(node)]) return;  // idempotent
  const auto residents = topology_->workers_on_node(node);
  for (WorkerId w : residents) {
    if (topology_->worker(w).is_home) {
      throw std::invalid_argument(
          "retire_node: node " + std::to_string(node) +
          " hosts an apprank process; only helper-only nodes can retire");
    }
  }
  node_retired_[static_cast<std::size_t>(node)] = 1;

  // Fence first: usable() is now false for every resident, so no new
  // assignment, LeWI borrow, or pick_worker choice can land here while we
  // drain.
  for (WorkerId w : residents) retired_[static_cast<std::size_t>(w)] = 1;

  for (WorkerId w : residents) {
    if (!alive_[static_cast<std::size_t>(w)]) continue;  // crashed earlier
    if (resil_active()) {
      // Revoke the leases of tasks that have not started computing here;
      // executions already running keep their lease and complete normally
      // (the worker is alive, merely drained — completions carry the
      // current epoch and count exactly once). A task requeued here and
      // raced by a stale copy is covered by the usual zombie suppression.
      for (const std::uint64_t id : leases_.tasks_on(w)) {
        bool running = false;
        for (const auto& [eid, run] : running_) {
          (void)eid;
          if (run.task == static_cast<nanos::TaskId>(id) && run.worker == w &&
              !run.ghost) {
            running = true;
            break;
          }
        }
        if (!running) requeue_leased_task(static_cast<nanos::TaskId>(id));
      }
    } else {
      // Oracle mode: queued-but-unstarted assignments are rescued exactly
      // once; in-flight offload messages are rescued by their delivery
      // callback (which now sees the retired flag).
      WorkerState& ws = workers_[static_cast<std::size_t>(w)];
      std::deque<nanos::TaskId> drained;
      drained.swap(ws.queue);
      for (nanos::TaskId id : drained) rescue_task(id, w);
    }
  }

  m_.nodes_retired->inc();
  mark_trace("elastic: node " + std::to_string(node) + " retired");

  // Re-solve over the reduced capacity, then let the survivors pick up the
  // rescued work.
  if (config_.drom_active() && !done_) {
    engine_.cancel(policy_event_);
    policy_event_ = sim::kInvalidEvent;
    policy_tick();
  }
  for (int n = 0; n < topology_->node_count(); ++n) {
    if (!node_retired_[static_cast<std::size_t>(n)]) kick_node(n);
  }
}

void ClusterRuntime::schedule_elastic_tick() {
  engine_.after(config_.elastic.eval_period, [this] { elastic_tick(); });
}

void ClusterRuntime::elastic_tick() {
  if (done_) return;  // stop rescheduling; the engine can drain

  // Pressure = demand over capacity: every task that wants a core (central
  // queues, worker queues, in-flight offloads, running executions) against
  // the cores of non-retired nodes.
  double demand = 0.0;
  for (const ApprankState& st : appranks_) {
    demand += static_cast<double>(st.central.size());
  }
  for (int w = 0; w < topology_->worker_count(); ++w) {
    if (!usable(w)) continue;
    const WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    demand += static_cast<double>(ws.queue.size()) + ws.pending;
  }
  for (const auto& [eid, run] : running_) {
    (void)eid;
    if (!run.ghost) demand += 1.0;
  }
  double capacity = 0.0;
  int active = 0;
  for (int n = 0; n < topology_->node_count(); ++n) {
    if (node_retired_[static_cast<std::size_t>(n)]) continue;
    capacity += config_.cluster.nodes[static_cast<std::size_t>(n)].cores;
    ++active;
  }
  const double pressure = capacity > 0.0 ? demand / capacity : 0.0;

  const elastic::ScaleDecision d =
      elastic_ctrl_->observe(engine_.now(), pressure, active);
  if (d == elastic::ScaleDecision::Out) {
    sim::NodeSpec spec;
    spec.cores = config_.elastic.node_cores > 0
                     ? config_.elastic.node_cores
                     : config_.cluster.nodes.front().cores;
    spec.speed = config_.elastic.node_speed;
    for (int k = 0; k < config_.elastic.step; ++k) {
      if (active >= elastic_ctrl_->max_nodes()) break;
      grow_node(spec, config_.elastic.helpers_per_node);
      ++active;
    }
  } else if (d == elastic::ScaleDecision::In) {
    // Retire the most recently grown node that is fully idle (nothing
    // queued, leased, or running on any resident). Original nodes host
    // apprank processes and never retire.
    for (int k = 0; k < config_.elastic.step; ++k) {
      if (active <= elastic_ctrl_->min_nodes()) break;
      int candidate = -1;
      for (auto it = grown_nodes_.rbegin(); it != grown_nodes_.rend(); ++it) {
        const int n = *it;
        if (node_retired_[static_cast<std::size_t>(n)]) continue;
        bool idle = true;
        for (WorkerId w : topology_->workers_on_node(n)) {
          const WorkerState& ws = workers_[static_cast<std::size_t>(w)];
          if (!ws.queue.empty() || ws.pending > 0 || ws.inflight > 0 ||
              (resil_active() && !leases_.tasks_on(w).empty())) {
            idle = false;
            break;
          }
        }
        if (idle) {
          candidate = n;
          break;
        }
      }
      if (candidate < 0) break;  // nothing idle enough; hold
      retire_node(candidate);
      --active;
    }
  }
  schedule_elastic_tick();
}

}  // namespace tlb::core
