#include "core/policies.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "solver/allocation.hpp"

namespace tlb::core {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::None: return "none";
    case PolicyKind::Local: return "local";
    case PolicyKind::Global: return "global";
  }
  return "?";
}

PolicyKind parse_policy_kind(const std::string& name) {
  for (const PolicyKind k :
       {PolicyKind::None, PolicyKind::Local, PolicyKind::Global}) {
    if (name == to_string(k)) return k;
  }
  throw std::invalid_argument("unknown DROM policy '" + name +
                              "'; valid values: none, local, global");
}

namespace {

/// Distributes `total` cores over workers proportionally to `weight`,
/// guaranteeing >= 1 each, with largest-remainder rounding.
std::vector<int> proportional_split(const std::vector<double>& weight,
                                    int total) {
  const int n = static_cast<int>(weight.size());
  assert(total >= n && "fewer cores than workers");
  std::vector<int> out(static_cast<std::size_t>(n), 1);
  int rest = total - n;
  const double wsum = std::accumulate(weight.begin(), weight.end(), 0.0);
  if (rest == 0) return out;
  if (wsum <= 0.0) {
    // Nothing measured: split evenly.
    for (int i = 0; rest > 0; i = (i + 1) % n, --rest) {
      ++out[static_cast<std::size_t>(i)];
    }
    return out;
  }
  std::vector<double> share(static_cast<std::size_t>(n));
  std::vector<int> base(static_cast<std::size_t>(n));
  int base_sum = 0;
  for (int i = 0; i < n; ++i) {
    share[static_cast<std::size_t>(i)] =
        rest * weight[static_cast<std::size_t>(i)] / wsum;
    base[static_cast<std::size_t>(i)] =
        static_cast<int>(std::floor(share[static_cast<std::size_t>(i)]));
    base_sum += base[static_cast<std::size_t>(i)];
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
    const double fx = share[static_cast<std::size_t>(x)] -
                      base[static_cast<std::size_t>(x)];
    const double fy = share[static_cast<std::size_t>(y)] -
                      base[static_cast<std::size_t>(y)];
    return fx > fy;
  });
  int leftover = rest - base_sum;
  for (int i = 0; i < n; ++i) {
    int add = base[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    if (leftover > 0) {
      ++add;
      --leftover;
    }
    out[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] += add;
  }
  return out;
}

}  // namespace

OwnershipPlan initial_plan(const Topology& topo,
                           const std::vector<int>& node_cores) {
  OwnershipPlan plan(static_cast<std::size_t>(topo.node_count()));
  for (int n = 0; n < topo.node_count(); ++n) {
    const auto& residents = topo.workers_on_node(n);
    const int cores = node_cores[static_cast<std::size_t>(n)];
    assert(static_cast<int>(residents.size()) <= cores &&
           "node cannot give each worker one core");
    // Helpers own exactly one core; appranks split the rest equally.
    std::vector<WorkerId> homes;
    int helper_count = 0;
    for (WorkerId w : residents) {
      if (topo.worker(w).is_home) {
        homes.push_back(w);
      } else {
        ++helper_count;
      }
    }
    auto& node_plan = plan[static_cast<std::size_t>(n)];
    const int for_appranks = cores - helper_count;
    assert(!homes.empty() && "every node hosts at least one apprank");
    const int base = for_appranks / static_cast<int>(homes.size());
    int extra = for_appranks % static_cast<int>(homes.size());
    for (WorkerId w : residents) {
      if (topo.worker(w).is_home) {
        int c = base + (extra > 0 ? 1 : 0);
        if (extra > 0) --extra;
        node_plan.emplace_back(w, c);
      } else {
        node_plan.emplace_back(w, 1);
      }
    }
  }
  return plan;
}

OwnershipPlan local_convergence_plan(const Topology& topo,
                                     const std::vector<int>& node_cores,
                                     const std::vector<double>& busy,
                                     const std::vector<char>* alive) {
  OwnershipPlan plan(static_cast<std::size_t>(topo.node_count()));
  for (int n = 0; n < topo.node_count(); ++n) {
    std::vector<WorkerId> residents;
    for (WorkerId w : topo.workers_on_node(n)) {
      if (alive == nullptr || (*alive)[static_cast<std::size_t>(w)]) {
        residents.push_back(w);
      }
    }
    // A node with no usable resident (retired by elastic scale-in, or every
    // helper dead on a helper-only node) gets an empty node plan; DROM
    // leaves its ownership untouched and the scheduler never picks it.
    if (residents.empty()) continue;
    std::vector<double> weight;
    weight.reserve(residents.size());
    for (WorkerId w : residents) {
      weight.push_back(std::max(0.0, busy[static_cast<std::size_t>(w)]));
    }
    const auto counts =
        proportional_split(weight, node_cores[static_cast<std::size_t>(n)]);
    auto& node_plan = plan[static_cast<std::size_t>(n)];
    for (std::size_t i = 0; i < residents.size(); ++i) {
      node_plan.emplace_back(residents[i], counts[i]);
    }
  }
  return plan;
}

OwnershipPlan static_ownership_plan(const Topology& topo,
                                    const std::vector<int>& node_cores,
                                    const std::vector<char>* alive) {
  OwnershipPlan plan(static_cast<std::size_t>(topo.node_count()));
  for (int n = 0; n < topo.node_count(); ++n) {
    std::vector<WorkerId> residents;
    for (WorkerId w : topo.workers_on_node(n)) {
      if (alive == nullptr || (*alive)[static_cast<std::size_t>(w)]) {
        residents.push_back(w);
      }
    }
    if (residents.empty()) continue;  // retired / fully-lost node: no plan
    // All-zero weights make proportional_split fall back to an even split.
    const std::vector<double> weight(residents.size(), 0.0);
    const auto counts =
        proportional_split(weight, node_cores[static_cast<std::size_t>(n)]);
    auto& node_plan = plan[static_cast<std::size_t>(n)];
    for (std::size_t i = 0; i < residents.size(); ++i) {
      node_plan.emplace_back(residents[i], counts[i]);
    }
  }
  return plan;
}

OwnershipPlan global_solver_plan(const Topology& topo,
                                 const std::vector<int>& node_cores,
                                 const std::vector<double>& busy,
                                 const std::vector<char>* alive,
                                 int iteration_limit, bool* converged) {
  // With crashed workers masked out, the solve runs over the reduced
  // bipartite graph whose edges are the surviving workers (slot order is
  // preserved, so each apprank's home edge stays first — home workers
  // cannot crash).
  graph::BipartiteGraph reduced;
  std::vector<std::vector<WorkerId>> slot_workers;
  if (alive != nullptr) {
    reduced = graph::BipartiteGraph(topo.apprank_count(), topo.node_count());
    slot_workers.resize(static_cast<std::size_t>(topo.apprank_count()));
    for (int a = 0; a < topo.apprank_count(); ++a) {
      for (WorkerId w : topo.workers_of_apprank(a)) {
        if (!(*alive)[static_cast<std::size_t>(w)]) continue;
        reduced.add_edge(a, topo.worker(w).node);
        slot_workers[static_cast<std::size_t>(a)].push_back(w);
      }
      assert(!slot_workers[static_cast<std::size_t>(a)].empty());
    }
  }

  solver::AllocationProblem problem;
  problem.graph = alive != nullptr ? &reduced : &topo.graph();
  problem.node_cores = node_cores;
  problem.work.assign(static_cast<std::size_t>(topo.apprank_count()), 0.0);
  for (int a = 0; a < topo.apprank_count(); ++a) {
    double total = 0.0;
    for (WorkerId w : topo.workers_of_apprank(a)) {
      if (alive != nullptr && !(*alive)[static_cast<std::size_t>(w)]) continue;
      total += std::max(0.0, busy[static_cast<std::size_t>(w)]);
    }
    problem.work[static_cast<std::size_t>(a)] = total;
  }
  problem.iteration_limit = iteration_limit;
  const auto solution = solver::solve_allocation(problem);
  if (converged != nullptr) *converged = solution.converged;

  OwnershipPlan plan(static_cast<std::size_t>(topo.node_count()));
  for (int a = 0; a < topo.apprank_count(); ++a) {
    const auto& workers = alive != nullptr
                              ? slot_workers[static_cast<std::size_t>(a)]
                              : topo.workers_of_apprank(a);
    for (std::size_t j = 0; j < workers.size(); ++j) {
      const WorkerInfo& info = topo.worker(workers[j]);
      plan[static_cast<std::size_t>(info.node)].emplace_back(
          workers[j], solution.cores[static_cast<std::size_t>(a)][j]);
    }
  }
  return plan;
}

}  // namespace tlb::core
