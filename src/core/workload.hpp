// Workload abstraction consumed by the ClusterRuntime.
//
// Models the structure of an MPI+OmpSs-2 application (paper §4): each
// apprank runs the same main function, which per iteration creates a batch
// of annotated tasks, taskwaits, and then communicates with the other
// appranks (modelled as a barrier plus the data the apprank must have at
// home to perform its MPI exchange).
#pragma once

#include <cstdint>
#include <vector>

#include "nanos/task.hpp"

namespace tlb::core {

/// Specification of one task the apprank's main function would create.
struct TaskSpec {
  double work = 0.0;  ///< core-seconds at nominal node speed
  std::vector<nanos::AccessRegion> accesses;
  bool offloadable = true;
};

class Workload {
 public:
  virtual ~Workload() = default;

  /// Number of outer iterations (time steps) the application performs.
  [[nodiscard]] virtual int iteration_count() const = 0;

  /// Re-seeds any stochastic state from a child stream of the runtime's
  /// single seed (RuntimeConfig::seed), making an entire run — expander,
  /// workload draws, fault jitter — reproducible from one number. Called by
  /// ClusterRuntime::run() before the first iteration. Deterministic
  /// workloads ignore it.
  virtual void reseed(std::uint64_t seed) { (void)seed; }

  /// Tasks the given apprank creates in the given iteration. Called once
  /// per (apprank, iteration), at the simulated time the apprank reaches
  /// that iteration.
  virtual std::vector<TaskSpec> make_tasks(int apprank, int iteration) = 0;

  /// Regions the apprank's non-offloadable code (MPI exchange, reduction)
  /// reads at the iteration boundary; any bytes living on a remote node
  /// are pulled home and priced. Default: nothing.
  virtual std::vector<nanos::AccessRegion> barrier_regions(int apprank,
                                                           int iteration) {
    (void)apprank;
    (void)iteration;
    return {};
  }

  /// Hook called when all appranks completed `iteration` (for workloads
  /// that rebalance between iterations, e.g. n-body's ORB). `iteration
  /// durations` are the per-apprank taskwait-to-taskwait times.
  virtual void on_iteration_done(int iteration,
                                 const std::vector<double>& apprank_times) {
    (void)iteration;
    (void)apprank_times;
  }
};

}  // namespace tlb::core
