// Worker-process topology derived from the offloading expander graph.
//
// Every edge (apprank a, node n) of the bipartite graph is one worker
// process: the apprank's own process when n is its home node, a helper
// rank otherwise (paper Fig 2 / Fig 4(d)). This table gives O(1) lookups
// between workers, appranks, adjacency slots, and nodes.
#pragma once

#include <cassert>
#include <vector>

#include "graph/bipartite_graph.hpp"
#include "sim/cluster_spec.hpp"

namespace tlb::core {

using WorkerId = int;

struct WorkerInfo {
  int apprank = -1;
  int node = -1;
  int slot = -1;       ///< index into graph.neighbors_of_left(apprank)
  bool is_home = false;
};

class Topology {
 public:
  Topology(const graph::BipartiteGraph& g, int appranks_per_node);

  [[nodiscard]] int worker_count() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] int apprank_count() const { return static_cast<int>(by_apprank_.size()); }
  [[nodiscard]] int node_count() const { return static_cast<int>(by_node_.size()); }
  [[nodiscard]] int appranks_per_node() const { return per_node_; }

  [[nodiscard]] const WorkerInfo& worker(WorkerId w) const {
    return workers_.at(static_cast<std::size_t>(w));
  }
  /// Workers of an apprank, in adjacency-slot order (home first).
  [[nodiscard]] const std::vector<WorkerId>& workers_of_apprank(int a) const {
    return by_apprank_.at(static_cast<std::size_t>(a));
  }
  /// Workers resident on a node.
  [[nodiscard]] const std::vector<WorkerId>& workers_on_node(int n) const {
    return by_node_.at(static_cast<std::size_t>(n));
  }
  [[nodiscard]] WorkerId home_worker(int apprank) const {
    return workers_of_apprank(apprank).front();
  }
  [[nodiscard]] int home_node(int apprank) const {
    return worker(home_worker(apprank)).node;
  }
  /// Worker of apprank `a` on node `n`, or -1 when not adjacent.
  [[nodiscard]] WorkerId worker_of(int apprank, int node) const;

  /// Registers a helper worker added mid-run by an expander rewire
  /// (tlb::resil). The corresponding edge must already have been added to
  /// the bipartite graph (as the apprank's last adjacency slot). Returns
  /// the new worker's id.
  WorkerId add_worker(int apprank, int node);

  /// Registers a node added mid-run by elastic scale-out. The bipartite
  /// graph must already have grown its right partition to cover the new
  /// id. Returns the new node id; workers land on it via add_worker.
  int add_node();

  [[nodiscard]] const graph::BipartiteGraph& graph() const { return *graph_; }

 private:
  const graph::BipartiteGraph* graph_;
  int per_node_;
  std::vector<WorkerInfo> workers_;
  std::vector<std::vector<WorkerId>> by_apprank_;
  std::vector<std::vector<WorkerId>> by_node_;
};

}  // namespace tlb::core
