#include "core/topology.hpp"

#include "graph/expander.hpp"

namespace tlb::core {

Topology::Topology(const graph::BipartiteGraph& g, int appranks_per_node)
    : graph_(&g),
      per_node_(appranks_per_node),
      by_apprank_(static_cast<std::size_t>(g.left_count())),
      by_node_(static_cast<std::size_t>(g.right_count())) {
  for (int a = 0; a < g.left_count(); ++a) {
    const int home = graph::home_node(a, per_node_);
    const auto& nb = g.neighbors_of_left(a);
    assert(!nb.empty() && nb.front() == home &&
           "graph must list the home node as the first neighbour");
    for (std::size_t j = 0; j < nb.size(); ++j) {
      WorkerInfo info;
      info.apprank = a;
      info.node = nb[j];
      info.slot = static_cast<int>(j);
      info.is_home = (nb[j] == home);
      const WorkerId w = static_cast<WorkerId>(workers_.size());
      workers_.push_back(info);
      by_apprank_[static_cast<std::size_t>(a)].push_back(w);
      by_node_[static_cast<std::size_t>(nb[j])].push_back(w);
    }
  }
}

WorkerId Topology::add_worker(int apprank, int node) {
  assert(graph_->has_edge(apprank, node) &&
         "add the graph edge before registering the worker");
  assert(worker_of(apprank, node) == -1 && "worker already exists");
  WorkerInfo info;
  info.apprank = apprank;
  info.node = node;
  info.slot =
      static_cast<int>(by_apprank_.at(static_cast<std::size_t>(apprank)).size());
  info.is_home = false;
  const WorkerId w = static_cast<WorkerId>(workers_.size());
  workers_.push_back(info);
  by_apprank_[static_cast<std::size_t>(apprank)].push_back(w);
  by_node_[static_cast<std::size_t>(node)].push_back(w);
  return w;
}

int Topology::add_node() {
  by_node_.emplace_back();
  assert(node_count() <= graph_->right_count() &&
         "grow the graph's right partition before registering the node");
  return node_count() - 1;
}

WorkerId Topology::worker_of(int apprank, int node) const {
  for (WorkerId w : workers_of_apprank(apprank)) {
    if (worker(w).node == node) return w;
  }
  return -1;
}

}  // namespace tlb::core
