// ClusterRuntime — the paper's contribution, assembled.
//
// Simulates an MPI + OmpSs-2@Cluster execution with DLB-based transparent
// load balancing:
//   - appranks and helper ranks placed by a bipartite expander graph (§5.2);
//   - per-apprank task scheduling with the locality-first,
//     two-tasks-per-owned-core rule and a central overflow queue (§5.5);
//   - LeWI lend/borrow/reclaim of idle cores within each node (§5.3);
//   - DROM ownership re-allocation driven by the local convergence or
//     global solver policy (§5.4);
//   - eager data transfers priced by the interconnect model, no automatic
//     write-back (§3.2), pull-to-home at MPI boundaries (§4).
//
// One ClusterRuntime instance performs one execution (construct anew per
// run); traces and statistics remain readable afterwards.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"
#include "core/topology.hpp"
#include "core/workload.hpp"
#include "dlb/core_registry.hpp"
#include "dlb/drom.hpp"
#include "dlb/lewi.hpp"
#include "dlb/talp.hpp"
#include "graph/expander.hpp"
#include "nanos/data_location.hpp"
#include "nanos/dependency_graph.hpp"
#include "nanos/task.hpp"
#include "sim/engine.hpp"
#include "trace/recorder.hpp"
#include "vmpi/comm.hpp"

namespace tlb::core {

class ClusterRuntime {
 public:
  explicit ClusterRuntime(RuntimeConfig config);

  /// Executes the workload to completion and returns the run statistics.
  RunResult run(Workload& workload);

  // Post-run inspection.
  [[nodiscard]] const trace::Recorder& recorder() const { return *recorder_; }
  [[nodiscard]] const Topology& topology() const { return *topology_; }
  [[nodiscard]] const graph::BipartiteGraph& offload_graph() const {
    return expander_.graph;
  }
  [[nodiscard]] double expander_expansion() const {
    return expander_.expansion;
  }
  [[nodiscard]] const RuntimeConfig& config() const { return config_; }
  [[nodiscard]] sim::SimTime now() const { return engine_.now(); }

 private:
  struct WorkerState {
    std::deque<nanos::TaskId> queue;  ///< assigned, waiting for a core
    int inflight = 0;                 ///< assigned + running tasks
  };
  struct ApprankState {
    std::unique_ptr<nanos::DependencyGraph> deps;
    std::unique_ptr<nanos::DataLocations> locations;
    std::deque<nanos::TaskId> central;  ///< ready, not yet assigned (§5.5)
    int iteration = 0;
    std::size_t outstanding = 0;  ///< unfinished tasks of this iteration
    sim::SimTime iteration_start = 0.0;
    sim::SimTime taskwait_done = 0.0;
  };

  // SPMD iteration orchestration.
  void start_iteration_all();
  void start_iteration(int apprank);
  void enter_barrier(int apprank);
  void on_barrier_done();

  // Scheduling (§5.5).
  void on_task_ready(nanos::TaskId id);
  void assign_to_worker(nanos::TaskId id, WorkerId w);
  void start_task(nanos::TaskId id, WorkerId w, int core);
  void on_task_finished(nanos::TaskId id, WorkerId w, int node, int core);
  void kick_node(int node);
  void dispatch(WorkerId w);
  [[nodiscard]] int owned_cores(WorkerId w) const;
  [[nodiscard]] bool under_threshold(WorkerId w) const;
  [[nodiscard]] int pick_worker(const nanos::Task& task) const;

  // DROM policy loop (§5.4).
  void schedule_policy_tick();
  void policy_tick();
  void apply_plan(const OwnershipPlan& plan);
  void record_ownership();

  RuntimeConfig config_;
  sim::Engine engine_;
  graph::ExpanderResult expander_;
  std::unique_ptr<Topology> topology_;
  std::unique_ptr<vmpi::Communicator> app_comm_;  ///< appranks only
  std::vector<std::unique_ptr<dlb::NodeCores>> node_cores_;
  std::vector<std::unique_ptr<dlb::LewiModule>> lewi_;
  std::vector<std::unique_ptr<dlb::DromModule>> drom_;
  std::unique_ptr<dlb::TalpModule> talp_;
  std::unique_ptr<trace::Recorder> recorder_;
  nanos::TaskPool pool_;
  std::vector<ApprankState> appranks_;
  std::vector<WorkerState> workers_;
  Workload* workload_ = nullptr;
  RunResult result_;
  std::vector<double> busy_smoothed_;  ///< EMA of policy work estimates
  int barrier_arrivals_ = 0;
  sim::SimTime last_barrier_time_ = 0.0;
  bool done_ = false;
  sim::EventId policy_event_ = sim::kInvalidEvent;
};

}  // namespace tlb::core
