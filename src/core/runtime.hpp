// ClusterRuntime — the paper's contribution, assembled.
//
// Simulates an MPI + OmpSs-2@Cluster execution with DLB-based transparent
// load balancing:
//   - appranks and helper ranks placed by a bipartite expander graph (§5.2);
//   - per-apprank task scheduling with the locality-first,
//     two-tasks-per-owned-core rule and a central overflow queue (§5.5);
//   - LeWI lend/borrow/reclaim of idle cores within each node (§5.3);
//   - DROM ownership re-allocation driven by the local convergence or
//     global solver policy (§5.4);
//   - eager data transfers priced by the interconnect model, no automatic
//     write-back (§3.2), pull-to-home at MPI boundaries (§4).
//
// Resilience and perturbation hooks (tlb::fault): node speeds and the
// interconnect can be perturbed mid-run, helper ranks can crash — their
// in-flight tasks are detected lost and re-executed elsewhere, their cores
// return to the surviving workers, and the allocation policy re-solves over
// the reduced offloading graph. Runtime control messages (offload / finish
// notifications) travel over a vmpi communicator so they experience link
// degradation and message loss like any other traffic.
//
// One ClusterRuntime instance performs one execution (construct anew per
// run); traces and statistics remain readable afterwards.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"
#include "core/topology.hpp"
#include "core/workload.hpp"
#include "dlb/core_registry.hpp"
#include "dlb/drom.hpp"
#include "dlb/lewi.hpp"
#include "dlb/talp.hpp"
#include "graph/expander.hpp"
#include "nanos/data_location.hpp"
#include "nanos/dependency_graph.hpp"
#include "nanos/task.hpp"
#include "sim/engine.hpp"
#include "trace/recorder.hpp"
#include "vmpi/comm.hpp"

namespace tlb::core {

class ClusterRuntime {
 public:
  explicit ClusterRuntime(RuntimeConfig config);

  /// Executes the workload to completion and returns the run statistics.
  RunResult run(Workload& workload);

  // Post-run inspection.
  [[nodiscard]] const trace::Recorder& recorder() const { return *recorder_; }
  [[nodiscard]] const Topology& topology() const { return *topology_; }
  [[nodiscard]] const graph::BipartiteGraph& offload_graph() const {
    return expander_.graph;
  }
  [[nodiscard]] double expander_expansion() const {
    return expander_.expansion;
  }
  [[nodiscard]] const RuntimeConfig& config() const { return config_; }
  [[nodiscard]] sim::SimTime now() const { return engine_.now(); }
  [[nodiscard]] const nanos::TaskPool& tasks() const { return pool_; }

  // --- perturbation / resilience hooks (tlb::fault) -------------------------

  /// Schedules `fn` at absolute simulated time `t`; the vehicle by which a
  /// FaultInjector plants perturbations into a run before run() starts.
  void schedule_external(sim::SimTime t, std::function<void()> fn) {
    engine_.at(t, std::move(fn));
  }

  /// Changes a node's speed factor from now on. Tasks already executing
  /// finish at their original rate (a task's duration is fixed when it
  /// starts); tasks starting after the change run at the new speed.
  void set_node_speed(int node, double speed);
  [[nodiscard]] double node_speed(int node) const {
    return node_speed_.at(static_cast<std::size_t>(node));
  }

  /// Installs a link perturbation on all traffic: application messages,
  /// runtime control messages, and eager data transfers. A default
  /// LinkFault restores the nominal interconnect.
  void set_link_fault(const vmpi::LinkFault& fault);
  [[nodiscard]] const vmpi::LinkFault& link_fault() const {
    return link_fault_;
  }

  /// Fail-stop crash of a helper rank (home ranks cannot crash: the
  /// apprank process is the application). Its queued and running tasks are
  /// detected lost and re-queued for execution elsewhere, its cores are
  /// returned to the surviving workers on the node, and the DROM policy
  /// re-solves immediately over the reduced adjacency.
  void crash_worker(WorkerId w);
  [[nodiscard]] bool worker_alive(WorkerId w) const {
    return alive_.at(static_cast<std::size_t>(w)) != 0;
  }

  /// Annotates the trace timeline at the current simulated time.
  void mark_trace(const std::string& label);

 private:
  struct WorkerState {
    std::deque<nanos::TaskId> queue;  ///< assigned, waiting for a core
    int inflight = 0;                 ///< assigned + running tasks
    /// Remote assignments whose offload control message is still in
    /// flight. Counted as backlog so LeWI does not lend away the cores
    /// these tasks are about to need.
    int pending = 0;
  };
  /// Bookkeeping for a task currently executing, so a worker crash can
  /// cancel its completion and rebook its busy accounting.
  struct RunningTask {
    WorkerId worker = -1;
    int node = -1;
    int core = -1;
    bool busy_applied = false;  ///< busy +1 already recorded (data arrived)
    sim::EventId busy_event = sim::kInvalidEvent;
    sim::EventId finish_event = sim::kInvalidEvent;
  };
  struct ApprankState {
    std::unique_ptr<nanos::DependencyGraph> deps;
    std::unique_ptr<nanos::DataLocations> locations;
    std::deque<nanos::TaskId> central;  ///< ready, not yet assigned (§5.5)
    int iteration = 0;
    std::size_t outstanding = 0;  ///< unfinished tasks of this iteration
    sim::SimTime iteration_start = 0.0;
    sim::SimTime taskwait_done = 0.0;
  };

  // SPMD iteration orchestration.
  void start_iteration_all();
  void start_iteration(int apprank);
  void enter_barrier(int apprank);
  void on_barrier_done();

  // Scheduling (§5.5).
  void on_task_ready(nanos::TaskId id);
  void assign_to_worker(nanos::TaskId id, WorkerId w);
  void finish_assignment(nanos::TaskId id, WorkerId w);
  void start_task(nanos::TaskId id, WorkerId w, int core);
  void on_task_finished(nanos::TaskId id, WorkerId w, int node, int core);
  void kick_node(int node);
  void dispatch(WorkerId w);
  [[nodiscard]] int owned_cores(WorkerId w) const;
  [[nodiscard]] bool under_threshold(WorkerId w) const;
  [[nodiscard]] int pick_worker(const nanos::Task& task) const;

  // Fault handling (tlb::fault).
  /// Re-queues a task whose assignment to `from` was voided by a crash.
  void rescue_task(nanos::TaskId id, WorkerId from);
  /// Point-to-point transfer cost with the active link fault applied.
  [[nodiscard]] sim::SimTime faulted_transfer_time(std::uint64_t bytes);
  [[nodiscard]] bool any_worker_dead() const;

  // DROM policy loop (§5.4).
  void schedule_policy_tick();
  void policy_tick();
  void apply_plan(const OwnershipPlan& plan);
  void record_ownership();

  RuntimeConfig config_;
  sim::Engine engine_;
  graph::ExpanderResult expander_;
  std::unique_ptr<Topology> topology_;
  std::unique_ptr<vmpi::Communicator> app_comm_;  ///< appranks only
  /// Runtime control plane: one rank per worker process; offload and
  /// completion notifications travel here (and thus see link faults).
  std::unique_ptr<vmpi::Communicator> ctrl_comm_;
  std::vector<std::unique_ptr<dlb::NodeCores>> node_cores_;
  std::vector<std::unique_ptr<dlb::LewiModule>> lewi_;
  std::vector<std::unique_ptr<dlb::DromModule>> drom_;
  std::unique_ptr<dlb::TalpModule> talp_;
  std::unique_ptr<trace::Recorder> recorder_;
  nanos::TaskPool pool_;
  std::vector<ApprankState> appranks_;
  std::vector<WorkerState> workers_;
  Workload* workload_ = nullptr;
  RunResult result_;
  std::vector<double> busy_smoothed_;  ///< EMA of policy work estimates
  int barrier_arrivals_ = 0;
  sim::SimTime last_barrier_time_ = 0.0;
  bool done_ = false;
  sim::EventId policy_event_ = sim::kInvalidEvent;

  // Fault state (tlb::fault).
  std::vector<double> node_speed_;  ///< current speed factor per node
  std::vector<char> alive_;         ///< per-worker liveness (1 = alive)
  std::unordered_map<nanos::TaskId, RunningTask> running_;
  vmpi::LinkFault link_fault_;
  sim::Rng fault_rng_ = sim::Rng(0);  ///< reseeded from config_.seed
};

}  // namespace tlb::core
