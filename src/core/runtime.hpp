// ClusterRuntime — the paper's contribution, assembled.
//
// Simulates an MPI + OmpSs-2@Cluster execution with DLB-based transparent
// load balancing:
//   - appranks and helper ranks placed by a bipartite expander graph (§5.2);
//   - per-apprank task scheduling with the locality-first,
//     two-tasks-per-owned-core rule and a central overflow queue (§5.5),
//     with victim selection pluggable via tlb::sched (RuntimeConfig::sched:
//     "locality" default, "congestion", "waittime");
//   - LeWI lend/borrow/reclaim of idle cores within each node (§5.3);
//   - DROM ownership re-allocation driven by the local convergence or
//     global solver policy (§5.4);
//   - eager data transfers priced by the interconnect model, no automatic
//     write-back (§3.2), pull-to-home at MPI boundaries (§4).
//
// Resilience (tlb::fault + tlb::resil): node speeds and the interconnect
// can be perturbed mid-run and helper ranks can crash. Two detection modes:
//   - Oracle (default, legacy): crash_worker performs the full recovery
//     immediately — lost tasks re-queued, cores returned, policy re-solved.
//   - Heartbeat: failures are *observed*. Helpers send phi-accrual
//     heartbeats over the control plane (so they see link faults); remote
//     assignments carry leases that are acknowledged or retransmitted with
//     capped backoff and eventually re-queued elsewhere; suspected workers
//     are quarantined out of scheduler candidacy and probed back in after
//     cooling; stale completions from falsely-suspected "zombie" workers
//     are suppressed so every task counts exactly once; the DROM policy
//     degrades global -> local -> static when the solver is infeasible or
//     over budget; and the expander is re-wired with a fresh helper when a
//     crash disconnects an apprank from all of its helpers.
//
// One ClusterRuntime instance performs one execution (construct anew per
// run); traces and statistics remain readable afterwards.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"
#include "core/topology.hpp"
#include "core/workload.hpp"
#include "dlb/core_registry.hpp"
#include "dlb/drom.hpp"
#include "dlb/lewi.hpp"
#include "dlb/talp.hpp"
#include "elastic/controller.hpp"
#include "elastic/xds.hpp"
#include "graph/expander.hpp"
#include "nanos/data_location.hpp"
#include "nanos/dependency_graph.hpp"
#include "nanos/task.hpp"
#include "net/fabric.hpp"
#include "net/link_load.hpp"
#include "obs/metrics.hpp"
#include "obs/pop.hpp"
#include "obs/span.hpp"
#include "resil/config.hpp"
#include "resil/lease.hpp"
#include "resil/phi_detector.hpp"
#include "resil/quarantine.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "stream/sink.hpp"
#include "trace/recorder.hpp"
#include "vmpi/comm.hpp"

namespace tlb::metrics {
class RecoverySeries;
}

namespace tlb::core {

/// Private sched::RuntimeView implementation: scheduling policies read
/// runtime state only through that narrow interface (and unit tests can
/// substitute a fake), while the inheritance stays an implementation
/// detail of the runtime.
class ClusterRuntime : private sched::RuntimeView {
 public:
  /// Standalone construction: the runtime owns its simulation engine and
  /// run() drives it to completion. With `shared_engine` non-null the
  /// runtime instead schedules onto that engine — the basis of the
  /// multi-tenant service scenario (tlb::svc), where many runtimes (one
  /// per arriving job) interleave their events on one clock. In shared
  /// mode use start()/finalize() and keep the runtime alive until the
  /// shared engine has drained: deferred events (solver-latency plan
  /// applications, retransmit timers) may still reference it after the
  /// completion callback fires.
  explicit ClusterRuntime(RuntimeConfig config,
                          sim::Engine* shared_engine = nullptr);

  /// Unregisters the profiler's open-span gauge (if this runtime
  /// registered one) and balances tlb::prof allocation charges of
  /// bookkeeping still live at teardown.
  ~ClusterRuntime();

  /// Executes the workload to completion and returns the run statistics.
  /// Equivalent to start(workload) + engine run + finalize().
  RunResult run(Workload& workload);

  /// Seeds the initial iteration (plus policy / heartbeat ticks) onto the
  /// engine and returns without running it. `on_complete` fires when the
  /// last iteration's barrier closes (after makespan is recorded). The
  /// engine's owner — run() in standalone mode, the tlb::svc job manager
  /// in shared mode — is responsible for driving events.
  void start(Workload& workload, std::function<void()> on_complete = {});

  /// Collects the run statistics after completion (makespan, offloading /
  /// DLB / resilience counters, metrics-registry snapshot). Call once,
  /// after on_complete fired (shared mode) or the engine drained.
  RunResult finalize();

  // Post-run inspection.
  [[nodiscard]] const trace::Recorder& recorder() const { return *recorder_; }
  [[nodiscard]] const Topology& topology() const override { return *topology_; }
  [[nodiscard]] const graph::BipartiteGraph& offload_graph() const {
    return expander_.graph;
  }
  [[nodiscard]] double expander_expansion() const {
    return expander_.expansion;
  }
  [[nodiscard]] const RuntimeConfig& config() const { return config_; }
  [[nodiscard]] sim::SimTime now() const override { return engine_.now(); }
  [[nodiscard]] const nanos::TaskPool& tasks() const { return pool_; }

  /// The active scheduling policy (tlb::sched; never null after
  /// construction). Post-run inspection of per-policy counters — note
  /// that after a mid-run hot-swap (set_sched_policy) this is only the
  /// *current* policy; RunResult::sched accumulates across swaps.
  [[nodiscard]] const sched::Scheduler& scheduler() const {
    return *scheduler_;
  }

  /// Hot-swaps the victim-selection policy mid-run, without a restart:
  /// the replacement is constructed first (an unknown name throws
  /// std::invalid_argument and the running policy is untouched), the
  /// retiring policy's counters are folded into the run-level
  /// accumulator, and every later pick_worker goes through the new
  /// policy. "hier" swaps in the two-level scheduler with
  /// RuntimeConfig::hier's tuning. In-flight assignments are unaffected
  /// (policies only choose victims; the offload mechanics live in the
  /// runtime).
  void set_sched_policy(const std::string& name);

  /// Number of successful set_sched_policy swaps so far.
  [[nodiscard]] std::uint64_t sched_policy_swaps() const {
    return sched_swaps_;
  }

  /// xDS-style control plane (tlb::elastic): push versioned typed
  /// resources; invalid payloads are NACKed with the previous resource
  /// re-applied, so a bad push can never wedge the run. Subscribed types:
  ///   - "tlb.sched.policy" (payload "policy=<name>") — validates the
  ///     name against the sched registry, then set_sched_policy().
  [[nodiscard]] elastic::ControlPlane& control_plane() { return control_; }
  [[nodiscard]] const elastic::ControlPlane& control_plane() const {
    return control_;
  }

  // --- observability (tlb::obs) ---------------------------------------------

  /// The run's metrics registry: every counter RunResult reports is
  /// registry-backed (incremented live at the original call sites), and
  /// run() snapshots the remaining subsystem statistics (LeWI/DROM, sched,
  /// fabric FCTs, POP efficiencies) into it before returning.
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

  /// Per-task lifecycle spans, or nullptr unless RuntimeConfig::obs.spans
  /// was set. Feed to obs::chrome_trace_json / obs::critical_path.
  /// Null in streaming mode (obs.stream): rebuild the view post-run with
  /// stream::StreamReader on the spill file instead.
  [[nodiscard]] const obs::SpanCollector* spans() const {
    return span_collector_.get();
  }

  /// The bounded-memory streaming span backend, or nullptr unless
  /// RuntimeConfig::obs.stream.enabled. finalize() closes it (footer +
  /// trailer), after which the spill file is complete and readable.
  [[nodiscard]] const stream::StreamSink* stream_sink() const {
    return stream_sink_.get();
  }

  /// TALP busy-core accounting (post-run inspection; the POP report's
  /// efficiency inputs).
  [[nodiscard]] const dlb::TalpModule& talp() const { return *talp_; }

  /// POP-style efficiency report over the completed run: parallel
  /// efficiency is TALP's aggregate busy / (cores x elapsed); the
  /// transfer-efficiency factor uses the span collector's transfer-wait
  /// integral (0 when span collection was off).
  [[nodiscard]] obs::PopReport pop() const;

  /// Per-iteration POP windows (RuntimeConfig::obs.pop_windows): one
  /// PE/LB/CommE row per barrier epoch, computed from the TALP busy
  /// deltas between consecutive global barriers. Empty when the flag was
  /// off. Record-only — capturing windows never perturbs the schedule.
  [[nodiscard]] const std::vector<obs::PopWindowRow>& pop_windows() const {
    return pop_windows_;
  }

  /// The contention-aware fabric (RuntimeConfig::net.enabled), or nullptr
  /// when the analytic cost model is active. Remains readable after run()
  /// for congestion inspection (link utilization, FCT quantiles). The
  /// non-const overload lets fault injectors degrade individual links.
  [[nodiscard]] net::Fabric* fabric() { return fabric_.get(); }
  [[nodiscard]] const net::Fabric* fabric() const { return fabric_.get(); }

  // --- perturbation / resilience hooks (tlb::fault) -------------------------

  /// Schedules `fn` at absolute simulated time `t`; the vehicle by which a
  /// FaultInjector plants perturbations into a run before run() starts.
  void schedule_external(sim::SimTime t, std::function<void()> fn) {
    engine_.at(t, std::move(fn));
  }

  /// Changes a node's speed factor from now on. Tasks already executing
  /// finish at their original rate (a task's duration is fixed when it
  /// starts); tasks starting after the change run at the new speed.
  void set_node_speed(int node, double speed);
  [[nodiscard]] double node_speed(int node) const {
    return node_speed_.at(static_cast<std::size_t>(node));
  }

  /// Installs a link perturbation on all traffic: application messages,
  /// runtime control messages, and eager data transfers. A default
  /// LinkFault restores the nominal interconnect.
  void set_link_fault(const vmpi::LinkFault& fault);
  [[nodiscard]] const vmpi::LinkFault& link_fault() const {
    return link_fault_;
  }

  /// Fail-stop crash of a helper rank (home ranks cannot crash: the
  /// apprank process is the application). Under Oracle detection the full
  /// recovery happens immediately; under Heartbeat detection the worker
  /// merely falls silent and recovery waits for the runtime to *observe*
  /// the failure (lease expiry / heartbeat phi). Idempotent: crashing a
  /// dead worker is a no-op.
  void crash_worker(WorkerId w);
  [[nodiscard]] bool worker_alive(WorkerId w) const {
    return alive_.at(static_cast<std::size_t>(w)) != 0;
  }
  /// True while `w` sits in outlier quarantine (suspected, ejected from
  /// pick_worker candidacy).
  [[nodiscard]] bool worker_quarantined(WorkerId w) const {
    return suspected_.at(static_cast<std::size_t>(w)) != 0;
  }

  /// Offload control messages still in flight towards `w` (diagnostic:
  /// must be zero after run() returns).
  [[nodiscard]] int worker_pending(WorkerId w) const {
    return workers_.at(static_cast<std::size_t>(w)).pending;
  }
  [[nodiscard]] int worker_inflight(WorkerId w) const {
    return workers_.at(static_cast<std::size_t>(w)).inflight;
  }
  /// Remote assignments currently covered by a lease (diagnostic: zero
  /// after run() returns).
  [[nodiscard]] std::size_t outstanding_leases() const {
    return leases_.size();
  }

  /// Attaches a RecoverySeries that receives detection verdicts (true /
  /// false suspicions with latency) as the run observes failures.
  void set_recovery_series(metrics::RecoverySeries* series) {
    recovery_series_ = series;
  }

  /// Annotates the trace timeline at the current simulated time.
  void mark_trace(const std::string& label);

  // --- elasticity (tlb::elastic) --------------------------------------------

  /// Provisions one new node mid-run: the crash-recovery rewire path run in
  /// reverse. The expander's right partition grows by one vertex, `helpers`
  /// helper ranks (0 = one per apprank, capped by the core count) are
  /// epoch-stamped into the topology / control plane / DLB exactly like a
  /// rewire replacement, and an immediate policy re-solve makes the node
  /// schedulable. Only valid after start() (the initial ownership split
  /// must exist), with the analytic interconnect (the fabric topology is
  /// fixed), and before completion. Returns the new node id.
  int grow_node(const sim::NodeSpec& spec, int helpers = 0);

  /// Drains and retires a helper-only node: its workers stop taking new
  /// work immediately (usable() goes false), queued-but-unstarted
  /// assignments are rescued exactly once (under Heartbeat detection their
  /// leases are revoked; executions already computing finish normally and
  /// report valid completions), and the node's cores leave the balance
  /// policies' capacity. Idempotent; throws if the node hosts an apprank
  /// process.
  void retire_node(int node);

  [[nodiscard]] bool node_retired(int node) const {
    return node_retired_.at(static_cast<std::size_t>(node)) != 0;
  }
  [[nodiscard]] bool worker_retired(WorkerId w) const {
    return retired_.at(static_cast<std::size_t>(w)) != 0;
  }
  /// Nodes added by grow_node (in join order), for post-run inspection.
  [[nodiscard]] const std::vector<int>& grown_nodes() const {
    return grown_nodes_;
  }

 private:
  struct WorkerState {
    std::deque<nanos::TaskId> queue;  ///< assigned, waiting for a core
    int inflight = 0;                 ///< assigned + running tasks
    /// Remote assignments whose offload control message is still in
    /// flight. Counted as backlog so LeWI does not lend away the cores
    /// these tasks are about to need.
    int pending = 0;
  };
  /// Bookkeeping for one execution attempt of a task. Keyed by a monotone
  /// exec id in an ordered map, so crash handling iterates executions in
  /// start order — byte-identical re-queue order on every standard
  /// library. Under Heartbeat detection one task can have several live
  /// executions (a disowned "ghost" plus its replacement).
  struct RunningExec {
    nanos::TaskId task = nanos::kNoTask;
    WorkerId worker = -1;
    int node = -1;
    int core = -1;
    bool busy_applied = false;  ///< busy +1 already recorded (data arrived)
    /// Execution disowned after its lease was revoked (false suspicion):
    /// it runs to completion, frees its core, and its completion message
    /// is suppressed at the home runtime.
    bool ghost = false;
    std::uint64_t epoch = 0;  ///< lease epoch at start (0 = home/unleased)
    sim::EventId busy_event = sim::kInvalidEvent;
    sim::EventId finish_event = sim::kInvalidEvent;
  };
  /// Input transfers in flight for a scheduled task (net mode only): the
  /// task may not begin computing until `remaining` flows have delivered.
  /// When the task claims a core before its data lands, `exec_waiting`
  /// parks the execution (core occupied, not busy) and the last flow's
  /// completion resumes it via begin_compute().
  struct PendingData {
    std::vector<net::FlowId> flows;
    int remaining = 0;
    std::uint64_t exec = 0;     ///< parked execution id
    bool exec_waiting = false;  ///< exec is valid and parked
    sim::SimTime overhead = 0.0;  ///< borrowed-core friction, paid on arrival
    WorkerId worker = -1;         ///< assignee (FCT feedback to the scheduler)
    sim::SimTime started = 0.0;   ///< when the input flows were launched
  };
  struct ApprankState {
    std::unique_ptr<nanos::DependencyGraph> deps;
    std::unique_ptr<nanos::DataLocations> locations;
    std::deque<nanos::TaskId> central;  ///< ready, not yet assigned (§5.5)
    int iteration = 0;
    std::size_t outstanding = 0;  ///< unfinished tasks of this iteration
    sim::SimTime iteration_start = 0.0;
    sim::SimTime taskwait_done = 0.0;
  };

  // SPMD iteration orchestration.
  void start_iteration_all();
  void start_iteration(int apprank);
  void enter_barrier(int apprank);
  void on_barrier_done();

  // Scheduling (§5.5).
  void on_task_ready(nanos::TaskId id);
  void assign_to_worker(nanos::TaskId id, WorkerId w);
  void finish_assignment(nanos::TaskId id, WorkerId w);
  void start_task(nanos::TaskId id, WorkerId w, int core);
  /// Schedules the busy +1 and completion events of a started execution
  /// after `wait` seconds of occupied-not-busy time (remaining transfer
  /// wait and/or borrowed-core friction). Tail of start_task(), split out
  /// so net mode can defer it to the last input flow's arrival.
  void begin_compute(std::uint64_t exec_id, sim::SimTime wait);
  /// One input flow of `id` delivered (net mode); resumes the parked
  /// execution when it was the last.
  void on_input_arrived(nanos::TaskId id);
  /// Tears down any in-flight input flows of `id` (crash / re-queue).
  void cancel_input_flows(nanos::TaskId id);
  void on_task_finished(std::uint64_t exec_id);
  /// Home-side completion bookkeeping: dependency release, taskwait
  /// accounting, barrier entry.
  void complete_task(nanos::TaskId id);
  void kick_node(int node);
  void dispatch(WorkerId w);
  /// Victim selection, delegated to the configured sched::Scheduler
  /// (§5.5's rule is the default "locality" policy). Emits a trace mark
  /// when the policy deviated from the locality baseline.
  [[nodiscard]] int pick_worker(const nanos::Task& task);

  // sched::RuntimeView (the window policies see; see also topology()/now()
  // above and usable() below).
  [[nodiscard]] int owned_cores(WorkerId w) const override;
  [[nodiscard]] int inflight(WorkerId w) const override {
    return workers_[static_cast<std::size_t>(w)].inflight;
  }
  [[nodiscard]] int inflight_per_core() const override {
    return config_.inflight_per_core;
  }
  [[nodiscard]] const nanos::DataLocations& locations(
      int apprank) const override {
    return *appranks_[static_cast<std::size_t>(apprank)].locations;
  }
  [[nodiscard]] const net::LinkLoadView* link_load() const override {
    return link_load_view_.get();
  }

  // Fault handling (tlb::fault).
  /// Re-queues a task whose assignment to `from` was voided by a crash or
  /// suspicion. `charge_worker` = false when the worker's inflight count
  /// was already settled (its execution completed before the suspicion).
  void rescue_task(nanos::TaskId id, WorkerId from, bool charge_worker = true);
  /// Point-to-point transfer cost with the active link fault applied.
  [[nodiscard]] sim::SimTime faulted_transfer_time(std::uint64_t bytes);
  [[nodiscard]] bool any_worker_dead() const;

  // Failure detection / graceful degradation (tlb::resil).
  [[nodiscard]] bool resil_active() const {
    return config_.resil.heartbeat_active();
  }
  /// Alive, not quarantined, and not draining towards retirement: eligible
  /// for pick_worker / LeWI backlog. (Also part of the sched::RuntimeView
  /// window.)
  [[nodiscard]] bool usable(WorkerId w) const override {
    return alive_[static_cast<std::size_t>(w)] != 0 &&
           suspected_[static_cast<std::size_t>(w)] == 0 &&
           retired_[static_cast<std::size_t>(w)] == 0;
  }
  [[nodiscard]] bool any_worker_unusable() const;
  void start_heartbeats();
  void send_heartbeat(WorkerId w);
  void on_heartbeat(WorkerId w);
  void detector_sweep();
  void send_offload(nanos::TaskId id, WorkerId w, std::uint64_t epoch);
  void on_offload_delivered(nanos::TaskId id, WorkerId w, std::uint64_t epoch);
  void send_ack(nanos::TaskId id, WorkerId w, std::uint64_t epoch);
  void on_ack(nanos::TaskId id, WorkerId w, std::uint64_t epoch);
  void on_lease_timeout(nanos::TaskId id);
  void on_completion(nanos::TaskId id, WorkerId w, std::uint64_t epoch);
  /// Revokes the lease on `id` and re-queues the task elsewhere; disowns a
  /// live execution into a ghost when one exists.
  void requeue_leased_task(nanos::TaskId id);
  /// Ejects `w` into quarantine, re-queues everything it leased, records
  /// the detection verdict, and re-solves the policy.
  void suspect_worker(WorkerId w);
  /// End-of-cooling probe: readmit if heartbeats resumed, else re-eject
  /// with a longer cooling period.
  void probe_worker(WorkerId w);
  /// Adds a replacement helper edge when `apprank` has no usable helper
  /// left (expander rewire across graph / topology / vmpi / DLB layers).
  void maybe_rewire(int apprank);

  // Observability (tlb::obs).
  /// The span sink lifecycle hooks emit into: the streaming backend when
  /// config_.obs.stream.enabled, else the collector when
  /// config_.obs.spans is set, else a shared no-op (one virtual call and
  /// nothing else — the disabled path stays cheap and branch-free at the
  /// call sites). Cached in active_sink_ at construction: exactly one
  /// backend is live for the whole run.
  [[nodiscard]] obs::SpanSink& sink() { return *active_sink_; }
  void register_metrics();

  // Elastic scaling loop (tlb::elastic; scheduled only when
  // config_.elastic.enabled — the disabled path reads nothing).
  void schedule_elastic_tick();
  void elastic_tick();

  // Scheduler construction / hot-swap (tlb::sched + tlb::hier).
  /// Builds the policy named `name` over this runtime ("hier" gets
  /// RuntimeConfig::hier's tuning; everything else resolves through the
  /// sched registry). Throws std::invalid_argument on an unknown name.
  [[nodiscard]] std::unique_ptr<sched::Scheduler> make_policy(
      const std::string& name);
  /// Registers the control-plane appliers (constructor tail).
  void subscribe_control_types();

  // DROM policy loop (§5.4).
  void schedule_policy_tick();
  void policy_tick();
  void apply_plan(const OwnershipPlan& plan);
  void record_ownership();

  RuntimeConfig config_;
  /// Owned in standalone mode, null when a shared engine was passed;
  /// engine_ aliases whichever is active (declared in this order so the
  /// reference can bind in the member-initializer list).
  std::unique_ptr<sim::Engine> owned_engine_;
  sim::Engine& engine_;
  graph::ExpanderResult expander_;
  std::unique_ptr<Topology> topology_;
  std::unique_ptr<vmpi::Communicator> app_comm_;  ///< appranks only
  /// Runtime control plane: one rank per worker process; offload /
  /// completion / heartbeat / ack messages travel here (and thus see link
  /// faults).
  std::unique_ptr<vmpi::Communicator> ctrl_comm_;
  std::vector<std::unique_ptr<dlb::NodeCores>> node_cores_;
  std::vector<std::unique_ptr<dlb::LewiModule>> lewi_;
  std::vector<std::unique_ptr<dlb::DromModule>> drom_;
  std::unique_ptr<dlb::TalpModule> talp_;
  std::unique_ptr<trace::Recorder> recorder_;
  /// Unified metrics registry (always on) and the per-task span collector
  /// (config_.obs.spans only). Declared before fabric_/scheduler_, which
  /// hold raw sink pointers into the collector.
  obs::Registry metrics_;
  std::unique_ptr<obs::SpanCollector> span_collector_;
  /// Bounded-memory streaming backend (config_.obs.stream.enabled only):
  /// supersedes the collector when both are requested.
  std::unique_ptr<stream::StreamSink> stream_sink_;
  obs::SpanSink null_sink_;
  /// Whichever of stream_sink_ / span_collector_ / null_sink_ is live.
  obs::SpanSink* active_sink_ = &null_sink_;
  /// Cached registry handles for the hot counters incremented at the
  /// original RunResult call sites (no name lookup per event).
  struct MetricRefs {
    obs::Counter* control_messages = nullptr;
    obs::Counter* transfer_bytes = nullptr;
    obs::Counter* tasks_reexecuted = nullptr;
    obs::Counter* workers_crashed = nullptr;
    obs::Counter* heartbeat_messages = nullptr;
    obs::Counter* detections = nullptr;
    obs::Counter* false_suspicions = nullptr;
    obs::Counter* lease_retransmits = nullptr;
    obs::Counter* lease_expiries = nullptr;
    obs::Counter* duplicates_suppressed = nullptr;
    obs::Counter* quarantine_ejections = nullptr;
    obs::Counter* quarantine_readmissions = nullptr;
    obs::Counter* policy_downshifts = nullptr;
    obs::Counter* rewired_edges = nullptr;
    obs::Counter* nodes_joined = nullptr;
    obs::Counter* nodes_retired = nullptr;
    obs::Gauge* detection_latency_sum = nullptr;
    obs::Gauge* perfect_time = nullptr;
    obs::Histogram* iteration_time = nullptr;
  } m_;
  /// Non-null iff config_.net.enabled (declared after recorder_: the
  /// fabric holds a raw pointer to the recorder).
  std::unique_ptr<net::Fabric> fabric_;
  /// Live link-utilization window over fabric_ for congestion-aware
  /// scheduling; non-null iff fabric_ is.
  std::unique_ptr<net::LinkLoadView> link_load_view_;
  /// The victim-selection policy (tlb::sched), built from config_.sched by
  /// the policy registry. Declared after the state it reads through the
  /// RuntimeView window.
  std::unique_ptr<sched::Scheduler> scheduler_;
  /// Counters of schedulers retired by set_sched_policy; finalize() folds
  /// the live policy's stats on top for RunResult::sched.
  sched::SchedStats sched_retired_;
  std::uint64_t sched_swaps_ = 0;
  /// Hot-swap control plane (versioned typed resources, ACK/NACK).
  elastic::ControlPlane control_;
  std::map<nanos::TaskId, PendingData> pending_data_;
  nanos::TaskPool pool_;
  std::vector<ApprankState> appranks_;
  std::vector<WorkerState> workers_;
  Workload* workload_ = nullptr;
  RunResult result_;
  std::vector<double> busy_smoothed_;  ///< EMA of policy work estimates
  int barrier_arrivals_ = 0;
  sim::SimTime last_barrier_time_ = 0.0;
  bool done_ = false;
  /// True when this runtime installed the profiler's open-span gauge
  /// (last-constructed profiled runtime wins; cleared in the dtor).
  bool prof_gauge_registered_ = false;
  sim::EventId policy_event_ = sim::kInvalidEvent;
  /// Engine time at start(); 0 in standalone mode. Makespan and the POP
  /// elapsed time are measured relative to it so a runtime started
  /// mid-simulation (shared engine) reports its own execution time.
  sim::SimTime start_time_ = 0.0;
  std::function<void()> on_complete_;  ///< fires once, at the last barrier

  // Per-iteration POP windows (config_.obs.pop_windows).
  void capture_pop_window(int epoch);
  std::vector<obs::PopWindowRow> pop_windows_;
  std::vector<double> window_busy_;  ///< TALP busy snapshot at last barrier
  sim::SimTime window_start_time_ = 0.0;

  // Fault state (tlb::fault).
  std::vector<double> node_speed_;  ///< current speed factor per node
  std::vector<char> alive_;         ///< per-worker liveness (1 = alive)
  // Elastic state (tlb::elastic). retired_ is per worker, node_retired_
  // per node; both stay all-zero unless retire_node runs.
  std::vector<char> retired_;       ///< 1 = draining / drained (scale-in)
  std::vector<char> node_retired_;
  std::vector<int> grown_nodes_;    ///< nodes added by grow_node, join order
  std::unique_ptr<elastic::ElasticController> elastic_ctrl_;
  std::map<std::uint64_t, RunningExec> running_;  ///< keyed by exec id
  std::uint64_t next_exec_ = 0;
  vmpi::LinkFault link_fault_;
  sim::Rng fault_rng_ = sim::Rng(0);  ///< reseeded from config_.seed

  // Detection state (tlb::resil; detectors/quarantine only instantiated
  // under DetectionMode::Heartbeat).
  resil::LeaseTable leases_;
  std::vector<resil::PhiAccrualDetector> detectors_;  ///< per worker
  std::unique_ptr<resil::Quarantine> quarantine_;
  std::vector<char> suspected_;           ///< 1 = quarantined
  std::vector<sim::SimTime> last_heartbeat_;  ///< arrival times (-1 = none)
  std::vector<sim::SimTime> crashed_at_;      ///< physical crash (-1 = alive)
  int policy_level_ = 0;  ///< fallback rung: 0 primary, 1 local, 2 static
  metrics::RecoverySeries* recovery_series_ = nullptr;
};

}  // namespace tlb::core
