// Configuration of a ClusterRuntime execution.
#pragma once

#include <cstdint>

#include "core/policies.hpp"
#include "elastic/config.hpp"
#include "hier/config.hpp"
#include "net/config.hpp"
#include "obs/config.hpp"
#include "prof/config.hpp"
#include "resil/config.hpp"
#include "sched/config.hpp"
#include "sim/cluster_spec.hpp"
#include "sim/time.hpp"
#include "svc/config.hpp"

namespace tlb::core {

struct RuntimeConfig {
  sim::ClusterSpec cluster;      ///< nodes, cores, speeds, interconnect
  int appranks_per_node = 1;     ///< MPI ranks with home on each node
  int degree = 1;                ///< offloading degree (1 = no offloading)
  PolicyKind policy = PolicyKind::Global;  ///< DROM allocation policy
  bool lewi = true;              ///< enable fine-grained lend/borrow
  bool drom = true;              ///< enable coarse-grained ownership moves

  /// Global solver invocation period (paper §5.4.2: every two seconds).
  sim::SimTime global_period = 2.0;
  /// Local convergence adjustment period (continuous in the paper; a short
  /// period approximates that).
  sim::SimTime local_period = 0.1;
  /// Modelled wall-clock cost of one global solve (paper: ~57 ms on 32
  /// nodes); the plan is applied after this delay. 0 = instantaneous.
  sim::SimTime solver_latency = 0.0;

  /// Scheduler in-flight threshold per owned core (paper §5.5: two tasks
  /// per core — one running, one prefetching).
  int inflight_per_core = 2;

  /// Friction of running a task on a LeWI-borrowed core (CPU-mask
  /// rebinding, runtime wake-up, no prefetch pipeline): added as occupied
  /// -but-not-busy time at each task start on a core the worker does not
  /// own. This is what keeps borrowed-core utilisation "well under 100%"
  /// (paper §5.5/§7.4) while DROM-owned cores run at full efficiency.
  sim::SimTime borrowed_core_overhead = 0.020;

  /// Exponential smoothing of the per-worker busy-core estimates fed to
  /// the DROM policies: estimate = s * previous + (1-s) * window average.
  /// Damps the allocate/starve oscillation when iteration times are of
  /// the same order as the policy period. 0 = no smoothing.
  double busy_smoothing = 0.5;

  /// Failure detection and graceful degradation (tlb::resil). The default
  /// (DetectionMode::Oracle) keeps the legacy announce-by-fiat behaviour
  /// bit-identical; DetectionMode::Heartbeat turns on phi-accrual
  /// heartbeats, task leases, and outlier quarantine.
  resil::ResilConfig resil;

  /// Contention-aware interconnect (tlb::net). Disabled by default: the
  /// analytic latency + bytes/bandwidth cost model stays in force and the
  /// run is bit-identical to a build without the subsystem. When enabled,
  /// inter-node payloads (eager input transfers, barrier pulls, vmpi
  /// point-to-point messages) become flows over shared fat-tree links with
  /// max-min fair bandwidth sharing.
  net::NetConfig net;

  /// Task scheduler policy (tlb::sched), selected by name from the policy
  /// registry. The default "locality" reproduces the paper's §5.5 rule
  /// bit-identically; "congestion" feeds fabric link utilization and
  /// per-helper FCT estimates into victim selection; "waittime" throttles
  /// offloading on observed task waits. Unknown names are rejected at
  /// ClusterRuntime construction with the list of valid values.
  sched::SchedConfig sched;

  /// Hierarchical two-level scheduling (tlb::hier). Off by default — the
  /// flat policy named by `sched.policy` runs and plain schedules stay
  /// bit-identical. When enabled, victim selection goes through per-node
  /// local masters and a global balancer over compact load summaries
  /// (overrides `sched.policy`; equivalent to sched.policy = "hier" with
  /// this struct's tuning applied).
  hier::HierConfig hier;

  /// Observability (tlb::obs). Off by default; enabling span collection is
  /// pure recording and keeps schedules bit-identical (the metrics
  /// registry is always on — it has no toggle to get wrong).
  obs::ObsConfig obs;

  /// Elasticity (tlb::elastic). Off by default and the disabled path reads
  /// nothing — plain runs stay bit-identical to a build without the
  /// subsystem. When enabled, ClusterRuntime samples its backlog per
  /// usable core on eval_period ticks and grows / retires helper-only
  /// nodes; svc::JobManager instead uses the same controller to decide how
  /// many cluster nodes are powered on (billed in node-seconds).
  elastic::ElasticConfig elastic;

  /// Host-side engine self-profiling (tlb::prof). Off by default; the
  /// disabled path is a single branch on a plain bool (no clock reads, no
  /// atomics). Enabling is record-only — wall-time attribution, alloc
  /// accounting and health snapshots never feed back into the simulation,
  /// so schedules stay bit-identical on vs off. Note the profiler is
  /// process-global: the runtime turns it on when this is set, and
  /// benches reset it between measurement windows.
  prof::ProfConfig prof;

  /// Service-style traffic scenario (tlb::svc). Inert by default and never
  /// read by ClusterRuntime itself — an enabled config is consumed by
  /// svc::JobManager, which launches one ClusterRuntime per arriving job
  /// (with svc reset to disabled in the per-job configs).
  svc::SvcConfig svc;

  std::uint64_t seed = 42;       ///< expander generation seed
  bool record_traces = true;     ///< keep busy/owned series for figures

  [[nodiscard]] bool drom_active() const {
    return drom && policy != PolicyKind::None;
  }
};

}  // namespace tlb::core
