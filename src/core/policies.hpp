// Core-allocation policies driving DROM (paper §5.4).
//
// Both policies consume the measured "average number of busy cores" per
// worker (TALP window averages) and produce, per node, target ownership
// counts that DROM applies. The local convergence policy uses only
// node-local information; the global solver policy solves Equation (1)
// over the whole cluster via solver::solve_allocation.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/topology.hpp"

namespace tlb::core {

enum class PolicyKind {
  None,    ///< static ownership (no DROM adjustments)
  Local,   ///< per-node proportional convergence (§5.4.1)
  Global,  ///< global linear-program solve (§5.4.2)
};

/// Canonical name of a policy ("none", "local", "global") — the inverse
/// of parse_policy_kind, used by benches/reports so every name rendering
/// agrees.
[[nodiscard]] const char* to_string(PolicyKind kind);

/// Parses a policy name. Unknown names throw std::invalid_argument
/// listing the valid values — never a silent fallback to a default.
[[nodiscard]] PolicyKind parse_policy_kind(const std::string& name);

/// Ownership targets for every node: targets[n] lists (worker, cores) for
/// each worker resident on node n; counts sum to node_cores[n], each >= 1.
using OwnershipPlan = std::vector<std::vector<std::pair<WorkerId, int>>>;

/// §5.4.1 — each node independently redistributes its cores proportionally
/// to the resident workers' average busy-core counts.
/// `busy[w]` is the windowed average busy cores of worker w.
/// `alive`, when non-null, masks out crashed workers (tlb::fault): dead
/// workers receive no cores and their cores are split among survivors.
OwnershipPlan local_convergence_plan(const Topology& topo,
                                     const std::vector<int>& node_cores,
                                     const std::vector<double>& busy,
                                     const std::vector<char>* alive = nullptr);

/// §5.4.2 — global solve of Equation (1): per-apprank work = sum of its
/// workers' busy averages; minimise max_a work_a / cores_a subject to
/// adjacency, >= 1 core per worker, node capacities; prefer local cores.
/// `alive`, when non-null, masks out crashed workers: the solve runs over
/// the reduced offloading graph whose edges are the surviving workers.
/// `iteration_limit` bounds the solver's bisection (<= 0 keeps the solver
/// default); when given, `converged` reports whether the solve reached its
/// tolerance within the budget (tlb::resil fallback chain).
OwnershipPlan global_solver_plan(const Topology& topo,
                                 const std::vector<int>& node_cores,
                                 const std::vector<double>& busy,
                                 const std::vector<char>* alive = nullptr,
                                 int iteration_limit = 0,
                                 bool* converged = nullptr);

/// Last rung of the tlb::resil solver fallback chain: static proportional
/// ownership ignoring all measurements — each node splits its cores evenly
/// over its usable resident workers (>= 1 each). Depends on nothing that
/// can fail, so it is always available.
OwnershipPlan static_ownership_plan(const Topology& topo,
                                    const std::vector<int>& node_cores,
                                    const std::vector<char>* alive = nullptr);

/// Initial ownership (paper §5.4): each helper rank owns one core; the
/// remaining cores are divided equally among the node's appranks.
OwnershipPlan initial_plan(const Topology& topo,
                           const std::vector<int>& node_cores);

}  // namespace tlb::core
