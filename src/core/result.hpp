// Outcome of a ClusterRuntime execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/stats.hpp"

namespace tlb::core {

struct RunResult {
  /// Simulated time at which the last apprank completed its last
  /// iteration (the paper's execution time / time-to-solution).
  double makespan = 0.0;
  /// Global barrier-to-barrier duration of each iteration.
  std::vector<double> iteration_times;
  /// Lower bound with perfect load balance: per iteration, total work
  /// divided by total compute capacity (cores x speed), summed.
  double perfect_time = 0.0;

  // Offloading statistics.
  std::uint64_t tasks_total = 0;
  std::uint64_t tasks_offloaded = 0;   ///< executed off the home node
  double work_total = 0.0;
  double work_offloaded = 0.0;
  std::uint64_t transfer_bytes = 0;    ///< offload input data moved
  std::uint64_t control_messages = 0;  ///< offload/finish notifications

  // DLB statistics.
  std::uint64_t lewi_lends = 0;
  std::uint64_t lewi_borrows = 0;
  std::uint64_t lewi_reclaims = 0;
  std::uint64_t drom_moves = 0;

  // Fault / resilience statistics (tlb::fault).
  std::uint64_t tasks_reexecuted = 0;  ///< rescued from crashed workers
  std::uint64_t workers_crashed = 0;
  std::uint64_t messages_lost = 0;     ///< transmissions lost on the wire
  std::uint64_t retransmissions = 0;   ///< retry attempts after losses

  // Failure detection / graceful degradation (tlb::resil; all zero in
  // DetectionMode::Oracle).
  std::uint64_t heartbeat_messages = 0;   ///< heartbeats sent on ctrl plane
  std::uint64_t detections = 0;           ///< true suspicions (worker was dead)
  std::uint64_t false_suspicions = 0;     ///< suspicions of live workers
  double detection_latency_sum = 0.0;     ///< sum over true detections
  std::uint64_t lease_retransmits = 0;    ///< offload copies re-sent
  std::uint64_t lease_expiries = 0;       ///< leases that exhausted attempts
  std::uint64_t duplicates_suppressed = 0;  ///< stale completions dropped
  std::uint64_t quarantine_ejections = 0;
  std::uint64_t quarantine_readmissions = 0;
  std::uint64_t policy_downshifts = 0;    ///< solver fallback-chain drops
  std::uint64_t rewired_edges = 0;        ///< expander edges added post-crash

  // Scheduler policy statistics (tlb::sched).
  std::string sched_policy;        ///< name of the policy that ran
  sched::SchedStats sched;         ///< victim-selection counters

  std::uint64_t events_fired = 0;      ///< simulator events (diagnostic)

  /// Mean observed failure-detection latency (true detections only);
  /// negative when nothing was detected.
  [[nodiscard]] double mean_detection_latency() const {
    return detections > 0
               ? detection_latency_sum / static_cast<double>(detections)
               : -1.0;
  }

  [[nodiscard]] double offload_fraction() const {
    return work_total > 0.0 ? work_offloaded / work_total : 0.0;
  }
  /// makespan relative to the perfect-balance bound (>= 1).
  [[nodiscard]] double vs_perfect() const {
    return perfect_time > 0.0 ? makespan / perfect_time : 0.0;
  }
};

}  // namespace tlb::core
