// Configuration of the elasticity subsystem (tlb::elastic).
//
// Elasticity turns the resilience machinery (expander rewire, mid-run
// DLB/topology growth, epoch-stamped leases) from a crash-recovery path
// into a capacity feature: the cluster scales out on sustained queue
// pressure and scales back in on idle, mid-run, without a restart.
//
// Two consumers share this config:
//   - core::ClusterRuntime (single-app runs): when `enabled`, an elastic
//     tick samples the runtime's task backlog per usable core and grows /
//     retires helper-only nodes between min_nodes and max_nodes.
//   - svc::JobManager (service scenario): the same controller decides how
//     many of the cluster's nodes are powered on; jobs only dispatch onto
//     provisioned nodes and the run is billed in node-seconds.
//
// RuntimeConfig::elastic carries this struct. The default (enabled =
// false) is inert — no tick is scheduled, no code path reads the knobs —
// so plain runs stay bit-identical to a build without the subsystem.
#pragma once

namespace tlb::elastic {

struct ElasticConfig {
  /// Master switch. False (the default) schedules nothing.
  bool enabled = false;

  /// Node-count bounds the controller honours. For the JobManager these
  /// are powered-on node counts within the configured cluster (max_nodes
  /// is clamped to the cluster size); for ClusterRuntime they bound the
  /// total node count including elastic grow_node() additions.
  int min_nodes = 1;
  int max_nodes = 64;

  /// Controller sampling period, simulated seconds.
  double eval_period = 0.25;

  /// Pressure thresholds with hysteresis. Pressure is demand over
  /// capacity: for the JobManager, (queued node demand + busy nodes) /
  /// powered nodes; for ClusterRuntime, backlogged tasks per usable core.
  /// Sustained pressure >= high_pressure for sustain_ticks consecutive
  /// samples scales out; pressure <= low_pressure for idle_ticks samples
  /// scales in. The dead band in between holds.
  double high_pressure = 1.05;
  double low_pressure = 0.60;
  int sustain_ticks = 2;
  int idle_ticks = 8;

  /// Minimum simulated time between two scaling actions (either
  /// direction) — the outer damper against provision/retire thrash.
  double cooldown = 0.5;

  /// Nodes added / removed per scaling action.
  int step = 1;

  /// Boot time of a provisioned node: it counts towards capacity (and
  /// node-seconds) immediately but becomes schedulable only after this
  /// delay (svc::JobManager; ClusterRuntime grows synchronously — the
  /// simulated runtime attach is the analogue of this handshake).
  double provision_delay = 0.5;

  /// Shape of nodes added by ClusterRuntime::grow_node when driven by the
  /// elastic tick: cores per node (0 = clone node 0) and speed factor.
  int node_cores = 0;
  double node_speed = 1.0;
  /// Helper ranks to place on a grown node (0 = as many as fit: one per
  /// apprank, capped by the node's core count).
  int helpers_per_node = 0;
};

}  // namespace tlb::elastic
