// ElasticController — scale-out / scale-in decisions (tlb::elastic).
//
// A deterministic, clockless hysteresis controller in the style of the
// other svc primitives (TokenBucket, GradientLimiter): the caller samples
// its queue-pressure signal on a fixed tick and feeds it in; the
// controller answers Hold / Out / In. No randomness, no event scheduling,
// no wall clock — the same sample sequence always yields the same
// decision sequence, which is what keeps elastic runs reproducible.
//
// Pressure is demand over capacity (see ElasticConfig). The controller
// scales out only after `sustain_ticks` consecutive high samples and in
// only after `idle_ticks` consecutive low samples, with a shared cooldown
// between actions — the two-level damping that prevents provision/retire
// thrash around the thresholds.
#pragma once

#include <cstdint>

#include "elastic/config.hpp"

namespace tlb::elastic {

enum class ScaleDecision {
  Hold,
  Out,  ///< add ElasticConfig::step nodes (caller clamps to max_nodes)
  In,   ///< remove up to ElasticConfig::step idle nodes
};

[[nodiscard]] const char* to_string(ScaleDecision d);

class ElasticController {
 public:
  explicit ElasticController(const ElasticConfig& config);

  /// One controller tick: `pressure` is the sampled demand/capacity ratio,
  /// `active_nodes` the current provisioned count (in-flight provisions
  /// included, so a pending scale-out is not requested twice). `now` must
  /// be monotone across calls.
  ScaleDecision observe(double now, double pressure, int active_nodes);

  /// Updates the node-count bounds mid-run (xDS node-set resource).
  /// Throws std::invalid_argument unless 1 <= min <= max.
  void set_bounds(int min_nodes, int max_nodes);

  [[nodiscard]] int min_nodes() const { return min_nodes_; }
  [[nodiscard]] int max_nodes() const { return max_nodes_; }
  [[nodiscard]] std::uint64_t scale_out_decisions() const { return outs_; }
  [[nodiscard]] std::uint64_t scale_in_decisions() const { return ins_; }

 private:
  ElasticConfig config_;
  int min_nodes_;
  int max_nodes_;
  int high_streak_ = 0;
  int low_streak_ = 0;
  double last_action_ = -1.0e300;  ///< effectively "never"
  std::uint64_t outs_ = 0;
  std::uint64_t ins_ = 0;
};

}  // namespace tlb::elastic
