#include "elastic/xds.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace tlb::elastic {

const char* to_string(PushStatus s) {
  switch (s) {
    case PushStatus::Acked: return "acked";
    case PushStatus::Nacked: return "nacked";
    case PushStatus::StaleVersion: return "stale-version";
    case PushStatus::UnknownType: return "unknown-type";
  }
  return "?";
}

void ControlPlane::subscribe(const std::string& type_url, ApplyFn apply) {
  if (type_url.empty() || apply == nullptr) {
    throw std::invalid_argument("ControlPlane: empty type_url or applier");
  }
  const auto [it, inserted] = subs_.emplace(type_url, Subscription{});
  if (!inserted) {
    throw std::invalid_argument("ControlPlane: duplicate subscription for " +
                                type_url);
  }
  it->second.apply = std::move(apply);
}

PushResult ControlPlane::push(const Resource& resource) {
  ++pushes_;
  PushResult result;
  const auto it = subs_.find(resource.type_url);
  if (it == subs_.end()) {
    result.status = PushStatus::UnknownType;
    result.detail = "no subscriber for \"" + resource.type_url + "\"";
    return result;
  }
  Subscription& sub = it->second;
  if (sub.acked.has_value() && resource.version <= sub.acked->version) {
    result.status = PushStatus::StaleVersion;
    result.detail = "version " + std::to_string(resource.version) +
                    " <= acked " + std::to_string(sub.acked->version);
    return result;
  }
  const std::string error = sub.apply(resource);
  if (error.empty()) {
    sub.acked = resource;
    ++acks_;
    result.status = PushStatus::Acked;
    return result;
  }
  ++nacks_;
  result.status = PushStatus::Nacked;
  result.detail = error;
  if (sub.acked.has_value()) {
    // Roll back: re-apply the last good resource. The applier contract
    // (NACK leaves state unchanged, re-apply of an ACKed resource
    // succeeds) makes this a no-op unless the applier is buggy — assert
    // so a contract violation is loud in debug builds.
    const std::string rollback_error = sub.apply(*sub.acked);
    assert(rollback_error.empty() &&
           "rollback of an ACKed resource must succeed");
    (void)rollback_error;
    ++rollbacks_;
    result.rolled_back = true;
  }
  return result;
}

std::optional<Resource> ControlPlane::last_acked(
    const std::string& type_url) const {
  const auto it = subs_.find(type_url);
  if (it == subs_.end()) return std::nullopt;
  return it->second.acked;
}

std::vector<std::string> ControlPlane::subscribed_types() const {
  std::vector<std::string> types;
  types.reserve(subs_.size());
  for (const auto& [type, sub] : subs_) {
    (void)sub;
    types.push_back(type);
  }
  return types;
}

std::map<std::string, std::string> parse_kv(const std::string& payload) {
  std::map<std::string, std::string> kv;
  std::size_t i = 0;
  while (i < payload.size()) {
    while (i < payload.size() && std::isspace(
               static_cast<unsigned char>(payload[i]))) {
      ++i;
    }
    if (i >= payload.size()) break;
    std::size_t end = i;
    while (end < payload.size() && !std::isspace(
               static_cast<unsigned char>(payload[end]))) {
      ++end;
    }
    const std::string token = payload.substr(i, end - i);
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("parse_kv: malformed token \"" + token +
                                  "\" (expected key=value)");
    }
    kv[token.substr(0, eq)] = token.substr(eq + 1);
    i = end;
  }
  return kv;
}

double kv_double(const std::map<std::string, std::string>& kv,
                 const std::string& key, double fallback) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  const char* begin = it->second.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    throw std::invalid_argument("kv_double: \"" + it->second +
                                "\" is not a number (key " + key + ")");
  }
  return value;
}

int kv_int(const std::map<std::string, std::string>& kv,
           const std::string& key, int fallback) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  const char* begin = it->second.c_str();
  char* end = nullptr;
  const long value = std::strtol(begin, &end, 10);
  if (end == begin || *end != '\0') {
    throw std::invalid_argument("kv_int: \"" + it->second +
                                "\" is not an integer (key " + key + ")");
  }
  return static_cast<int>(value);
}

}  // namespace tlb::elastic
