// xDS-style hot-swap control plane (tlb::elastic).
//
// Envoy's dynamic-resource model, adapted: a management server pushes
// versioned, typed configuration resources (scheduler policy, node-set
// bounds, admission knobs); the data plane applies each push and answers
// ACK or NACK. A NACKed push is rolled back — the last ACKed resource of
// that type is re-applied — so an invalid config can never wedge the
// running system, and no push ever requires a process restart.
//
// A Resource is (type_url, version, payload):
//   - type_url names the resource type ("tlb.sched.policy", ...); each
//     type has exactly one subscribed applier.
//   - version must be strictly increasing per type; a stale or replayed
//     version is NACKed without invoking the applier (xDS's monotone
//     version_info discipline).
//   - payload is an opaque string the applier parses; the simple
//     "key=value key=value" form is supported by parse_kv() below.
//
// The appliers themselves live with the subsystems they configure (the
// svc::JobManager registers one per supported type); this class only
// implements the version/ACK/NACK/rollback discipline and its counters.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tlb::elastic {

struct Resource {
  std::string type_url;
  std::uint64_t version = 0;
  std::string payload;
};

enum class PushStatus {
  Acked,        ///< applied and acknowledged
  Nacked,       ///< applier rejected it (rolled back if possible)
  StaleVersion, ///< version not newer than the last ACKed one
  UnknownType,  ///< no subscriber for this type_url
};

[[nodiscard]] const char* to_string(PushStatus s);

struct PushResult {
  PushStatus status = PushStatus::UnknownType;
  /// NACK reason (applier's error message) or stale/unknown detail.
  std::string detail;
  /// True when a NACK re-applied the previous ACKed resource. False when
  /// there was nothing to roll back to (first push of the type) — the
  /// applier must reject without side effects in that case.
  bool rolled_back = false;
};

class ControlPlane {
 public:
  /// Applier contract: return "" to ACK; any non-empty string NACKs with
  /// that reason and MUST leave the target state unchanged (validate
  /// before mutate). Re-applying an already-ACKed resource must succeed.
  using ApplyFn = std::function<std::string(const Resource&)>;

  /// Registers the applier for one resource type. Throws
  /// std::invalid_argument on a duplicate type_url.
  void subscribe(const std::string& type_url, ApplyFn apply);

  /// Pushes one resource through the version/ACK/NACK discipline.
  PushResult push(const Resource& resource);

  /// Last ACKed resource of a type, or nullopt before the first ACK.
  [[nodiscard]] std::optional<Resource> last_acked(
      const std::string& type_url) const;

  [[nodiscard]] std::vector<std::string> subscribed_types() const;

  [[nodiscard]] std::uint64_t pushes() const { return pushes_; }
  [[nodiscard]] std::uint64_t acks() const { return acks_; }
  [[nodiscard]] std::uint64_t nacks() const { return nacks_; }
  [[nodiscard]] std::uint64_t rollbacks() const { return rollbacks_; }

 private:
  struct Subscription {
    ApplyFn apply;
    std::optional<Resource> acked;
  };
  std::map<std::string, Subscription> subs_;
  std::uint64_t pushes_ = 0;
  std::uint64_t acks_ = 0;
  std::uint64_t nacks_ = 0;
  std::uint64_t rollbacks_ = 0;
};

/// Parses a "key=value key=value ..." payload (whitespace-separated).
/// Duplicate keys keep the last value. Throws std::invalid_argument on a
/// token without '='.
[[nodiscard]] std::map<std::string, std::string> parse_kv(
    const std::string& payload);

/// Strict double / int parsers for applier validation: the whole token
/// must parse, else std::invalid_argument naming `key`.
[[nodiscard]] double kv_double(const std::map<std::string, std::string>& kv,
                               const std::string& key, double fallback);
[[nodiscard]] int kv_int(const std::map<std::string, std::string>& kv,
                         const std::string& key, int fallback);

}  // namespace tlb::elastic
