#include "elastic/controller.hpp"

#include <stdexcept>
#include <string>

namespace tlb::elastic {

const char* to_string(ScaleDecision d) {
  switch (d) {
    case ScaleDecision::Hold: return "hold";
    case ScaleDecision::Out: return "out";
    case ScaleDecision::In: return "in";
  }
  return "?";
}

ElasticController::ElasticController(const ElasticConfig& config)
    : config_(config),
      min_nodes_(config.min_nodes),
      max_nodes_(config.max_nodes) {
  if (config_.min_nodes < 1 || config_.min_nodes > config_.max_nodes) {
    throw std::invalid_argument(
        "ElasticController: need 1 <= min_nodes <= max_nodes");
  }
  if (config_.eval_period <= 0.0) {
    throw std::invalid_argument("ElasticController: eval_period must be > 0");
  }
  if (config_.low_pressure < 0.0 ||
      config_.low_pressure >= config_.high_pressure) {
    throw std::invalid_argument(
        "ElasticController: need 0 <= low_pressure < high_pressure");
  }
  if (config_.sustain_ticks < 1 || config_.idle_ticks < 1 ||
      config_.step < 1) {
    throw std::invalid_argument(
        "ElasticController: sustain_ticks, idle_ticks, step must be >= 1");
  }
}

void ElasticController::set_bounds(int min_nodes, int max_nodes) {
  if (min_nodes < 1 || min_nodes > max_nodes) {
    throw std::invalid_argument(
        "ElasticController: need 1 <= min_nodes <= max_nodes (got " +
        std::to_string(min_nodes) + ".." + std::to_string(max_nodes) + ")");
  }
  min_nodes_ = min_nodes;
  max_nodes_ = max_nodes;
}

ScaleDecision ElasticController::observe(double now, double pressure,
                                         int active_nodes) {
  if (pressure >= config_.high_pressure) {
    ++high_streak_;
    low_streak_ = 0;
  } else if (pressure <= config_.low_pressure) {
    ++low_streak_;
    high_streak_ = 0;
  } else {
    // Dead band: both streaks reset, so a brief dip does not erase the
    // evidence threshold in either direction.
    high_streak_ = 0;
    low_streak_ = 0;
  }
  if (now - last_action_ < config_.cooldown) return ScaleDecision::Hold;
  if (high_streak_ >= config_.sustain_ticks && active_nodes < max_nodes_) {
    high_streak_ = 0;
    last_action_ = now;
    ++outs_;
    return ScaleDecision::Out;
  }
  if (low_streak_ >= config_.idle_ticks && active_nodes > min_nodes_) {
    low_streak_ = 0;
    last_action_ = now;
    ++ins_;
    return ScaleDecision::In;
  }
  return ScaleDecision::Hold;
}

}  // namespace tlb::elastic
