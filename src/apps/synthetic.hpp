// Synthetic benchmark with configurable imbalance (paper §6.2).
//
// Each iteration creates `tasks_per_rank` tasks per apprank with average
// duration `base_duration` (50 ms in the paper). The worst-case rank's
// tasks average base * imbalance; the other ranks' mean durations are
// drawn uniformly and then corrected so the Equation-2 imbalance is met
// exactly. Optionally one rank can be forced to carry the least work
// (the "slow node has least work" side of Fig 10).
#pragma once

#include <cstdint>
#include <vector>

#include "core/workload.hpp"
#include "sim/rng.hpp"

namespace tlb::apps {

struct SyntheticConfig {
  int appranks = 1;
  int iterations = 4;
  int tasks_per_rank = 100;       ///< paper: 100 tasks per core
  double base_duration = 0.050;   ///< mean task duration, seconds
  double imbalance = 1.0;         ///< Equation-2 target (>= 1)
  int worst_rank = 0;             ///< rank carrying base * imbalance
  int least_rank = -1;            ///< rank forced to the minimum (or -1)
  double duration_jitter = 0.5;   ///< task durations uniform in mean*(1±j)
  /// Emulated slow node (paper §7.5, Fig 10): the tasks of this rank take
  /// `slow_factor` times longer wherever they run ("not actually a slow
  /// node, just emulated by the task durations"). -1 disables.
  int slow_rank = -1;
  double slow_factor = 3.0;
  std::uint64_t bytes_per_task = 64 * 1024;
  std::uint64_t seed = 7;
};

class SyntheticWorkload final : public core::Workload {
 public:
  explicit SyntheticWorkload(SyntheticConfig config);

  [[nodiscard]] int iteration_count() const override {
    return config_.iterations;
  }
  std::vector<core::TaskSpec> make_tasks(int apprank, int iteration) override;

  /// Re-derives all stochastic state (rank means, task-duration streams)
  /// from `seed`, overriding SyntheticConfig::seed. The ClusterRuntime
  /// calls this with a child of RuntimeConfig::seed so a whole run is
  /// reproducible from that single number.
  void reseed(std::uint64_t seed) override;

  /// Mean task duration of each rank (for tests: Eq. 2 of these values
  /// equals the configured imbalance).
  [[nodiscard]] const std::vector<double>& rank_means() const {
    return means_;
  }
  /// The realised Equation-2 imbalance of the rank loads.
  [[nodiscard]] double realized_imbalance() const;

 private:
  /// (Re)computes the per-rank means from config_ and rng_.
  void init();

  SyntheticConfig config_;
  std::vector<double> means_;
  sim::Rng rng_;
};

}  // namespace tlb::apps
