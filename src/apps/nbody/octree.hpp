// Barnes–Hut octree (paper §6.2: the n-body application is a parallel
// Barnes–Hut implementation).
//
// Builds an octree over the bodies, computes per-cell centres of mass, and
// evaluates approximate gravitational accelerations with the standard
// theta opening criterion. The traversal also counts the number of
// body–cell interactions per body — the cost measure ORB uses to
// partition work across ranks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/nbody/body.hpp"

namespace tlb::apps::nbody {

class Octree {
 public:
  /// Builds the tree over the given bodies. `leaf_capacity` bodies per
  /// leaf before subdividing.
  explicit Octree(std::span<const Body> bodies, int leaf_capacity = 8);

  struct ForceResult {
    Vec3 acceleration;
    std::uint64_t interactions = 0;  ///< body-cell + body-body evaluations
  };

  /// Approximate acceleration on `body` using opening angle `theta`;
  /// gravitational constant 1, Plummer softening `eps`.
  [[nodiscard]] ForceResult acceleration(const Body& body, double theta,
                                         double eps = 1e-3) const;

  /// Exact O(n) direct-sum acceleration over the tree's bodies (reference
  /// for accuracy tests).
  [[nodiscard]] static Vec3 direct_acceleration(std::span<const Body> bodies,
                                                const Body& body,
                                                double eps = 1e-3);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t body_count() const { return bodies_.size(); }
  /// Total mass at the root (mass-conservation test hook).
  [[nodiscard]] double total_mass() const;

 private:
  struct Node {
    Vec3 center;       ///< geometric cell centre
    double half = 0.0; ///< half edge length
    Vec3 com;          ///< centre of mass
    double mass = 0.0;
    int first_child = -1;  ///< index of 8 consecutive children, -1 = leaf
    std::vector<int> bodies;  ///< body indices (leaves only)
  };

  void build(int node, std::vector<int> indices, int depth);
  void accumulate(int node, const Body& body, double theta, double eps,
                  ForceResult& out) const;

  std::vector<Node> nodes_;
  std::vector<Body> bodies_;
  int leaf_capacity_;
  static constexpr int kMaxDepth = 32;
};

}  // namespace tlb::apps::nbody
