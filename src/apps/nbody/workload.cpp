#include "apps/nbody/workload.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "apps/nbody/octree.hpp"
#include "apps/nbody/orb.hpp"

namespace tlb::apps::nbody {

namespace {
constexpr std::uint64_t kPosBase = 0;
constexpr std::uint64_t kForceBase = 1ull << 40;
constexpr std::uint64_t kBytesPerBody = 24;  // 3 doubles
}  // namespace

NBodyWorkload::NBodyWorkload(NBodyConfig config)
    : config_(config), rng_(config.seed) {
  assert(config_.appranks >= 1);
  assert(config_.bodies >= config_.appranks * config_.blocks_per_rank &&
         "need at least one body per task block");

  // Initial conditions: a dense central clump plus a diffuse background —
  // the clustered mass concentrates interactions, which is what makes
  // Barnes-Hut load uneven and keeps it drifting as the clump evolves.
  bodies_.resize(static_cast<std::size_t>(config_.bodies));
  const int clustered =
      static_cast<int>(config_.cluster_fraction * config_.bodies);
  for (int i = 0; i < config_.bodies; ++i) {
    Body& b = bodies_[static_cast<std::size_t>(i)];
    if (i < clustered) {
      // Plummer-like ball of radius ~0.08 at the centre.
      const double r = 0.08 * std::pow(rng_.uniform(0.0, 1.0), 1.0 / 3.0);
      const double phi = rng_.uniform(0.0, 2.0 * 3.14159265358979);
      const double cth = rng_.uniform(-1.0, 1.0);
      const double sth = std::sqrt(std::max(0.0, 1.0 - cth * cth));
      b.position = {0.5 + r * sth * std::cos(phi),
                    0.5 + r * sth * std::sin(phi), 0.5 + r * cth};
    } else {
      b.position = {rng_.uniform(0.0, 1.0), rng_.uniform(0.0, 1.0),
                    rng_.uniform(0.0, 1.0)};
    }
    b.velocity = {rng_.uniform(-0.05, 0.05), rng_.uniform(-0.05, 0.05),
                  rng_.uniform(-0.05, 0.05)};
    b.mass = 1.0 / config_.bodies;
  }

  compute_forces_and_weights();
  repartition();
}

void NBodyWorkload::compute_forces_and_weights() {
  const Octree tree(bodies_);
  accel_.resize(bodies_.size());
  weights_.resize(bodies_.size());
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    const auto fr = tree.acceleration(bodies_[i], config_.theta);
    accel_[i] = fr.acceleration;
    weights_[i] = static_cast<double>(fr.interactions);
  }
}

void NBodyWorkload::repartition() {
  assignment_ = orb_partition(bodies_, weights_, config_.appranks,
                              config_.orb_chunk);
  rank_bodies_.assign(static_cast<std::size_t>(config_.appranks), {});
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    rank_bodies_[static_cast<std::size_t>(assignment_[i])].push_back(
        static_cast<int>(i));
  }
}

std::vector<double> NBodyWorkload::rank_loads() const {
  std::vector<double> loads(static_cast<std::size_t>(config_.appranks), 0.0);
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    loads[static_cast<std::size_t>(assignment_[i])] +=
        weights_[i] * config_.seconds_per_interaction;
  }
  return loads;
}

double NBodyWorkload::kinetic_energy() const {
  double e = 0.0;
  for (const Body& b : bodies_) e += 0.5 * b.mass * b.velocity.norm2();
  return e;
}

std::vector<core::TaskSpec> NBodyWorkload::make_tasks(int apprank,
                                                      int iteration) {
  (void)iteration;
  const auto& mine = rank_bodies_.at(static_cast<std::size_t>(apprank));
  const int blocks = std::min<int>(config_.blocks_per_rank,
                                   static_cast<int>(mine.size()));
  std::vector<core::TaskSpec> specs;
  if (blocks == 0) return specs;
  specs.reserve(static_cast<std::size_t>(2 * blocks));

  const std::uint64_t all_pos_bytes =
      static_cast<std::uint64_t>(config_.bodies) * kBytesPerBody;

  // ALL force tasks first (they read the positions snapshot), then the
  // update tasks (they overwrite position slices). Creating them in this
  // order gives the correct Barnes-Hut dependency shape: every force task
  // of a step runs before any update of that step (WAR), forces are
  // mutually parallel, and next step's forces wait for this step's
  // updates (RAW).
  std::size_t start = 0;
  for (int blk = 0; blk < blocks; ++blk) {
    const std::size_t end = mine.size() * static_cast<std::size_t>(blk + 1) /
                            static_cast<std::size_t>(blocks);
    double work = 0.0;
    for (std::size_t i = start; i < end; ++i) {
      work += weights_[static_cast<std::size_t>(mine[i])] *
              config_.seconds_per_interaction;
    }
    const std::uint64_t slice_off = start * kBytesPerBody;
    const std::uint64_t slice_len = (end - start) * kBytesPerBody;

    core::TaskSpec force;
    force.work = work;
    force.offloadable = true;  // the paper's Fig 3 kernel
    force.accesses.push_back(nanos::AccessRegion{
        kPosBase, all_pos_bytes, nanos::AccessMode::In});
    force.accesses.push_back(nanos::AccessRegion{
        kForceBase + slice_off, slice_len, nanos::AccessMode::Out});
    specs.push_back(std::move(force));
    start = end;
  }
  start = 0;
  for (int blk = 0; blk < blocks; ++blk) {
    const std::size_t end = mine.size() * static_cast<std::size_t>(blk + 1) /
                            static_cast<std::size_t>(blocks);
    const std::uint64_t slice_off = start * kBytesPerBody;
    const std::uint64_t slice_len = (end - start) * kBytesPerBody;

    core::TaskSpec update;
    update.work = config_.update_task_cost;
    update.offloadable = false;  // feeds the MPI position exchange
    update.accesses.push_back(nanos::AccessRegion{
        kForceBase + slice_off, slice_len, nanos::AccessMode::In});
    update.accesses.push_back(nanos::AccessRegion{
        kPosBase + slice_off, slice_len, nanos::AccessMode::InOut});
    specs.push_back(std::move(update));
    start = end;
  }
  return specs;
}

void NBodyWorkload::on_iteration_done(int iteration,
                                      const std::vector<double>& times) {
  (void)iteration;
  (void)times;
  // Advance the real physics one leapfrog step with the current
  // accelerations, then refresh forces/weights and re-partition — ORB
  // runs every timestep, as in the original application.
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    bodies_[i].velocity += config_.dt * accel_[i];
    bodies_[i].position += config_.dt * bodies_[i].velocity;
  }
  compute_forces_and_weights();
  repartition();
}

}  // namespace tlb::apps::nbody
