#include "apps/nbody/orb.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace tlb::apps::nbody {

namespace {

void bisect(std::span<const Body> bodies, std::span<const double> weights,
            std::vector<int>& indices, int first_part, int parts, int chunk,
            std::vector<int>& out) {
  if (parts == 1) {
    for (int idx : indices) out[static_cast<std::size_t>(idx)] = first_part;
    return;
  }
  // Widest axis of this subset's bounding box.
  Vec3 lo = bodies[static_cast<std::size_t>(indices.front())].position;
  Vec3 hi = lo;
  for (int idx : indices) {
    const Vec3& p = bodies[static_cast<std::size_t>(idx)].position;
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  const double dx = hi.x - lo.x;
  const double dy = hi.y - lo.y;
  const double dz = hi.z - lo.z;
  int axis = 0;
  if (dy >= dx && dy >= dz) {
    axis = 1;
  } else if (dz >= dx && dz >= dy) {
    axis = 2;
  }
  auto coord = [&](int idx) {
    const Vec3& p = bodies[static_cast<std::size_t>(idx)].position;
    return axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
  };
  std::sort(indices.begin(), indices.end(),
            [&](int a, int b) { return coord(a) < coord(b); });

  // Split ranks in half; the weight cut targets the left share.
  const int left_parts = parts / 2;
  const int right_parts = parts - left_parts;
  double total = 0.0;
  for (int idx : indices) total += weights[static_cast<std::size_t>(idx)];
  const double target = total * left_parts / parts;

  double acc = 0.0;
  std::size_t cut = 0;
  while (cut < indices.size() - 1 && acc < target) {
    acc += weights[static_cast<std::size_t>(indices[cut])];
    ++cut;
  }
  // Round to the split granularity, keeping at least one body (and at
  // least `left_parts`/`right_parts` bodies where possible) per side.
  if (chunk > 1) {
    cut = (cut + static_cast<std::size_t>(chunk) / 2) /
          static_cast<std::size_t>(chunk) * static_cast<std::size_t>(chunk);
  }
  const std::size_t min_left = static_cast<std::size_t>(left_parts);
  const std::size_t max_left = indices.size() - static_cast<std::size_t>(right_parts);
  cut = std::max(min_left, std::min(cut, max_left));

  std::vector<int> left(indices.begin(),
                        indices.begin() + static_cast<std::ptrdiff_t>(cut));
  std::vector<int> right(indices.begin() + static_cast<std::ptrdiff_t>(cut),
                         indices.end());
  bisect(bodies, weights, left, first_part, left_parts, chunk, out);
  bisect(bodies, weights, right, first_part + left_parts, right_parts, chunk,
         out);
}

}  // namespace

std::vector<int> orb_partition(std::span<const Body> bodies,
                               std::span<const double> weights, int parts,
                               int chunk) {
  assert(bodies.size() == weights.size());
  assert(parts >= 1 && chunk >= 1);
  assert(static_cast<int>(bodies.size()) >= parts &&
         "need at least one body per rank");
  std::vector<int> out(bodies.size(), 0);
  std::vector<int> indices(bodies.size());
  std::iota(indices.begin(), indices.end(), 0);
  bisect(bodies, weights, indices, 0, parts, chunk, out);
  return out;
}

std::vector<double> part_weights(std::span<const int> assignment,
                                 std::span<const double> weights, int parts) {
  std::vector<double> out(static_cast<std::size_t>(parts), 0.0);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    out[static_cast<std::size_t>(assignment[i])] += weights[i];
  }
  return out;
}

}  // namespace tlb::apps::nbody
