// Orthogonal Recursive Bisection (paper §6.2: the n-body code uses ORB to
// equalise *predicted* work across ranks).
//
// Recursively splits the body set along the widest coordinate axis so
// that each side's total weight matches its share of ranks. The weights
// are interaction counts from the previous timestep — a cost model that is
// deliberately blind to node speed, which is exactly why a slow node
// defeats it (paper §7.1, Fig 6(c)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/nbody/body.hpp"

namespace tlb::apps::nbody {

/// Assigns each body to one of `parts` ranks. `weights[i]` is the
/// predicted cost of body i (>= 0). Returns the rank id per body.
/// `chunk` rounds every bisection cut to a multiple of `chunk` bodies —
/// real ORB implementations split at cell/bucket granularity, and that
/// coarseness is the residual imbalance DLB then picks up (paper §7.1).
std::vector<int> orb_partition(std::span<const Body> bodies,
                               std::span<const double> weights, int parts,
                               int chunk = 1);

/// Per-part total weight under an assignment (diagnostic / tests).
std::vector<double> part_weights(std::span<const int> assignment,
                                 std::span<const double> weights, int parts);

}  // namespace tlb::apps::nbody
