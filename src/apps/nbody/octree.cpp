#include "apps/nbody/octree.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace tlb::apps::nbody {

Octree::Octree(std::span<const Body> bodies, int leaf_capacity)
    : bodies_(bodies.begin(), bodies.end()), leaf_capacity_(leaf_capacity) {
  assert(leaf_capacity_ >= 1);
  if (bodies_.empty()) return;

  // Root cell: cube bounding all bodies.
  Vec3 lo = bodies_.front().position;
  Vec3 hi = lo;
  for (const Body& b : bodies_) {
    lo.x = std::min(lo.x, b.position.x);
    lo.y = std::min(lo.y, b.position.y);
    lo.z = std::min(lo.z, b.position.z);
    hi.x = std::max(hi.x, b.position.x);
    hi.y = std::max(hi.y, b.position.y);
    hi.z = std::max(hi.z, b.position.z);
  }
  Node root;
  root.center = 0.5 * (lo + hi);
  root.half = 0.5 * std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z});
  root.half = std::max(root.half, 1e-12) * 1.0000001;  // avoid boundary cases
  nodes_.push_back(root);

  std::vector<int> all(bodies_.size());
  std::iota(all.begin(), all.end(), 0);
  build(0, std::move(all), 0);
}

void Octree::build(int node, std::vector<int> indices, int depth) {
  // Centre of mass of this cell.
  Node& n0 = nodes_[static_cast<std::size_t>(node)];
  double mass = 0.0;
  Vec3 com;
  for (int idx : indices) {
    const Body& b = bodies_[static_cast<std::size_t>(idx)];
    mass += b.mass;
    com += b.mass * b.position;
  }
  n0.mass = mass;
  n0.com = mass > 0.0 ? (1.0 / mass) * com : n0.center;

  if (static_cast<int>(indices.size()) <= leaf_capacity_ ||
      depth >= kMaxDepth) {
    n0.bodies = std::move(indices);
    return;
  }

  // Partition into octants.
  std::array<std::vector<int>, 8> parts;
  const Vec3 c = n0.center;
  for (int idx : indices) {
    const Vec3& p = bodies_[static_cast<std::size_t>(idx)].position;
    const int oct =
        (p.x >= c.x ? 1 : 0) | (p.y >= c.y ? 2 : 0) | (p.z >= c.z ? 4 : 0);
    parts[static_cast<std::size_t>(oct)].push_back(idx);
  }

  const int first = static_cast<int>(nodes_.size());
  nodes_[static_cast<std::size_t>(node)].first_child = first;
  const double h = nodes_[static_cast<std::size_t>(node)].half * 0.5;
  for (int o = 0; o < 8; ++o) {
    Node child;
    child.center.x = c.x + (o & 1 ? h : -h);
    child.center.y = c.y + (o & 2 ? h : -h);
    child.center.z = c.z + (o & 4 ? h : -h);
    child.half = h;
    nodes_.push_back(child);
  }
  for (int o = 0; o < 8; ++o) {
    if (!parts[static_cast<std::size_t>(o)].empty()) {
      build(first + o, std::move(parts[static_cast<std::size_t>(o)]),
            depth + 1);
    }
  }
}

namespace {
Vec3 pair_accel(const Vec3& from, const Vec3& to, double mass, double eps) {
  const Vec3 d = to - from;
  const double r2 = d.norm2() + eps * eps;
  const double inv = 1.0 / (r2 * std::sqrt(r2));
  return mass * inv * d;
}
}  // namespace

void Octree::accumulate(int node, const Body& body, double theta, double eps,
                        ForceResult& out) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.mass <= 0.0) return;

  if (n.first_child < 0) {
    // Leaf: direct sum over its bodies.
    for (int idx : n.bodies) {
      const Body& other = bodies_[static_cast<std::size_t>(idx)];
      const Vec3 d = other.position - body.position;
      if (d.norm2() == 0.0) continue;  // self
      out.acceleration += pair_accel(body.position, other.position,
                                     other.mass, eps);
      ++out.interactions;
    }
    return;
  }
  const double dist = (n.com - body.position).norm();
  if (dist > 0.0 && (2.0 * n.half) / dist < theta) {
    // Far cell: treat as a point mass.
    out.acceleration += pair_accel(body.position, n.com, n.mass, eps);
    ++out.interactions;
    return;
  }
  for (int o = 0; o < 8; ++o) {
    accumulate(n.first_child + o, body, theta, eps, out);
  }
}

Octree::ForceResult Octree::acceleration(const Body& body, double theta,
                                         double eps) const {
  ForceResult out;
  if (!nodes_.empty()) accumulate(0, body, theta, eps, out);
  return out;
}

Vec3 Octree::direct_acceleration(std::span<const Body> bodies,
                                 const Body& body, double eps) {
  Vec3 acc;
  for (const Body& other : bodies) {
    const Vec3 d = other.position - body.position;
    if (d.norm2() == 0.0) continue;
    acc += pair_accel(body.position, other.position, other.mass, eps);
  }
  return acc;
}

double Octree::total_mass() const {
  return nodes_.empty() ? 0.0 : nodes_.front().mass;
}

}  // namespace tlb::apps::nbody
