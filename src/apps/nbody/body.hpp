// Body and 3-vector types for the Barnes–Hut n-body application.
#pragma once

#include <cmath>

namespace tlb::apps::nbody {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  friend Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend Vec3 operator*(double s, Vec3 a) { return a *= s; }

  [[nodiscard]] double norm2() const { return x * x + y * y + z * z; }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
};

struct Body {
  Vec3 position;
  Vec3 velocity;
  double mass = 1.0;
};

}  // namespace tlb::apps::nbody
