// n-body workload: Barnes–Hut with ORB rank partitioning (paper §6.2).
//
// The workload holds the real body system. Each iteration:
//   1. ORB assigns bodies to appranks using last step's interaction counts
//      (speed-blind, like the original application);
//   2. each apprank creates one offloadable force task per body block
//      (cost = real Barnes–Hut interaction count x seconds/interaction)
//      plus non-offloadable update tasks that integrate its bodies;
//   3. between iterations the physics advances with a real Barnes–Hut
//      force evaluation + leapfrog step, refreshing the interaction
//      counts (so the load profile drifts as the system evolves).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/nbody/body.hpp"
#include "core/workload.hpp"
#include "sim/rng.hpp"

namespace tlb::apps::nbody {

struct NBodyConfig {
  int appranks = 1;
  int iterations = 10;
  int bodies = 1536;
  int blocks_per_rank = 24;       ///< force tasks per apprank
  double theta = 0.5;             ///< Barnes-Hut opening angle
  double dt = 1e-3;               ///< leapfrog timestep
  double seconds_per_interaction = 2e-6;  ///< task-cost scale
  double update_task_cost = 1e-4; ///< per update task (non-offloadable)
  double cluster_fraction = 0.3;  ///< bodies in the dense central clump
  /// ORB split granularity in bodies (real ORB splits at cell/bucket
  /// granularity; the rounding error is the residual per-rank imbalance).
  int orb_chunk = 1;
  std::uint64_t seed = 5;
};

class NBodyWorkload final : public core::Workload {
 public:
  explicit NBodyWorkload(NBodyConfig config);

  [[nodiscard]] int iteration_count() const override {
    return config_.iterations;
  }
  std::vector<core::TaskSpec> make_tasks(int apprank, int iteration) override;
  void on_iteration_done(int iteration,
                         const std::vector<double>& apprank_times) override;

  // Introspection for tests / examples.
  [[nodiscard]] const std::vector<Body>& bodies() const { return bodies_; }
  [[nodiscard]] const std::vector<double>& interaction_weights() const {
    return weights_;
  }
  /// Per-apprank predicted load of the current partition (core-seconds).
  [[nodiscard]] std::vector<double> rank_loads() const;
  [[nodiscard]] double kinetic_energy() const;

 private:
  void compute_forces_and_weights();
  void repartition();

  NBodyConfig config_;
  std::vector<Body> bodies_;
  std::vector<Vec3> accel_;
  std::vector<double> weights_;     ///< per-body interaction counts
  std::vector<int> assignment_;     ///< body -> apprank
  std::vector<std::vector<int>> rank_bodies_;  ///< apprank -> body ids
  sim::Rng rng_;
};

}  // namespace tlb::apps::nbody
