// Structured-grid micro-scale FE subdomain: assembly + CG solve.
//
// A real (small) solid-mechanics solve used by tests and examples to
// validate the hex8 kernel end-to-end: an nx x ny x nz grid of hexahedral
// elements under uniaxial compression. The MicroPP workload derives task
// costs from these kernels' measured flop counts.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/micropp/hex8.hpp"
#include "apps/micropp/material.hpp"

namespace tlb::apps::micropp {

struct SubdomainConfig {
  int nx = 4;
  int ny = 4;
  int nz = 4;
  double h = 0.25;  ///< element edge length
  ElasticParams material;
};

class Subdomain {
 public:
  explicit Subdomain(SubdomainConfig config);

  [[nodiscard]] int element_count() const { return cfg_.nx * cfg_.ny * cfg_.nz; }
  [[nodiscard]] int node_count() const {
    return (cfg_.nx + 1) * (cfg_.ny + 1) * (cfg_.nz + 1);
  }
  [[nodiscard]] int dof_count() const { return 3 * node_count(); }

  /// Global node index of grid node (i, j, k).
  [[nodiscard]] int node_index(int i, int j, int k) const;

  /// The 8 node indices of element (i, j, k), in hex8 local order.
  [[nodiscard]] std::array<int, 8> element_nodes(int i, int j, int k) const;

  /// Assembles the global stiffness for a homogeneous elastic material.
  /// Returns the accumulated element-kernel flop count.
  std::uint64_t assemble();

  struct Solution {
    std::vector<double> u;  ///< dof displacements
    int cg_iterations = 0;
    double residual = 0.0;
  };

  /// Uniaxial compression: z=0 face fixed, z=top face displaced by `uz` in
  /// z (x,y free on top). Solves K u = f with conjugate gradients.
  Solution solve_compression(double uz, int max_iterations = 4000,
                             double tolerance = 1e-10);

  /// K v (for tests); requires assemble() first.
  [[nodiscard]] std::vector<double> apply(const std::vector<double>& v) const;

 private:
  struct Csr {
    std::vector<int> row_ptr;
    std::vector<int> col;
    std::vector<double> val;
  };
  void to_csr();

  SubdomainConfig cfg_;
  // Assembly storage: per-dof row maps, converted to CSR afterwards.
  std::vector<std::vector<std::pair<int, double>>> rows_;
  Csr csr_;
  bool assembled_ = false;
};

}  // namespace tlb::apps::micropp
