// Material models for the MicroPP-like micro-scale solid mechanics kernel.
//
// Alya MicroPP computes composite-material response at the micro scale; the
// load imbalance the paper exploits comes from the mix of cheap linear
// elastic elements and expensive non-linear (plastic) elements requiring
// Newton iterations (paper §6.2). We implement isotropic linear elasticity
// and a J2-style isotropic-hardening return mapping.
#pragma once

#include <array>
#include <cmath>

namespace tlb::apps::micropp {

/// Symmetric 6x6 constitutive matrix in Voigt notation.
using Voigt6x6 = std::array<std::array<double, 6>, 6>;
using Voigt6 = std::array<double, 6>;

struct ElasticParams {
  double young = 200e9;   ///< Young's modulus [Pa]
  double poisson = 0.3;   ///< Poisson ratio
};

struct PlasticParams {
  ElasticParams elastic;
  double yield_stress = 250e6;  ///< initial yield [Pa]
  double hardening = 2e9;       ///< isotropic hardening modulus [Pa]
};

/// Isotropic linear-elastic constitutive matrix (Voigt).
Voigt6x6 elastic_matrix(const ElasticParams& p);

/// One small-strain J2 return-mapping step. Inputs: total strain (Voigt),
/// accumulated plastic strain `alpha`. Outputs: stress, updated alpha, and
/// whether the step was plastic. Returns the number of scalar iterations
/// performed (1 for elastic, >1 when the radial return had to iterate).
struct PlasticResult {
  Voigt6 stress{};
  double alpha = 0.0;
  bool plastic = false;
  int iterations = 1;
};
PlasticResult j2_return_map(const PlasticParams& p, const Voigt6& strain,
                            double alpha);

/// Von Mises equivalent stress of a Voigt stress vector.
double von_mises(const Voigt6& s);

}  // namespace tlb::apps::micropp
