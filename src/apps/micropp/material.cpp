#include "apps/micropp/material.hpp"

#include <algorithm>

namespace tlb::apps::micropp {

Voigt6x6 elastic_matrix(const ElasticParams& p) {
  Voigt6x6 c{};
  const double e = p.young;
  const double nu = p.poisson;
  const double lambda = e * nu / ((1.0 + nu) * (1.0 - 2.0 * nu));
  const double mu = e / (2.0 * (1.0 + nu));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      c[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = lambda;
    }
    c[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] += 2.0 * mu;
    c[static_cast<std::size_t>(i + 3)][static_cast<std::size_t>(i + 3)] = mu;
  }
  return c;
}

double von_mises(const Voigt6& s) {
  const double sx = s[0];
  const double sy = s[1];
  const double sz = s[2];
  const double txy = s[3];
  const double tyz = s[4];
  const double tzx = s[5];
  return std::sqrt(0.5 * ((sx - sy) * (sx - sy) + (sy - sz) * (sy - sz) +
                          (sz - sx) * (sz - sx)) +
                   3.0 * (txy * txy + tyz * tyz + tzx * tzx));
}

PlasticResult j2_return_map(const PlasticParams& p, const Voigt6& strain,
                            double alpha) {
  PlasticResult out;
  out.alpha = alpha;

  const double e = p.elastic.young;
  const double nu = p.elastic.poisson;
  const double mu = e / (2.0 * (1.0 + nu));
  const double kappa = e / (3.0 * (1.0 - 2.0 * nu));

  // Volumetric / deviatoric split of the strain.
  const double evol = strain[0] + strain[1] + strain[2];
  Voigt6 dev = strain;
  for (int i = 0; i < 3; ++i) dev[static_cast<std::size_t>(i)] -= evol / 3.0;

  // Trial deviatoric stress. Engineering shear strains carry a factor 1/2
  // into the tensorial deviator.
  Voigt6 s_trial{};
  for (int i = 0; i < 3; ++i) {
    s_trial[static_cast<std::size_t>(i)] =
        2.0 * mu * dev[static_cast<std::size_t>(i)];
  }
  for (int i = 3; i < 6; ++i) {
    s_trial[static_cast<std::size_t>(i)] =
        mu * dev[static_cast<std::size_t>(i)];
  }
  double norm2 = 0.0;
  for (int i = 0; i < 3; ++i) {
    norm2 += s_trial[static_cast<std::size_t>(i)] *
             s_trial[static_cast<std::size_t>(i)];
  }
  for (int i = 3; i < 6; ++i) {
    norm2 += 2.0 * s_trial[static_cast<std::size_t>(i)] *
             s_trial[static_cast<std::size_t>(i)];
  }
  const double s_norm = std::sqrt(norm2);
  const double k = std::sqrt(2.0 / 3.0);
  const double yield = k * (p.yield_stress + p.hardening * alpha);

  if (s_norm <= yield) {
    // Elastic step.
    out.stress = s_trial;
    for (int i = 0; i < 3; ++i) {
      out.stress[static_cast<std::size_t>(i)] += kappa * evol;
    }
    out.plastic = false;
    out.iterations = 1;
    return out;
  }

  // Radial return with linear hardening (closed form, but iterate a couple
  // of times the way a general nonlinear-hardening solver would).
  double dgamma = 0.0;
  int iters = 0;
  for (; iters < 25; ++iters) {
    const double f = s_norm - 2.0 * mu * dgamma -
                     k * (p.yield_stress +
                          p.hardening * (alpha + k * dgamma));
    if (std::abs(f) < 1e-6 * p.yield_stress) break;
    const double df = -2.0 * mu - k * k * p.hardening;
    dgamma -= f / df;
  }
  const double factor = std::max(0.0, 1.0 - 2.0 * mu * dgamma / s_norm);
  out.stress = s_trial;
  for (auto& v : out.stress) v *= factor;
  for (int i = 0; i < 3; ++i) {
    out.stress[static_cast<std::size_t>(i)] += kappa * evol;
  }
  out.alpha = alpha + k * dgamma;
  out.plastic = true;
  out.iterations = iters + 1;
  return out;
}

}  // namespace tlb::apps::micropp
