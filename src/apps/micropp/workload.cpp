#include "apps/micropp/workload.hpp"

#include <cassert>
#include <cmath>

#include "apps/micropp/hex8.hpp"
#include "apps/micropp/material.hpp"

namespace tlb::apps::micropp {

namespace {
/// Address layout of an apprank's (isolated) address space.
constexpr std::uint64_t kSigmaBase = 1ull << 40;  ///< per-block results
constexpr std::uint64_t kSigmaBytes = 128;        ///< averaged stress tensor
}  // namespace

MicroPPWorkload::MicroPPWorkload(MicroPPConfig config)
    : config_(config), rng_(config.seed) {
  assert(config_.appranks >= 1 && config_.elements_per_task >= 1);

  // Calibrate task costs by running the real element kernels once.
  const ElementCoords coords = unit_cube_coords(1.0);
  const ElasticParams elastic;
  const Voigt6x6 c = elastic_matrix(elastic);
  (void)Hex8::stiffness(coords, c, &flops_linear_);

  PlasticParams plastic;
  plastic.elastic = elastic;
  ElementVector u{};
  // A displacement large enough to enter the plastic regime.
  for (int n = 0; n < 8; ++n) u[static_cast<std::size_t>(3 * n + 2)] = -0.01;
  std::array<double, 8> alpha{};
  ElementVector f{};
  std::uint64_t residual_flops = 0;
  (void)Hex8::internal_force(coords, plastic, u, alpha, f, &residual_flops);
  // One Newton step ~ one tangent assembly + one residual evaluation.
  flops_newton_ = flops_linear_ + residual_flops;
}

double MicroPPWorkload::nonlinear_fraction(int apprank) const {
  const int heavy = static_cast<int>(
      std::ceil(config_.heavy_rank_fraction * config_.appranks));
  return apprank < heavy ? config_.nonlinear_fraction_heavy
                         : config_.nonlinear_fraction_light;
}

std::vector<double> MicroPPWorkload::expected_rank_loads() const {
  std::vector<double> loads;
  loads.reserve(static_cast<std::size_t>(config_.appranks));
  const double mean_newton =
      0.5 * (config_.newton_iterations_min + config_.newton_iterations_max);
  for (int a = 0; a < config_.appranks; ++a) {
    const double f = nonlinear_fraction(a);
    const double per_elem =
        (1.0 - f) * static_cast<double>(flops_linear_) +
        f * mean_newton * static_cast<double>(flops_newton_);
    loads.push_back(per_elem * config_.elements_per_rank /
                    config_.core_flops_rate);
  }
  return loads;
}

std::vector<core::TaskSpec> MicroPPWorkload::make_tasks(int apprank,
                                                        int iteration) {
  const int blocks = tasks_per_rank();
  std::vector<core::TaskSpec> specs;
  specs.reserve(static_cast<std::size_t>(blocks));
  const double f = nonlinear_fraction(apprank);
  sim::Rng rng = rng_.fork(static_cast<std::uint64_t>(apprank) * 7919 +
                           static_cast<std::uint64_t>(iteration));
  const std::uint64_t block_bytes =
      config_.bytes_per_element *
      static_cast<std::uint64_t>(config_.elements_per_task);

  int remaining = config_.elements_per_rank;
  for (int b = 0; b < blocks; ++b) {
    const int elems = std::min(config_.elements_per_task, remaining);
    remaining -= elems;
    // Per-block element mix; Newton iteration counts vary per block and
    // iteration the way real plastic zones do.
    const int nonlinear = static_cast<int>(std::lround(f * elems));
    const int linear = elems - nonlinear;
    const auto newton_iters = rng.uniform_int(config_.newton_iterations_min,
                                              config_.newton_iterations_max);
    const double flops =
        static_cast<double>(linear) * static_cast<double>(flops_linear_) +
        static_cast<double>(nonlinear) * static_cast<double>(newton_iters) *
            static_cast<double>(flops_newton_);

    core::TaskSpec spec;
    spec.work = flops / config_.core_flops_rate;
    const std::uint64_t addr = static_cast<std::uint64_t>(b) * block_bytes;
    spec.accesses.push_back(
        nanos::AccessRegion{addr, block_bytes, nanos::AccessMode::InOut});
    spec.accesses.push_back(nanos::AccessRegion{
        kSigmaBase + static_cast<std::uint64_t>(b) * kSigmaBytes, kSigmaBytes,
        nanos::AccessMode::Out});
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<nanos::AccessRegion> MicroPPWorkload::barrier_regions(
    int apprank, int iteration) {
  (void)apprank;
  (void)iteration;
  // The apprank reduces the per-block averaged stresses at the MPI
  // boundary: those small results must be home.
  std::vector<nanos::AccessRegion> regions;
  const int blocks = tasks_per_rank();
  regions.push_back(nanos::AccessRegion{
      kSigmaBase, static_cast<std::uint64_t>(blocks) * kSigmaBytes,
      nanos::AccessMode::In});
  return regions;
}

}  // namespace tlb::apps::micropp
