#include "apps/micropp/micro_solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace tlb::apps::micropp {

Subdomain::Subdomain(SubdomainConfig config) : cfg_(config) {
  assert(cfg_.nx > 0 && cfg_.ny > 0 && cfg_.nz > 0 && cfg_.h > 0.0);
}

int Subdomain::node_index(int i, int j, int k) const {
  return i + j * (cfg_.nx + 1) + k * (cfg_.nx + 1) * (cfg_.ny + 1);
}

std::array<int, 8> Subdomain::element_nodes(int i, int j, int k) const {
  // Local order matches the hex8 corner-sign table.
  return {node_index(i, j, k),         node_index(i + 1, j, k),
          node_index(i + 1, j + 1, k), node_index(i, j + 1, k),
          node_index(i, j, k + 1),     node_index(i + 1, j, k + 1),
          node_index(i + 1, j + 1, k + 1), node_index(i, j + 1, k + 1)};
}

std::uint64_t Subdomain::assemble() {
  std::uint64_t flops = 0;
  const Voigt6x6 c = elastic_matrix(cfg_.material);
  const ElementCoords coords = unit_cube_coords(cfg_.h);
  const ElementMatrix ke = Hex8::stiffness(coords, c, &flops);
  // All elements are geometrically identical on a structured grid, so one
  // element stiffness serves the whole mesh; count flops as if each
  // element were assembled (heterogeneous materials would require it).
  flops *= static_cast<std::uint64_t>(element_count());

  std::vector<std::map<int, double>> acc(
      static_cast<std::size_t>(dof_count()));
  for (int k = 0; k < cfg_.nz; ++k) {
    for (int j = 0; j < cfg_.ny; ++j) {
      for (int i = 0; i < cfg_.nx; ++i) {
        const auto nodes = element_nodes(i, j, k);
        for (int a = 0; a < 8; ++a) {
          for (int da = 0; da < 3; ++da) {
            const int row = 3 * nodes[static_cast<std::size_t>(a)] + da;
            auto& row_map = acc[static_cast<std::size_t>(row)];
            for (int b = 0; b < 8; ++b) {
              for (int db = 0; db < 3; ++db) {
                const int col = 3 * nodes[static_cast<std::size_t>(b)] + db;
                const double v =
                    ke[static_cast<std::size_t>(3 * a + da)]
                      [static_cast<std::size_t>(3 * b + db)];
                if (v != 0.0) row_map[col] += v;
              }
            }
          }
        }
      }
    }
  }
  rows_.assign(static_cast<std::size_t>(dof_count()), {});
  for (int r = 0; r < dof_count(); ++r) {
    auto& out = rows_[static_cast<std::size_t>(r)];
    out.reserve(acc[static_cast<std::size_t>(r)].size());
    for (const auto& [col, v] : acc[static_cast<std::size_t>(r)]) {
      out.emplace_back(col, v);
    }
  }
  to_csr();
  assembled_ = true;
  return flops;
}

void Subdomain::to_csr() {
  csr_.row_ptr.assign(static_cast<std::size_t>(dof_count()) + 1, 0);
  std::size_t nnz = 0;
  for (const auto& row : rows_) nnz += row.size();
  csr_.col.clear();
  csr_.val.clear();
  csr_.col.reserve(nnz);
  csr_.val.reserve(nnz);
  for (int r = 0; r < dof_count(); ++r) {
    for (const auto& [col, v] : rows_[static_cast<std::size_t>(r)]) {
      csr_.col.push_back(col);
      csr_.val.push_back(v);
    }
    csr_.row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<int>(csr_.col.size());
  }
}

std::vector<double> Subdomain::apply(const std::vector<double>& v) const {
  assert(assembled_);
  assert(static_cast<int>(v.size()) == dof_count());
  std::vector<double> out(v.size(), 0.0);
  for (int r = 0; r < dof_count(); ++r) {
    double acc = 0.0;
    for (int idx = csr_.row_ptr[static_cast<std::size_t>(r)];
         idx < csr_.row_ptr[static_cast<std::size_t>(r) + 1]; ++idx) {
      acc += csr_.val[static_cast<std::size_t>(idx)] *
             v[static_cast<std::size_t>(csr_.col[static_cast<std::size_t>(idx)])];
    }
    out[static_cast<std::size_t>(r)] = acc;
  }
  return out;
}

Subdomain::Solution Subdomain::solve_compression(double uz,
                                                 int max_iterations,
                                                 double tolerance) {
  assert(assembled_ && "call assemble() first");
  const int n = dof_count();

  // Dirichlet sets: z=0 face fully fixed, z=top face prescribed uz.
  std::vector<char> fixed(static_cast<std::size_t>(n), 0);
  std::vector<double> value(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j <= cfg_.ny; ++j) {
    for (int i = 0; i <= cfg_.nx; ++i) {
      const int bottom = node_index(i, j, 0);
      for (int d = 0; d < 3; ++d) {
        fixed[static_cast<std::size_t>(3 * bottom + d)] = 1;
      }
      const int top = node_index(i, j, cfg_.nz);
      fixed[static_cast<std::size_t>(3 * top + 2)] = 1;
      value[static_cast<std::size_t>(3 * top + 2)] = uz;
    }
  }

  // RHS: f = -K_cf * u_c on free dofs.
  std::vector<double> u(static_cast<std::size_t>(n), 0.0);
  for (int d = 0; d < n; ++d) {
    if (fixed[static_cast<std::size_t>(d)]) {
      u[static_cast<std::size_t>(d)] = value[static_cast<std::size_t>(d)];
    }
  }
  std::vector<double> ku = apply(u);
  std::vector<double> rhs(static_cast<std::size_t>(n), 0.0);
  for (int d = 0; d < n; ++d) {
    rhs[static_cast<std::size_t>(d)] =
        fixed[static_cast<std::size_t>(d)] ? 0.0
                                           : -ku[static_cast<std::size_t>(d)];
  }

  // CG on the free dofs (projected operator: zero fixed components).
  auto project = [&](std::vector<double>& v) {
    for (int d = 0; d < n; ++d) {
      if (fixed[static_cast<std::size_t>(d)]) {
        v[static_cast<std::size_t>(d)] = 0.0;
      }
    }
  };
  auto dot = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
  };

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> r = rhs;
  project(r);
  std::vector<double> p = r;
  double rr = dot(r, r);
  const double rr0 = rr > 0.0 ? rr : 1.0;
  Solution sol;
  int it = 0;
  for (; it < max_iterations && rr > tolerance * tolerance * rr0; ++it) {
    std::vector<double> ap = apply(p);
    project(ap);
    const double alpha = rr / dot(p, ap);
    for (int d = 0; d < n; ++d) {
      x[static_cast<std::size_t>(d)] += alpha * p[static_cast<std::size_t>(d)];
      r[static_cast<std::size_t>(d)] -= alpha * ap[static_cast<std::size_t>(d)];
    }
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (int d = 0; d < n; ++d) {
      p[static_cast<std::size_t>(d)] =
          r[static_cast<std::size_t>(d)] + beta * p[static_cast<std::size_t>(d)];
    }
  }
  for (int d = 0; d < n; ++d) {
    sol.u.push_back(fixed[static_cast<std::size_t>(d)]
                        ? value[static_cast<std::size_t>(d)]
                        : x[static_cast<std::size_t>(d)]);
  }
  sol.cg_iterations = it;
  sol.residual = std::sqrt(rr / rr0);
  return sol;
}

}  // namespace tlb::apps::micropp
