#include "apps/micropp/hex8.hpp"

#include <cassert>
#include <cmath>

namespace tlb::apps::micropp {

namespace {

/// Corner signs of the 8 nodes in the reference cube [-1,1]^3.
constexpr double kSign[8][3] = {
    {-1, -1, -1}, {1, -1, -1}, {1, 1, -1}, {-1, 1, -1},
    {-1, -1, 1},  {1, -1, 1},  {1, 1, 1},  {-1, 1, 1},
};

constexpr double kGp = 0.57735026918962576451;  // 1/sqrt(3)

struct GpGeometry {
  double dndx[8][3];  // shape-function derivatives w.r.t. x,y,z
  double detj;
};

/// Reference coordinates of Gauss point `gp` (2x2x2 tensor order).
void gauss_point(int gp, double xi[3]) {
  xi[0] = (gp & 1) ? kGp : -kGp;
  xi[1] = (gp & 2) ? kGp : -kGp;
  xi[2] = (gp & 4) ? kGp : -kGp;
}

GpGeometry geometry_at(const ElementCoords& coords, int gp,
                       std::uint64_t* flops) {
  double xi[3];
  gauss_point(gp, xi);

  // dN/dxi for each node.
  double dndxi[8][3];
  for (int n = 0; n < 8; ++n) {
    const double sx = kSign[n][0];
    const double sy = kSign[n][1];
    const double sz = kSign[n][2];
    dndxi[n][0] = 0.125 * sx * (1.0 + sy * xi[1]) * (1.0 + sz * xi[2]);
    dndxi[n][1] = 0.125 * sy * (1.0 + sx * xi[0]) * (1.0 + sz * xi[2]);
    dndxi[n][2] = 0.125 * sz * (1.0 + sx * xi[0]) * (1.0 + sy * xi[1]);
  }

  // Jacobian J[i][j] = d x_j / d xi_i.
  double j[3][3] = {};
  for (int n = 0; n < 8; ++n) {
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) {
        j[a][b] += dndxi[n][a] * coords[static_cast<std::size_t>(n)]
                                       [static_cast<std::size_t>(b)];
      }
    }
  }
  const double detj =
      j[0][0] * (j[1][1] * j[2][2] - j[1][2] * j[2][1]) -
      j[0][1] * (j[1][0] * j[2][2] - j[1][2] * j[2][0]) +
      j[0][2] * (j[1][0] * j[2][1] - j[1][1] * j[2][0]);
  assert(detj > 0.0 && "inverted element");
  const double inv = 1.0 / detj;
  double ji[3][3];
  ji[0][0] = inv * (j[1][1] * j[2][2] - j[1][2] * j[2][1]);
  ji[0][1] = inv * (j[0][2] * j[2][1] - j[0][1] * j[2][2]);
  ji[0][2] = inv * (j[0][1] * j[1][2] - j[0][2] * j[1][1]);
  ji[1][0] = inv * (j[1][2] * j[2][0] - j[1][0] * j[2][2]);
  ji[1][1] = inv * (j[0][0] * j[2][2] - j[0][2] * j[2][0]);
  ji[1][2] = inv * (j[0][2] * j[1][0] - j[0][0] * j[1][2]);
  ji[2][0] = inv * (j[1][0] * j[2][1] - j[1][1] * j[2][0]);
  ji[2][1] = inv * (j[0][1] * j[2][0] - j[0][0] * j[2][1]);
  ji[2][2] = inv * (j[0][0] * j[1][1] - j[0][1] * j[1][0]);

  GpGeometry out;
  out.detj = detj;
  for (int n = 0; n < 8; ++n) {
    for (int a = 0; a < 3; ++a) {
      out.dndx[n][a] = ji[a][0] * dndxi[n][0] + ji[a][1] * dndxi[n][1] +
                       ji[a][2] * dndxi[n][2];
    }
  }
  if (flops != nullptr) {
    *flops += 8 * 3 * 5       // dN/dxi
              + 8 * 9 * 2     // Jacobian accumulate
              + 14 + 9 * 5    // det + inverse
              + 8 * 3 * 5;    // dN/dx
  }
  return out;
}

/// B matrix row block for node n: fills columns 3n..3n+2 of the 6 strain
/// rows given dN/dx.
void strain_contrib(const GpGeometry& g, int n, double b[6][3]) {
  const double dx = g.dndx[n][0];
  const double dy = g.dndx[n][1];
  const double dz = g.dndx[n][2];
  // exx eyy ezz gxy gyz gzx (engineering shear)
  b[0][0] = dx; b[0][1] = 0;  b[0][2] = 0;
  b[1][0] = 0;  b[1][1] = dy; b[1][2] = 0;
  b[2][0] = 0;  b[2][1] = 0;  b[2][2] = dz;
  b[3][0] = dy; b[3][1] = dx; b[3][2] = 0;
  b[4][0] = 0;  b[4][1] = dz; b[4][2] = dy;
  b[5][0] = dz; b[5][1] = 0;  b[5][2] = dx;
}

}  // namespace

ElementCoords unit_cube_coords(double h) {
  ElementCoords c{};
  for (int n = 0; n < 8; ++n) {
    for (int a = 0; a < 3; ++a) {
      c[static_cast<std::size_t>(n)][static_cast<std::size_t>(a)] =
          0.5 * h * (1.0 + kSign[n][a]);
    }
  }
  return c;
}

ElementMatrix Hex8::stiffness(const ElementCoords& coords, const Voigt6x6& c,
                              std::uint64_t* flops) {
  ElementMatrix ke{};
  for (int gp = 0; gp < kGaussPoints; ++gp) {
    const GpGeometry g = geometry_at(coords, gp, flops);
    // CB[6][24] = C * B, exploiting B's 3-column node blocks.
    double cb[6][24] = {};
    for (int n = 0; n < 8; ++n) {
      double b[6][3];
      strain_contrib(g, n, b);
      for (int r = 0; r < 6; ++r) {
        for (int col = 0; col < 3; ++col) {
          double acc = 0.0;
          for (int k = 0; k < 6; ++k) {
            acc += c[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] *
                   b[k][col];
          }
          cb[r][3 * n + col] = acc;
        }
      }
    }
    // Ke += B^T * CB * detj.
    for (int n = 0; n < 8; ++n) {
      double b[6][3];
      strain_contrib(g, n, b);
      for (int row_c = 0; row_c < 3; ++row_c) {
        const int row = 3 * n + row_c;
        for (int col = 0; col < 24; ++col) {
          double acc = 0.0;
          for (int k = 0; k < 6; ++k) acc += b[k][row_c] * cb[k][col];
          ke[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] +=
              acc * g.detj;
        }
      }
    }
    if (flops != nullptr) {
      *flops += 8ull * 6 * 3 * 12  // C*B
                + 24ull * 24 * 14; // B^T * CB
    }
  }
  return ke;
}

Voigt6 Hex8::strain_at_gp(const ElementCoords& coords, int gp,
                          const ElementVector& displacement) {
  const GpGeometry g = geometry_at(coords, gp, nullptr);
  Voigt6 eps{};
  for (int n = 0; n < 8; ++n) {
    double b[6][3];
    strain_contrib(g, n, b);
    for (int r = 0; r < 6; ++r) {
      for (int col = 0; col < 3; ++col) {
        eps[static_cast<std::size_t>(r)] +=
            b[r][col] * displacement[static_cast<std::size_t>(3 * n + col)];
      }
    }
  }
  return eps;
}

int Hex8::internal_force(const ElementCoords& coords, const PlasticParams& mat,
                         const ElementVector& displacement,
                         std::array<double, 8>& alpha,
                         ElementVector& force_out, std::uint64_t* flops) {
  force_out.fill(0.0);
  int total_iters = 0;
  for (int gp = 0; gp < kGaussPoints; ++gp) {
    const GpGeometry g = geometry_at(coords, gp, flops);
    Voigt6 eps{};
    for (int n = 0; n < 8; ++n) {
      double b[6][3];
      strain_contrib(g, n, b);
      for (int r = 0; r < 6; ++r) {
        for (int col = 0; col < 3; ++col) {
          eps[static_cast<std::size_t>(r)] +=
              b[r][col] *
              displacement[static_cast<std::size_t>(3 * n + col)];
        }
      }
    }
    const PlasticResult pr =
        j2_return_map(mat, eps, alpha[static_cast<std::size_t>(gp)]);
    alpha[static_cast<std::size_t>(gp)] = pr.alpha;
    total_iters += pr.iterations;
    for (int n = 0; n < 8; ++n) {
      double b[6][3];
      strain_contrib(g, n, b);
      for (int col = 0; col < 3; ++col) {
        double acc = 0.0;
        for (int r = 0; r < 6; ++r) {
          acc += b[r][col] * pr.stress[static_cast<std::size_t>(r)];
        }
        force_out[static_cast<std::size_t>(3 * n + col)] += acc * g.detj;
      }
    }
    if (flops != nullptr) {
      *flops += 8ull * 6 * 6       // strain
                + 60                // return map (approx per call)
                + 8ull * 3 * 14;    // force gather
    }
  }
  return total_iters;
}

}  // namespace tlb::apps::micropp
