// 8-node hexahedral finite element (trilinear brick) with full 2x2x2 Gauss
// quadrature — the element kernel underlying the MicroPP workload's cost
// model. All operations count their floating-point work so the workload
// can derive task costs from the real kernel.
#pragma once

#include <array>
#include <cstdint>

#include "apps/micropp/material.hpp"

namespace tlb::apps::micropp {

/// 24x24 element stiffness matrix (3 dofs per node).
using ElementMatrix = std::array<std::array<double, 24>, 24>;
using ElementVector = std::array<double, 24>;
/// Node coordinates: 8 nodes x 3 coords.
using ElementCoords = std::array<std::array<double, 3>, 8>;

/// Reference coordinates of a unit cube element [0,h]^3.
ElementCoords unit_cube_coords(double h);

class Hex8 {
 public:
  /// Element stiffness Ke = sum_gp B^T C B |J| w for constant C.
  /// Accumulates the flop count into `flops` when non-null.
  static ElementMatrix stiffness(const ElementCoords& coords,
                                 const Voigt6x6& c,
                                 std::uint64_t* flops = nullptr);

  /// Internal force vector for a displacement field with a (possibly
  /// nonlinear) stress evaluated per Gauss point via `j2_return_map`.
  /// `alpha` holds per-Gauss-point accumulated plastic strain (size 8,
  /// updated in place). Returns total Gauss-point return-mapping
  /// iterations (the nonlinearity cost driver).
  static int internal_force(const ElementCoords& coords,
                            const PlasticParams& mat,
                            const ElementVector& displacement,
                            std::array<double, 8>& alpha,
                            ElementVector& force_out,
                            std::uint64_t* flops = nullptr);

  /// Strain (Voigt) at a Gauss point for the given displacement.
  static Voigt6 strain_at_gp(const ElementCoords& coords, int gp,
                             const ElementVector& displacement);

  /// Number of Gauss points (2x2x2).
  static constexpr int kGaussPoints = 8;
};

}  // namespace tlb::apps::micropp
