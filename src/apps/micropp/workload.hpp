// MicroPP workload: micro-scale solid mechanics with a linear/non-linear
// element mix (paper §6.2).
//
// Each apprank owns a subdomain of hexahedral elements split into blocks;
// one task integrates one block. Non-linear (plastic) elements require
// several Newton iterations, so blocks on "heavy" ranks — those with a
// high non-linear fraction — cost several times more than linear blocks.
// Task work is derived from the *measured* flop counts of the real hex8
// element kernels (hex8.hpp), divided by a nominal core flop rate.
#pragma once

#include <cstdint>
#include <vector>

#include "core/workload.hpp"
#include "sim/rng.hpp"

namespace tlb::apps::micropp {

struct MicroPPConfig {
  int appranks = 1;
  int iterations = 6;
  int elements_per_rank = 4096;
  int elements_per_task = 64;
  /// Fraction of appranks carrying a predominantly non-linear element mix
  /// (the composite's damaged region is not evenly partitioned).
  double heavy_rank_fraction = 0.125;
  double nonlinear_fraction_heavy = 0.8;
  double nonlinear_fraction_light = 0.05;
  int newton_iterations_min = 3;
  int newton_iterations_max = 6;
  double core_flops_rate = 5e9;  ///< nominal flop/s per core
  std::uint64_t bytes_per_element = 512;
  std::uint64_t seed = 11;
};

class MicroPPWorkload final : public core::Workload {
 public:
  explicit MicroPPWorkload(MicroPPConfig config);

  [[nodiscard]] int iteration_count() const override {
    return config_.iterations;
  }
  std::vector<core::TaskSpec> make_tasks(int apprank, int iteration) override;
  std::vector<nanos::AccessRegion> barrier_regions(int apprank,
                                                   int iteration) override;

  /// Measured flops of one linear element stiffness assembly.
  [[nodiscard]] std::uint64_t flops_linear_element() const {
    return flops_linear_;
  }
  /// Measured flops of one non-linear element Newton step (assembly +
  /// residual evaluation).
  [[nodiscard]] std::uint64_t flops_newton_step() const {
    return flops_newton_;
  }
  /// Non-linear element fraction of a rank.
  [[nodiscard]] double nonlinear_fraction(int apprank) const;
  /// Expected per-iteration load of each rank in core-seconds (for tests).
  [[nodiscard]] std::vector<double> expected_rank_loads() const;

 private:
  [[nodiscard]] int tasks_per_rank() const {
    return (config_.elements_per_rank + config_.elements_per_task - 1) /
           config_.elements_per_task;
  }

  MicroPPConfig config_;
  std::uint64_t flops_linear_ = 0;
  std::uint64_t flops_newton_ = 0;
  sim::Rng rng_;
};

}  // namespace tlb::apps::micropp
