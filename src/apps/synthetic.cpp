#include "apps/synthetic.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "metrics/imbalance.hpp"

namespace tlb::apps {

SyntheticWorkload::SyntheticWorkload(SyntheticConfig config)
    : config_(config), rng_(config.seed) {
  init();
}

void SyntheticWorkload::reseed(std::uint64_t seed) {
  config_.seed = seed;
  rng_ = sim::Rng(seed);
  init();
}

void SyntheticWorkload::init() {
  const int a = config_.appranks;
  const double base = config_.base_duration;
  const double imb = config_.imbalance;
  if (a < 1 || base <= 0.0) {
    throw std::invalid_argument("synthetic: bad appranks/base_duration");
  }
  if (imb < 1.0 || imb > static_cast<double>(a)) {
    // Eq. 2: 1 <= imbalance <= #appranks.
    throw std::invalid_argument("synthetic: imbalance out of [1, appranks]");
  }
  means_.assign(static_cast<std::size_t>(a), base);
  if (a == 1 || imb == 1.0) return;

  const double worst = base * imb;
  means_[static_cast<std::size_t>(config_.worst_rank)] = worst;
  // Remaining ranks: mean mu so the overall average is exactly `base`,
  // values uniform around mu within (0, worst), then recentred to the
  // exact mean ("uniformly distributed over the space of values
  // respecting the constraints", §6.2).
  const double mu = base * (a - imb) / (a - 1);
  assert(mu >= 0.0);
  std::vector<std::size_t> others;
  for (int r = 0; r < a; ++r) {
    if (r != config_.worst_rank) others.push_back(static_cast<std::size_t>(r));
  }
  std::vector<double> noise(others.size());
  double noise_mean = 0.0;
  for (double& v : noise) {
    v = rng_.uniform(-1.0, 1.0);
    noise_mean += v;
  }
  noise_mean /= static_cast<double>(noise.size());
  double spread = 0.0;
  for (double& v : noise) {
    v -= noise_mean;  // exact zero sum => exact mean mu below
    spread = std::max(spread, std::abs(v));
  }
  // Scale so every value stays strictly inside (0, worst).
  const double head = worst - mu;
  const double floor_gap = mu;
  const double scale =
      spread > 0.0 ? 0.9 * std::min(head, floor_gap) / spread : 0.0;
  for (std::size_t i = 0; i < others.size(); ++i) {
    means_[others[i]] = mu + scale * noise[i];
  }
  if (config_.least_rank >= 0 && config_.least_rank != config_.worst_rank) {
    // Swap the minimum onto the requested rank.
    std::size_t min_idx = others.front();
    for (std::size_t idx : others) {
      if (means_[idx] < means_[min_idx]) min_idx = idx;
    }
    std::swap(means_[static_cast<std::size_t>(config_.least_rank)],
              means_[min_idx]);
  }
}

double SyntheticWorkload::realized_imbalance() const {
  return metrics::imbalance(means_);
}

std::vector<core::TaskSpec> SyntheticWorkload::make_tasks(int apprank,
                                                          int iteration) {
  (void)iteration;
  std::vector<core::TaskSpec> specs;
  specs.reserve(static_cast<std::size_t>(config_.tasks_per_rank));
  double mean = means_.at(static_cast<std::size_t>(apprank));
  if (apprank == config_.slow_rank) mean *= config_.slow_factor;
  const double j = config_.duration_jitter;
  sim::Rng rng = rng_.fork(static_cast<std::uint64_t>(apprank) * 1000003 +
                           static_cast<std::uint64_t>(iteration));
  for (int i = 0; i < config_.tasks_per_rank; ++i) {
    core::TaskSpec spec;
    spec.work = mean * rng.uniform(1.0 - j, 1.0 + j);
    // Each task updates its own block; the same block across iterations
    // forms a RAW chain (ordered anyway by the iteration barrier).
    const std::uint64_t addr =
        static_cast<std::uint64_t>(i) * config_.bytes_per_task;
    spec.accesses.push_back(nanos::AccessRegion{
        addr, config_.bytes_per_task, nanos::AccessMode::InOut});
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace tlb::apps
