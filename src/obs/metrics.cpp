#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tlb::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.12g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "null");
  }
  return buf;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
    }
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::add(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (count_ == 1) return min_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::uint64_t in_bucket = buckets_[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) < target) {
      cum += in_bucket;
      continue;
    }
    // The target rank falls in bucket b: interpolate between its edges.
    // The overflow bucket (b == bounds_.size()) has no upper edge; its
    // observations are summarised by the observed max.
    const double lo = b == 0 ? min_ : bounds_[b - 1];
    const double hi = b < bounds_.size() ? bounds_[b] : max_;
    const double frac =
        (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
    const double v = lo + frac * (hi - lo);
    return std::clamp(v, min_, max_);
  }
  return max_;
}

Registry::Entry& Registry::lookup(const std::string& name, Kind kind) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    Entry& e = entries_[it->second];
    if (e.kind != kind) {
      throw std::invalid_argument("Registry: metric '" + name +
                                  "' already registered as a different kind");
    }
    return e;
  }
  Entry e;
  e.name = name;
  e.kind = kind;
  switch (kind) {
    case Kind::Counter:
      e.index = counters_.size();
      counters_.push_back(std::make_unique<Counter>());
      break;
    case Kind::Gauge:
      e.index = gauges_.size();
      gauges_.push_back(std::make_unique<Gauge>());
      break;
    case Kind::Histogram:
      e.index = histograms_.size();
      assert(!pending_bounds_.empty());
      histograms_.push_back(
          std::make_unique<Histogram>(std::move(pending_bounds_.back())));
      pending_bounds_.pop_back();
      break;
  }
  by_name_.emplace(name, entries_.size());
  entries_.push_back(std::move(e));
  return entries_.back();
}

Counter& Registry::counter(const std::string& name) {
  return *counters_[lookup(name, Kind::Counter).index];
}

Gauge& Registry::gauge(const std::string& name) {
  return *gauges_[lookup(name, Kind::Gauge).index];
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  if (by_name_.count(name) == 0) pending_bounds_.push_back(std::move(bounds));
  return *histograms_[lookup(name, Kind::Histogram).index];
}

const Counter* Registry::find_counter(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end() || entries_[it->second].kind != Kind::Counter) {
    return nullptr;
  }
  return counters_[entries_[it->second].index].get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end() || entries_[it->second].kind != Kind::Gauge) {
    return nullptr;
  }
  return gauges_[entries_[it->second].index].get();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end() || entries_[it->second].kind != Kind::Histogram) {
    return nullptr;
  }
  return histograms_[entries_[it->second].index].get();
}

std::vector<std::string> Registry::counter_names() const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (e.kind == Kind::Counter) out.push_back(e.name);
  }
  return out;
}

std::vector<std::string> Registry::gauge_names() const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (e.kind == Kind::Gauge) out.push_back(e.name);
  }
  return out;
}

std::vector<std::string> Registry::histogram_names() const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (e.kind == Kind::Histogram) out.push_back(e.name);
  }
  return out;
}

std::string Registry::to_json() const {
  std::string counters = "{";
  std::string gauges = "{";
  std::string histograms = "{";
  bool c1 = true, g1 = true, h1 = true;
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::Counter:
        if (!c1) counters += ", ";
        c1 = false;
        counters += quote(e.name) + ": " +
                    std::to_string(counters_[e.index]->value());
        break;
      case Kind::Gauge:
        if (!g1) gauges += ", ";
        g1 = false;
        gauges += quote(e.name) + ": " + fmt_double(gauges_[e.index]->value());
        break;
      case Kind::Histogram: {
        if (!h1) histograms += ", ";
        h1 = false;
        const Histogram& h = *histograms_[e.index];
        histograms += quote(e.name) + ": {\"count\": " +
                      std::to_string(h.count()) +
                      ", \"mean\": " + fmt_double(h.mean()) +
                      ", \"p50\": " + fmt_double(h.quantile(0.5)) +
                      ", \"p99\": " + fmt_double(h.quantile(0.99)) +
                      ", \"max\": " + fmt_double(h.max()) + "}";
        break;
      }
    }
  }
  return "{\"counters\": " + counters + "}, \"gauges\": " + gauges +
         "}, \"histograms\": " + histograms + "}}";
}

}  // namespace tlb::obs
