// Critical-path analysis over the span DAG (tlb::obs).
//
// The DAG's nodes are tasks; its edges are (a) data dependencies inside an
// iteration (nanos::Task::successors) and (b) the implicit barrier edge
// between iterations (a task created at an iteration start is ordered
// after every task completed before that instant). The critical path is
// the chain found by walking back from the last-completing task, at each
// step following the predecessor whose completion released the current
// task last (ties broken towards the lower task id, so the walk is
// deterministic).
//
// Each chain link's duration — from the predecessor's completion (or time
// zero) to the task's own completion — is split into:
//   compute:  the final attempt's busy execution window,
//   transfer: the final attempt's offload input-transfer window (clipped
//             to the link, i.e. prefetch overlapped with the predecessor
//             is not charged),
//   wait:     everything else (queueing, scheduling, control messages,
//             abandoned attempts).
// The three sums reconstruct the critical-path length exactly:
//   compute + transfer + wait == length.
#pragma once

#include <string>
#include <vector>

#include "nanos/task.hpp"
#include "obs/span.hpp"

namespace tlb::obs {

struct CriticalPath {
  double length = 0.0;    ///< completion time of the chain's last task
  double compute = 0.0;   ///< busy execution on the chain
  double transfer = 0.0;  ///< offload input transfers on the chain
  double wait = 0.0;      ///< everything else (length - compute - transfer)
  std::vector<nanos::TaskId> chain;  ///< first -> last task on the path
};

/// Computes the critical path of a completed run. `pool` supplies the
/// dependency edges, `spans` the observed lifecycle timestamps (requires
/// RuntimeConfig::obs.spans; an empty collector yields an empty path).
CriticalPath critical_path(const nanos::TaskPool& pool,
                           const SpanCollector& spans);

/// One-paragraph text rendering (length, breakdown percentages, chain
/// size).
std::string render_critical_path(const CriticalPath& cp);

}  // namespace tlb::obs
