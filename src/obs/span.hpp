// Per-task lifecycle spans (tlb::obs).
//
// Every task gets a lifecycle record: created -> ready -> scheduled
// (possibly steered or suppressed by the policy) -> offload-transfer
// start/end -> execute start/end -> done, plus retries/rescues after
// crashes or revoked leases. The runtime, scheduler and fabric emit these
// through the SpanSink interface; the default sink is null (span
// collection is off unless RuntimeConfig::obs.spans enables it).
//
// Determinism contract: sinks only *record*. They must not schedule
// simulator events, read RNGs, or otherwise feed back into the run; a run
// with span collection enabled is bit-identical (same schedule
// fingerprint, same event count) to one without.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nanos/task.hpp"
#include "sim/time.hpp"

namespace tlb::obs {

/// Scheduler verdicts relative to the locality baseline (tlb::sched).
enum class SchedVerdict { Baseline, Steered, Suppressed };

/// Receiver of task lifecycle events. All hooks are no-ops by default so
/// emitters pay one virtual call per event and nothing else.
class SpanSink {
 public:
  virtual ~SpanSink() = default;

  virtual void task_created(nanos::TaskId /*id*/, int /*apprank*/,
                            sim::SimTime /*t*/) {}
  virtual void task_ready(nanos::TaskId /*id*/, sim::SimTime /*t*/) {}
  /// `offloaded` = scheduled off the task's home node.
  virtual void task_scheduled(nanos::TaskId /*id*/, int /*worker*/,
                              int /*node*/, bool /*offloaded*/,
                              sim::SimTime /*t*/) {}
  virtual void sched_decision(nanos::TaskId /*id*/, SchedVerdict /*verdict*/,
                              int /*worker*/, sim::SimTime /*t*/) {}
  /// Eager input transfer towards the execution node began / delivered its
  /// last byte. `bytes` is the total payload across all source nodes.
  virtual void transfer_begin(nanos::TaskId /*id*/, std::uint64_t /*bytes*/,
                              int /*node*/, sim::SimTime /*t*/) {}
  virtual void transfer_end(nanos::TaskId /*id*/, sim::SimTime /*t*/) {}
  /// Compute began on a core (busy, not merely occupied) / released it.
  virtual void exec_begin(nanos::TaskId /*id*/, int /*worker*/, int /*node*/,
                          int /*core*/, sim::SimTime /*t*/) {}
  virtual void exec_end(nanos::TaskId /*id*/, sim::SimTime /*t*/) {}
  /// Completion observed at the home runtime (dependencies released).
  virtual void task_done(nanos::TaskId /*id*/, sim::SimTime /*t*/) {}
  /// The assignment to `worker` was voided (crash / lease revocation) and
  /// the task went back to the ready path.
  virtual void task_rescued(nanos::TaskId /*id*/, int /*worker*/,
                            sim::SimTime /*t*/) {}
  /// A fabric link crossed / cleared the congestion threshold.
  virtual void link_congestion(int /*link*/, const std::string& /*name*/,
                               bool /*congested*/, sim::SimTime /*t*/) {}
};

/// In-memory SpanSink: one TaskSpan per task (indexed by dense task id),
/// one attempt record per execution, plus the instant-event streams
/// (scheduler verdicts, congestion marks) the Chrome exporter renders as
/// instants.
class SpanCollector final : public SpanSink {
 public:
  /// One execution attempt of a task. Times are -1 until observed.
  struct Attempt {
    int worker = -1;
    int node = -1;
    int core = -1;
    sim::SimTime scheduled_at = -1.0;
    sim::SimTime transfer_start = -1.0;
    sim::SimTime transfer_end = -1.0;
    sim::SimTime exec_start = -1.0;
    sim::SimTime exec_end = -1.0;
    std::uint64_t transfer_bytes = 0;
    bool offloaded = false;  ///< scheduled off the task's home node
    bool rescued = false;    ///< voided by a crash / revoked lease
  };
  struct TaskSpan {
    nanos::TaskId id = nanos::kNoTask;
    int apprank = -1;
    sim::SimTime created_at = -1.0;
    sim::SimTime ready_at = -1.0;
    sim::SimTime done_at = -1.0;
    SchedVerdict verdict = SchedVerdict::Baseline;
    std::vector<Attempt> attempts;

    /// The attempt that ran to completion (the last one), or null.
    [[nodiscard]] const Attempt* final_attempt() const {
      return attempts.empty() ? nullptr : &attempts.back();
    }
  };
  struct InstantEvent {
    sim::SimTime t = 0.0;
    std::string name;
    int node = -1;  ///< -1 = cluster-scoped (congestion marks)
  };

  ~SpanCollector() override;

  void task_created(nanos::TaskId id, int apprank, sim::SimTime t) override;
  void task_ready(nanos::TaskId id, sim::SimTime t) override;
  void task_scheduled(nanos::TaskId id, int worker, int node, bool offloaded,
                      sim::SimTime t) override;
  void sched_decision(nanos::TaskId id, SchedVerdict verdict, int worker,
                      sim::SimTime t) override;
  void transfer_begin(nanos::TaskId id, std::uint64_t bytes, int node,
                      sim::SimTime t) override;
  void transfer_end(nanos::TaskId id, sim::SimTime t) override;
  void exec_begin(nanos::TaskId id, int worker, int node, int core,
                  sim::SimTime t) override;
  void exec_end(nanos::TaskId id, sim::SimTime t) override;
  void task_done(nanos::TaskId id, sim::SimTime t) override;
  void task_rescued(nanos::TaskId id, int worker, sim::SimTime t) override;
  void link_congestion(int link, const std::string& name, bool congested,
                       sim::SimTime t) override;

  [[nodiscard]] const std::vector<TaskSpan>& spans() const { return spans_; }
  [[nodiscard]] const TaskSpan& span(nanos::TaskId id) const {
    return spans_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] const std::vector<InstantEvent>& instants() const {
    return instants_;
  }

  // --- restore hooks (tlb::stream) ------------------------------------------
  // A stream::StreamReader rebuilds a collector-equivalent view from a
  // spill file so every exporter (chrome_trace, flame, critical_path)
  // works unchanged on streamed runs. Restored records bypass the live
  // event hooks: spans land at their dense id slot, instants keep their
  // original emission order, and the aggregates are installed verbatim
  // instead of being re-derived.

  /// Installs a fully-populated span at its dense id slot.
  void restore_span(TaskSpan span);
  /// Appends an instant event (call in original emission order).
  void restore_instant(InstantEvent event);
  /// Installs the run aggregates the live hooks would have accumulated.
  void restore_aggregates(double transfer_wait_core_s, std::uint64_t rescues) {
    transfer_wait_ = transfer_wait_core_s;
    rescues_ = rescues;
  }

  // Aggregates maintained as events arrive (consumed by obs::pop_report).
  /// Core-seconds spent occupied-but-not-busy waiting on input transfers
  /// (transfer_end - exec claim, approximated by transfer windows).
  [[nodiscard]] double transfer_wait_core_seconds() const {
    return transfer_wait_;
  }
  [[nodiscard]] std::uint64_t rescues() const { return rescues_; }

 private:
  TaskSpan& at(nanos::TaskId id);
  [[nodiscard]] Attempt& open_attempt(nanos::TaskId id);

  std::vector<TaskSpan> spans_;
  std::vector<InstantEvent> instants_;
  double transfer_wait_ = 0.0;
  std::uint64_t rescues_ = 0;
};

}  // namespace tlb::obs
