#include "obs/chrome_trace.hpp"

#include <algorithm>

namespace tlb::obs {

namespace {

std::int64_t to_us(sim::SimTime t) {
  return static_cast<std::int64_t>(t * 1e6 + 0.5);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  return out;
}

}  // namespace

std::vector<ChromeEvent> chrome_events(const SpanCollector& spans, int nodes,
                                       int appranks) {
  std::vector<ChromeEvent> meta;
  std::vector<ChromeEvent> events;

  for (int n = 0; n < nodes; ++n) {
    ChromeEvent pn;
    pn.name = "process_name";
    pn.ph = 'M';
    pn.pid = n;
    pn.tid = 0;
    pn.args = "{\"name\": \"node " + std::to_string(n) + "\"}";
    meta.push_back(std::move(pn));
    for (int a = 0; a < appranks; ++a) {
      ChromeEvent tn;
      tn.name = "thread_name";
      tn.ph = 'M';
      tn.pid = n;
      tn.tid = a;
      tn.args = "{\"name\": \"apprank " + std::to_string(a) + "\"}";
      meta.push_back(std::move(tn));
    }
  }

  for (const SpanCollector::TaskSpan& s : spans.spans()) {
    if (s.id == nanos::kNoTask) continue;
    for (const SpanCollector::Attempt& at : s.attempts) {
      const int pid = at.node >= 0 ? at.node : 0;
      const int tid = s.apprank >= 0 ? s.apprank : 0;
      if (at.transfer_start >= 0.0 && at.transfer_end >= 0.0) {
        ChromeEvent b;
        b.name = "transfer task " + std::to_string(s.id);
        b.ph = 'B';
        b.ts_us = to_us(at.transfer_start);
        b.pid = pid;
        b.tid = tid;
        b.args = "{\"task\": " + std::to_string(s.id) +
                 ", \"bytes\": " + std::to_string(at.transfer_bytes) + "}";
        ChromeEvent e;
        e.name = b.name;
        e.ph = 'E';
        e.ts_us = to_us(at.transfer_end);
        e.pid = pid;
        e.tid = tid;
        events.push_back(std::move(b));
        events.push_back(std::move(e));
      }
      if (at.exec_start >= 0.0 && at.exec_end >= 0.0) {
        ChromeEvent b;
        b.name = "task " + std::to_string(s.id);
        b.ph = 'B';
        b.ts_us = to_us(at.exec_start);
        b.pid = pid;
        b.tid = tid;
        b.args = "{\"task\": " + std::to_string(s.id) +
                 ", \"worker\": " + std::to_string(at.worker) +
                 ", \"core\": " + std::to_string(at.core) + "}";
        ChromeEvent e;
        e.name = b.name;
        e.ph = 'E';
        e.ts_us = to_us(at.exec_end);
        e.pid = pid;
        e.tid = tid;
        events.push_back(std::move(b));
        events.push_back(std::move(e));
      }
      if (at.rescued) {
        ChromeEvent i;
        i.name = "rescue task " + std::to_string(s.id);
        i.ph = 'i';
        // A rescued attempt ends at whatever progress point it reached.
        i.ts_us = to_us(std::max({at.scheduled_at, at.transfer_start,
                                  at.exec_start, 0.0}));
        i.pid = pid;
        i.tid = tid;
        events.push_back(std::move(i));
      }
    }
  }

  for (const SpanCollector::InstantEvent& ie : spans.instants()) {
    ChromeEvent i;
    i.name = ie.name;
    i.ph = 'i';
    i.ts_us = to_us(ie.t);
    i.pid = 0;
    i.tid = 0;
    events.push_back(std::move(i));
  }

  // Global timestamp order; the stable sort keeps each span's B before its
  // E when they share a timestamp (zero-length spans stay well-formed).
  std::stable_sort(events.begin(), events.end(),
                   [](const ChromeEvent& x, const ChromeEvent& y) {
                     return x.ts_us < y.ts_us;
                   });
  meta.insert(meta.end(), events.begin(), events.end());
  return meta;
}

std::string chrome_trace_json(const std::vector<ChromeEvent>& events) {
  std::string out = "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ChromeEvent& e = events[i];
    out += "{\"name\": \"" + json_escape(e.name) + "\", \"ph\": \"" + e.ph +
           "\", \"ts\": " + std::to_string(e.ts_us) +
           ", \"pid\": " + std::to_string(e.pid) +
           ", \"tid\": " + std::to_string(e.tid);
    out += ", \"cat\": \"tlb\"";
    if (e.ph == 'i') out += ", \"s\": \"g\"";
    if (!e.args.empty()) out += ", \"args\": " + e.args;
    out += "}";
    if (i + 1 < events.size()) out += ",";
    out += "\n";
  }
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string chrome_trace_json(const SpanCollector& spans, int nodes,
                              int appranks) {
  return chrome_trace_json(chrome_events(spans, nodes, appranks));
}

}  // namespace tlb::obs
