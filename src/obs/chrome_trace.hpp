// Chrome trace-event JSON export of task spans (tlb::obs).
//
// Renders a SpanCollector as the Chrome trace-event format that
// chrome://tracing and Perfetto (ui.perfetto.dev) load directly: one
// process per node, one thread (track) per (node, apprank) pair, duration
// events ("ph": "B"/"E") for the offload-transfer and execution phases of
// every attempt, and instant events for scheduler verdicts, rescues and
// congestion marks. Timestamps are microseconds of simulated time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace tlb::obs {

/// One trace event, pre-serialization. Exposed so tests can assert
/// structural invariants (monotone timestamps, B/E pairing) without
/// parsing JSON.
struct ChromeEvent {
  std::string name;
  char ph = 'i';           ///< B, E, i (instant), M (metadata)
  std::int64_t ts_us = 0;  ///< microseconds of simulated time
  int pid = 0;             ///< node
  int tid = 0;             ///< apprank
  std::string args;        ///< pre-rendered JSON object ("" = none)
};

/// The event list for a collected run: metadata first, then all span and
/// instant events in non-decreasing timestamp order. `nodes` and
/// `appranks` size the track naming.
std::vector<ChromeEvent> chrome_events(const SpanCollector& spans, int nodes,
                                       int appranks);

/// Serializes the event list as a Chrome trace JSON document
/// ({"traceEvents": [...], "displayTimeUnit": "ms"}).
std::string chrome_trace_json(const std::vector<ChromeEvent>& events);

/// Convenience: chrome_trace_json(chrome_events(...)).
std::string chrome_trace_json(const SpanCollector& spans, int nodes,
                              int appranks);

}  // namespace tlb::obs
