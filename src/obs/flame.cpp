#include "obs/flame.hpp"

#include <cmath>

#include "prof/prof.hpp"

namespace tlb::obs {

namespace {

/// Simulated seconds -> integer microseconds (round half up; negative
/// durations from unobserved boundaries are clamped out by the caller).
std::uint64_t to_us(double seconds) {
  return static_cast<std::uint64_t>(std::llround(seconds * 1e6));
}

void add(std::map<std::string, std::uint64_t>& out, const std::string& stack,
         double seconds) {
  if (seconds <= 0.0) return;
  const std::uint64_t us = to_us(seconds);
  if (us == 0) return;
  out[stack] += us;
}

}  // namespace

std::map<std::string, std::uint64_t> collapsed_stacks(
    const SpanCollector& spans) {
  PROF_SCOPE("obs.flame_export");
  std::map<std::string, std::uint64_t> out;
  for (const SpanCollector::TaskSpan& s : spans.spans()) {
    if (s.attempts.empty()) continue;
    const std::string base =
        "apprank" + std::to_string(s.apprank) + ";";
    double prev_end = s.ready_at;  // queue time starts at readiness
    for (std::size_t i = 0; i < s.attempts.size(); ++i) {
      const SpanCollector::Attempt& a = s.attempts[i];
      if (a.scheduled_at < 0.0 || a.node < 0) continue;
      const std::string stack = "node" + std::to_string(a.node) + ";" +
                                base + (a.offloaded ? "offload;" : "home;");
      if (prev_end >= 0.0) add(out, stack + "queue", a.scheduled_at - prev_end);
      if (a.rescued) {
        // The whole attempt was sunk: charge scheduled -> the next
        // attempt's scheduling (its rescue re-queued the task).
        const double next_sched = i + 1 < s.attempts.size()
                                      ? s.attempts[i + 1].scheduled_at
                                      : s.done_at;
        if (next_sched >= 0.0) {
          add(out, stack + "rescued", next_sched - a.scheduled_at);
        }
        prev_end = -1.0;  // queue time already charged to "rescued"
        continue;
      }
      const double work_start =
          a.transfer_start >= 0.0 ? a.transfer_start : a.exec_start;
      if (work_start >= 0.0) {
        add(out, stack + "dispatch", work_start - a.scheduled_at);
      }
      if (a.transfer_start >= 0.0 && a.transfer_end >= 0.0) {
        add(out, stack + "transfer", a.transfer_end - a.transfer_start);
      }
      if (a.exec_start >= 0.0 && a.exec_end >= 0.0) {
        add(out, stack + "exec", a.exec_end - a.exec_start);
      }
      prev_end = -1.0;
    }
  }
  return out;
}

std::string collapsed_stacks_text(const SpanCollector& spans) {
  std::string out;
  for (const auto& [stack, us] : collapsed_stacks(spans)) {
    out += stack;
    out += ' ';
    out += std::to_string(us);
    out += '\n';
  }
  return out;
}

}  // namespace tlb::obs
