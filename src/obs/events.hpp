// Structured event log (tlb::obs).
//
// A flat, append-only record of discrete control-plane happenings —
// elastic scale-out/in, circuit-breaker trips, config pushes — that the
// time-series metrics in obs::Registry cannot express: each entry keeps
// its simulated timestamp, a kind tag, and a free-form detail string.
// Benches serialize the log as JSON lines next to their metric reports so
// a regression in, say, node-seconds can be traced to the exact scaling
// decisions behind it.
#pragma once

#include <string>
#include <vector>

namespace tlb::obs {

struct Event {
  double time = 0.0;    ///< simulated seconds
  std::string kind;     ///< e.g. "scale_out", "breaker_trip", "xds_nack"
  std::string detail;   ///< free-form, human-readable
};

class EventLog {
 public:
  void record(double time, std::string kind, std::string detail);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t count(const std::string& kind) const;

  /// One JSON object per line: {"time":...,"kind":"...","detail":"..."}.
  [[nodiscard]] std::string to_jsonl() const;

 private:
  std::vector<Event> events_;
};

}  // namespace tlb::obs
