// POP-style efficiency report (tlb::obs), built on TALP busy accounting.
//
// The POP Centre of Excellence methodology — which the source paper's
// TALP module feeds in production — decomposes parallel efficiency into
// multiplicative factors. This report computes, per apprank and whole-run:
//
//   parallel efficiency  PE  = sum_busy / (total_cores * elapsed)
//                              (identical to TALP's aggregate efficiency)
//   load balance         LB  = avg_a(busy_a) / max_a(busy_a)
//   communication eff.  CommE = PE / LB
//                              (= max_a busy_a / (cores_a * elapsed) when
//                              every apprank measures against the same
//                              nominal core count)
//   transfer efficiency  TrE = 1 - transfer_wait / (total_cores * elapsed)
//                              (capacity lost to cores parked waiting on
//                              offload input transfers)
//
// Inputs come from dlb::TalpModule (busy core-seconds per worker) plus the
// span collector's transfer-wait integral; a worker's busy time is charged
// to its apprank, so an apprank's row aggregates its home rank and every
// helper executing on its behalf.
#pragma once

#include <string>
#include <vector>

#include "dlb/talp.hpp"

namespace tlb::obs {

/// One worker's contribution: apprank attribution + busy time.
struct PopWorkerInput {
  int worker = -1;
  int apprank = -1;
  double busy_core_seconds = 0.0;
};

struct PopApprankRow {
  int apprank = -1;
  double busy_core_seconds = 0.0;
  double nominal_cores = 0.0;
  double parallel_efficiency = 0.0;  ///< busy / (nominal_cores * elapsed)
};

struct PopReport {
  double elapsed = 0.0;
  double total_cores = 0.0;
  double parallel_efficiency = 0.0;
  double load_balance = 0.0;
  double communication_efficiency = 0.0;
  double transfer_efficiency = 0.0;
  std::vector<PopApprankRow> appranks;
};

/// Builds the report. `total_cores` is the cluster's core count; each
/// apprank measures against an equal share (total_cores / apprank_count),
/// mirroring the initial DROM division. `transfer_wait_core_seconds` is
/// the occupied-not-busy integral (0 when span collection was off).
PopReport pop_report(const std::vector<PopWorkerInput>& workers,
                     int apprank_count, double total_cores, double elapsed,
                     double transfer_wait_core_seconds);

/// Convenience: reads busy core-seconds for workers [0, worker_count) out
/// of a TalpModule, attributing each via `worker_apprank`.
PopReport pop_report(const dlb::TalpModule& talp,
                     const std::vector<int>& worker_apprank,
                     int apprank_count, double total_cores, double elapsed,
                     double transfer_wait_core_seconds);

/// Fixed-width text rendering in the style of dlb::talp_report.
std::string render_pop(const PopReport& report);

/// One per-iteration POP window: the efficiency factors of the slice of
/// the run between two consecutive global barriers (ObsConfig::
/// pop_windows). The whole-run report averages over iterations that may
/// behave very differently — e.g. before/after the first global solve —
/// while the windowed rows localize *when* efficiency was lost.
struct PopWindowRow {
  int epoch = 0;            ///< barrier epoch (0-based iteration index)
  double t_begin = 0.0;     ///< window start (previous barrier close)
  double t_end = 0.0;       ///< window end (this barrier close)
  double parallel_efficiency = 0.0;
  double load_balance = 0.0;
  double communication_efficiency = 0.0;
};

/// Fixed-width text rendering of the windowed rows, one line per epoch.
std::string render_pop_windows(const std::vector<PopWindowRow>& rows);

}  // namespace tlb::obs
