// Observability configuration (tlb::obs).
#pragma once

namespace tlb::obs {

struct ObsConfig {
  /// Collect per-task lifecycle spans (obs::SpanCollector) during the run.
  /// Off by default: span collection is pure recording — it never posts
  /// engine events, touches RNG streams, or feeds back into scheduling —
  /// so enabling it keeps schedules bit-identical, but it costs memory
  /// proportional to the task count.
  bool spans = false;
};

}  // namespace tlb::obs
