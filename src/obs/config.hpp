// Observability configuration (tlb::obs).
#pragma once

#include "stream/config.hpp"

namespace tlb::obs {

struct ObsConfig {
  /// Collect per-task lifecycle spans (obs::SpanCollector) during the run.
  /// Off by default: span collection is pure recording — it never posts
  /// engine events, touches RNG streams, or feeds back into scheduling —
  /// so enabling it keeps schedules bit-identical, but it costs memory
  /// proportional to the task count.
  bool spans = false;

  /// Capture a per-iteration POP window at every global barrier: the TALP
  /// busy-core deltas since the previous barrier become one PE/LB/CommE
  /// row keyed by barrier epoch (ClusterRuntime::pop_windows()). Pure
  /// recording like spans — off by default, bit-identical when on.
  bool pop_windows = false;

  /// Streaming span backend (tlb::stream): when stream.enabled the
  /// runtime records spans through a bounded-memory StreamSink that
  /// spills finished spans to stream.path instead of the in-memory
  /// collector (which this field supersedes — `spans` is implied). The
  /// default (disabled) keeps the in-memory collector semantics and is
  /// bit-identical either way; see stream/config.hpp.
  stream::StreamConfig stream;
};

}  // namespace tlb::obs
