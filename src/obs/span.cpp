#include "obs/span.hpp"

#include <algorithm>
#include <cassert>

#include "prof/prof.hpp"

namespace tlb::obs {

SpanCollector::~SpanCollector() {
  // Balance the obs.span charges (spans at dense-slot growth, attempts
  // and instants at push) so alive bytes return to zero at teardown.
  if (!prof::enabled()) return;
  std::size_t bytes = spans_.size() * sizeof(TaskSpan) +
                      instants_.size() * sizeof(InstantEvent);
  for (const auto& s : spans_) bytes += s.attempts.size() * sizeof(Attempt);
  if (bytes > 0) prof::free_note(prof::AllocTag::ObsSpan, bytes);
}

SpanCollector::TaskSpan& SpanCollector::at(nanos::TaskId id) {
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= spans_.size()) {
    prof::alloc_note(prof::AllocTag::ObsSpan,
                     (idx + 1 - spans_.size()) * sizeof(TaskSpan));
    spans_.resize(idx + 1);
  }
  return spans_[idx];
}

SpanCollector::Attempt& SpanCollector::open_attempt(nanos::TaskId id) {
  TaskSpan& s = at(id);
  assert(!s.attempts.empty() && "attempt events before task_scheduled");
  return s.attempts.back();
}

void SpanCollector::task_created(nanos::TaskId id, int apprank,
                                 sim::SimTime t) {
  TaskSpan& s = at(id);
  s.id = id;
  s.apprank = apprank;
  s.created_at = t;
}

void SpanCollector::task_ready(nanos::TaskId id, sim::SimTime t) {
  TaskSpan& s = at(id);
  // Only the first readiness counts as the lifecycle edge; a rescue that
  // re-queues the task keeps the original ready time (the re-queue itself
  // is recorded on the voided attempt).
  if (s.ready_at < 0.0) s.ready_at = t;
}

void SpanCollector::task_scheduled(nanos::TaskId id, int worker, int node,
                                   bool offloaded, sim::SimTime t) {
  TaskSpan& s = at(id);
  Attempt a;
  a.worker = worker;
  a.node = node;
  a.offloaded = offloaded;
  a.scheduled_at = t;
  prof::alloc_note(prof::AllocTag::ObsSpan, sizeof(Attempt));
  s.attempts.push_back(a);
}

void SpanCollector::sched_decision(nanos::TaskId id, SchedVerdict verdict,
                                   int worker, sim::SimTime t) {
  at(id).verdict = verdict;
  if (verdict == SchedVerdict::Baseline) return;
  InstantEvent e;
  e.t = t;
  e.node = worker;
  e.name = (verdict == SchedVerdict::Steered ? "sched steer task "
                                             : "sched suppress task ") +
           std::to_string(id);
  prof::alloc_note(prof::AllocTag::ObsSpan, sizeof(InstantEvent));
  instants_.push_back(std::move(e));
}

void SpanCollector::transfer_begin(nanos::TaskId id, std::uint64_t bytes,
                                   int node, sim::SimTime t) {
  Attempt& a = open_attempt(id);
  a.transfer_start = t;
  a.transfer_bytes = bytes;
  (void)node;
}

void SpanCollector::transfer_end(nanos::TaskId id, sim::SimTime t) {
  Attempt& a = open_attempt(id);
  a.transfer_end = t;
}

void SpanCollector::exec_begin(nanos::TaskId id, int worker, int node,
                               int core, sim::SimTime t) {
  Attempt& a = open_attempt(id);
  a.worker = worker;
  a.node = node;
  a.core = core;
  a.exec_start = t;
  // A transfer that completed before compute began stalled the pipeline
  // only up to exec_start; one still marked open was cancelled.
  if (a.transfer_start >= 0.0 && a.transfer_end >= 0.0) {
    transfer_wait_ +=
        std::max(0.0, std::min(a.transfer_end, t) - a.transfer_start);
  }
}

void SpanCollector::exec_end(nanos::TaskId id, sim::SimTime t) {
  open_attempt(id).exec_end = t;
}

void SpanCollector::task_done(nanos::TaskId id, sim::SimTime t) {
  at(id).done_at = t;
}

void SpanCollector::task_rescued(nanos::TaskId id, int worker,
                                 sim::SimTime t) {
  TaskSpan& s = at(id);
  if (!s.attempts.empty()) s.attempts.back().rescued = true;
  ++rescues_;
  InstantEvent e;
  e.t = t;
  e.node = worker;
  e.name = "rescue task " + std::to_string(id);
  prof::alloc_note(prof::AllocTag::ObsSpan, sizeof(InstantEvent));
  instants_.push_back(std::move(e));
}

void SpanCollector::restore_span(TaskSpan span) {
  const nanos::TaskId id = span.id;
  TaskSpan& slot = at(id);
  prof::free_note(prof::AllocTag::ObsSpan,
                  slot.attempts.size() * sizeof(Attempt));
  prof::alloc_note(prof::AllocTag::ObsSpan,
                   span.attempts.size() * sizeof(Attempt));
  slot = std::move(span);
}

void SpanCollector::restore_instant(InstantEvent event) {
  prof::alloc_note(prof::AllocTag::ObsSpan, sizeof(InstantEvent));
  instants_.push_back(std::move(event));
}

void SpanCollector::link_congestion(int link, const std::string& name,
                                    bool congested, sim::SimTime t) {
  (void)link;
  InstantEvent e;
  e.t = t;
  e.name = (congested ? "net congestion: " : "net cleared: ") + name;
  prof::alloc_note(prof::AllocTag::ObsSpan, sizeof(InstantEvent));
  instants_.push_back(std::move(e));
}

}  // namespace tlb::obs
