// Typed metrics registry (tlb::obs).
//
// One Registry per run holds every named metric the runtime, scheduler and
// fabric produce: monotone Counters, last-value Gauges, and fixed-bucket
// Histograms. It replaces the previous arrangement where each subsystem
// grew its own ad-hoc counter fields (RunResult, sched::SchedStats, the
// fabric's FCT vector) with no common naming or serialization: the runtime
// now increments registry-backed counters at the original call sites and
// RunResult is filled *from* the registry at the end of run() as a
// stable compatibility view.
//
// Determinism: metrics are pure bookkeeping — no simulator events, no RNG,
// no clock reads — so recording them can never perturb a run. Iteration
// order is insertion order (names are registered deterministically), so
// serialized output is byte-stable across runs and platforms.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tlb::obs {

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written scalar (makespan, efficiency, ...). Also usable as an
/// accumulator via add() for time integrals (e.g. transfer-wait seconds).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// finite buckets; one implicit overflow bucket catches everything above
/// the last bound. Bounds are validated strictly increasing at
/// construction. Tracks min/max/sum so quantiles can be clamped to the
/// observed range (the overflow bucket has no upper edge of its own).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void add(double v);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Quantile estimate for q in [0, 1] by linear interpolation inside the
  /// bucket where the cumulative count crosses q * count. Edge behaviour:
  /// 0 with no samples; the exact value with one sample; clamped to the
  /// observed [min, max] (so a saturated overflow bucket reports max, not
  /// infinity).
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name -> metric registry, one instance per run. Registering an existing
/// name returns the existing metric (so independent subsystems can share
/// a series by name); registering it as a different kind throws.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is only consulted when the histogram does not exist yet.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Metric names in registration order, per kind.
  [[nodiscard]] std::vector<std::string> counter_names() const;
  [[nodiscard]] std::vector<std::string> gauge_names() const;
  [[nodiscard]] std::vector<std::string> histogram_names() const;

  /// Serializes the whole registry as one JSON object:
  ///   {"counters": {name: n, ...}, "gauges": {...},
  ///    "histograms": {name: {"count": n, "mean": x, "p50": x, "p99": x,
  ///                          "max": x}, ...}}
  /// Keys appear in registration order; doubles use shortest round-trip
  /// formatting ("%.12g").
  [[nodiscard]] std::string to_json() const;

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::size_t index;  ///< into the per-kind vector
  };
  Entry& lookup(const std::string& name, Kind kind);

  std::vector<Entry> entries_;               ///< registration order
  std::map<std::string, std::size_t> by_name_;
  // Deques-by-unique_ptr so references stay stable across registration.
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::vector<std::vector<double>> pending_bounds_;  ///< ctor staging
};

}  // namespace tlb::obs
