#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tlb::obs {

namespace {

/// Completion time of a task in the span record; -1 when never completed.
double done_at(const SpanCollector& spans, nanos::TaskId id) {
  if (static_cast<std::size_t>(id) >= spans.spans().size()) return -1.0;
  return spans.span(id).done_at;
}

}  // namespace

CriticalPath critical_path(const nanos::TaskPool& pool,
                           const SpanCollector& spans) {
  CriticalPath cp;
  const std::size_t n = std::min(pool.size(), spans.spans().size());
  if (n == 0) return cp;

  // Dependency predecessors: for every task the predecessor whose
  // completion released it last. Successor edges point from lower to
  // higher ids (dependencies are registered at creation against earlier
  // tasks), so ascending iteration with strict improvement breaks ties
  // towards the lower predecessor id.
  std::vector<nanos::TaskId> pred(n, nanos::kNoTask);
  std::vector<double> pred_done(n, -1.0);
  for (std::size_t u = 0; u < n; ++u) {
    const double du = done_at(spans, static_cast<nanos::TaskId>(u));
    if (du < 0.0) continue;
    for (const nanos::TaskId v : pool.get(static_cast<nanos::TaskId>(u))
                                     .successors) {
      if (static_cast<std::size_t>(v) >= n) continue;
      if (du > pred_done[static_cast<std::size_t>(v)]) {
        pred_done[static_cast<std::size_t>(v)] = du;
        pred[static_cast<std::size_t>(v)] = static_cast<nanos::TaskId>(u);
      }
    }
  }

  // Chain tail: the globally last-completing task (ties -> lower id).
  nanos::TaskId tail = nanos::kNoTask;
  double tail_done = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = done_at(spans, static_cast<nanos::TaskId>(i));
    if (d > tail_done) {
      tail_done = d;
      tail = static_cast<nanos::TaskId>(i);
    }
  }
  if (tail == nanos::kNoTask) return cp;
  cp.length = tail_done;

  // Walk back; when a task has no dependency predecessor, follow the
  // barrier edge to the latest task completed before this one was created.
  std::vector<nanos::TaskId> chain;
  nanos::TaskId cur = tail;
  while (cur != nanos::kNoTask) {
    chain.push_back(cur);
    nanos::TaskId prev = pred[static_cast<std::size_t>(cur)];
    if (prev == nanos::kNoTask) {
      const double created = spans.span(cur).created_at;
      double best = -1.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d = done_at(spans, static_cast<nanos::TaskId>(i));
        if (d >= 0.0 && d <= created && d > best) {
          best = d;
          prev = static_cast<nanos::TaskId>(i);
        }
      }
    }
    cur = prev;
  }
  std::reverse(chain.begin(), chain.end());
  cp.chain = chain;

  // Split each link [anchor, done] into compute / transfer / wait.
  double anchor = 0.0;
  for (const nanos::TaskId id : chain) {
    const SpanCollector::TaskSpan& s = spans.span(id);
    const double done = s.done_at;
    double compute = 0.0;
    double transfer = 0.0;
    if (const SpanCollector::Attempt* at = s.final_attempt()) {
      if (at->exec_start >= 0.0 && at->exec_end >= 0.0) {
        compute = std::max(0.0, at->exec_end - std::max(at->exec_start,
                                                        anchor));
      }
      if (at->transfer_start >= 0.0 && at->transfer_end >= 0.0) {
        // Clip prefetch overlapped with the predecessor, and any overlap
        // with the compute window (transfers complete before compute
        // begins, so this is defensive).
        const double t0 = std::max(at->transfer_start, anchor);
        double t1 = std::min(at->transfer_end, done);
        if (at->exec_start >= 0.0) t1 = std::min(t1, at->exec_start);
        transfer = std::max(0.0, t1 - t0);
      }
    }
    const double total = std::max(0.0, done - anchor);
    compute = std::min(compute, total);
    transfer = std::min(transfer, total - compute);
    cp.compute += compute;
    cp.transfer += transfer;
    cp.wait += total - compute - transfer;
    anchor = done;
  }
  return cp;
}

std::string render_critical_path(const CriticalPath& cp) {
  std::ostringstream out;
  char buf[200];
  const double len = cp.length > 0.0 ? cp.length : 1.0;
  std::snprintf(buf, sizeof(buf),
                "Critical path: %.3f s over %zu tasks — compute %.3f s "
                "(%.1f%%), transfer %.3f s (%.1f%%), wait %.3f s (%.1f%%)\n",
                cp.length, cp.chain.size(), cp.compute,
                100.0 * cp.compute / len, cp.transfer,
                100.0 * cp.transfer / len, cp.wait, 100.0 * cp.wait / len);
  out << buf;
  return out.str();
}

}  // namespace tlb::obs
