#include "obs/events.hpp"

#include <cstdio>

namespace tlb::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void EventLog::record(double time, std::string kind, std::string detail) {
  events_.push_back(Event{time, std::move(kind), std::move(detail)});
}

std::size_t EventLog::count(const std::string& kind) const {
  std::size_t n = 0;
  for (const Event& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string EventLog::to_jsonl() const {
  std::string out;
  char head[64];
  for (const Event& e : events_) {
    std::snprintf(head, sizeof(head), "{\"time\":%.6f,\"kind\":\"", e.time);
    out += head;
    append_escaped(out, e.kind);
    out += "\",\"detail\":\"";
    append_escaped(out, e.detail);
    out += "\"}\n";
  }
  return out;
}

}  // namespace tlb::obs
