// Flame-graph export of task spans (tlb::obs).
//
// Renders a SpanCollector as collapsed-stack text, the line-oriented
// format Brendan Gregg's flamegraph.pl and speedscope.app consume
// directly: one "frame;frame;frame value" line per distinct stack, value
// aggregated across every task that contributed to it. Instead of call
// stacks the frames encode *where simulated time went*:
//
//   node<N>;apprank<A>;<placement>;<phase>  <microseconds>
//
//   placement:  "home" (ran in the apprank's own process) or "offload"
//               (ran on a helper rank)
//   phase:      "queue"     ready -> scheduled (victim selection + central
//                           queue time)
//               "dispatch"  scheduled -> transfer/exec start (offload
//                           control message, core claim)
//               "transfer"  eager input transfer in flight
//               "exec"      busy compute
//               "rescued"   time sunk into attempts voided by a crash or
//                           revoked lease (scheduled -> rescue)
//
// A wide "exec" flame over one node is load imbalance; wide "transfer"
// frames under "offload" are the interconnect bill; "rescued" frames are
// pure resilience overhead. Aggregation is deterministic: stacks are
// emitted in lexicographic order with integer microsecond values, so the
// same run always produces byte-identical text.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/span.hpp"

namespace tlb::obs {

/// Aggregates every task span into collapsed stacks. Keys are complete
/// stacks ("node0;apprank0;home;exec"), values are summed microseconds of
/// simulated time. Phases whose boundaries were never observed (e.g. a
/// task created but not finished at collection time) contribute nothing.
[[nodiscard]] std::map<std::string, std::uint64_t> collapsed_stacks(
    const SpanCollector& spans);

/// Serializes collapsed_stacks() as flamegraph.pl / speedscope input:
/// one "stack value" line per entry, lexicographic stack order, trailing
/// newline on every line.
[[nodiscard]] std::string collapsed_stacks_text(const SpanCollector& spans);

}  // namespace tlb::obs
