#include "obs/pop.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tlb::obs {

PopReport pop_report(const std::vector<PopWorkerInput>& workers,
                     int apprank_count, double total_cores, double elapsed,
                     double transfer_wait_core_seconds) {
  PopReport r;
  r.elapsed = elapsed;
  r.total_cores = total_cores;
  if (apprank_count <= 0 || total_cores <= 0.0 || elapsed <= 0.0) return r;

  std::vector<double> busy(static_cast<std::size_t>(apprank_count), 0.0);
  double total_busy = 0.0;
  for (const PopWorkerInput& w : workers) {
    if (w.apprank < 0 || w.apprank >= apprank_count) continue;
    busy[static_cast<std::size_t>(w.apprank)] += w.busy_core_seconds;
    total_busy += w.busy_core_seconds;
  }

  const double nominal = total_cores / apprank_count;
  double max_busy = 0.0;
  for (int a = 0; a < apprank_count; ++a) {
    PopApprankRow row;
    row.apprank = a;
    row.busy_core_seconds = busy[static_cast<std::size_t>(a)];
    row.nominal_cores = nominal;
    row.parallel_efficiency = row.busy_core_seconds / (nominal * elapsed);
    max_busy = std::max(max_busy, row.busy_core_seconds);
    r.appranks.push_back(row);
  }

  r.parallel_efficiency = total_busy / (total_cores * elapsed);
  const double avg_busy = total_busy / apprank_count;
  r.load_balance = max_busy > 0.0 ? avg_busy / max_busy : 1.0;
  r.communication_efficiency =
      r.load_balance > 0.0 ? r.parallel_efficiency / r.load_balance : 0.0;
  r.transfer_efficiency =
      1.0 - transfer_wait_core_seconds / (total_cores * elapsed);
  return r;
}

PopReport pop_report(const dlb::TalpModule& talp,
                     const std::vector<int>& worker_apprank,
                     int apprank_count, double total_cores, double elapsed,
                     double transfer_wait_core_seconds) {
  std::vector<PopWorkerInput> inputs;
  inputs.reserve(worker_apprank.size());
  for (std::size_t w = 0; w < worker_apprank.size(); ++w) {
    PopWorkerInput in;
    in.worker = static_cast<int>(w);
    in.apprank = worker_apprank[w];
    in.busy_core_seconds = talp.busy_core_seconds(static_cast<int>(w));
    inputs.push_back(in);
  }
  return pop_report(inputs, apprank_count, total_cores, elapsed,
                    transfer_wait_core_seconds);
}

std::string render_pop(const PopReport& r) {
  std::ostringstream out;
  char buf[160];
  out << "POP efficiency report (" << r.elapsed << " s elapsed, "
      << r.total_cores << " cores)\n";
  std::snprintf(buf, sizeof(buf), "%-24s %14s %12s %12s\n", "apprank",
                "busy [core-s]", "cores", "par. eff.");
  out << buf;
  for (const PopApprankRow& row : r.appranks) {
    std::snprintf(buf, sizeof(buf), "apprank %-16d %14.3f %12.2f %11.1f%%\n",
                  row.apprank, row.busy_core_seconds, row.nominal_cores,
                  100.0 * row.parallel_efficiency);
    out << buf;
  }
  std::snprintf(buf, sizeof(buf), "%-24s %13.1f%%\n", "parallel efficiency",
                100.0 * r.parallel_efficiency);
  out << buf;
  std::snprintf(buf, sizeof(buf), "%-24s %13.1f%%\n", "load balance",
                100.0 * r.load_balance);
  out << buf;
  std::snprintf(buf, sizeof(buf), "%-24s %13.1f%%\n", "communication eff.",
                100.0 * r.communication_efficiency);
  out << buf;
  std::snprintf(buf, sizeof(buf), "%-24s %13.1f%%\n", "transfer efficiency",
                100.0 * r.transfer_efficiency);
  out << buf;
  return out.str();
}

std::string render_pop_windows(const std::vector<PopWindowRow>& rows) {
  std::ostringstream out;
  char buf[160];
  out << "POP per-iteration windows (" << rows.size() << " barrier epochs)\n";
  std::snprintf(buf, sizeof(buf), "%-8s %10s %10s %10s %10s %10s\n", "epoch",
                "begin [s]", "end [s]", "PE", "LB", "CommE");
  out << buf;
  for (const PopWindowRow& row : rows) {
    std::snprintf(buf, sizeof(buf), "%-8d %10.3f %10.3f %9.1f%% %9.1f%% %9.1f%%\n",
                  row.epoch, row.t_begin, row.t_end,
                  100.0 * row.parallel_efficiency, 100.0 * row.load_balance,
                  100.0 * row.communication_efficiency);
    out << buf;
  }
  return out.str();
}

}  // namespace tlb::obs
