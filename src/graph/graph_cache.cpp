#include "graph/graph_cache.hpp"

#include <fstream>
#include <sstream>

namespace tlb::graph {

GraphCache::GraphCache(std::filesystem::path directory)
    : dir_(std::move(directory)) {
  std::filesystem::create_directories(dir_);
}

std::string GraphCache::key(const ExpanderParams& p) {
  std::ostringstream key;
  key << "expander_n" << p.nodes << "_r" << p.appranks_per_node << "_d"
      << p.degree << "_s" << p.seed;
  return key.str();
}

std::filesystem::path GraphCache::path_for(const ExpanderParams& p) const {
  return dir_ / (key(p) + ".tlbgraph");
}

std::optional<BipartiteGraph> GraphCache::load(
    const ExpanderParams& p) const {
  std::ifstream in(path_for(p));
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = parse(text.str());
  if (!parsed) return std::nullopt;
  // Sanity: shape must match the requested parameters (a stale or
  // corrupted entry must not be served).
  if (parsed->left_count() != p.nodes * p.appranks_per_node ||
      parsed->right_count() != p.nodes ||
      !parsed->is_biregular(p.degree, p.appranks_per_node * p.degree)) {
    return std::nullopt;
  }
  return parsed;
}

ExpanderResult GraphCache::load_or_build(const ExpanderParams& p) {
  if (auto cached = load(p)) {
    ExpanderResult result;
    result.graph = std::move(*cached);
    result.expansion = vertex_expansion(result.graph);
    result.attempts = 0;  // served from cache
    return result;
  }
  ExpanderResult fresh = build_expander(p);
  std::ofstream out(path_for(p));
  out << serialize(fresh.graph);
  return fresh;
}

std::size_t GraphCache::size() const {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".tlbgraph") ++n;
  }
  return n;
}

}  // namespace tlb::graph
