// Persistent expander-graph cache (paper §5.2: "Each graph is stored for
// future executions so that it is only created once").
//
// Graphs are keyed by their construction parameters and stored as the
// text serialisation in a cache directory. load_or_build() returns the
// cached graph when present and valid, otherwise builds, stores, and
// returns it.
#pragma once

#include <filesystem>
#include <optional>
#include <string>

#include "graph/expander.hpp"

namespace tlb::graph {

class GraphCache {
 public:
  /// Uses (and creates if needed) `directory` for cached graphs.
  explicit GraphCache(std::filesystem::path directory);

  /// Deterministic cache key for a parameter set.
  [[nodiscard]] static std::string key(const ExpanderParams& params);

  /// Cached graph for these parameters, if present and parseable.
  [[nodiscard]] std::optional<BipartiteGraph> load(
      const ExpanderParams& params) const;

  /// Returns the cached graph or builds + stores a fresh one.
  ExpanderResult load_or_build(const ExpanderParams& params);

  /// Number of cached graph files.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const std::filesystem::path& directory() const {
    return dir_;
  }

 private:
  [[nodiscard]] std::filesystem::path path_for(
      const ExpanderParams& params) const;

  std::filesystem::path dir_;
};

}  // namespace tlb::graph
