// Bipartite graph of appranks (left partition) and nodes (right partition).
//
// An edge (a, n) means apprank a may execute tasks on node n: the edge for
// a's home node corresponds to the apprank process itself, every other edge
// corresponds to a helper rank placed on that node (paper §5.2, Fig 4(d)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tlb::graph {

class BipartiteGraph {
 public:
  BipartiteGraph() = default;
  BipartiteGraph(int left_count, int right_count);

  [[nodiscard]] int left_count() const { return static_cast<int>(adj_left_.size()); }
  [[nodiscard]] int right_count() const { return static_cast<int>(adj_right_.size()); }
  [[nodiscard]] int edge_count() const { return edges_; }

  /// Adds an edge; returns false (and does nothing) if it already exists.
  bool add_edge(int left, int right);

  /// Grows the right partition by one vertex (an elastic node joining
  /// mid-run); returns its index. Edges are added separately.
  int add_right_vertex();
  [[nodiscard]] bool has_edge(int left, int right) const;

  /// Neighbours of a left vertex, in insertion order (home node first, by
  /// construction in ExpanderBuilder).
  [[nodiscard]] const std::vector<int>& neighbors_of_left(int left) const {
    return adj_left_.at(static_cast<std::size_t>(left));
  }
  [[nodiscard]] const std::vector<int>& neighbors_of_right(int right) const {
    return adj_right_.at(static_cast<std::size_t>(right));
  }

  [[nodiscard]] int left_degree(int left) const {
    return static_cast<int>(neighbors_of_left(left).size());
  }
  [[nodiscard]] int right_degree(int right) const {
    return static_cast<int>(neighbors_of_right(right).size());
  }

  /// True when every left vertex has degree dl and every right vertex has
  /// degree dr (bipartite biregular, paper §5.2).
  [[nodiscard]] bool is_biregular(int dl, int dr) const;

  /// True when the graph (viewed as undirected over both partitions) is
  /// connected. A degree-1 graph with several nodes is not connected.
  [[nodiscard]] bool is_connected() const;

  /// |N(A)|: number of distinct right vertices adjacent to any left vertex
  /// in `subset`.
  [[nodiscard]] int neighborhood_size(std::span<const int> subset) const;

 private:
  std::vector<std::vector<int>> adj_left_;
  std::vector<std::vector<int>> adj_right_;
  int edges_ = 0;
};

}  // namespace tlb::graph
