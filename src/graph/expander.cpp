#include "graph/expander.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tlb::graph {

namespace {

/// Exact vertex expansion by subset enumeration; requires left <= 20 and
/// right <= 64 so subsets fit in machine words.
double exact_expansion(const BipartiteGraph& g) {
  const int l = g.left_count();
  assert(l <= 20 && g.right_count() <= 64);
  const int half = l / 2;
  if (half == 0) return static_cast<double>(g.right_count());

  std::vector<std::uint64_t> mask(static_cast<std::size_t>(l), 0);
  for (int a = 0; a < l; ++a) {
    for (int n : g.neighbors_of_left(a)) {
      mask[static_cast<std::size_t>(a)] |= (std::uint64_t{1} << n);
    }
  }
  // neigh[s] = bitmask of N(S) for subset bitmask s, built by lowbit
  // recurrence. 2^20 * 8B = 8 MiB worst case.
  const std::size_t total = std::size_t{1} << l;
  std::vector<std::uint64_t> neigh(total, 0);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t s = 1; s < total; ++s) {
    const int low = std::countr_zero(s);
    neigh[s] = neigh[s & (s - 1)] | mask[static_cast<std::size_t>(low)];
    const int size = std::popcount(s);
    if (size > half) continue;
    const double ratio =
        static_cast<double>(std::popcount(neigh[s])) / size;
    best = std::min(best, ratio);
  }
  return best;
}

/// Sampled upper bound on the vertex expansion: greedy growth from random
/// seeds, keeping the worst (smallest) |N(A)|/|A| encountered.
double sampled_expansion(const BipartiteGraph& g, int samples,
                         std::uint64_t seed) {
  const int l = g.left_count();
  const int r = g.right_count();
  const int half = l / 2;
  if (half == 0) return static_cast<double>(r);

  sim::Rng rng(seed);
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> touch(static_cast<std::size_t>(r), 0);
  std::vector<char> in_set(static_cast<std::size_t>(l), 0);

  for (int s = 0; s < samples; ++s) {
    std::fill(touch.begin(), touch.end(), 0);
    std::fill(in_set.begin(), in_set.end(), 0);
    int set_size = 0;
    int nb_size = 0;
    // Grow greedily: each step add the apprank contributing the fewest new
    // nodes; record the ratio at every size up to half.
    int current = static_cast<int>(rng.uniform_int(0, l - 1));
    while (set_size < half) {
      in_set[static_cast<std::size_t>(current)] = 1;
      ++set_size;
      for (int n : g.neighbors_of_left(current)) {
        if (touch[static_cast<std::size_t>(n)]++ == 0) ++nb_size;
      }
      best = std::min(best, static_cast<double>(nb_size) / set_size);
      // Pick the next apprank with minimal marginal neighbourhood growth.
      int best_next = -1;
      int best_gain = std::numeric_limits<int>::max();
      for (int a = 0; a < l; ++a) {
        if (in_set[static_cast<std::size_t>(a)]) continue;
        int gain = 0;
        for (int n : g.neighbors_of_left(a)) {
          if (touch[static_cast<std::size_t>(n)] == 0) ++gain;
        }
        if (gain < best_gain) {
          best_gain = gain;
          best_next = a;
        }
      }
      if (best_next < 0) break;
      current = best_next;
    }
  }
  return best;
}

/// Deterministic circulant construction for small graphs: apprank a gets
/// extra edges to nodes (home(a) + j) mod N for j = 1..degree-1. Exactly
/// biregular and connected for degree >= 2.
BipartiteGraph build_circulant(int nodes, int per_node, int degree) {
  const int appranks = nodes * per_node;
  BipartiteGraph g(appranks, nodes);
  for (int a = 0; a < appranks; ++a) {
    const int home = home_node(a, per_node);
    g.add_edge(a, home);
    for (int j = 1; j < degree; ++j) {
      g.add_edge(a, (home + j) % nodes);
    }
  }
  return g;
}

/// Random biregular graph with forced home edges, via configuration-model
/// slot assignment plus conflict repair. Returns nullopt when repair fails.
std::optional<BipartiteGraph> build_random(int nodes, int per_node,
                                           int degree, sim::Rng& rng) {
  const int appranks = nodes * per_node;
  const int extras = degree - 1;
  // Slot multiset: each node offers per_node * extras helper slots.
  std::vector<int> slots;
  slots.reserve(static_cast<std::size_t>(nodes * per_node * extras));
  for (int n = 0; n < nodes; ++n) {
    for (int k = 0; k < per_node * extras; ++k) slots.push_back(n);
  }
  rng.shuffle(slots);

  auto slot_of = [&](int a, int j) -> int& {
    return slots[static_cast<std::size_t>(a * extras + j)];
  };
  auto valid_for = [&](int a, int candidate, int skip_j) {
    if (candidate == home_node(a, per_node)) return false;
    for (int j = 0; j < extras; ++j) {
      if (j != skip_j && slot_of(a, j) == candidate) return false;
    }
    return true;
  };

  // Repair pass: fix apprank-local conflicts (home node or duplicate) by
  // swapping with a random slot elsewhere that keeps both sides valid.
  const int max_swaps = 50 * appranks * std::max(extras, 1);
  int swaps = 0;
  for (int a = 0; a < appranks; ++a) {
    for (int j = 0; j < extras; ++j) {
      while (!valid_for(a, slot_of(a, j), j)) {
        if (++swaps > max_swaps) return std::nullopt;
        const int b = static_cast<int>(rng.uniform_int(0, appranks - 1));
        const int k = static_cast<int>(rng.uniform_int(0, std::max(extras - 1, 0)));
        if (b == a) continue;
        const int va = slot_of(a, j);
        const int vb = slot_of(b, k);
        if (valid_for(a, vb, j) && valid_for(b, va, k)) {
          std::swap(slot_of(a, j), slot_of(b, k));
        }
      }
    }
  }

  BipartiteGraph g(appranks, nodes);
  for (int a = 0; a < appranks; ++a) {
    g.add_edge(a, home_node(a, per_node));
    for (int j = 0; j < extras; ++j) g.add_edge(a, slot_of(a, j));
  }
  return g;
}

}  // namespace

double vertex_expansion(const BipartiteGraph& g, int exact_limit, int samples,
                        std::uint64_t seed) {
  if (g.left_count() == 0) return 0.0;
  if (g.left_count() <= exact_limit && g.right_count() <= 64) {
    return exact_expansion(g);
  }
  return sampled_expansion(g, samples, seed);
}

ExpanderResult build_expander(const ExpanderParams& p) {
  if (p.nodes <= 0 || p.appranks_per_node <= 0) {
    throw std::invalid_argument("expander: nodes and appranks_per_node must be positive");
  }
  if (p.degree < 1 || p.degree > p.nodes) {
    throw std::invalid_argument("expander: degree must be in [1, nodes]");
  }

  ExpanderResult result;
  if (p.degree == 1) {
    // Degenerate baseline: home edges only, no helpers.
    BipartiteGraph g(p.nodes * p.appranks_per_node, p.nodes);
    for (int a = 0; a < g.left_count(); ++a) {
      g.add_edge(a, home_node(a, p.appranks_per_node));
    }
    result.graph = std::move(g);
    result.expansion = vertex_expansion(result.graph);
    result.attempts = 1;
    return result;
  }

  // Small graphs: deterministic circulant ("heuristic-based search or
  // known-optimal solution", paper §5.2).
  if (p.nodes <= 8) {
    result.graph = build_circulant(p.nodes, p.appranks_per_node, p.degree);
    result.expansion = vertex_expansion(result.graph);
    result.attempts = 1;
    return result;
  }

  sim::Rng rng(p.seed);
  double best_expansion = -1.0;
  BipartiteGraph best_graph;
  const bool screen = p.nodes <= p.screen_limit;
  const double threshold = p.min_expansion / p.appranks_per_node;
  for (int attempt = 0; attempt < p.max_attempts; ++attempt) {
    ++result.attempts;
    auto g = build_random(p.nodes, p.appranks_per_node, p.degree, rng);
    if (!g || !g->is_connected()) continue;
    const double ex =
        screen ? vertex_expansion(*g) : vertex_expansion(*g, 0, 200, p.seed);
    if (ex > best_expansion) {
      best_expansion = ex;
      best_graph = std::move(*g);
    }
    if (!screen || best_expansion >= threshold) break;
  }
  if (best_expansion < 0.0) {
    throw std::runtime_error("expander: failed to generate a connected biregular graph");
  }
  result.graph = std::move(best_graph);
  result.expansion = best_expansion;
  return result;
}

std::string serialize(const BipartiteGraph& g) {
  std::ostringstream out;
  out << "tlbgraph 1\n"
      << g.left_count() << ' ' << g.right_count() << '\n';
  for (int a = 0; a < g.left_count(); ++a) {
    const auto& nb = g.neighbors_of_left(a);
    out << nb.size();
    for (int n : nb) out << ' ' << n;
    out << '\n';
  }
  return out.str();
}

std::optional<BipartiteGraph> parse(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "tlbgraph" || version != 1) {
    return std::nullopt;
  }
  int l = 0;
  int r = 0;
  if (!(in >> l >> r) || l < 0 || r < 0) return std::nullopt;
  BipartiteGraph g(l, r);
  for (int a = 0; a < l; ++a) {
    int deg = 0;
    if (!(in >> deg) || deg < 0 || deg > r) return std::nullopt;
    for (int j = 0; j < deg; ++j) {
      int n = 0;
      if (!(in >> n) || n < 0 || n >= r) return std::nullopt;
      if (!g.add_edge(a, n)) return std::nullopt;  // duplicate edge
    }
  }
  return g;
}

int pick_replacement_node(const BipartiteGraph& g, int apprank,
                          const std::vector<int>& spare) {
  int best = -1;
  int best_spare = 0;
  for (int n = 0; n < g.right_count(); ++n) {
    if (g.has_edge(apprank, n)) continue;
    const int s = spare[static_cast<std::size_t>(n)];
    if (s > best_spare) {
      best = n;
      best_spare = s;
    }
  }
  return best;
}

}  // namespace tlb::graph
