// Construction and screening of bipartite biregular expander graphs.
//
// Paper §5.2: each apprank offloads to a small fixed set of nodes chosen
// before execution. The apprank/node incidence forms a bipartite biregular
// graph: every apprank has degree `offloading_degree` (its home node plus
// degree-1 helpers) and every node has degree appranks_per_node * degree.
// Large graphs are generated randomly (random biregular graphs are
// expanders with high probability); graphs up to ~32 nodes are additionally
// screened via the vertex isoperimetric number, and small graphs use a
// deterministic circulant construction known to be well-connected.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "graph/bipartite_graph.hpp"
#include "sim/rng.hpp"

namespace tlb::graph {

/// Vertex expansion of the left partition: the minimum over non-empty
/// subsets A with |A| <= floor(left/2) of |N(A)| / |A| (the paper's minimal
/// 1+epsilon). Exact by subset enumeration when left_count <= exact_limit;
/// otherwise a sampled upper bound using `samples` random subsets refined
/// by greedy local descent.
double vertex_expansion(const BipartiteGraph& g, int exact_limit = 20,
                        int samples = 2000, std::uint64_t seed = 1);

/// Parameters for expander construction.
struct ExpanderParams {
  int nodes = 0;               ///< number of compute nodes (right partition)
  int appranks_per_node = 1;   ///< appranks with home on each node
  int degree = 1;              ///< offloading degree (>= 1); 1 = no offload
  std::uint64_t seed = 42;     ///< generation seed (graphs are deterministic)
  int max_attempts = 64;       ///< regenerations before keeping the best
  /// Screening threshold on the *normalised* expansion: the graph is
  /// accepted when vertex_expansion >= min_expansion / appranks_per_node.
  /// (With p appranks per node, any subset of size |A| = nodes can see at
  /// most `nodes` nodes, so the raw ratio is structurally capped at
  /// ~1/p x |A|-independent bound; home edges guarantee >= 1/p.)
  double min_expansion = 1.0;
  int screen_limit = 32;       ///< paper: screen graphs up to ~32 nodes
};

/// Result of construction: the graph plus its measured quality.
struct ExpanderResult {
  BipartiteGraph graph;
  double expansion = 0.0;  ///< vertex_expansion() of the final graph
  int attempts = 0;        ///< how many candidate graphs were generated
};

/// Builds a bipartite biregular offloading graph. The first neighbour of
/// every apprank is its home node (apprank a lives on node a /
/// appranks_per_node). Throws std::invalid_argument on impossible
/// parameters (e.g. degree > nodes).
ExpanderResult build_expander(const ExpanderParams& params);

/// Home node of an apprank under the canonical block placement.
constexpr int home_node(int apprank, int appranks_per_node) {
  return apprank / appranks_per_node;
}

/// Picks a node for a replacement helper edge when a crash disconnects
/// `apprank` from all of its helpers (tlb::resil expander rewire).
/// Candidates are nodes not already adjacent to the apprank with spare
/// worker capacity (`spare[n]` = cores minus resident workers, > 0); the
/// node with the most spare capacity wins, lowest id on ties, so the
/// choice is deterministic. Returns -1 when no node qualifies.
int pick_replacement_node(const BipartiteGraph& g, int apprank,
                          const std::vector<int>& spare);

/// Serialises a graph to a compact text form ("stored for future
/// executions", paper §5.2) and parses it back. parse returns std::nullopt
/// on malformed input.
std::string serialize(const BipartiteGraph& g);
std::optional<BipartiteGraph> parse(const std::string& text);

}  // namespace tlb::graph
