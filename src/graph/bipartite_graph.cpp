#include "graph/bipartite_graph.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace tlb::graph {

BipartiteGraph::BipartiteGraph(int left_count, int right_count)
    : adj_left_(static_cast<std::size_t>(left_count)),
      adj_right_(static_cast<std::size_t>(right_count)) {
  assert(left_count >= 0 && right_count >= 0);
}

bool BipartiteGraph::add_edge(int left, int right) {
  assert(left >= 0 && left < left_count());
  assert(right >= 0 && right < right_count());
  if (has_edge(left, right)) return false;
  adj_left_[static_cast<std::size_t>(left)].push_back(right);
  adj_right_[static_cast<std::size_t>(right)].push_back(left);
  ++edges_;
  return true;
}

int BipartiteGraph::add_right_vertex() {
  adj_right_.emplace_back();
  return right_count() - 1;
}

bool BipartiteGraph::has_edge(int left, int right) const {
  const auto& nb = adj_left_.at(static_cast<std::size_t>(left));
  return std::find(nb.begin(), nb.end(), right) != nb.end();
}

bool BipartiteGraph::is_biregular(int dl, int dr) const {
  for (const auto& nb : adj_left_) {
    if (static_cast<int>(nb.size()) != dl) return false;
  }
  for (const auto& nb : adj_right_) {
    if (static_cast<int>(nb.size()) != dr) return false;
  }
  return true;
}

bool BipartiteGraph::is_connected() const {
  const int l = left_count();
  const int r = right_count();
  if (l + r == 0) return true;
  // BFS over the union of both partitions; right vertices offset by l.
  std::vector<char> seen(static_cast<std::size_t>(l + r), 0);
  std::queue<int> q;
  q.push(0);
  seen[0] = 1;
  int visited = 1;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    auto visit = [&](int u) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        ++visited;
        q.push(u);
      }
    };
    if (v < l) {
      for (int n : adj_left_[static_cast<std::size_t>(v)]) visit(l + n);
    } else {
      for (int a : adj_right_[static_cast<std::size_t>(v - l)]) visit(a);
    }
  }
  return visited == l + r;
}

int BipartiteGraph::neighborhood_size(std::span<const int> subset) const {
  std::vector<char> seen(static_cast<std::size_t>(right_count()), 0);
  int count = 0;
  for (int a : subset) {
    for (int n : neighbors_of_left(a)) {
      if (!seen[static_cast<std::size_t>(n)]) {
        seen[static_cast<std::size_t>(n)] = 1;
        ++count;
      }
    }
  }
  return count;
}

}  // namespace tlb::graph
