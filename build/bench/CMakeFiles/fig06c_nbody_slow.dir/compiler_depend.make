# Empty compiler generated dependencies file for fig06c_nbody_slow.
# This may be replaced when dependencies are built.
