file(REMOVE_RECURSE
  "CMakeFiles/fig06c_nbody_slow.dir/fig06c_nbody_slow.cpp.o"
  "CMakeFiles/fig06c_nbody_slow.dir/fig06c_nbody_slow.cpp.o.d"
  "fig06c_nbody_slow"
  "fig06c_nbody_slow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06c_nbody_slow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
