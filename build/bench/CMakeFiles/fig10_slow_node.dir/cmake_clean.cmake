file(REMOVE_RECURSE
  "CMakeFiles/fig10_slow_node.dir/fig10_slow_node.cpp.o"
  "CMakeFiles/fig10_slow_node.dir/fig10_slow_node.cpp.o.d"
  "fig10_slow_node"
  "fig10_slow_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_slow_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
