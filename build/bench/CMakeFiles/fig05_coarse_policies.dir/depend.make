# Empty dependencies file for fig05_coarse_policies.
# This may be replaced when dependencies are built.
