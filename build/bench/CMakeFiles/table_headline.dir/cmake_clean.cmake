file(REMOVE_RECURSE
  "CMakeFiles/table_headline.dir/table_headline.cpp.o"
  "CMakeFiles/table_headline.dir/table_headline.cpp.o.d"
  "table_headline"
  "table_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
