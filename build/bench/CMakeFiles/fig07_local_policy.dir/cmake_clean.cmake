file(REMOVE_RECURSE
  "CMakeFiles/fig07_local_policy.dir/fig07_local_policy.cpp.o"
  "CMakeFiles/fig07_local_policy.dir/fig07_local_policy.cpp.o.d"
  "fig07_local_policy"
  "fig07_local_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_local_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
