# Empty compiler generated dependencies file for fig07_local_policy.
# This may be replaced when dependencies are built.
