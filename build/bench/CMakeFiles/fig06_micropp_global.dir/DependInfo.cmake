
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_micropp_global.cpp" "bench/CMakeFiles/fig06_micropp_global.dir/fig06_micropp_global.cpp.o" "gcc" "bench/CMakeFiles/fig06_micropp_global.dir/fig06_micropp_global.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tlb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tlb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/tlb_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/tlb_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tlb_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dlb/CMakeFiles/tlb_dlb.dir/DependInfo.cmake"
  "/root/repo/build/src/nanos/CMakeFiles/tlb_nanos.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tlb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
