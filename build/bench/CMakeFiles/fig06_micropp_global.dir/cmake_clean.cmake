file(REMOVE_RECURSE
  "CMakeFiles/fig06_micropp_global.dir/fig06_micropp_global.cpp.o"
  "CMakeFiles/fig06_micropp_global.dir/fig06_micropp_global.cpp.o.d"
  "fig06_micropp_global"
  "fig06_micropp_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_micropp_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
