# Empty compiler generated dependencies file for fig06_micropp_global.
# This may be replaced when dependencies are built.
