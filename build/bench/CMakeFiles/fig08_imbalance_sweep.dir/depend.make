# Empty dependencies file for fig08_imbalance_sweep.
# This may be replaced when dependencies are built.
