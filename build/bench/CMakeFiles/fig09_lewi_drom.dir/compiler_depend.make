# Empty compiler generated dependencies file for fig09_lewi_drom.
# This may be replaced when dependencies are built.
