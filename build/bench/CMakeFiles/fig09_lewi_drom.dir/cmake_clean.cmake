file(REMOVE_RECURSE
  "CMakeFiles/fig09_lewi_drom.dir/fig09_lewi_drom.cpp.o"
  "CMakeFiles/fig09_lewi_drom.dir/fig09_lewi_drom.cpp.o.d"
  "fig09_lewi_drom"
  "fig09_lewi_drom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_lewi_drom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
