file(REMOVE_RECURSE
  "CMakeFiles/micropp_compression.dir/micropp_compression.cpp.o"
  "CMakeFiles/micropp_compression.dir/micropp_compression.cpp.o.d"
  "micropp_compression"
  "micropp_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micropp_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
