# Empty dependencies file for micropp_compression.
# This may be replaced when dependencies are built.
