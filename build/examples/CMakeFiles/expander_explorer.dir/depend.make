# Empty dependencies file for expander_explorer.
# This may be replaced when dependencies are built.
