file(REMOVE_RECURSE
  "CMakeFiles/expander_explorer.dir/expander_explorer.cpp.o"
  "CMakeFiles/expander_explorer.dir/expander_explorer.cpp.o.d"
  "expander_explorer"
  "expander_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expander_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
