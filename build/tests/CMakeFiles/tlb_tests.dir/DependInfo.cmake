
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/tlb_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/tlb_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/dlb_test.cpp" "tests/CMakeFiles/tlb_tests.dir/dlb_test.cpp.o" "gcc" "tests/CMakeFiles/tlb_tests.dir/dlb_test.cpp.o.d"
  "/root/repo/tests/extras_test.cpp" "tests/CMakeFiles/tlb_tests.dir/extras_test.cpp.o" "gcc" "tests/CMakeFiles/tlb_tests.dir/extras_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/tlb_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/tlb_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/tlb_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/tlb_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/nanos_test.cpp" "tests/CMakeFiles/tlb_tests.dir/nanos_test.cpp.o" "gcc" "tests/CMakeFiles/tlb_tests.dir/nanos_test.cpp.o.d"
  "/root/repo/tests/policies_test.cpp" "tests/CMakeFiles/tlb_tests.dir/policies_test.cpp.o" "gcc" "tests/CMakeFiles/tlb_tests.dir/policies_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/tlb_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/tlb_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/tlb_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/tlb_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/solver_test.cpp" "tests/CMakeFiles/tlb_tests.dir/solver_test.cpp.o" "gcc" "tests/CMakeFiles/tlb_tests.dir/solver_test.cpp.o.d"
  "/root/repo/tests/sweep_test.cpp" "tests/CMakeFiles/tlb_tests.dir/sweep_test.cpp.o" "gcc" "tests/CMakeFiles/tlb_tests.dir/sweep_test.cpp.o.d"
  "/root/repo/tests/trace_metrics_test.cpp" "tests/CMakeFiles/tlb_tests.dir/trace_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/tlb_tests.dir/trace_metrics_test.cpp.o.d"
  "/root/repo/tests/vmpi_test.cpp" "tests/CMakeFiles/tlb_tests.dir/vmpi_test.cpp.o" "gcc" "tests/CMakeFiles/tlb_tests.dir/vmpi_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tlb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tlb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/tlb_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/tlb_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tlb_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dlb/CMakeFiles/tlb_dlb.dir/DependInfo.cmake"
  "/root/repo/build/src/nanos/CMakeFiles/tlb_nanos.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tlb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
