# Empty dependencies file for tlb_tests.
# This may be replaced when dependencies are built.
