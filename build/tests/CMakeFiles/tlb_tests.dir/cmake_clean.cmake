file(REMOVE_RECURSE
  "CMakeFiles/tlb_tests.dir/apps_test.cpp.o"
  "CMakeFiles/tlb_tests.dir/apps_test.cpp.o.d"
  "CMakeFiles/tlb_tests.dir/dlb_test.cpp.o"
  "CMakeFiles/tlb_tests.dir/dlb_test.cpp.o.d"
  "CMakeFiles/tlb_tests.dir/extras_test.cpp.o"
  "CMakeFiles/tlb_tests.dir/extras_test.cpp.o.d"
  "CMakeFiles/tlb_tests.dir/graph_test.cpp.o"
  "CMakeFiles/tlb_tests.dir/graph_test.cpp.o.d"
  "CMakeFiles/tlb_tests.dir/integration_test.cpp.o"
  "CMakeFiles/tlb_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/tlb_tests.dir/nanos_test.cpp.o"
  "CMakeFiles/tlb_tests.dir/nanos_test.cpp.o.d"
  "CMakeFiles/tlb_tests.dir/policies_test.cpp.o"
  "CMakeFiles/tlb_tests.dir/policies_test.cpp.o.d"
  "CMakeFiles/tlb_tests.dir/runtime_test.cpp.o"
  "CMakeFiles/tlb_tests.dir/runtime_test.cpp.o.d"
  "CMakeFiles/tlb_tests.dir/sim_test.cpp.o"
  "CMakeFiles/tlb_tests.dir/sim_test.cpp.o.d"
  "CMakeFiles/tlb_tests.dir/solver_test.cpp.o"
  "CMakeFiles/tlb_tests.dir/solver_test.cpp.o.d"
  "CMakeFiles/tlb_tests.dir/sweep_test.cpp.o"
  "CMakeFiles/tlb_tests.dir/sweep_test.cpp.o.d"
  "CMakeFiles/tlb_tests.dir/trace_metrics_test.cpp.o"
  "CMakeFiles/tlb_tests.dir/trace_metrics_test.cpp.o.d"
  "CMakeFiles/tlb_tests.dir/vmpi_test.cpp.o"
  "CMakeFiles/tlb_tests.dir/vmpi_test.cpp.o.d"
  "tlb_tests"
  "tlb_tests.pdb"
  "tlb_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
