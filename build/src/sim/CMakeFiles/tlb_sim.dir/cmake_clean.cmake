file(REMOVE_RECURSE
  "CMakeFiles/tlb_sim.dir/engine.cpp.o"
  "CMakeFiles/tlb_sim.dir/engine.cpp.o.d"
  "CMakeFiles/tlb_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tlb_sim.dir/event_queue.cpp.o.d"
  "libtlb_sim.a"
  "libtlb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
