file(REMOVE_RECURSE
  "libtlb_sim.a"
)
