# Empty dependencies file for tlb_sim.
# This may be replaced when dependencies are built.
