file(REMOVE_RECURSE
  "CMakeFiles/tlb_core.dir/policies.cpp.o"
  "CMakeFiles/tlb_core.dir/policies.cpp.o.d"
  "CMakeFiles/tlb_core.dir/runtime.cpp.o"
  "CMakeFiles/tlb_core.dir/runtime.cpp.o.d"
  "CMakeFiles/tlb_core.dir/topology.cpp.o"
  "CMakeFiles/tlb_core.dir/topology.cpp.o.d"
  "libtlb_core.a"
  "libtlb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
