file(REMOVE_RECURSE
  "libtlb_core.a"
)
