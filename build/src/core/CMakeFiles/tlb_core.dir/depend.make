# Empty dependencies file for tlb_core.
# This may be replaced when dependencies are built.
