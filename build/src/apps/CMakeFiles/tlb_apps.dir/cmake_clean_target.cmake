file(REMOVE_RECURSE
  "libtlb_apps.a"
)
