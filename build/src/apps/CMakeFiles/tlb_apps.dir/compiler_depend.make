# Empty compiler generated dependencies file for tlb_apps.
# This may be replaced when dependencies are built.
