file(REMOVE_RECURSE
  "CMakeFiles/tlb_apps.dir/micropp/hex8.cpp.o"
  "CMakeFiles/tlb_apps.dir/micropp/hex8.cpp.o.d"
  "CMakeFiles/tlb_apps.dir/micropp/material.cpp.o"
  "CMakeFiles/tlb_apps.dir/micropp/material.cpp.o.d"
  "CMakeFiles/tlb_apps.dir/micropp/micro_solver.cpp.o"
  "CMakeFiles/tlb_apps.dir/micropp/micro_solver.cpp.o.d"
  "CMakeFiles/tlb_apps.dir/micropp/workload.cpp.o"
  "CMakeFiles/tlb_apps.dir/micropp/workload.cpp.o.d"
  "CMakeFiles/tlb_apps.dir/nbody/octree.cpp.o"
  "CMakeFiles/tlb_apps.dir/nbody/octree.cpp.o.d"
  "CMakeFiles/tlb_apps.dir/nbody/orb.cpp.o"
  "CMakeFiles/tlb_apps.dir/nbody/orb.cpp.o.d"
  "CMakeFiles/tlb_apps.dir/nbody/workload.cpp.o"
  "CMakeFiles/tlb_apps.dir/nbody/workload.cpp.o.d"
  "CMakeFiles/tlb_apps.dir/synthetic.cpp.o"
  "CMakeFiles/tlb_apps.dir/synthetic.cpp.o.d"
  "libtlb_apps.a"
  "libtlb_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
