# Empty compiler generated dependencies file for tlb_vmpi.
# This may be replaced when dependencies are built.
