file(REMOVE_RECURSE
  "libtlb_vmpi.a"
)
