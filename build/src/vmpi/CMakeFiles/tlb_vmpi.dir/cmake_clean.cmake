file(REMOVE_RECURSE
  "CMakeFiles/tlb_vmpi.dir/comm.cpp.o"
  "CMakeFiles/tlb_vmpi.dir/comm.cpp.o.d"
  "libtlb_vmpi.a"
  "libtlb_vmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
