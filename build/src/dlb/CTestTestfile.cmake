# CMake generated Testfile for 
# Source directory: /root/repo/src/dlb
# Build directory: /root/repo/build/src/dlb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
