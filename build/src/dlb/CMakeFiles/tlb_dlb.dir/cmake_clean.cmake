file(REMOVE_RECURSE
  "CMakeFiles/tlb_dlb.dir/core_registry.cpp.o"
  "CMakeFiles/tlb_dlb.dir/core_registry.cpp.o.d"
  "CMakeFiles/tlb_dlb.dir/drom.cpp.o"
  "CMakeFiles/tlb_dlb.dir/drom.cpp.o.d"
  "CMakeFiles/tlb_dlb.dir/lewi.cpp.o"
  "CMakeFiles/tlb_dlb.dir/lewi.cpp.o.d"
  "CMakeFiles/tlb_dlb.dir/report.cpp.o"
  "CMakeFiles/tlb_dlb.dir/report.cpp.o.d"
  "CMakeFiles/tlb_dlb.dir/talp.cpp.o"
  "CMakeFiles/tlb_dlb.dir/talp.cpp.o.d"
  "libtlb_dlb.a"
  "libtlb_dlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_dlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
