file(REMOVE_RECURSE
  "libtlb_dlb.a"
)
