# Empty dependencies file for tlb_dlb.
# This may be replaced when dependencies are built.
