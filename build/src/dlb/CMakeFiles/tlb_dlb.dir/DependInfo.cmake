
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dlb/core_registry.cpp" "src/dlb/CMakeFiles/tlb_dlb.dir/core_registry.cpp.o" "gcc" "src/dlb/CMakeFiles/tlb_dlb.dir/core_registry.cpp.o.d"
  "/root/repo/src/dlb/drom.cpp" "src/dlb/CMakeFiles/tlb_dlb.dir/drom.cpp.o" "gcc" "src/dlb/CMakeFiles/tlb_dlb.dir/drom.cpp.o.d"
  "/root/repo/src/dlb/lewi.cpp" "src/dlb/CMakeFiles/tlb_dlb.dir/lewi.cpp.o" "gcc" "src/dlb/CMakeFiles/tlb_dlb.dir/lewi.cpp.o.d"
  "/root/repo/src/dlb/report.cpp" "src/dlb/CMakeFiles/tlb_dlb.dir/report.cpp.o" "gcc" "src/dlb/CMakeFiles/tlb_dlb.dir/report.cpp.o.d"
  "/root/repo/src/dlb/talp.cpp" "src/dlb/CMakeFiles/tlb_dlb.dir/talp.cpp.o" "gcc" "src/dlb/CMakeFiles/tlb_dlb.dir/talp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
