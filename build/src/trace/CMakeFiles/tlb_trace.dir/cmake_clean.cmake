file(REMOVE_RECURSE
  "CMakeFiles/tlb_trace.dir/paraver.cpp.o"
  "CMakeFiles/tlb_trace.dir/paraver.cpp.o.d"
  "CMakeFiles/tlb_trace.dir/recorder.cpp.o"
  "CMakeFiles/tlb_trace.dir/recorder.cpp.o.d"
  "CMakeFiles/tlb_trace.dir/step_series.cpp.o"
  "CMakeFiles/tlb_trace.dir/step_series.cpp.o.d"
  "libtlb_trace.a"
  "libtlb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
