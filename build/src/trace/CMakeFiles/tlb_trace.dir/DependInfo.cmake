
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/paraver.cpp" "src/trace/CMakeFiles/tlb_trace.dir/paraver.cpp.o" "gcc" "src/trace/CMakeFiles/tlb_trace.dir/paraver.cpp.o.d"
  "/root/repo/src/trace/recorder.cpp" "src/trace/CMakeFiles/tlb_trace.dir/recorder.cpp.o" "gcc" "src/trace/CMakeFiles/tlb_trace.dir/recorder.cpp.o.d"
  "/root/repo/src/trace/step_series.cpp" "src/trace/CMakeFiles/tlb_trace.dir/step_series.cpp.o" "gcc" "src/trace/CMakeFiles/tlb_trace.dir/step_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
