file(REMOVE_RECURSE
  "libtlb_trace.a"
)
