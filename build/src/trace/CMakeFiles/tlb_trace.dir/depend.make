# Empty dependencies file for tlb_trace.
# This may be replaced when dependencies are built.
