
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/allocation.cpp" "src/solver/CMakeFiles/tlb_solver.dir/allocation.cpp.o" "gcc" "src/solver/CMakeFiles/tlb_solver.dir/allocation.cpp.o.d"
  "/root/repo/src/solver/maxflow.cpp" "src/solver/CMakeFiles/tlb_solver.dir/maxflow.cpp.o" "gcc" "src/solver/CMakeFiles/tlb_solver.dir/maxflow.cpp.o.d"
  "/root/repo/src/solver/mincost_flow.cpp" "src/solver/CMakeFiles/tlb_solver.dir/mincost_flow.cpp.o" "gcc" "src/solver/CMakeFiles/tlb_solver.dir/mincost_flow.cpp.o.d"
  "/root/repo/src/solver/partitioned.cpp" "src/solver/CMakeFiles/tlb_solver.dir/partitioned.cpp.o" "gcc" "src/solver/CMakeFiles/tlb_solver.dir/partitioned.cpp.o.d"
  "/root/repo/src/solver/simplex.cpp" "src/solver/CMakeFiles/tlb_solver.dir/simplex.cpp.o" "gcc" "src/solver/CMakeFiles/tlb_solver.dir/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tlb_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
