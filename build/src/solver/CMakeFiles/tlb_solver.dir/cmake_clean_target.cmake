file(REMOVE_RECURSE
  "libtlb_solver.a"
)
