file(REMOVE_RECURSE
  "CMakeFiles/tlb_solver.dir/allocation.cpp.o"
  "CMakeFiles/tlb_solver.dir/allocation.cpp.o.d"
  "CMakeFiles/tlb_solver.dir/maxflow.cpp.o"
  "CMakeFiles/tlb_solver.dir/maxflow.cpp.o.d"
  "CMakeFiles/tlb_solver.dir/mincost_flow.cpp.o"
  "CMakeFiles/tlb_solver.dir/mincost_flow.cpp.o.d"
  "CMakeFiles/tlb_solver.dir/partitioned.cpp.o"
  "CMakeFiles/tlb_solver.dir/partitioned.cpp.o.d"
  "CMakeFiles/tlb_solver.dir/simplex.cpp.o"
  "CMakeFiles/tlb_solver.dir/simplex.cpp.o.d"
  "libtlb_solver.a"
  "libtlb_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
