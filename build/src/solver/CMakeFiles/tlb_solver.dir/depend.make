# Empty dependencies file for tlb_solver.
# This may be replaced when dependencies are built.
