# Empty dependencies file for tlb_nanos.
# This may be replaced when dependencies are built.
