
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nanos/data_location.cpp" "src/nanos/CMakeFiles/tlb_nanos.dir/data_location.cpp.o" "gcc" "src/nanos/CMakeFiles/tlb_nanos.dir/data_location.cpp.o.d"
  "/root/repo/src/nanos/dependency_graph.cpp" "src/nanos/CMakeFiles/tlb_nanos.dir/dependency_graph.cpp.o" "gcc" "src/nanos/CMakeFiles/tlb_nanos.dir/dependency_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
