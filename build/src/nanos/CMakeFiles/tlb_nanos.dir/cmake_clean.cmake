file(REMOVE_RECURSE
  "CMakeFiles/tlb_nanos.dir/data_location.cpp.o"
  "CMakeFiles/tlb_nanos.dir/data_location.cpp.o.d"
  "CMakeFiles/tlb_nanos.dir/dependency_graph.cpp.o"
  "CMakeFiles/tlb_nanos.dir/dependency_graph.cpp.o.d"
  "libtlb_nanos.a"
  "libtlb_nanos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_nanos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
