file(REMOVE_RECURSE
  "libtlb_nanos.a"
)
