file(REMOVE_RECURSE
  "libtlb_metrics.a"
)
