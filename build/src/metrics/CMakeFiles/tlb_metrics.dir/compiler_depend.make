# Empty compiler generated dependencies file for tlb_metrics.
# This may be replaced when dependencies are built.
