file(REMOVE_RECURSE
  "CMakeFiles/tlb_metrics.dir/imbalance.cpp.o"
  "CMakeFiles/tlb_metrics.dir/imbalance.cpp.o.d"
  "libtlb_metrics.a"
  "libtlb_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
