file(REMOVE_RECURSE
  "CMakeFiles/tlb_graph.dir/bipartite_graph.cpp.o"
  "CMakeFiles/tlb_graph.dir/bipartite_graph.cpp.o.d"
  "CMakeFiles/tlb_graph.dir/expander.cpp.o"
  "CMakeFiles/tlb_graph.dir/expander.cpp.o.d"
  "CMakeFiles/tlb_graph.dir/graph_cache.cpp.o"
  "CMakeFiles/tlb_graph.dir/graph_cache.cpp.o.d"
  "libtlb_graph.a"
  "libtlb_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
