# Empty dependencies file for tlb_graph.
# This may be replaced when dependencies are built.
