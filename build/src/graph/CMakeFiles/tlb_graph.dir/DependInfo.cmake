
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bipartite_graph.cpp" "src/graph/CMakeFiles/tlb_graph.dir/bipartite_graph.cpp.o" "gcc" "src/graph/CMakeFiles/tlb_graph.dir/bipartite_graph.cpp.o.d"
  "/root/repo/src/graph/expander.cpp" "src/graph/CMakeFiles/tlb_graph.dir/expander.cpp.o" "gcc" "src/graph/CMakeFiles/tlb_graph.dir/expander.cpp.o.d"
  "/root/repo/src/graph/graph_cache.cpp" "src/graph/CMakeFiles/tlb_graph.dir/graph_cache.cpp.o" "gcc" "src/graph/CMakeFiles/tlb_graph.dir/graph_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
