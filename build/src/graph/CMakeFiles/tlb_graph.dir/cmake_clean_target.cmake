file(REMOVE_RECURSE
  "libtlb_graph.a"
)
