#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md bench tables from BENCH_fig*.json artifacts.

Every bench binary emits a machine-readable ``BENCH_<figure>.json`` report
next to its human-readable tables (see bench/common.hpp, JsonReport). This
tool turns a directory of those artifacts back into markdown tables, so the
numbers quoted in EXPERIMENTS.md can be regenerated from a bench run (or
from the ``bench-reports`` CI artifact) instead of being transcribed by
hand.

Usage:
  tools/report.py [ARTIFACT_DIR]                 # print markdown to stdout
  tools/report.py [ARTIFACT_DIR] --update FILE   # splice into FILE between
                                                 # bench-report markers
  tools/report.py [ARTIFACT_DIR] --figures fig13,fig14

--update replaces everything between the two marker lines

  <!-- bench-report:begin -->
  <!-- bench-report:end -->

in FILE (typically EXPERIMENTS.md) and fails if the markers are missing,
so a typo'd target file is never silently rewritten.

Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BEGIN_MARK = "<!-- bench-report:begin -->"
END_MARK = "<!-- bench-report:end -->"


def fmt(value, key: str = "") -> str:
    """Format a JSON scalar for a markdown cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if key.startswith("pop_") and isinstance(value, (int, float)):
        # POP efficiency factors are fractions of 1; render as percentages.
        return f"{100.0 * value:.1f}%"
    if (key in ("shed_rate", "goodput_norm", "offload_fraction")
            and isinstance(value, (int, float))):
        # Fractions of the offered load; render as percentages.
        return f"{100.0 * value:.1f}%"
    if key == "goodput" and isinstance(value, (int, float)):
        return f"{value:.2f}"  # SLO-met jobs per second
    if key == "cost_node_seconds" and isinstance(value, (int, float)):
        return f"{value:.1f}"  # elastic-pool billing (node-seconds)
    if key.endswith("_s") and isinstance(value, (int, float)):
        return f"{value:.3f}"  # latency/wait columns, seconds
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def load_reports(artifact_dir: Path, figures: list[str] | None) -> list[dict]:
    paths = sorted(artifact_dir.glob("BENCH_*.json"))
    reports = []
    for path in paths:
        try:
            report = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping {path}: {err}", file=sys.stderr)
            continue
        figure = report.get("figure")
        if not figure or "series" not in report:
            print(f"warning: skipping {path}: not a bench report",
                  file=sys.stderr)
            continue
        if figures and figure not in figures:
            continue
        reports.append(report)
    return reports


def series_table(series: dict) -> list[str]:
    """Render one series as a markdown table (union of point keys, in
    first-seen order, one row per point). Nested objects — e.g. the
    embedded obs metrics registry — do not fit a cell and are skipped;
    the flat pop_* efficiency columns carry the observability summary."""
    columns: list[str] = []
    for point in series["points"]:
        for key, value in point.items():
            if isinstance(value, (dict, list)):
                continue
            if key not in columns:
                columns.append(key)
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "---|" * len(columns)]
    for point in series["points"]:
        cells = [fmt(point[c], c) if c in point else "" for c in columns]
        lines.append("| " + " | ".join(cells) + " |")
    return lines


def prof_section(prof: dict) -> list[str]:
    """Render a report's embedded self-profile (src/prof, emitted when the
    bench ran with TLB_PROF=1): top phases by exclusive wall time, the
    per-subsystem allocation peaks, and the health-snapshot summary.
    The phase window covers the bench's last profiler reset (for fig17,
    the final scale point)."""
    out: list[str] = ["", "**Self-profile (TLB_PROF=1)**", ""]
    wall_s = prof.get("wall_s", 0.0)
    unattributed = prof.get("unattributed_share", 0.0)
    snapshots = prof.get("snapshots") or []
    stride = prof.get("snapshot_stride", 0)
    out.append(f"Window {fmt(wall_s, 'wall_s')} s, unattributed "
               f"{100.0 * unattributed:.1f}%, {len(snapshots)} health "
               f"snapshots (stride {stride} events).")
    phases = sorted(prof.get("phases") or [],
                    key=lambda p: p.get("exclusive_ns", 0), reverse=True)
    if phases:
        out.append("")
        out.append("| phase | calls | exclusive[ms] | inclusive[ms] |")
        out.append("|---|---|---|---|")
        for p in phases[:12]:
            out.append(f"| `{p['path']}` | {p['calls']} "
                       f"| {p['exclusive_ns'] / 1e6:.1f} "
                       f"| {p['inclusive_ns'] / 1e6:.1f} |")
        if len(phases) > 12:
            out.append(f"| … {len(phases) - 12} more | | | |")
    allocs = [a for a in (prof.get("alloc") or []) if a.get("peak_bytes")]
    if allocs:
        out.append("")
        out.append("| subsystem | peak[MB] | allocs | frees |")
        out.append("|---|---|---|---|")
        for a in allocs:
            out.append(f"| `{a['tag']}` | {a['peak_bytes'] / 1048576:.1f} "
                       f"| {a['allocs']} | {a['frees']} |")
    return out


def render(reports: list[dict]) -> str:
    out: list[str] = []
    smoke = any(r.get("smoke") for r in reports)
    out.append("Generated by `tools/report.py` from `BENCH_fig*.json` "
               "artifacts — do not edit by hand.")
    if smoke:
        out.append("")
        out.append("**Note: one or more reports were produced in smoke mode "
                   "(`TLB_BENCH_SMOKE=1`, reduced sweeps); absolute numbers "
                   "are not comparable to full runs.**")
    for report in reports:
        out.append("")
        out.append(f"### `{report['figure']}` — {report.get('title', '')}")
        config = report.get("config") or {}
        if config:
            pairs = ", ".join(f"{k}={fmt(v)}" for k, v in config.items())
            out.append("")
            out.append(f"Config: {pairs}.")
        for series in report["series"]:
            name = series.get("name", "")
            if name and (len(report["series"]) > 1 or name != "default"):
                out.append("")
                out.append(f"**{name}**")
            out.append("")
            out.extend(series_table(series))
        if isinstance(report.get("prof"), dict):
            out.extend(prof_section(report["prof"]))
    out.append("")
    return "\n".join(out)


def splice(target: Path, body: str) -> None:
    text = target.read_text()
    begin = text.find(BEGIN_MARK)
    end = text.find(END_MARK)
    if begin < 0 or end < 0 or end < begin:
        sys.exit(f"error: {target} does not contain the markers\n"
                 f"  {BEGIN_MARK}\n  {END_MARK}\n"
                 "add them where the generated tables should go.")
    head = text[: begin + len(BEGIN_MARK)]
    tail = text[end:]
    target.write_text(head + "\n" + body + "\n" + tail)
    print(f"updated {target}", file=sys.stderr)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Render BENCH_fig*.json artifacts as markdown tables.")
    parser.add_argument("artifact_dir", nargs="?", default=".", type=Path,
                        help="directory holding BENCH_fig*.json "
                             "(default: current directory)")
    parser.add_argument("--update", metavar="FILE", type=Path,
                        help="splice the tables into FILE between the "
                             "bench-report markers instead of printing")
    parser.add_argument("--figures", metavar="LIST",
                        help="comma-separated figure names to include "
                             "(default: all found)")
    args = parser.parse_args()

    figures = args.figures.split(",") if args.figures else None
    reports = load_reports(args.artifact_dir, figures)
    if not reports:
        sys.exit(f"error: no BENCH_*.json reports found in "
                 f"{args.artifact_dir}")
    body = render(reports)
    if args.update:
        splice(args.update, body)
    else:
        print(body)


if __name__ == "__main__":
    main()
