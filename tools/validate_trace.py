#!/usr/bin/env python3
"""Validate execution traces emitted by the benches (stdlib only).

Two formats, selected by extension:

  *.trace.json / *.json  Chrome trace-event JSON (Perfetto-loadable):
      - top level is an object with a "traceEvents" list;
      - every event has name/ph/pid/tid, and a numeric non-negative "ts";
      - non-metadata events appear in non-decreasing "ts" order;
      - "B"/"E" duration events balance per (pid, tid, name) with no
        unclosed or stray ends.

  *.prv  Paraver trace. The sibling .row and .pcf files are validated
      alongside when present:
      - header matches  #Paraver (...):<end>_ns:0:1:1(<threads>:1)
      - every record is  2:cpu:1:1:thread:time:type:value  with
        1 <= thread <= <threads>, 0 <= time <= <end>, non-decreasing times;
      - .row declares LEVEL THREAD SIZE <threads> plus one label per thread;
      - .pcf names every event type the .prv uses (and all six tlb types).

Usage:  validate_trace.py FILE [FILE...]   (exit 0 = all valid)
"""

from __future__ import annotations

import json
import os
import re
import sys

TLB_EVENT_TYPES = [90000001, 90000002, 90000003, 90000004, 90000005, 90000006]

PRV_HEADER = re.compile(
    r"^#Paraver \([^)]*\):(?P<end>\d+)_ns:0:1:1\((?P<threads>\d+):1\)$"
)
PRV_RECORD = re.compile(
    r"^2:(?P<cpu>\d+):1:1:(?P<thread>\d+):(?P<time>\d+):"
    r"(?P<type>\d+):(?P<value>-?\d+)$"
)


class ValidationError(Exception):
    pass


def fail(msg: str) -> None:
    raise ValidationError(msg)


def validate_chrome(path: str) -> str:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty list")

    open_stacks: dict[tuple, int] = {}
    last_ts = None
    durations = 0
    for i, e in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(f"event {i} misses required key {key!r}")
        ph = e["ph"]
        if ph == "M":
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i} ({e['name']!r}) has invalid ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(f"event {i} ({e['name']!r}) ts {ts} < previous {last_ts}")
        last_ts = ts
        key = (e["pid"], e["tid"], e["name"])
        if ph == "B":
            open_stacks[key] = open_stacks.get(key, 0) + 1
            durations += 1
        elif ph == "E":
            if open_stacks.get(key, 0) <= 0:
                fail(f"event {i}: E without matching B for {key}")
            open_stacks[key] -= 1
        elif ph not in ("i", "I", "X"):
            fail(f"event {i} has unknown phase {ph!r}")
    unclosed = {k: n for k, n in open_stacks.items() if n != 0}
    if unclosed:
        fail(f"unclosed B events: {unclosed}")
    if durations == 0:
        fail("trace contains no duration (B/E) events")
    return f"{len(events)} events, {durations} duration pairs"


def validate_prv(path: str) -> str:
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        fail("empty .prv file")
    m = PRV_HEADER.match(lines[0])
    if m is None:
        fail(f"bad header: {lines[0]!r}")
    end_ns = int(m.group("end"))
    threads = int(m.group("threads"))

    used_types = set()
    last_time = 0
    records = 0
    for lineno, line in enumerate(lines[1:], start=2):
        if not line:
            continue
        r = PRV_RECORD.match(line)
        if r is None:
            fail(f"line {lineno}: bad record {line!r}")
        thread = int(r.group("thread"))
        time = int(r.group("time"))
        if not 1 <= thread <= threads:
            fail(f"line {lineno}: thread {thread} outside 1..{threads}")
        if time > end_ns:
            fail(f"line {lineno}: time {time} beyond header end {end_ns}")
        if time < last_time:
            fail(f"line {lineno}: time {time} < previous {last_time}")
        last_time = time
        used_types.add(int(r.group("type")))
        records += 1
    if records == 0:
        fail("no event records")

    stem = path[: -len(".prv")]
    extras = []
    row_path = stem + ".row"
    if os.path.exists(row_path):
        with open(row_path, encoding="utf-8") as f:
            row_lines = [l for l in f.read().splitlines() if l]
        if not row_lines or not row_lines[0].startswith("LEVEL THREAD SIZE "):
            fail(f"{row_path}: missing 'LEVEL THREAD SIZE' header")
        declared = int(row_lines[0].rsplit(" ", 1)[1])
        if declared != threads:
            fail(f"{row_path}: declares {declared} threads, .prv has {threads}")
        if len(row_lines) - 1 != threads:
            fail(f"{row_path}: {len(row_lines) - 1} labels for {threads} threads")
        extras.append(".row ok")

    pcf_path = stem + ".pcf"
    if os.path.exists(pcf_path):
        with open(pcf_path, encoding="utf-8") as f:
            pcf = f.read()
        if "EVENT_TYPE" not in pcf:
            fail(f"{pcf_path}: no EVENT_TYPE blocks")
        pcf_types = {
            int(t) for t in re.findall(r"^0\s+(\d+)\s", pcf, flags=re.M)
        }
        missing = used_types - pcf_types
        if missing:
            fail(f"{pcf_path}: event types used but not named: {sorted(missing)}")
        missing_tlb = [t for t in TLB_EVENT_TYPES if t not in pcf_types]
        if missing_tlb:
            fail(f"{pcf_path}: tlb event types not named: {missing_tlb}")
        extras.append(".pcf ok")

    detail = f"{records} records, {threads} threads, {len(used_types)} types"
    return ", ".join([detail] + extras)


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    status = 0
    for path in argv[1:]:
        try:
            if path.endswith(".prv"):
                detail = validate_prv(path)
            else:
                detail = validate_chrome(path)
            print(f"OK   {path}: {detail}")
        except ValidationError as e:
            print(f"FAIL {path}: {e}")
            status = 1
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {path}: {e}")
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
