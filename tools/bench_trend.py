#!/usr/bin/env python3
"""Compare two directories of BENCH_fig*.json artifacts and flag regressions.

Used by the ``bench-trend`` CI job: the candidate directory is the current
run's smoke reports, the base directory is the latest ``bench-reports``
artifact from main. For every figure present in both, each point is matched
by (series name, position) and its tracked metrics are compared. Metrics
are direction-aware: for ``makespan`` (or the first key containing
"makespan"), ``latency_p99_s``, ``cost_node_seconds``,
``breaker_open_time_s`` and ``sched_switches``, growth beyond the
threshold (default 20%) is a regression; for ``goodput`` and
``decisions_per_sec``, a *drop* beyond the threshold is.

The job is *fail-soft*: regressions are reported as GitHub ``::warning::``
annotations (plain lines outside Actions) and the exit code stays 0 unless
--strict is given. Smoke sweeps are small and somewhat quantised, so a
single warning is a nudge to look at the full bench, not a verdict.

Usage:
  tools/bench_trend.py BASE_DIR CANDIDATE_DIR [--threshold 0.2] [--strict]

Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def load_dir(artifact_dir: Path) -> dict[str, dict]:
    reports = {}
    for path in sorted(artifact_dir.glob("BENCH_*.json")):
        try:
            report = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping {path}: {err}", file=sys.stderr)
            continue
        if report.get("figure") and "series" in report:
            reports[report["figure"]] = report
    return reports


def point_metrics(point: dict) -> list[tuple[str, bool]]:
    """Tracked metrics of a point as (key, higher_is_worse) pairs.

    Makespan-style keys and the p99 latency tail regress when they grow;
    goodput regresses when it falls. A point can carry several (the svc
    figures report both tails and goodput)."""
    metrics: list[tuple[str, bool]] = []
    if isinstance(point.get("makespan"), (int, float)):
        metrics.append(("makespan", True))
    else:
        for key, value in point.items():
            if "makespan" in key and isinstance(value, (int, float)):
                metrics.append((key, True))
                break
    if isinstance(point.get("latency_p99_s"), (int, float)):
        metrics.append(("latency_p99_s", True))
    if isinstance(point.get("goodput"), (int, float)):
        metrics.append(("goodput", False))
    # Elastic-pool economics (fig16): billed node-seconds and the time the
    # tenants' circuit breakers spent open both regress when they grow.
    if isinstance(point.get("cost_node_seconds"), (int, float)):
        metrics.append(("cost_node_seconds", True))
    if isinstance(point.get("breaker_open_time_s"), (int, float)):
        metrics.append(("breaker_open_time_s", True))
    # Scheduler-policy health (fig14): a jump in mode switches means the
    # adaptive portfolio started flapping; a drop in scheduling throughput
    # (decisions per wall-clock second, fig14b scaling arm) means victim
    # selection itself got more expensive.
    if isinstance(point.get("sched_switches"), (int, float)):
        metrics.append(("sched_switches", True))
    if isinstance(point.get("decisions_per_sec"), (int, float)):
        metrics.append(("decisions_per_sec", False))
    # Engine scale-out health (fig17): simulated events per wall-clock
    # second falling means the event loop or the fabric solver got
    # slower; peak RSS growing means the bounded-memory telemetry working
    # set is no longer bounded.
    if isinstance(point.get("events_per_sec"), (int, float)):
        metrics.append(("events_per_sec", False))
    if isinstance(point.get("peak_rss_mb"), (int, float)):
        metrics.append(("peak_rss_mb", True))
    # Self-profiler attribution (fig17 scale points with TLB_PROF=1): the
    # solver's share of wall time growing means the max-min re-solve is
    # eating the engine again; bytes charged per task growing means a
    # subsystem started retaining more per-task state (the ~2.5 KB/task
    # budget tracked in EXPERIMENTS.md).
    if isinstance(point.get("solver_wall_share"), (int, float)):
        metrics.append(("solver_wall_share", True))
    if isinstance(point.get("alloc_bytes_per_task"), (int, float)):
        metrics.append(("alloc_bytes_per_task", True))
    return metrics


def point_label(point: dict) -> str:
    """Identify a point by its non-metric scalar fields (policy, degree,
    imbalance, ...), for readable annotations."""
    parts = []
    for key, value in point.items():
        if isinstance(value, str) or (isinstance(value, (int, float))
                                      and key in ("degree", "nodes",
                                                  "imbalance",
                                                  "oversubscription",
                                                  "payload_bytes",
                                                  "perturbation",
                                                  "signed_imbalance",
                                                  "load_multiplier",
                                                  "offered_rate")):
            parts.append(f"{key}={value}")
        if len(parts) == 3:
            break
    return ", ".join(parts)


def annotate(message: str) -> None:
    prefix = "::warning::" if os.environ.get("GITHUB_ACTIONS") else "WARNING: "
    print(f"{prefix}{message}")


def compare(base: dict, cand: dict, threshold: float) -> list[str]:
    regressions = []
    if bool(base.get("smoke")) != bool(cand.get("smoke")):
        print(f"note: {cand['figure']}: smoke flags differ between base and "
              "candidate; skipping", file=sys.stderr)
        return regressions
    base_series = {s.get("name", ""): s["points"] for s in base["series"]}
    for series in cand["series"]:
        name = series.get("name", "")
        base_points = base_series.get(name)
        if base_points is None:
            continue  # new series on the candidate side: nothing to compare
        for i, point in enumerate(series["points"]):
            if i >= len(base_points):
                break
            for key, higher_is_worse in point_metrics(point):
                base_value = base_points[i].get(key)
                if not isinstance(base_value, (int, float)) or base_value <= 0:
                    continue
                growth = point[key] / base_value - 1.0
                regressed = (growth > threshold if higher_is_worse
                             else growth < -threshold)
                if not regressed:
                    continue
                label = point_label(point)
                where = f"{cand['figure']} [{name}]"
                if label:
                    where += f" ({label})"
                regressions.append(
                    f"{where}: {key} {base_value:.4g} -> {point[key]:.4g} "
                    f"({100 * growth:+.1f}% vs main)")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Flag bench metric regressions between two artifact "
                    "directories.")
    parser.add_argument("base_dir", type=Path,
                        help="reference BENCH_*.json directory (e.g. main)")
    parser.add_argument("candidate_dir", type=Path,
                        help="candidate BENCH_*.json directory (this run)")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="relative growth that counts as a regression "
                             "(default: 0.2 = +20%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when regressions are found "
                             "(default: fail-soft, always exit 0)")
    args = parser.parse_args()

    base = load_dir(args.base_dir)
    cand = load_dir(args.candidate_dir)
    if not cand:
        print(f"error: no BENCH_*.json reports in {args.candidate_dir}",
              file=sys.stderr)
        return 0 if not args.strict else 1
    if not base:
        print(f"note: no base reports in {args.base_dir}; nothing to "
              "compare against (first run on a branch?)", file=sys.stderr)
        return 0

    regressions: list[str] = []
    compared = 0
    for figure, report in sorted(cand.items()):
        if figure in base:
            compared += 1
            regressions.extend(compare(base[figure], report, args.threshold))

    print(f"bench-trend: compared {compared} figure(s), "
          f"{len(regressions)} regression(s) beyond "
          f"+{100 * args.threshold:.0f}%")
    for message in regressions:
        annotate(message)
    return 1 if (regressions and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
