// Quickstart: transparent load balancing of an imbalanced task-parallel
// application across a simulated 4-node cluster.
//
//   $ ./quickstart
//
// Builds the same execution three ways — no balancing, single-node DLB,
// and DLB + OmpSs-2@Cluster offloading with an expander graph of degree 3
// — and prints the resulting times, offload statistics, and a busy-core
// trace of the balanced run.
#include <cstdio>

#include "apps/synthetic.hpp"
#include "core/runtime.hpp"
#include "trace/recorder.hpp"

int main() {
  using namespace tlb;

  // A 4-node cluster, 8 cores per node, one MPI rank (apprank) per node.
  // The synthetic workload gives rank 0 twice the average load
  // (imbalance 2.0, Equation 2 of the paper).
  apps::SyntheticConfig workload_cfg;
  workload_cfg.appranks = 4;
  workload_cfg.iterations = 4;
  workload_cfg.tasks_per_rank = 64;
  workload_cfg.imbalance = 2.0;

  struct Setup {
    const char* name;
    bool lewi;
    bool drom;
    int degree;
  };
  const Setup setups[] = {
      {"no balancing          ", false, false, 1},
      {"single-node DLB       ", true, true, 1},
      {"DLB + offload (deg 3) ", true, true, 3},
  };

  std::printf("quickstart: 4 nodes x 8 cores, imbalance 2.0\n\n");
  std::printf("%s %10s %12s %10s\n", "configuration         ", "time [s]",
              "vs perfect", "offloaded");

  for (const Setup& s : setups) {
    core::RuntimeConfig cfg;
    cfg.cluster = sim::ClusterSpec::homogeneous(4, 8);
    cfg.appranks_per_node = 1;
    cfg.degree = s.degree;
    cfg.lewi = s.lewi;
    cfg.drom = s.drom;
    cfg.policy = core::PolicyKind::Global;

    apps::SyntheticWorkload workload(workload_cfg);
    core::ClusterRuntime runtime(cfg);
    const core::RunResult result = runtime.run(workload);

    std::printf("%s %10.3f %11.2fx %9.1f%%\n", s.name, result.makespan,
                result.vs_perfect(), 100.0 * result.offload_fraction());

    if (s.degree == 3) {
      std::printf("\nbusy cores of rank 0 (the heavy rank) per node:\n");
      std::vector<std::pair<std::string, const trace::StepSeries*>> rows;
      for (int n = 0; n < 4; ++n) {
        rows.emplace_back("  node " + std::to_string(n),
                          &runtime.recorder().busy(n, 0));
      }
      std::fputs(
          trace::ascii_timeline(rows, 0.0, result.makespan, 64, 8.0).c_str(),
          stdout);
      std::printf("(rank 0's tasks spread across its expander neighbourhood;"
                  " expansion %.2f)\n",
                  runtime.expander_expansion());
    }
  }
  return 0;
}
