// Expander explorer: the offloading-graph machinery on its own.
//
// Generates bipartite biregular offloading graphs for several cluster
// sizes and degrees, reports their vertex expansion (the paper's
// screening metric), and feeds one of them to the global core-allocation
// solver (Equation 1) to show how an imbalanced load maps to cores.
#include <cstdio>

#include "graph/expander.hpp"
#include "solver/allocation.hpp"

int main() {
  using namespace tlb;

  std::printf("== bipartite biregular offloading graphs ==\n");
  std::printf("%8s %10s %8s %12s %10s\n", "nodes", "ranks/node", "degree",
              "expansion", "attempts");
  for (const int nodes : {4, 8, 16, 32}) {
    for (const int degree : {2, 3, 4}) {
      const auto r = graph::build_expander(
          {.nodes = nodes, .appranks_per_node = 2, .degree = degree,
           .seed = 42});
      std::printf("%8d %10d %8d %12.3f %10d\n", nodes, 2, degree, r.expansion,
                  r.attempts);
    }
  }

  // A degree-3 graph on 8 nodes; rank 0 carries 8x the average load.
  std::printf("\n== Equation-1 allocation: rank 0 overloaded 8x ==\n");
  const auto ex = graph::build_expander(
      {.nodes = 8, .appranks_per_node = 1, .degree = 3, .seed = 42});
  solver::AllocationProblem p;
  p.graph = &ex.graph;
  p.node_cores.assign(8, 16);
  p.work.assign(8, 4.0);
  p.work[0] = 32.0;
  const auto sol = solver::solve_allocation(p);
  std::printf("objective max(work/cores) = %.3f, offloaded cores = %.2f\n",
              sol.objective, sol.offloaded_cores);
  for (int a = 0; a < 8; ++a) {
    std::printf("rank %d (work %4.1f): ", a, p.work[static_cast<std::size_t>(a)]);
    const auto& nb = ex.graph.neighbors_of_left(a);
    int total = 0;
    for (std::size_t j = 0; j < nb.size(); ++j) {
      std::printf(" node%d:%d", nb[j],
                  sol.cores[static_cast<std::size_t>(a)][j]);
      total += sol.cores[static_cast<std::size_t>(a)][j];
    }
    std::printf("  (total %d cores)\n", total);
  }

  std::printf("\nserialized degree-2 graph on 4 nodes (cacheable, §5.2):\n%s",
              graph::serialize(
                  graph::build_expander({.nodes = 4, .appranks_per_node = 1,
                                         .degree = 2, .seed = 1})
                      .graph)
                  .c_str());
  return 0;
}
