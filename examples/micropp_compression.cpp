// MicroPP example: real micro-scale solid mechanics, then cluster-level
// load balancing of the resulting task load.
//
// Part 1 exercises the FE library directly: assembles a hexahedral
// subdomain, solves a uniaxial compression with CG, and drives one
// element into the plastic regime (the source of MicroPP's imbalance).
// Part 2 runs the derived MicroPP workload on a simulated 4-node cluster
// and shows what DLB + task offloading buys.
#include <cstdio>

#include "apps/micropp/hex8.hpp"
#include "apps/micropp/material.hpp"
#include "apps/micropp/micro_solver.hpp"
#include "apps/micropp/workload.hpp"
#include "core/runtime.hpp"

int main() {
  using namespace tlb;
  using namespace tlb::apps::micropp;

  // --- Part 1: the finite-element kernels ----------------------------------
  std::printf("== micro-scale FE subdomain: 4x4x4 hex8 elements ==\n");
  SubdomainConfig sub_cfg;
  sub_cfg.nx = sub_cfg.ny = sub_cfg.nz = 4;
  sub_cfg.h = 0.25;
  Subdomain sub(sub_cfg);
  const std::uint64_t flops = sub.assemble();
  const auto sol = sub.solve_compression(/*uz=*/-0.01);
  std::printf("assembled %d elements (%llu kernel flops), CG converged in %d "
              "iterations (residual %.1e)\n",
              sub.element_count(), static_cast<unsigned long long>(flops),
              sol.cg_iterations, sol.residual);
  const int centre = sub.node_index(2, 2, 2);
  std::printf("centre-node displacement: uz = %.5f (imposed top uz = -0.01)\n",
              sol.u[static_cast<std::size_t>(3 * centre + 2)]);

  // Drive one element into plasticity: this is what makes "non-linear"
  // elements several times more expensive than linear ones.
  PlasticParams mat;
  const auto coords = unit_cube_coords(1.0);
  ElementVector u{};
  for (int n = 0; n < 8; ++n) {
    u[static_cast<std::size_t>(3 * n + 2)] =
        -0.02 * coords[static_cast<std::size_t>(n)][2];
  }
  std::array<double, 8> alpha{};
  ElementVector f{};
  const int iters = Hex8::internal_force(coords, mat, u, alpha, f);
  std::printf("plastic element: %d return-mapping iterations over %d Gauss "
              "points (alpha[0] = %.4f)\n\n",
              iters, Hex8::kGaussPoints, alpha[0]);

  // --- Part 2: balancing the MicroPP load on a cluster ----------------------
  std::printf("== MicroPP workload on 4 simulated 48-core nodes ==\n");
  MicroPPConfig wl_cfg;
  wl_cfg.appranks = 4;
  wl_cfg.iterations = 8;
  wl_cfg.elements_per_rank = 4096;
  wl_cfg.elements_per_task = 16;
  wl_cfg.heavy_rank_fraction = 0.25;  // rank 0 is mostly non-linear
  wl_cfg.core_flops_rate = 5e7;

  for (const bool offload : {false, true}) {
    core::RuntimeConfig cfg;
    cfg.cluster = sim::ClusterSpec::homogeneous(4, 48);
    cfg.appranks_per_node = 1;
    cfg.degree = offload ? 3 : 1;
    cfg.policy = core::PolicyKind::Global;

    MicroPPWorkload workload(wl_cfg);
    core::ClusterRuntime runtime(cfg);
    const auto r = runtime.run(workload);
    std::printf("%s: %.3f s (perfect %.3f s), offloaded %.1f%% of the work\n",
                offload ? "with offloading (degree 3)"
                        : "without offloading        ",
                r.makespan, r.perfect_time, 100.0 * r.offload_fraction());
  }
  return 0;
}
