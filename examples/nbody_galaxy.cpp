// n-body example: a real Barnes–Hut simulation with ORB partitioning,
// executed on a simulated cluster with one slow node.
//
// Part 1 validates the gravity solver (octree vs direct summation) and
// shows how ORB balances the predicted interaction counts. Part 2 runs
// the workload on 8 Nord3-like nodes where node 0 is clocked at 60%:
// ORB's speed-blind cost model leaves the slow node on the critical path
// until task offloading moves work away from it.
#include <cstdio>

#include "apps/nbody/octree.hpp"
#include "apps/nbody/orb.hpp"
#include "apps/nbody/workload.hpp"
#include "core/runtime.hpp"
#include "metrics/imbalance.hpp"

int main() {
  using namespace tlb;
  using namespace tlb::apps::nbody;

  // --- Part 1: the gravity solver --------------------------------------------
  NBodyConfig cfg;
  cfg.appranks = 16;
  cfg.iterations = 10;
  cfg.bodies = 4096;
  cfg.blocks_per_rank = 24;
  cfg.orb_chunk = 64;
  cfg.seconds_per_interaction = 1.5e-4;
  NBodyWorkload workload(cfg);

  const auto& bodies = workload.bodies();
  const Octree tree(bodies);
  double err = 0.0;
  std::uint64_t interactions = 0;
  for (int i = 0; i < 32; ++i) {
    const auto approx = tree.acceleration(bodies[static_cast<std::size_t>(i)],
                                          cfg.theta);
    const auto exact =
        Octree::direct_acceleration(bodies, bodies[static_cast<std::size_t>(i)]);
    err += (approx.acceleration - exact).norm() / exact.norm();
    interactions += approx.interactions;
  }
  std::printf("Barnes-Hut (theta=%.1f): mean force error %.2f%% vs direct sum, "
              "%.0f interactions/body (vs %d for direct)\n",
              cfg.theta, 100.0 * err / 32, interactions / 32.0, cfg.bodies);

  const auto loads = workload.rank_loads();
  std::printf("ORB predicted per-rank load imbalance (Eq. 2): %.3f over %d "
              "ranks\n\n",
              metrics::imbalance(loads), cfg.appranks);

  // --- Part 2: the slow node --------------------------------------------------
  std::printf("== 8 nodes x 16 cores, node 0 at 60%% clock, 2 ranks/node ==\n");
  struct Setup {
    const char* name;
    bool dlb;
    int degree;
  };
  for (const auto& s : {Setup{"baseline   ", false, 1},
                        Setup{"DLB        ", true, 1},
                        Setup{"DLB + deg 3", true, 3}}) {
    core::RuntimeConfig rcfg;
    rcfg.cluster = sim::ClusterSpec::with_slow_node(8, 16, 0, 0.6);
    rcfg.appranks_per_node = 2;
    rcfg.degree = s.degree;
    rcfg.lewi = s.dlb;
    rcfg.drom = s.dlb;
    rcfg.policy = s.dlb ? core::PolicyKind::Global : core::PolicyKind::None;

    NBodyWorkload wl(cfg);
    core::ClusterRuntime runtime(rcfg);
    const auto r = runtime.run(wl);
    std::printf("%s: %.2f s (perfect %.2f s), offloaded %.1f%%\n", s.name,
                r.makespan, r.perfect_time, 100.0 * r.offload_fraction());
  }
  std::printf("\n(kinetic energy after %d steps: %.4f — the clump is real "
              "physics, not a script)\n",
              cfg.iterations, workload.kinetic_energy());
  return 0;
}
