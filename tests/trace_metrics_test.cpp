// Unit tests for the trace recorder, step series and imbalance metrics.
#include <gtest/gtest.h>

#include "metrics/imbalance.hpp"
#include "trace/recorder.hpp"
#include "trace/step_series.hpp"

namespace tlb {
namespace {

TEST(StepSeries, ValueAtFollowsSteps) {
  trace::StepSeries s;
  s.set(1.0, 2.0);
  s.set(3.0, 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.value_at(1.0), 2.0);
  EXPECT_DOUBLE_EQ(s.value_at(2.9), 2.0);
  EXPECT_DOUBLE_EQ(s.value_at(3.0), 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(100.0), 5.0);
}

TEST(StepSeries, AddAccumulatesDeltas) {
  trace::StepSeries s;
  s.add(0.0, 1.0);
  s.add(1.0, 1.0);
  s.add(2.0, -2.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(1.5), 2.0);
  EXPECT_DOUBLE_EQ(s.value_at(2.5), 0.0);
}

TEST(StepSeries, ExactTimeWeightedAverage) {
  trace::StepSeries s;
  s.set(0.0, 1.0);
  s.set(1.0, 3.0);
  // [0, 2): 1 for 1s, 3 for 1s -> 2.
  EXPECT_DOUBLE_EQ(s.average(0.0, 2.0), 2.0);
  // [0.5, 1.5): 1 for 0.5s, 3 for 0.5s -> 2.
  EXPECT_DOUBLE_EQ(s.average(0.5, 1.5), 2.0);
}

TEST(StepSeries, SameTimestampOverwrites) {
  trace::StepSeries s;
  s.set(1.0, 2.0);
  s.set(1.0, 7.0);
  EXPECT_DOUBLE_EQ(s.value_at(1.0), 7.0);
  EXPECT_EQ(s.change_count(), 1u);
}

TEST(StepSeries, RedundantSetIsCoalesced) {
  trace::StepSeries s;
  s.set(1.0, 2.0);
  s.set(2.0, 2.0);
  EXPECT_EQ(s.change_count(), 1u);
}

TEST(StepSeries, SampleBinsAverage) {
  trace::StepSeries s;
  s.set(0.0, 4.0);
  s.set(2.0, 0.0);
  const auto bins = s.sample(0.0, 4.0, 4);
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_DOUBLE_EQ(bins[0], 4.0);
  EXPECT_DOUBLE_EQ(bins[1], 4.0);
  EXPECT_DOUBLE_EQ(bins[2], 0.0);
  EXPECT_DOUBLE_EQ(bins[3], 0.0);
}

TEST(StepSeries, MaxValue) {
  trace::StepSeries s;
  s.add(0.0, 3.0);
  s.add(1.0, 4.0);
  s.add(2.0, -6.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 7.0);
}

TEST(Recorder, BusyAggregatesPerNode) {
  trace::Recorder rec(2, 2);
  rec.busy_delta(0.0, 0, 0, +1);
  rec.busy_delta(0.0, 0, 1, +1);
  rec.busy_delta(1.0, 0, 0, -1);
  EXPECT_DOUBLE_EQ(rec.node_busy(0).value_at(0.5), 2.0);
  EXPECT_DOUBLE_EQ(rec.node_busy(0).value_at(1.5), 1.0);
  EXPECT_DOUBLE_EQ(rec.busy(0, 0).value_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(rec.node_busy(1).value_at(0.5), 0.0);
}

TEST(Recorder, OffloadStatistics) {
  trace::Recorder rec(2, 1);
  rec.task_executed(0, /*node=*/0, /*home=*/0, 2.0);
  rec.task_executed(0, /*node=*/1, /*home=*/0, 3.0);
  EXPECT_EQ(rec.tasks_total(), 2u);
  EXPECT_EQ(rec.tasks_offloaded(), 1u);
  EXPECT_DOUBLE_EQ(rec.offload_fraction(), 0.6);
}

TEST(Recorder, AsciiSparklineShape) {
  const auto line = trace::ascii_sparkline({0.0, 0.5, 1.0}, 1.0);
  ASSERT_EQ(line.size(), 3u);
  EXPECT_EQ(line.front(), ' ');
  EXPECT_EQ(line.back(), '@');
}

TEST(Recorder, CsvHasHeaderAndRows) {
  trace::StepSeries s;
  s.set(0.0, 1.0);
  const auto csv = trace::to_csv({{"a", &s}}, 0.0, 1.0, 2);
  EXPECT_NE(csv.find("time,a"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Imbalance, PerfectBalanceIsOne) {
  const double loads[] = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(metrics::imbalance(loads), 1.0);
}

TEST(Imbalance, EquationTwo) {
  const double loads[] = {4.0, 1.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(metrics::imbalance(loads), 4.0 / 2.0);
}

TEST(Imbalance, AllZeroLoadsAreBalanced) {
  const double loads[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(metrics::imbalance(loads), 1.0);
}

TEST(Imbalance, MaxEqualsApprankCountWhenOneDoesEverything) {
  const double loads[] = {6.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(metrics::imbalance(loads), 3.0);
}

TEST(Imbalance, NodeSeriesDetectsSkew) {
  trace::StepSeries a;
  trace::StepSeries b;
  a.set(0.0, 4.0);
  b.set(0.0, 0.0);
  b.set(1.0, 4.0);
  const auto series = metrics::node_imbalance_series({&a, &b}, 0.0, 2.0, 2);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 2.0);  // 4 vs 0
  EXPECT_DOUBLE_EQ(series[1], 1.0);  // 4 vs 4
}

TEST(Imbalance, ConvergenceTimeFindsSettlePoint) {
  const std::vector<double> series = {3.0, 2.0, 1.1, 1.05, 1.02, 1.01};
  const double t = metrics::convergence_time(series, 0.0, 6.0, 1.2, 2);
  EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(Imbalance, ConvergenceTimeNeverWhenAlwaysHigh) {
  const std::vector<double> series = {3.0, 2.5, 2.0};
  EXPECT_LT(metrics::convergence_time(series, 0.0, 3.0, 1.2, 1), 0.0);
}

TEST(Imbalance, ConvergenceRequiresHold) {
  const std::vector<double> series = {1.0, 2.0, 1.0};
  // Only the final bin is below threshold: hold=2 not satisfied.
  EXPECT_LT(metrics::convergence_time(series, 0.0, 3.0, 1.2, 2), 0.0);
}

}  // namespace
}  // namespace tlb
