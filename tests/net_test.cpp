// Unit and integration tests for the contention-aware interconnect
// (tlb::net): topology routing, max-min fair sharing, NIC caps, fault
// composition, flow teardown, and the ClusterRuntime net mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/runtime.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace tlb::net {
namespace {

// --- topology ---------------------------------------------------------------

TEST(NetTopology, CrossbarRoutesThroughBothNics) {
  const auto t = NetTopology::crossbar(4, 100.0, 1e-6);
  // inject[n] = 2n, eject[n] = 2n + 1.
  const auto& route = t.route(0, 2);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(route[0], 0);  // nic0.in
  EXPECT_EQ(route[1], 5);  // nic2.out
  EXPECT_EQ(t.link(route[0]).kind, LinkKind::NicInject);
  EXPECT_EQ(t.link(route[1]).kind, LinkKind::NicEject);
  EXPECT_TRUE(t.route(1, 1).empty());
  EXPECT_DOUBLE_EQ(t.path_latency(0, 2), 1e-6);
  EXPECT_TRUE(t.leaf_uplinks().empty());
}

TEST(NetTopology, FatTreeSameLeafStaysUnderLeaf) {
  const auto t = NetTopology::fat_tree(8, 4, 2, 100.0, 200.0, 1e-6, 5e-7);
  EXPECT_EQ(t.leaf_count(), 2);
  EXPECT_EQ(t.leaf_of(3), 0);
  EXPECT_EQ(t.leaf_of(4), 1);
  // Nodes 0 and 3 share leaf 0: two-link path, base latency only.
  const auto& route = t.route(0, 3);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(t.link(route[0]).kind, LinkKind::NicInject);
  EXPECT_EQ(t.link(route[1]).kind, LinkKind::NicEject);
  EXPECT_DOUBLE_EQ(t.path_latency(0, 3), 1e-6);
}

TEST(NetTopology, FatTreeCrossLeafUsesHashedSpine) {
  const auto t = NetTopology::fat_tree(8, 4, 2, 100.0, 200.0, 1e-6, 5e-7);
  const auto& route = t.route(0, 5);  // leaf 0 -> leaf 1
  ASSERT_EQ(route.size(), 4u);
  EXPECT_EQ(t.link(route[0]).kind, LinkKind::NicInject);
  EXPECT_EQ(t.link(route[1]).kind, LinkKind::LeafUp);
  EXPECT_EQ(t.link(route[2]).kind, LinkKind::LeafDown);
  EXPECT_EQ(t.link(route[3]).kind, LinkKind::NicEject);
  // Static per-pair spine hash: (0 * 7919 + 5) % 2 = 1; up link for
  // (leaf 0, spine 1) sits at base + 2 * (0 * spines + 1).
  EXPECT_EQ(route[1], 2 * 8 + 2);
  EXPECT_EQ(t.link(route[1]).name, "leaf0->spine1");
  // Cross-leaf paths pay two switch hops.
  EXPECT_DOUBLE_EQ(t.path_latency(0, 5), 1e-6 + 2 * 5e-7);
  EXPECT_EQ(t.leaf_uplinks().size(), 4u);  // 2 leaves x 2 spines
}

TEST(NetTopology, RoutingIsDeterministic) {
  const auto a = NetTopology::fat_tree(12, 4, 3, 10.0, 20.0, 1e-6, 5e-7);
  const auto b = NetTopology::fat_tree(12, 4, 3, 10.0, 20.0, 1e-6, 5e-7);
  for (int s = 0; s < 12; ++s) {
    for (int d = 0; d < 12; ++d) {
      EXPECT_EQ(a.route(s, d), b.route(s, d)) << s << "->" << d;
    }
  }
}

TEST(NetTopology, InvalidParametersThrow) {
  EXPECT_THROW(NetTopology::crossbar(0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(NetTopology::crossbar(2, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(NetTopology::fat_tree(4, 0, 1, 1.0, 1.0, 0.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(NetTopology::fat_tree(4, 2, 1, 1.0, 0.0, 0.0, 0.0),
               std::invalid_argument);
}

// --- fabric: max-min fair sharing -------------------------------------------

// 100 bytes/s NICs and zero latency make the arithmetic exact.
struct FabricFixture {
  sim::Engine engine;
  std::unique_ptr<Fabric> fabric;

  explicit FabricFixture(NetTopology topo) {
    fabric = std::make_unique<Fabric>(engine, std::move(topo));
  }
  static FabricFixture crossbar(int nodes) {
    return FabricFixture(NetTopology::crossbar(nodes, 100.0, 0.0));
  }
};

TEST(NetFabric, SingleFlowMatchesAnalyticCost) {
  auto f = FabricFixture::crossbar(2);
  double done = -1.0;
  f.fabric->start_flow(0, 1, 1000, [&] { done = f.engine.now(); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(done, 10.0);  // 1000 bytes / 100 B/s
  ASSERT_EQ(f.fabric->completion_times().size(), 1u);
  EXPECT_DOUBLE_EQ(f.fabric->completion_times()[0], 10.0);
}

TEST(NetFabric, TwoFlowBottleneckSharesFairly) {
  // Both flows cross nic1.out: 50 B/s each, both finish at t = 20.
  auto f = FabricFixture::crossbar(3);
  double done_a = -1.0;
  double done_b = -1.0;
  f.fabric->start_flow(0, 1, 1000, [&] { done_a = f.engine.now(); });
  f.fabric->start_flow(2, 1, 1000, [&] { done_b = f.engine.now(); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(done_a, 20.0);
  EXPECT_DOUBLE_EQ(done_b, 20.0);
  // The shared ejection NIC saturated; the injection NICs ran at half.
  EXPECT_DOUBLE_EQ(f.fabric->peak_utilization(3), 1.0);  // nic1.out
  EXPECT_DOUBLE_EQ(f.fabric->peak_utilization(0), 0.5);  // nic0.in
}

TEST(NetFabric, FinishedFlowReleasesBandwidth) {
  // A (500 B) and B (1000 B) share nic1.out at 50 B/s. A completes at
  // t = 10; B then streams its remaining 500 B at the full 100 B/s.
  auto f = FabricFixture::crossbar(3);
  double done_a = -1.0;
  double done_b = -1.0;
  f.fabric->start_flow(0, 1, 500, [&] { done_a = f.engine.now(); });
  f.fabric->start_flow(2, 1, 1000, [&] { done_b = f.engine.now(); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(done_a, 10.0);
  EXPECT_DOUBLE_EQ(done_b, 15.0);
}

TEST(NetFabric, NicInjectionCapSharedAcrossDestinations) {
  // Two flows from node 0 to distinct destinations: the shared injection
  // NIC is the bottleneck (50 B/s each) even though ejection is idle.
  auto f = FabricFixture::crossbar(3);
  double done_a = -1.0;
  double done_b = -1.0;
  f.fabric->start_flow(0, 1, 1000, [&] { done_a = f.engine.now(); });
  f.fabric->start_flow(0, 2, 1000, [&] { done_b = f.engine.now(); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(done_a, 20.0);
  EXPECT_DOUBLE_EQ(done_b, 20.0);
  EXPECT_DOUBLE_EQ(f.fabric->peak_utilization(0), 1.0);  // nic0.in
}

TEST(NetFabric, ThreeFlowMaxMinOnOversubscribedFatTree) {
  // nic = 100 B/s, uplink = 50 B/s, 1 spine. A: 0->2 and B: 1->3 share
  // the leaf0->spine0 uplink (25 B/s each); C: 3->2 stays under leaf 1
  // and gets the max-min residue of nic2.out: 75 B/s.
  FabricFixture f(NetTopology::fat_tree(4, 2, 1, 100.0, 50.0, 0.0, 0.0));
  double done_a = -1.0;
  double done_b = -1.0;
  double done_c = -1.0;
  f.fabric->start_flow(0, 2, 1000, [&] { done_a = f.engine.now(); });
  f.fabric->start_flow(1, 3, 1000, [&] { done_b = f.engine.now(); });
  f.fabric->start_flow(3, 2, 1000, [&] { done_c = f.engine.now(); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(done_a, 40.0);              // 25 B/s on the uplink
  EXPECT_DOUBLE_EQ(done_b, 40.0);
  EXPECT_NEAR(done_c, 1000.0 / 75.0, 1e-9);    // max-min residue
  // p50/p99 of the FCT distribution straddle the two completion groups.
  EXPECT_LT(f.fabric->fct_quantile(0.0), 14.0);
  EXPECT_NEAR(f.fabric->fct_quantile(0.99), 40.0, 0.5);
}

TEST(NetFabric, ZeroByteFlowCostsLatencyAndSkipsFctSamples) {
  FabricFixture f(NetTopology::crossbar(2, 100.0, 2e-6));
  double done = -1.0;
  f.fabric->start_flow(0, 1, 0, [&] { done = f.engine.now(); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(done, 2e-6);
  EXPECT_EQ(f.fabric->flows_completed(), 1u);
  EXPECT_TRUE(f.fabric->completion_times().empty());
}

// --- fabric: fault composition ----------------------------------------------

TEST(NetFabric, GlobalBandwidthFaultSlowsEveryFlow) {
  auto f = FabricFixture::crossbar(2);
  f.fabric->set_global_fault(1.0, 0.5);
  double done = -1.0;
  f.fabric->start_flow(0, 1, 1000, [&] { done = f.engine.now(); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(done, 20.0);  // 50 B/s effective
}

TEST(NetFabric, MidFlightFaultReshapesRemainingBytes) {
  // 1000 B at 100 B/s; at t = 5 (500 B left) the fabric halves: the rest
  // streams at 50 B/s, completing at t = 5 + 10.
  auto f = FabricFixture::crossbar(2);
  double done = -1.0;
  f.fabric->start_flow(0, 1, 1000, [&] { done = f.engine.now(); });
  f.engine.after(5.0, [&] { f.fabric->set_global_fault(1.0, 0.5); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(done, 15.0);
}

TEST(NetFabric, PerLinkDegradationHitsOnlyCrossingFlows) {
  // Degrade nic1.out to 25 B/s: the 0->1 flow slows to 25, the 0->2 flow
  // keeps the injection residue (75 B/s after the degraded flow freezes).
  auto f = FabricFixture::crossbar(3);
  f.fabric->degrade_link(3, 0.25);  // nic1.out
  double done_a = -1.0;
  double done_b = -1.0;
  f.fabric->start_flow(0, 1, 1000, [&] { done_a = f.engine.now(); });
  f.fabric->start_flow(0, 2, 1000, [&] { done_b = f.engine.now(); });
  f.engine.run();
  EXPECT_DOUBLE_EQ(done_a, 40.0);
  EXPECT_NEAR(done_b, 1000.0 / 75.0, 1e-9);
  EXPECT_DOUBLE_EQ(f.fabric->effective_capacity(3), 25.0);
}

// --- fabric: teardown and determinism ---------------------------------------

TEST(NetFabric, CancelMidTransferReleasesBandwidth) {
  // A and B share nic1.out at 50 B/s; A is torn down at t = 5, so B's
  // remaining 750 B stream at 100 B/s: done at t = 12.5. A's callback
  // must never fire.
  auto f = FabricFixture::crossbar(3);
  bool a_fired = false;
  double done_b = -1.0;
  const FlowId a =
      f.fabric->start_flow(0, 1, 1000, [&] { a_fired = true; });
  f.fabric->start_flow(2, 1, 1000, [&] { done_b = f.engine.now(); });
  f.engine.after(5.0, [&] { f.fabric->cancel(a); });
  f.engine.run();
  EXPECT_FALSE(a_fired);
  EXPECT_DOUBLE_EQ(done_b, 12.5);
  EXPECT_EQ(f.fabric->flows_cancelled(), 1u);
  EXPECT_EQ(f.fabric->flows_completed(), 1u);
  // Idempotent: cancelling again (or a completed flow) is a no-op.
  f.fabric->cancel(a);
  EXPECT_EQ(f.fabric->flows_cancelled(), 1u);
}

TEST(NetFabric, IdenticalSchedulesProduceIdenticalTimings) {
  auto run_once = [] {
    FabricFixture f(NetTopology::fat_tree(8, 4, 2, 100.0, 60.0, 1e-6, 5e-7));
    for (int i = 0; i < 6; ++i) {
      f.fabric->start_flow(i % 4, 4 + (i % 3), 1000 + 137 * i, [] {});
    }
    f.engine.after(3.0, [&] {
      f.fabric->start_flow(7, 0, 5000, [] {});
    });
    f.engine.run();
    return f.fabric->completion_times();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), 7u);
  EXPECT_EQ(a, b);  // bitwise-equal doubles
}

// --- ClusterRuntime integration ---------------------------------------------

core::RuntimeConfig net_config(int nodes, int cores, int degree) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(nodes, cores);
  cfg.appranks_per_node = 1;
  cfg.degree = degree;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  cfg.net.enabled = true;
  cfg.net.leaf_radix = 2;
  cfg.net.spines = 1;
  return cfg;
}

apps::SyntheticConfig net_workload(int appranks, std::uint64_t bytes) {
  apps::SyntheticConfig scfg;
  scfg.appranks = appranks;
  scfg.iterations = 2;
  scfg.tasks_per_rank = 24;
  scfg.imbalance = 2.0;
  scfg.bytes_per_task = bytes;
  return scfg;
}

TEST(NetRuntime, DisabledKeepsAnalyticModelAndNoFabric) {
  core::RuntimeConfig cfg = net_config(4, 4, 2);
  cfg.net.enabled = false;
  apps::SyntheticWorkload wl(net_workload(4, 1 << 20));
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  EXPECT_EQ(rt.fabric(), nullptr);
  EXPECT_EQ(r.iteration_times.size(), 2u);
}

TEST(NetRuntime, EnabledRunCompletesAndRoutesTransfersAsFlows) {
  core::RuntimeConfig cfg = net_config(4, 4, 2);
  apps::SyntheticWorkload wl(net_workload(4, 1 << 20));
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  ASSERT_NE(rt.fabric(), nullptr);
  EXPECT_EQ(r.iteration_times.size(), 2u);
  EXPECT_GT(r.tasks_offloaded, 0u);
  EXPECT_GT(rt.fabric()->flows_completed(), 0u);
  EXPECT_GT(rt.fabric()->bytes_delivered(), 0u);
  EXPECT_EQ(rt.fabric()->active_flows(), 0);  // fully drained
  EXPECT_GT(rt.fabric()->fct_quantile(0.5), 0.0);
}

TEST(NetRuntime, EnabledRunsAreDeterministic) {
  auto run_once = [] {
    core::RuntimeConfig cfg = net_config(4, 4, 2);
    apps::SyntheticWorkload wl(net_workload(4, 1 << 20));
    core::ClusterRuntime rt(cfg);
    const auto r = rt.run(wl);
    return std::make_pair(r.makespan, r.events_fired);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);  // bitwise-equal makespans
  EXPECT_EQ(a.second, b.second);
}

TEST(NetRuntime, OversubscriptionSlowsTransfersNotCorrectness) {
  // Same run with a starved uplink: everything still completes, but the
  // congested fabric stretches the flow-completion tail.
  core::RuntimeConfig wide = net_config(4, 4, 2);
  apps::SyntheticWorkload wl1(net_workload(4, 4 << 20));
  core::ClusterRuntime rt_wide(wide);
  const auto r_wide = rt_wide.run(wl1);

  core::RuntimeConfig narrow = net_config(4, 4, 2);
  narrow.net.uplink_bandwidth = narrow.cluster.link.bandwidth / 64.0;
  apps::SyntheticWorkload wl2(net_workload(4, 4 << 20));
  core::ClusterRuntime rt_narrow(narrow);
  const auto r_narrow = rt_narrow.run(wl2);

  // Makespan is not compared: slower transfers also shift scheduling
  // decisions (locality wins more ties), which can offset the congestion.
  // The fabric-level signals are monotone.
  EXPECT_EQ(r_narrow.iteration_times.size(), 2u);
  EXPECT_GT(rt_narrow.fabric()->fct_quantile(0.99),
            rt_wide.fabric()->fct_quantile(0.99));
  double narrow_peak = 0.0;
  double wide_peak = 0.0;
  for (const LinkId l : rt_narrow.fabric()->topology().leaf_uplinks()) {
    narrow_peak = std::max(narrow_peak, rt_narrow.fabric()->peak_utilization(l));
  }
  for (const LinkId l : rt_wide.fabric()->topology().leaf_uplinks()) {
    wide_peak = std::max(wide_peak, rt_wide.fabric()->peak_utilization(l));
  }
  EXPECT_GE(narrow_peak, wide_peak);
  EXPECT_DOUBLE_EQ(narrow_peak, 1.0);  // the starved uplink saturates
}

TEST(NetRuntime, WorkerCrashMidTransferTearsDownFlows) {
  // Starve the NICs so every eager input transfer takes ~1 s, then crash
  // a helper while payloads are streaming towards it: its flows must be
  // cancelled and the tasks re-executed elsewhere.
  core::RuntimeConfig cfg = net_config(4, 4, 3);
  cfg.net.nic_bandwidth = 4.0 * (1 << 20);  // ~1 s per 4 MiB transfer
  cfg.net.uplink_bandwidth = 8.0 * (1 << 20);
  apps::SyntheticWorkload wl(net_workload(4, 4 << 20));
  core::ClusterRuntime rt(cfg);
  const core::WorkerId victim = rt.topology().workers_of_apprank(0)[1];
  ASSERT_FALSE(rt.topology().worker(victim).is_home);
  rt.schedule_external(0.5, [&rt, victim] { rt.crash_worker(victim); });
  const auto r = rt.run(wl);

  EXPECT_EQ(r.workers_crashed, 1u);
  EXPECT_EQ(r.iteration_times.size(), 2u);
  EXPECT_GE(rt.fabric()->flows_cancelled(), 1u);
  EXPECT_GT(r.tasks_reexecuted, 0u);
  EXPECT_EQ(rt.fabric()->active_flows(), 0);
}

TEST(NetRuntime, LinkFaultComposesWithFabric) {
  // Halving the fabric bandwidth mid-run must slow the congested run
  // further and keep it correct.
  core::RuntimeConfig cfg = net_config(4, 4, 2);
  apps::SyntheticWorkload wl1(net_workload(4, 4 << 20));
  core::ClusterRuntime clean(cfg);
  const auto r_clean = clean.run(wl1);

  apps::SyntheticWorkload wl2(net_workload(4, 4 << 20));
  core::ClusterRuntime rt(cfg);
  rt.schedule_external(0.0, [&rt] {
    vmpi::LinkFault fault;
    fault.bandwidth_mult = 0.05;
    rt.set_link_fault(fault);
  });
  const auto r = rt.run(wl2);
  EXPECT_EQ(r.iteration_times.size(), 2u);
  EXPECT_GT(r.makespan, r_clean.makespan);
}

// --- incremental solver ------------------------------------------------------

// The contract of Fabric::set_incremental(true): the dirty-component
// re-solver must produce *bitwise identical* max-min rates to the full
// progressive filling after every arrival and departure (see
// net/fabric.hpp — completion event order may differ, rates may not).
// Drive two fabrics over the same seeded random flow pattern and compare
// every live rate exactly after every mutation.
TEST(NetFabricIncremental, RatesMatchFullSolveUnderRandomChurn) {
  constexpr int kNodes = 32;
  constexpr int kFlows = 600;
  const auto make = [] {
    return NetTopology::fat_tree(kNodes, 8, 2, 100.0, 400.0, 0.0, 0.0);
  };

  sim::Engine full_eng;
  sim::Engine incr_eng;
  Fabric full(full_eng, make());
  Fabric incr(incr_eng, make());
  incr.set_incremental(true);

  // Deterministic churn: bursty arrivals (skewed to a handful of hot
  // destinations so components overlap), sporadic cancels. The engines
  // run sequentially, so audits snapshot the full solver's state as it
  // passes each checkpoint and the incremental run replays against the
  // snapshots.
  std::mt19937_64 rng(0x1722ull);
  std::vector<FlowId> full_ids;
  std::vector<FlowId> incr_ids;
  std::vector<std::vector<std::pair<bool, double>>> audits;
  std::size_t next_audit = 0;
  for (int i = 0; i < kFlows; ++i) {
    const int src = static_cast<int>(rng() % kNodes);
    int dst = static_cast<int>(rng() % (i % 3 == 0 ? 4 : kNodes));
    if (dst == src) dst = (dst + 1) % kNodes;
    const std::uint64_t bytes = 1000 + rng() % 100000;
    const sim::SimTime t = 1e-4 * static_cast<double>(i);
    full_eng.at(t, [&full, &full_ids, src, dst, bytes] {
      full_ids.push_back(full.start_flow(src, dst, bytes, [] {}));
    });
    incr_eng.at(t, [&incr, &incr_ids, src, dst, bytes] {
      incr_ids.push_back(incr.start_flow(src, dst, bytes, [] {}));
    });
    if (i % 5 == 4) {
      const std::size_t victim = rng() % static_cast<std::size_t>(i + 1);
      const sim::SimTime tc = t + 5e-5;
      full_eng.at(tc, [&full, &full_ids, victim] {
        if (victim < full_ids.size()) full.cancel(full_ids[victim]);
      });
      incr_eng.at(tc, [&incr, &incr_ids, victim] {
        if (victim < incr_ids.size()) incr.cancel(incr_ids[victim]);
      });
    }
    // Rate audit after every 16th arrival: every flow either inactive in
    // both fabrics or streaming at the bit-identical max-min rate.
    if (i % 16 == 15) {
      const sim::SimTime ta = t + 7e-5;
      full_eng.at(ta, [&full, &full_ids, &audits] {
        std::vector<std::pair<bool, double>> snap;
        snap.reserve(full_ids.size());
        for (const FlowId id : full_ids) {
          snap.emplace_back(full.active(id), full.flow_rate(id));
        }
        audits.push_back(std::move(snap));
      });
      incr_eng.at(ta, [&incr, &incr_ids, &audits, &next_audit] {
        ASSERT_LT(next_audit, audits.size());
        const auto& snap = audits[next_audit++];
        ASSERT_EQ(snap.size(), incr_ids.size());
        for (std::size_t k = 0; k < snap.size(); ++k) {
          ASSERT_EQ(snap[k].first, incr.active(incr_ids[k])) << "flow " << k;
          ASSERT_EQ(snap[k].second, incr.flow_rate(incr_ids[k]))
              << "flow " << k;
        }
      });
    }
  }
  full_eng.run();
  incr_eng.run();
  EXPECT_EQ(next_audit, audits.size());

  // Identical end state: everything drained, same completion times.
  EXPECT_EQ(full.active_flows(), 0);
  EXPECT_EQ(incr.active_flows(), 0);
  ASSERT_EQ(full.completion_times().size(), incr.completion_times().size());
  // Completion *times* agree pairwise after sorting. Rates are bitwise
  // identical, but remaining-byte settling telescopes differently (the
  // full solve re-settles every flow at every event, the incremental one
  // only on touch), so completion instants can drift by rounding — never
  // by more than a few ulps of simulated time.
  std::vector<double> fct_full = full.completion_times();
  std::vector<double> fct_incr = incr.completion_times();
  std::sort(fct_full.begin(), fct_full.end());
  std::sort(fct_incr.begin(), fct_incr.end());
  for (std::size_t k = 0; k < fct_full.size(); ++k) {
    EXPECT_NEAR(fct_full[k], fct_incr[k], 1e-9 * (1.0 + fct_full[k]))
        << "fct " << k;
  }
  // The point of the mode: strictly less solver work per event.
  EXPECT_EQ(full.solver_runs(), incr.solver_runs());
  EXPECT_LT(incr.solver_flows_touched(), full.solver_flows_touched());
  EXPECT_LT(incr.solver_links_touched(), full.solver_links_touched());
}

// Mid-run fault changes always fall back to the full solve; toggling the
// mode mid-run keeps the per-link index coherent.
TEST(NetFabricIncremental, FaultsAndTogglesStayCoherent) {
  sim::Engine eng;
  Fabric fab(eng, NetTopology::crossbar(4, 100.0, 0.0));
  fab.set_incremental(true);
  double done_a = -1.0;
  double done_b = -1.0;
  fab.start_flow(0, 1, 1000, [&] { done_a = eng.now(); });
  fab.start_flow(2, 1, 1000, [&] { done_b = eng.now(); });
  eng.at(5.0, [&] { fab.set_global_fault(1.0, 0.5); });  // full recompute
  eng.at(10.0, [&] { fab.set_incremental(false); });
  eng.run();
  // 0..5 s at 50 B/s (250 B), then 25 B/s: remaining 750 B in 30 s.
  EXPECT_DOUBLE_EQ(done_a, 35.0);
  EXPECT_DOUBLE_EQ(done_b, 35.0);
  EXPECT_EQ(fab.active_flows(), 0);
}

}  // namespace
}  // namespace tlb::net
