// Tests of the host-side engine self-profiler (tlb::prof): the
// record-only contract (golden schedule fingerprints bit-identical with
// profiling on), phase-tree accounting invariants (inclusive >=
// exclusive, parent >= sum of children), per-subsystem allocation
// counters balancing to zero after runtime teardown, health-snapshot
// shape and self-thinning, collapsed-stack export format, and the
// disabled path recording nothing at all.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "core/runtime.hpp"
#include "prof/prof.hpp"

namespace {

using namespace tlb;

// --- golden fingerprints (shared with tests/sched_test.cpp) ------------------

std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

std::uint64_t bits_of(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

std::uint64_t schedule_fingerprint(const core::ClusterRuntime& rt,
                                   const core::RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  const nanos::TaskPool& pool = rt.tasks();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const nanos::Task& t = pool.get(static_cast<nanos::TaskId>(i));
    h = fp_mix(h, t.id);
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.scheduled_node)));
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.executed_worker)));
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.executed_core)));
    h = fp_mix(h, static_cast<std::uint64_t>(t.executions));
    h = fp_mix(h, bits_of(t.start_at));
    h = fp_mix(h, bits_of(t.finish_at));
  }
  h = fp_mix(h, bits_of(r.makespan));
  h = fp_mix(h, r.events_fired);
  return h;
}

// Captured in tests/sched_test.cpp from the pre-obs binary; the profiler
// only records host time — it must not move them.
constexpr std::uint64_t kGoldenPlain = 0x5515139c5bf2c300ull;

core::RuntimeConfig plain_config() {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 8);
  cfg.appranks_per_node = 2;
  cfg.degree = 3;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  return cfg;
}

apps::SyntheticConfig plain_workload() {
  apps::SyntheticConfig cfg;
  cfg.appranks = 8;
  cfg.imbalance = 1.8;
  cfg.iterations = 3;
  cfg.tasks_per_rank = 40;
  return cfg;
}

core::RuntimeConfig net_config() {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 4);
  cfg.appranks_per_node = 1;
  cfg.degree = 2;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  cfg.net.enabled = true;
  cfg.net.leaf_radix = 2;
  cfg.net.spines = 1;
  return cfg;
}

apps::SyntheticConfig net_workload() {
  apps::SyntheticConfig cfg;
  cfg.appranks = 4;
  cfg.iterations = 2;
  cfg.tasks_per_rank = 24;
  cfg.imbalance = 2.0;
  cfg.bytes_per_task = 1 << 20;
  return cfg;
}

core::RuntimeConfig with_prof(core::RuntimeConfig cfg,
                              std::uint64_t stride = 256) {
  cfg.prof.enabled = true;
  cfg.prof.snapshot_every_events = stride;
  return cfg;
}

/// The profiler is process-global; every test starts from a clean slate
/// and leaves it disabled so the rest of the suite stays on the no-op
/// path (the record-only tests in other files depend on that).
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::Profiler::instance().disable();
    prof::Profiler::instance().reset();
  }
  void TearDown() override {
    prof::Profiler::instance().disable();
    prof::Profiler::instance().reset();
  }
};

// --- record-only contract ----------------------------------------------------

TEST_F(ProfTest, GoldenScheduleBitIdenticalWithProfilingOn) {
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(with_prof(plain_config()));
  ASSERT_TRUE(prof::enabled());
  EXPECT_EQ(schedule_fingerprint(rt, rt.run(wl)), kGoldenPlain);
}

TEST_F(ProfTest, NetScheduleIdenticalProfOnVsOff) {
  std::uint64_t fp_off = 0;
  {
    apps::SyntheticWorkload wl(net_workload());
    core::ClusterRuntime rt(net_config());
    EXPECT_FALSE(prof::enabled());
    fp_off = schedule_fingerprint(rt, rt.run(wl));
  }
  std::uint64_t fp_on = 0;
  {
    apps::SyntheticWorkload wl(net_workload());
    core::ClusterRuntime rt(with_prof(net_config()));
    EXPECT_TRUE(prof::enabled());
    fp_on = schedule_fingerprint(rt, rt.run(wl));
  }
  EXPECT_EQ(fp_on, fp_off);
}

// --- phase tree --------------------------------------------------------------

TEST_F(ProfTest, PhaseTreeInvariantsHold) {
  apps::SyntheticWorkload wl(net_workload());
  core::ClusterRuntime rt(with_prof(net_config()));
  rt.run(wl);

  auto& p = prof::Profiler::instance();
  const std::vector<prof::PhaseNode>& nodes = p.phases();
  ASSERT_FALSE(nodes.empty());

  // Per-node: time attributed to children never exceeds the node's own
  // inclusive time (exclusive_ns() clamps, so check the raw fields).
  std::vector<std::uint64_t> child_sum(nodes.size(), 0);
  for (const prof::PhaseNode& n : nodes) {
    EXPECT_GT(n.calls, 0u) << n.name;
    EXPECT_LE(n.child_ns, n.inclusive_ns) << n.name;
    EXPECT_EQ(n.exclusive_ns(), n.inclusive_ns - n.child_ns) << n.name;
    if (n.parent >= 0) {
      child_sum[static_cast<std::size_t>(n.parent)] += n.inclusive_ns;
    }
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_LE(child_sum[i], nodes[i].inclusive_ns) << nodes[i].name;
    EXPECT_EQ(child_sum[i], nodes[i].child_ns) << nodes[i].name;
  }

  // The engine hot path and the solver must have been attributed.
  auto has = [&](const char* name) {
    for (const prof::PhaseNode& n : nodes) {
      if (std::strcmp(n.name, name) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("engine.pop"));
  EXPECT_TRUE(has("engine.dispatch"));
  EXPECT_TRUE(has("core.construct"));
  EXPECT_TRUE(has("core.start"));
  EXPECT_TRUE(has("sched.pick"));
  EXPECT_GT(p.total_ns("net.solve"), 0u);

  // Attribution never exceeds elapsed wall time.
  EXPECT_LE(p.attributed_ns(), p.wall_ns());
}

TEST_F(ProfTest, CollapsedStacksAreWellFormed) {
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(with_prof(plain_config()));
  rt.run(wl);

  const std::string folded = prof::Profiler::instance().collapsed_stacks();
  ASSERT_FALSE(folded.empty());
  std::size_t start = 0;
  bool saw_nested = false;
  while (start < folded.size()) {
    std::size_t end = folded.find('\n', start);
    if (end == std::string::npos) end = folded.size();
    const std::string line = folded.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    // "<path>[;<path>...] <micros>" — one space, positive integer value.
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    EXPECT_NE(line.front(), ';') << line;
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    for (char c : value) EXPECT_TRUE(c >= '0' && c <= '9') << line;
    EXPECT_GT(std::stoull(value), 0u) << line;
    if (line.find(';') != std::string::npos) saw_nested = true;
  }
  EXPECT_TRUE(saw_nested);  // dispatch work nests under engine.dispatch
}

// --- allocation accounting ---------------------------------------------------

TEST_F(ProfTest, AllocCountersBalanceToZeroAfterTeardown) {
  {
    apps::SyntheticWorkload wl(net_workload());
    core::ClusterRuntime rt(with_prof(net_config()));
    rt.run(wl);
    // Mid-run charges were made: peaks must be visible with the runtime
    // still alive.
    bool any_peak = false;
    for (const prof::TagStats& t : prof::Profiler::instance().alloc_stats()) {
      if (t.peak_bytes > 0) any_peak = true;
    }
    EXPECT_TRUE(any_peak);
  }
  // Every charge released: destructors return exactly what was noted.
  for (const prof::TagStats& t : prof::Profiler::instance().alloc_stats()) {
    EXPECT_EQ(t.alive_bytes, 0) << t.tag;
    EXPECT_GE(t.peak_bytes, 0) << t.tag;
  }
  // The tags this workload exercises all saw traffic.
  auto peak_of = [](const char* tag) {
    for (const prof::TagStats& t : prof::Profiler::instance().alloc_stats()) {
      if (std::strcmp(t.tag, tag) == 0) return t.peak_bytes;
    }
    return std::int64_t{-1};
  };
  EXPECT_GT(peak_of("sim.event"), 0);
  EXPECT_GT(peak_of("nanos.task"), 0);
  EXPECT_GT(peak_of("net.flow"), 0);
  EXPECT_GT(peak_of("core.exec"), 0);
  EXPECT_GT(peak_of("core.pending"), 0);
}

// --- health snapshots --------------------------------------------------------

TEST_F(ProfTest, SnapshotsRecordEngineHealth) {
  apps::SyntheticWorkload wl(net_workload());
  core::ClusterRuntime rt(with_prof(net_config(), /*stride=*/64));
  const core::RunResult r = rt.run(wl);

  auto& p = prof::Profiler::instance();
  const std::vector<prof::HealthSnapshot>& snaps = p.snapshots();
  ASSERT_FALSE(snaps.empty());
  std::uint64_t prev_events = 0;
  for (const prof::HealthSnapshot& s : snaps) {
    EXPECT_GT(s.events_fired, prev_events);
    prev_events = s.events_fired;
    EXPECT_GE(s.wall_s, 0.0);
    EXPECT_GE(s.events_per_sec, 0.0);
    EXPECT_GE(s.rss_mb, 0.0);      // zero off-Linux, positive otherwise
    EXPECT_GE(s.rss_hwm_mb, 0.0);
    EXPECT_GE(s.attributed_ns, s.solve_ns);
  }
  EXPECT_LE(snaps.back().events_fired, r.events_fired);
}

TEST_F(ProfTest, SnapshotBufferSelfThins) {
  // Stride 1 on a run with thousands of events would record one snapshot
  // per event without the cap; thinning must keep the buffer bounded and
  // grow the stride instead.
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(with_prof(plain_config(), /*stride=*/1));
  rt.run(wl);

  auto& p = prof::Profiler::instance();
  EXPECT_LE(p.snapshots().size(), 512u);
  EXPECT_GT(p.snapshot_stride(), 1u);
}

TEST_F(ProfTest, JsonExportHasExpectedShape) {
  apps::SyntheticWorkload wl(net_workload());
  core::ClusterRuntime rt(with_prof(net_config(), /*stride=*/64));
  rt.run(wl);

  const std::string json = prof::Profiler::instance().to_json();
  for (const char* key :
       {"\"wall_s\"", "\"attributed_ns\"", "\"unattributed_share\"",
        "\"phases\"", "\"alloc\"", "\"snapshot_stride\"", "\"snapshots\"",
        "\"path\"", "\"calls\"", "\"inclusive_ns\"", "\"exclusive_ns\"",
        "\"tag\"", "\"alive_bytes\"", "\"peak_bytes\"",
        "\"events_per_sec\"", "\"queue_depth\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

// --- disabled path -----------------------------------------------------------

TEST_F(ProfTest, DisabledPathRecordsNothing) {
  apps::SyntheticWorkload wl(net_workload());
  core::ClusterRuntime rt(net_config());  // prof off (default)
  rt.run(wl);

  auto& p = prof::Profiler::instance();
  EXPECT_FALSE(prof::enabled());
  EXPECT_TRUE(p.phases().empty());
  EXPECT_TRUE(p.snapshots().empty());
  for (const prof::TagStats& t : p.alloc_stats()) {
    EXPECT_EQ(t.alive_bytes, 0) << t.tag;
    EXPECT_EQ(t.peak_bytes, 0) << t.tag;
    EXPECT_EQ(t.allocs, 0u) << t.tag;
    EXPECT_EQ(t.frees, 0u) << t.tag;
  }
  // Scopes constructed while disabled never touch the tree.
  { PROF_SCOPE("test.should_not_record"); }
  EXPECT_TRUE(p.phases().empty());
}

}  // namespace
