// Unit tests for topology construction and DROM ownership policies.
#include <gtest/gtest.h>

#include <numeric>

#include "core/policies.hpp"
#include "core/topology.hpp"
#include "graph/expander.hpp"

namespace tlb::core {
namespace {

graph::ExpanderResult make_graph(int nodes, int per_node, int degree,
                                 std::uint64_t seed = 1) {
  return graph::build_expander({.nodes = nodes,
                                .appranks_per_node = per_node,
                                .degree = degree,
                                .seed = seed});
}

void check_plan(const Topology& topo, const std::vector<int>& cores,
                const OwnershipPlan& plan) {
  ASSERT_EQ(plan.size(), static_cast<std::size_t>(topo.node_count()));
  for (int n = 0; n < topo.node_count(); ++n) {
    int sum = 0;
    ASSERT_EQ(plan[static_cast<std::size_t>(n)].size(),
              topo.workers_on_node(n).size());
    for (const auto& [w, count] : plan[static_cast<std::size_t>(n)]) {
      EXPECT_GE(count, 1);
      EXPECT_EQ(topo.worker(w).node, n);
      sum += count;
    }
    EXPECT_EQ(sum, cores[static_cast<std::size_t>(n)]);
  }
}

TEST(Topology, WorkerTablesAreConsistent) {
  const auto ex = make_graph(4, 2, 3);
  const Topology topo(ex.graph, 2);
  EXPECT_EQ(topo.apprank_count(), 8);
  EXPECT_EQ(topo.node_count(), 4);
  EXPECT_EQ(topo.worker_count(), 8 * 3);
  for (int a = 0; a < topo.apprank_count(); ++a) {
    const auto& ws = topo.workers_of_apprank(a);
    EXPECT_EQ(ws.size(), 3u);
    EXPECT_TRUE(topo.worker(ws.front()).is_home);
    EXPECT_EQ(topo.home_node(a), a / 2);
    for (WorkerId w : ws) EXPECT_EQ(topo.worker(w).apprank, a);
  }
  int resident_total = 0;
  for (int n = 0; n < topo.node_count(); ++n) {
    resident_total += static_cast<int>(topo.workers_on_node(n).size());
  }
  EXPECT_EQ(resident_total, topo.worker_count());
}

TEST(Topology, WorkerOfLookup) {
  const auto ex = make_graph(4, 1, 2);
  const Topology topo(ex.graph, 1);
  for (int a = 0; a < 4; ++a) {
    for (int n : ex.graph.neighbors_of_left(a)) {
      const WorkerId w = topo.worker_of(a, n);
      ASSERT_GE(w, 0);
      EXPECT_EQ(topo.worker(w).node, n);
    }
    EXPECT_EQ(topo.worker_of(a, 99), -1);
  }
}

TEST(InitialPlan, HelpersGetOneCoreAppranksSplitRest) {
  const auto ex = make_graph(4, 2, 3);  // node degree 6: 2 homes + 4 helpers
  const Topology topo(ex.graph, 2);
  const std::vector<int> cores(4, 48);
  const auto plan = initial_plan(topo, cores);
  check_plan(topo, cores, plan);
  for (int n = 0; n < 4; ++n) {
    for (const auto& [w, count] : plan[static_cast<std::size_t>(n)]) {
      if (topo.worker(w).is_home) {
        EXPECT_EQ(count, 22);  // paper §5.4: (48 - 4 helpers) / 2
      } else {
        EXPECT_EQ(count, 1);
      }
    }
  }
}

TEST(InitialPlan, DegreeOneGivesEverythingToAppranks) {
  const auto ex = make_graph(2, 2, 1);
  const Topology topo(ex.graph, 2);
  const std::vector<int> cores(2, 17);
  const auto plan = initial_plan(topo, cores);
  check_plan(topo, cores, plan);
  // 17 cores over 2 appranks: 9 + 8.
  EXPECT_EQ(plan[0][0].second + plan[0][1].second, 17);
}

TEST(LocalPlan, ProportionalToBusy) {
  const auto ex = make_graph(2, 2, 1);
  const Topology topo(ex.graph, 2);
  const std::vector<int> cores(2, 16);
  // Node 0: worker 0 busy 12, worker 1 busy 4 -> 12:4 split of 16.
  std::vector<double> busy(static_cast<std::size_t>(topo.worker_count()), 0.0);
  busy[0] = 12.0;
  busy[1] = 4.0;
  const auto plan = local_convergence_plan(topo, cores, busy);
  check_plan(topo, cores, plan);
  EXPECT_EQ(plan[0][0].second, 12);
  EXPECT_EQ(plan[0][1].second, 4);
}

TEST(LocalPlan, ZeroBusySplitsEvenly) {
  const auto ex = make_graph(1, 2, 1);
  const Topology topo(ex.graph, 2);
  const std::vector<int> cores{10};
  const std::vector<double> busy(2, 0.0);
  const auto plan = local_convergence_plan(topo, cores, busy);
  check_plan(topo, cores, plan);
  EXPECT_EQ(plan[0][0].second, 5);
  EXPECT_EQ(plan[0][1].second, 5);
}

TEST(LocalPlan, EveryWorkerKeepsOneCore) {
  const auto ex = make_graph(4, 1, 4);
  const Topology topo(ex.graph, 1);
  const std::vector<int> cores(4, 8);
  std::vector<double> busy(static_cast<std::size_t>(topo.worker_count()), 0.0);
  busy[0] = 100.0;  // apprank 0's home worker hogs everything
  const auto plan = local_convergence_plan(topo, cores, busy);
  check_plan(topo, cores, plan);
}

TEST(LocalPlan, IsNodeLocal) {
  // Changing busy values on node 1 must not affect node 0's plan.
  const auto ex = make_graph(2, 1, 1);
  const Topology topo(ex.graph, 1);
  const std::vector<int> cores(2, 8);
  std::vector<double> busy_a = {4.0, 1.0};
  std::vector<double> busy_b = {4.0, 7.0};
  const auto plan_a = local_convergence_plan(topo, cores, busy_a);
  const auto plan_b = local_convergence_plan(topo, cores, busy_b);
  EXPECT_EQ(plan_a[0], plan_b[0]);
}

TEST(GlobalPlan, MovesCoresTowardLoadedApprank) {
  const auto ex = make_graph(2, 1, 2);
  const Topology topo(ex.graph, 1);
  const std::vector<int> cores(2, 16);
  // Apprank 0 busy on its home worker; apprank 1 idle.
  std::vector<double> busy(static_cast<std::size_t>(topo.worker_count()), 0.0);
  busy[static_cast<std::size_t>(topo.home_worker(0))] = 15.0;
  const auto plan = global_solver_plan(topo, cores, busy);
  check_plan(topo, cores, plan);
  // Apprank 0 should own nearly all cores on both nodes.
  int apprank0_total = 0;
  for (const auto& node_plan : plan) {
    for (const auto& [w, count] : node_plan) {
      if (topo.worker(w).apprank == 0) apprank0_total += count;
    }
  }
  EXPECT_GE(apprank0_total, 28);
}

TEST(GlobalPlan, BalancedBusyKeepsCoresHome) {
  const auto ex = make_graph(2, 1, 2);
  const Topology topo(ex.graph, 1);
  const std::vector<int> cores(2, 16);
  std::vector<double> busy(static_cast<std::size_t>(topo.worker_count()), 0.0);
  busy[static_cast<std::size_t>(topo.home_worker(0))] = 10.0;
  busy[static_cast<std::size_t>(topo.home_worker(1))] = 10.0;
  const auto plan = global_solver_plan(topo, cores, busy);
  check_plan(topo, cores, plan);
  // Helpers stay at their 1-core floor: no offloading when balanced.
  for (const auto& node_plan : plan) {
    for (const auto& [w, count] : node_plan) {
      if (!topo.worker(w).is_home) {
        EXPECT_EQ(count, 1);
      }
    }
  }
}

TEST(GlobalPlan, RespectsAdjacency) {
  const auto ex = make_graph(8, 1, 2, /*seed=*/5);
  const Topology topo(ex.graph, 1);
  const std::vector<int> cores(8, 8);
  std::vector<double> busy(static_cast<std::size_t>(topo.worker_count()), 1.0);
  busy[static_cast<std::size_t>(topo.home_worker(3))] = 50.0;
  const auto plan = global_solver_plan(topo, cores, busy);
  check_plan(topo, cores, plan);
  // Every (worker, count) pair references a worker resident on that node —
  // check_plan verified it; additionally apprank 3 owns cores only on its
  // adjacent nodes by construction of the worker set.
  for (int n = 0; n < 8; ++n) {
    for (const auto& [w, count] : plan[static_cast<std::size_t>(n)]) {
      if (topo.worker(w).apprank == 3 && count > 1) {
        EXPECT_TRUE(ex.graph.has_edge(3, n)) << "node " << n;
      }
    }
  }
}

}  // namespace
}  // namespace tlb::core
