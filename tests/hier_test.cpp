// Tests of the hierarchical two-level scheduler (tlb::hier): LocalMaster
// summary maintenance, GlobalBalancer victim selection over summaries,
// end-to-end runs proving the disabled default stays bit-identical to the
// golden schedule while the enabled path completes with a bounded
// per-decision probe cost, and the xDS control-plane hot-swap of the
// scheduling policy (ACK / NACK / rollback, mid-run).
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "core/policies.hpp"
#include "core/runtime.hpp"
#include "elastic/xds.hpp"
#include "graph/expander.hpp"
#include "hier/global_balancer.hpp"
#include "hier/hier_scheduler.hpp"
#include "hier/local_master.hpp"
#include "obs/metrics.hpp"
#include "sched/config.hpp"

namespace {

using namespace tlb;

// Same minimal fake as sched_test.cpp: a real (small) expander topology
// with settable in-flight counts, ownership, liveness and clock.
class FakeView final : public sched::RuntimeView {
 public:
  explicit FakeView(int nodes = 3, int degree = 3) {
    graph::ExpanderParams p;
    p.nodes = nodes;
    p.appranks_per_node = 1;
    p.degree = degree;
    p.seed = 1;
    expander_ = graph::build_expander(p);
    topo_ = std::make_unique<core::Topology>(expander_.graph, 1);
    inflight_.assign(static_cast<std::size_t>(topo_->worker_count()), 0);
    owned_.assign(static_cast<std::size_t>(topo_->worker_count()), 2);
    usable_.assign(static_cast<std::size_t>(topo_->worker_count()), 1);
    for (int a = 0; a < topo_->apprank_count(); ++a) {
      locs_.push_back(
          std::make_unique<nanos::DataLocations>(topo_->home_node(a)));
    }
  }

  [[nodiscard]] const core::Topology& topology() const override {
    return *topo_;
  }
  [[nodiscard]] bool usable(core::WorkerId w) const override {
    return usable_[static_cast<std::size_t>(w)] != 0;
  }
  [[nodiscard]] int inflight(core::WorkerId w) const override {
    return inflight_[static_cast<std::size_t>(w)];
  }
  [[nodiscard]] int owned_cores(core::WorkerId w) const override {
    return owned_[static_cast<std::size_t>(w)];
  }
  [[nodiscard]] int inflight_per_core() const override { return 2; }
  [[nodiscard]] const nanos::DataLocations& locations(
      int apprank) const override {
    return *locs_[static_cast<std::size_t>(apprank)];
  }
  [[nodiscard]] sim::SimTime now() const override { return now_; }
  [[nodiscard]] const net::LinkLoadView* link_load() const override {
    return nullptr;
  }

  /// Every worker of `node` gets this in-flight count.
  void set_node_inflight(int node, int n) {
    for (const core::WorkerId w : topo_->workers_on_node(node)) {
      inflight_[static_cast<std::size_t>(w)] = n;
    }
  }

  sim::SimTime now_ = 0.0;
  std::vector<int> inflight_;
  std::vector<int> owned_;
  std::vector<char> usable_;

 private:
  graph::ExpanderResult expander_;
  std::unique_ptr<core::Topology> topo_;
  std::vector<std::unique_ptr<nanos::DataLocations>> locs_;
};

// Golden fingerprint (same FNV-1a as sched_test.cpp): proves the hier
// subsystem's *presence* changes nothing while it is disabled.
std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

std::uint64_t bits_of(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

std::uint64_t schedule_fingerprint(const core::ClusterRuntime& rt,
                                   const core::RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  const nanos::TaskPool& pool = rt.tasks();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const nanos::Task& t = pool.get(static_cast<nanos::TaskId>(i));
    h = fp_mix(h, t.id);
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.scheduled_node)));
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.executed_worker)));
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.executed_core)));
    h = fp_mix(h, static_cast<std::uint64_t>(t.executions));
    h = fp_mix(h, bits_of(t.start_at));
    h = fp_mix(h, bits_of(t.finish_at));
  }
  h = fp_mix(h, bits_of(r.makespan));
  h = fp_mix(h, r.events_fired);
  return h;
}

constexpr std::uint64_t kGoldenPlain = 0x5515139c5bf2c300ull;

core::RuntimeConfig plain_config() {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 8);
  cfg.appranks_per_node = 2;
  cfg.degree = 3;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  return cfg;
}

apps::SyntheticConfig plain_workload() {
  apps::SyntheticConfig cfg;
  cfg.appranks = 8;
  cfg.imbalance = 1.8;
  cfg.iterations = 3;
  cfg.tasks_per_rank = 40;
  return cfg;
}

// --- LocalMaster --------------------------------------------------------------

TEST(LocalMaster, RefreshBuildsSummaryAndChargesTheWalk) {
  FakeView view;  // 3 nodes all-to-all: 3 workers per node, 2 cores each
  hier::LocalMaster m(0);
  EXPECT_FALSE(m.fresh(0.0, 1.0));  // never refreshed = always stale

  const std::uint64_t probes = m.refresh(view, 0.0);
  // Per worker: the in-flight read + the owned-core registry scan — the
  // same accounting under_threshold() charges a flat policy per probe.
  EXPECT_EQ(probes, 3u * (1u + 2u));
  EXPECT_EQ(m.refreshes(), 1u);
  EXPECT_TRUE(m.fresh(0.0, 1.0));
  EXPECT_FALSE(m.fresh(1.5, 1.0));  // aged out

  const hier::NodeSummary& s = m.summary();
  EXPECT_EQ(s.node, 0);
  ASSERT_EQ(s.workers.size(), 3u);
  // slack = inflight_per_core * owned - inflight = 2*2 - 0 per worker.
  EXPECT_EQ(s.total_slack, 12);
  EXPECT_DOUBLE_EQ(s.load_ratio, 0.0);

  // Load shows up in the aggregate on the next refresh.
  view.set_node_inflight(0, 3);
  m.refresh(view, 2.0);
  EXPECT_EQ(m.summary().total_slack, 3);  // (4-3) x 3 workers
  EXPECT_DOUBLE_EQ(m.summary().load_ratio, 9.0 / 6.0);
}

TEST(LocalMaster, NotePlacedDecrementsSlackOptimistically) {
  FakeView view;
  hier::LocalMaster m(0);
  m.refresh(view, 0.0);
  const core::WorkerId w = view.topology().workers_on_node(0)[0];
  ASSERT_EQ(m.summary().total_slack, 12);

  m.note_placed(w);
  EXPECT_EQ(m.summary().total_slack, 11);
  // The decrement is per worker, so the same worker drains first.
  m.note_placed(w);
  m.note_placed(w);
  m.note_placed(w);
  EXPECT_EQ(m.summary().total_slack, 8);
  // An unknown worker (joined after the refresh) is ignored, not UB.
  m.note_placed(999);
  EXPECT_EQ(m.summary().total_slack, 8);
}

// --- GlobalBalancer -----------------------------------------------------------

TEST(GlobalBalancer, PlacesAtHomeWhileItHasSlack) {
  FakeView view;
  hier::GlobalBalancer gb(hier::HierConfig{}, sched::SchedConfig{}, view);
  sched::SchedStats stats;
  nanos::Task t;
  t.apprank = 0;
  const core::WorkerId home = view.topology().home_worker(0);

  // Home has slack 4; the first four picks go home on optimistic
  // decrements with no re-refresh (the clock never moves).
  for (int i = 0; i < 4; ++i) {
    const sched::Decision d = gb.pick(t, stats);
    EXPECT_EQ(d.worker, home);
    EXPECT_EQ(d.kind, sched::DecisionKind::Baseline);
  }
  // The fifth pick sees home exhausted and steers to a remote candidate.
  const sched::Decision d = gb.pick(t, stats);
  EXPECT_NE(d.worker, home);
  EXPECT_GE(d.worker, 0);
  EXPECT_EQ(d.kind, sched::DecisionKind::Steered);
  EXPECT_EQ(stats.decisions, 5u);
  EXPECT_EQ(stats.offloads_steered, 1u);
  // Exactly one refresh per consulted node happened (summaries stayed
  // fresh): the per-decision probe cost is the summary reads.
  EXPECT_EQ(gb.summary_refreshes(), gb.master_count());
}

TEST(GlobalBalancer, SteersToTheLeastLoadedRemoteNode) {
  FakeView view;
  view.set_node_inflight(0, 4);  // home saturated (slack 0)
  view.set_node_inflight(1, 3);  // load_ratio 1.5
  view.set_node_inflight(2, 1);  // load_ratio 0.5 <- expected victim
  hier::GlobalBalancer gb(hier::HierConfig{}, sched::SchedConfig{}, view);
  sched::SchedStats stats;
  nanos::Task t;
  t.apprank = 0;

  const sched::Decision d = gb.pick(t, stats);
  EXPECT_EQ(d.kind, sched::DecisionKind::Steered);
  EXPECT_EQ(view.topology().worker(d.worker).node, 2);
  EXPECT_EQ(stats.offloads_considered, 1u);
}

TEST(GlobalBalancer, StaleSummaryNeverBeatsTheLiveLivenessCheck) {
  FakeView view;
  hier::HierConfig hconf;
  hconf.summary_period = 100.0;  // summaries effectively never expire
  hier::GlobalBalancer gb(hconf, sched::SchedConfig{}, view);
  sched::SchedStats stats;
  nanos::Task t;
  t.apprank = 0;

  // Prime every summary with full slack...
  (void)gb.pick(t, stats);
  // ...then saturate home and kill the remotes *without* a refresh: the
  // summaries still promise slack everywhere, but the live usable() check
  // must win and the task must be held centrally.
  view.set_node_inflight(0, 4);
  const core::WorkerId home = view.topology().home_worker(0);
  for (const core::WorkerId w : view.topology().workers_of_apprank(0)) {
    if (w != home) view.usable_[static_cast<std::size_t>(w)] = 0;
  }
  // Drain home's optimistic slack (3 left after the priming pick).
  for (int i = 0; i < 3; ++i) (void)gb.pick(t, stats);
  const sched::Decision d = gb.pick(t, stats);
  EXPECT_EQ(d.worker, -1);
  EXPECT_EQ(d.kind, sched::DecisionKind::Baseline);
}

TEST(GlobalBalancer, HotHelperNodesAreVetoedAsSuppressed) {
  FakeView view;
  view.set_node_inflight(0, 4);  // home saturated, remotes have slack
  hier::GlobalBalancer gb(hier::HierConfig{}, sched::SchedConfig{}, view);
  sched::SchedStats stats;
  nanos::Task t;
  t.apprank = 0;

  // Tasks on the remote nodes observed long queue waits; home saw none.
  const core::WorkerId home = view.topology().home_worker(0);
  for (const core::WorkerId w : view.topology().workers_of_apprank(0)) {
    if (w != home) gb.on_task_started(w, 1.0);
  }
  const sched::Decision d = gb.pick(t, stats);
  EXPECT_EQ(d.worker, -1);
  EXPECT_EQ(d.kind, sched::DecisionKind::Suppressed);
  EXPECT_EQ(stats.offloads_suppressed, 1u);

  // The wait estimates decay: much later the same nodes are candidates
  // again (idle-then-bursty nodes are not judged by stale samples).
  view.now_ = 1000.0;
  const sched::Decision later = gb.pick(t, stats);
  EXPECT_EQ(later.kind, sched::DecisionKind::Steered);
}

// --- end-to-end ---------------------------------------------------------------

TEST(HierScheduler, DisabledDefaultStaysBitIdenticalToGolden) {
  core::RuntimeConfig cfg = plain_config();
  EXPECT_FALSE(cfg.hier.enabled);
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  EXPECT_EQ(schedule_fingerprint(rt, rt.run(wl)), kGoldenPlain);
}

TEST(HierScheduler, EnabledRunCompletesWithBoundedProbeCost) {
  apps::SyntheticWorkload wl_base(plain_workload());
  core::ClusterRuntime base_rt(plain_config());
  const auto base = base_rt.run(wl_base);

  core::RuntimeConfig cfg = plain_config();
  cfg.hier.enabled = true;
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);

  EXPECT_EQ(r.sched_policy, "hier");
  EXPECT_EQ(r.tasks_total, base.tasks_total);  // every task ran exactly once
  ASSERT_GT(r.sched.decisions, 0u);
  ASSERT_GT(base.sched.decisions, 0u);
  // The whole point: summary reads beat the flat per-decision walk.
  const double hier_cost = static_cast<double>(r.sched.state_touched) /
                           static_cast<double>(r.sched.decisions);
  const double flat_cost = static_cast<double>(base.sched.state_touched) /
                           static_cast<double>(base.sched.decisions);
  EXPECT_LT(hier_cost, flat_cost);

  const obs::Counter* refreshes =
      rt.metrics().find_counter("hier.summary_refreshes");
  ASSERT_NE(refreshes, nullptr);
  EXPECT_GT(refreshes->value(), 0u);
}

TEST(HierScheduler, PolicyNameSelectsTheSameScheduler) {
  core::RuntimeConfig by_flag = plain_config();
  by_flag.hier.enabled = true;
  apps::SyntheticWorkload wl1(plain_workload());
  core::ClusterRuntime rt1(by_flag);
  const auto r1 = rt1.run(wl1);

  core::RuntimeConfig by_name = plain_config();
  by_name.sched.policy = "hier";
  apps::SyntheticWorkload wl2(plain_workload());
  core::ClusterRuntime rt2(by_name);
  const auto r2 = rt2.run(wl2);

  EXPECT_EQ(r2.sched_policy, "hier");
  EXPECT_EQ(schedule_fingerprint(rt1, r1), schedule_fingerprint(rt2, r2));
}

// --- control-plane hot swap ---------------------------------------------------

TEST(HotSwap, MidRunPolicySwapIsAckedAndStatsAccumulate) {
  core::ClusterRuntime rt(plain_config());
  elastic::PushResult pushed;
  rt.schedule_external(0.3, [&] {
    pushed = rt.control_plane().push(
        {"tlb.sched.policy", 1, "policy=waittime"});
  });
  apps::SyntheticWorkload wl(plain_workload());
  const auto r = rt.run(wl);

  EXPECT_EQ(pushed.status, elastic::PushStatus::Acked);
  EXPECT_EQ(rt.sched_policy_swaps(), 1u);
  EXPECT_EQ(r.sched_policy, "waittime");
  // Decisions made by the retired locality scheduler before t=0.3 are
  // folded into the final counters, not lost with the old instance.
  EXPECT_GT(r.sched.decisions, 0u);
  EXPECT_GT(r.tasks_total, 0u);
}

TEST(HotSwap, MidRunSwapToHierarchicalWorks) {
  core::ClusterRuntime rt(plain_config());
  rt.schedule_external(0.3, [&] {
    (void)rt.control_plane().push({"tlb.sched.policy", 1, "policy=hier"});
  });
  apps::SyntheticWorkload wl(plain_workload());
  const auto r = rt.run(wl);
  EXPECT_EQ(r.sched_policy, "hier");
  EXPECT_EQ(rt.sched_policy_swaps(), 1u);
}

TEST(HotSwap, UnknownPolicyIsNackedAndRolledBack) {
  core::ClusterRuntime rt(plain_config());
  elastic::ControlPlane& cp = rt.control_plane();

  const auto r1 = cp.push({"tlb.sched.policy", 1, "policy=congestion"});
  ASSERT_EQ(r1.status, elastic::PushStatus::Acked);

  const auto r2 = cp.push({"tlb.sched.policy", 2, "policy=bogus"});
  EXPECT_EQ(r2.status, elastic::PushStatus::Nacked);
  EXPECT_TRUE(r2.rolled_back);
  EXPECT_NE(r2.detail.find("bogus"), std::string::npos) << r2.detail;
  // The rollback re-applied the last ACKed resource.
  ASSERT_TRUE(cp.last_acked("tlb.sched.policy").has_value());
  EXPECT_EQ(cp.last_acked("tlb.sched.policy")->payload, "policy=congestion");

  // A replayed (stale) version is refused without touching the applier.
  const auto r3 = cp.push({"tlb.sched.policy", 1, "policy=waittime"});
  EXPECT_EQ(r3.status, elastic::PushStatus::StaleVersion);
  // The NACKed version number was never ACKed, so it is still usable.
  const auto r4 = cp.push({"tlb.sched.policy", 2, "policy=waittime"});
  EXPECT_EQ(r4.status, elastic::PushStatus::Acked);
}

TEST(HotSwap, MalformedPayloadIsNackedWithoutSideEffects) {
  core::ClusterRuntime rt(plain_config());
  elastic::ControlPlane& cp = rt.control_plane();

  // No ACKed resource yet: the NACK has nothing to roll back to.
  const auto r1 = cp.push({"tlb.sched.policy", 1, "no-equals-sign"});
  EXPECT_EQ(r1.status, elastic::PushStatus::Nacked);
  EXPECT_FALSE(r1.rolled_back);
  const auto r2 = cp.push({"tlb.sched.policy", 2, "knob=value"});
  EXPECT_EQ(r2.status, elastic::PushStatus::Nacked);
  EXPECT_NE(r2.detail.find("policy"), std::string::npos) << r2.detail;
  EXPECT_EQ(rt.sched_policy_swaps(), 0u);

  const auto r3 = cp.push({"tlb.unknown.type", 1, "x=1"});
  EXPECT_EQ(r3.status, elastic::PushStatus::UnknownType);
}

}  // namespace
