// Tests of the service-traffic subsystem (tlb::svc): arrival-generator
// determinism and sanity per shape, admission primitives (token bucket,
// gradient concurrency limiter, retry budget, class shedding), job-manager
// end-to-end determinism, the concurrency-cap monotonicity contract, the
// shared-engine equivalence with a standalone ClusterRuntime run, and
// graceful degradation vs the open-queue baseline under overload.
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "core/runtime.hpp"
#include "svc/admission.hpp"
#include "svc/arrivals.hpp"
#include "svc/breaker.hpp"
#include "svc/job_manager.hpp"

namespace {

using namespace tlb;

// --- arrival generator -------------------------------------------------------

svc::ArrivalConfig arrival_config(svc::ArrivalShape shape) {
  svc::ArrivalConfig cfg;
  cfg.shape = shape;
  cfg.rate = 8.0;
  cfg.horizon = 50.0;
  return cfg;
}

TEST(Arrivals, SameSeedIsBitIdenticalAcrossAllShapes) {
  for (const auto shape :
       {svc::ArrivalShape::Poisson, svc::ArrivalShape::Bursty,
        svc::ArrivalShape::Diurnal}) {
    svc::ArrivalGenerator a(arrival_config(shape), {3.0, 1.0}, 99);
    svc::ArrivalGenerator b(arrival_config(shape), {3.0, 1.0}, 99);
    const auto seq_a = a.all();
    const auto seq_b = b.all();
    ASSERT_FALSE(seq_a.empty()) << svc::to_string(shape);
    ASSERT_EQ(seq_a.size(), seq_b.size()) << svc::to_string(shape);
    for (std::size_t i = 0; i < seq_a.size(); ++i) {
      // Bitwise, not approximate: the sequence is the experiment's input.
      EXPECT_EQ(seq_a[i].time, seq_b[i].time);
      EXPECT_EQ(seq_a[i].template_index, seq_b[i].template_index);
      EXPECT_EQ(seq_a[i].job_seed, seq_b[i].job_seed);
    }
  }
}

TEST(Arrivals, DifferentSeedsDiverge) {
  svc::ArrivalGenerator a(arrival_config(svc::ArrivalShape::Poisson), {1.0},
                          1);
  svc::ArrivalGenerator b(arrival_config(svc::ArrivalShape::Poisson), {1.0},
                          2);
  const auto seq_a = a.all();
  const auto seq_b = b.all();
  ASSERT_FALSE(seq_a.empty());
  ASSERT_FALSE(seq_b.empty());
  EXPECT_NE(seq_a.front().time, seq_b.front().time);
  EXPECT_NE(seq_a.front().job_seed, seq_b.front().job_seed);
}

TEST(Arrivals, TimesAreMonotoneWithinHorizonAndRoughlyAtRate) {
  for (const auto shape :
       {svc::ArrivalShape::Poisson, svc::ArrivalShape::Bursty,
        svc::ArrivalShape::Diurnal}) {
    svc::ArrivalGenerator gen(arrival_config(shape), {1.0}, 7);
    const auto seq = gen.all();
    double prev = 0.0;
    for (const auto& a : seq) {
      EXPECT_GE(a.time, prev);
      EXPECT_LE(a.time, 50.0);
      EXPECT_EQ(a.template_index, 0);
      prev = a.time;
    }
    // Mean rate 8/s over 50 s => ~400 arrivals; all three shapes share the
    // long-run mean by construction. Loose 3-sigma-ish band.
    EXPECT_GT(seq.size(), 300u) << svc::to_string(shape);
    EXPECT_LT(seq.size(), 520u) << svc::to_string(shape);
  }
}

TEST(Arrivals, JobSeedsAreDistinct) {
  svc::ArrivalGenerator gen(arrival_config(svc::ArrivalShape::Poisson), {1.0},
                            7);
  const auto seq = gen.all();
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_NE(seq[i].job_seed, seq[i - 1].job_seed);
  }
}

TEST(Arrivals, MaxArrivalsCapsTheSequence) {
  svc::ArrivalConfig cfg = arrival_config(svc::ArrivalShape::Poisson);
  cfg.max_arrivals = 5;
  svc::ArrivalGenerator gen(cfg, {1.0}, 7);
  EXPECT_EQ(gen.all().size(), 5u);
  EXPECT_EQ(gen.next(), std::nullopt);
}

TEST(Arrivals, RejectsInvalidConfigs) {
  EXPECT_THROW(
      svc::ArrivalGenerator(arrival_config(svc::ArrivalShape::Poisson), {}, 1),
      std::invalid_argument);
  EXPECT_THROW(svc::ArrivalGenerator(
                   arrival_config(svc::ArrivalShape::Poisson), {0.0}, 1),
               std::invalid_argument);
  EXPECT_THROW(svc::ArrivalGenerator(
                   arrival_config(svc::ArrivalShape::Poisson), {-1.0}, 1),
               std::invalid_argument);
  svc::ArrivalConfig bad_rate = arrival_config(svc::ArrivalShape::Poisson);
  bad_rate.rate = 0.0;
  EXPECT_THROW(svc::ArrivalGenerator(bad_rate, {1.0}, 1),
               std::invalid_argument);
  svc::ArrivalConfig bad_amp = arrival_config(svc::ArrivalShape::Diurnal);
  bad_amp.diurnal_amplitude = 1.0;
  EXPECT_THROW(svc::ArrivalGenerator(bad_amp, {1.0}, 1),
               std::invalid_argument);
  svc::ArrivalConfig bad_burst = arrival_config(svc::ArrivalShape::Bursty);
  bad_burst.burst_fraction = 1.0;
  EXPECT_THROW(svc::ArrivalGenerator(bad_burst, {1.0}, 1),
               std::invalid_argument);
}

TEST(Arrivals, ShapeNamesRoundTrip) {
  EXPECT_EQ(svc::parse_arrival_shape("poisson"), svc::ArrivalShape::Poisson);
  EXPECT_EQ(svc::parse_arrival_shape("bursty"), svc::ArrivalShape::Bursty);
  EXPECT_EQ(svc::parse_arrival_shape("diurnal"), svc::ArrivalShape::Diurnal);
  EXPECT_THROW(svc::parse_arrival_shape("weekly"), std::invalid_argument);
}

// --- admission primitives ----------------------------------------------------

TEST(TokenBucket, RefillsAtRateUpToBurst) {
  svc::TokenBucket bucket(2.0, 2.0);  // 2 tokens/s, burst 2
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_FALSE(bucket.try_take(0.0));   // empty
  EXPECT_FALSE(bucket.try_take(0.25));  // only 0.5 tokens back
  EXPECT_TRUE(bucket.try_take(0.6));    // 1.2 tokens accumulated
  // Long idle caps at the burst, not rate * dt.
  EXPECT_NEAR(bucket.available(100.0), 2.0, 1e-12);
}

TEST(TokenBucket, ZeroRateMeansUnlimited) {
  svc::TokenBucket bucket(0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take(0.0));
}

svc::AdmissionConfig limiter_config() {
  svc::AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.initial_limit = 8;
  cfg.min_limit = 2;
  cfg.max_limit = 32;
  cfg.tolerance = 2.0;
  cfg.update_window = 4;
  return cfg;
}

TEST(GradientLimiter, GrowsOnHealthyLatencyShrinksOnInflation) {
  svc::GradientLimiter healthy(limiter_config());
  for (int i = 0; i < 16; ++i) healthy.record(0.1);
  EXPECT_EQ(healthy.updates(), 4);
  EXPECT_GT(healthy.limit(), 8);  // gradient ~2 + sqrt headroom

  svc::GradientLimiter congested(limiter_config());
  congested.record(0.1);  // establishes the floor
  for (int i = 0; i < 24; ++i) congested.record(2.0);  // 20x the floor
  EXPECT_EQ(congested.limit(), 2);  // pinned at min_limit
}

TEST(GradientLimiter, LimitStaysWithinBounds) {
  svc::GradientLimiter lim(limiter_config());
  for (int i = 0; i < 200; ++i) lim.record(0.05);
  EXPECT_LE(lim.limit(), 32);
  for (int i = 0; i < 200; ++i) lim.record(50.0);
  EXPECT_GE(lim.limit(), 2);
}

TEST(RetryBudget, CapsActiveRetriesAtRatioPlusBase) {
  svc::RetryBudget budget(0.5, 1);  // allow 0.5 * in_flight + 1
  EXPECT_TRUE(budget.try_start(2));   // budget 2, active 0 -> 1
  EXPECT_TRUE(budget.try_start(2));   // active 1 -> 2
  EXPECT_FALSE(budget.try_start(2));  // active 2 >= budget 2
  EXPECT_EQ(budget.exhausted(), 1u);
  budget.settle();
  EXPECT_TRUE(budget.try_start(2));
  EXPECT_EQ(budget.active(), 2);
}

TEST(AdmissionController, ClassCapsOrderAndFloor) {
  svc::AdmissionConfig cfg = limiter_config();
  cfg.class_fractions = {1.0, 0.5, 0.25};
  svc::AdmissionController ctl(cfg);
  EXPECT_EQ(ctl.class_cap(0), 8);
  EXPECT_EQ(ctl.class_cap(1), 4);
  EXPECT_EQ(ctl.class_cap(2), 2);
  EXPECT_EQ(ctl.class_cap(9), 2);  // inherits the last fraction
  EXPECT_GE(ctl.class_cap(0), ctl.class_cap(1));
  EXPECT_GE(ctl.class_cap(1), ctl.class_cap(2));

  EXPECT_EQ(ctl.decide(2, 1, 0.0), svc::AdmitVerdict::Admit);
  EXPECT_EQ(ctl.decide(2, 2, 0.0), svc::AdmitVerdict::ShedLimit);
  EXPECT_EQ(ctl.decide(0, 2, 0.0), svc::AdmitVerdict::Admit);
}

TEST(AdmissionController, ClassZeroAlwaysKeepsOneSlot) {
  svc::AdmissionConfig cfg = limiter_config();
  cfg.class_fractions = {0.01};
  svc::AdmissionController ctl(cfg);
  EXPECT_EQ(ctl.class_cap(0), 1);
  EXPECT_EQ(ctl.class_cap(1), 0);
}

TEST(AdmissionController, BucketGatesBeforeTheLimit) {
  svc::AdmissionConfig cfg = limiter_config();
  cfg.bucket_rate = 1.0;
  cfg.bucket_burst = 1.0;
  svc::AdmissionController ctl(cfg);
  EXPECT_EQ(ctl.decide(0, 0, 0.0), svc::AdmitVerdict::Admit);
  EXPECT_EQ(ctl.decide(0, 0, 0.0), svc::AdmitVerdict::ShedBucket);
  EXPECT_EQ(ctl.decide(0, 0, 1.0), svc::AdmitVerdict::Admit);
}

// --- job manager -------------------------------------------------------------

core::RuntimeConfig service_config(double rate, double horizon,
                                   bool admission) {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 4);
  cfg.policy = core::PolicyKind::Global;
  cfg.seed = 1234;
  cfg.record_traces = false;
  cfg.svc.enabled = true;
  cfg.svc.arrivals.rate = rate;
  cfg.svc.arrivals.horizon = horizon;
  svc::JobTemplate tpl;
  tpl.nodes = 2;
  tpl.degree = 2;
  tpl.iterations = 2;
  tpl.tasks_per_rank = 16;
  tpl.base_duration = 0.050;
  tpl.imbalance = 1.5;
  tpl.deadline_class = 0;
  tpl.deadline = 0.8;
  cfg.svc.templates = {tpl};
  cfg.svc.admission.enabled = admission;
  cfg.svc.admission.initial_limit = 3;
  cfg.svc.admission.min_limit = 1;
  cfg.svc.admission.max_limit = 4;
  cfg.svc.admission.update_window = 4;
  return cfg;
}

TEST(JobManager, RejectsBadConfigs) {
  core::RuntimeConfig disabled = service_config(2.0, 1.0, false);
  disabled.svc.enabled = false;
  EXPECT_THROW(svc::JobManager{disabled}, std::invalid_argument);

  core::RuntimeConfig empty = service_config(2.0, 1.0, false);
  empty.svc.templates.clear();
  EXPECT_THROW(svc::JobManager{empty}, std::invalid_argument);

  core::RuntimeConfig oversized = service_config(2.0, 1.0, false);
  oversized.svc.templates[0].nodes = 64;  // cluster only has 4
  EXPECT_THROW(svc::JobManager{oversized}, std::invalid_argument);
}

TEST(JobManager, RunIsOneShot) {
  svc::JobManager mgr(service_config(2.0, 0.5, false));
  mgr.run();
  EXPECT_THROW(mgr.run(), std::logic_error);
}

TEST(JobManager, EndToEndDeterminism) {
  svc::JobManager a(service_config(4.0, 2.0, true));
  svc::JobManager b(service_config(4.0, 2.0, true));
  const svc::SvcResult ra = a.run();
  const svc::SvcResult rb = b.run();
  EXPECT_EQ(ra.arrived, rb.arrived);
  EXPECT_EQ(ra.admitted, rb.admitted);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.shed, rb.shed);
  EXPECT_EQ(ra.retries, rb.retries);
  EXPECT_EQ(ra.slo_met, rb.slo_met);
  EXPECT_EQ(ra.engine_events, rb.engine_events);
  // Bitwise on the derived doubles too: the whole simulation replays.
  EXPECT_EQ(ra.elapsed, rb.elapsed);
  EXPECT_EQ(ra.latency_p99, rb.latency_p99);
  EXPECT_EQ(ra.goodput, rb.goodput);
  ASSERT_EQ(a.jobs().size(), b.jobs().size());
  for (std::size_t i = 0; i < a.jobs().size(); ++i) {
    EXPECT_EQ(a.jobs()[i].arrival, b.jobs()[i].arrival);
    EXPECT_EQ(a.jobs()[i].started, b.jobs()[i].started);
    EXPECT_EQ(a.jobs()[i].finished, b.jobs()[i].finished);
    EXPECT_EQ(a.jobs()[i].outcome, b.jobs()[i].outcome);
  }
}

TEST(JobManager, RecordsAreConsistent) {
  svc::JobManager mgr(service_config(4.0, 2.0, true));
  const svc::SvcResult r = mgr.run();
  ASSERT_GT(r.arrived, 0u);
  EXPECT_EQ(r.arrived, static_cast<std::uint64_t>(mgr.jobs().size()));
  EXPECT_EQ(r.completed + r.shed, r.arrived);  // nothing left pending
  std::uint64_t completed = 0;
  for (const auto& rec : mgr.jobs()) {
    ASSERT_NE(rec.outcome, svc::JobOutcome::Pending);
    if (rec.outcome == svc::JobOutcome::Completed) {
      ++completed;
      EXPECT_GE(rec.started, rec.arrival);
      EXPECT_GT(rec.finished, rec.started);
      EXPECT_EQ(rec.slo_met, rec.latency() <= rec.deadline);
    } else {
      EXPECT_LT(rec.started, 0.0);  // shed jobs never launched
    }
  }
  EXPECT_EQ(completed, r.completed);
  // The registry mirrors the result.
  EXPECT_EQ(mgr.metrics().find_counter("svc.jobs_completed")->value(),
            r.completed);
  EXPECT_DOUBLE_EQ(mgr.metrics().find_gauge("svc.goodput")->value(),
                   r.goodput);
}

// One job through the shared-engine path must behave like the same
// execution on a standalone runtime: the job starts mid-simulation at its
// arrival time, so its service duration (not its absolute timestamps)
// must match the standalone makespan.
TEST(JobManager, SharedEngineMatchesStandaloneRuntime) {
  core::RuntimeConfig cfg = service_config(1.0, 10.0, false);
  cfg.svc.arrivals.max_arrivals = 1;
  svc::JobManager mgr(cfg);
  const svc::SvcResult r = mgr.run();
  ASSERT_EQ(r.completed, 1u);
  const svc::JobRecord& rec = mgr.jobs().front();

  core::RuntimeConfig solo;
  solo.cluster = sim::ClusterSpec::homogeneous(2, 4);  // the partition
  solo.policy = cfg.policy;
  solo.appranks_per_node = 1;
  solo.degree = 2;
  solo.seed = rec.job_seed;
  solo.record_traces = false;
  apps::SyntheticConfig wcfg;
  wcfg.appranks = 2;
  wcfg.iterations = 2;
  wcfg.tasks_per_rank = 16;
  wcfg.base_duration = 0.050;
  wcfg.imbalance = 1.5;
  apps::SyntheticWorkload wl(wcfg);
  const core::RunResult solo_r = core::ClusterRuntime(solo).run(wl);

  // Same event sequence, but shifted by the arrival time: double addition
  // is not exactly translation-invariant, so compare to tight tolerance
  // rather than bitwise.
  EXPECT_NEAR(rec.service(), solo_r.makespan, 1e-9);
  EXPECT_GT(rec.arrival, 0.0);
  EXPECT_DOUBLE_EQ(rec.started, rec.arrival);  // free cluster: no wait
}

// Raising a pinned concurrency cap must never lower goodput. The scenario
// is built so this is a true invariant, not a queueing accident: caps
// never exceed the partition count (admitted jobs start immediately, so
// service times are decision-independent) and deadlines are generous
// (every completed job counts). The system is then a pure loss system,
// where admission sets grow with the cap.
TEST(JobManager, PinnedConcurrencyCapIsMonotoneInGoodput) {
  double prev_goodput = -1.0;
  for (int cap = 1; cap <= 4; ++cap) {
    core::RuntimeConfig cfg;
    cfg.cluster = sim::ClusterSpec::homogeneous(8, 4);
    cfg.policy = core::PolicyKind::Global;
    cfg.seed = 77;
    cfg.record_traces = false;
    cfg.svc.enabled = true;
    cfg.svc.arrivals.rate = 6.0;
    cfg.svc.arrivals.horizon = 3.0;
    svc::JobTemplate tpl;
    tpl.nodes = 2;
    tpl.degree = 2;
    tpl.iterations = 1;
    tpl.tasks_per_rank = 8;
    tpl.base_duration = 0.020;
    tpl.imbalance = 1.2;
    tpl.deadline_class = 0;
    tpl.deadline = 100.0;  // every completion meets the SLO
    cfg.svc.templates = {tpl};
    auto& adm = cfg.svc.admission;
    adm.enabled = true;
    adm.initial_limit = cap;
    adm.min_limit = 1;
    adm.max_limit = cap;
    adm.update_window = 1 << 20;  // the gradient never fires: cap pinned
    adm.retry_max = 0;            // a shed arrival is lost, not retried
    adm.bucket_rate = 0.0;

    svc::JobManager mgr(cfg);
    const svc::SvcResult r = mgr.run();
    EXPECT_EQ(r.final_limit, cap);
    EXPECT_EQ(r.completed, r.slo_met);
    EXPECT_GE(r.goodput, prev_goodput)
        << "goodput dropped when the cap rose to " << cap;
    prev_goodput = r.goodput;
  }
  EXPECT_GT(prev_goodput, 0.0);
}

// The fig15 claim in miniature: past saturation, the admission arm sheds
// early and keeps goodput above the open queue, whose backlog pushes
// every late arrival over its deadline.
TEST(JobManager, AdmissionBeatsOpenQueueUnderOverload) {
  const double rate = 14.0;  // ~1.75x the ~8 jobs/s this cluster sustains
  svc::JobManager open(service_config(rate, 3.0, false));
  svc::JobManager controlled(service_config(rate, 3.0, true));
  const svc::SvcResult off = open.run();
  const svc::SvcResult on = controlled.run();
  ASSERT_EQ(off.arrived, on.arrived);  // identical offered traffic
  EXPECT_EQ(off.shed, 0u);             // the open queue never sheds...
  EXPECT_GT(on.shed, 0u);              // ...overload control does
  EXPECT_GT(on.goodput, off.goodput);
  // Bounded tail vs the collapsing queue.
  EXPECT_LT(on.latency_p99, off.latency_p99);
  // Shedding also drains the simulation sooner than the full backlog.
  EXPECT_LE(on.elapsed, off.elapsed + 1e-9);
}

TEST(JobManager, FabricPressureDeratesCoRunningJobs) {
  // With heavy per-task payloads on a thin link, derating the bandwidth of
  // co-running jobs must show up as longer services than unpressured runs.
  auto run_with_pressure = [](double pressure) {
    core::RuntimeConfig cfg = service_config(6.0, 2.0, false);
    cfg.cluster.link.bandwidth = 1e8;
    cfg.svc.templates[0].bytes_per_task = 4u << 20;
    cfg.svc.fabric_pressure = pressure;
    svc::JobManager mgr(cfg);
    return mgr.run().service_mean;
  };
  EXPECT_GT(run_with_pressure(2.0), run_with_pressure(0.0));
}

// --- trace arrivals (JSONL record / replay) ----------------------------------

TEST(TraceArrivals, DumpParseRoundTripIsBitIdentical) {
  svc::ArrivalConfig cfg = arrival_config(svc::ArrivalShape::Diurnal);
  svc::ArrivalGenerator gen(cfg, {3.0, 1.0}, 2024);
  const std::vector<svc::Arrival> original = gen.all();
  ASSERT_FALSE(original.empty());

  const std::string jsonl = svc::dump_arrivals_jsonl(original);
  const std::vector<svc::Arrival> parsed = svc::parse_arrivals_jsonl(jsonl);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    // Bitwise: %.17g round-trips every IEEE-754 binary64 exactly.
    EXPECT_EQ(parsed[i].time, original[i].time) << "arrival " << i;
    EXPECT_EQ(parsed[i].template_index, original[i].template_index);
    EXPECT_EQ(parsed[i].job_seed, original[i].job_seed);
  }
  // dump(parse(dump(x))) is a fixed point, so the file format is stable.
  EXPECT_EQ(svc::dump_arrivals_jsonl(parsed), jsonl);
}

TEST(TraceArrivals, ReplayEmitsTheRecordedSequence) {
  svc::ArrivalConfig record_cfg = arrival_config(svc::ArrivalShape::Bursty);
  svc::ArrivalGenerator recorder(record_cfg, {2.0, 1.0}, 7);
  const std::vector<svc::Arrival> original = recorder.all();
  ASSERT_FALSE(original.empty());

  svc::ArrivalConfig replay_cfg = arrival_config(svc::ArrivalShape::Trace);
  replay_cfg.trace = original;
  // A different seed must not matter: replay reads the trace, not the RNG.
  svc::ArrivalGenerator replayer(replay_cfg, {2.0, 1.0}, 99999);
  const std::vector<svc::Arrival> replayed = replayer.all();
  ASSERT_EQ(replayed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(replayed[i].time, original[i].time);
    EXPECT_EQ(replayed[i].template_index, original[i].template_index);
    EXPECT_EQ(replayed[i].job_seed, original[i].job_seed);
  }
}

TEST(TraceArrivals, ReplayHonorsHorizonAndMaxArrivals) {
  svc::ArrivalConfig cfg = arrival_config(svc::ArrivalShape::Trace);
  cfg.horizon = 1.5;
  cfg.trace = {{0.5, 0, 11}, {1.0, 0, 22}, {2.0, 0, 33}};
  svc::ArrivalGenerator gen(cfg, {1.0}, 1);
  EXPECT_EQ(gen.all().size(), 2u);  // the 2.0 s arrival is past the horizon

  cfg.horizon = 50.0;
  cfg.max_arrivals = 1;
  svc::ArrivalGenerator capped(cfg, {1.0}, 1);
  EXPECT_EQ(capped.all().size(), 1u);
}

TEST(TraceArrivals, RejectsMalformedTraces) {
  svc::ArrivalConfig cfg = arrival_config(svc::ArrivalShape::Trace);
  cfg.trace = {{1.0, 0, 1}, {0.5, 0, 2}};  // non-monotone times
  EXPECT_THROW(svc::ArrivalGenerator(cfg, {1.0}, 1), std::invalid_argument);
  cfg.trace = {{0.5, 3, 1}};  // template index out of range
  EXPECT_THROW(svc::ArrivalGenerator(cfg, {1.0}, 1), std::invalid_argument);
}

TEST(TraceArrivals, ParserRejectsMalformedJsonlNamingTheLine) {
  try {
    (void)svc::parse_arrivals_jsonl(
        "{\"time\":1,\"template\":0,\"seed\":1}\n"
        "{\"time\":oops,\"template\":0,\"seed\":2}\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(TraceArrivals, ShapeNameRoundTrips) {
  EXPECT_EQ(svc::parse_arrival_shape("trace"), svc::ArrivalShape::Trace);
  EXPECT_STREQ(svc::to_string(svc::ArrivalShape::Trace), "trace");
}

// --- circuit breaker ---------------------------------------------------------

svc::BreakerConfig breaker_config() {
  svc::BreakerConfig cfg;
  cfg.enabled = true;
  cfg.failure_threshold = 3;
  cfg.open_duration = 2.0;
  cfg.backoff_factor = 2.0;
  cfg.max_open_duration = 8.0;
  cfg.half_open_successes = 1;
  return cfg;
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  svc::CircuitBreaker br(breaker_config());
  EXPECT_TRUE(br.allow(0.0));
  br.on_failure(0.1);
  br.on_failure(0.2);
  EXPECT_EQ(br.state(), svc::BreakerState::Closed);
  br.on_failure(0.3);
  EXPECT_EQ(br.state(), svc::BreakerState::Open);
  EXPECT_EQ(br.trips(), 1u);
  EXPECT_FALSE(br.allow(0.5));  // open until 0.3 + 2.0
  EXPECT_FALSE(br.allow(2.2));
  EXPECT_EQ(br.shed(), 2u);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  svc::CircuitBreaker br(breaker_config());
  br.on_failure(0.1);
  br.on_failure(0.2);
  br.on_success(0.3);  // streak broken: the threshold is consecutive misses
  br.on_failure(0.4);
  br.on_failure(0.5);
  EXPECT_EQ(br.state(), svc::BreakerState::Closed);
  br.on_failure(0.6);
  EXPECT_EQ(br.state(), svc::BreakerState::Open);
}

TEST(CircuitBreaker, HalfOpenAllowsExactlyOneProbe) {
  svc::CircuitBreaker br(breaker_config());
  for (int i = 0; i < 3; ++i) br.on_failure(0.1);
  ASSERT_EQ(br.state(), svc::BreakerState::Open);  // until 2.1
  EXPECT_TRUE(br.allow(2.2));  // the probe
  EXPECT_EQ(br.state(), svc::BreakerState::HalfOpen);
  EXPECT_FALSE(br.allow(2.3));  // shed while the probe is in flight
  br.on_success(2.4);           // half_open_successes = 1 closes
  EXPECT_EQ(br.state(), svc::BreakerState::Closed);
  EXPECT_TRUE(br.allow(2.5));
}

TEST(CircuitBreaker, ProbeFailureEscalatesBackoffUpToTheCap) {
  svc::CircuitBreaker br(breaker_config());
  for (int i = 0; i < 3; ++i) br.on_failure(0.0);
  // Trip 1: open 2.0 s. Probe at 2.0 fails -> trip 2: open 4.0 s.
  EXPECT_TRUE(br.allow(2.0));
  br.on_failure(2.0);
  EXPECT_FALSE(br.allow(5.9));
  // Trip 3: 8.0 s (2 * 2^2). Trip 4 would be 16 but caps at 8.
  EXPECT_TRUE(br.allow(6.0));
  br.on_failure(6.0);
  EXPECT_FALSE(br.allow(13.9));
  EXPECT_TRUE(br.allow(14.0));
  br.on_failure(14.0);
  EXPECT_FALSE(br.allow(21.9));  // capped: 14 + 8, not 14 + 16
  EXPECT_TRUE(br.allow(22.0));
  EXPECT_EQ(br.trips(), 4u);
}

TEST(CircuitBreaker, ProbeShedReArmsWithoutEscalation) {
  svc::CircuitBreaker br(breaker_config());
  for (int i = 0; i < 3; ++i) br.on_failure(0.0);
  EXPECT_TRUE(br.allow(2.0));  // probe admitted by the breaker...
  ASSERT_EQ(br.state(), svc::BreakerState::HalfOpen);
  // ...but the admission controller sheds it: backpressure, not tenant
  // evidence, so the open window re-arms at the *unescalated* duration.
  br.on_probe_shed(2.0);
  EXPECT_EQ(br.state(), svc::BreakerState::Open);
  EXPECT_EQ(br.trips(), 1u);      // no new trip
  EXPECT_FALSE(br.allow(3.9));    // 2.0 + 2.0, not 2.0 + 4.0
  EXPECT_TRUE(br.allow(4.0));
}

TEST(CircuitBreaker, TracksCumulativeOpenTime) {
  svc::CircuitBreaker br(breaker_config());
  EXPECT_DOUBLE_EQ(br.open_time(5.0), 0.0);
  for (int i = 0; i < 3; ++i) br.on_failure(1.0);
  EXPECT_DOUBLE_EQ(br.open_time(2.5), 1.5);  // still open: live interval
  EXPECT_TRUE(br.allow(3.0));                // probe
  br.on_success(3.5);                        // closed at 3.5
  EXPECT_DOUBLE_EQ(br.open_time(10.0), 2.5);  // 1.0 .. 3.5, then closed
}

TEST(CircuitBreaker, RejectsInvalidConfigs) {
  auto bad = breaker_config();
  bad.failure_threshold = 0;
  EXPECT_THROW(svc::CircuitBreaker{bad}, std::invalid_argument);
  bad = breaker_config();
  bad.open_duration = 0.0;
  EXPECT_THROW(svc::CircuitBreaker{bad}, std::invalid_argument);
  bad = breaker_config();
  bad.backoff_factor = 0.5;
  EXPECT_THROW(svc::CircuitBreaker{bad}, std::invalid_argument);
  bad = breaker_config();
  bad.max_open_duration = 1.0;  // < open_duration
  EXPECT_THROW(svc::CircuitBreaker{bad}, std::invalid_argument);
  bad = breaker_config();
  bad.half_open_successes = 0;
  EXPECT_THROW(svc::CircuitBreaker{bad}, std::invalid_argument);
}

// --- breaker / job-manager integration ---------------------------------------

TEST(JobManager, BreakerIsolatesARogueTenant) {
  core::RuntimeConfig cfg = service_config(6.0, 4.0, false);
  cfg.svc.templates[0].deadline = 10.0;  // healthy tenant: generous SLO
  svc::JobTemplate rogue = cfg.svc.templates[0];
  rogue.deadline = 1e-3;  // impossible: every completion misses its SLO
  rogue.weight = 1.0;
  cfg.svc.templates.push_back(rogue);
  cfg.svc.breaker.enabled = true;
  cfg.svc.breaker.failure_threshold = 2;
  cfg.svc.breaker.open_duration = 1.0;

  svc::JobManager mgr(cfg);
  const svc::SvcResult r = mgr.run();

  ASSERT_EQ(r.tenants.size(), 2u);
  const svc::SvcTenantRow& healthy = r.tenants[0];
  const svc::SvcTenantRow& rogue_row = r.tenants[1];
  // The rogue trips its own breaker and gets shed; the healthy tenant's
  // breaker never opens and its jobs keep completing.
  EXPECT_GT(rogue_row.breaker_trips, 0u);
  EXPECT_GT(rogue_row.shed_breaker, 0u);
  EXPECT_GT(rogue_row.breaker_open_time_s, 0.0);
  EXPECT_EQ(healthy.breaker_trips, 0u);
  EXPECT_EQ(healthy.shed_breaker, 0u);
  EXPECT_GT(healthy.completed, 0u);
  // Aggregates are the per-tenant sums.
  EXPECT_EQ(r.shed_breaker, rogue_row.shed_breaker);
  EXPECT_EQ(r.breaker_trips, rogue_row.breaker_trips);
  // Breaker sheds are terminal (no retry) and never launched.
  for (const auto& rec : mgr.jobs()) {
    if (rec.outcome == svc::JobOutcome::ShedBreaker) {
      EXPECT_LT(rec.started, 0.0);
      EXPECT_EQ(rec.retries, 0);
    }
  }
}

TEST(JobManager, BreakerDisabledLeavesNoBreakerState) {
  svc::JobManager mgr(service_config(2.0, 1.0, false));
  EXPECT_TRUE(mgr.breakers().empty());
  const svc::SvcResult r = mgr.run();
  EXPECT_EQ(r.shed_breaker, 0u);
  EXPECT_EQ(r.breaker_trips, 0u);
  EXPECT_DOUBLE_EQ(r.breaker_open_time_s, 0.0);
}

}  // namespace
