// Tests of the bounded-memory streaming telemetry backend (tlb::stream):
// determinism (golden schedule fingerprints unchanged with the stream
// backend on), exporter equivalence (the reader-reconstructed view
// produces byte-identical Chrome traces and flame folds and the same
// critical path as the in-memory collector), the bounded working set,
// windowed metric snapshots, and spill-file validation diagnostics
// (truncation / corruption throw with the exact byte offset).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "core/runtime.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "obs/flame.hpp"
#include "obs/span.hpp"
#include "stream/reader.hpp"
#include "stream/sink.hpp"

namespace {

using namespace tlb;

// --- golden fingerprints (shared with tests/sched_test.cpp) ------------------

std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

std::uint64_t bits_of(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

std::uint64_t schedule_fingerprint(const core::ClusterRuntime& rt,
                                   const core::RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  const nanos::TaskPool& pool = rt.tasks();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const nanos::Task& t = pool.get(static_cast<nanos::TaskId>(i));
    h = fp_mix(h, t.id);
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.scheduled_node)));
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.executed_worker)));
    h = fp_mix(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(t.executed_core)));
    h = fp_mix(h, static_cast<std::uint64_t>(t.executions));
    h = fp_mix(h, bits_of(t.start_at));
    h = fp_mix(h, bits_of(t.finish_at));
  }
  h = fp_mix(h, bits_of(r.makespan));
  h = fp_mix(h, r.events_fired);
  return h;
}

// Captured in tests/sched_test.cpp from the pre-obs binary; the stream
// backend only records — it must not move them.
constexpr std::uint64_t kGoldenPlain = 0x5515139c5bf2c300ull;
constexpr std::uint64_t kGoldenNet = 0xb613ed57f79b2e8aull;

core::RuntimeConfig plain_config() {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 8);
  cfg.appranks_per_node = 2;
  cfg.degree = 3;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  return cfg;
}

apps::SyntheticConfig plain_workload() {
  apps::SyntheticConfig cfg;
  cfg.appranks = 8;
  cfg.imbalance = 1.8;
  cfg.iterations = 3;
  cfg.tasks_per_rank = 40;
  return cfg;
}

core::RuntimeConfig net_config() {
  core::RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(4, 4);
  cfg.appranks_per_node = 1;
  cfg.degree = 2;
  cfg.policy = core::PolicyKind::Global;
  cfg.global_period = 0.2;
  cfg.local_period = 0.05;
  cfg.net.enabled = true;
  cfg.net.leaf_radix = 2;
  cfg.net.spines = 1;
  return cfg;
}

apps::SyntheticConfig net_workload() {
  apps::SyntheticConfig cfg;
  cfg.appranks = 4;
  cfg.iterations = 2;
  cfg.tasks_per_rank = 24;
  cfg.imbalance = 2.0;
  cfg.bytes_per_task = 1 << 20;
  return cfg;
}

/// Spill files land in the test's working directory and are removed by
/// the fixture that created them.
std::string spill_path(const char* name) {
  return std::string("stream_test_") + name + ".stream";
}

core::RuntimeConfig with_stream(core::RuntimeConfig cfg,
                                const std::string& path) {
  cfg.obs.stream.enabled = true;
  cfg.obs.stream.path = path;
  return cfg;
}

// --- determinism contract ----------------------------------------------------

TEST(StreamDeterminism, KeepsPlainScheduleBitIdentical) {
  const std::string path = spill_path("golden_plain");
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(with_stream(plain_config(), path));
  EXPECT_EQ(schedule_fingerprint(rt, rt.run(wl)), kGoldenPlain);
  // Streaming replaces the collector; the view is rebuilt from the file.
  EXPECT_EQ(rt.spans(), nullptr);
  ASSERT_NE(rt.stream_sink(), nullptr);
  EXPECT_EQ(rt.stream_sink()->spans_spilled(), rt.tasks().size());
  std::remove(path.c_str());
}

TEST(StreamDeterminism, KeepsNetScheduleBitIdentical) {
  const std::string path = spill_path("golden_net");
  apps::SyntheticWorkload wl(net_workload());
  core::ClusterRuntime rt(with_stream(net_config(), path));
  EXPECT_EQ(schedule_fingerprint(rt, rt.run(wl)), kGoldenNet);
  std::remove(path.c_str());
}

// --- exporter equivalence ----------------------------------------------------

// The whole point of the reader: every existing exporter must see the
// same run through a reconstructed spill as through the live collector.
TEST(StreamEquivalence, ExportersMatchCollectorByteForByte) {
  // Collector run.
  core::RuntimeConfig ccfg = net_config();
  ccfg.obs.spans = true;
  apps::SyntheticWorkload cwl(net_workload());
  core::ClusterRuntime crt(ccfg);
  const auto cr = crt.run(cwl);
  ASSERT_NE(crt.spans(), nullptr);

  // Identical run, stream backend.
  const std::string path = spill_path("equivalence");
  apps::SyntheticWorkload swl(net_workload());
  core::ClusterRuntime srt(with_stream(net_config(), path));
  const auto sr = srt.run(swl);
  ASSERT_EQ(sr.makespan, cr.makespan);

  const stream::StreamReader reader(path);
  const obs::SpanCollector& from_file = reader.spans();
  const obs::SpanCollector& live = *crt.spans();

  const int nodes = crt.topology().node_count();
  const int appranks = crt.topology().apprank_count();
  EXPECT_EQ(obs::chrome_trace_json(from_file, nodes, appranks),
            obs::chrome_trace_json(live, nodes, appranks));
  EXPECT_EQ(obs::collapsed_stacks_text(from_file),
            obs::collapsed_stacks_text(live));

  const obs::CriticalPath cp_live = obs::critical_path(crt.tasks(), live);
  const obs::CriticalPath cp_file = obs::critical_path(srt.tasks(), from_file);
  EXPECT_EQ(cp_file.length, cp_live.length);
  EXPECT_EQ(cp_file.compute, cp_live.compute);
  EXPECT_EQ(cp_file.transfer, cp_live.transfer);
  EXPECT_EQ(cp_file.chain, cp_live.chain);

  // Footer aggregates travel with the file.
  EXPECT_EQ(from_file.transfer_wait_core_seconds(),
            live.transfer_wait_core_seconds());
  EXPECT_EQ(from_file.rescues(), live.rescues());
  EXPECT_EQ(from_file.spans().size(), live.spans().size());
  EXPECT_EQ(from_file.instants().size(), live.instants().size());
  std::remove(path.c_str());
}

// --- bounded working set -----------------------------------------------------

TEST(StreamSinkMemory, WorkingSetBoundedByInFlightTasks) {
  const std::string path = spill_path("bounded");
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(with_stream(plain_config(), path));
  const auto r = rt.run(wl);
  const stream::StreamSink* sink = rt.stream_sink();
  ASSERT_NE(sink, nullptr);
  // Everything finished: nothing resident, every span on disk.
  EXPECT_EQ(sink->open_spans(), 0u);
  EXPECT_EQ(sink->spans_spilled(),
            static_cast<std::uint64_t>(r.tasks_total));
  // The high-water mark is the in-flight task count, not the total: a
  // barrier-paced run keeps at most one iteration's tasks open at once.
  const std::uint64_t per_iteration =
      static_cast<std::uint64_t>(r.tasks_total) / 3;  // 3 iterations
  EXPECT_LE(sink->peak_open_spans(), per_iteration);
  EXPECT_GT(sink->bytes_written(), 0u);
  std::remove(path.c_str());
}

// --- windowed metric snapshots ----------------------------------------------

TEST(StreamWindows, OnePerBarrierEpochMonotone) {
  const std::string path = spill_path("windows");
  apps::SyntheticWorkload wl(plain_workload());
  core::ClusterRuntime rt(with_stream(plain_config(), path));
  rt.run(wl);

  const stream::StreamReader reader(path);
  const auto& windows = reader.windows();
  ASSERT_EQ(windows.size(), 3u);  // one per iteration barrier
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const stream::MetricWindow& w = windows[i];
    EXPECT_EQ(w.epoch, static_cast<int>(i));
    EXPECT_GE(w.t_end, w.t_begin);
    if (i > 0) {
      EXPECT_EQ(w.t_begin, windows[i - 1].t_end);
      EXPECT_GE(w.events_fired, windows[i - 1].events_fired);
      EXPECT_GE(w.spans_spilled, windows[i - 1].spans_spilled);
    }
  }
  EXPECT_EQ(reader.footer().window_records, windows.size());
  EXPECT_LE(windows.back().spans_spilled, reader.footer().span_records);
  std::remove(path.c_str());
}

// --- spill-file validation ---------------------------------------------------

struct SpillFixture : ::testing::Test {
  std::string path;

  void SetUp() override {
    // Unique per test: ctest -j runs each TEST_F in its own process from
    // the same directory, so a shared name would let concurrent fixture
    // SetUps stomp each other's file mid-mutation.
    path = spill_path((std::string("validate_") +
                       ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name())
                          .c_str());
    apps::SyntheticWorkload wl(plain_workload());
    core::ClusterRuntime rt(with_stream(plain_config(), path));
    rt.run(wl);
  }
  void TearDown() override { std::remove(path.c_str()); }

  std::vector<char> slurp() const {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  void dump(const std::vector<char>& bytes) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static std::string error_of(const std::string& p) {
    try {
      stream::StreamReader reader(p);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  }
};

TEST_F(SpillFixture, IntactFileParses) {
  EXPECT_EQ(error_of(path), "");
}

TEST_F(SpillFixture, TruncationIsAnOffsetNumberedError) {
  std::vector<char> bytes = slurp();
  ASSERT_GT(bytes.size(), 64u);
  bytes.resize(bytes.size() / 2);
  dump(bytes);
  const std::string err = error_of(path);
  ASSERT_NE(err, "") << "truncated spill parsed without error";
  EXPECT_NE(err.find(path), std::string::npos) << err;
  EXPECT_NE(err.find("offset"), std::string::npos) << err;
}

TEST_F(SpillFixture, CorruptHeaderMagicIsRejected) {
  std::vector<char> bytes = slurp();
  bytes[0] ^= 0x5a;
  dump(bytes);
  const std::string err = error_of(path);
  ASSERT_NE(err, "");
  EXPECT_NE(err.find("magic"), std::string::npos) << err;
  EXPECT_NE(err.find("offset 0"), std::string::npos) << err;
}

TEST_F(SpillFixture, CorruptRecordPayloadSizeIsRejected) {
  std::vector<char> bytes = slurp();
  // First record prelude sits right after the 16-byte header: u8 type +
  // u32 payload size. Blow the size up past the file end.
  ASSERT_GT(bytes.size(), 21u);
  bytes[17] = static_cast<char>(0xff);
  bytes[18] = static_cast<char>(0xff);
  bytes[19] = static_cast<char>(0xff);
  bytes[20] = static_cast<char>(0x7f);
  dump(bytes);
  const std::string err = error_of(path);
  ASSERT_NE(err, "");
  EXPECT_NE(err.find("offset"), std::string::npos) << err;
}

TEST_F(SpillFixture, MissingTrailerIsRejected) {
  std::vector<char> bytes = slurp();
  bytes.resize(bytes.size() - 1);  // clip the closing magic
  dump(bytes);
  const std::string err = error_of(path);
  ASSERT_NE(err, "");
  EXPECT_NE(err.find("trailer"), std::string::npos) << err;
}

}  // namespace
