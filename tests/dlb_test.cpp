// Unit tests for the DLB modules: core registry, LeWI, DROM, TALP.
#include <gtest/gtest.h>

#include "dlb/core_registry.hpp"
#include "dlb/drom.hpp"
#include "dlb/lewi.hpp"
#include "dlb/talp.hpp"

namespace tlb::dlb {
namespace {

TEST(NodeCores, InitialOwnershipAndLease) {
  NodeCores nc(4, 7);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(nc.owner(c), 7);
    EXPECT_EQ(nc.lease(c), 7);
    EXPECT_FALSE(nc.is_running(c));
  }
  EXPECT_EQ(nc.owned_count(7), 4);
  EXPECT_EQ(nc.leased_count(7), 4);
}

TEST(NodeCores, SetOwnerIdleMovesLease) {
  NodeCores nc(2, 0);
  nc.set_owner(0, 1);
  EXPECT_EQ(nc.owner(0), 1);
  EXPECT_EQ(nc.lease(0), 1);
  EXPECT_FALSE(nc.reclaim_pending(0));
}

TEST(NodeCores, SetOwnerRunningDefersLease) {
  NodeCores nc(1, 0);
  nc.task_started(0);
  nc.set_owner(0, 1);
  EXPECT_EQ(nc.owner(0), 1);
  EXPECT_EQ(nc.lease(0), 0);  // still running under the old lease
  EXPECT_TRUE(nc.reclaim_pending(0));
  EXPECT_EQ(nc.task_finished(0), 1);  // transfer applies at the boundary
  EXPECT_EQ(nc.lease(0), 1);
}

TEST(NodeCores, LendBorrowReclaimIdle) {
  NodeCores nc(1, 0);
  nc.lend(0);
  EXPECT_TRUE(nc.is_in_pool(0));
  EXPECT_TRUE(nc.try_borrow(0, 2));
  EXPECT_EQ(nc.lease(0), 2);
  nc.reclaim(0);  // idle: immediate
  EXPECT_EQ(nc.lease(0), 0);
}

TEST(NodeCores, ReclaimRunningBorrowedWaitsForTaskEnd) {
  NodeCores nc(1, 0);
  nc.lend(0);
  ASSERT_TRUE(nc.try_borrow(0, 2));
  nc.task_started(0);
  nc.reclaim(0);
  EXPECT_EQ(nc.lease(0), 2);  // borrower finishes its task
  EXPECT_TRUE(nc.reclaim_pending(0));
  EXPECT_EQ(nc.task_finished(0), 0);
  EXPECT_EQ(nc.lease(0), 0);
  EXPECT_FALSE(nc.reclaim_pending(0));
}

TEST(NodeCores, BorrowFailsWhenNotPooled) {
  NodeCores nc(1, 0);
  EXPECT_FALSE(nc.try_borrow(0, 2));  // not lent
  nc.lend(0);
  ASSERT_TRUE(nc.try_borrow(0, 2));
  EXPECT_FALSE(nc.try_borrow(0, 3));  // already borrowed
}

TEST(NodeCores, ReleaseBorrowedReturnsToPool) {
  NodeCores nc(1, 0);
  nc.lend(0);
  ASSERT_TRUE(nc.try_borrow(0, 2));
  nc.release_borrowed(0);
  EXPECT_TRUE(nc.is_in_pool(0));
}

TEST(NodeCores, ReleaseBorrowedHonoursPendingTransfer) {
  NodeCores nc(1, 0);
  nc.lend(0);
  ASSERT_TRUE(nc.try_borrow(0, 2));
  nc.set_owner(0, 3);  // idle but borrowed: transfer deferred
  EXPECT_EQ(nc.lease(0), 2);
  nc.release_borrowed(0);
  EXPECT_EQ(nc.lease(0), 3);  // pending applied on release
}

TEST(NodeCores, EveryCoreAlwaysHasExactlyOneOwner) {
  NodeCores nc(8, 0);
  nc.set_owner(3, 1);
  nc.set_owner(5, 2);
  int total = 0;
  for (WorkerId w : {0, 1, 2}) total += nc.owned_count(w);
  EXPECT_EQ(total, 8);
  nc.check_invariants();
}

TEST(NodeCores, IdleLeasedAndPooledQueries) {
  NodeCores nc(4, 0);
  nc.task_started(1);
  nc.lend(2);
  const auto idle = nc.idle_leased_cores(0);
  EXPECT_EQ(idle.size(), 2u);  // cores 0 and 3
  EXPECT_EQ(nc.pooled_cores().size(), 1u);
}

TEST(Lewi, DisabledIsNoOp) {
  NodeCores nc(2, 0);
  LewiModule lw(nc, false);
  EXPECT_EQ(lw.lend_idle(0), 0);
  EXPECT_TRUE(lw.borrow(1, 5).empty());
  EXPECT_EQ(lw.reclaim_for(0, 5), 0);
  EXPECT_EQ(nc.pooled_cores().size(), 0u);
}

TEST(Lewi, LendIdleMovesOwnedCoresToPool) {
  NodeCores nc(3, 0);
  nc.task_started(0);
  LewiModule lw(nc, true);
  EXPECT_EQ(lw.lend_idle(0), 2);
  EXPECT_EQ(nc.pooled_cores().size(), 2u);
  EXPECT_EQ(lw.lends(), 2u);
}

TEST(Lewi, BorrowTakesUpToLimit) {
  NodeCores nc(4, 0);
  LewiModule lw(nc, true);
  lw.lend_idle(0);
  const auto got = lw.borrow(1, 3);
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ(nc.leased_count(1), 3);
  EXPECT_EQ(lw.borrows(), 3u);
}

TEST(Lewi, BorrowSkipsOwnCores) {
  NodeCores nc(2, 0);
  LewiModule lw(nc, true);
  lw.lend_idle(0);
  // Worker 0 should reclaim, not borrow, its own pooled cores.
  EXPECT_TRUE(lw.borrow(0, 2).empty());
  EXPECT_EQ(lw.reclaim_for(0, 2), 2);
  EXPECT_EQ(nc.leased_count(0), 2);
}

TEST(Lewi, ReclaimOnlyIssuesNeeded) {
  NodeCores nc(4, 0);
  LewiModule lw(nc, true);
  lw.lend_idle(0);
  EXPECT_EQ(lw.reclaim_for(0, 2), 2);
  EXPECT_EQ(nc.leased_count(0), 2);
  EXPECT_EQ(nc.pooled_cores().size(), 2u);
}

TEST(Lewi, LendIdleReleasesBorrowedCores) {
  NodeCores nc(2, 0);
  LewiModule lw(nc, true);
  lw.lend_idle(0);
  ASSERT_EQ(lw.borrow(1, 2).size(), 2u);
  EXPECT_EQ(lw.lend_idle(1), 2);  // releases them back to the pool
  EXPECT_EQ(nc.pooled_cores().size(), 2u);
}

TEST(Drom, DisabledIsNoOp) {
  NodeCores nc(4, 0);
  DromModule dm(nc, false);
  EXPECT_EQ(dm.apply({{0, 1}, {1, 3}}), 0);
  EXPECT_EQ(nc.owned_count(0), 4);
}

TEST(Drom, AppliesTargetCounts) {
  NodeCores nc(8, 0);
  DromModule dm(nc, true);
  const int moved = dm.apply({{0, 5}, {1, 2}, {2, 1}});
  EXPECT_EQ(moved, 3);
  EXPECT_EQ(nc.owned_count(0), 5);
  EXPECT_EQ(nc.owned_count(1), 2);
  EXPECT_EQ(nc.owned_count(2), 1);
  nc.check_invariants();
}

TEST(Drom, MinimalMovesWhenAlreadyBalanced) {
  NodeCores nc(4, 0);
  DromModule dm(nc, true);
  dm.apply({{0, 2}, {1, 2}});
  EXPECT_EQ(dm.apply({{0, 2}, {1, 2}}), 0);  // no change needed
}

TEST(Drom, PrefersIdleDonorCores) {
  NodeCores nc(3, 0);
  nc.task_started(0);  // core 0 busy
  DromModule dm(nc, true);
  dm.apply({{0, 1}, {1, 2}});
  // The running core 0 should stay with worker 0; cores 1 and 2 moved.
  EXPECT_EQ(nc.owner(0), 0);
  EXPECT_EQ(nc.owner(1), 1);
  EXPECT_EQ(nc.owner(2), 1);
}

TEST(Drom, MovesRunningCoreWhenUnavoidable) {
  NodeCores nc(2, 0);
  nc.task_started(0);
  nc.task_started(1);
  DromModule dm(nc, true);
  dm.apply({{0, 1}, {1, 1}});
  EXPECT_EQ(nc.owned_count(1), 1);
  // Lease transfers only at the task boundary.
  const int moved_core = nc.owner(0) == 1 ? 0 : 1;
  EXPECT_TRUE(nc.reclaim_pending(moved_core));
}

TEST(Talp, AccumulatesBusyTime) {
  double now = 0.0;
  TalpModule talp([&] { return now; }, 2);
  talp.on_busy_delta(0, +1);
  now = 2.0;
  talp.on_busy_delta(0, +1);
  now = 3.0;
  talp.on_busy_delta(0, -2);
  EXPECT_DOUBLE_EQ(talp.busy_core_seconds(0), 2.0 * 1 + 1.0 * 2);
  EXPECT_DOUBLE_EQ(talp.busy_core_seconds(1), 0.0);
}

TEST(Talp, WindowAverage) {
  double now = 0.0;
  TalpModule talp([&] { return now; }, 1);
  talp.on_busy_delta(0, +1);
  now = 1.0;
  EXPECT_DOUBLE_EQ(talp.window_average(0), 1.0);
  talp.reset_window();
  now = 2.0;
  talp.on_busy_delta(0, +1);  // two busy from t=2
  now = 4.0;
  // Window [1, 4): busy 1 for 1s then 2 for 2s => 5/3.
  EXPECT_NEAR(talp.window_average(0), 5.0 / 3.0, 1e-12);
}

TEST(Talp, ResetWindowClearsOnlyWindow) {
  double now = 0.0;
  TalpModule talp([&] { return now; }, 1);
  talp.on_busy_delta(0, +1);
  now = 5.0;
  talp.reset_window();
  EXPECT_DOUBLE_EQ(talp.busy_core_seconds(0), 5.0);
  now = 6.0;
  EXPECT_DOUBLE_EQ(talp.window_average(0), 1.0);
}

TEST(Talp, EfficiencyAgainstAssignedCores) {
  double now = 0.0;
  TalpModule talp([&] { return now; }, 1);
  talp.on_busy_delta(0, +1);
  now = 10.0;
  // 10 busy core-seconds over 10 s with 2 cores assigned -> 0.5.
  EXPECT_DOUBLE_EQ(talp.efficiency(0, 2.0), 0.5);
}

TEST(Talp, CurrentBusyTracksDeltas) {
  double now = 0.0;
  TalpModule talp([&] { return now; }, 1);
  EXPECT_EQ(talp.current_busy(0), 0);
  talp.on_busy_delta(0, +1);
  talp.on_busy_delta(0, +1);
  EXPECT_EQ(talp.current_busy(0), 2);
  talp.on_busy_delta(0, -1);
  EXPECT_EQ(talp.current_busy(0), 1);
}

}  // namespace
}  // namespace tlb::dlb
