// Unit tests for the application workloads: synthetic, MicroPP, n-body.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/micropp/hex8.hpp"
#include "apps/micropp/material.hpp"
#include "apps/micropp/micro_solver.hpp"
#include "apps/micropp/workload.hpp"
#include "apps/nbody/octree.hpp"
#include "apps/nbody/orb.hpp"
#include "apps/nbody/workload.hpp"
#include "apps/synthetic.hpp"
#include "metrics/imbalance.hpp"

namespace tlb::apps {
namespace {

// ---- Synthetic ---------------------------------------------------------------

TEST(Synthetic, HitsTargetImbalanceExactly) {
  for (double imb : {1.0, 1.5, 2.0, 3.0, 4.0}) {
    SyntheticConfig cfg;
    cfg.appranks = 8;
    cfg.imbalance = imb;
    SyntheticWorkload wl(cfg);
    EXPECT_NEAR(wl.realized_imbalance(), imb, 1e-9) << "imb=" << imb;
  }
}

TEST(Synthetic, MeanDurationIsBase) {
  SyntheticConfig cfg;
  cfg.appranks = 16;
  cfg.imbalance = 2.5;
  cfg.base_duration = 0.05;
  SyntheticWorkload wl(cfg);
  const auto& means = wl.rank_means();
  const double avg =
      std::accumulate(means.begin(), means.end(), 0.0) / means.size();
  EXPECT_NEAR(avg, 0.05, 1e-12);
}

TEST(Synthetic, WorstRankCarriesTheMax) {
  SyntheticConfig cfg;
  cfg.appranks = 8;
  cfg.imbalance = 3.0;
  cfg.worst_rank = 5;
  SyntheticWorkload wl(cfg);
  const auto& means = wl.rank_means();
  for (std::size_t r = 0; r < means.size(); ++r) {
    EXPECT_LE(means[r], means[5] + 1e-12);
  }
  EXPECT_NEAR(means[5], 0.05 * 3.0, 1e-12);
}

TEST(Synthetic, LeastRankGetsMinimum) {
  SyntheticConfig cfg;
  cfg.appranks = 8;
  cfg.imbalance = 2.0;
  cfg.worst_rank = 0;
  cfg.least_rank = 3;
  SyntheticWorkload wl(cfg);
  const auto& means = wl.rank_means();
  for (std::size_t r = 0; r < means.size(); ++r) {
    EXPECT_GE(means[r], means[3] - 1e-12);
  }
}

TEST(Synthetic, TaskDurationsAverageToRankMean) {
  SyntheticConfig cfg;
  cfg.appranks = 4;
  cfg.imbalance = 2.0;
  cfg.tasks_per_rank = 4000;
  SyntheticWorkload wl(cfg);
  const auto specs = wl.make_tasks(0, 0);
  double sum = 0.0;
  for (const auto& s : specs) sum += s.work;
  EXPECT_NEAR(sum / specs.size(), wl.rank_means()[0],
              wl.rank_means()[0] * 0.05);
}

TEST(Synthetic, RejectsInvalidImbalance) {
  SyntheticConfig cfg;
  cfg.appranks = 4;
  cfg.imbalance = 5.0;  // > appranks
  EXPECT_THROW(SyntheticWorkload{cfg}, std::invalid_argument);
  cfg.imbalance = 0.5;
  EXPECT_THROW(SyntheticWorkload{cfg}, std::invalid_argument);
}

TEST(Synthetic, TasksHaveDistinctRegions) {
  SyntheticConfig cfg;
  cfg.appranks = 2;
  cfg.tasks_per_rank = 10;
  SyntheticWorkload wl(cfg);
  const auto specs = wl.make_tasks(0, 0);
  for (std::size_t i = 0; i + 1 < specs.size(); ++i) {
    EXPECT_LE(specs[i].accesses[0].end(), specs[i + 1].accesses[0].start);
  }
}

// ---- MicroPP kernels ------------------------------------------------------------

TEST(Hex8, StiffnessIsSymmetric) {
  const auto coords = micropp::unit_cube_coords(1.0);
  const auto c = micropp::elastic_matrix({});
  const auto ke = micropp::Hex8::stiffness(coords, c);
  for (int i = 0; i < 24; ++i) {
    for (int j = 0; j < 24; ++j) {
      EXPECT_NEAR(ke[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                  ke[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)],
                  1e-3)
          << i << "," << j;
    }
  }
}

TEST(Hex8, RigidTranslationProducesNoForce) {
  const auto coords = micropp::unit_cube_coords(1.0);
  const auto c = micropp::elastic_matrix({});
  const auto ke = micropp::Hex8::stiffness(coords, c);
  // u = constant translation in x.
  micropp::ElementVector u{};
  for (int n = 0; n < 8; ++n) u[static_cast<std::size_t>(3 * n)] = 1.0;
  for (int i = 0; i < 24; ++i) {
    double f = 0.0;
    for (int j = 0; j < 24; ++j) {
      f += ke[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
           u[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(f, 0.0, 1e-4);
  }
}

TEST(Hex8, StiffnessDiagonalPositive) {
  const auto coords = micropp::unit_cube_coords(0.5);
  const auto c = micropp::elastic_matrix({});
  const auto ke = micropp::Hex8::stiffness(coords, c);
  for (int i = 0; i < 24; ++i) {
    EXPECT_GT(ke[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)], 0.0);
  }
}

TEST(Hex8, UniformStrainMatchesConstitutive) {
  // u_z = -0.01 * z -> strain ezz = -0.01, uniform over the element.
  const auto coords = micropp::unit_cube_coords(1.0);
  micropp::ElementVector u{};
  for (int n = 0; n < 8; ++n) {
    const double z = coords[static_cast<std::size_t>(n)][2];
    u[static_cast<std::size_t>(3 * n + 2)] = -0.01 * z;
  }
  for (int gp = 0; gp < micropp::Hex8::kGaussPoints; ++gp) {
    const auto eps = micropp::Hex8::strain_at_gp(coords, gp, u);
    EXPECT_NEAR(eps[2], -0.01, 1e-12);
    EXPECT_NEAR(eps[0], 0.0, 1e-12);
    EXPECT_NEAR(eps[3], 0.0, 1e-12);
  }
}

TEST(Hex8, FlopCountersAccumulate) {
  const auto coords = micropp::unit_cube_coords(1.0);
  const auto c = micropp::elastic_matrix({});
  std::uint64_t flops = 0;
  (void)micropp::Hex8::stiffness(coords, c, &flops);
  EXPECT_GT(flops, 10000u);  // 8 GPs x dense 24x24 work
}

TEST(Material, ElasticMatrixStructure) {
  const auto c = micropp::elastic_matrix({.young = 200e9, .poisson = 0.3});
  EXPECT_GT(c[0][0], c[0][1]);
  EXPECT_DOUBLE_EQ(c[0][1], c[0][2]);
  EXPECT_GT(c[3][3], 0.0);
  EXPECT_DOUBLE_EQ(c[0][3], 0.0);
}

TEST(Material, SmallStrainStaysElastic) {
  micropp::PlasticParams mat;
  micropp::Voigt6 eps{1e-6, 0, 0, 0, 0, 0};
  const auto r = micropp::j2_return_map(mat, eps, 0.0);
  EXPECT_FALSE(r.plastic);
  EXPECT_EQ(r.iterations, 1);
  EXPECT_DOUBLE_EQ(r.alpha, 0.0);
}

TEST(Material, LargeStrainYields) {
  micropp::PlasticParams mat;
  micropp::Voigt6 eps{0.02, -0.01, -0.01, 0, 0, 0};
  const auto r = micropp::j2_return_map(mat, eps, 0.0);
  EXPECT_TRUE(r.plastic);
  EXPECT_GT(r.alpha, 0.0);
  // Stress must sit on (or inside numerically) the expanded yield surface.
  const double vm = micropp::von_mises(r.stress);
  const double yield_now = mat.yield_stress + mat.hardening * r.alpha;
  EXPECT_NEAR(vm, yield_now, yield_now * 0.01);
}

TEST(Material, HardeningRaisesYield) {
  micropp::PlasticParams mat;
  micropp::Voigt6 eps{0.02, -0.01, -0.01, 0, 0, 0};
  const auto first = micropp::j2_return_map(mat, eps, 0.0);
  const auto second = micropp::j2_return_map(mat, eps, first.alpha);
  // Hardening: the second step at the same strain yields less additional
  // plastic flow than the first produced from a virgin state.
  EXPECT_LT(second.alpha - first.alpha, first.alpha);
}

TEST(MicroSolver, CompressionConverges) {
  micropp::SubdomainConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 3;
  cfg.h = 1.0 / 3.0;
  micropp::Subdomain sub(cfg);
  EXPECT_GT(sub.assemble(), 0u);
  const auto sol = sub.solve_compression(-0.01);
  EXPECT_LT(sol.residual, 1e-8);
  // The top face moved down; interior nodes follow roughly linearly.
  const int mid = sub.node_index(1, 1, 1);
  EXPECT_LT(sol.u[static_cast<std::size_t>(3 * mid + 2)], 0.0);
  EXPECT_GT(sol.u[static_cast<std::size_t>(3 * mid + 2)], -0.01);
}

TEST(MicroSolver, StiffnessActionIsSymmetric) {
  micropp::SubdomainConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 2;
  cfg.h = 0.5;
  micropp::Subdomain sub(cfg);
  sub.assemble();
  std::vector<double> x(static_cast<std::size_t>(sub.dof_count()), 0.0);
  std::vector<double> y(static_cast<std::size_t>(sub.dof_count()), 0.0);
  x[5] = 1.0;
  y[40] = 1.0;
  const auto kx = sub.apply(x);
  const auto ky = sub.apply(y);
  EXPECT_NEAR(kx[40], ky[5], std::abs(kx[40]) * 1e-9 + 1e-6);
}

TEST(MicroPPWorkload, HeavyRanksCostMore) {
  micropp::MicroPPConfig cfg;
  cfg.appranks = 8;
  micropp::MicroPPWorkload wl(cfg);
  const auto loads = wl.expected_rank_loads();
  EXPECT_GT(loads[0], loads[7] * 2.0);
  const double imb = metrics::imbalance(loads);
  EXPECT_GT(imb, 1.5);
  EXPECT_LT(imb, 8.0);
}

TEST(MicroPPWorkload, TaskWorkMatchesExpectedLoad) {
  micropp::MicroPPConfig cfg;
  cfg.appranks = 4;
  micropp::MicroPPWorkload wl(cfg);
  const auto specs = wl.make_tasks(0, 0);
  double total = 0.0;
  for (const auto& s : specs) total += s.work;
  const auto loads = wl.expected_rank_loads();
  EXPECT_NEAR(total, loads[0], loads[0] * 0.25);  // Newton-count jitter
}

TEST(MicroPPWorkload, CalibrationUsesRealKernels) {
  micropp::MicroPPConfig cfg;
  micropp::MicroPPWorkload wl(cfg);
  EXPECT_GT(wl.flops_linear_element(), 0u);
  EXPECT_GT(wl.flops_newton_step(), wl.flops_linear_element());
}

// ---- n-body ----------------------------------------------------------------------

std::vector<nbody::Body> random_bodies(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<nbody::Body> bodies(static_cast<std::size_t>(n));
  for (auto& b : bodies) {
    b.position = {rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)};
    b.mass = 1.0 / n;
  }
  return bodies;
}

TEST(Octree, ConservesMass) {
  const auto bodies = random_bodies(256, 3);
  const nbody::Octree tree(bodies);
  EXPECT_NEAR(tree.total_mass(), 1.0, 1e-12);
}

TEST(Octree, MatchesDirectSummationAtSmallTheta) {
  const auto bodies = random_bodies(128, 4);
  const nbody::Octree tree(bodies);
  double worst = 0.0;
  for (int i = 0; i < 16; ++i) {
    const auto approx = tree.acceleration(bodies[static_cast<std::size_t>(i)],
                                          /*theta=*/0.2);
    const auto exact = nbody::Octree::direct_acceleration(
        bodies, bodies[static_cast<std::size_t>(i)]);
    const double err = (approx.acceleration - exact).norm() /
                       std::max(1e-12, exact.norm());
    worst = std::max(worst, err);
  }
  EXPECT_LT(worst, 0.05);
}

TEST(Octree, LargerThetaIsCheaper) {
  const auto bodies = random_bodies(512, 5);
  const nbody::Octree tree(bodies);
  const auto tight = tree.acceleration(bodies[0], 0.3);
  const auto loose = tree.acceleration(bodies[0], 0.9);
  EXPECT_LT(loose.interactions, tight.interactions);
  EXPECT_GT(loose.interactions, 0u);
}

TEST(Octree, InteractionCountBelowDirectSum) {
  const auto bodies = random_bodies(512, 6);
  const nbody::Octree tree(bodies);
  const auto fr = tree.acceleration(bodies[0], 0.5);
  EXPECT_LT(fr.interactions, 512u);
}

TEST(Orb, BalancesUniformWeights) {
  const auto bodies = random_bodies(1000, 7);
  const std::vector<double> weights(1000, 1.0);
  const auto assign = nbody::orb_partition(bodies, weights, 8);
  const auto parts = nbody::part_weights(assign, weights, 8);
  EXPECT_LT(metrics::imbalance(parts), 1.05);
}

TEST(Orb, BalancesSkewedWeights) {
  auto bodies = random_bodies(2000, 8);
  std::vector<double> weights(2000);
  sim::Rng rng(9);
  for (auto& w : weights) w = rng.uniform(0.1, 10.0);
  const auto assign = nbody::orb_partition(bodies, weights, 16);
  const auto parts = nbody::part_weights(assign, weights, 16);
  EXPECT_LT(metrics::imbalance(parts), 1.2);
}

TEST(Orb, EveryBodyAssignedInRange) {
  const auto bodies = random_bodies(100, 10);
  const std::vector<double> weights(100, 1.0);
  const auto assign = nbody::orb_partition(bodies, weights, 7);
  for (int part : assign) {
    EXPECT_GE(part, 0);
    EXPECT_LT(part, 7);
  }
  const auto parts = nbody::part_weights(assign, weights, 7);
  for (double p : parts) EXPECT_GT(p, 0.0);
}

TEST(Orb, SinglePartIsIdentity) {
  const auto bodies = random_bodies(10, 11);
  const std::vector<double> weights(10, 1.0);
  const auto assign = nbody::orb_partition(bodies, weights, 1);
  for (int part : assign) EXPECT_EQ(part, 0);
}

TEST(NBodyWorkload, OrbKeepsPredictedLoadsBalanced) {
  nbody::NBodyConfig cfg;
  cfg.appranks = 8;
  cfg.bodies = 1024;
  nbody::NBodyWorkload wl(cfg);
  const auto loads = wl.rank_loads();
  EXPECT_LT(metrics::imbalance(loads), 1.25);
}

TEST(NBodyWorkload, ForcesPrecedeUpdates) {
  nbody::NBodyConfig cfg;
  cfg.appranks = 2;
  cfg.bodies = 256;
  cfg.blocks_per_rank = 4;
  nbody::NBodyWorkload wl(cfg);
  const auto specs = wl.make_tasks(0, 0);
  ASSERT_EQ(specs.size(), 8u);
  // All force tasks (offloadable) are created before any update task
  // (non-offloadable) so forces of one step are mutually parallel.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(specs[i].offloadable) << i;
    EXPECT_FALSE(specs[i + 4].offloadable) << i;
  }
}

TEST(NBodyWorkload, PhysicsAdvancesBetweenIterations) {
  nbody::NBodyConfig cfg;
  cfg.appranks = 2;
  cfg.bodies = 256;
  nbody::NBodyWorkload wl(cfg);
  const auto p0 = wl.bodies()[0].position;
  wl.on_iteration_done(0, {0.0, 0.0});
  const auto p1 = wl.bodies()[0].position;
  EXPECT_NE((p1 - p0).norm(), 0.0);
}

TEST(NBodyWorkload, ClusteredBodiesCostMore) {
  nbody::NBodyConfig cfg;
  cfg.appranks = 1;
  cfg.bodies = 1024;
  cfg.blocks_per_rank = 8;
  nbody::NBodyWorkload wl(cfg);
  // Weights must vary: the dense clump needs more interactions.
  const auto& w = wl.interaction_weights();
  const double imb = metrics::imbalance(w);
  EXPECT_GT(imb, 1.05);
}

}  // namespace
}  // namespace tlb::apps
