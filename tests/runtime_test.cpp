// End-to-end tests of the ClusterRuntime on small clusters.
#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "core/runtime.hpp"

namespace tlb::core {
namespace {

RuntimeConfig base_config(int nodes, int cores, int per_node, int degree) {
  RuntimeConfig cfg;
  cfg.cluster = sim::ClusterSpec::homogeneous(nodes, cores);
  cfg.appranks_per_node = per_node;
  cfg.degree = degree;
  cfg.policy = PolicyKind::Global;
  cfg.lewi = true;
  cfg.drom = true;
  cfg.global_period = 0.2;  // fast convergence for small tests
  cfg.local_period = 0.05;
  return cfg;
}

apps::SyntheticConfig synth(int appranks, double imbalance, int iterations,
                            int tasks = 40) {
  apps::SyntheticConfig cfg;
  cfg.appranks = appranks;
  cfg.imbalance = imbalance;
  cfg.iterations = iterations;
  cfg.tasks_per_rank = tasks;
  return cfg;
}

TEST(Runtime, SingleApprankUsesAllCores) {
  auto cfg = base_config(1, 4, 1, 1);
  apps::SyntheticWorkload wl(synth(1, 1.0, 2));
  ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  // 40 tasks x 50 ms on 4 cores = 0.5 s per iteration; allow scheduling
  // slack from non-divisible task ends.
  EXPECT_GT(r.makespan, r.perfect_time);
  EXPECT_LT(r.makespan, r.perfect_time * 1.25);
  EXPECT_EQ(r.tasks_total, 80u);
  EXPECT_EQ(r.tasks_offloaded, 0u);
  EXPECT_EQ(static_cast<int>(r.iteration_times.size()), 2);
}

TEST(Runtime, BaselineConfinesImbalanceToApprank) {
  // No DLB at all: the heavy rank's cores bound the makespan.
  auto cfg = base_config(1, 8, 2, 1);
  cfg.lewi = false;
  cfg.drom = false;
  cfg.policy = PolicyKind::None;
  apps::SyntheticWorkload wl(synth(2, 1.5, 2));
  ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  // Heavy rank: 40 x 75 ms on its 4 cores = 0.75 s/iter.
  EXPECT_GT(r.makespan, 2 * 0.70);
  EXPECT_EQ(r.tasks_offloaded, 0u);
  EXPECT_EQ(r.lewi_lends, 0u);
  EXPECT_EQ(r.drom_moves, 0u);
}

TEST(Runtime, LewiBalancesWithinNode) {
  auto cfg_base = base_config(1, 8, 2, 1);
  cfg_base.lewi = false;
  cfg_base.drom = false;
  cfg_base.policy = PolicyKind::None;
  apps::SyntheticWorkload wl1(synth(2, 1.5, 2));
  const auto base = ClusterRuntime(cfg_base).run(wl1);

  auto cfg_lewi = base_config(1, 8, 2, 1);
  cfg_lewi.drom = false;
  cfg_lewi.policy = PolicyKind::None;
  apps::SyntheticWorkload wl2(synth(2, 1.5, 2));
  const auto lewi = ClusterRuntime(cfg_lewi).run(wl2);

  EXPECT_LT(lewi.makespan, base.makespan * 0.92);
  EXPECT_GT(lewi.lewi_borrows, 0u);
  // LeWI alone does not offload across nodes (there is only one node).
  EXPECT_EQ(lewi.tasks_offloaded, 0u);
}

TEST(Runtime, OffloadingBalancesAcrossNodes) {
  apps::SyntheticWorkload wl1(synth(4, 2.0, 4));
  auto cfg1 = base_config(4, 4, 1, 1);
  const auto degree1 = ClusterRuntime(cfg1).run(wl1);

  apps::SyntheticWorkload wl4(synth(4, 2.0, 4));
  auto cfg4 = base_config(4, 4, 1, 4);
  const auto degree4 = ClusterRuntime(cfg4).run(wl4);

  EXPECT_LT(degree4.makespan, degree1.makespan * 0.8);
  EXPECT_GT(degree4.tasks_offloaded, 0u);
  EXPECT_GT(degree4.control_messages, 0u);
  EXPECT_GT(degree4.transfer_bytes, 0u);
}

TEST(Runtime, BalancedLoadBarelyOffloadsUnderGlobalPolicy) {
  // With balanced load, steady-state offloading is bounded by the
  // helper-core floor (each helper owns 1 of 16 cores) plus LeWI
  // tail-balancing at iteration ends, and stays far below the ~50%
  // offload a fully spread execution would show.
  apps::SyntheticWorkload wl(synth(4, 1.0, 4, /*tasks=*/160));
  auto cfg = base_config(4, 16, 1, 2);
  const auto r = ClusterRuntime(cfg).run(wl);
  EXPECT_LT(r.offload_fraction(), 0.20);
  EXPECT_LT(r.makespan, r.perfect_time * 1.3);
}

TEST(Runtime, NonOffloadableTasksStayHome) {
  // A workload of only non-offloadable tasks on an imbalanced system must
  // execute everything on home nodes despite the helpers.
  class PinnedWorkload final : public Workload {
   public:
    int iteration_count() const override { return 2; }
    std::vector<TaskSpec> make_tasks(int apprank, int) override {
      std::vector<TaskSpec> specs;
      const int n = apprank == 0 ? 20 : 2;
      for (int i = 0; i < n; ++i) {
        TaskSpec s;
        s.work = 0.05;
        s.offloadable = false;
        specs.push_back(s);
      }
      return specs;
    }
  };
  PinnedWorkload wl;
  auto cfg = base_config(2, 4, 1, 2);
  const auto r = ClusterRuntime(cfg).run(wl);
  EXPECT_EQ(r.tasks_offloaded, 0u);
}

TEST(Runtime, DeterministicAcrossRuns) {
  auto run_once = [] {
    apps::SyntheticWorkload wl(synth(8, 1.8, 3));
    auto cfg = base_config(4, 8, 2, 3);
    return ClusterRuntime(cfg).run(wl).makespan;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Runtime, PerfectTimeIsALowerBound) {
  for (double imb : {1.0, 1.5, 2.5}) {
    apps::SyntheticWorkload wl(synth(4, imb, 2));
    auto cfg = base_config(4, 4, 1, 2);
    const auto r = ClusterRuntime(cfg).run(wl);
    EXPECT_GE(r.makespan, r.perfect_time * 0.999) << "imb=" << imb;
  }
}

TEST(Runtime, SlowNodeStretchesBaseline) {
  apps::SyntheticWorkload wl1(synth(2, 1.0, 2));
  auto cfg = base_config(2, 4, 1, 1);
  cfg.cluster = sim::ClusterSpec::with_slow_node(2, 4, 0, 0.5);
  cfg.lewi = false;
  cfg.drom = false;
  cfg.policy = PolicyKind::None;
  const auto slow = ClusterRuntime(cfg).run(wl1);
  // Rank 0's tasks all run at half speed: ~2x the balanced time.
  apps::SyntheticWorkload wl2(synth(2, 1.0, 2));
  auto cfg_fast = base_config(2, 4, 1, 1);
  cfg_fast.lewi = false;
  cfg_fast.drom = false;
  cfg_fast.policy = PolicyKind::None;
  const auto fast = ClusterRuntime(cfg_fast).run(wl2);
  EXPECT_GT(slow.makespan, fast.makespan * 1.6);
}

TEST(Runtime, OffloadingRescuesSlowNode) {
  auto make_cfg = [](int degree) {
    auto cfg = base_config(2, 8, 1, degree);
    cfg.cluster = sim::ClusterSpec::with_slow_node(2, 8, 0, 0.5);
    return cfg;
  };
  apps::SyntheticWorkload wl1(synth(2, 1.0, 6));
  const auto stuck = ClusterRuntime(make_cfg(1)).run(wl1);
  apps::SyntheticWorkload wl2(synth(2, 1.0, 6));
  const auto rescued = ClusterRuntime(make_cfg(2)).run(wl2);
  EXPECT_LT(rescued.makespan, stuck.makespan * 0.9);
  EXPECT_GT(rescued.tasks_offloaded, 0u);
}

TEST(Runtime, HelperWorkersAlwaysKeepOneCore) {
  apps::SyntheticWorkload wl(synth(4, 2.5, 4));
  auto cfg = base_config(4, 6, 1, 3);
  ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  (void)r;
  const auto& topo = rt.topology();
  const auto& rec = rt.recorder();
  for (int n = 0; n < topo.node_count(); ++n) {
    for (WorkerId w : topo.workers_on_node(n)) {
      const auto& series = rec.owned(n, topo.worker(w).apprank);
      EXPECT_GE(series.value_at(r.makespan), 1.0);
    }
  }
}

TEST(Runtime, LocalPolicyOverOffloadsAfterRebalance) {
  // Fig 5: unbalanced phase then balanced phase. The local policy keeps
  // offloading in the balanced phase (ownership has drifted); the global
  // policy pulls ownership home and stops offloading.
  class TwoPhaseWorkload final : public Workload {
   public:
    int iteration_count() const override { return 20; }
    std::vector<TaskSpec> make_tasks(int apprank, int iteration) override {
      std::vector<TaskSpec> specs;
      const bool unbalanced = iteration < 10;
      const int n = unbalanced ? (apprank == 0 ? 300 : 4) : 150;
      for (int i = 0; i < n; ++i) {
        TaskSpec s;
        s.work = 0.05;
        specs.push_back(s);
      }
      return specs;
    }
  };
  // Returns (run stats, apprank 0's final core ownership on node 1).
  auto run_policy = [](PolicyKind kind) {
    TwoPhaseWorkload wl;
    RuntimeConfig cfg;
    cfg.cluster = sim::ClusterSpec::homogeneous(2, 48);
    cfg.appranks_per_node = 1;
    cfg.degree = 2;
    cfg.policy = kind;
    cfg.global_period = 0.2;
    cfg.local_period = 0.05;
    ClusterRuntime rt(cfg);
    const auto r = rt.run(wl);
    const double remote_owned =
        rt.recorder().owned(1, 0).value_at(r.makespan);
    return std::pair{r, remote_owned};
  };
  const auto [local, local_remote] = run_policy(PolicyKind::Local);
  const auto [global, global_remote] = run_policy(PolicyKind::Global);
  // Both balance the unbalanced phase...
  EXPECT_GT(local.tasks_offloaded, 0u);
  EXPECT_GT(global.tasks_offloaded, 0u);
  // ...but after the load becomes balanced, the global policy pulls
  // ownership back home (helper floor) while the local policy converges
  // to mixed ownership and keeps offloading (Fig 5a vs 5b).
  EXPECT_LE(global_remote, 6.0);
  EXPECT_GE(local_remote, 10.0);
  EXPECT_GT(local_remote, 1.5 * global_remote);
}

TEST(Runtime, IterationTimesSumToMakespan) {
  apps::SyntheticWorkload wl(synth(2, 1.2, 3));
  auto cfg = base_config(2, 4, 1, 2);
  const auto r = ClusterRuntime(cfg).run(wl);
  double sum = 0.0;
  for (double t : r.iteration_times) sum += t;
  EXPECT_NEAR(sum, r.makespan, 1e-9);
}

TEST(Runtime, RecorderBusyNeverExceedsNodeCores) {
  apps::SyntheticWorkload wl(synth(4, 1.6, 3));
  auto cfg = base_config(2, 4, 2, 2);
  ClusterRuntime rt(cfg);
  const auto r = rt.run(wl);
  for (int n = 0; n < 2; ++n) {
    EXPECT_LE(rt.recorder().node_busy(n).max_value(), 4.0);
  }
  (void)r;
}

TEST(Runtime, EmptyIterationCompletes) {
  class EmptyWorkload final : public Workload {
   public:
    int iteration_count() const override { return 3; }
    std::vector<TaskSpec> make_tasks(int, int) override { return {}; }
  };
  EmptyWorkload wl;
  auto cfg = base_config(2, 4, 1, 2);
  const auto r = ClusterRuntime(cfg).run(wl);
  EXPECT_EQ(r.tasks_total, 0u);
  EXPECT_EQ(static_cast<int>(r.iteration_times.size()), 3);
  EXPECT_LT(r.makespan, 1e-3);  // only barrier latencies
}

}  // namespace
}  // namespace tlb::core
